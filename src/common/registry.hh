/**
 * @file
 * Generic string-keyed component registry. Every pluggable seam of
 * the stack — simulation backends, optimizers, measurement-grouping
 * strategies, compiler-pipeline presets, energy-estimation modes —
 * is a `Registry<FactoryT>`: named factories looked up by string key,
 * so new components self-register instead of growing enum switches
 * (the pass-registry pattern of classical compiler frameworks).
 *
 * Lookup failures throw RegistryError, a CompileError-style
 * diagnostic that names the registry and lists every registered key,
 * so a typo in an ExperimentSpec fails with the valid choices rather
 * than a bare "not found". Registration normally happens in a
 * registry's bootstrap (the accessor that builds the singleton), so
 * static-library dead-stripping can never drop a built-in; runtime
 * add() supports tests and downstream extensions.
 */

#ifndef QCC_COMMON_REGISTRY_HH
#define QCC_COMMON_REGISTRY_HH

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace qcc {

/**
 * Unknown-key failure with provenance: which registry was queried,
 * which key missed, and what keys exist. what() carries the full
 * diagnostic including the registered-name list.
 */
class RegistryError : public std::runtime_error
{
  public:
    RegistryError(const std::string &registry, const std::string &key,
                  const std::vector<std::string> &known)
        : std::runtime_error(format(registry, key, known)),
          registryName(registry), missingKey(key)
    {
    }

    const std::string &registry() const { return registryName; }
    const std::string &key() const { return missingKey; }

  private:
    static std::string
    format(const std::string &registry, const std::string &key,
           const std::vector<std::string> &known)
    {
        std::string msg = "unknown " + registry + " '" + key +
                          "'; registered: ";
        if (known.empty())
            msg += "(none)";
        for (size_t i = 0; i < known.size(); ++i)
            msg += (i ? ", " : "") + known[i];
        return msg;
    }

    std::string registryName;
    std::string missingKey;
};

/**
 * String-keyed factory table. FactoryT is any copyable callable (or
 * value) type; the registry owns one instance per key. Registration
 * is expected at startup (registry bootstrap or static init); lookups
 * may then run concurrently.
 */
template <typename FactoryT>
class Registry
{
  public:
    /** `kind` names the registry in diagnostics ("backend", ...). */
    explicit Registry(std::string kind) : kindName(std::move(kind)) {}

    /** Register (or replace) a factory under `name`. */
    void
    add(const std::string &name, FactoryT factory)
    {
        entries[name] = std::move(factory);
    }

    bool
    contains(const std::string &name) const
    {
        return entries.find(name) != entries.end();
    }

    /** Factory for `name`; throws RegistryError when absent. */
    const FactoryT &
    get(const std::string &name) const
    {
        auto it = entries.find(name);
        if (it == entries.end())
            throw RegistryError(kindName, name, names());
        return it->second;
    }

    /** Registered keys, sorted (stable diagnostics and docs). */
    std::vector<std::string>
    names() const
    {
        std::vector<std::string> out;
        out.reserve(entries.size());
        for (const auto &[name, factory] : entries)
            out.push_back(name);
        return out;
    }

    size_t size() const { return entries.size(); }
    const std::string &kind() const { return kindName; }

  private:
    std::string kindName;
    std::map<std::string, FactoryT> entries;
};

} // namespace qcc

#endif // QCC_COMMON_REGISTRY_HH
