#include "common/json.hh"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace qcc {

namespace {

class Parser
{
  public:
    explicit Parser(const std::string &doc) : s(doc) {}

    JsonValue
    parseDocument()
    {
        JsonValue v = parseValue();
        skipWs();
        if (pos < s.size())
            throw JsonError("trailing content after document", pos);
        return v;
    }

  private:
    JsonValue
    parseValue()
    {
        skipWs();
        if (pos >= s.size())
            throw JsonError("unexpected end of document", pos);
        const char c = s[pos];
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return parseString();
        if (c == 't' || c == 'f')
            return parseBool();
        if (c == 'n')
            return parseNull();
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
            return parseNumber();
        throw JsonError(std::string("unexpected character '") + c +
                            "'",
                        pos);
    }

    JsonValue
    parseObject()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        expect('{');
        skipWs();
        if (peek('}')) {
            ++pos;
            return v;
        }
        for (;;) {
            skipWs();
            JsonValue key = parseString();
            skipWs();
            expect(':');
            v.members.emplace_back(key.text, parseValue());
            skipWs();
            if (peek(',')) {
                ++pos;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    parseArray()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        expect('[');
        skipWs();
        if (peek(']')) {
            ++pos;
            return v;
        }
        for (;;) {
            v.items.push_back(parseValue());
            skipWs();
            if (peek(',')) {
                ++pos;
                continue;
            }
            expect(']');
            return v;
        }
    }

    JsonValue
    parseString()
    {
        if (!peek('"'))
            throw JsonError("expected a string", pos);
        ++pos;
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        while (pos < s.size() && s[pos] != '"') {
            char c = s[pos++];
            if (c != '\\') {
                v.text += c;
                continue;
            }
            if (pos >= s.size())
                throw JsonError("unterminated escape", pos);
            const char e = s[pos++];
            switch (e) {
              case '"': v.text += '"'; break;
              case '\\': v.text += '\\'; break;
              case '/': v.text += '/'; break;
              case 'b': v.text += '\b'; break;
              case 'f': v.text += '\f'; break;
              case 'n': v.text += '\n'; break;
              case 'r': v.text += '\r'; break;
              case 't': v.text += '\t'; break;
              case 'u': v.text += parseUnicodeEscape(); break;
              default:
                  throw JsonError(std::string("unknown escape '\\") +
                                      e + "'",
                                  pos - 1);
            }
        }
        if (pos >= s.size())
            throw JsonError("unterminated string", pos);
        ++pos;
        return v;
    }

    /** The four hex digits of one \uXXXX escape. */
    unsigned
    readHex4()
    {
        if (pos + 4 > s.size())
            throw JsonError("truncated \\u escape", pos);
        unsigned cp = 0;
        for (int i = 0; i < 4; ++i) {
            const char h = s[pos++];
            cp <<= 4;
            if (h >= '0' && h <= '9')
                cp |= unsigned(h - '0');
            else if (h >= 'a' && h <= 'f')
                cp |= unsigned(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
                cp |= unsigned(h - 'A' + 10);
            else
                throw JsonError("bad hex digit in \\u escape",
                                pos - 1);
        }
        return cp;
    }

    /**
     * \uXXXX, encoded back to UTF-8. Astral-plane characters arrive
     * as a UTF-16 surrogate pair (high D800-DBFF immediately
     * followed by \u-escaped low DC00-DFFF) and are combined into
     * one 4-byte UTF-8 sequence; an unpaired or out-of-order
     * surrogate is a JsonError naming the offset — emitting it raw
     * would silently corrupt the string on round trip (invalid
     * UTF-8 that re-serializes as garbage).
     */
    std::string
    parseUnicodeEscape()
    {
        const size_t escapeStart = pos - 2; // the backslash
        unsigned cp = readHex4();
        if (cp >= 0xDC00 && cp <= 0xDFFF)
            throw JsonError("unpaired low surrogate in \\u escape",
                            escapeStart);
        if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (pos + 2 > s.size() || s[pos] != '\\' ||
                s[pos + 1] != 'u')
                throw JsonError(
                    "high surrogate not followed by a \\u escape",
                    escapeStart);
            pos += 2;
            const unsigned lo = readHex4();
            if (lo < 0xDC00 || lo > 0xDFFF)
                throw JsonError("high surrogate followed by a "
                                "non-low-surrogate \\u escape",
                                escapeStart);
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
        }
        std::string out;
        if (cp < 0x80) {
            out += char(cp);
        } else if (cp < 0x800) {
            out += char(0xC0 | (cp >> 6));
            out += char(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += char(0xE0 | (cp >> 12));
            out += char(0x80 | ((cp >> 6) & 0x3F));
            out += char(0x80 | (cp & 0x3F));
        } else {
            out += char(0xF0 | (cp >> 18));
            out += char(0x80 | ((cp >> 12) & 0x3F));
            out += char(0x80 | ((cp >> 6) & 0x3F));
            out += char(0x80 | (cp & 0x3F));
        }
        return out;
    }

    JsonValue
    parseNumber()
    {
        const size_t start = pos;
        const char *begin = s.c_str() + pos;
        char *end = nullptr;
        const double d = std::strtod(begin, &end);
        if (end == begin)
            throw JsonError("expected a number", pos);
        pos += size_t(end - begin);
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.number = d;
        v.text = s.substr(start, pos - start);
        return v;
    }

    JsonValue
    parseBool()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        if (s.compare(pos, 4, "true") == 0) {
            v.boolean = true;
            pos += 4;
            return v;
        }
        if (s.compare(pos, 5, "false") == 0) {
            v.boolean = false;
            pos += 5;
            return v;
        }
        throw JsonError("expected true or false", pos);
    }

    JsonValue
    parseNull()
    {
        if (s.compare(pos, 4, "null") != 0)
            throw JsonError("expected null", pos);
        pos += 4;
        return JsonValue{};
    }

    void
    expect(char c)
    {
        skipWs();
        if (pos >= s.size() || s[pos] != c)
            throw JsonError(std::string("expected '") + c + "'", pos);
        ++pos;
    }

    bool
    peek(char c)
    {
        skipWs();
        return pos < s.size() && s[pos] == c;
    }

    void
    skipWs()
    {
        while (pos < s.size() &&
               std::isspace(static_cast<unsigned char>(s[pos])))
            ++pos;
    }

    const std::string &s;
    size_t pos = 0;
};

} // namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[name, value] : members)
        if (name == key)
            return &value;
    return nullptr;
}

bool
JsonValue::asUint64(uint64_t &out) const
{
    if (kind != Kind::Number || text.empty())
        return false;
    // Reject signs and fractional/exponent forms: an exact machine
    // word must come from a plain digit run.
    for (char c : text)
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v =
        std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end != text.c_str() + text.size())
        return false;
    out = v;
    return true;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
              if (static_cast<unsigned char>(c) < 0x20) {
                  char buf[8];
                  std::snprintf(buf, sizeof(buf), "\\u%04x",
                                unsigned(c) & 0xFF);
                  out += buf;
              } else {
                  out += c;
              }
        }
    }
    return out;
}

void
jsonIndentInto(std::string &out, const std::string &doc, int spaces)
{
    const std::string pad(size_t(spaces), ' ');
    size_t pos = 0;
    bool first = true;
    while (pos < doc.size()) {
        size_t eol = doc.find('\n', pos);
        if (eol == std::string::npos)
            eol = doc.size();
        if (!first)
            out += "\n" + pad;
        out.append(doc, pos, eol - pos);
        first = false;
        pos = eol + 1;
    }
}

std::string
JsonValue::dump() const
{
    switch (kind) {
      case Kind::Null:
          return "null";
      case Kind::Bool:
          return boolean ? "true" : "false";
      case Kind::Number:
          return text.empty() ? std::to_string(number) : text;
      case Kind::String:
          return "\"" + jsonEscape(text) + "\"";
      case Kind::Array: {
          std::string out = "[";
          for (size_t i = 0; i < items.size(); ++i)
              out += (i ? ", " : "") + items[i].dump();
          return out + "]";
      }
      case Kind::Object: {
          std::string out = "{";
          for (size_t i = 0; i < members.size(); ++i)
              out += (i ? ", " : "") + ("\"" +
                     jsonEscape(members[i].first) + "\": ") +
                     members[i].second.dump();
          return out + "}";
      }
    }
    return "null";
}

JsonValue
JsonValue::parse(const std::string &doc)
{
    Parser p(doc);
    return p.parseDocument();
}

} // namespace qcc
