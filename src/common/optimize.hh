/**
 * @file
 * Derivative-free and quasi-Newton optimizers used by the VQE outer
 * loop and by the STO-nG basis fitter. The paper optimizes VQE
 * parameters with SLSQP; our problems are unconstrained, so L-BFGS with
 * numerical gradients is the equivalent quasi-Newton choice. Nelder-Mead
 * and SPSA cover noise-free derivative-free and noisy regimes.
 */

#ifndef QCC_COMMON_OPTIMIZE_HH
#define QCC_COMMON_OPTIMIZE_HH

#include <cstdint>
#include <functional>
#include <vector>

namespace qcc {

/** Scalar objective over a parameter vector. */
using ObjectiveFn = std::function<double(const std::vector<double> &)>;

/** Optional analytic gradient. */
using GradientFn =
    std::function<std::vector<double>(const std::vector<double> &)>;

/** Result of a minimization run. */
struct OptimizeResult
{
    std::vector<double> x;    ///< best parameters found
    double fun = 0.0;         ///< objective at x
    int iterations = 0;       ///< outer-loop iterations (paper metric)
    int funEvals = 0;         ///< objective evaluations
    bool converged = false;   ///< tolerance reached before maxIter
};

/** Nelder-Mead options. */
struct NelderMeadOptions
{
    int maxIter = 2000;
    double xatol = 1e-6;      ///< simplex size tolerance
    double fatol = 1e-8;      ///< function spread tolerance
    double initStep = 0.1;    ///< initial simplex edge length
};

/** Downhill-simplex minimization (Nelder-Mead). */
OptimizeResult nelderMead(const ObjectiveFn &f, std::vector<double> x0,
                          const NelderMeadOptions &opts = {});

/** L-BFGS options. */
struct LbfgsOptions
{
    int maxIter = 200;
    int history = 10;         ///< stored curvature pairs
    double gtol = 1e-5;       ///< gradient infinity-norm tolerance
    double ftol = 1e-9;       ///< relative objective-change tolerance
    double fdStep = 1e-6;     ///< central-difference step when no grad
};

/**
 * L-BFGS minimization with Armijo backtracking line search. If grad is
 * null, central finite differences are used (2*dim evaluations per
 * gradient, mirroring SciPy SLSQP's numerical-gradient mode used by the
 * paper).
 */
OptimizeResult lbfgsMinimize(const ObjectiveFn &f, std::vector<double> x0,
                             const LbfgsOptions &opts = {},
                             const GradientFn &grad = nullptr);

/** SPSA options (for noisy objectives). */
struct SpsaOptions
{
    int maxIter = 300;
    double a = 0.2;           ///< step-size numerator
    double c = 0.1;           ///< perturbation size
    double alpha = 0.602;     ///< step-size decay exponent
    double gamma = 0.101;     ///< perturbation decay exponent
    double stability = 10.0;  ///< step-size stability constant A
    uint64_t seed = 7;
};

/**
 * Simultaneous-perturbation stochastic approximation: two objective
 * evaluations per iteration regardless of dimension, robust to shot and
 * hardware noise.
 */
OptimizeResult spsa(const ObjectiveFn &f, std::vector<double> x0,
                    const SpsaOptions &opts = {});

/** Central-difference numerical gradient helper. */
std::vector<double> numericalGradient(const ObjectiveFn &f,
                                      const std::vector<double> &x,
                                      double step = 1e-6);

} // namespace qcc

#endif // QCC_COMMON_OPTIMIZE_HH
