/**
 * @file
 * Seeded pseudo-random number generator wrapper used everywhere a
 * reproducible stream is needed (yield Monte-Carlo, random ansatz
 * selection, SPSA perturbations, simulator shot sampling), plus the
 * process-wide seed policy: every stochastic default derives from one
 * master seed (QCC_SEED when set), so a whole run — sampling, SPSA,
 * yield Monte-Carlo — replays bit-for-bit from a single knob.
 */

#ifndef QCC_COMMON_RNG_HH
#define QCC_COMMON_RNG_HH

#include <cstdint>
#include <random>
#include <vector>

namespace qcc {

/**
 * Parse an unsigned-integer environment knob. Returns `fallback`
 * (with a warning) when the variable is set but not a clean decimal
 * integer or falls below `min_value`; returns `fallback` silently
 * when unset. Shared by every numeric QCC_* knob so they all reject
 * garbage the same way.
 */
uint64_t envUint(const char *name, uint64_t fallback,
                 uint64_t min_value = 0);

/**
 * Master seed for every stochastic default: QCC_SEED when the
 * environment sets it (parsed as an unsigned integer), otherwise
 * 2021. Read once and cached; set the variable before the first use.
 */
uint64_t globalSeed();

/**
 * Deterministic stream derivation: a splitmix64-style mix of `seed`
 * and `stream`, so independent consumers (each shot batch, each
 * gradient task, each Monte-Carlo trial) get decorrelated engines
 * that still replay from one master seed. Pure function of its
 * arguments — derived streams never depend on call order.
 */
uint64_t deriveStream(uint64_t seed, uint64_t stream);

/** deriveStream anchored at the process-wide master seed. */
uint64_t deriveSeed(uint64_t stream);

/**
 * Thin deterministic wrapper around std::mt19937_64. All stochastic
 * components of the library take an Rng by reference so experiments are
 * reproducible from a single seed.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : engine(seed) {}

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine);
    }

    /** Uniform integer in [0, n). Requires n > 0. */
    uint64_t
    index(uint64_t n)
    {
        return std::uniform_int_distribution<uint64_t>(0, n - 1)(engine);
    }

    /** Standard normal sample scaled to the given sigma. */
    double
    gaussian(double mean = 0.0, double sigma = 1.0)
    {
        return std::normal_distribution<double>(mean, sigma)(engine);
    }

    /** Fair coin flip. */
    bool
    coin()
    {
        return index(2) == 1;
    }

    /** Fisher-Yates shuffle of an index vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i)
            std::swap(v[i - 1], v[index(i)]);
    }

    /** Choose k distinct indices out of n (unsorted). */
    std::vector<size_t> choose(size_t n, size_t k);

  private:
    std::mt19937_64 engine;
};

} // namespace qcc

#endif // QCC_COMMON_RNG_HH
