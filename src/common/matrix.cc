#include "common/matrix.hh"

#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace qcc {

Matrix
Matrix::identity(size_t n)
{
    Matrix m(n, n);
    for (size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

Matrix
Matrix::operator+(const Matrix &o) const
{
    Matrix r = *this;
    r += o;
    return r;
}

Matrix
Matrix::operator-(const Matrix &o) const
{
    Matrix r = *this;
    r -= o;
    return r;
}

Matrix &
Matrix::operator+=(const Matrix &o)
{
    if (nRows != o.nRows || nCols != o.nCols)
        panic("Matrix+=: shape mismatch");
    for (size_t i = 0; i < elems.size(); ++i)
        elems[i] += o.elems[i];
    return *this;
}

Matrix &
Matrix::operator-=(const Matrix &o)
{
    if (nRows != o.nRows || nCols != o.nCols)
        panic("Matrix-=: shape mismatch");
    for (size_t i = 0; i < elems.size(); ++i)
        elems[i] -= o.elems[i];
    return *this;
}

Matrix
Matrix::operator*(const Matrix &o) const
{
    if (nCols != o.nRows)
        panic("Matrix*: shape mismatch");
    Matrix r(nRows, o.nCols);
    for (size_t i = 0; i < nRows; ++i) {
        for (size_t k = 0; k < nCols; ++k) {
            double a = (*this)(i, k);
            if (a == 0.0)
                continue;
            for (size_t j = 0; j < o.nCols; ++j)
                r(i, j) += a * o(k, j);
        }
    }
    return r;
}

Matrix
Matrix::operator*(double s) const
{
    Matrix r = *this;
    for (auto &e : r.elems)
        e *= s;
    return r;
}

Matrix
Matrix::t() const
{
    Matrix r(nCols, nRows);
    for (size_t i = 0; i < nRows; ++i)
        for (size_t j = 0; j < nCols; ++j)
            r(j, i) = (*this)(i, j);
    return r;
}

double
Matrix::dot(const Matrix &o) const
{
    if (nRows != o.nRows || nCols != o.nCols)
        panic("Matrix::dot: shape mismatch");
    double s = 0.0;
    for (size_t i = 0; i < elems.size(); ++i)
        s += elems[i] * o.elems[i];
    return s;
}

double
Matrix::maxAbs() const
{
    double m = 0.0;
    for (double e : elems)
        m = std::max(m, std::fabs(e));
    return m;
}

double
Matrix::trace() const
{
    if (nRows != nCols)
        panic("Matrix::trace: not square");
    double s = 0.0;
    for (size_t i = 0; i < nRows; ++i)
        s += (*this)(i, i);
    return s;
}

std::string
Matrix::str(int precision) const
{
    std::string out;
    char buf[64];
    for (size_t i = 0; i < nRows; ++i) {
        for (size_t j = 0; j < nCols; ++j) {
            std::snprintf(buf, sizeof(buf), "% .*f ", precision,
                          (*this)(i, j));
            out += buf;
        }
        out += '\n';
    }
    return out;
}

} // namespace qcc
