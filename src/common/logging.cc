#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace qcc {

namespace {

/** QCC_LOG parse; true when the env pins the level explicitly. */
bool
envLogLevel(LogLevel &out)
{
    const char *env = std::getenv("QCC_LOG");
    if (!env || !*env)
        return false;
    if (!std::strcmp(env, "quiet") || !std::strcmp(env, "0")) {
        out = LogLevel::Quiet;
        return true;
    }
    if (!std::strcmp(env, "debug") || !std::strcmp(env, "2")) {
        out = LogLevel::Debug;
        return true;
    }
    if (!std::strcmp(env, "info") || !std::strcmp(env, "1")) {
        out = LogLevel::Info;
        return true;
    }
    std::fprintf(stderr, "warn: QCC_LOG=%s not recognized "
                         "(quiet|info|debug)\n",
                 env);
    return false;
}

/** One env parse per process, shared by pin check and level. */
struct LevelState
{
    LogLevel level = LogLevel::Info;
    bool pinned = false;
};

LevelState &
levelState()
{
    static LevelState state = [] {
        LevelState s;
        s.pinned = envLogLevel(s.level);
        return s;
    }();
    return state;
}

bool
logLevelPinned()
{
    return levelState().pinned;
}

LogLevel &
logLevelRef()
{
    return levelState().level;
}

} // namespace

void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
error(const std::string &msg)
{
    std::fprintf(stderr, "error: %s\n", msg.c_str());
}

void
inform(const std::string &msg)
{
    if (logLevelRef() >= LogLevel::Info)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
debug(const std::string &msg)
{
    if (logLevelRef() >= LogLevel::Debug)
        std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

LogLevel
logLevel()
{
    return logLevelRef();
}

void
setLogLevel(LogLevel level)
{
    logLevelRef() = level;
}

void
setVerbose(bool verbose)
{
    // An explicit QCC_LOG in the environment outranks the legacy
    // programmatic toggle (benches call setVerbose(false); QCC_LOG
    // lets the user turn that output back on without a rebuild).
    if (logLevelPinned())
        return;
    logLevelRef() = verbose ? LogLevel::Info : LogLevel::Quiet;
}

bool
isVerbose()
{
    return logLevelRef() >= LogLevel::Info;
}

std::string
qccJsonPath(const std::string &file_name)
{
    const char *env = std::getenv("QCC_JSON");
    if (!env)
        return {};
    const std::string dir(env);
    if (dir.empty() || dir == "0")
        return {};
    return (dir == "1" ? std::string() : dir + "/") + file_name;
}

} // namespace qcc
