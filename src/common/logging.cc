#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace qcc {

namespace {
bool verboseFlag = true;
}

void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const std::string &msg)
{
    if (verboseFlag)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setVerbose(bool verbose)
{
    verboseFlag = verbose;
}

bool
isVerbose()
{
    return verboseFlag;
}

std::string
qccJsonPath(const std::string &file_name)
{
    const char *env = std::getenv("QCC_JSON");
    if (!env)
        return {};
    const std::string dir(env);
    if (dir.empty() || dir == "0")
        return {};
    return (dir == "1" ? std::string() : dir + "/") + file_name;
}

} // namespace qcc
