/**
 * @file
 * Dense linear-algebra helpers for the chemistry substrate: symmetric
 * eigendecomposition (cyclic Jacobi), linear solves (partial-pivot
 * Gauss), and symmetric inverse square root (Loewdin orthogonalization).
 */

#ifndef QCC_COMMON_LINALG_HH
#define QCC_COMMON_LINALG_HH

#include <vector>

#include "common/matrix.hh"

namespace qcc {

/** Result of a symmetric eigendecomposition A = V diag(w) V^T. */
struct EigenSym
{
    /** Eigenvalues in ascending order. */
    std::vector<double> values;
    /** Column i of vectors is the eigenvector for values[i]. */
    Matrix vectors;
};

/**
 * Eigendecomposition of a real symmetric matrix via the cyclic Jacobi
 * method. Accurate and simple; fine for the <= ~20 x 20 matrices the
 * chemistry stack produces.
 */
EigenSym eigenSym(const Matrix &a, int max_sweeps = 100);

/** Solve A x = b with partial-pivot Gaussian elimination. */
std::vector<double> solveLinear(Matrix a, std::vector<double> b);

/**
 * Non-panicking variant of solveLinear: returns false (leaving out
 * untouched) when the system is numerically singular. Used by DIIS,
 * whose Pulay matrix degenerates near convergence.
 */
bool trySolveLinear(Matrix a, std::vector<double> b,
                    std::vector<double> &out);

/**
 * Symmetric inverse square root S^{-1/2}, dropping eigenvalues below
 * threshold (near-linear-dependence guard).
 */
Matrix invSqrtSym(const Matrix &s, double threshold = 1e-10);

} // namespace qcc

#endif // QCC_COMMON_LINALG_HH
