/**
 * @file
 * Minimal JSON document model shared by the declarative layers. The
 * flat ExperimentSpec parser (api/spec) and the nested SweepSpec
 * documents (sweep/) both need to read user-authored JSON; this is
 * the one parser behind them: a small ordered DOM (object member
 * order is preserved, so axis order in a sweep document is
 * meaningful) with provenance-carrying errors. Numbers keep their
 * raw source text next to the parsed double, so 64-bit integers
 * (seeds, shot counts) round-trip exactly instead of through a
 * double.
 *
 * This is deliberately not a general-purpose JSON library: no
 * comments, no NaN/Inf extensions, UTF-8 pass-through for string
 * bytes. \uXXXX escapes cover the full Unicode range: astral-plane
 * characters arrive as UTF-16 surrogate pairs and decode to 4-byte
 * UTF-8; an unpaired surrogate is a JsonError naming the offset.
 */

#ifndef QCC_COMMON_JSON_HH
#define QCC_COMMON_JSON_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace qcc {

/** Malformed-document failure with byte-offset provenance. */
class JsonError : public std::runtime_error
{
  public:
    JsonError(const std::string &detail, size_t offset)
        : std::runtime_error("JSON error at offset " +
                             std::to_string(offset) + ": " + detail),
          byteOffset(offset)
    {
    }

    size_t offset() const { return byteOffset; }

  private:
    size_t byteOffset;
};

/** One parsed JSON value (ordered-member objects). */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    /** String payload, or the raw literal text of a number. */
    std::string text;
    std::vector<JsonValue> items; ///< array elements
    /** Object members in document order. */
    std::vector<std::pair<std::string, JsonValue>> members;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Member lookup (objects); nullptr when absent. */
    const JsonValue *find(const std::string &key) const;

    /**
     * Number as an exact unsigned 64-bit integer, parsed from the
     * raw literal (doubles cannot carry a full uint64). False when
     * the value is not a non-negative integer literal in range.
     */
    bool asUint64(uint64_t &out) const;

    /** Serialize (compact; numbers keep their literal text). */
    std::string dump() const;

    /**
     * Parse one document; throws JsonError on malformed input or
     * trailing content.
     */
    static JsonValue parse(const std::string &doc);
};

/** JSON string escaping for the hand-rolled serializers. */
std::string jsonEscape(const std::string &s);

/**
 * Append a multi-line JSON document into `out`, indenting every
 * line after the first by `spaces` (embedding one hand-rolled
 * document inside another at the right nesting depth).
 */
void jsonIndentInto(std::string &out, const std::string &doc,
                    int spaces);

} // namespace qcc

#endif // QCC_COMMON_JSON_HH
