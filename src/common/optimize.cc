#include "common/optimize.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numeric>

#include "common/logging.hh"
#include "common/rng.hh"

namespace qcc {

std::vector<double>
numericalGradient(const ObjectiveFn &f, const std::vector<double> &x,
                  double step)
{
    std::vector<double> g(x.size());
    std::vector<double> xp = x;
    for (size_t i = 0; i < x.size(); ++i) {
        double orig = xp[i];
        xp[i] = orig + step;
        double fp = f(xp);
        xp[i] = orig - step;
        double fm = f(xp);
        xp[i] = orig;
        g[i] = (fp - fm) / (2.0 * step);
    }
    return g;
}

OptimizeResult
nelderMead(const ObjectiveFn &f, std::vector<double> x0,
           const NelderMeadOptions &opts)
{
    const size_t n = x0.size();
    OptimizeResult res;
    if (n == 0) {
        res.x = x0;
        res.fun = f(x0);
        res.funEvals = 1;
        res.converged = true;
        return res;
    }

    // Initial simplex: x0 plus one vertex per coordinate direction.
    std::vector<std::vector<double>> simplex(n + 1, x0);
    for (size_t i = 0; i < n; ++i)
        simplex[i + 1][i] += opts.initStep;

    std::vector<double> fv(n + 1);
    int evals = 0;
    for (size_t i = 0; i <= n; ++i) {
        fv[i] = f(simplex[i]);
        ++evals;
    }

    auto order = [&]() {
        std::vector<size_t> idx(n + 1);
        std::iota(idx.begin(), idx.end(), size_t{0});
        std::sort(idx.begin(), idx.end(),
                  [&](size_t a, size_t b) { return fv[a] < fv[b]; });
        std::vector<std::vector<double>> s2(n + 1);
        std::vector<double> f2(n + 1);
        for (size_t i = 0; i <= n; ++i) {
            s2[i] = simplex[idx[i]];
            f2[i] = fv[idx[i]];
        }
        simplex = std::move(s2);
        fv = std::move(f2);
    };

    int iter = 0;
    for (; iter < opts.maxIter; ++iter) {
        order();

        double fspread = std::fabs(fv[n] - fv[0]);
        double xspread = 0.0;
        for (size_t i = 0; i < n; ++i)
            xspread = std::max(
                xspread, std::fabs(simplex[n][i] - simplex[0][i]));
        if (fspread < opts.fatol && xspread < opts.xatol) {
            res.converged = true;
            break;
        }

        // Centroid of all but worst.
        std::vector<double> cen(n, 0.0);
        for (size_t i = 0; i < n; ++i) {
            for (size_t j = 0; j < n; ++j)
                cen[j] += simplex[i][j];
        }
        for (double &c : cen)
            c /= double(n);

        auto blend = [&](double coef) {
            std::vector<double> p(n);
            for (size_t j = 0; j < n; ++j)
                p[j] = cen[j] + coef * (simplex[n][j] - cen[j]);
            return p;
        };

        std::vector<double> xr = blend(-1.0);
        double fr = f(xr);
        ++evals;

        if (fr < fv[0]) {
            std::vector<double> xe = blend(-2.0);
            double fe = f(xe);
            ++evals;
            if (fe < fr) {
                simplex[n] = xe;
                fv[n] = fe;
            } else {
                simplex[n] = xr;
                fv[n] = fr;
            }
        } else if (fr < fv[n - 1]) {
            simplex[n] = xr;
            fv[n] = fr;
        } else {
            bool outside = fr < fv[n];
            std::vector<double> xc = blend(outside ? -0.5 : 0.5);
            double fc = f(xc);
            ++evals;
            if (fc < std::min(fr, fv[n])) {
                simplex[n] = xc;
                fv[n] = fc;
            } else {
                // Shrink toward best vertex.
                for (size_t i = 1; i <= n; ++i) {
                    for (size_t j = 0; j < n; ++j) {
                        simplex[i][j] = simplex[0][j] +
                            0.5 * (simplex[i][j] - simplex[0][j]);
                    }
                    fv[i] = f(simplex[i]);
                    ++evals;
                }
            }
        }
    }

    order();
    res.x = simplex[0];
    res.fun = fv[0];
    res.iterations = iter;
    res.funEvals = evals;
    return res;
}

OptimizeResult
lbfgsMinimize(const ObjectiveFn &f, std::vector<double> x0,
              const LbfgsOptions &opts, const GradientFn &grad)
{
    const size_t n = x0.size();
    OptimizeResult res;
    res.x = x0;
    if (n == 0) {
        res.fun = f(x0);
        res.funEvals = 1;
        res.converged = true;
        return res;
    }

    int evals = 0;
    auto gradient = [&](const std::vector<double> &x) {
        if (grad)
            return grad(x);
        evals += int(2 * n);
        return numericalGradient(f, x, opts.fdStep);
    };

    std::vector<double> x = x0;
    double fx = f(x);
    ++evals;
    std::vector<double> g = gradient(x);

    std::deque<std::vector<double>> sHist, yHist;
    std::deque<double> rhoHist;

    auto infNorm = [](const std::vector<double> &v) {
        double m = 0.0;
        for (double e : v)
            m = std::max(m, std::fabs(e));
        return m;
    };

    int iter = 0;
    for (; iter < opts.maxIter; ++iter) {
        if (infNorm(g) < opts.gtol) {
            res.converged = true;
            break;
        }

        // Two-loop recursion for the search direction d = -H g.
        std::vector<double> q = g;
        std::vector<double> alpha(sHist.size());
        for (size_t i = sHist.size(); i-- > 0;) {
            double a = rhoHist[i] *
                std::inner_product(sHist[i].begin(), sHist[i].end(),
                                   q.begin(), 0.0);
            alpha[i] = a;
            for (size_t j = 0; j < n; ++j)
                q[j] -= a * yHist[i][j];
        }
        double scale = 1.0;
        if (!sHist.empty()) {
            double sy = std::inner_product(sHist.back().begin(),
                                           sHist.back().end(),
                                           yHist.back().begin(), 0.0);
            double yy = std::inner_product(yHist.back().begin(),
                                           yHist.back().end(),
                                           yHist.back().begin(), 0.0);
            if (yy > 0)
                scale = sy / yy;
        }
        for (double &e : q)
            e *= scale;
        for (size_t i = 0; i < sHist.size(); ++i) {
            double b = rhoHist[i] *
                std::inner_product(yHist[i].begin(), yHist[i].end(),
                                   q.begin(), 0.0);
            for (size_t j = 0; j < n; ++j)
                q[j] += sHist[i][j] * (alpha[i] - b);
        }
        std::vector<double> d(n);
        for (size_t j = 0; j < n; ++j)
            d[j] = -q[j];

        double dg = std::inner_product(d.begin(), d.end(), g.begin(),
                                       0.0);
        if (dg > -1e-16) {
            // Not a descent direction; reset to steepest descent.
            for (size_t j = 0; j < n; ++j)
                d[j] = -g[j];
            dg = -std::inner_product(g.begin(), g.end(), g.begin(), 0.0);
            sHist.clear();
            yHist.clear();
            rhoHist.clear();
        }

        // Armijo backtracking.
        double step = 1.0;
        double fNew = fx;
        std::vector<double> xNew = x;
        bool accepted = false;
        for (int ls = 0; ls < 40; ++ls) {
            for (size_t j = 0; j < n; ++j)
                xNew[j] = x[j] + step * d[j];
            fNew = f(xNew);
            ++evals;
            if (fNew <= fx + 1e-4 * step * dg) {
                accepted = true;
                break;
            }
            step *= 0.5;
        }
        if (!accepted) {
            res.converged = true; // no further progress possible
            break;
        }

        std::vector<double> gNew = gradient(xNew);
        std::vector<double> s(n), y(n);
        for (size_t j = 0; j < n; ++j) {
            s[j] = xNew[j] - x[j];
            y[j] = gNew[j] - g[j];
        }
        double sy = std::inner_product(s.begin(), s.end(), y.begin(),
                                       0.0);
        if (sy > 1e-12) {
            sHist.push_back(std::move(s));
            yHist.push_back(std::move(y));
            rhoHist.push_back(1.0 / sy);
            if (int(sHist.size()) > opts.history) {
                sHist.pop_front();
                yHist.pop_front();
                rhoHist.pop_front();
            }
        }

        double fChange = std::fabs(fx - fNew);
        x = std::move(xNew);
        fx = fNew;
        g = std::move(gNew);

        if (fChange < opts.ftol * (1.0 + std::fabs(fx))) {
            ++iter;
            res.converged = true;
            break;
        }
    }

    res.x = x;
    res.fun = fx;
    res.iterations = iter;
    res.funEvals = evals;
    return res;
}

OptimizeResult
spsa(const ObjectiveFn &f, std::vector<double> x0,
     const SpsaOptions &opts)
{
    const size_t n = x0.size();
    OptimizeResult res;
    Rng rng(opts.seed);

    std::vector<double> x = x0;
    std::vector<double> best = x;
    double fBest = f(x);
    int evals = 1;

    int iter = 0;
    for (; iter < opts.maxIter; ++iter) {
        double ak = opts.a /
            std::pow(iter + 1 + opts.stability, opts.alpha);
        double ck = opts.c / std::pow(iter + 1, opts.gamma);

        std::vector<double> delta(n);
        for (size_t j = 0; j < n; ++j)
            delta[j] = rng.coin() ? 1.0 : -1.0;

        std::vector<double> xp = x, xm = x;
        for (size_t j = 0; j < n; ++j) {
            xp[j] += ck * delta[j];
            xm[j] -= ck * delta[j];
        }
        double fp = f(xp), fm = f(xm);
        evals += 2;

        for (size_t j = 0; j < n; ++j)
            x[j] -= ak * (fp - fm) / (2.0 * ck * delta[j]);

        double fx = f(x);
        ++evals;
        if (fx < fBest) {
            fBest = fx;
            best = x;
        }
    }

    res.x = best;
    res.fun = fBest;
    res.iterations = iter;
    res.funEvals = evals;
    res.converged = true;
    return res;
}

} // namespace qcc
