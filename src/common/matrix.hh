/**
 * @file
 * Small dense matrix type used by the chemistry substrate (overlap,
 * Fock, density matrices) and by linear-algebra helpers. Sizes in this
 * library are tiny (<= ~20 x 20), so a straightforward row-major
 * std::vector implementation is appropriate.
 */

#ifndef QCC_COMMON_MATRIX_HH
#define QCC_COMMON_MATRIX_HH

#include <cstddef>
#include <string>
#include <vector>

namespace qcc {

/** Dense row-major matrix of doubles. */
class Matrix
{
  public:
    Matrix() : nRows(0), nCols(0) {}

    /** Construct a rows x cols matrix filled with fill. */
    Matrix(size_t rows, size_t cols, double fill = 0.0)
        : nRows(rows), nCols(cols), elems(rows * cols, fill)
    {}

    /** Identity matrix of the given order. */
    static Matrix identity(size_t n);

    size_t rows() const { return nRows; }
    size_t cols() const { return nCols; }

    double &operator()(size_t r, size_t c) { return elems[r * nCols + c]; }

    double
    operator()(size_t r, size_t c) const
    {
        return elems[r * nCols + c];
    }

    Matrix operator+(const Matrix &o) const;
    Matrix operator-(const Matrix &o) const;
    Matrix operator*(const Matrix &o) const;
    Matrix operator*(double s) const;
    Matrix &operator+=(const Matrix &o);
    Matrix &operator-=(const Matrix &o);

    /** Transpose. */
    Matrix t() const;

    /** Frobenius-inner-product trace(A^T B) helper. */
    double dot(const Matrix &o) const;

    /** Largest absolute element. */
    double maxAbs() const;

    /** Trace (square matrices only). */
    double trace() const;

    /** Human-readable dump for debugging. */
    std::string str(int precision = 6) const;

  private:
    size_t nRows;
    size_t nCols;
    std::vector<double> elems;
};

} // namespace qcc

#endif // QCC_COMMON_MATRIX_HH
