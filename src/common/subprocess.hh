/**
 * @file
 * Process spawn/reap and pipe-framing helpers for the process-per-job
 * sweep runner (src/sweepd). A service thread forks one worker per
 * job, feeds it a framed request over stdin, and reads a framed
 * response from its stdout under a hard wall-clock deadline; when the
 * deadline passes the child is SIGKILLed and reaped, which is the
 * enforcement a soft in-process timeout cannot provide. Frames are
 * magic + length + payload + FNV-1a checksum (host byte order — the
 * two ends are always the same binary on the same machine), so a
 * truncated or interleaved stream is detected as Corrupt rather than
 * silently mis-parsed.
 *
 * Everything here is POSIX (fork/execve/poll/waitpid); the repo's CI
 * and deployment targets are Linux.
 */

#ifndef QCC_COMMON_SUBPROCESS_HH
#define QCC_COMMON_SUBPROCESS_HH

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace qcc {

/** One spawned child and the parent's ends of its stdio pipes. */
struct ChildProcess
{
    long pid = -1;
    int stdinFd = -1;  ///< parent writes the child's stdin here
    int stdoutFd = -1; ///< parent reads the child's stdout here

    bool valid() const { return pid > 0; }
};

/**
 * fork + execve `argv` (argv[0] is the executable path) with stdin
 * and stdout piped back to the caller and stderr inherited. The
 * child's environment is the parent's plus `env_overrides`
 * (replacing any existing value for the same name). Returns an
 * invalid ChildProcess on failure; an exec failure surfaces as the
 * child exiting 127. The caller owns both returned fds.
 */
ChildProcess
spawnChildProcess(const std::vector<std::string> &argv,
                  const std::vector<std::pair<std::string, std::string>>
                      &env_overrides = {});

/** Close an fd if it is open (idempotent convenience). */
void closeFd(int &fd);

/** Outcome of one framed read. */
enum class FrameStatus
{
    Ok,      ///< a whole valid frame landed in `payload`
    Eof,     ///< stream closed before a frame (child exited/crashed)
    Timeout, ///< deadline passed mid-frame or before one started
    Corrupt, ///< bad magic, absurd length, or checksum mismatch
    IoError, ///< read(2)/poll(2) failure
};

const char *frameStatusName(FrameStatus status);

/**
 * Write one frame (magic, u64 length, payload, u64 FNV-1a of the
 * payload); false on any write failure (e.g. EPIPE after the peer
 * died — callers must have SIGPIPE ignored, see ignoreSigpipe()).
 */
bool writeFrame(int fd, std::string_view payload);

/**
 * Read one frame into `payload`, waiting at most `timeout_ms`
 * (<= 0 waits indefinitely). The deadline covers the whole frame,
 * not each byte, so a trickling writer cannot extend it.
 */
FrameStatus readFrame(int fd, std::string &payload,
                      double timeout_ms);

/** Result of reaping a child. */
struct ExitStatus
{
    bool exited = false;   ///< normal termination; `code` is valid
    int code = 0;
    bool signaled = false; ///< killed by a signal; `sig` is valid
    int sig = 0;

    bool ok() const { return exited && code == 0; }

    /** "exit 3", "signal 6 (Aborted)", ... for failure records. */
    std::string describe() const;
};

/** Blocking waitpid; safe to call after killProcess. */
ExitStatus reapProcess(long pid);

/** SIGKILL (idempotent; reapProcess must still be called). */
void killProcess(long pid);

/**
 * Ignore SIGPIPE process-wide (once). Any code writing to child
 * pipes must call this first, or a worker that crashes mid-read
 * kills the whole service — the exact failure the process-per-job
 * runner exists to contain.
 */
void ignoreSigpipe();

} // namespace qcc

#endif // QCC_COMMON_SUBPROCESS_HH
