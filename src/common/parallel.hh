/**
 * @file
 * Block-parallel helpers for the simulator's amplitude sweeps. A
 * persistent std::thread pool executes chunked index ranges; small
 * ranges (or single-core machines, or QCC_THREADS=1) run inline so
 * the kernels stay deterministic and cheap at low qubit counts.
 * Reductions combine per-chunk partials in chunk order, so results
 * are bit-identical regardless of thread timing.
 */

#ifndef QCC_COMMON_PARALLEL_HH
#define QCC_COMMON_PARALLEL_HH

#include <algorithm>
#include <cstddef>
#include <functional>
#include <vector>

namespace qcc {

/**
 * Worker count used for parallel sweeps: QCC_THREADS when set,
 * otherwise std::thread::hardware_concurrency (at least 1).
 */
unsigned parallelThreads();

namespace detail {

/**
 * Run chunk_fn(0) ... chunk_fn(n_chunks - 1) on the shared pool,
 * blocking until every chunk finishes. Chunks must be independent.
 * Nested calls from inside a chunk run serially.
 */
void poolRun(size_t n_chunks, const std::function<void(size_t)> &chunk_fn);

/** Split [begin, end) into at most max_chunks grain-sized pieces. */
inline size_t
chunkCount(size_t begin, size_t end, size_t grain, size_t max_chunks)
{
    const size_t n = end - begin;
    return std::min(max_chunks, (n + grain - 1) / grain);
}

} // namespace detail

/** Default minimum elements per chunk; below ~2*this a sweep is serial. */
constexpr size_t kParallelGrain = size_t{1} << 14;

/**
 * Apply body(lo, hi) over a partition of [begin, end). The body may
 * write freely inside its own subrange (and to pair partners that no
 * other subrange selects, as the bit-mask kernels do).
 */
template <typename Body>
void
parallelFor(size_t begin, size_t end, Body &&body,
            size_t grain = kParallelGrain)
{
    const unsigned nt = parallelThreads();
    if (nt <= 1 || end - begin <= 2 * grain) {
        if (begin < end)
            body(begin, end);
        return;
    }
    const size_t chunks =
        detail::chunkCount(begin, end, grain, size_t{nt} * 4);
    const size_t step = (end - begin + chunks - 1) / chunks;
    detail::poolRun(chunks, [&](size_t ci) {
        const size_t lo = begin + ci * step;
        const size_t hi = std::min(end, lo + step);
        if (lo < hi)
            body(lo, hi);
    });
}

/**
 * Reduce body(lo, hi) -> T over a partition of [begin, end); partials
 * are combined with += in chunk order (deterministic).
 */
template <typename T, typename Body>
T
parallelReduce(size_t begin, size_t end, T init, Body &&body,
               size_t grain = kParallelGrain)
{
    const unsigned nt = parallelThreads();
    if (nt <= 1 || end - begin <= 2 * grain) {
        T acc = init;
        if (begin < end)
            acc += body(begin, end);
        return acc;
    }
    const size_t chunks =
        detail::chunkCount(begin, end, grain, size_t{nt} * 4);
    const size_t step = (end - begin + chunks - 1) / chunks;
    std::vector<T> partial(chunks, init);
    detail::poolRun(chunks, [&](size_t ci) {
        const size_t lo = begin + ci * step;
        const size_t hi = std::min(end, lo + step);
        if (lo < hi)
            partial[ci] = body(lo, hi);
    });
    T acc = init;
    for (size_t ci = 0; ci < chunks; ++ci)
        acc += partial[ci];
    return acc;
}

} // namespace qcc

#endif // QCC_COMMON_PARALLEL_HH
