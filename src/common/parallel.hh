/**
 * @file
 * Block-parallel helpers for the simulator's amplitude sweeps. A
 * persistent std::thread pool executes chunked index ranges; small
 * ranges (or single-core machines, or QCC_THREADS=1) run inline so
 * the kernels stay deterministic and cheap at low qubit counts.
 * Reductions combine per-chunk partials in chunk order, so results
 * are bit-identical regardless of thread timing.
 */

#ifndef QCC_COMMON_PARALLEL_HH
#define QCC_COMMON_PARALLEL_HH

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <functional>
#include <mutex>
#include <vector>

namespace qcc {

/**
 * Worker count used for parallel sweeps: QCC_THREADS when set,
 * otherwise std::thread::hardware_concurrency (at least 1). This is
 * the number that shapes chunking — and therefore results — so it
 * never varies at runtime.
 */
unsigned parallelThreads();

/**
 * Pool lanes a data-parallel sweep started on the calling thread may
 * occupy right now: parallelThreads() clamped by the process-wide
 * `QCC_JOB_WIDTH` cap and any ParallelWidthCap active on this
 * thread. Chunk structure is NOT derived from this (see
 * ParallelWidthCap), so capping changes scheduling, never results.
 */
unsigned parallelLanes();

/**
 * RAII per-thread cap on the pool lanes parallelFor/parallelReduce
 * sweeps may occupy — the fix for nested-parallelism
 * oversubscription: when the sweep engine runs N concurrent jobs,
 * each job caps its own sweeps to parallelThreads() / N lanes
 * instead of letting every job contend for the whole machine. A cap
 * of 1 runs sweeps inline on the caller (jobs stop serializing on
 * the shared pool entirely); a cap of 0 is a no-op. Chunking still
 * follows parallelThreads(), and chunk partials combine in chunk
 * order, so a capped sweep is bit-identical to an uncapped one —
 * the concurrency-1-vs-N byte-identity contract survives.
 */
class ParallelWidthCap
{
  public:
    explicit ParallelWidthCap(unsigned lanes);
    ~ParallelWidthCap();

    ParallelWidthCap(const ParallelWidthCap &) = delete;
    ParallelWidthCap &operator=(const ParallelWidthCap &) = delete;

  private:
    unsigned previous;
};

namespace detail {

/**
 * Run chunk_fn(0) ... chunk_fn(n_chunks - 1) on the shared pool,
 * blocking until every chunk finishes. Chunks must be independent.
 * Nested calls from inside a chunk run serially, as does any call
 * while parallelLanes() <= 1 (single core, QCC_THREADS=1, or a
 * width cap of 1).
 */
void poolRun(size_t n_chunks, const std::function<void(size_t)> &chunk_fn);

/** Split [begin, end) into at most max_chunks grain-sized pieces. */
inline size_t
chunkCount(size_t begin, size_t end, size_t grain, size_t max_chunks)
{
    const size_t n = end - begin;
    return std::min(max_chunks, (n + grain - 1) / grain);
}

} // namespace detail

/** Default minimum elements per chunk; below ~2*this a sweep is serial. */
constexpr size_t kParallelGrain = size_t{1} << 14;

/**
 * Cooperative cancellation flag shared between a controller and the
 * workers it fans out. Cancellation is a request, not a kill: code
 * that honors the token checks cancelled() at its own safe points
 * (the sweep engine checks before claiming each job), so in-flight
 * work always completes and its results stay consistent.
 */
class CancellationToken
{
  public:
    void requestCancel() { flag.store(true, std::memory_order_release); }
    bool cancelled() const { return flag.load(std::memory_order_acquire); }
    void reset() { flag.store(false, std::memory_order_release); }

  private:
    std::atomic<bool> flag{false};
};

/**
 * Bounded-concurrency executor for coarse independent jobs — whole
 * Experiment runs, not the amplitude-sweep chunks poolRun schedules.
 * Jobs claim indices from a shared counter on up to `width` dedicated
 * threads (plus load-balancing for free); a job may itself fan out
 * over the shared data-parallel pool, which serializes pool use
 * across jobs rather than deadlocking. Width 1 (or a single task)
 * runs inline on the caller with no thread traffic at all, which is
 * what makes concurrency-1 sweep runs bit-identical baselines.
 *
 * Tasks must not throw: exceptions cannot cross the thread boundary,
 * so callers catch inside the task (the sweep engine records a
 * failed-job status instead).
 */
class BoundedExecutor
{
  public:
    /** width 0 falls back to parallelThreads(). */
    explicit BoundedExecutor(unsigned width = 0);

    unsigned width() const { return concurrency; }

    /** Run task(0) ... task(n_tasks - 1); blocks until all finish. */
    void run(size_t n_tasks,
             const std::function<void(size_t)> &task) const;

  private:
    unsigned concurrency;
};

/**
 * Reusable heap buffers for per-task scratch state. Batched fan-outs
 * (the parameter-shift gradient's per-task statevectors) acquire a
 * buffer at task start and release it at task end, so steady-state
 * gradient calls recycle a few large allocations instead of paying
 * one O(2^n) allocation per task. Thread-safe; acquire() resizes the
 * recycled buffer to the requested length (no reallocation once the
 * pool has warmed up at that size). The pool caps both how many free
 * buffers it retains and their total retained capacity — beyond
 * either limit, released buffers are simply freed — so one wide
 * fan-out on a large problem cannot pin peak-size scratch memory
 * for the rest of the process.
 */
template <typename T>
class BufferPool
{
  public:
    /** Defaults: 32 buffers, 2^26 elements (1 GiB of cplx) total. */
    explicit BufferPool(size_t max_free = 32,
                        size_t max_elements = size_t{1} << 26)
        : maxFree(max_free), maxElements(max_elements)
    {
    }

    /** A buffer of exactly n elements (recycled when available). */
    std::vector<T>
    acquire(size_t n)
    {
        std::vector<T> buf;
        {
            std::lock_guard<std::mutex> lock(mutex);
            if (!freeList.empty()) {
                buf = std::move(freeList.back());
                freeList.pop_back();
                pooledElements -= buf.capacity();
            }
        }
        buf.resize(n);
        return buf;
    }

    /** Return a buffer to the pool (dropped when over a cap). */
    void
    release(std::vector<T> &&buf)
    {
        if (buf.capacity() == 0)
            return;
        std::lock_guard<std::mutex> lock(mutex);
        if (freeList.size() >= maxFree ||
            pooledElements + buf.capacity() > maxElements)
            return; // freed on scope exit
        pooledElements += buf.capacity();
        freeList.push_back(std::move(buf));
    }

    /** Free buffers currently pooled (observability/tests). */
    size_t
    pooled() const
    {
        std::lock_guard<std::mutex> lock(mutex);
        return freeList.size();
    }

  private:
    mutable std::mutex mutex;
    std::vector<std::vector<T>> freeList;
    size_t maxFree;
    size_t maxElements;
    size_t pooledElements = 0;
};

/**
 * Apply body(lo, hi) over a partition of [begin, end). The body may
 * write freely inside its own subrange (and to pair partners that no
 * other subrange selects, as the bit-mask kernels do).
 */
template <typename Body>
void
parallelFor(size_t begin, size_t end, Body &&body,
            size_t grain = kParallelGrain)
{
    const unsigned nt = parallelThreads();
    if (nt <= 1 || end - begin <= 2 * grain) {
        if (begin < end)
            body(begin, end);
        return;
    }
    const size_t chunks =
        detail::chunkCount(begin, end, grain, size_t{nt} * 4);
    const size_t step = (end - begin + chunks - 1) / chunks;
    detail::poolRun(chunks, [&](size_t ci) {
        const size_t lo = begin + ci * step;
        const size_t hi = std::min(end, lo + step);
        if (lo < hi)
            body(lo, hi);
    });
}

/**
 * Reduce body(lo, hi) -> T over a partition of [begin, end); partials
 * are combined with += in chunk order (deterministic).
 */
template <typename T, typename Body>
T
parallelReduce(size_t begin, size_t end, T init, Body &&body,
               size_t grain = kParallelGrain)
{
    const unsigned nt = parallelThreads();
    if (nt <= 1 || end - begin <= 2 * grain) {
        T acc = init;
        if (begin < end)
            acc += body(begin, end);
        return acc;
    }
    const size_t chunks =
        detail::chunkCount(begin, end, grain, size_t{nt} * 4);
    const size_t step = (end - begin + chunks - 1) / chunks;
    std::vector<T> partial(chunks, init);
    detail::poolRun(chunks, [&](size_t ci) {
        const size_t lo = begin + ci * step;
        const size_t hi = std::min(end, lo + step);
        if (lo < hi)
            partial[ci] = body(lo, hi);
    });
    T acc = init;
    for (size_t ci = 0; ci < chunks; ++ci)
        acc += partial[ci];
    return acc;
}

} // namespace qcc

#endif // QCC_COMMON_PARALLEL_HH
