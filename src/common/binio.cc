#include "common/binio.hh"

#include <atomic>
#include <cstdio>
#include <cstring>

#include <unistd.h>

namespace qcc {

// ------------------------------------------------------ BinaryWriter

void
BinaryWriter::u8(uint8_t v)
{
    buf.push_back(char(v));
}

void
BinaryWriter::u32(uint32_t v)
{
    buf.append(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
BinaryWriter::u64(uint64_t v)
{
    buf.append(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
BinaryWriter::f64(double v)
{
    buf.append(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
BinaryWriter::str(const std::string &s)
{
    u64(s.size());
    buf.append(s);
}

void
BinaryWriter::doubles(const std::vector<double> &v)
{
    u64(v.size());
    buf.append(reinterpret_cast<const char *>(v.data()),
               v.size() * sizeof(double));
}

void
BinaryWriter::u64s(const std::vector<uint64_t> &v)
{
    u64(v.size());
    buf.append(reinterpret_cast<const char *>(v.data()),
               v.size() * sizeof(uint64_t));
}

// ------------------------------------------------------ BinaryReader

void
BinaryReader::need(size_t n) const
{
    if (data.size() - pos < n)
        throw BinioError("truncated: need " + std::to_string(n) +
                             " bytes, have " +
                             std::to_string(data.size() - pos),
                         pos);
}

size_t
BinaryReader::count(size_t elem_size)
{
    const uint64_t n = u64();
    // The length prefix must be satisfiable by the bytes actually
    // present; anything else is corruption, caught before allocating.
    if (elem_size != 0 && n > remaining() / elem_size)
        throw BinioError("length prefix " + std::to_string(n) +
                             " exceeds remaining payload",
                         pos);
    return size_t(n);
}

uint8_t
BinaryReader::u8()
{
    need(1);
    return uint8_t(data[pos++]);
}

uint32_t
BinaryReader::u32()
{
    need(sizeof(uint32_t));
    uint32_t v;
    std::memcpy(&v, data.data() + pos, sizeof(v));
    pos += sizeof(v);
    return v;
}

uint64_t
BinaryReader::u64()
{
    need(sizeof(uint64_t));
    uint64_t v;
    std::memcpy(&v, data.data() + pos, sizeof(v));
    pos += sizeof(v);
    return v;
}

double
BinaryReader::f64()
{
    need(sizeof(double));
    double v;
    std::memcpy(&v, data.data() + pos, sizeof(v));
    pos += sizeof(v);
    return v;
}

std::string
BinaryReader::str()
{
    const size_t n = count(1);
    need(n);
    std::string s(data.data() + pos, n);
    pos += n;
    return s;
}

std::vector<double>
BinaryReader::doubles()
{
    const size_t n = count(sizeof(double));
    need(n * sizeof(double));
    std::vector<double> v(n);
    std::memcpy(v.data(), data.data() + pos, n * sizeof(double));
    pos += n * sizeof(double);
    return v;
}

std::vector<uint64_t>
BinaryReader::u64s()
{
    const size_t n = count(sizeof(uint64_t));
    need(n * sizeof(uint64_t));
    std::vector<uint64_t> v(n);
    std::memcpy(v.data(), data.data() + pos, n * sizeof(uint64_t));
    pos += n * sizeof(uint64_t);
    return v;
}

// ------------------------------------------------------------- misc

uint64_t
fnv1a(const void *data, size_t n, uint64_t seed)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    uint64_t h = seed;
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

bool
readFileBytes(const std::string &path, std::string &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    out.clear();
    char chunk[1 << 16];
    size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        out.append(chunk, n);
    const bool ok = !std::ferror(f);
    std::fclose(f);
    return ok;
}

bool
atomicWriteFile(const std::string &path, std::string_view data)
{
    // Unique per (process, call) temp name on the same filesystem so
    // the final rename is atomic; two writers racing on one path both
    // succeed and the file holds one complete payload either way.
    static std::atomic<uint64_t> counter{0};
    const std::string tmp =
        path + ".tmp." + std::to_string(uint64_t(getpid())) + "." +
        std::to_string(counter.fetch_add(1));
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        return false;
    const size_t written = std::fwrite(data.data(), 1, data.size(), f);
    const bool ok = written == data.size() && std::fclose(f) == 0;
    if (!ok) {
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace qcc
