#include "common/subprocess.hh"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <mutex>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/binio.hh"

extern char **environ;

namespace qcc {

namespace {

using clock_type = std::chrono::steady_clock;

/** 'QCCF' — distinguishes a frame stream from stray stdout text. */
constexpr uint32_t kFrameMagic = 0x46434351u;

/** A frame larger than this is treated as corruption, not a load. */
constexpr uint64_t kMaxFramePayload = uint64_t{1} << 30;

double
millisUntil(clock_type::time_point deadline)
{
    return std::chrono::duration<double, std::milli>(deadline -
                                                     clock_type::now())
        .count();
}

/**
 * Read exactly n bytes, honoring the deadline (ignored when
 * `have_deadline` is false). Partial data at EOF/timeout reports the
 * stronger diagnostic: Corrupt mid-frame is decided by the caller.
 */
FrameStatus
readFully(int fd, char *buf, size_t n, bool have_deadline,
          clock_type::time_point deadline)
{
    size_t got = 0;
    while (got < n) {
        int waitMs = -1;
        if (have_deadline) {
            const double remaining = millisUntil(deadline);
            if (remaining <= 0.0)
                return FrameStatus::Timeout;
            // Round up so a sub-millisecond budget still polls once.
            waitMs = int(remaining) + 1;
        }
        struct pollfd pfd;
        pfd.fd = fd;
        pfd.events = POLLIN;
        pfd.revents = 0;
        const int pr = ::poll(&pfd, 1, waitMs);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            return FrameStatus::IoError;
        }
        if (pr == 0)
            return FrameStatus::Timeout;
        const ssize_t r = ::read(fd, buf + got, n - got);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return FrameStatus::IoError;
        }
        if (r == 0)
            return FrameStatus::Eof;
        got += size_t(r);
    }
    return FrameStatus::Ok;
}

bool
writeFully(int fd, const char *buf, size_t n)
{
    size_t put = 0;
    while (put < n) {
        const ssize_t w = ::write(fd, buf + put, n - put);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        put += size_t(w);
    }
    return true;
}

} // namespace

void
closeFd(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

ChildProcess
spawnChildProcess(
    const std::vector<std::string> &argv,
    const std::vector<std::pair<std::string, std::string>>
        &env_overrides)
{
    ChildProcess child;
    if (argv.empty())
        return child;

    // Build argv/envp before fork: only async-signal-safe calls are
    // allowed between fork and exec in a multithreaded parent.
    std::vector<char *> argvp;
    argvp.reserve(argv.size() + 1);
    for (const auto &a : argv)
        argvp.push_back(const_cast<char *>(a.c_str()));
    argvp.push_back(nullptr);

    std::vector<std::string> envStorage;
    std::vector<char *> envp;
    for (char **e = environ; e && *e; ++e) {
        const char *eq = std::strchr(*e, '=');
        const std::string name =
            eq ? std::string(*e, size_t(eq - *e)) : std::string(*e);
        bool overridden = false;
        for (const auto &[k, v] : env_overrides)
            overridden |= k == name;
        if (!overridden)
            envp.push_back(*e);
    }
    for (const auto &[k, v] : env_overrides)
        envStorage.push_back(k + "=" + v);
    for (const auto &kv : envStorage)
        envp.push_back(const_cast<char *>(kv.c_str()));
    envp.push_back(nullptr);

    int inPipe[2] = {-1, -1}, outPipe[2] = {-1, -1};
    if (::pipe(inPipe) != 0)
        return child;
    if (::pipe(outPipe) != 0) {
        ::close(inPipe[0]);
        ::close(inPipe[1]);
        return child;
    }

    const pid_t pid = ::fork();
    if (pid < 0) {
        for (int fd : {inPipe[0], inPipe[1], outPipe[0], outPipe[1]})
            ::close(fd);
        return child;
    }
    if (pid == 0) {
        // Child: wire the pipes to stdio and exec.
        ::dup2(inPipe[0], STDIN_FILENO);
        ::dup2(outPipe[1], STDOUT_FILENO);
        for (int fd : {inPipe[0], inPipe[1], outPipe[0], outPipe[1]})
            ::close(fd);
        ::execve(argvp[0], argvp.data(), envp.data());
        _exit(127);
    }

    ::close(inPipe[0]);
    ::close(outPipe[1]);
    child.pid = pid;
    child.stdinFd = inPipe[1];
    child.stdoutFd = outPipe[0];
    return child;
}

const char *
frameStatusName(FrameStatus status)
{
    switch (status) {
      case FrameStatus::Ok: return "ok";
      case FrameStatus::Eof: return "eof";
      case FrameStatus::Timeout: return "timeout";
      case FrameStatus::Corrupt: return "corrupt";
      case FrameStatus::IoError: return "io_error";
    }
    return "?";
}

bool
writeFrame(int fd, std::string_view payload)
{
    BinaryWriter header;
    header.u32(kFrameMagic);
    header.u64(payload.size());
    if (!writeFully(fd, header.bytes().data(),
                    header.bytes().size()))
        return false;
    if (!writeFully(fd, payload.data(), payload.size()))
        return false;
    const uint64_t sum = fnv1a(payload.data(), payload.size());
    BinaryWriter tail;
    tail.u64(sum);
    return writeFully(fd, tail.bytes().data(), tail.bytes().size());
}

FrameStatus
readFrame(int fd, std::string &payload, double timeout_ms)
{
    const bool haveDeadline = timeout_ms > 0.0;
    const auto deadline =
        clock_type::now() +
        std::chrono::duration_cast<clock_type::duration>(
            std::chrono::duration<double, std::milli>(
                haveDeadline ? timeout_ms : 0.0));

    char header[12];
    FrameStatus st =
        readFully(fd, header, sizeof(header), haveDeadline, deadline);
    if (st != FrameStatus::Ok)
        return st;

    uint32_t magic;
    uint64_t len;
    std::memcpy(&magic, header, sizeof(magic));
    std::memcpy(&len, header + 4, sizeof(len));
    if (magic != kFrameMagic || len > kMaxFramePayload)
        return FrameStatus::Corrupt;

    payload.resize(size_t(len));
    st = readFully(fd, payload.data(), payload.size(), haveDeadline,
                   deadline);
    if (st == FrameStatus::Eof)
        return FrameStatus::Corrupt; // header but no body: truncated
    if (st != FrameStatus::Ok)
        return st;

    char tail[8];
    st = readFully(fd, tail, sizeof(tail), haveDeadline, deadline);
    if (st == FrameStatus::Eof)
        return FrameStatus::Corrupt;
    if (st != FrameStatus::Ok)
        return st;
    uint64_t sum;
    std::memcpy(&sum, tail, sizeof(sum));
    if (sum != fnv1a(payload.data(), payload.size()))
        return FrameStatus::Corrupt;
    return FrameStatus::Ok;
}

std::string
ExitStatus::describe() const
{
    if (exited)
        return "exit " + std::to_string(code);
    if (signaled) {
        const char *name = strsignal(sig);
        return "signal " + std::to_string(sig) + " (" +
               (name ? name : "?") + ")";
    }
    return "unknown termination";
}

ExitStatus
reapProcess(long pid)
{
    ExitStatus out;
    if (pid <= 0)
        return out;
    int status = 0;
    pid_t r;
    do {
        r = ::waitpid(pid_t(pid), &status, 0);
    } while (r < 0 && errno == EINTR);
    if (r != pid_t(pid))
        return out;
    if (WIFEXITED(status)) {
        out.exited = true;
        out.code = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
        out.signaled = true;
        out.sig = WTERMSIG(status);
    }
    return out;
}

void
killProcess(long pid)
{
    if (pid > 0)
        ::kill(pid_t(pid), SIGKILL);
}

void
ignoreSigpipe()
{
    static std::once_flag once;
    std::call_once(once, [] { ::signal(SIGPIPE, SIG_IGN); });
}

} // namespace qcc
