/**
 * @file
 * Bounds-checked binary serialization helpers for the persistent
 * store tier (src/store). A store entry is a flat byte payload built
 * with BinaryWriter and decoded with BinaryReader; every read is
 * range-checked and throws BinioError instead of walking off the
 * buffer, which is what lets the stores treat a truncated or
 * corrupted file as a cache miss rather than a crash.
 *
 * Values are encoded in the host's native representation (the store
 * is a per-machine cache, not an interchange format); fnv1a() gives
 * the payload checksum the stores append so bit rot is detected
 * before any field is trusted.
 */

#ifndef QCC_COMMON_BINIO_HH
#define QCC_COMMON_BINIO_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace qcc {

/** Malformed-payload failure with byte-offset provenance. */
class BinioError : public std::runtime_error
{
  public:
    BinioError(const std::string &detail, size_t offset)
        : std::runtime_error("binary payload error at offset " +
                             std::to_string(offset) + ": " + detail),
          byteOffset(offset)
    {
    }

    size_t offset() const { return byteOffset; }

  private:
    size_t byteOffset;
};

/** Append-only byte-buffer builder. */
class BinaryWriter
{
  public:
    void u8(uint8_t v);
    void u32(uint32_t v);
    void u64(uint64_t v);
    /** Raw bit pattern of a double (exact round-trip). */
    void f64(double v);
    /** u64 length prefix + raw bytes. */
    void str(const std::string &s);
    void doubles(const std::vector<double> &v);
    void u64s(const std::vector<uint64_t> &v);

    const std::string &bytes() const { return buf; }
    std::string take() { return std::move(buf); }

  private:
    std::string buf;
};

/**
 * Sequential decoder over a byte buffer (non-owning). Every accessor
 * throws BinioError when fewer bytes remain than the value needs;
 * length-prefixed reads additionally reject prefixes larger than the
 * remaining buffer, so a corrupted length can never trigger a
 * multi-gigabyte allocation.
 */
class BinaryReader
{
  public:
    explicit BinaryReader(std::string_view data)
        : data(data), pos(0)
    {
    }

    uint8_t u8();
    uint32_t u32();
    uint64_t u64();
    double f64();
    std::string str();
    std::vector<double> doubles();
    std::vector<uint64_t> u64s();

    size_t offset() const { return pos; }
    size_t remaining() const { return data.size() - pos; }
    bool atEnd() const { return pos == data.size(); }

  private:
    void need(size_t n) const;
    /** Validated element count for a length-prefixed array. */
    size_t count(size_t elem_size);

    std::string_view data;
    size_t pos;
};

/** FNV-1a over a byte range (the store payload checksum). */
uint64_t fnv1a(const void *data, size_t n,
               uint64_t seed = 0xcbf29ce484222325ull);

/** Read a whole file into `out`; false on any IO failure. */
bool readFileBytes(const std::string &path, std::string &out);

/**
 * Write `data` to `path` atomically: the bytes land in a unique
 * sibling temp file first and are renamed into place, so concurrent
 * readers (and concurrent writers racing on the same path) only ever
 * observe a complete file. Returns false on any IO failure, cleaning
 * up the temp file.
 */
bool atomicWriteFile(const std::string &path, std::string_view data);

} // namespace qcc

#endif // QCC_COMMON_BINIO_HH
