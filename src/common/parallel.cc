#include "common/parallel.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace qcc {

namespace {

uint64_t
nowNs()
{
    return uint64_t(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

unsigned
parallelThreads()
{
    static const unsigned n = [] {
        if (const char *env = std::getenv("QCC_THREADS")) {
            long v = std::strtol(env, nullptr, 10);
            if (v >= 1)
                return unsigned(v);
        }
        unsigned hw = std::thread::hardware_concurrency();
        return hw ? hw : 1u;
    }();
    return n;
}

namespace {

/**
 * Process-wide lane cap (QCC_JOB_WIDTH, 0/unset = uncapped): the
 * knob the sweepd service sets on worker processes so N concurrent
 * workers split the machine instead of each sizing to all of it.
 */
unsigned
envLaneCap()
{
    static const unsigned n = [] {
        if (const char *env = std::getenv("QCC_JOB_WIDTH")) {
            long v = std::strtol(env, nullptr, 10);
            if (v >= 1)
                return unsigned(v);
        }
        return 0u;
    }();
    return n;
}

thread_local unsigned tlsLaneCap = 0;

} // namespace

unsigned
parallelLanes()
{
    unsigned lanes = parallelThreads();
    if (envLaneCap() && envLaneCap() < lanes)
        lanes = envLaneCap();
    if (tlsLaneCap && tlsLaneCap < lanes)
        lanes = tlsLaneCap;
    return lanes;
}

ParallelWidthCap::ParallelWidthCap(unsigned lanes)
    : previous(tlsLaneCap)
{
    if (lanes)
        tlsLaneCap = lanes;
}

ParallelWidthCap::~ParallelWidthCap()
{
    tlsLaneCap = previous;
}

BoundedExecutor::BoundedExecutor(unsigned width)
    : concurrency(width ? width : parallelThreads())
{
}

void
BoundedExecutor::run(size_t n_tasks,
                     const std::function<void(size_t)> &task) const
{
    if (n_tasks == 0)
        return;
    const unsigned width =
        unsigned(std::min<size_t>(concurrency, n_tasks));
    if (width <= 1) {
        for (size_t i = 0; i < n_tasks; ++i)
            task(i);
        return;
    }
    std::atomic<size_t> next{0};
    auto worker = [&] {
        for (;;) {
            const size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n_tasks)
                return;
            TraceSpan span("executor.task");
            span.arg("task", i);
            task(i);
        }
    };
    std::vector<std::thread> threads;
    threads.reserve(width - 1);
    for (unsigned t = 0; t + 1 < width; ++t)
        threads.emplace_back(worker);
    worker(); // the caller is the width-th lane
    for (auto &t : threads)
        t.join();
}

namespace detail {

namespace {

thread_local bool insideJob = false;

/**
 * Persistent pool of parallelThreads() - 1 workers plus the calling
 * thread. One job runs at a time; workers claim chunk indices from a
 * shared atomic counter, so uneven chunks load-balance naturally.
 */
class ThreadPool
{
  public:
    static ThreadPool &
    instance()
    {
        // Under a process-wide lane cap (QCC_JOB_WIDTH) the extra
        // workers could never win a lane — don't create them.
        static ThreadPool pool(
            envLaneCap() ? std::min(parallelThreads(), envLaneCap())
                         : parallelThreads());
        return pool;
    }

    void
    run(size_t n_chunks, const std::function<void(size_t)> &fn,
        unsigned max_lanes)
    {
        // Per-job accounting, not per-chunk: two histogram records
        // per pool job, invisible next to the kernel work a job
        // represents. queue_wait_us (recorded by the workers) is
        // the ROADMAP contention probe — how long a submitted job
        // sat before each worker actually got onto it.
        static MetricCounter &jobs = metricCounter("parallel.pool_jobs");
        static MetricHistogram &jobUs =
            metricHistogram("parallel.job_us");
        std::unique_lock<std::mutex> jobLock(jobMutex);
        const uint64_t t0 = nowNs();
        {
            std::lock_guard<std::mutex> lk(mtx);
            job = &fn;
            nextChunk.store(0, std::memory_order_relaxed);
            totalChunks = n_chunks;
            pendingChunks.store(n_chunks, std::memory_order_relaxed);
            // The caller is always one lane; workers claim the rest.
            laneBudget.store(max_lanes > 0 ? max_lanes - 1 : 0,
                             std::memory_order_relaxed);
            ++generation;
        }
        submitNs.store(t0, std::memory_order_relaxed);
        cv.notify_all();
        work();
        // Wait for chunks claimed by workers but not yet finished.
        std::unique_lock<std::mutex> lk(mtx);
        doneCv.wait(lk, [&] {
            return pendingChunks.load(std::memory_order_acquire) == 0;
        });
        job = nullptr;
        jobs.add();
        jobUs.record((nowNs() - t0) / 1000);
    }

  private:
    explicit ThreadPool(unsigned n_threads)
    {
        for (unsigned i = 0; i + 1 < n_threads; ++i)
            workers.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lk(mtx);
            stopping = true;
            ++generation;
        }
        cv.notify_all();
        for (auto &w : workers)
            w.join();
    }

    void
    work()
    {
        for (;;) {
            size_t ci = nextChunk.fetch_add(1, std::memory_order_relaxed);
            if (ci >= totalChunks)
                return;
            (*job)(ci);
            if (pendingChunks.fetch_sub(1, std::memory_order_acq_rel) ==
                1) {
                std::lock_guard<std::mutex> lk(mtx);
                doneCv.notify_all();
            }
        }
    }

    /**
     * Claim one of the job's worker lanes; false sends this worker
     * back to sleep, leaving the job to the caller and the lanes
     * that did win. Capped jobs (ParallelWidthCap, QCC_JOB_WIDTH)
     * budget fewer lanes than there are workers.
     */
    bool
    acquireLane()
    {
        unsigned v = laneBudget.load(std::memory_order_relaxed);
        while (v > 0)
            if (laneBudget.compare_exchange_weak(
                    v, v - 1, std::memory_order_acquire,
                    std::memory_order_relaxed))
                return true;
        return false;
    }

    void
    workerLoop()
    {
        static MetricHistogram &queueWaitUs =
            metricHistogram("parallel.queue_wait_us");
        insideJob = true; // nested sweeps inside a chunk stay serial
        uint64_t seen = 0;
        for (;;) {
            {
                std::unique_lock<std::mutex> lk(mtx);
                cv.wait(lk, [&] {
                    return stopping || generation != seen;
                });
                if (stopping)
                    return;
                seen = generation;
            }
            if (acquireLane()) {
                // Submission-to-lane latency: wakeup plus any time
                // lost to contention on the pool. One record per
                // lane win, before the chunk work starts.
                const uint64_t submitted =
                    submitNs.load(std::memory_order_relaxed);
                const uint64_t now = nowNs();
                queueWaitUs.record(
                    now > submitted ? (now - submitted) / 1000 : 0);
                work();
            }
        }
    }

    std::vector<std::thread> workers;
    std::mutex jobMutex; ///< serializes run() callers
    std::mutex mtx;
    std::condition_variable cv, doneCv;
    const std::function<void(size_t)> *job = nullptr;
    std::atomic<size_t> nextChunk{0};
    std::atomic<size_t> pendingChunks{0};
    std::atomic<unsigned> laneBudget{0};
    std::atomic<uint64_t> submitNs{0};
    size_t totalChunks = 0;
    uint64_t generation = 0;
    bool stopping = false;
};

} // namespace

void
poolRun(size_t n_chunks, const std::function<void(size_t)> &chunk_fn)
{
    if (n_chunks == 0)
        return;
    // Nested parallelism (a chunk spawning chunks) runs serially: the
    // pool executes one job at a time and re-entering would deadlock.
    // A lane budget of 1 also runs inline — chunk for chunk, so the
    // results match the pooled execution bit for bit — which lets
    // width-capped sweep jobs proceed without ever touching (or
    // waiting on) the shared pool.
    const unsigned lanes = parallelLanes();
    if (insideJob || lanes <= 1 || n_chunks == 1) {
        static MetricCounter &inlineJobs =
            metricCounter("parallel.inline_jobs");
        inlineJobs.add();
        for (size_t ci = 0; ci < n_chunks; ++ci)
            chunk_fn(ci);
        return;
    }
    insideJob = true;
    ThreadPool::instance().run(n_chunks, chunk_fn, lanes);
    insideJob = false;
}

} // namespace detail

} // namespace qcc
