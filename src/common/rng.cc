#include "common/rng.hh"

#include <cstdlib>
#include <numeric>
#include <string>

#include "common/logging.hh"

namespace qcc {

uint64_t
envUint(const char *name, uint64_t fallback, uint64_t min_value)
{
    const char *env = std::getenv(name);
    if (!env || !*env)
        return fallback;
    char *end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 10);
    // strtoull wraps a leading '-' instead of failing; reject it.
    if (env[0] == '-' || end == env || *end != '\0' ||
        v < min_value) {
        warn(std::string(name) +
             " is not a valid unsigned integer; using " +
             std::to_string(fallback));
        return fallback;
    }
    return uint64_t(v);
}

uint64_t
globalSeed()
{
    static const uint64_t seed = envUint("QCC_SEED", 2021);
    return seed;
}

uint64_t
deriveStream(uint64_t seed, uint64_t stream)
{
    // splitmix64 finalizer over the combined words: cheap, and good
    // enough to decorrelate mt19937_64 engines seeded with the
    // results (each seed lands in a different region of state space).
    uint64_t z = seed + 0x9e3779b97f4a7c15ull * (stream + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
deriveSeed(uint64_t stream)
{
    return deriveStream(globalSeed(), stream);
}

std::vector<size_t>
Rng::choose(size_t n, size_t k)
{
    if (k > n)
        panic("Rng::choose: k > n");
    std::vector<size_t> all(n);
    std::iota(all.begin(), all.end(), size_t{0});
    shuffle(all);
    all.resize(k);
    return all;
}

} // namespace qcc
