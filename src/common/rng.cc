#include "common/rng.hh"

#include <numeric>

#include "common/logging.hh"

namespace qcc {

std::vector<size_t>
Rng::choose(size_t n, size_t k)
{
    if (k > n)
        panic("Rng::choose: k > n");
    std::vector<size_t> all(n);
    std::iota(all.begin(), all.end(), size_t{0});
    shuffle(all);
    all.resize(k);
    return all;
}

} // namespace qcc
