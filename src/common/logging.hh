/**
 * @file
 * Status and error reporting helpers, modeled on the gem5 logging
 * conventions: fatal() for user errors, panic() for internal invariant
 * violations, warn()/inform() for non-fatal status messages.
 */

#ifndef QCC_COMMON_LOGGING_HH
#define QCC_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace qcc {

/**
 * Terminate because of a user-level error (bad configuration, invalid
 * argument). Prints the message and exits with status 1.
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Terminate because of an internal library bug (an invariant that should
 * never be violated regardless of user input). Prints and aborts.
 */
[[noreturn]] void panic(const std::string &msg);

/** Print a warning about suspicious but non-fatal conditions. */
void warn(const std::string &msg);

/** Print an informational status message. */
void inform(const std::string &msg);

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);

/** Query verbosity. */
bool isVerbose();

/**
 * Resolve the output path for one machine-readable result file under
 * the QCC_JSON convention shared by every producer (TRACE_* run
 * traces, BENCH_* bench tables, RESULT_* experiment records):
 * unset/"0"/empty disables (returns ""), "1" targets the current
 * directory, anything else is the output directory.
 */
std::string qccJsonPath(const std::string &file_name);

} // namespace qcc

#endif // QCC_COMMON_LOGGING_HH
