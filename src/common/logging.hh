/**
 * @file
 * Status and error reporting helpers, modeled on the gem5 logging
 * conventions: fatal() for user errors, panic() for internal invariant
 * violations, warn()/inform() for non-fatal status messages.
 */

#ifndef QCC_COMMON_LOGGING_HH
#define QCC_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace qcc {

/**
 * Terminate because of a user-level error (bad configuration, invalid
 * argument). Prints the message and exits with status 1.
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Terminate because of an internal library bug (an invariant that should
 * never be violated regardless of user input). Prints and aborts.
 */
[[noreturn]] void panic(const std::string &msg);

/** Print a warning about suspicious but non-fatal conditions. */
void warn(const std::string &msg);

/** Print a non-fatal error (CLI failure paths that keep going). */
void error(const std::string &msg);

/** Print an informational status message. */
void inform(const std::string &msg);

/** Print a debug-level message (QCC_LOG=debug only). */
void debug(const std::string &msg);

/**
 * Output levels, in increasing verbosity. warn()/error() always
 * print; inform() needs Info, debug() needs Debug. The initial
 * level comes from QCC_LOG (quiet|info|debug, default info);
 * setLogLevel()/setVerbose() override it at runtime, except that an
 * explicit QCC_LOG wins over setVerbose() so a user can force
 * bench/CI output verbosity from the environment in one place.
 */
enum class LogLevel { Quiet = 0, Info = 1, Debug = 2 };

LogLevel logLevel();
void setLogLevel(LogLevel level);

/**
 * Legacy verbosity switch: maps to Quiet/Info. Kept because benches
 * and services toggle it; a QCC_LOG set in the environment takes
 * precedence.
 */
void setVerbose(bool verbose);

/** True when inform() output is enabled (level >= Info). */
bool isVerbose();

/**
 * Resolve the output path for one machine-readable result file under
 * the QCC_JSON convention shared by every producer (TRACE_* run
 * traces, BENCH_* bench tables, RESULT_* experiment records):
 * unset/"0"/empty disables (returns ""), "1" targets the current
 * directory, anything else is the output directory.
 */
std::string qccJsonPath(const std::string &file_name);

} // namespace qcc

#endif // QCC_COMMON_LOGGING_HH
