#include "common/linalg.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"

namespace qcc {

EigenSym
eigenSym(const Matrix &a_in, int max_sweeps)
{
    if (a_in.rows() != a_in.cols())
        panic("eigenSym: not square");
    const size_t n = a_in.rows();
    Matrix a = a_in;
    Matrix v = Matrix::identity(n);

    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
        double off = 0.0;
        for (size_t p = 0; p < n; ++p)
            for (size_t q = p + 1; q < n; ++q)
                off += a(p, q) * a(p, q);
        if (off < 1e-26)
            break;

        for (size_t p = 0; p < n; ++p) {
            for (size_t q = p + 1; q < n; ++q) {
                double apq = a(p, q);
                if (std::fabs(apq) < 1e-300)
                    continue;
                double theta = (a(q, q) - a(p, p)) / (2.0 * apq);
                double t = (theta >= 0 ? 1.0 : -1.0) /
                           (std::fabs(theta) +
                            std::sqrt(theta * theta + 1.0));
                double c = 1.0 / std::sqrt(t * t + 1.0);
                double s = t * c;

                for (size_t k = 0; k < n; ++k) {
                    double akp = a(k, p), akq = a(k, q);
                    a(k, p) = c * akp - s * akq;
                    a(k, q) = s * akp + c * akq;
                }
                for (size_t k = 0; k < n; ++k) {
                    double apk = a(p, k), aqk = a(q, k);
                    a(p, k) = c * apk - s * aqk;
                    a(q, k) = s * apk + c * aqk;
                }
                for (size_t k = 0; k < n; ++k) {
                    double vkp = v(k, p), vkq = v(k, q);
                    v(k, p) = c * vkp - s * vkq;
                    v(k, q) = s * vkp + c * vkq;
                }
            }
        }
    }

    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(),
              [&](size_t i, size_t j) { return a(i, i) < a(j, j); });

    EigenSym out;
    out.values.resize(n);
    out.vectors = Matrix(n, n);
    for (size_t j = 0; j < n; ++j) {
        out.values[j] = a(order[j], order[j]);
        for (size_t i = 0; i < n; ++i)
            out.vectors(i, j) = v(i, order[j]);
    }
    return out;
}

std::vector<double>
solveLinear(Matrix a, std::vector<double> b)
{
    std::vector<double> x;
    if (!trySolveLinear(std::move(a), std::move(b), x))
        panic("solveLinear: singular matrix");
    return x;
}

bool
trySolveLinear(Matrix a, std::vector<double> b,
               std::vector<double> &out)
{
    const size_t n = a.rows();
    if (a.cols() != n || b.size() != n)
        panic("trySolveLinear: shape mismatch");

    // Scale-aware pivot threshold.
    double scale = a.maxAbs();
    if (scale == 0.0)
        return false;

    for (size_t col = 0; col < n; ++col) {
        size_t piv = col;
        for (size_t r = col + 1; r < n; ++r)
            if (std::fabs(a(r, col)) > std::fabs(a(piv, col)))
                piv = r;
        if (std::fabs(a(piv, col)) < 1e-13 * scale)
            return false;
        if (piv != col) {
            for (size_t c = 0; c < n; ++c)
                std::swap(a(piv, c), a(col, c));
            std::swap(b[piv], b[col]);
        }
        for (size_t r = col + 1; r < n; ++r) {
            double f = a(r, col) / a(col, col);
            if (f == 0.0)
                continue;
            for (size_t c = col; c < n; ++c)
                a(r, c) -= f * a(col, c);
            b[r] -= f * b[col];
        }
    }

    out.assign(n, 0.0);
    for (size_t i = n; i-- > 0;) {
        double s = b[i];
        for (size_t j = i + 1; j < n; ++j)
            s -= a(i, j) * out[j];
        out[i] = s / a(i, i);
    }
    return true;
}

Matrix
invSqrtSym(const Matrix &s, double threshold)
{
    EigenSym eig = eigenSym(s);
    const size_t n = s.rows();
    Matrix out(n, n);
    for (size_t k = 0; k < n; ++k) {
        if (eig.values[k] < threshold) {
            warn("invSqrtSym: dropping near-singular eigenvalue");
            continue;
        }
        double w = 1.0 / std::sqrt(eig.values[k]);
        for (size_t i = 0; i < n; ++i)
            for (size_t j = 0; j < n; ++j)
                out(i, j) += w * eig.vectors(i, k) * eig.vectors(j, k);
    }
    return out;
}

} // namespace qcc
