#include "store/circuit_store.hh"

#include <cstdio>
#include <vector>

#include "common/binio.hh"
#include "store/store.hh"

namespace qcc {

namespace {

constexpr uint32_t kMagic = 0x51434343; // 'QCCC'
constexpr uint32_t kVersion = 1;

/**
 * A layout is serialized as (numLogical, numPhysical, l2p words) and
 * rebuilt through Layout::fromLogToPhys — which panics on invalid
 * input, so every invariant it assumes (entries in range, no two
 * logical qubits on one physical) is checked here first.
 */
void
writeLayout(BinaryWriter &w, const Layout &l)
{
    w.u32(l.numLogical());
    w.u32(l.numPhysical());
    for (unsigned q = 0; q < l.numLogical(); ++q)
        w.u32(l.phys(q));
}

bool
readLayout(BinaryReader &r, Layout &out)
{
    const uint32_t nLog = r.u32();
    const uint32_t nPhys = r.u32();
    if (nLog > nPhys || nPhys > (1u << 20))
        return false;
    std::vector<unsigned> l2p(nLog);
    std::vector<bool> used(nPhys, false);
    for (uint32_t q = 0; q < nLog; ++q) {
        const uint32_t p = r.u32();
        if (p >= nPhys || used[p])
            return false;
        used[p] = true;
        l2p[q] = p;
    }
    out = Layout::fromLogToPhys(l2p, nPhys);
    return true;
}

/**
 * Rebuild the circuit gate-by-gate through Circuit::push (which
 * panics on bad operands, hence the manual range checks) so a
 * deserialized circuit satisfies exactly the invariants a compiled
 * one does.
 */
bool
readCircuit(BinaryReader &r, Circuit &out)
{
    const uint32_t n = r.u32();
    if (n > (1u << 20))
        return false;
    const uint64_t count = r.u64();
    // Each serialized gate is >= 17 bytes; reject counts the
    // remaining payload cannot possibly hold.
    if (count > r.remaining() / 17)
        return false;
    Circuit c(n);
    for (uint64_t i = 0; i < count; ++i) {
        Gate g;
        const uint8_t kind = r.u8();
        if (kind > uint8_t(GateKind::SWAP))
            return false;
        g.kind = GateKind(kind);
        g.q0 = r.u32();
        g.q1 = r.u32();
        g.angle = r.f64();
        if (g.q0 >= n)
            return false;
        if (isTwoQubit(g.kind) && (g.q1 >= n || g.q1 == g.q0))
            return false;
        c.push(g);
    }
    out = std::move(c);
    return true;
}

} // namespace

uint32_t
circuitStoreVersion()
{
    return kVersion;
}

std::string
serializeCachedCompile(const CacheKey &key, const CachedCompile &entry)
{
    BinaryWriter w;
    w.u32(kMagic);
    w.u32(kVersion);
    w.u64s(key.words);

    w.u32(entry.circuit.numQubits());
    w.u64(entry.circuit.size());
    for (const Gate &g : entry.circuit.gates()) {
        w.u8(uint8_t(g.kind));
        w.u32(g.q0);
        w.u32(g.q1);
        w.f64(g.angle);
    }

    std::vector<uint64_t> rz(entry.rzIndex.begin(), entry.rzIndex.end());
    w.u64s(rz);
    writeLayout(w, entry.initialLayout);
    writeLayout(w, entry.finalLayout);
    w.u64(entry.swapCount);

    std::string payload = w.take();
    BinaryWriter tail;
    tail.u64(fnv1a(payload.data(), payload.size()));
    payload += tail.bytes();
    return payload;
}

bool
deserializeCachedCompile(const std::string &bytes, const CacheKey &key,
                         CachedCompile &out)
{
    try {
        if (bytes.size() < 8)
            return false;
        const size_t body = bytes.size() - 8;
        BinaryReader check(
            std::string_view(bytes.data() + body, 8));
        if (check.u64() != fnv1a(bytes.data(), body))
            return false;

        BinaryReader r(std::string_view(bytes.data(), body));
        if (r.u32() != kMagic || r.u32() != kVersion)
            return false;
        CacheKey stored;
        stored.words = r.u64s();
        // The filename is a hash; the words are the identity. A
        // collision (or a copied file) demotes to a miss here.
        if (!(stored == key))
            return false;

        CachedCompile entry;
        if (!readCircuit(r, entry.circuit))
            return false;

        const std::vector<uint64_t> rz = r.u64s();
        entry.rzIndex.reserve(rz.size());
        for (uint64_t idx : rz) {
            if (idx >= entry.circuit.size() ||
                entry.circuit.gates()[idx].kind != GateKind::RZ)
                return false;
            entry.rzIndex.push_back(size_t(idx));
        }

        if (!readLayout(r, entry.initialLayout) ||
            !readLayout(r, entry.finalLayout))
            return false;
        entry.swapCount = size_t(r.u64());
        if (!r.atEnd())
            return false;

        out = std::move(entry);
        return true;
    } catch (const BinioError &) {
        return false; // truncated / length-corrupted payload
    }
}

DiskCircuitStore::DiskCircuitStore(std::string dir)
    : dirOverride(std::move(dir))
{
}

std::string
DiskCircuitStore::resolveDir() const
{
    if (!dirOverride.empty())
        return dirOverride;
    if (!storeEnabled())
        return "";
    return storeDir();
}

std::string
DiskCircuitStore::pathFor(const CacheKey &key) const
{
    const std::string dir = resolveDir();
    if (dir.empty())
        return "";
    // Two independent FNV passes over the word bytes: 128 filename
    // bits make accidental collisions irrelevant in practice, and a
    // real collision is still caught by the in-entry key comparison.
    const void *raw = key.words.data();
    const size_t n = key.words.size() * sizeof(uint64_t);
    const uint64_t h1 = fnv1a(raw, n);
    const uint64_t h2 = fnv1a(raw, n, 0x84222325cbf29ce4ull);
    char name[64];
    std::snprintf(name, sizeof(name), "c_%016llx%016llx.bin",
                  (unsigned long long)h1, (unsigned long long)h2);
    return dir + "/circuits/" + name;
}

bool
DiskCircuitStore::load(const CacheKey &key, CachedCompile &out)
{
    const std::string path = pathFor(key);
    if (path.empty())
        return false;
    std::string bytes;
    if (!readFileBytes(path, bytes)) {
        countCircuitDiskMiss();
        return false;
    }
    if (!deserializeCachedCompile(bytes, key, out)) {
        // Corrupt or stale entry: drop the file and recompile.
        countCircuitBadEntry();
        std::remove(path.c_str());
        return false;
    }
    countCircuitDiskHit();
    return true;
}

bool
DiskCircuitStore::save(const CacheKey &key, const CachedCompile &entry)
{
    const std::string path = pathFor(key);
    if (path.empty())
        return false;
    const size_t slash = path.rfind('/');
    if (!ensureDirectory(path.substr(0, slash)))
        return false;
    if (!atomicWriteFile(path, serializeCachedCompile(key, entry)))
        return false;
    countCircuitDiskWrite();
    return true;
}

std::shared_ptr<CircuitCache::DiskTier>
makeGlobalCircuitDiskTier()
{
    // Defined here (not in compiler/cache.cc) so linking the cache
    // pulls this object file — and with it the store layer — out of
    // the static archive.
    return std::make_shared<DiskCircuitStore>();
}

} // namespace qcc
