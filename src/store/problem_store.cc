#include "store/problem_store.hh"

#include <cstdio>
#include <cstring>

#include "common/binio.hh"
#include "store/store.hh"

namespace qcc {

namespace {

constexpr uint32_t kMagic = 0x51434350; // 'QCCP'
constexpr uint32_t kVersion = 1;

/**
 * The identity of a problem: everything buildMolecularProblem's
 * output depends on. The catalog entry's active-space settings are
 * included explicitly so an edited catalog invalidates old entries
 * even under an unchanged molecule name.
 */
std::string
keyBytes(const BenchmarkMolecule &entry, double bond, int n_gauss)
{
    BinaryWriter w;
    w.str(entry.name);
    w.f64(bond);
    w.u32(uint32_t(n_gauss));
    w.u32(entry.nFrozen);
    w.u32(uint32_t(entry.targetSpatial));
    return w.take();
}

void
writeIntegrals(BinaryWriter &w, const MoIntegrals &mo)
{
    w.u64(mo.nOrb);
    std::vector<double> h(mo.nOrb * mo.nOrb);
    for (size_t r = 0; r < mo.nOrb; ++r)
        for (size_t c = 0; c < mo.nOrb; ++c)
            h[r * mo.nOrb + c] = mo.h(r, c);
    w.doubles(h);
    w.doubles(mo.eri);
    w.f64(mo.coreEnergy);
}

bool
readIntegrals(BinaryReader &r, MoIntegrals &out)
{
    const uint64_t nOrb = r.u64();
    // Catalog molecules top out well under 64 orbitals; anything
    // larger is corruption (and would imply a multi-GiB ERI tensor).
    if (nOrb > 64)
        return false;
    const std::vector<double> h = r.doubles();
    const std::vector<double> eri = r.doubles();
    if (h.size() != nOrb * nOrb || eri.size() != nOrb * nOrb * nOrb * nOrb)
        return false;
    out.nOrb = size_t(nOrb);
    out.h = Matrix(out.nOrb, out.nOrb);
    for (size_t i = 0; i < out.nOrb; ++i)
        for (size_t j = 0; j < out.nOrb; ++j)
            out.h(i, j) = h[i * out.nOrb + j];
    out.eri = eri;
    out.coreEnergy = r.f64();
    return true;
}

std::string
entryPath(const std::string &dir, const std::string &key)
{
    const uint64_t h1 = fnv1a(key.data(), key.size());
    const uint64_t h2 =
        fnv1a(key.data(), key.size(), 0x84222325cbf29ce4ull);
    char name[64];
    std::snprintf(name, sizeof(name), "p_%016llx%016llx.bin",
                  (unsigned long long)h1, (unsigned long long)h2);
    return dir + "/problems/" + name;
}

bool
loadFromDisk(const std::string &path, const std::string &key,
             MolecularProblem &out)
{
    std::string bytes;
    if (!readFileBytes(path, bytes))
        return false;
    if (!deserializeMolecularProblem(bytes, key, out)) {
        countProblemBadEntry();
        std::remove(path.c_str());
        return false;
    }
    countProblemDiskHit();
    return true;
}

void
saveToDisk(const std::string &path, const std::string &key,
           const MolecularProblem &mp)
{
    const size_t slash = path.rfind('/');
    if (!ensureDirectory(path.substr(0, slash)))
        return;
    if (atomicWriteFile(path, serializeMolecularProblem(key, mp)))
        countProblemDiskWrite();
}

} // namespace

uint32_t
problemStoreVersion()
{
    return kVersion;
}

std::string
serializeMolecularProblem(const std::string &key_bytes,
                          const MolecularProblem &mp)
{
    BinaryWriter w;
    w.u32(kMagic);
    w.u32(kVersion);
    w.str(key_bytes);

    w.u32(mp.hamiltonian.numQubits());
    w.u64(mp.hamiltonian.numTerms());
    for (const PauliTerm &t : mp.hamiltonian.terms()) {
        w.f64(t.coeff.real());
        w.f64(t.coeff.imag());
        w.u64(t.string.xMask());
        w.u64(t.string.zMask());
    }

    w.u32(mp.nSpatial);
    w.u32(mp.nElectrons);
    w.u32(mp.nQubits);
    w.f64(mp.hartreeFockEnergy);

    writeIntegrals(w, mp.activeSpace.active);
    w.u32(mp.activeSpace.nActiveElectrons);
    std::vector<uint64_t> idx;
    auto writeIdx = [&](const std::vector<size_t> &v) {
        idx.assign(v.begin(), v.end());
        w.u64s(idx);
    };
    writeIdx(mp.activeSpace.frozenMos);
    writeIdx(mp.activeSpace.activeMos);
    writeIdx(mp.activeSpace.removedMos);

    std::string payload = w.take();
    BinaryWriter tail;
    tail.u64(fnv1a(payload.data(), payload.size()));
    payload += tail.bytes();
    return payload;
}

bool
deserializeMolecularProblem(const std::string &bytes,
                            const std::string &key_bytes,
                            MolecularProblem &out)
{
    try {
        if (bytes.size() < 8)
            return false;
        const size_t body = bytes.size() - 8;
        BinaryReader check(std::string_view(bytes.data() + body, 8));
        if (check.u64() != fnv1a(bytes.data(), body))
            return false;

        BinaryReader r(std::string_view(bytes.data(), body));
        if (r.u32() != kMagic || r.u32() != kVersion)
            return false;
        if (r.str() != key_bytes)
            return false; // filename-hash collision or copied file

        MolecularProblem mp;
        const uint32_t nQubits = r.u32();
        if (nQubits > 64)
            return false;
        const uint64_t nTerms = r.u64();
        if (nTerms > r.remaining() / 32)
            return false;
        mp.hamiltonian = PauliSum(nQubits);
        for (uint64_t i = 0; i < nTerms; ++i) {
            const double re = r.f64();
            const double im = r.f64();
            const uint64_t x = r.u64();
            const uint64_t z = r.u64();
            if (nQubits < 64 && ((x | z) >> nQubits) != 0)
                return false;
            mp.hamiltonian.add({re, im},
                               PauliString(nQubits, x, z));
        }

        mp.nSpatial = r.u32();
        mp.nElectrons = r.u32();
        mp.nQubits = r.u32();
        if (mp.nQubits != nQubits || mp.nQubits != 2 * mp.nSpatial)
            return false;
        mp.hartreeFockEnergy = r.f64();

        if (!readIntegrals(r, mp.activeSpace.active))
            return false;
        mp.activeSpace.nActiveElectrons = r.u32();
        auto readIdx = [&](std::vector<size_t> &v) {
            const std::vector<uint64_t> raw = r.u64s();
            v.assign(raw.begin(), raw.end());
        };
        readIdx(mp.activeSpace.frozenMos);
        readIdx(mp.activeSpace.activeMos);
        readIdx(mp.activeSpace.removedMos);
        if (!r.atEnd())
            return false;

        out = std::move(mp);
        return true;
    } catch (const BinioError &) {
        return false;
    }
}

std::string
MolecularProblemStore::pathFor(const BenchmarkMolecule &entry,
                               double bond_angstrom,
                               int n_gauss) const
{
    if (!storeEnabled())
        return "";
    return entryPath(storeDir(),
                     keyBytes(entry, bond_angstrom, n_gauss));
}

MolecularProblem
MolecularProblemStore::get(const BenchmarkMolecule &entry,
                           double bond_angstrom, int n_gauss)
{
    const std::string key = keyBytes(entry, bond_angstrom, n_gauss);

    std::promise<MolecularProblem> prom;
    std::shared_future<MolecularProblem> fut;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mtx);
        auto it = memo.find(key);
        if (it != memo.end()) {
            fut = it->second;
        } else {
            // Single flight: this caller builds; concurrent callers
            // of the same key block on the future instead of
            // duplicating the integrals/HF work.
            fut = prom.get_future().share();
            memo.emplace(key, fut);
            owner = true;
        }
    }

    if (!owner) {
        countProblemMemHit();
        return fut.get();
    }

    try {
        MolecularProblem mp;
        const bool disk = storeEnabled();
        const std::string path =
            disk ? entryPath(storeDir(), key) : std::string();
        if (disk && loadFromDisk(path, key, mp)) {
            prom.set_value(mp);
            return mp;
        }

        countProblemBuild();
        mp = buildMolecularProblem(entry, bond_angstrom, n_gauss);
        if (disk)
            saveToDisk(path, key, mp);
        prom.set_value(mp);
        return mp;
    } catch (...) {
        // Don't strand waiters, and don't memoize the failure.
        prom.set_exception(std::current_exception());
        {
            std::lock_guard<std::mutex> lock(mtx);
            auto it = memo.find(key);
            if (it != memo.end() &&
                it->second.valid()) // same flight
                memo.erase(it);
        }
        throw;
    }
}

void
MolecularProblemStore::clearMemory()
{
    std::lock_guard<std::mutex> lock(mtx);
    memo.clear();
}

size_t
MolecularProblemStore::memoSize() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return memo.size();
}

MolecularProblemStore &
globalProblemStore()
{
    static MolecularProblemStore store;
    return store;
}

} // namespace qcc
