#include "store/store.hh"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>

#include "obs/metrics.hh"

namespace qcc {

namespace {

/**
 * The store counters live in the process-wide metrics registry (so
 * METRICS_*.json and sweepd aggregation see them for free); this
 * struct is one-time name resolution, cached because registry
 * lookup takes a lock and the count*() paths sit next to file IO
 * but also next to memo hits.
 */
struct Counters
{
    MetricCounter &circuitDiskHits =
        metricCounter("store.circuit.disk_hits");
    MetricCounter &circuitDiskMisses =
        metricCounter("store.circuit.disk_misses");
    MetricCounter &circuitDiskWrites =
        metricCounter("store.circuit.disk_writes");
    MetricCounter &circuitBadEntries =
        metricCounter("store.circuit.bad_entries");
    MetricCounter &problemMemHits =
        metricCounter("store.problem.mem_hits");
    MetricCounter &problemDiskHits =
        metricCounter("store.problem.disk_hits");
    MetricCounter &problemBuilds =
        metricCounter("store.problem.builds");
    MetricCounter &problemDiskWrites =
        metricCounter("store.problem.disk_writes");
    MetricCounter &problemBadEntries =
        metricCounter("store.problem.bad_entries");
};

Counters &
counters()
{
    static Counters c;
    return c;
}

/**
 * Runtime configuration with env fallback. The mutex makes the
 * override setters safe against concurrent store probes; steady-state
 * reads are a lock + two small copies, dwarfed by the file IO they
 * gate.
 */
struct Config
{
    std::mutex mtx;
    bool dirOverridden = false;
    std::string dirOverride;
    bool enabledOverridden = false;
    bool enabledOverride = true;
};

Config &
config()
{
    static Config c;
    return c;
}

} // namespace

StoreStats
storeStats()
{
    // Snapshot in reverse dependency order: a disk write follows
    // the miss (or bad entry, or build) that caused it in its
    // thread's program order, and the write increment is a release.
    // Loading the write counters first (value() is an acquire)
    // therefore makes every causing increment visible before the
    // cause counters are read, so a snapshot can never show more
    // writes than misses — the torn-snapshot case the
    // store_stats_consistency test pins.
    const Counters &c = counters();
    StoreStats s;
    s.circuitDiskWrites = c.circuitDiskWrites.value();
    s.circuitDiskMisses = c.circuitDiskMisses.value();
    s.circuitBadEntries = c.circuitBadEntries.value();
    s.circuitDiskHits = c.circuitDiskHits.value();
    s.problemDiskWrites = c.problemDiskWrites.value();
    s.problemBuilds = c.problemBuilds.value();
    s.problemMemHits = c.problemMemHits.value();
    s.problemDiskHits = c.problemDiskHits.value();
    s.problemBadEntries = c.problemBadEntries.value();
    return s;
}

void
resetStoreStats()
{
    Counters &c = counters();
    c.circuitDiskHits.reset();
    c.circuitDiskMisses.reset();
    c.circuitDiskWrites.reset();
    c.circuitBadEntries.reset();
    c.problemMemHits.reset();
    c.problemDiskHits.reset();
    c.problemBuilds.reset();
    c.problemDiskWrites.reset();
    c.problemBadEntries.reset();
}

std::string
storeStatsJson()
{
    const StoreStats s = storeStats();
    char buf[640];
    std::snprintf(
        buf, sizeof(buf),
        "{\n"
        "\"enabled\": %s,\n"
        "\"dir\": \"%s\",\n"
        "\"circuit\": {\"disk_hits\": %zu, \"disk_misses\": %zu, "
        "\"disk_writes\": %zu, \"bad_entries\": %zu},\n"
        "\"problem\": {\"mem_hits\": %zu, \"disk_hits\": %zu, "
        "\"builds\": %zu, \"disk_writes\": %zu, "
        "\"bad_entries\": %zu}\n"
        "}\n",
        storeEnabled() ? "true" : "false", storeDir().c_str(),
        s.circuitDiskHits, s.circuitDiskMisses, s.circuitDiskWrites,
        s.circuitBadEntries, s.problemMemHits, s.problemDiskHits,
        s.problemBuilds, s.problemDiskWrites, s.problemBadEntries);
    return buf;
}

void countCircuitDiskHit() { counters().circuitDiskHits.add(); }
void countCircuitDiskMiss() { counters().circuitDiskMisses.add(); }
void countCircuitBadEntry() { counters().circuitBadEntries.add(); }
void countProblemMemHit() { counters().problemMemHits.add(); }
void countProblemDiskHit() { counters().problemDiskHits.add(); }
void countProblemBuild() { counters().problemBuilds.add(); }
void countProblemBadEntry() { counters().problemBadEntries.add(); }

// The write counters are the dependent side of the snapshot
// invariants (writes <= misses + bad entries; writes <= builds), so
// their increment publishes the preceding cause increments — see
// storeStats().
void countCircuitDiskWrite()
{
    counters().circuitDiskWrites.addRelease();
}
void countProblemDiskWrite()
{
    counters().problemDiskWrites.addRelease();
}

std::string
storeDir()
{
    Config &c = config();
    std::lock_guard<std::mutex> lock(c.mtx);
    if (c.dirOverridden)
        return c.dirOverride;
    const char *env = std::getenv("QCC_STORE_DIR");
    return env ? std::string(env) : std::string();
}

bool
storeEnabled()
{
    {
        Config &c = config();
        std::lock_guard<std::mutex> lock(c.mtx);
        if (c.enabledOverridden && !c.enabledOverride)
            return false;
        if (!c.enabledOverridden) {
            const char *env = std::getenv("QCC_STORE");
            if (env && std::string(env) == "0")
                return false;
        }
    }
    return !storeDir().empty();
}

void
setStoreDir(const std::string &dir)
{
    Config &c = config();
    std::lock_guard<std::mutex> lock(c.mtx);
    c.dirOverridden = true;
    c.dirOverride = dir;
}

void
setStoreEnabled(bool enabled)
{
    Config &c = config();
    std::lock_guard<std::mutex> lock(c.mtx);
    c.enabledOverridden = true;
    c.enabledOverride = enabled;
}

bool
ensureDirectory(const std::string &dir)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    return !ec && std::filesystem::is_directory(dir, ec);
}

} // namespace qcc
