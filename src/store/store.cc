#include "store/store.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>

namespace qcc {

namespace {

struct Counters
{
    std::atomic<size_t> circuitDiskHits{0};
    std::atomic<size_t> circuitDiskMisses{0};
    std::atomic<size_t> circuitDiskWrites{0};
    std::atomic<size_t> circuitBadEntries{0};
    std::atomic<size_t> problemMemHits{0};
    std::atomic<size_t> problemDiskHits{0};
    std::atomic<size_t> problemBuilds{0};
    std::atomic<size_t> problemDiskWrites{0};
    std::atomic<size_t> problemBadEntries{0};
};

Counters &
counters()
{
    static Counters c;
    return c;
}

/**
 * Runtime configuration with env fallback. The mutex makes the
 * override setters safe against concurrent store probes; steady-state
 * reads are a lock + two small copies, dwarfed by the file IO they
 * gate.
 */
struct Config
{
    std::mutex mtx;
    bool dirOverridden = false;
    std::string dirOverride;
    bool enabledOverridden = false;
    bool enabledOverride = true;
};

Config &
config()
{
    static Config c;
    return c;
}

} // namespace

StoreStats
storeStats()
{
    const Counters &c = counters();
    StoreStats s;
    s.circuitDiskHits = c.circuitDiskHits.load();
    s.circuitDiskMisses = c.circuitDiskMisses.load();
    s.circuitDiskWrites = c.circuitDiskWrites.load();
    s.circuitBadEntries = c.circuitBadEntries.load();
    s.problemMemHits = c.problemMemHits.load();
    s.problemDiskHits = c.problemDiskHits.load();
    s.problemBuilds = c.problemBuilds.load();
    s.problemDiskWrites = c.problemDiskWrites.load();
    s.problemBadEntries = c.problemBadEntries.load();
    return s;
}

void
resetStoreStats()
{
    Counters &c = counters();
    c.circuitDiskHits = 0;
    c.circuitDiskMisses = 0;
    c.circuitDiskWrites = 0;
    c.circuitBadEntries = 0;
    c.problemMemHits = 0;
    c.problemDiskHits = 0;
    c.problemBuilds = 0;
    c.problemDiskWrites = 0;
    c.problemBadEntries = 0;
}

std::string
storeStatsJson()
{
    const StoreStats s = storeStats();
    char buf[640];
    std::snprintf(
        buf, sizeof(buf),
        "{\n"
        "\"enabled\": %s,\n"
        "\"dir\": \"%s\",\n"
        "\"circuit\": {\"disk_hits\": %zu, \"disk_misses\": %zu, "
        "\"disk_writes\": %zu, \"bad_entries\": %zu},\n"
        "\"problem\": {\"mem_hits\": %zu, \"disk_hits\": %zu, "
        "\"builds\": %zu, \"disk_writes\": %zu, "
        "\"bad_entries\": %zu}\n"
        "}\n",
        storeEnabled() ? "true" : "false", storeDir().c_str(),
        s.circuitDiskHits, s.circuitDiskMisses, s.circuitDiskWrites,
        s.circuitBadEntries, s.problemMemHits, s.problemDiskHits,
        s.problemBuilds, s.problemDiskWrites, s.problemBadEntries);
    return buf;
}

void countCircuitDiskHit() { ++counters().circuitDiskHits; }
void countCircuitDiskMiss() { ++counters().circuitDiskMisses; }
void countCircuitDiskWrite() { ++counters().circuitDiskWrites; }
void countCircuitBadEntry() { ++counters().circuitBadEntries; }
void countProblemMemHit() { ++counters().problemMemHits; }
void countProblemDiskHit() { ++counters().problemDiskHits; }
void countProblemBuild() { ++counters().problemBuilds; }
void countProblemDiskWrite() { ++counters().problemDiskWrites; }
void countProblemBadEntry() { ++counters().problemBadEntries; }

std::string
storeDir()
{
    Config &c = config();
    std::lock_guard<std::mutex> lock(c.mtx);
    if (c.dirOverridden)
        return c.dirOverride;
    const char *env = std::getenv("QCC_STORE_DIR");
    return env ? std::string(env) : std::string();
}

bool
storeEnabled()
{
    {
        Config &c = config();
        std::lock_guard<std::mutex> lock(c.mtx);
        if (c.enabledOverridden && !c.enabledOverride)
            return false;
        if (!c.enabledOverridden) {
            const char *env = std::getenv("QCC_STORE");
            if (env && std::string(env) == "0")
                return false;
        }
    }
    return !storeDir().empty();
}

void
setStoreDir(const std::string &dir)
{
    Config &c = config();
    std::lock_guard<std::mutex> lock(c.mtx);
    c.dirOverridden = true;
    c.dirOverride = dir;
}

void
setStoreEnabled(bool enabled)
{
    Config &c = config();
    std::lock_guard<std::mutex> lock(c.mtx);
    c.enabledOverridden = true;
    c.enabledOverride = enabled;
}

bool
ensureDirectory(const std::string &dir)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    return !ec && std::filesystem::is_directory(dir, ec);
}

} // namespace qcc
