/**
 * @file
 * MolecularProblemStore — memoized molecular-problem construction.
 * Building a MolecularProblem (geometry -> integrals -> RHF -> MO
 * transform -> active space -> Jordan-Wigner) is pure in its inputs
 * (catalog entry, bond length, basis size) and is by far the dominant
 * per-job cost once circuits hit the compile cache, so it is worth
 * computing at most once per process — and, with the persistent tier
 * enabled, at most once ever per machine.
 *
 * Two levels:
 *
 *  - an in-process single-flight memo: concurrent callers of the same
 *    problem (sweep workers fanning out over seeds) share one build
 *    instead of redundantly integrating in parallel;
 *  - an on-disk tier under `<store>/problems/` (same configuration,
 *    format discipline, and corruption tolerance as the circuit
 *    store: magic + version + full key + checksum, any invalid entry
 *    deleted and rebuilt).
 *
 * The disk tier obeys QCC_STORE_DIR / QCC_STORE / setStoreDir (see
 * store.hh); the in-process memo is always on — it changes wall time,
 * never results, because builds are deterministic.
 */

#ifndef QCC_STORE_PROBLEM_STORE_HH
#define QCC_STORE_PROBLEM_STORE_HH

#include <future>
#include <mutex>
#include <string>
#include <unordered_map>

#include "ferm/hamiltonian.hh"

namespace qcc {

/** Two-level molecular-problem cache (see file comment). */
class MolecularProblemStore
{
  public:
    /**
     * The problem for (entry, bond, n_gauss), from the memo, the
     * disk tier, or a fresh build (in that order); fresh builds are
     * written through to disk when the store is enabled. Safe to call
     * concurrently; callers racing on one key share a single build.
     */
    MolecularProblem get(const BenchmarkMolecule &entry,
                         double bond_angstrom, int n_gauss = 3);

    /**
     * Drop the in-process memo (cold-cache baselines). In-flight
     * builds complete for their waiters; the disk tier is untouched.
     */
    void clearMemory();

    /** Resident memo entries (tests). */
    size_t memoSize() const;

    /**
     * Disk path the entry for (entry, bond, n_gauss) would use, or
     * "" when the store is disabled. Exposed for tests (corruption
     * injection) and debugging.
     */
    std::string pathFor(const BenchmarkMolecule &entry,
                        double bond_angstrom, int n_gauss = 3) const;

  private:
    mutable std::mutex mtx;
    std::unordered_map<std::string,
                       std::shared_future<MolecularProblem>>
        memo;
};

/** Process-wide store used by api::Experiment and the sweep engine. */
MolecularProblemStore &globalProblemStore();

/**
 * Serialize/deserialize one problem entry (payload format documented
 * in docs/caching.md; checksum included). Exposed for tests; false on
 * any validation failure.
 */
std::string serializeMolecularProblem(const std::string &key_bytes,
                                      const MolecularProblem &mp);
bool deserializeMolecularProblem(const std::string &bytes,
                                 const std::string &key_bytes,
                                 MolecularProblem &out);

/** Current on-disk format version of problem entries. */
uint32_t problemStoreVersion();

} // namespace qcc

#endif // QCC_STORE_PROBLEM_STORE_HH
