/**
 * @file
 * Persistent-store configuration and statistics — the shared
 * substrate of the on-disk cache tier (docs/caching.md documents the
 * full architecture). The two stores in this directory —
 * DiskCircuitStore (compiled circuits, keyed by the CircuitCache
 * content hash) and MolecularProblemStore (integrals/HF artifacts,
 * keyed by the chemistry inputs) — both resolve their root directory
 * and on/off switch through this one configuration:
 *
 *  - `QCC_STORE_DIR=<dir>` names the store root and enables the
 *    tier; entries land under `<dir>/circuits/` and
 *    `<dir>/problems/`.
 *  - `QCC_STORE=0` force-disables the tier even when a directory is
 *    configured (kill switch for A/B runs and debugging).
 *  - setStoreDir() overrides the environment at runtime (benches and
 *    tests point the tier at scratch directories; "" disables).
 *
 * The store is a cache, never a source of truth: every consumer
 * treats a missing, truncated, version-skewed, or corrupted entry as
 * a miss and recomputes. Deleting the store directory is always
 * safe.
 */

#ifndef QCC_STORE_STORE_HH
#define QCC_STORE_STORE_HH

#include <cstddef>
#include <string>

namespace qcc {

/**
 * Monotonic counters over the process lifetime, one block per store
 * (snapshot via storeStats()). "Bad entries" are files that failed
 * validation — wrong magic/version/checksum, truncation, key
 * mismatch after a filename-hash collision — all of which demote to
 * a rebuild, never an error.
 */
struct StoreStats
{
    // DiskCircuitStore (the CircuitCache write-through tier).
    size_t circuitDiskHits = 0;
    size_t circuitDiskMisses = 0;
    size_t circuitDiskWrites = 0;
    size_t circuitBadEntries = 0;

    // MolecularProblemStore.
    size_t problemMemHits = 0;   ///< served from the in-process memo
    size_t problemDiskHits = 0;  ///< deserialized from disk
    size_t problemBuilds = 0;    ///< full integrals/HF builds (misses)
    size_t problemDiskWrites = 0;
    size_t problemBadEntries = 0;
};

/** Snapshot of the process-wide store counters. */
StoreStats storeStats();

/** Zero every counter (benches isolate per-phase deltas). */
void resetStoreStats();

/** One-object JSON document of storeStats() plus the active config. */
std::string storeStatsJson();

/** @{ Counter increments (internal to the store implementations). */
void countCircuitDiskHit();
void countCircuitDiskMiss();
void countCircuitDiskWrite();
void countCircuitBadEntry();
void countProblemMemHit();
void countProblemDiskHit();
void countProblemBuild();
void countProblemDiskWrite();
void countProblemBadEntry();
/** @} */

/**
 * Active store root: the runtime override when one was set, else
 * `QCC_STORE_DIR`, else "". Does not imply the tier is on — check
 * storeEnabled().
 */
std::string storeDir();

/**
 * True when the persistent tier is active: a root directory is
 * configured and neither `QCC_STORE=0` nor setStoreEnabled(false)
 * has disabled it.
 */
bool storeEnabled();

/**
 * Point the store at `dir` for the rest of the process, overriding
 * `QCC_STORE_DIR`; "" disables the tier (and clears the override
 * back to "no directory", not back to the environment).
 */
void setStoreDir(const std::string &dir);

/** Runtime master switch, overriding `QCC_STORE`. */
void setStoreEnabled(bool enabled);

/**
 * Create `dir` (and parents) if needed; false when the directory
 * cannot be created. Never throws.
 */
bool ensureDirectory(const std::string &dir);

} // namespace qcc

#endif // QCC_STORE_STORE_HH
