/**
 * @file
 * DiskCircuitStore — the persistent tier of the compile cache. A
 * compiled circuit's structure (gates, RZ rebind indices, layouts,
 * SWAP count) depends only on the CacheKey content — Pauli strings,
 * device, flow — so one serialized entry per key makes every
 * (molecule, pipeline, architecture) combination a compile-once
 * artifact: a restarted service, a fresh sweep worker process, or a
 * CI re-run rebinds angles on the deserialized structure instead of
 * re-running layout and routing.
 *
 * ## Entry format (docs/caching.md has the full story)
 *
 * One file per key under `<store>/circuits/`, named by two
 * independent 64-bit hashes of the key words. The payload is:
 *
 *   magic 'QCCC' | format version | full key words | circuit
 *   (width + gate list) | RZ rebind indices | initial/final layouts
 *   | SWAP count | FNV-1a checksum of everything before it
 *
 * Loads validate in order: checksum, magic, version, full key
 * equality (a filename hash collision therefore demotes to a miss,
 * exactly like the in-memory probe), then every structural invariant
 * (gate kinds and operands in range, RZ indices pointing at RZ
 * gates, layouts permutation-valid). Any failure counts a bad entry,
 * deletes the file, and returns a miss — a corrupt store can cost a
 * recompile, never a crash and never a wrong circuit.
 *
 * Writes are atomic (temp file + rename), so concurrent writers —
 * threads or separate processes sharing one store — race benignly:
 * readers only ever observe complete files.
 */

#ifndef QCC_STORE_CIRCUIT_STORE_HH
#define QCC_STORE_CIRCUIT_STORE_HH

#include <memory>
#include <string>

#include "compiler/cache.hh"

namespace qcc {

/** Persistent CircuitCache tier (see file comment). */
class DiskCircuitStore : public CircuitCache::DiskTier
{
  public:
    /**
     * A store rooted at `dir`; "" defers to the global
     * configuration (QCC_STORE_DIR / setStoreDir) on every call,
     * which is how the tier attached to the global cache follows
     * runtime reconfiguration.
     */
    explicit DiskCircuitStore(std::string dir = "");

    bool load(const CacheKey &key, CachedCompile &out) override;
    bool save(const CacheKey &key, const CachedCompile &entry) override;

    /**
     * Entry path for `key` under the active root, or "" when the
     * store is disabled. Exposed for tests (corruption injection)
     * and debugging.
     */
    std::string pathFor(const CacheKey &key) const;

  private:
    std::string resolveDir() const;

    std::string dirOverride;
};

/**
 * Serialize/deserialize one cache entry (the payload format above,
 * checksum included). Exposed for tests; false on any validation
 * failure.
 */
std::string serializeCachedCompile(const CacheKey &key,
                                   const CachedCompile &entry);
bool deserializeCachedCompile(const std::string &bytes,
                              const CacheKey &key, CachedCompile &out);

/** Current on-disk format version of circuit entries. */
uint32_t circuitStoreVersion();

} // namespace qcc

#endif // QCC_STORE_CIRCUIT_STORE_HH
