#include "pauli/pauli_sum.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_map>

#include "common/logging.hh"

namespace qcc {

void
PauliSum::add(std::complex<double> w, const PauliString &p)
{
    if (nQubits == 0)
        nQubits = p.numQubits();
    if (p.numQubits() != nQubits)
        panic("PauliSum::add: qubit count mismatch");
    termList.push_back({w, p});
}

void
PauliSum::add(const PauliSum &other)
{
    for (const auto &t : other.termList)
        add(t.coeff, t.string);
}

void
PauliSum::simplify(double eps)
{
    std::unordered_map<PauliString, std::complex<double>,
                       PauliStringHash> acc;
    std::vector<PauliString> order;
    for (const auto &t : termList) {
        auto [it, inserted] = acc.try_emplace(t.string, 0.0);
        if (inserted)
            order.push_back(t.string);
        it->second += t.coeff;
    }
    termList.clear();
    for (const auto &p : order) {
        std::complex<double> w = acc.at(p);
        if (std::abs(w) > eps)
            termList.push_back({w, p});
    }
}

PauliSum
PauliSum::product(const PauliSum &other) const
{
    PauliSum out(nQubits);
    for (const auto &a : termList) {
        for (const auto &b : other.termList) {
            auto [phase, p] = a.string.product(b.string);
            out.add(a.coeff * b.coeff * phase, p);
        }
    }
    out.simplify();
    return out;
}

void
PauliSum::scale(std::complex<double> s)
{
    for (auto &t : termList)
        t.coeff *= s;
}

double
PauliSum::maxImagCoeff() const
{
    double m = 0.0;
    for (const auto &t : termList)
        m = std::max(m, std::fabs(t.coeff.imag()));
    return m;
}

std::complex<double>
PauliSum::identityCoeff() const
{
    std::complex<double> w = 0.0;
    for (const auto &t : termList)
        if (t.string.isIdentity())
            w += t.coeff;
    return w;
}

double
PauliSum::normL1() const
{
    double s = 0.0;
    for (const auto &t : termList)
        s += std::abs(t.coeff);
    return s;
}

std::string
PauliSum::str(size_t max_terms) const
{
    std::vector<const PauliTerm *> sorted;
    sorted.reserve(termList.size());
    for (const auto &t : termList)
        sorted.push_back(&t);
    std::sort(sorted.begin(), sorted.end(),
              [](const PauliTerm *a, const PauliTerm *b) {
                  return std::abs(a->coeff) > std::abs(b->coeff);
              });

    std::string out;
    char buf[128];
    size_t shown = std::min(max_terms, sorted.size());
    for (size_t i = 0; i < shown; ++i) {
        std::snprintf(buf, sizeof(buf), "%+.6f%+.6fi  %s\n",
                      sorted[i]->coeff.real(), sorted[i]->coeff.imag(),
                      sorted[i]->string.str().c_str());
        out += buf;
    }
    if (shown < sorted.size()) {
        std::snprintf(buf, sizeof(buf), "... (%zu more terms)\n",
                      sorted.size() - shown);
        out += buf;
    }
    return out;
}

} // namespace qcc
