/**
 * @file
 * Weighted sums of Pauli strings. A molecular Hamiltonian after the
 * Jordan-Wigner transform is exactly such a sum (Section II-B); sums
 * also appear as intermediate values when multiplying fermionic
 * operators through the transform.
 */

#ifndef QCC_PAULI_PAULI_SUM_HH
#define QCC_PAULI_PAULI_SUM_HH

#include <complex>
#include <string>
#include <vector>

#include "pauli/pauli.hh"

namespace qcc {

/** One weighted term w * P. */
struct PauliTerm
{
    std::complex<double> coeff;
    PauliString string;
};

/**
 * A sum of weighted Pauli strings, sum_j w_j P_j. Hamiltonians keep
 * real w_j; complex coefficients appear transiently inside operator
 * algebra. Terms are kept in insertion order until simplify() merges
 * duplicates.
 */
class PauliSum
{
  public:
    PauliSum() : nQubits(0) {}
    explicit PauliSum(unsigned n) : nQubits(n) {}

    unsigned numQubits() const { return nQubits; }
    size_t numTerms() const { return termList.size(); }
    const std::vector<PauliTerm> &terms() const { return termList; }

    /** Append w * P (no merging until simplify()). */
    void add(std::complex<double> w, const PauliString &p);

    /** Append every term of another sum. */
    void add(const PauliSum &other);

    /** Merge duplicate strings and drop |w| <= eps terms. */
    void simplify(double eps = 1e-12);

    /** this * other with full phase tracking (term-by-term products). */
    PauliSum product(const PauliSum &other) const;

    /** Multiply every coefficient by s. */
    void scale(std::complex<double> s);

    /** Largest |imag(w)| over all terms (Hermiticity check). */
    double maxImagCoeff() const;

    /** Coefficient of the identity string (0 if absent). */
    std::complex<double> identityCoeff() const;

    /** Sum of |w| over all terms. */
    double normL1() const;

    /** Human-readable listing (sorted by |w| descending). */
    std::string str(size_t max_terms = 20) const;

  private:
    unsigned nQubits;
    std::vector<PauliTerm> termList;
};

} // namespace qcc

#endif // QCC_PAULI_PAULI_SUM_HH
