#include "pauli/grouping.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>

#include "common/logging.hh"

namespace qcc {

bool
qubitWiseCommute(const PauliString &a, const PauliString &b)
{
    // Conflict where both are non-identity and different.
    uint64_t both = a.supportMask() & b.supportMask();
    uint64_t diff = (a.xMask() ^ b.xMask()) | (a.zMask() ^ b.zMask());
    return (both & diff) == 0;
}

std::vector<MeasurementGroup>
groupQubitWise(const PauliSum &h)
{
    std::vector<size_t> order(h.numTerms());
    std::iota(order.begin(), order.end(), size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         return std::abs(h.terms()[a].coeff) >
                                std::abs(h.terms()[b].coeff);
                     });

    std::vector<MeasurementGroup> groups;
    for (size_t idx : order) {
        const PauliString &p = h.terms()[idx].string;
        bool placed = false;
        for (auto &g : groups) {
            if (!qubitWiseCommute(g.basis, p))
                continue;
            g.termIndices.push_back(idx);
            // Extend the family basis where the newcomer is
            // non-identity.
            PauliString merged(
                g.basis.numQubits(),
                g.basis.xMask() | p.xMask(),
                g.basis.zMask() | p.zMask());
            g.basis = merged;
            placed = true;
            break;
        }
        if (!placed)
            groups.push_back({{idx}, p});
    }
    return groups;
}

std::vector<MeasurementGroup>
groupQubitWiseSorted(const PauliSum &h)
{
    std::vector<size_t> order(h.numTerms());
    std::iota(order.begin(), order.end(), size_t{0});
    auto weight = [&](size_t i) {
        return std::popcount(h.terms()[i].string.supportMask());
    };
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         const int wa = weight(a), wb = weight(b);
                         if (wa != wb)
                             return wa > wb;
                         return std::abs(h.terms()[a].coeff) >
                                std::abs(h.terms()[b].coeff);
                     });

    std::vector<MeasurementGroup> groups;
    for (size_t idx : order) {
        const PauliString &p = h.terms()[idx].string;
        // Prefer the first family whose basis already covers the
        // term's support (no basis growth); otherwise the first
        // compatible family. Wide strings arrive first, so covering
        // families exist by the time the narrow strings land.
        size_t best = groups.size();
        for (size_t gi = 0; gi < groups.size(); ++gi) {
            const MeasurementGroup &g = groups[gi];
            if (!qubitWiseCommute(g.basis, p))
                continue;
            if ((p.supportMask() & ~g.basis.supportMask()) == 0) {
                best = gi;
                break;
            }
            if (best == groups.size())
                best = gi;
        }
        if (best == groups.size()) {
            groups.push_back({{idx}, p});
            continue;
        }
        MeasurementGroup &g = groups[best];
        g.termIndices.push_back(idx);
        g.basis = PauliString(g.basis.numQubits(),
                              g.basis.xMask() | p.xMask(),
                              g.basis.zMask() | p.zMask());
    }
    return groups;
}

std::vector<MeasurementGroup>
groupQubitWiseColoring(const PauliSum &h)
{
    const size_t n = h.numTerms();
    if (n == 0)
        return {};

    // Conflict adjacency as packed bit rows: row i holds a 1 for
    // every term that cannot share a setting with term i.
    const size_t words = (n + 63) / 64;
    std::vector<uint64_t> adj(n * words, 0);
    std::vector<unsigned> degree(n, 0);
    for (size_t i = 0; i < n; ++i) {
        const PauliString &a = h.terms()[i].string;
        for (size_t j = i + 1; j < n; ++j) {
            if (qubitWiseCommute(a, h.terms()[j].string))
                continue;
            adj[i * words + j / 64] |= uint64_t{1} << (j % 64);
            adj[j * words + i / 64] |= uint64_t{1} << (i % 64);
            ++degree[i];
            ++degree[j];
        }
    }

    constexpr size_t kUncolored = size_t(-1);
    std::vector<size_t> color(n, kUncolored);
    // Per-vertex saturation: which colors appear on neighbors.
    // Colors are dense (smallest-feasible), so a bitset per vertex
    // over the worst-case color count n stays O(n^2 / 64).
    std::vector<uint64_t> sat(n * words, 0);
    std::vector<unsigned> satCount(n, 0);
    size_t nColors = 0;

    for (size_t step = 0; step < n; ++step) {
        // DSATUR selection: max saturation, then max conflict
        // degree, then lowest index (fully deterministic).
        size_t pick = kUncolored;
        for (size_t i = 0; i < n; ++i) {
            if (color[i] != kUncolored)
                continue;
            if (pick == kUncolored ||
                satCount[i] > satCount[pick] ||
                (satCount[i] == satCount[pick] &&
                 degree[i] > degree[pick]))
                pick = i;
        }

        // Smallest color absent from the neighborhood.
        size_t c = 0;
        while (c < nColors &&
               (sat[pick * words + c / 64] >> (c % 64)) & 1)
            ++c;
        color[pick] = c;
        nColors = std::max(nColors, c + 1);

        // Update neighbor saturation.
        for (size_t w = 0; w < words; ++w) {
            uint64_t bits = adj[pick * words + w];
            while (bits) {
                const size_t j =
                    w * 64 + size_t(std::countr_zero(bits));
                bits &= bits - 1;
                if (color[j] != kUncolored)
                    continue;
                uint64_t &slot = sat[j * words + c / 64];
                const uint64_t bit = uint64_t{1} << (c % 64);
                if (!(slot & bit)) {
                    slot |= bit;
                    ++satCount[j];
                }
            }
        }
    }

    // Color classes in color order; members in term order. Pairwise
    // QWC within a class means every non-identity operator on a
    // qubit agrees, so the merged basis is exact.
    std::vector<MeasurementGroup> groups(nColors);
    for (size_t i = 0; i < n; ++i) {
        MeasurementGroup &g = groups[color[i]];
        const PauliString &p = h.terms()[i].string;
        if (g.termIndices.empty())
            g.basis = p;
        else
            g.basis = PauliString(g.basis.numQubits(),
                                  g.basis.xMask() | p.xMask(),
                                  g.basis.zMask() | p.zMask());
        g.termIndices.push_back(i);
    }
    return groups;
}

std::vector<std::pair<unsigned, PauliOp>>
basisChangeOps(const PauliString &basis)
{
    std::vector<std::pair<unsigned, PauliOp>> ops;
    for (unsigned q : basis.support()) {
        PauliOp op = basis.op(q);
        if (op == PauliOp::X || op == PauliOp::Y)
            ops.emplace_back(q, op);
    }
    return ops;
}

void
basisChangeMatrix(PauliOp op, std::complex<double> u[4])
{
    if (op != PauliOp::X && op != PauliOp::Y)
        panic("basisChangeMatrix: operator must be X or Y");
    const double r = 1.0 / std::sqrt(2.0);
    if (op == PauliOp::X) {
        u[0] = r; u[1] = r;
        u[2] = r; u[3] = -r;
    } else {
        u[0] = r; u[1] = std::complex<double>(0, -r);
        u[2] = r; u[3] = std::complex<double>(0, r);
    }
}

Circuit
basisChangeCircuit(const PauliString &basis)
{
    Circuit c(basis.numQubits());
    for (const auto &[q, op] : basisChangeOps(basis)) {
        if (op == PauliOp::Y)
            c.sdg(q);
        c.h(q);
    }
    return c;
}

double
groupingReduction(const PauliSum &h,
                  const std::vector<MeasurementGroup> &groups)
{
    if (groups.empty())
        return 1.0;
    return double(h.numTerms()) / double(groups.size());
}

} // namespace qcc
