#include "pauli/grouping.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>

#include "common/logging.hh"

namespace qcc {

bool
qubitWiseCommute(const PauliString &a, const PauliString &b)
{
    // Conflict where both are non-identity and different.
    uint64_t both = a.supportMask() & b.supportMask();
    uint64_t diff = (a.xMask() ^ b.xMask()) | (a.zMask() ^ b.zMask());
    return (both & diff) == 0;
}

std::vector<MeasurementGroup>
groupQubitWise(const PauliSum &h)
{
    std::vector<size_t> order(h.numTerms());
    std::iota(order.begin(), order.end(), size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         return std::abs(h.terms()[a].coeff) >
                                std::abs(h.terms()[b].coeff);
                     });

    std::vector<MeasurementGroup> groups;
    for (size_t idx : order) {
        const PauliString &p = h.terms()[idx].string;
        bool placed = false;
        for (auto &g : groups) {
            if (!qubitWiseCommute(g.basis, p))
                continue;
            g.termIndices.push_back(idx);
            // Extend the family basis where the newcomer is
            // non-identity.
            PauliString merged(
                g.basis.numQubits(),
                g.basis.xMask() | p.xMask(),
                g.basis.zMask() | p.zMask());
            g.basis = merged;
            placed = true;
            break;
        }
        if (!placed)
            groups.push_back({{idx}, p});
    }
    return groups;
}

std::vector<MeasurementGroup>
groupQubitWiseSorted(const PauliSum &h)
{
    std::vector<size_t> order(h.numTerms());
    std::iota(order.begin(), order.end(), size_t{0});
    auto weight = [&](size_t i) {
        return std::popcount(h.terms()[i].string.supportMask());
    };
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         const int wa = weight(a), wb = weight(b);
                         if (wa != wb)
                             return wa > wb;
                         return std::abs(h.terms()[a].coeff) >
                                std::abs(h.terms()[b].coeff);
                     });

    std::vector<MeasurementGroup> groups;
    for (size_t idx : order) {
        const PauliString &p = h.terms()[idx].string;
        // Prefer the first family whose basis already covers the
        // term's support (no basis growth); otherwise the first
        // compatible family. Wide strings arrive first, so covering
        // families exist by the time the narrow strings land.
        size_t best = groups.size();
        for (size_t gi = 0; gi < groups.size(); ++gi) {
            const MeasurementGroup &g = groups[gi];
            if (!qubitWiseCommute(g.basis, p))
                continue;
            if ((p.supportMask() & ~g.basis.supportMask()) == 0) {
                best = gi;
                break;
            }
            if (best == groups.size())
                best = gi;
        }
        if (best == groups.size()) {
            groups.push_back({{idx}, p});
            continue;
        }
        MeasurementGroup &g = groups[best];
        g.termIndices.push_back(idx);
        g.basis = PauliString(g.basis.numQubits(),
                              g.basis.xMask() | p.xMask(),
                              g.basis.zMask() | p.zMask());
    }
    return groups;
}

std::vector<std::pair<unsigned, PauliOp>>
basisChangeOps(const PauliString &basis)
{
    std::vector<std::pair<unsigned, PauliOp>> ops;
    for (unsigned q : basis.support()) {
        PauliOp op = basis.op(q);
        if (op == PauliOp::X || op == PauliOp::Y)
            ops.emplace_back(q, op);
    }
    return ops;
}

void
basisChangeMatrix(PauliOp op, std::complex<double> u[4])
{
    if (op != PauliOp::X && op != PauliOp::Y)
        panic("basisChangeMatrix: operator must be X or Y");
    const double r = 1.0 / std::sqrt(2.0);
    if (op == PauliOp::X) {
        u[0] = r; u[1] = r;
        u[2] = r; u[3] = -r;
    } else {
        u[0] = r; u[1] = std::complex<double>(0, -r);
        u[2] = r; u[3] = std::complex<double>(0, r);
    }
}

Circuit
basisChangeCircuit(const PauliString &basis)
{
    Circuit c(basis.numQubits());
    for (const auto &[q, op] : basisChangeOps(basis)) {
        if (op == PauliOp::Y)
            c.sdg(q);
        c.h(q);
    }
    return c;
}

double
groupingReduction(const PauliSum &h,
                  const std::vector<MeasurementGroup> &groups)
{
    if (groups.empty())
        return 1.0;
    return double(h.numTerms()) / double(groups.size());
}

} // namespace qcc
