#include "pauli/pauli.hh"

#include <bit>
#include <cctype>

#include "common/logging.hh"

namespace qcc {

char
pauliChar(PauliOp op)
{
    switch (op) {
      case PauliOp::I: return 'I';
      case PauliOp::X: return 'X';
      case PauliOp::Y: return 'Y';
      case PauliOp::Z: return 'Z';
    }
    return '?';
}

PauliString::PauliString(unsigned n) : nQubits(n), x(0), z(0)
{
    if (n > 64)
        panic("PauliString: more than 64 qubits unsupported");
}

PauliString::PauliString(unsigned n, uint64_t x_mask, uint64_t z_mask)
    : nQubits(n), x(x_mask), z(z_mask)
{
    if (n > 64)
        panic("PauliString: more than 64 qubits unsupported");
    uint64_t valid = (n == 64) ? ~0ull : ((1ull << n) - 1);
    if ((x & ~valid) || (z & ~valid))
        panic("PauliString: mask exceeds qubit count");
}

PauliString
PauliString::fromString(const std::string &s)
{
    PauliString p(unsigned(s.size()));
    for (size_t i = 0; i < s.size(); ++i) {
        unsigned q = unsigned(s.size() - 1 - i);
        switch (std::toupper(s[i])) {
          case 'I': break;
          case 'X': p.setOp(q, PauliOp::X); break;
          case 'Y': p.setOp(q, PauliOp::Y); break;
          case 'Z': p.setOp(q, PauliOp::Z); break;
          default:
            fatal("PauliString::fromString: bad character in " + s);
        }
    }
    return p;
}

PauliString
PauliString::single(unsigned n, unsigned q, PauliOp op)
{
    PauliString p(n);
    p.setOp(q, op);
    return p;
}

PauliOp
PauliString::op(unsigned q) const
{
    if (q >= nQubits)
        panic("PauliString::op: qubit out of range");
    bool xb = (x >> q) & 1, zb = (z >> q) & 1;
    if (xb && zb)
        return PauliOp::Y;
    if (xb)
        return PauliOp::X;
    if (zb)
        return PauliOp::Z;
    return PauliOp::I;
}

void
PauliString::setOp(unsigned q, PauliOp op)
{
    if (q >= nQubits)
        panic("PauliString::setOp: qubit out of range");
    uint64_t bit = 1ull << q;
    x &= ~bit;
    z &= ~bit;
    if (op == PauliOp::X || op == PauliOp::Y)
        x |= bit;
    if (op == PauliOp::Z || op == PauliOp::Y)
        z |= bit;
}

unsigned
PauliString::weight() const
{
    return unsigned(std::popcount(x | z));
}

std::vector<unsigned>
PauliString::support() const
{
    std::vector<unsigned> qs;
    uint64_t m = x | z;
    while (m) {
        unsigned q = unsigned(std::countr_zero(m));
        qs.push_back(q);
        m &= m - 1;
    }
    return qs;
}

bool
PauliString::commutesWith(const PauliString &other) const
{
    unsigned anti = unsigned(std::popcount(x & other.z) +
                             std::popcount(z & other.x));
    return (anti & 1) == 0;
}

std::pair<std::complex<double>, PauliString>
PauliString::product(const PauliString &other) const
{
    if (nQubits != other.nQubits)
        panic("PauliString::product: qubit count mismatch");

    uint64_t x3 = x ^ other.x;
    uint64_t z3 = z ^ other.z;

    // Phase: per qubit i^{y1 + y2 - y3 + 2*(z1 & x2)} with y = x & z.
    int e = std::popcount(x & z) + std::popcount(other.x & other.z) -
            std::popcount(x3 & z3) + 2 * std::popcount(z & other.x);
    e = ((e % 4) + 4) % 4;

    static const std::complex<double> phases[4] = {
        {1, 0}, {0, 1}, {-1, 0}, {0, -1}
    };
    return {phases[e], PauliString(nQubits, x3, z3)};
}

std::string
PauliString::str() const
{
    std::string s;
    s.reserve(nQubits);
    for (unsigned q = nQubits; q-- > 0;)
        s += pauliChar(op(q));
    return s;
}

size_t
PauliStringHash::operator()(const PauliString &p) const
{
    uint64_t h = p.xMask() * 0x9e3779b97f4a7c15ull;
    h ^= p.zMask() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h ^= uint64_t(p.numQubits()) * 0xff51afd7ed558ccdull;
    return size_t(h);
}

unsigned
importanceDecay(const PauliString &pa, const PauliString &ph)
{
    if (pa.numQubits() != ph.numQubits())
        panic("importanceDecay: qubit count mismatch");
    // Qubits where both strings are non-identity:
    uint64_t both = pa.supportMask() & ph.supportMask();
    // ... and the operators differ:
    uint64_t diff = (pa.xMask() ^ ph.xMask()) | (pa.zMask() ^ ph.zMask());
    unsigned effective = unsigned(std::popcount(both & diff));
    return pa.numQubits() - effective;
}

} // namespace qcc
