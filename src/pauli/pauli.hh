/**
 * @file
 * Pauli string intermediate representation. Pauli strings are the
 * paper's key abstraction: the Hamiltonian is a weighted sum of them,
 * the UCCSD ansatz is a sequence of their time-evolution circuits, and
 * the compiler consumes them directly (Section II-A).
 *
 * A string is stored as two bitmasks (x, z); the operator on qubit i is
 *   (x,z) = (0,0) -> I, (1,0) -> X, (1,1) -> Y, (0,1) -> Z,
 * i.e. P = i^{|x&z|} X^x Z^z. This gives O(1) products, commutation
 * tests, and support queries for up to 64 qubits.
 */

#ifndef QCC_PAULI_PAULI_HH
#define QCC_PAULI_PAULI_HH

#include <complex>
#include <cstdint>
#include <string>
#include <vector>

namespace qcc {

/** Single-qubit Pauli operator label. */
enum class PauliOp : uint8_t { I = 0, X = 1, Y = 2, Z = 3 };

/** Printable character for a Pauli operator. */
char pauliChar(PauliOp op);

/**
 * An n-qubit Pauli string G_{n-1} ... G_1 G_0 with G_i in {I,X,Y,Z}.
 * Qubit 0 is the rightmost character in the printed form, matching the
 * paper's notation (e.g. exp(i theta X3 I2 Y1 Z0) prints as "XIYZ").
 */
class PauliString
{
  public:
    /** Identity string on n qubits. */
    explicit PauliString(unsigned n = 0);

    /** Construct from explicit masks. */
    PauliString(unsigned n, uint64_t x_mask, uint64_t z_mask);

    /**
     * Parse from the printed form: leftmost character is qubit n-1.
     * Accepts characters I, X, Y, Z (case-insensitive).
     */
    static PauliString fromString(const std::string &s);

    /** Identity except op on qubit q. */
    static PauliString single(unsigned n, unsigned q, PauliOp op);

    unsigned numQubits() const { return nQubits; }
    uint64_t xMask() const { return x; }
    uint64_t zMask() const { return z; }

    /** Operator acting on qubit q. */
    PauliOp op(unsigned q) const;

    /** Replace the operator on qubit q. */
    void setOp(unsigned q, PauliOp op);

    /** Number of non-identity positions. */
    unsigned weight() const;

    /** True if every position is the identity. */
    bool isIdentity() const { return (x | z) == 0; }

    /** Mask of non-identity qubits. */
    uint64_t supportMask() const { return x | z; }

    /** Indices of non-identity qubits, ascending. */
    std::vector<unsigned> support() const;

    /** True if the strings commute (symplectic form vanishes). */
    bool commutesWith(const PauliString &other) const;

    /**
     * Product this * other. The returned phase is in {1, i, -1, -i};
     * the string part is the canonical (Hermitian-Y) form.
     */
    std::pair<std::complex<double>, PauliString>
    product(const PauliString &other) const;

    /** Printed form, qubit n-1 leftmost. */
    std::string str() const;

    bool operator==(const PauliString &o) const = default;

  private:
    unsigned nQubits;
    uint64_t x;
    uint64_t z;
};

/** Hash functor so strings can key unordered containers. */
struct PauliStringHash
{
    size_t operator()(const PauliString &p) const;
};

/**
 * Importance decay factor d(Pa, PH) from Algorithm 1: the number of
 * qubits where (a) Pa is I, or (b) PH is I, or (c) both operators are
 * equal and non-identity. Equivalently n minus the count of qubits where
 * both are non-identity and different.
 */
unsigned importanceDecay(const PauliString &pa, const PauliString &ph);

} // namespace qcc

#endif // QCC_PAULI_PAULI_HH
