/**
 * @file
 * Measurement grouping: partition a Hamiltonian's Pauli strings into
 * qubit-wise commuting (QWC) families that can be estimated from one
 * measurement setting each. This is the inner-loop optimization the
 * paper cites as orthogonal/complementary to its techniques
 * (Section VIII-A) — fewer circuit executions per energy evaluation.
 */

#ifndef QCC_PAULI_GROUPING_HH
#define QCC_PAULI_GROUPING_HH

#include <complex>
#include <functional>
#include <utility>
#include <vector>

#include "circuit/circuit.hh"
#include "pauli/pauli_sum.hh"

namespace qcc {

/** One measurement family. */
struct MeasurementGroup
{
    /** Indices into the source sum's term list. */
    std::vector<size_t> termIndices;
    /**
     * The family's shared measurement basis: on each qubit, the
     * unique non-identity operator among members (I where all
     * members are I).
     */
    PauliString basis;
};

/**
 * True if two strings are qubit-wise commuting: on every qubit the
 * operators are equal or at least one is the identity.
 */
bool qubitWiseCommute(const PauliString &a, const PauliString &b);

/**
 * Greedy first-fit QWC grouping (the standard baseline grouping
 * heuristic). Terms are scanned in descending |coefficient| order
 * and placed in the first compatible family.
 */
std::vector<MeasurementGroup> groupQubitWise(const PauliSum &h);

/**
 * Sorted-insertion QWC grouping: terms are scanned in descending
 * Pauli-weight order (heaviest supports first, |coefficient| as the
 * tie-break) and placed in the first compatible family whose basis
 * already covers the term's support — falling back to the first
 * compatible family. Wide strings seed the families before narrow
 * strings fill them, which needs fewer measurement settings than
 * greedy first-fit on the larger Table I Hamiltonians (HF, BeH2,
 * BH3; cf. the sorted-insertion heuristic of arXiv:1908.06942).
 */
std::vector<MeasurementGroup> groupQubitWiseSorted(const PauliSum &h);

/**
 * Graph-coloring QWC grouping: build the conflict graph (one vertex
 * per term, an edge wherever two strings are not qubit-wise
 * commuting) and color it with the DSATUR heuristic — repeatedly
 * color the vertex with the most distinctly-colored neighbors,
 * breaking ties by conflict degree then term index, with the
 * smallest feasible color. Color classes are the measurement
 * families (pairwise QWC by construction, so the shared basis is
 * well defined). DSATUR's global view of the conflict structure
 * needs fewer settings than one-pass insertion orders on the larger
 * Table I Hamiltonians (cf. the coloring formulation of
 * arXiv:1907.03358 / arXiv:1908.06942); the O(n^2) bitset
 * construction is immaterial next to one VQE iteration.
 */
std::vector<MeasurementGroup> groupQubitWiseColoring(const PauliSum &h);

/**
 * A pluggable grouping strategy: PauliSum -> QWC measurement
 * families. The api-layer GroupingRegistry maps strategy names onto
 * these; a null GroupingFn always means the greedy first-fit
 * baseline.
 */
using GroupingFn =
    std::function<std::vector<MeasurementGroup>(const PauliSum &)>;

/** Number of measurement settings saved vs. one-term-per-setting. */
double groupingReduction(const PauliSum &h,
                         const std::vector<MeasurementGroup> &groups);

/**
 * Single-qubit rotations diagonalizing a family's measurement basis:
 * the (qubit, operator) pairs where the basis is X or Y. Applying H
 * (for X) or H S-dagger (for Y) on those qubits maps every member of
 * the family to a Z-string on its own support, which is what lets an
 * expectation engine evaluate the whole family in one probability
 * sweep (see vqe/expectation_engine.hh).
 */
std::vector<std::pair<unsigned, PauliOp>>
basisChangeOps(const PauliString &basis);

/**
 * The 2x2 unitary conjugating op to Z exactly (no residual sign):
 * H for X, the fused H * Sdg for Y. `op` must be X or Y. This is the
 * matrix form of one basisChangeOps entry, shared by the grouped
 * expectation sweep and the shot-sampling path.
 */
void basisChangeMatrix(PauliOp op, std::complex<double> u[4]);

/**
 * Gate-level measurement-basis rotation for a family: the circuit a
 * hardware run would append before the terminal Z-basis readout
 * (H on X qubits, Sdg then H on Y qubits). Applying it maps every
 * member of the family to a Z-string on its own support.
 */
Circuit basisChangeCircuit(const PauliString &basis);

} // namespace qcc

#endif // QCC_PAULI_GROUPING_HH
