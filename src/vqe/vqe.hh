/**
 * @file
 * VQE driver (Section II-B). The inner loop evaluates
 * E(theta) = sum_i w_i <psi(theta)| P_i |psi(theta)> through the
 * pluggable SimBackend interface: the ideal statevector backend
 * replays the ansatz with direct Pauli-rotation kernels and evaluates
 * <H> with the grouped ExpectationEngine, while the density-matrix
 * backend reproduces the noisy case studies of Section VI-D. The
 * outer loop minimizes E with a classical optimizer, and its
 * iteration count is the paper's convergence-speed metric.
 */

#ifndef QCC_VQE_VQE_HH
#define QCC_VQE_VQE_HH

#include <vector>

#include "ansatz/uccsd.hh"
#include "common/optimize.hh"
#include "common/rng.hh"
#include "pauli/pauli_sum.hh"
#include "sim/backend.hh"
#include "sim/noise_model.hh"
#include "sim/statevector.hh"

namespace qcc {

/** Optimizer selection and run limits. */
struct VqeOptions
{
    enum class Optimizer { Lbfgs, NelderMead, Spsa };
    Optimizer optimizer = Optimizer::Lbfgs;
    int maxIter = 200;
    double fdStep = 1e-5;     ///< finite-difference gradient step
    double gtol = 1e-5;       ///< L-BFGS gradient tolerance
    double ftol = 1e-9;       ///< relative energy-change tolerance
    int spsaIter = 250;       ///< SPSA iteration budget
    /** SPSA seed; follows QCC_SEED (default 2021) via globalSeed. */
    uint64_t seed = globalSeed();
};

/** VQE outcome. */
struct VqeResult
{
    double energy = 0.0;
    std::vector<double> params;
    int iterations = 0;  ///< outer-loop iterations (paper metric)
    int evals = 0;       ///< energy evaluations
    bool converged = false;
};

/** |psi(theta)>: HF state plus the ansatz rotation sequence. */
Statevector prepareAnsatzState(const Ansatz &ansatz,
                               const std::vector<double> &params);

/**
 * E(theta) in an arbitrary backend: applyAnsatz then the grouped
 * engine's energy (statevector backends) or the backend's own
 * expectation (mixed-state backends).
 */
double ansatzEnergy(SimBackend &backend, const PauliSum &h,
                    const Ansatz &ansatz,
                    const std::vector<double> &params);

/** Noise-free energy of the ansatz state (statevector backend). */
double ansatzEnergy(const PauliSum &h, const Ansatz &ansatz,
                    const std::vector<double> &params);

/**
 * Noisy energy: the ansatz is chain-synthesized to a gate circuit and
 * executed on the density-matrix backend with depolarizing noise
 * after every CNOT.
 */
double ansatzEnergyNoisy(const PauliSum &h, const Ansatz &ansatz,
                         const std::vector<double> &params,
                         const NoiseModel &noise);

/**
 * Minimize the VQE energy from a zero start against any backend. The
 * backend is reused (re-prepared) across every energy evaluation, so
 * no per-iteration state allocation occurs.
 */
VqeResult runVqe(SimBackend &backend, const PauliSum &h,
                 const Ansatz &ansatz, const VqeOptions &opts = {});

/** Minimize the noise-free VQE energy from a zero start. */
VqeResult runVqe(const PauliSum &h, const Ansatz &ansatz,
                 const VqeOptions &opts = {});

/** Minimize the noisy VQE energy (SPSA by default). */
VqeResult runVqeNoisy(const PauliSum &h, const Ansatz &ansatz,
                      const NoiseModel &noise,
                      const VqeOptions &opts = {});

} // namespace qcc

#endif // QCC_VQE_VQE_HH
