/**
 * @file
 * VQE primitives (Section II-B): the ansatz-state preparation and
 * single-point energy evaluations every layer above builds on —
 * E(theta) = sum_i w_i <psi(theta)| P_i |psi(theta)> through the
 * pluggable SimBackend interface, with the density-matrix backend
 * reproducing the noisy case studies of Section VI-D. The
 * optimization loop itself lives in VqeDriver (vqe/driver.hh),
 * driven through an EstimationStrategy and a VqeOptimizer; the
 * legacy runVqe/runVqeNoisy convenience wrappers (and their
 * VqeOptions) are gone — spec-level code goes through
 * qcc::Experiment, Hamiltonian-level code through the driver.
 */

#ifndef QCC_VQE_VQE_HH
#define QCC_VQE_VQE_HH

#include <vector>

#include "ansatz/uccsd.hh"
#include "common/rng.hh"
#include "pauli/pauli_sum.hh"
#include "sim/backend.hh"
#include "sim/noise_model.hh"
#include "sim/statevector.hh"

namespace qcc {

/** VQE outcome. */
struct VqeResult
{
    double energy = 0.0;
    std::vector<double> params;
    int iterations = 0;  ///< outer-loop iterations (paper metric)
    int evals = 0;       ///< energy evaluations
    bool converged = false;
};

/** |psi(theta)>: HF state plus the ansatz rotation sequence. */
Statevector prepareAnsatzState(const Ansatz &ansatz,
                               const std::vector<double> &params);

/**
 * E(theta) in an arbitrary backend: applyAnsatz then the grouped
 * engine's energy (statevector backends) or the backend's own
 * expectation (mixed-state backends).
 */
double ansatzEnergy(SimBackend &backend, const PauliSum &h,
                    const Ansatz &ansatz,
                    const std::vector<double> &params);

/** Noise-free energy of the ansatz state (statevector backend). */
double ansatzEnergy(const PauliSum &h, const Ansatz &ansatz,
                    const std::vector<double> &params);

/**
 * Noisy energy: the ansatz is chain-synthesized to a gate circuit and
 * executed on the density-matrix backend with depolarizing noise
 * after every CNOT.
 */
double ansatzEnergyNoisy(const PauliSum &h, const Ansatz &ansatz,
                         const std::vector<double> &params,
                         const NoiseModel &noise);

} // namespace qcc

#endif // QCC_VQE_VQE_HH
