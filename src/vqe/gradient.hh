/**
 * @file
 * Batched parameter-shift gradients for the VQE outer loop. Every
 * ansatz rotation exp(i phi P) with P^2 = I makes the energy a
 * sinusoid in phi, so the exact derivative is a two-point rule:
 * dE/dphi = [E(phi + s) - E(phi - s)] / sin(2s). Parameters shared by
 * several rotations (UCCSD singles span 2 strings, doubles 8)
 * accumulate by the chain rule over per-rotation shifts — 2R shifted
 * energies for R non-identity rotations.
 *
 * Batching the 2R evaluations into one engine call is what makes
 * them cheap; the engine exploits it three ways:
 *
 *  - prefix sharing: the shifted replay for rotation j agrees with
 *    the base replay up to rotation j, so a forward sweep snapshots
 *    each prefix state once and every task replays only its suffix
 *    (halves the rotation work even on one core);
 *  - pair-difference sweeps (gate-level noisy path): gates and
 *    depolarizing channels are linear superoperators, so
 *    E+ - E- = Tr(H L(RZ+ rho_j - RZ- rho_j)) needs ONE suffix
 *    application per rotation instead of two full circuit
 *    executions — and the shifted circuits come from the compiler
 *    pipeline's CircuitCache, so no shift ever re-synthesizes;
 *  - thread fan-out: independent tasks run over the common/parallel
 *    pool; results land in task-indexed slots and reduce in fixed
 *    order, so batched and serial execution agree bit-for-bit.
 */

#ifndef QCC_VQE_GRADIENT_HH
#define QCC_VQE_GRADIENT_HH

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "ansatz/uccsd.hh"
#include "pauli/pauli_sum.hh"
#include "sim/backend.hh"
#include "sim/noise_model.hh"
#include "sim/statevector.hh"

namespace qcc {

/** Constructs a fresh backend for one shifted evaluation. */
using BackendFactory = std::function<std::unique_ptr<SimBackend>()>;

/**
 * Evaluates <H> in a backend's current (already prepared) state.
 * `task` is the stable shifted-evaluation index — identical between
 * serial and batched execution — so stochastic evaluators can derive
 * a per-task rng stream that does not depend on scheduling.
 */
using StateEnergyFn =
    std::function<double(SimBackend &backend, size_t task)>;

/** Estimates <H> from a prefix-shared pure state (same task rule). */
using StateEstimator =
    std::function<double(const Statevector &psi, size_t task)>;

/** Parameter-shift configuration. */
struct GradientOptions
{
    /**
     * Shift s applied to the rotation angle phi (the exp(i phi P)
     * convention). The default pi/4 makes sin(2s) = 1, the
     * numerically optimal two-point rule.
     */
    double shift = 0.78539816339744830961; // pi/4

    /** Fan independent tasks over the thread pool. */
    bool batched = true;

    /**
     * Prefix-snapshot memory budget. When R snapshots exceed it the
     * statevector path replays each prefix from scratch and the
     * noisy path streams one forward state (serial but still
     * pair-differenced).
     */
    size_t maxPrefixBytes = size_t{1} << 30;
};

/** Precompiled parameter-shift plan for one (H, ansatz) pair. */
class ParameterShiftEngine
{
  public:
    ParameterShiftEngine(const PauliSum &h, const Ansatz &ansatz,
                         GradientOptions opts = {});

    /**
     * dE/dtheta at `params` through prefix-shared statevector
     * replays; `estimate` reads each shifted state (analytic grouped
     * sweep, shot sampler, ...).
     */
    std::vector<double>
    gradientStatevector(const std::vector<double> &params,
                        const StateEstimator &estimate) const;

    /**
     * dE/dtheta at `params` on the gate-level depolarizing-noise
     * model: the ansatz is chain-synthesized through the cached
     * compiler pipeline (one structure, 2R angle rebinds) and every
     * rotation's shifted pair is evaluated with one pair-difference
     * suffix sweep. Exactly matches shifting through
     * DensityMatrixBackend up to floating-point associativity.
     */
    std::vector<double>
    gradientNoisy(const std::vector<double> &params,
                  const NoiseModel &noise) const;

    /**
     * Generic fallback for arbitrary backends: each of the 2R tasks
     * builds a backend with `make`, prepares the shifted state with
     * a full replay, and reads the energy with `energy`.
     */
    std::vector<double>
    gradient(const std::vector<double> &params,
             const BackendFactory &make,
             const StateEnergyFn &energy) const;

    /** Shifted energy evaluations per gradient (2R). */
    size_t numShiftedEvaluations() const
    {
        return 2 * shiftable.size();
    }

    const GradientOptions &options() const { return opts; }
    const Ansatz &unrolledAnsatz() const { return unrolled; }
    const PauliSum &hamiltonian() const { return ham; }

  private:
    /** Resolved per-rotation base angles for `params`. */
    std::vector<double>
    baseAngles(const std::vector<double> &params) const;

    /** Chain-rule assembly from per-rotation (E+ - E-) values. */
    std::vector<double>
    assemble(const std::vector<double> &pairDiffs) const;

    GradientOptions opts;
    PauliSum ham;
    const Ansatz *source;  ///< non-owning; outlives the engine
    Ansatz unrolled;       ///< one parameter per rotation
    std::vector<size_t> shiftable; ///< non-identity rotation indices
};

/**
 * Central finite-difference gradient evaluated through the same
 * backend/energy plumbing — the independent cross-check the gradient
 * tests compare the shift rule against.
 */
std::vector<double>
finiteDifferenceGradient(const Ansatz &ansatz,
                         const std::vector<double> &params,
                         const BackendFactory &make,
                         const StateEnergyFn &energy,
                         double step = 1e-5);

} // namespace qcc

#endif // QCC_VQE_GRADIENT_HH
