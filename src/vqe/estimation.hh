/**
 * @file
 * Energy-estimation strategies for the VQE driver. A strategy is the
 * composition of two orthogonal choices (which the since-removed
 * EvalMode enum used to weld together):
 *
 *  - a *state model*: how |psi(theta)> is realized — the ideal
 *    statevector, or the density matrix with depolarizing channels
 *    (gate circuits through the cached compiler pipeline);
 *  - a *readout*: how <H> is extracted from that state — the grouped
 *    analytic expectation, or the shot-based SamplingEngine.
 *
 * The four products are the driver's evaluation modes, and the
 * composition is literal: NoisySampled (the end-to-end hardware
 * model, density-matrix state + shot readout) is one registry line
 * pairing the density-matrix model with the sampled readout — no new
 * code path. Strategies own their engines (ExpectationEngine or
 * SamplingEngine), construct fresh backends, and pick the optimal
 * parameter-shift gradient route for their state model; the driver
 * only derives rng streams and keeps the trace.
 *
 * Modes are looked up by name in estimationRegistry() ("ideal",
 * "noisy", "sampled", "noisy_sampled"); unknown names throw a
 * RegistryError listing the registered modes.
 */

#ifndef QCC_VQE_ESTIMATION_HH
#define QCC_VQE_ESTIMATION_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/registry.hh"
#include "pauli/pauli_sum.hh"
#include "sim/backend.hh"
#include "sim/noise_model.hh"
#include "sim/sampling.hh"
#include "vqe/expectation_engine.hh"
#include "vqe/gradient.hh"

namespace qcc {

/** One energy estimate with its statistical cost. */
struct EnergyEstimate
{
    double energy = 0.0;
    double variance = 0.0; ///< estimator variance (0 when exact)
    uint64_t shots = 0;    ///< shots spent on this estimate
};

/**
 * The state-model half of a strategy: an identifier, whether the
 * state is pure (enabling the prefix-shared statevector gradient
 * fast path), the noise channels (density-matrix models), and a
 * factory for fresh backends.
 */
struct StateModel
{
    std::string id;        ///< "statevector" | "density_matrix"
    bool pureState = true; ///< backend exposes a Statevector
    NoiseModel noise;      ///< channels (density-matrix model)
    BackendFactory make;   ///< fresh backend for this model
};

/** Ideal pure-state model on n qubits. */
StateModel statevectorModel(unsigned n);

/** Depolarizing-noise mixed-state model on n qubits. */
StateModel densityMatrixModel(unsigned n, NoiseModel noise);

/**
 * How the driver turns a prepared state into an energy estimate and
 * a parameter-shift gradient. Implementations are immutable after
 * construction except for engine-internal scratch; measure() and
 * gradient() derive all stochastic behavior from the caller's
 * streams, so a strategy adds no hidden state to the seed contract.
 */
class EstimationStrategy
{
  public:
    virtual ~EstimationStrategy() = default;

    /** Mode name recorded in traces ("ideal", "noisy_sampled", ...). */
    virtual const std::string &name() const = 0;

    /** True when estimates carry shot noise (stochastic readout). */
    virtual bool stochastic() const = 0;

    /** Shots one estimate spends (0 for analytic readout). */
    virtual uint64_t shotsPerEstimate() const { return 0; }

    /** Fresh backend realizing this strategy's state model. */
    virtual std::unique_ptr<SimBackend> makeBackend() const = 0;

    /**
     * Estimate <H> in the backend's current (already prepared)
     * state. `stream` seeds stochastic readout; analytic strategies
     * ignore it.
     */
    virtual EnergyEstimate measure(SimBackend &backend,
                                   uint64_t stream) const = 0;

    /**
     * Generous end-of-run readout at the best parameters: like
     * measure() but with `factor` times this strategy's per-estimate
     * budget, using the strategy's own sampling policy (grouping,
     * allocation). The default re-measures once — stochastic
     * strategies with a scalable budget override.
     */
    virtual EnergyEstimate
    finalReadout(SimBackend &backend, uint64_t stream,
                 unsigned factor) const
    {
        (void)factor;
        return measure(backend, stream);
    }

    /**
     * Full parameter-shift gradient through `engine`, routed over
     * this strategy's optimal path (prefix-shared statevector
     * replays, pair-differenced noisy sweeps, or generic per-task
     * backends). `call_stream` seeds per-task readout streams;
     * `shots_out`, when non-null, receives the shots the gradient
     * spent.
     */
    virtual std::vector<double>
    gradient(const ParameterShiftEngine &engine,
             const std::vector<double> &params, uint64_t call_stream,
             uint64_t *shots_out) const = 0;
};

/** Analytic (grouped exact expectation) readout over a state model. */
class AnalyticEstimation : public EstimationStrategy
{
  public:
    AnalyticEstimation(const PauliSum &h, StateModel model,
                       std::string mode_name,
                       const GroupingFn &grouping = {});

    const std::string &name() const override { return modeName; }
    bool stochastic() const override { return false; }
    std::unique_ptr<SimBackend> makeBackend() const override;
    EnergyEstimate measure(SimBackend &backend,
                           uint64_t stream) const override;
    std::vector<double>
    gradient(const ParameterShiftEngine &engine,
             const std::vector<double> &params, uint64_t call_stream,
             uint64_t *shots_out) const override;

  private:
    ExpectationEngine engine;
    StateModel model;
    std::string modeName;
};

/** Shot-based (SamplingEngine) readout over a state model. */
class SampledEstimation : public EstimationStrategy
{
  public:
    SampledEstimation(const PauliSum &h, SamplingOptions sampling,
                      StateModel model, std::string mode_name);

    const std::string &name() const override { return modeName; }
    bool stochastic() const override { return true; }
    uint64_t shotsPerEstimate() const override { return perEstimate; }
    std::unique_ptr<SimBackend> makeBackend() const override;
    EnergyEstimate measure(SimBackend &backend,
                           uint64_t stream) const override;
    EnergyEstimate finalReadout(SimBackend &backend, uint64_t stream,
                                unsigned factor) const override;
    std::vector<double>
    gradient(const ParameterShiftEngine &engine,
             const std::vector<double> &params, uint64_t call_stream,
             uint64_t *shots_out) const override;

    const SamplingEngine &samplingEngine() const { return sampler; }

  private:
    SamplingEngine sampler;
    StateModel model;
    std::string modeName;
    uint64_t perEstimate = 0;
};

/** Everything a mode factory needs to assemble a strategy. */
struct EstimationConfig
{
    const PauliSum *hamiltonian = nullptr;
    NoiseModel noise;
    SamplingOptions sampling;
    GroupingFn grouping; ///< analytic-engine grouping (null = greedy)
};

using EstimationFactory = std::function<std::unique_ptr<
    EstimationStrategy>(const EstimationConfig &)>;

/**
 * Mode registry seeded with the four built-in compositions:
 * "ideal", "noisy", "sampled", and "noisy_sampled" (density-matrix
 * state + shot readout — the ROADMAP composition).
 */
Registry<EstimationFactory> &estimationRegistry();

/** Build the strategy for `mode`; throws RegistryError when unknown. */
std::unique_ptr<EstimationStrategy>
makeEstimationStrategy(const std::string &mode,
                       const EstimationConfig &config);

} // namespace qcc

#endif // QCC_VQE_ESTIMATION_HH
