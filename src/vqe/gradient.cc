#include "vqe/gradient.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "obs/trace.hh"
#include "compiler/pipeline.hh"
#include "sim/density_matrix.hh"

namespace qcc {

namespace {

/**
 * Shared scratch-statevector pool for the batched per-task replays:
 * with grain-1 fan-out every task is its own chunk, so without the
 * pool each shifted evaluation paid one O(2^n) allocation.
 */
BufferPool<cplx> &
statePool()
{
    static BufferPool<cplx> pool;
    return pool;
}

} // namespace

ParameterShiftEngine::ParameterShiftEngine(const PauliSum &h,
                                           const Ansatz &ansatz,
                                           GradientOptions o)
    : opts(o), ham(h), source(&ansatz)
{
    if (ham.numQubits() != ansatz.nQubits)
        fatal("ParameterShiftEngine: Hamiltonian/ansatz width "
              "mismatch");
    if (std::fabs(std::sin(2.0 * opts.shift)) < 1e-12)
        fatal("ParameterShiftEngine: sin(2*shift) vanishes — the "
              "two-point rule is singular at this shift");

    // The unrolled twin: same qubit count, same HF mask, same string
    // sequence, but one parameter per rotation with the coefficient
    // folded into the binding. Same strings -> same CircuitCache key
    // as the source ansatz, so the gate-level path rebinds rather
    // than recompiles every shifted evaluation.
    unrolled.nQubits = ansatz.nQubits;
    unrolled.nParams = unsigned(ansatz.rotations.size());
    unrolled.hfMask = ansatz.hfMask;
    unrolled.rotations.reserve(ansatz.rotations.size());
    for (size_t j = 0; j < ansatz.rotations.size(); ++j) {
        const PauliRotation &r = ansatz.rotations[j];
        unrolled.rotations.push_back({unsigned(j), 1.0, r.string});
        // exp(i phi I) is a global phase: no energy dependence, no
        // shift job.
        if (!r.string.isIdentity())
            shiftable.push_back(j);
    }
}

std::vector<double>
ParameterShiftEngine::baseAngles(
    const std::vector<double> &params) const
{
    if (params.size() != source->nParams)
        fatal("ParameterShiftEngine: parameter count mismatch");
    // Exactly the products the direct replay computes, so a zero
    // shift reproduces the unshifted state bit-for-bit.
    std::vector<double> base(source->rotations.size());
    for (size_t j = 0; j < source->rotations.size(); ++j) {
        const PauliRotation &r = source->rotations[j];
        base[j] = params[r.param] * r.coeff;
    }
    return base;
}

std::vector<double>
ParameterShiftEngine::assemble(
    const std::vector<double> &pairDiffs) const
{
    // Chain rule in fixed rotation order: batched and serial runs
    // assemble identical sums.
    const double invSin = 1.0 / std::sin(2.0 * opts.shift);
    std::vector<double> grad(source->nParams, 0.0);
    for (size_t i = 0; i < shiftable.size(); ++i) {
        const PauliRotation &r = source->rotations[shiftable[i]];
        grad[r.param] += r.coeff * pairDiffs[i] * invSin;
    }
    return grad;
}

std::vector<double>
ParameterShiftEngine::gradientStatevector(
    const std::vector<double> &params,
    const StateEstimator &estimate) const
{
    TraceSpan span("gradient.statevector");
    span.arg("evaluations", 2 * shiftable.size());
    const std::vector<double> base = baseAngles(params);
    const unsigned n = source->nQubits;
    const size_t dim = size_t{1} << n;
    const auto &rots = unrolled.rotations;

    // Prefix sharing: snapshot the state just before each shiftable
    // rotation during one forward sweep, so every task replays only
    // its suffix. Falls back to full per-task replays when the
    // snapshots would blow the memory budget.
    const bool snapshot =
        shiftable.size() * dim * sizeof(cplx) <= opts.maxPrefixBytes;
    std::vector<std::vector<cplx>> prefixes;
    if (snapshot) {
        prefixes.resize(shiftable.size());
        Statevector sv(n, source->hfMask);
        size_t si = 0;
        for (size_t j = 0; j < rots.size(); ++j) {
            if (si < shiftable.size() && shiftable[si] == j)
                prefixes[si++] = sv.amplitudes();
            sv.applyPauliRotation(base[j], rots[j].string);
        }
    }

    const size_t tasks = 2 * shiftable.size();
    std::vector<double> shifted(tasks, 0.0);
    auto evalRange = [&](size_t lo, size_t hi) {
        // Scratch state from the shared pool: chunks recycle the
        // same few 2^n blocks call after call.
        Statevector sv(n, 0, statePool().acquire(dim));
        for (size_t t = lo; t < hi; ++t) {
            const size_t i = t / 2;
            const size_t rot = shiftable[i];
            const double sign = (t % 2 == 0) ? 1.0 : -1.0;
            if (snapshot) {
                sv.amplitudes() = prefixes[i];
            } else {
                sv.reset(source->hfMask);
                for (size_t j = 0; j < rot; ++j)
                    sv.applyPauliRotation(base[j], rots[j].string);
            }
            sv.applyPauliRotation(base[rot] + sign * opts.shift,
                                  rots[rot].string);
            for (size_t j = rot + 1; j < rots.size(); ++j)
                sv.applyPauliRotation(base[j], rots[j].string);
            shifted[t] = estimate(sv, t);
        }
        statePool().release(std::move(sv.amplitudes()));
    };
    if (opts.batched)
        parallelFor(0, tasks, evalRange, /*grain=*/1);
    else
        evalRange(0, tasks);

    std::vector<double> diffs(shiftable.size());
    for (size_t i = 0; i < shiftable.size(); ++i)
        diffs[i] = shifted[2 * i] - shifted[2 * i + 1];
    return assemble(diffs);
}

std::vector<double>
ParameterShiftEngine::gradientNoisy(
    const std::vector<double> &params, const NoiseModel &noise) const
{
    TraceSpan span("gradient.noisy");
    span.arg("evaluations", 2 * shiftable.size());
    const std::vector<double> base = baseAngles(params);
    const unsigned n = source->nQubits;

    // Same cache entry as DensityMatrixBackend::applyAnsatz: every
    // shifted "compile" below is an angle tweak on this structure.
    const Circuit c = cachedChainCircuit(unrolled, base, true);
    std::vector<size_t> rzIndex;
    for (size_t g = 0; g < c.gates().size(); ++g)
        if (c.gates()[g].kind == GateKind::RZ)
            rzIndex.push_back(g);
    if (rzIndex.size() != shiftable.size())
        // Chain synthesis emits exactly one RZ per non-identity
        // rotation; anything else means the invariant moved — use
        // the slow generic replay rather than mis-assign shifts.
        return gradient(
            params,
            [&] {
                return std::make_unique<DensityMatrixBackend>(n,
                                                              noise);
            },
            [&](SimBackend &b, size_t) {
                return b.expectation(ham);
            });

    const auto &gates = c.gates();
    // E+ - E- for rotation j in one sweep: gates and depolarizing
    // channels are linear superoperators L, so
    //   E+ - E- = Tr(H L(RZ(a-2s) rho_j - RZ(a+2s) rho_j))
    // with rho_j the state just before the RZ. One suffix
    // application per rotation instead of two circuit executions.
    auto pairDiff = [&](const DensityMatrix &prefix, size_t i) {
        const size_t gi = rzIndex[i];
        const Gate &rz = gates[gi];
        DensityMatrix delta = prefix;
        {
            DensityMatrix minus = prefix;
            Gate up = rz, down = rz;
            up.angle -= 2.0 * opts.shift;   // phi + s
            down.angle += 2.0 * opts.shift; // phi - s
            delta.applyGate(up);
            minus.applyGate(down);
            auto &dv = delta.vectorized();
            const auto &mv = minus.vectorized();
            for (size_t k = 0; k < dv.size(); ++k)
                dv[k] -= mv[k];
        }
        // The RZ's own 1q channel commutes into the difference
        // (linearity), then the rest of the circuit runs noisy.
        if (noise.singleQubitDepolarizing > 0.0)
            delta.depolarize1(rz.q0, noise.singleQubitDepolarizing);
        for (size_t g = gi + 1; g < gates.size(); ++g)
            delta.applyGateNoisy(gates[g], noise);
        return delta.expectation(ham);
    };

    std::vector<double> diffs(shiftable.size(), 0.0);
    const size_t vecBytes =
        (size_t{1} << (2 * n)) * sizeof(std::complex<double>);
    if (shiftable.size() * vecBytes <= opts.maxPrefixBytes) {
        // Snapshot every pre-RZ state in one forward sweep, then
        // fan the independent suffix sweeps over the pool.
        std::vector<DensityMatrix> prefixes;
        prefixes.reserve(shiftable.size());
        DensityMatrix rho(n);
        size_t si = 0;
        for (size_t g = 0; g < gates.size(); ++g) {
            if (si < rzIndex.size() && g == rzIndex[si]) {
                prefixes.push_back(rho);
                ++si;
            }
            rho.applyGateNoisy(gates[g], noise);
        }
        auto evalRange = [&](size_t lo, size_t hi) {
            for (size_t i = lo; i < hi; ++i)
                diffs[i] = pairDiff(prefixes[i], i);
        };
        if (opts.batched)
            parallelFor(0, shiftable.size(), evalRange, /*grain=*/1);
        else
            evalRange(0, shiftable.size());
    } else {
        // Streaming fallback: one forward state, each pair handled
        // as it is reached. O(1) extra memory, inherently serial.
        DensityMatrix rho(n);
        size_t si = 0;
        for (size_t g = 0; g < gates.size(); ++g) {
            if (si < rzIndex.size() && g == rzIndex[si]) {
                diffs[si] = pairDiff(rho, si);
                ++si;
            }
            rho.applyGateNoisy(gates[g], noise);
        }
    }
    return assemble(diffs);
}

std::vector<double>
ParameterShiftEngine::gradient(const std::vector<double> &params,
                               const BackendFactory &make,
                               const StateEnergyFn &energy) const
{
    TraceSpan span("gradient.batch");
    span.arg("evaluations", 2 * shiftable.size());
    const std::vector<double> base = baseAngles(params);
    const size_t tasks = 2 * shiftable.size();
    std::vector<double> shifted(tasks, 0.0);
    auto evalRange = [&](size_t lo, size_t hi) {
        for (size_t t = lo; t < hi; ++t) {
            const size_t rot = shiftable[t / 2];
            const double sign = (t % 2 == 0) ? 1.0 : -1.0;
            std::vector<double> angles = base;
            angles[rot] += sign * opts.shift;
            std::unique_ptr<SimBackend> backend = make();
            backend->applyAnsatz(unrolled, angles);
            shifted[t] = energy(*backend, t);
        }
    };
    if (opts.batched)
        parallelFor(0, tasks, evalRange, /*grain=*/1);
    else
        evalRange(0, tasks);

    std::vector<double> diffs(shiftable.size());
    for (size_t i = 0; i < shiftable.size(); ++i)
        diffs[i] = shifted[2 * i] - shifted[2 * i + 1];
    return assemble(diffs);
}

std::vector<double>
finiteDifferenceGradient(const Ansatz &ansatz,
                         const std::vector<double> &params,
                         const BackendFactory &make,
                         const StateEnergyFn &energy, double step)
{
    if (params.size() != ansatz.nParams)
        fatal("finiteDifferenceGradient: parameter count mismatch");
    std::vector<double> grad(params.size());
    std::vector<double> x = params;
    for (size_t k = 0; k < params.size(); ++k) {
        const double orig = x[k];
        double e[2];
        for (int s = 0; s < 2; ++s) {
            x[k] = orig + (s == 0 ? step : -step);
            std::unique_ptr<SimBackend> backend = make();
            backend->applyAnsatz(ansatz, x);
            e[s] = energy(*backend, 2 * k + size_t(s));
        }
        x[k] = orig;
        grad[k] = (e[0] - e[1]) / (2.0 * step);
    }
    return grad;
}

} // namespace qcc
