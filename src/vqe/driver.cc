#include "vqe/driver.hh"

#include <cmath>
#include <cstdio>
#include <utility>

#include "common/logging.hh"
#include "vqe/optimizers.hh"

namespace qcc {

namespace {

double
infNorm(const std::vector<double> &v)
{
    double m = 0.0;
    for (double e : v)
        m = std::max(m, std::fabs(e));
    return m;
}

} // namespace

std::string
VqeTrace::json() const
{
    std::string out = "{\n";
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "  \"mode\": \"%s\",\n  \"optimizer\": \"%s\",\n"
                  "  \"seed\": %llu,\n  \"points\": [",
                  mode.c_str(), optimizer.c_str(),
                  (unsigned long long)seed);
    out += buf;
    for (size_t i = 0; i < points.size(); ++i) {
        const VqeTracePoint &p = points[i];
        std::snprintf(buf, sizeof(buf),
                      "%s\n    {\"iter\": %d, \"energy\": %.17g, "
                      "\"variance\": %.17g, \"shots\": %llu, "
                      "\"grad_norm\": %.17g}",
                      i ? "," : "", p.iter, p.energy, p.variance,
                      (unsigned long long)p.shots, p.gradNorm);
        out += buf;
    }
    out += "\n  ]\n}\n";
    return out;
}

VqeDriver::VqeDriver(const PauliSum &h, const Ansatz &a,
                     VqeDriverOptions o,
                     std::unique_ptr<EstimationStrategy> strat)
    : ham(h), ansatz(a), opts(std::move(o)),
      strategy(std::move(strat)),
      shiftEngine(h, ansatz, opts.gradient)
{
    if (ham.numQubits() != ansatz.nQubits)
        fatal("VqeDriver: Hamiltonian/ansatz width mismatch");
    if (!strategy)
        fatal("VqeDriver: null estimation strategy");
    optimizer = opts.optimizer;
    if (!optimizer)
        optimizer = makeVqeOptimizer(opts.method);
    evalBackend = strategy->makeBackend();
    traceData.mode = strategy->name();
    traceData.optimizer = optimizer->name();
    traceData.seed = opts.seed;
}

std::unique_ptr<SimBackend>
VqeDriver::makeBackend() const
{
    return strategy->makeBackend();
}

double
VqeDriver::measureCurrent(SimBackend &backend, uint64_t stream,
                          double *variance_out)
{
    EnergyEstimate est = strategy->measure(backend, stream);
    shotsTotal += est.shots;
    if (variance_out)
        *variance_out = est.variance;
    return est.energy;
}

void
VqeDriver::recordPoint(int iter, double e, double var, double gnorm)
{
    traceData.points.push_back({iter, e, var, shotsTotal, gnorm});
}

double
VqeDriver::energy(const std::vector<double> &params)
{
    evalBackend->applyAnsatz(ansatz, params);
    const uint64_t stream = deriveStream(
        deriveStream(opts.seed, kVqeStreamEnergy), evalCount);
    ++evalCount;
    double var = 0.0;
    const double e = measureCurrent(*evalBackend, stream, &var);
    recordPoint(int(evalCount), e, var, 0.0);
    return e;
}

std::vector<double>
VqeDriver::gradient(const std::vector<double> &params)
{
    // Per-call, per-task streams: independent of both scheduling and
    // batching, so the batched fan-out is bit-identical to serial.
    const uint64_t callStream =
        deriveStream(deriveStream(opts.seed, kVqeStreamGradient),
                     gradCount);
    ++gradCount;
    uint64_t shots = 0;
    std::vector<double> g =
        strategy->gradient(shiftEngine, params, callStream, &shots);
    shotsTotal += shots;
    return g;
}

VqeResult
VqeDriver::runGradientDescent()
{
    std::vector<double> x(ansatz.nParams, 0.0);
    const bool stochastic = strategy->stochastic();

    VqeResult res;
    evalBackend->applyAnsatz(ansatz, x);
    double var = 0.0;
    double e = measureCurrent(
        *evalBackend,
        deriveStream(deriveStream(opts.seed, kVqeStreamEnergy),
                     evalCount++),
        &var);
    int evals = 1;
    double bestE = e;
    std::vector<double> bestX = x;

    int iter = 0;
    for (; iter < opts.maxIter; ++iter) {
        std::vector<double> g = gradient(x);
        const double gnorm = infNorm(g);
        recordPoint(iter, e, var, gnorm);
        if (gnorm < opts.gtol) {
            res.converged = true;
            break;
        }

        double eNew = e;
        std::vector<double> xNew = x;
        if (!stochastic) {
            // Deterministic objective: Armijo backtracking from the
            // configured rate.
            double gg = 0.0;
            for (double v : g)
                gg += v * v;
            double step = opts.learningRate;
            bool accepted = false;
            for (int ls = 0; ls < 30; ++ls) {
                for (size_t j = 0; j < x.size(); ++j)
                    xNew[j] = x[j] - step * g[j];
                evalBackend->applyAnsatz(ansatz, xNew);
                eNew = measureCurrent(*evalBackend, 0, &var);
                ++evals;
                if (eNew <= e - 1e-4 * step * gg) {
                    accepted = true;
                    break;
                }
                step *= 0.5;
            }
            if (!accepted) {
                res.converged = true; // no descent left at this scale
                break;
            }
        } else {
            // Stochastic estimates: decaying open-loop step (the
            // SPSA gain schedule), no line search to fool.
            const double step =
                opts.learningRate / std::pow(iter + 1.0, 0.602);
            for (size_t j = 0; j < x.size(); ++j)
                xNew[j] = x[j] - step * g[j];
            evalBackend->applyAnsatz(ansatz, xNew);
            eNew = measureCurrent(
                *evalBackend,
                deriveStream(deriveStream(opts.seed,
                                          kVqeStreamEnergy),
                             evalCount++),
                &var);
            ++evals;
        }

        const double change = std::fabs(e - eNew);
        x = std::move(xNew);
        e = eNew;
        if (e < bestE) {
            bestE = e;
            bestX = x;
        }
        if (!stochastic &&
            change < opts.ftol * (1.0 + std::fabs(e))) {
            ++iter;
            res.converged = true;
            break;
        }
    }

    res.energy = stochastic ? bestE : e;
    res.params = stochastic ? bestX : x;
    res.iterations = iter;
    res.evals =
        evals + int(gradCount * shiftEngine.numShiftedEvaluations());
    if (stochastic)
        res.converged = true; // ran its budget; noise floor decides
    return res;
}

VqeResult
VqeDriver::run()
{
    VqeResult res = optimizer->minimize(*this);

    if (strategy->stochastic() && opts.finalReadoutFactor > 1) {
        // Shot-frugal reporting: one generous readout at the best
        // parameters instead of tightening every iteration. The
        // strategy scales its own sampling policy, so injected
        // strategies and driver options cannot diverge here.
        evalBackend->applyAnsatz(ansatz, res.params);
        EnergyEstimate fin = strategy->finalReadout(
            *evalBackend, deriveStream(opts.seed, kVqeStreamReadout),
            opts.finalReadoutFactor);
        shotsTotal += fin.shots;
        res.energy = fin.energy;
        recordPoint(res.iterations, fin.energy, fin.variance, 0.0);
    }
    return res;
}

std::string
VqeDriver::writeTrace(const std::string &name) const
{
    const std::string path = qccJsonPath("TRACE_" + name + ".json");
    if (path.empty())
        return {};
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("VqeDriver::writeTrace: cannot write " + path);
        return {};
    }
    const std::string doc = traceData.json();
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    return path;
}

} // namespace qcc
