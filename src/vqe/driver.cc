#include "vqe/driver.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "common/logging.hh"
#include "common/optimize.hh"

namespace qcc {

namespace {

/** Sub-stream tags so no two stochastic consumers share a stream. */
constexpr uint64_t kStreamEnergy = 1;
constexpr uint64_t kStreamGradient = 2;
constexpr uint64_t kStreamSpsa = 3;
constexpr uint64_t kStreamReadout = 4;

const char *
methodName(VqeDriverOptions::Method m)
{
    switch (m) {
      case VqeDriverOptions::Method::Lbfgs: return "lbfgs";
      case VqeDriverOptions::Method::GradientDescent: return "gd";
      case VqeDriverOptions::Method::Spsa: return "spsa";
      case VqeDriverOptions::Method::NelderMead: return "nelder-mead";
    }
    return "?";
}

double
infNorm(const std::vector<double> &v)
{
    double m = 0.0;
    for (double e : v)
        m = std::max(m, std::fabs(e));
    return m;
}

} // namespace

const char *
evalModeName(EvalMode mode)
{
    switch (mode) {
      case EvalMode::Ideal: return "ideal";
      case EvalMode::Noisy: return "noisy";
      case EvalMode::Sampled: return "sampled";
    }
    return "?";
}

std::string
VqeTrace::json() const
{
    std::string out = "{\n";
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "  \"mode\": \"%s\",\n  \"optimizer\": \"%s\",\n"
                  "  \"seed\": %llu,\n  \"points\": [",
                  mode.c_str(), optimizer.c_str(),
                  (unsigned long long)seed);
    out += buf;
    for (size_t i = 0; i < points.size(); ++i) {
        const VqeTracePoint &p = points[i];
        std::snprintf(buf, sizeof(buf),
                      "%s\n    {\"iter\": %d, \"energy\": %.17g, "
                      "\"variance\": %.17g, \"shots\": %llu, "
                      "\"grad_norm\": %.17g}",
                      i ? "," : "", p.iter, p.energy, p.variance,
                      (unsigned long long)p.shots, p.gradNorm);
        out += buf;
    }
    out += "\n  ]\n}\n";
    return out;
}

VqeDriver::VqeDriver(const PauliSum &h, const Ansatz &a,
                     VqeDriverOptions o)
    : ham(h), ansatz(a), opts(o), shiftEngine(h, ansatz, o.gradient)
{
    if (ham.numQubits() != ansatz.nQubits)
        fatal("VqeDriver: Hamiltonian/ansatz width mismatch");
    if (opts.mode == EvalMode::Sampled) {
        sampler.emplace(ham, opts.sampling);
        perEvalShots = std::accumulate(
            sampler->shotAllocation().begin(),
            sampler->shotAllocation().end(), uint64_t{0});
    } else {
        engine.emplace(ham);
    }
    evalBackend = makeBackend();
    traceData.mode = evalModeName(opts.mode);
    traceData.optimizer = methodName(opts.method);
    traceData.seed = opts.seed;
}

std::unique_ptr<SimBackend>
VqeDriver::makeBackend() const
{
    if (opts.mode == EvalMode::Noisy)
        return std::make_unique<DensityMatrixBackend>(ansatz.nQubits,
                                                      opts.noise);
    return std::make_unique<StatevectorBackend>(ansatz.nQubits);
}

double
VqeDriver::measureCurrent(SimBackend &backend, uint64_t stream,
                          double *variance_out)
{
    if (opts.mode != EvalMode::Sampled) {
        if (variance_out)
            *variance_out = 0.0;
        return engine->energy(backend);
    }
    Rng rng(stream);
    SampledEnergy s = sampler->measure(backend, rng);
    shotsTotal += s.shots;
    if (variance_out)
        *variance_out = s.variance;
    return s.energy;
}

void
VqeDriver::recordPoint(int iter, double e, double var, double gnorm)
{
    traceData.points.push_back({iter, e, var, shotsTotal, gnorm});
}

double
VqeDriver::energy(const std::vector<double> &params)
{
    evalBackend->applyAnsatz(ansatz, params);
    const uint64_t stream = deriveStream(
        deriveStream(opts.seed, kStreamEnergy), evalCount);
    ++evalCount;
    double var = 0.0;
    const double e = measureCurrent(*evalBackend, stream, &var);
    recordPoint(int(evalCount), e, var, 0.0);
    return e;
}

std::vector<double>
VqeDriver::gradient(const std::vector<double> &params)
{
    // Per-call, per-task streams: independent of both scheduling and
    // batching, so the batched fan-out is bit-identical to serial.
    const uint64_t callStream =
        deriveStream(deriveStream(opts.seed, kStreamGradient),
                     gradCount);
    ++gradCount;
    const bool sampled = opts.mode == EvalMode::Sampled;
    std::vector<double> g;
    switch (opts.mode) {
      case EvalMode::Ideal:
          g = shiftEngine.gradientStatevector(
              params, [&](const Statevector &psi, size_t) {
                  return engine->energy(psi);
              });
          break;
      case EvalMode::Noisy:
          g = shiftEngine.gradientNoisy(params, opts.noise);
          break;
      case EvalMode::Sampled:
          g = shiftEngine.gradientStatevector(
              params, [&](const Statevector &psi, size_t task) {
                  Rng rng(deriveStream(callStream, task));
                  return sampler->measure(psi, rng).energy;
              });
          break;
    }
    if (sampled)
        // Every shifted evaluation spends the fixed allocation;
        // accounted here once so the batched tasks touch no shared
        // state.
        shotsTotal +=
            shiftEngine.numShiftedEvaluations() * perEvalShots;
    return g;
}

VqeResult
VqeDriver::runGradientDescent()
{
    std::vector<double> x(ansatz.nParams, 0.0);
    const bool sampled = opts.mode == EvalMode::Sampled;

    VqeResult res;
    evalBackend->applyAnsatz(ansatz, x);
    double var = 0.0;
    double e = measureCurrent(
        *evalBackend,
        deriveStream(deriveStream(opts.seed, kStreamEnergy),
                     evalCount++),
        &var);
    int evals = 1;
    double bestE = e;
    std::vector<double> bestX = x;

    int iter = 0;
    for (; iter < opts.maxIter; ++iter) {
        std::vector<double> g = gradient(x);
        const double gnorm = infNorm(g);
        recordPoint(iter, e, var, gnorm);
        if (gnorm < opts.gtol) {
            res.converged = true;
            break;
        }

        double eNew = e;
        std::vector<double> xNew = x;
        if (!sampled) {
            // Deterministic objective: Armijo backtracking from the
            // configured rate.
            double gg = 0.0;
            for (double v : g)
                gg += v * v;
            double step = opts.learningRate;
            bool accepted = false;
            for (int ls = 0; ls < 30; ++ls) {
                for (size_t j = 0; j < x.size(); ++j)
                    xNew[j] = x[j] - step * g[j];
                evalBackend->applyAnsatz(ansatz, xNew);
                eNew = measureCurrent(*evalBackend, 0, &var);
                ++evals;
                if (eNew <= e - 1e-4 * step * gg) {
                    accepted = true;
                    break;
                }
                step *= 0.5;
            }
            if (!accepted) {
                res.converged = true; // no descent left at this scale
                break;
            }
        } else {
            // Stochastic estimates: decaying open-loop step (the
            // SPSA gain schedule), no line search to fool.
            const double step =
                opts.learningRate / std::pow(iter + 1.0, 0.602);
            for (size_t j = 0; j < x.size(); ++j)
                xNew[j] = x[j] - step * g[j];
            evalBackend->applyAnsatz(ansatz, xNew);
            eNew = measureCurrent(
                *evalBackend,
                deriveStream(deriveStream(opts.seed, kStreamEnergy),
                             evalCount++),
                &var);
            ++evals;
        }

        const double change = std::fabs(e - eNew);
        x = std::move(xNew);
        e = eNew;
        if (e < bestE) {
            bestE = e;
            bestX = x;
        }
        if (!sampled &&
            change < opts.ftol * (1.0 + std::fabs(e))) {
            ++iter;
            res.converged = true;
            break;
        }
    }

    res.energy = sampled ? bestE : e;
    res.params = sampled ? bestX : x;
    res.iterations = iter;
    res.evals =
        evals + int(gradCount * shiftEngine.numShiftedEvaluations());
    if (sampled)
        res.converged = true; // ran its budget; noise floor decides
    return res;
}

VqeResult
VqeDriver::run()
{
    using Method = VqeDriverOptions::Method;
    std::vector<double> x0(ansatz.nParams, 0.0);
    auto objective = [this](const std::vector<double> &x) {
        return energy(x);
    };

    VqeResult res;
    switch (opts.method) {
      case Method::GradientDescent:
          res = runGradientDescent();
          break;
      case Method::Lbfgs: {
          LbfgsOptions lo;
          lo.maxIter = opts.maxIter;
          lo.gtol = opts.gtol;
          lo.ftol = opts.ftol;
          GradientFn grad = [this](const std::vector<double> &x) {
              return gradient(x);
          };
          OptimizeResult opt = lbfgsMinimize(objective, x0, lo, grad);
          res.energy = opt.fun;
          res.params = opt.x;
          res.iterations = opt.iterations;
          res.evals = opt.funEvals +
              int(gradCount * shiftEngine.numShiftedEvaluations());
          res.converged = opt.converged;
          break;
      }
      case Method::Spsa: {
          SpsaOptions so;
          so.maxIter = opts.spsaIter;
          so.seed = deriveStream(opts.seed, kStreamSpsa);
          OptimizeResult opt = spsa(objective, x0, so);
          res.energy = opt.fun;
          res.params = opt.x;
          res.iterations = opt.iterations;
          res.evals = opt.funEvals;
          res.converged = opt.converged;
          break;
      }
      case Method::NelderMead: {
          NelderMeadOptions no;
          no.maxIter =
              opts.maxIter * std::max(1u, ansatz.nParams);
          OptimizeResult opt = nelderMead(objective, x0, no);
          res.energy = opt.fun;
          res.params = opt.x;
          res.iterations = opt.iterations;
          res.evals = opt.funEvals;
          res.converged = opt.converged;
          break;
      }
    }

    if (opts.mode == EvalMode::Sampled &&
        opts.finalReadoutFactor > 1) {
        // Shot-frugal reporting: one generous readout at the best
        // parameters instead of tightening every iteration.
        SamplingOptions big = opts.sampling;
        big.shots *= opts.finalReadoutFactor;
        SamplingEngine readout(ham, big);
        evalBackend->applyAnsatz(ansatz, res.params);
        Rng rng(deriveStream(opts.seed, kStreamReadout));
        SampledEnergy fin = readout.measure(*evalBackend, rng);
        shotsTotal += fin.shots;
        res.energy = fin.energy;
        recordPoint(res.iterations, fin.energy, fin.variance, 0.0);
    }
    return res;
}

std::string
VqeDriver::writeTrace(const std::string &name) const
{
    const char *env = std::getenv("QCC_JSON");
    if (!env)
        return {};
    std::string dir(env);
    if (dir.empty() || dir == "0")
        return {};
    const std::string path =
        (dir == "1" ? std::string() : dir + "/") + "TRACE_" + name +
        ".json";
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("VqeDriver::writeTrace: cannot write " + path);
        return {};
    }
    const std::string doc = traceData.json();
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    return path;
}

} // namespace qcc
