#include "vqe/optimizers.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/optimize.hh"

namespace qcc {

namespace {

ObjectiveFn
objectiveOf(VqeDriver &driver)
{
    return [&driver](const std::vector<double> &x) {
        return driver.energy(x);
    };
}

} // namespace

VqeResult
LbfgsVqeOptimizer::minimize(VqeDriver &driver) const
{
    const VqeDriverOptions &o = driver.options();
    LbfgsOptions lo;
    lo.maxIter = o.maxIter;
    lo.gtol = o.gtol;
    lo.ftol = o.ftol;
    GradientFn grad = [&driver](const std::vector<double> &x) {
        return driver.gradient(x);
    };
    OptimizeResult opt =
        lbfgsMinimize(objectiveOf(driver),
                      std::vector<double>(driver.numParams(), 0.0),
                      lo, grad);
    VqeResult res;
    res.energy = opt.fun;
    res.params = opt.x;
    res.iterations = opt.iterations;
    res.evals = opt.funEvals +
        int(driver.gradientCount() *
            driver.shiftEvaluationsPerGradient());
    res.converged = opt.converged;
    return res;
}

VqeResult
GradientDescentVqeOptimizer::minimize(VqeDriver &driver) const
{
    // The descent loop lives on the driver (friend access): it
    // interleaves its own trace records and stream draws with the
    // line search, which no public evaluation hook reproduces.
    return driver.runGradientDescent();
}

VqeResult
SpsaVqeOptimizer::minimize(VqeDriver &driver) const
{
    const VqeDriverOptions &o = driver.options();
    SpsaOptions so;
    so.maxIter = o.spsaIter;
    so.seed = deriveStream(o.seed, kVqeStreamSpsa);
    OptimizeResult opt =
        spsa(objectiveOf(driver),
             std::vector<double>(driver.numParams(), 0.0), so);
    VqeResult res;
    res.energy = opt.fun;
    res.params = opt.x;
    res.iterations = opt.iterations;
    res.evals = opt.funEvals;
    res.converged = opt.converged;
    return res;
}

VqeResult
NelderMeadVqeOptimizer::minimize(VqeDriver &driver) const
{
    const VqeDriverOptions &o = driver.options();
    NelderMeadOptions no;
    no.maxIter = o.maxIter * std::max(1u, driver.numParams());
    OptimizeResult opt =
        nelderMead(objectiveOf(driver),
                   std::vector<double>(driver.numParams(), 0.0), no);
    VqeResult res;
    res.energy = opt.fun;
    res.params = opt.x;
    res.iterations = opt.iterations;
    res.evals = opt.funEvals;
    res.converged = opt.converged;
    return res;
}

std::unique_ptr<VqeOptimizer>
makeVqeOptimizer(VqeDriverOptions::Method method)
{
    using Method = VqeDriverOptions::Method;
    switch (method) {
      case Method::Lbfgs:
          return std::make_unique<LbfgsVqeOptimizer>();
      case Method::GradientDescent:
          return std::make_unique<GradientDescentVqeOptimizer>();
      case Method::Spsa:
          return std::make_unique<SpsaVqeOptimizer>();
      case Method::NelderMead:
          return std::make_unique<NelderMeadVqeOptimizer>();
    }
    panic("makeVqeOptimizer: unknown method");
    return nullptr;
}

} // namespace qcc
