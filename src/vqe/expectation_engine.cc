#include "vqe/expectation_engine.hh"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/logging.hh"
#include "sim/fusion.hh"
#include "sim/kernels.hh"

namespace qcc {

ExpectationEngine::ExpectationEngine(const PauliSum &h,
                                     const GroupingFn &grouping)
    : ham(h), nQubits(h.numQubits())
{
    if (h.maxImagCoeff() > 1e-9)
        warn("ExpectationEngine: dropping imaginary coefficient "
             "parts (Hamiltonian should be Hermitian)");

    // All diagonal terms (identity included) share one direct sweep:
    // they commute qubit-wise with each other and need no rotation.
    GroupPlan diag;
    PauliSum offDiag(nQubits);
    for (const auto &t : h.terms()) {
        if (t.string.xMask() == 0) {
            diag.weights.push_back(t.coeff.real());
            diag.zMasks.push_back(t.string.zMask());
        } else {
            offDiag.add(t.coeff, t.string);
        }
    }
    if (!diag.weights.empty())
        plans.push_back(std::move(diag));

    const std::vector<MeasurementGroup> groups =
        grouping ? grouping(offDiag) : groupQubitWise(offDiag);
    for (const auto &group : groups) {
        GroupPlan plan;
        plan.rotations = basisChangeOps(group.basis);
        // A rotated family sweep costs one state copy plus one
        // apply1q pass per rotated qubit before it starts paying
        // off; families too small to amortize that are cheaper
        // through the pair-compacted per-term kernel.
        const bool sweep = group.termIndices.size() >=
                           2 * (plan.rotations.size() + 2);
        for (size_t idx : group.termIndices) {
            const PauliTerm &t = offDiag.terms()[idx];
            if (sweep) {
                plan.weights.push_back(t.coeff.real());
                // After the basis rotations every member is Z on
                // exactly its own support.
                plan.zMasks.push_back(t.string.supportMask());
            } else {
                termwise.push_back({t.coeff.real(), t.string.xMask(),
                                    t.string.zMask()});
            }
        }
        if (!plan.weights.empty())
            plans.push_back(std::move(plan));
    }
}

size_t
ExpectationEngine::numGroups() const
{
    return plans.size() + termwise.size();
}

double
ExpectationEngine::energy(const Statevector &psi) const
{
    if (psi.numQubits() != nQubits)
        panic("ExpectationEngine::energy: width mismatch");
    const auto &amp = psi.amplitudes();
    const size_t dim = amp.size();

    // Reused rotated-state buffer: thread-local so concurrent
    // gradient tasks can evaluate through one shared engine, still
    // no O(2^n) allocation per steady-state call on any thread.
    static thread_local std::vector<cplx> scratch;

    double e = 0.0;
    for (const auto &plan : plans) {
        if (!plan.rotations.empty() && fusionEnabled()) {
            // Cache-blocked family sweep: rotate and accumulate one
            // hot block at a time instead of copying the whole state
            // (sim/fusion.hh).
            std::vector<std::pair<unsigned, std::array<cplx, 4>>>
                rots;
            rots.reserve(plan.rotations.size());
            for (const auto &[q, op] : plan.rotations) {
                std::array<cplx, 4> u;
                basisChangeMatrix(op, u.data());
                rots.emplace_back(q, u);
            }
            e += rotatedGroupExpectation(
                amp.data(), dim, rots, plan.weights.data(),
                plan.zMasks.data(), plan.zMasks.size());
            continue;
        }
        const cplx *state = amp.data();
        if (!plan.rotations.empty()) {
            // Rotate a scratch copy into the family's shared
            // eigenbasis (buffer reused across calls and groups).
            scratch.resize(dim);
            std::copy(amp.begin(), amp.end(), scratch.begin());
            for (const auto &[q, op] : plan.rotations) {
                kern::cplx u[4];
                basisChangeMatrix(op, u);
                kern::apply1q(scratch.data(), dim, q, u);
            }
            state = scratch.data();
        }
        e += kern::diagonalGroupExpectation(
            state, dim, plan.weights.data(), plan.zMasks.data(),
            plan.zMasks.size());
    }
    for (const auto &t : termwise)
        e += t.weight * kern::expectation(amp.data(), dim, t.x, t.z);
    return e;
}

double
ExpectationEngine::energy(const SimBackend &backend) const
{
    if (const Statevector *sv = backend.statevector())
        return energy(*sv);
    return backend.expectation(ham);
}

} // namespace qcc
