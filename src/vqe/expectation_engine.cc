#include "vqe/expectation_engine.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "sim/kernels.hh"

namespace qcc {

namespace {

/** H for X-basis qubits; the fused H * Sdg for Y-basis qubits. Both
 *  conjugate the basis operator to Z exactly (no residual sign). */
void
basisChangeMatrix(PauliOp op, kern::cplx u[4])
{
    const double r = 1.0 / std::sqrt(2.0);
    if (op == PauliOp::X) {
        u[0] = r; u[1] = r; u[2] = r; u[3] = -r;
    } else {
        u[0] = r; u[1] = kern::cplx(0, -r);
        u[2] = r; u[3] = kern::cplx(0, r);
    }
}

} // namespace

ExpectationEngine::ExpectationEngine(const PauliSum &h)
    : ham(h), nQubits(h.numQubits())
{
    if (h.maxImagCoeff() > 1e-9)
        warn("ExpectationEngine: dropping imaginary coefficient "
             "parts (Hamiltonian should be Hermitian)");

    // All diagonal terms (identity included) share one direct sweep:
    // they commute qubit-wise with each other and need no rotation.
    GroupPlan diag;
    PauliSum offDiag(nQubits);
    for (const auto &t : h.terms()) {
        if (t.string.xMask() == 0) {
            diag.weights.push_back(t.coeff.real());
            diag.zMasks.push_back(t.string.zMask());
        } else {
            offDiag.add(t.coeff, t.string);
        }
    }
    if (!diag.weights.empty())
        plans.push_back(std::move(diag));

    for (const auto &group : groupQubitWise(offDiag)) {
        GroupPlan plan;
        plan.rotations = basisChangeOps(group.basis);
        // A rotated family sweep costs one state copy plus one
        // apply1q pass per rotated qubit before it starts paying
        // off; families too small to amortize that are cheaper
        // through the pair-compacted per-term kernel.
        const bool sweep = group.termIndices.size() >=
                           2 * (plan.rotations.size() + 2);
        for (size_t idx : group.termIndices) {
            const PauliTerm &t = offDiag.terms()[idx];
            if (sweep) {
                plan.weights.push_back(t.coeff.real());
                // After the basis rotations every member is Z on
                // exactly its own support.
                plan.zMasks.push_back(t.string.supportMask());
            } else {
                termwise.push_back({t.coeff.real(), t.string.xMask(),
                                    t.string.zMask()});
            }
        }
        if (!plan.weights.empty())
            plans.push_back(std::move(plan));
    }
}

size_t
ExpectationEngine::numGroups() const
{
    return plans.size() + termwise.size();
}

double
ExpectationEngine::energy(const Statevector &psi) const
{
    if (psi.numQubits() != nQubits)
        panic("ExpectationEngine::energy: width mismatch");
    const auto &amp = psi.amplitudes();
    const size_t dim = amp.size();

    double e = 0.0;
    for (const auto &plan : plans) {
        const cplx *state = amp.data();
        if (!plan.rotations.empty()) {
            // Rotate a scratch copy into the family's shared
            // eigenbasis (buffer reused across calls and groups).
            scratch.resize(dim);
            std::copy(amp.begin(), amp.end(), scratch.begin());
            for (const auto &[q, op] : plan.rotations) {
                kern::cplx u[4];
                basisChangeMatrix(op, u);
                kern::apply1q(scratch.data(), dim, q, u);
            }
            state = scratch.data();
        }
        e += kern::diagonalGroupExpectation(
            state, dim, plan.weights.data(), plan.zMasks.data(),
            plan.zMasks.size());
    }
    for (const auto &t : termwise)
        e += t.weight * kern::expectation(amp.data(), dim, t.x, t.z);
    return e;
}

double
ExpectationEngine::energy(const SimBackend &backend) const
{
    if (const Statevector *sv = backend.statevector())
        return energy(*sv);
    return backend.expectation(ham);
}

} // namespace qcc
