/**
 * @file
 * Unified VQE driver: one object owning the simulation backend
 * choice, the energy-estimation engine, the parameter-shift gradient
 * engine, and the classical optimizer. Three evaluation modes behind
 * one enum —
 *
 *  - Ideal:   statevector backend, grouped analytic expectation;
 *  - Noisy:   density-matrix backend with depolarizing channels
 *             (gate circuits through the cached compiler pipeline);
 *  - Sampled: statevector backend read out through the shot-based
 *             SamplingEngine, the NISQ measurement-cost model;
 *
 * and four optimizers (L-BFGS with analytic parameter-shift
 * gradients, plain gradient descent, SPSA, Nelder-Mead). Every run
 * records a machine-readable trace — per-point energy, estimator
 * variance, cumulative shots, gradient norm — that writeTrace()
 * serializes as TRACE_<name>.json under the QCC_JSON convention, so
 * convergence and measurement-cost trajectories can be captured
 * without scraping stdout. All stochastic behavior derives from one
 * seed (default: the QCC_SEED-backed global seed).
 */

#ifndef QCC_VQE_DRIVER_HH
#define QCC_VQE_DRIVER_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ansatz/uccsd.hh"
#include "common/rng.hh"
#include "pauli/pauli_sum.hh"
#include "sim/backend.hh"
#include "sim/noise_model.hh"
#include "sim/sampling.hh"
#include "vqe/expectation_engine.hh"
#include "vqe/gradient.hh"
#include "vqe/vqe.hh"

namespace qcc {

/** How the driver turns parameters into an energy estimate. */
enum class EvalMode { Ideal, Noisy, Sampled };

/** Printable mode name ("ideal", "noisy", "sampled"). */
const char *evalModeName(EvalMode mode);

/** Driver configuration. */
struct VqeDriverOptions
{
    EvalMode mode = EvalMode::Ideal;

    enum class Method
    {
        Lbfgs,           ///< quasi-Newton, analytic shift gradients
        GradientDescent, ///< steepest descent on shift gradients
        Spsa,            ///< two evaluations/iter, noise-robust
        NelderMead,      ///< derivative-free simplex
    };
    Method method = Method::Lbfgs;

    NoiseModel noise;         ///< Noisy mode channels
    SamplingOptions sampling; ///< Sampled mode shot policy
    GradientOptions gradient; ///< shift rule + batching

    int maxIter = 200;        ///< outer-loop iteration budget
    int spsaIter = 250;       ///< SPSA iteration budget
    double learningRate = 0.4; ///< gradient-descent initial step
    double gtol = 1e-5;       ///< gradient infinity-norm tolerance
    double ftol = 1e-9;       ///< relative energy-change tolerance

    /**
     * Master seed for every stochastic component of the run (shot
     * draws, SPSA perturbations). Defaults to the process-wide
     * QCC_SEED-backed seed, so one environment variable reproduces
     * the whole run.
     */
    uint64_t seed = globalSeed();

    /**
     * Sampled mode re-reads the energy at the best parameters with
     * this multiple of the per-evaluation shot budget before
     * reporting, so the returned energy is not limited by one
     * iteration's noise floor.
     */
    unsigned finalReadoutFactor = 8;
};

/** One trace record. */
struct VqeTracePoint
{
    int iter = 0;         ///< optimizer iteration / evaluation index
    double energy = 0.0;
    double variance = 0.0; ///< estimator variance (0 when exact)
    uint64_t shots = 0;    ///< cumulative shots spent so far
    double gradNorm = 0.0; ///< infinity norm (0 when not computed)
};

/** Machine-readable run record. */
struct VqeTrace
{
    std::string mode;      ///< "ideal" | "noisy" | "sampled"
    std::string optimizer;
    uint64_t seed = 0;
    std::vector<VqeTracePoint> points;

    /** Full JSON document (stable field order, %.17g numbers). */
    std::string json() const;
};

/**
 * VQE driver owning backend construction, energy estimation,
 * gradients, and the optimizer loop. Not thread-safe; gradient
 * evaluations internally fan out over the thread pool.
 */
class VqeDriver
{
  public:
    VqeDriver(const PauliSum &h, const Ansatz &ansatz,
              VqeDriverOptions opts = {});

    // Not copyable or movable: shiftEngine points at this driver's
    // own ansatz member, so a relocated driver would leave the
    // engine reading the old object's storage.
    VqeDriver(const VqeDriver &) = delete;
    VqeDriver &operator=(const VqeDriver &) = delete;

    /** Fresh backend for the configured mode. */
    std::unique_ptr<SimBackend> makeBackend() const;

    /**
     * One energy estimate at `params` (recorded in the trace).
     * Sampled mode consumes a per-call rng stream derived from the
     * seed and the evaluation counter.
     */
    double energy(const std::vector<double> &params);

    /** Parameter-shift gradient at `params` (2R evaluations). */
    std::vector<double> gradient(const std::vector<double> &params);

    /** Minimize from a zero start with the configured optimizer. */
    VqeResult run();

    const VqeTrace &trace() const { return traceData; }
    uint64_t shotsSpent() const { return shotsTotal; }
    const VqeDriverOptions &options() const { return opts; }

    /**
     * Write the trace as TRACE_<name>.json under the QCC_JSON
     * convention ("1" = current directory, otherwise a directory).
     * Returns the path written, or empty when QCC_JSON is unset.
     */
    std::string writeTrace(const std::string &name) const;

  private:
    double measureCurrent(SimBackend &backend, uint64_t stream,
                          double *variance_out);
    VqeResult runGradientDescent();
    void recordPoint(int iter, double e, double var, double gnorm);

    PauliSum ham;
    Ansatz ansatz;
    VqeDriverOptions opts;
    std::optional<ExpectationEngine> engine;  ///< Ideal/Noisy
    std::optional<SamplingEngine> sampler;    ///< Sampled
    ParameterShiftEngine shiftEngine;
    std::unique_ptr<SimBackend> evalBackend; ///< reused, serial path
    VqeTrace traceData;
    uint64_t perEvalShots = 0; ///< Sampled: shots per estimate
    uint64_t shotsTotal = 0;
    uint64_t evalCount = 0;
    uint64_t gradCount = 0;
};

} // namespace qcc

#endif // QCC_VQE_DRIVER_HH
