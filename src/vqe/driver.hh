/**
 * @file
 * Unified VQE driver: one object owning the evaluation loop — an
 * EstimationStrategy (state model + readout), a parameter-shift
 * gradient engine, and a classical VqeOptimizer strategy. The
 * strategy seam composes the evaluation modes:
 *
 *  - ideal:         statevector state, grouped analytic expectation;
 *  - noisy:         density-matrix state with depolarizing channels
 *                   (gate circuits through the cached compiler
 *                   pipeline), analytic expectation;
 *  - sampled:       statevector state, shot-based SamplingEngine
 *                   readout (the NISQ measurement-cost model);
 *  - noisy_sampled: density-matrix state + shot readout — the
 *                   end-to-end hardware model, composed from the
 *                   same two parts rather than a new code path;
 *
 * and the optimizers (L-BFGS with analytic parameter-shift
 * gradients, plain gradient descent, SPSA, Nelder-Mead) are
 * registry-backed strategy objects (vqe/optimizers.hh). Every run
 * records a machine-readable trace — per-point energy, estimator
 * variance, cumulative shots, gradient norm — that writeTrace()
 * serializes as TRACE_<name>.json under the QCC_JSON convention, so
 * convergence and measurement-cost trajectories can be captured
 * without scraping stdout. All stochastic behavior derives from one
 * seed (default: the QCC_SEED-backed global seed).
 *
 * Construction is strategy-injection only (the legacy EvalMode-enum
 * shim is gone): spec-level code goes through qcc::Experiment
 * (api/experiment.hh) or the sweep layer (sweep/sweep_engine.hh),
 * Hamiltonian-level code builds a strategy with
 * makeEstimationStrategy and hands it to the driver.
 */

#ifndef QCC_VQE_DRIVER_HH
#define QCC_VQE_DRIVER_HH

#include <memory>
#include <string>
#include <vector>

#include "ansatz/uccsd.hh"
#include "common/rng.hh"
#include "pauli/pauli_sum.hh"
#include "sim/backend.hh"
#include "sim/noise_model.hh"
#include "sim/sampling.hh"
#include "vqe/estimation.hh"
#include "vqe/gradient.hh"
#include "vqe/vqe.hh"

namespace qcc {

class VqeOptimizer;

/**
 * Sub-stream tags for the driver's stochastic consumers: no two
 * consumers share a stream, and optimizer strategies (SPSA) derive
 * theirs from the same table.
 */
constexpr uint64_t kVqeStreamEnergy = 1;
constexpr uint64_t kVqeStreamGradient = 2;
constexpr uint64_t kVqeStreamSpsa = 3;
constexpr uint64_t kVqeStreamReadout = 4;

/** Driver configuration. */
struct VqeDriverOptions
{
    enum class Method
    {
        Lbfgs,           ///< quasi-Newton, analytic shift gradients
        GradientDescent, ///< steepest descent on shift gradients
        Spsa,            ///< two evaluations/iter, noise-robust
        NelderMead,      ///< derivative-free simplex
    };
    Method method = Method::Lbfgs;

    /**
     * Optimizer strategy (api OptimizerRegistry or
     * makeVqeOptimizer); when null, one is built from `method`.
     */
    std::shared_ptr<const VqeOptimizer> optimizer;

    NoiseModel noise;         ///< noisy-mode channels
    SamplingOptions sampling; ///< sampled-mode shot policy
    GradientOptions gradient; ///< shift rule + batching

    int maxIter = 200;        ///< outer-loop iteration budget
    int spsaIter = 250;       ///< SPSA iteration budget
    double learningRate = 0.4; ///< gradient-descent initial step
    double gtol = 1e-5;       ///< gradient infinity-norm tolerance
    double ftol = 1e-9;       ///< relative energy-change tolerance

    /**
     * Master seed for every stochastic component of the run (shot
     * draws, SPSA perturbations). Defaults to the process-wide
     * QCC_SEED-backed seed, so one environment variable reproduces
     * the whole run.
     */
    uint64_t seed = globalSeed();

    /**
     * Stochastic modes re-read the energy at the best parameters
     * with this multiple of the per-evaluation shot budget before
     * reporting, so the returned energy is not limited by one
     * iteration's noise floor.
     */
    unsigned finalReadoutFactor = 8;
};

/** One trace record. */
struct VqeTracePoint
{
    int iter = 0;         ///< optimizer iteration / evaluation index
    double energy = 0.0;
    double variance = 0.0; ///< estimator variance (0 when exact)
    uint64_t shots = 0;    ///< cumulative shots spent so far
    double gradNorm = 0.0; ///< infinity norm (0 when not computed)
};

/** Machine-readable run record. */
struct VqeTrace
{
    std::string mode;      ///< estimation-strategy name
    std::string optimizer;
    uint64_t seed = 0;
    std::vector<VqeTracePoint> points;

    /** Full JSON document (stable field order, %.17g numbers). */
    std::string json() const;
};

/**
 * VQE driver owning backend construction, energy estimation,
 * gradients, and the optimizer loop. Not thread-safe; gradient
 * evaluations internally fan out over the thread pool.
 */
class VqeDriver
{
  public:
    /**
     * Strategy-injection constructor: the driver estimates energies
     * through `strategy` and minimizes with opts.optimizer (or the
     * opts.method fallback).
     */
    VqeDriver(const PauliSum &h, const Ansatz &ansatz,
              VqeDriverOptions opts,
              std::unique_ptr<EstimationStrategy> strategy);

    // Not copyable or movable: shiftEngine points at this driver's
    // own ansatz member, so a relocated driver would leave the
    // engine reading the old object's storage.
    VqeDriver(const VqeDriver &) = delete;
    VqeDriver &operator=(const VqeDriver &) = delete;

    /** Fresh backend for the configured strategy's state model. */
    std::unique_ptr<SimBackend> makeBackend() const;

    /**
     * One energy estimate at `params` (recorded in the trace).
     * Stochastic strategies consume a per-call rng stream derived
     * from the seed and the evaluation counter.
     */
    double energy(const std::vector<double> &params);

    /** Parameter-shift gradient at `params` (2R evaluations). */
    std::vector<double> gradient(const std::vector<double> &params);

    /** Minimize from a zero start with the configured optimizer. */
    VqeResult run();

    const VqeTrace &trace() const { return traceData; }
    uint64_t shotsSpent() const { return shotsTotal; }
    const VqeDriverOptions &options() const { return opts; }
    const EstimationStrategy &estimation() const { return *strategy; }

    /** Ansatz parameter count (optimizer start-vector dimension). */
    unsigned numParams() const { return ansatz.nParams; }

    /** Gradient calls so far (optimizer evals accounting). */
    uint64_t gradientCount() const { return gradCount; }

    /** Shifted energy evaluations per gradient (2R). */
    size_t shiftEvaluationsPerGradient() const
    {
        return shiftEngine.numShiftedEvaluations();
    }

    /**
     * Write the trace as TRACE_<name>.json under the QCC_JSON
     * convention ("1" = current directory, otherwise a directory).
     * Returns the path written, or empty when QCC_JSON is unset.
     */
    std::string writeTrace(const std::string &name) const;

  private:
    friend class GradientDescentVqeOptimizer;

    double measureCurrent(SimBackend &backend, uint64_t stream,
                          double *variance_out);
    VqeResult runGradientDescent();
    void recordPoint(int iter, double e, double var, double gnorm);

    PauliSum ham;
    Ansatz ansatz;
    VqeDriverOptions opts;
    std::unique_ptr<EstimationStrategy> strategy;
    std::shared_ptr<const VqeOptimizer> optimizer;
    ParameterShiftEngine shiftEngine;
    std::unique_ptr<SimBackend> evalBackend; ///< reused, serial path
    VqeTrace traceData;
    uint64_t shotsTotal = 0;
    uint64_t evalCount = 0;
    uint64_t gradCount = 0;
};

} // namespace qcc

#endif // QCC_VQE_DRIVER_HH
