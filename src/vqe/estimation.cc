#include "vqe/estimation.hh"

#include <algorithm>
#include <numeric>

#include "common/rng.hh"

namespace qcc {

StateModel
statevectorModel(unsigned n)
{
    StateModel m;
    m.id = "statevector";
    m.pureState = true;
    m.make = [n] { return std::make_unique<StatevectorBackend>(n); };
    return m;
}

StateModel
densityMatrixModel(unsigned n, NoiseModel noise)
{
    StateModel m;
    m.id = "density_matrix";
    m.pureState = false;
    m.noise = noise;
    m.make = [n, noise] {
        return std::make_unique<DensityMatrixBackend>(n, noise);
    };
    return m;
}

// ------------------------------------------------------ analytic

AnalyticEstimation::AnalyticEstimation(const PauliSum &h,
                                       StateModel state_model,
                                       std::string mode_name,
                                       const GroupingFn &grouping)
    : engine(h, grouping), model(std::move(state_model)),
      modeName(std::move(mode_name))
{
}

std::unique_ptr<SimBackend>
AnalyticEstimation::makeBackend() const
{
    return model.make();
}

EnergyEstimate
AnalyticEstimation::measure(SimBackend &backend, uint64_t) const
{
    return {engine.energy(backend), 0.0, 0};
}

std::vector<double>
AnalyticEstimation::gradient(const ParameterShiftEngine &shift,
                             const std::vector<double> &params,
                             uint64_t, uint64_t *shots_out) const
{
    if (shots_out)
        *shots_out = 0;
    if (model.pureState)
        return shift.gradientStatevector(
            params, [this](const Statevector &psi, size_t) {
                return engine.energy(psi);
            });
    // Mixed state: the pair-differenced noisy sweep (one suffix
    // application per rotation through the cached compiled circuit).
    return shift.gradientNoisy(params, model.noise);
}

// ------------------------------------------------------- sampled

SampledEstimation::SampledEstimation(const PauliSum &h,
                                     SamplingOptions sampling,
                                     StateModel state_model,
                                     std::string mode_name)
    : sampler(h, std::move(sampling)), model(std::move(state_model)),
      modeName(std::move(mode_name))
{
    perEstimate = std::accumulate(sampler.shotAllocation().begin(),
                                  sampler.shotAllocation().end(),
                                  uint64_t{0});
}

std::unique_ptr<SimBackend>
SampledEstimation::makeBackend() const
{
    return model.make();
}

EnergyEstimate
SampledEstimation::measure(SimBackend &backend,
                           uint64_t stream) const
{
    Rng rng(stream);
    SampledEnergy s = sampler.measure(backend, rng);
    return {s.energy, s.variance, s.shots};
}

EnergyEstimate
SampledEstimation::finalReadout(SimBackend &backend, uint64_t stream,
                                unsigned factor) const
{
    // Scale this strategy's own sampling policy (same grouping and
    // allocation rule), not whatever the driver options happen to
    // hold — injected strategies stay self-consistent.
    SamplingOptions big = sampler.options();
    big.shots *= std::max(1u, factor);
    SamplingEngine readout(sampler.hamiltonian(), big);
    Rng rng(stream);
    SampledEnergy s = readout.measure(backend, rng);
    return {s.energy, s.variance, s.shots};
}

std::vector<double>
SampledEstimation::gradient(const ParameterShiftEngine &shift,
                            const std::vector<double> &params,
                            uint64_t call_stream,
                            uint64_t *shots_out) const
{
    // Every shifted evaluation spends the fixed allocation;
    // accounted here once so the batched tasks touch no shared
    // state. Per-task streams derive from (call_stream, task), so
    // batched and serial execution replay bit-for-bit.
    if (shots_out)
        *shots_out = shift.numShiftedEvaluations() * perEstimate;
    if (model.pureState)
        return shift.gradientStatevector(
            params, [&](const Statevector &psi, size_t task) {
                Rng rng(deriveStream(call_stream, task));
                return sampler.measure(psi, rng).energy;
            });
    // Mixed state + shot readout: generic per-task backends (each
    // task prepares its shifted state with a full noisy replay).
    return shift.gradient(
        params, model.make, [&](SimBackend &backend, size_t task) {
            Rng rng(deriveStream(call_stream, task));
            return sampler.measure(backend, rng).energy;
        });
}

// ------------------------------------------------------ registry

Registry<EstimationFactory> &
estimationRegistry()
{
    static Registry<EstimationFactory> reg = [] {
        Registry<EstimationFactory> r("evaluation mode");
        r.add("ideal", [](const EstimationConfig &c) {
            return std::make_unique<AnalyticEstimation>(
                *c.hamiltonian,
                statevectorModel(c.hamiltonian->numQubits()), "ideal",
                c.grouping);
        });
        r.add("noisy", [](const EstimationConfig &c) {
            return std::make_unique<AnalyticEstimation>(
                *c.hamiltonian,
                densityMatrixModel(c.hamiltonian->numQubits(),
                                   c.noise),
                "noisy", c.grouping);
        });
        r.add("sampled", [](const EstimationConfig &c) {
            return std::make_unique<SampledEstimation>(
                *c.hamiltonian, c.sampling,
                statevectorModel(c.hamiltonian->numQubits()),
                "sampled");
        });
        // The ROADMAP composition: density-matrix state + shot
        // readout reproduces a real-hardware run end to end.
        r.add("noisy_sampled", [](const EstimationConfig &c) {
            return std::make_unique<SampledEstimation>(
                *c.hamiltonian, c.sampling,
                densityMatrixModel(c.hamiltonian->numQubits(),
                                   c.noise),
                "noisy_sampled");
        });
        return r;
    }();
    return reg;
}

std::unique_ptr<EstimationStrategy>
makeEstimationStrategy(const std::string &mode,
                       const EstimationConfig &config)
{
    return estimationRegistry().get(mode)(config);
}

} // namespace qcc
