/**
 * @file
 * Classical-optimizer strategies for the VQE driver. Each optimizer
 * the legacy VqeDriverOptions::Method enum switched over is now an
 * object: minimize() drives the driver's public energy()/gradient()
 * evaluation interface (every evaluation lands in the driver's trace
 * as before) and returns the VqeResult. The api-layer
 * OptimizerRegistry maps names ("lbfgs", "gd", "spsa",
 * "nelder-mead") onto these factories so an ExperimentSpec can pick
 * an optimizer by string; makeVqeOptimizer covers the legacy enum.
 */

#ifndef QCC_VQE_OPTIMIZERS_HH
#define QCC_VQE_OPTIMIZERS_HH

#include <memory>

#include "vqe/driver.hh"

namespace qcc {

/** One classical outer-loop minimization strategy. */
class VqeOptimizer
{
  public:
    virtual ~VqeOptimizer() = default;

    /** Name recorded in traces ("lbfgs", "gd", ...). */
    virtual const char *name() const = 0;

    /** Minimize the driver's energy from a zero start. */
    virtual VqeResult minimize(VqeDriver &driver) const = 0;
};

/** Quasi-Newton L-BFGS on analytic parameter-shift gradients. */
class LbfgsVqeOptimizer : public VqeOptimizer
{
  public:
    const char *name() const override { return "lbfgs"; }
    VqeResult minimize(VqeDriver &driver) const override;
};

/**
 * Steepest descent on shift gradients: Armijo backtracking on
 * deterministic objectives, a decaying open-loop gain schedule on
 * stochastic ones.
 */
class GradientDescentVqeOptimizer : public VqeOptimizer
{
  public:
    const char *name() const override { return "gd"; }
    VqeResult minimize(VqeDriver &driver) const override;
};

/** Noise-robust SPSA: two evaluations per iteration. */
class SpsaVqeOptimizer : public VqeOptimizer
{
  public:
    const char *name() const override { return "spsa"; }
    VqeResult minimize(VqeDriver &driver) const override;
};

/** Derivative-free Nelder-Mead simplex. */
class NelderMeadVqeOptimizer : public VqeOptimizer
{
  public:
    const char *name() const override { return "nelder-mead"; }
    VqeResult minimize(VqeDriver &driver) const override;
};

/** Strategy object for a legacy Method enum value. */
std::unique_ptr<VqeOptimizer>
makeVqeOptimizer(VqeDriverOptions::Method method);

} // namespace qcc

#endif // QCC_VQE_OPTIMIZERS_HH
