#include "vqe/vqe.hh"

#include <optional>

#include "common/logging.hh"
#include "vqe/expectation_engine.hh"

namespace qcc {

Statevector
prepareAnsatzState(const Ansatz &ansatz,
                   const std::vector<double> &params)
{
    if (params.size() != ansatz.nParams)
        fatal("prepareAnsatzState: parameter count mismatch");
    Statevector sv(ansatz.nQubits, ansatz.hfMask);
    for (const auto &r : ansatz.rotations)
        sv.applyPauliRotation(params[r.param] * r.coeff, r.string);
    return sv;
}

double
ansatzEnergy(SimBackend &backend, const PauliSum &h,
             const Ansatz &ansatz, const std::vector<double> &params)
{
    if (h.numQubits() != ansatz.nQubits)
        fatal("ansatzEnergy: Hamiltonian/ansatz width mismatch");
    // One-shot evaluation: compiling a grouped engine would cost more
    // than it saves; runVqe amortizes one over the whole optimization.
    backend.applyAnsatz(ansatz, params);
    return backend.expectation(h);
}

double
ansatzEnergy(const PauliSum &h, const Ansatz &ansatz,
             const std::vector<double> &params)
{
    StatevectorBackend backend(ansatz.nQubits);
    return ansatzEnergy(backend, h, ansatz, params);
}

double
ansatzEnergyNoisy(const PauliSum &h, const Ansatz &ansatz,
                  const std::vector<double> &params,
                  const NoiseModel &noise)
{
    // DensityMatrixBackend::applyAnsatz synthesizes through the
    // compiler pipeline's cached chain path, so repeated evaluations
    // of the same ansatz (every SPSA step, every bond point of a
    // sweep) reuse the memoized structure and only rebind angles.
    DensityMatrixBackend backend(ansatz.nQubits, noise);
    return ansatzEnergy(backend, h, ansatz, params);
}

namespace {

VqeResult
minimize(const ObjectiveFn &energy, unsigned n_params,
         const VqeOptions &opts)
{
    std::vector<double> x0(n_params, 0.0);
    OptimizeResult opt;

    switch (opts.optimizer) {
      case VqeOptions::Optimizer::Lbfgs: {
          LbfgsOptions lo;
          lo.maxIter = opts.maxIter;
          lo.fdStep = opts.fdStep;
          lo.gtol = opts.gtol;
          lo.ftol = opts.ftol;
          opt = lbfgsMinimize(energy, x0, lo);
          break;
      }
      case VqeOptions::Optimizer::NelderMead: {
          NelderMeadOptions no;
          no.maxIter = opts.maxIter * std::max(1u, n_params);
          opt = nelderMead(energy, x0, no);
          break;
      }
      case VqeOptions::Optimizer::Spsa: {
          SpsaOptions so;
          so.maxIter = opts.spsaIter;
          so.seed = opts.seed;
          opt = spsa(energy, x0, so);
          break;
      }
    }

    VqeResult res;
    res.energy = opt.fun;
    res.params = opt.x;
    res.iterations = opt.iterations;
    res.evals = opt.funEvals;
    res.converged = opt.converged;
    return res;
}

} // namespace

VqeResult
runVqe(SimBackend &backend, const PauliSum &h, const Ansatz &ansatz,
       const VqeOptions &opts)
{
    if (h.numQubits() != ansatz.nQubits)
        fatal("runVqe: Hamiltonian/ansatz width mismatch");
    if (backend.numQubits() != ansatz.nQubits)
        fatal("runVqe: backend/ansatz width mismatch");
    // For pure-state backends, compile the grouped evaluator once and
    // amortize it over the whole optimization; mixed-state backends
    // have no per-family sweep, so their own expectation is used
    // directly. Either way each energy evaluation re-prepares the
    // backend in place (no per-call state allocation).
    std::optional<ExpectationEngine> engine;
    if (backend.statevector())
        engine.emplace(h);
    auto energy = [&](const std::vector<double> &x) {
        backend.applyAnsatz(ansatz, x);
        return engine ? engine->energy(backend)
                      : backend.expectation(h);
    };
    return minimize(energy, ansatz.nParams, opts);
}

VqeResult
runVqe(const PauliSum &h, const Ansatz &ansatz, const VqeOptions &opts)
{
    if (h.numQubits() != ansatz.nQubits)
        fatal("runVqe: Hamiltonian/ansatz width mismatch");
    StatevectorBackend backend(ansatz.nQubits);
    return runVqe(backend, h, ansatz, opts);
}

VqeResult
runVqeNoisy(const PauliSum &h, const Ansatz &ansatz,
            const NoiseModel &noise, const VqeOptions &opts)
{
    if (h.numQubits() != ansatz.nQubits)
        fatal("runVqeNoisy: Hamiltonian/ansatz width mismatch");
    DensityMatrixBackend backend(ansatz.nQubits, noise);
    VqeOptions o = opts;
    if (o.optimizer == VqeOptions::Optimizer::Lbfgs)
        o.optimizer = VqeOptions::Optimizer::Spsa;
    return runVqe(backend, h, ansatz, o);
}

} // namespace qcc
