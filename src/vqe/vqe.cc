#include "vqe/vqe.hh"

#include "common/logging.hh"

namespace qcc {

Statevector
prepareAnsatzState(const Ansatz &ansatz,
                   const std::vector<double> &params)
{
    if (params.size() != ansatz.nParams)
        fatal("prepareAnsatzState: parameter count mismatch");
    Statevector sv(ansatz.nQubits, ansatz.hfMask);
    for (const auto &r : ansatz.rotations)
        sv.applyPauliRotation(params[r.param] * r.coeff, r.string);
    return sv;
}

double
ansatzEnergy(SimBackend &backend, const PauliSum &h,
             const Ansatz &ansatz, const std::vector<double> &params)
{
    if (h.numQubits() != ansatz.nQubits)
        fatal("ansatzEnergy: Hamiltonian/ansatz width mismatch");
    // One-shot evaluation: compiling a grouped engine would cost
    // more than it saves; VqeDriver amortizes one over the whole
    // optimization.
    backend.applyAnsatz(ansatz, params);
    return backend.expectation(h);
}

double
ansatzEnergy(const PauliSum &h, const Ansatz &ansatz,
             const std::vector<double> &params)
{
    StatevectorBackend backend(ansatz.nQubits);
    return ansatzEnergy(backend, h, ansatz, params);
}

double
ansatzEnergyNoisy(const PauliSum &h, const Ansatz &ansatz,
                  const std::vector<double> &params,
                  const NoiseModel &noise)
{
    // DensityMatrixBackend::applyAnsatz synthesizes through the
    // compiler pipeline's cached chain path, so repeated evaluations
    // of the same ansatz (every SPSA step, every bond point of a
    // sweep) reuse the memoized structure and only rebind angles.
    DensityMatrixBackend backend(ansatz.nQubits, noise);
    return ansatzEnergy(backend, h, ansatz, params);
}

} // namespace qcc
