#include "vqe/vqe.hh"

#include "common/logging.hh"
#include "compiler/chain_synthesis.hh"
#include "sim/density_matrix.hh"

namespace qcc {

Statevector
prepareAnsatzState(const Ansatz &ansatz,
                   const std::vector<double> &params)
{
    if (params.size() != ansatz.nParams)
        fatal("prepareAnsatzState: parameter count mismatch");
    Statevector sv(ansatz.nQubits, ansatz.hfMask);
    for (const auto &r : ansatz.rotations)
        sv.applyPauliRotation(params[r.param] * r.coeff, r.string);
    return sv;
}

double
ansatzEnergy(const PauliSum &h, const Ansatz &ansatz,
             const std::vector<double> &params)
{
    return prepareAnsatzState(ansatz, params).expectation(h);
}

double
ansatzEnergyNoisy(const PauliSum &h, const Ansatz &ansatz,
                  const std::vector<double> &params,
                  const NoiseModel &noise)
{
    Circuit c = synthesizeChainCircuit(ansatz, params, true);
    DensityMatrix rho(ansatz.nQubits);
    rho.applyCircuit(c, noise);
    return rho.expectation(h);
}

namespace {

VqeResult
minimize(const ObjectiveFn &energy, unsigned n_params,
         const VqeOptions &opts)
{
    std::vector<double> x0(n_params, 0.0);
    OptimizeResult opt;

    switch (opts.optimizer) {
      case VqeOptions::Optimizer::Lbfgs: {
          LbfgsOptions lo;
          lo.maxIter = opts.maxIter;
          lo.fdStep = opts.fdStep;
          lo.gtol = opts.gtol;
          lo.ftol = opts.ftol;
          opt = lbfgsMinimize(energy, x0, lo);
          break;
      }
      case VqeOptions::Optimizer::NelderMead: {
          NelderMeadOptions no;
          no.maxIter = opts.maxIter * std::max(1u, n_params);
          opt = nelderMead(energy, x0, no);
          break;
      }
      case VqeOptions::Optimizer::Spsa: {
          SpsaOptions so;
          so.maxIter = opts.spsaIter;
          so.seed = opts.seed;
          opt = spsa(energy, x0, so);
          break;
      }
    }

    VqeResult res;
    res.energy = opt.fun;
    res.params = opt.x;
    res.iterations = opt.iterations;
    res.evals = opt.funEvals;
    res.converged = opt.converged;
    return res;
}

} // namespace

VqeResult
runVqe(const PauliSum &h, const Ansatz &ansatz, const VqeOptions &opts)
{
    if (h.numQubits() != ansatz.nQubits)
        fatal("runVqe: Hamiltonian/ansatz width mismatch");
    auto energy = [&](const std::vector<double> &x) {
        return ansatzEnergy(h, ansatz, x);
    };
    return minimize(energy, ansatz.nParams, opts);
}

VqeResult
runVqeNoisy(const PauliSum &h, const Ansatz &ansatz,
            const NoiseModel &noise, const VqeOptions &opts)
{
    if (h.numQubits() != ansatz.nQubits)
        fatal("runVqeNoisy: Hamiltonian/ansatz width mismatch");
    auto energy = [&](const std::vector<double> &x) {
        return ansatzEnergyNoisy(h, ansatz, x, noise);
    };
    VqeOptions o = opts;
    if (o.optimizer == VqeOptions::Optimizer::Lbfgs)
        o.optimizer = VqeOptions::Optimizer::Spsa;
    return minimize(energy, ansatz.nParams, o);
}

} // namespace qcc
