/**
 * @file
 * Grouped Hamiltonian-expectation engine for the VQE inner loop.
 * Construction partitions the Pauli sum into qubit-wise-commuting
 * measurement families (pauli/grouping) and compiles a cost-aware
 * evaluation plan per family:
 *
 *  - every diagonal (Z/I-only) term joins one shared family that is
 *    evaluated in a single probability sweep directly on the state —
 *    no copy, no basis change;
 *  - an off-diagonal family whose member count amortizes its basis
 *    rotations is evaluated by rotating a reused scratch copy into
 *    the family's shared eigenbasis and sweeping once for all
 *    members;
 *  - small families fall back to the pair-compacted per-term
 *    expectation kernel, which is the cheapest option for dense
 *    statevector simulation when a family holds only a few terms.
 *
 * This mirrors the measurement-grouping economics the paper cites
 * (Section VIII-A — fewer settings per energy evaluation) while
 * never losing to the plain termwise sweep. Evaluation reuses a
 * thread-local rotated-state scratch buffer, so steady-state calls
 * perform no O(2^n) allocations and one engine can serve concurrent
 * gradient tasks (energy() is const and thread-safe).
 */

#ifndef QCC_VQE_EXPECTATION_ENGINE_HH
#define QCC_VQE_EXPECTATION_ENGINE_HH

#include <cstdint>
#include <vector>

#include "pauli/grouping.hh"
#include "pauli/pauli_sum.hh"
#include "sim/backend.hh"
#include "sim/statevector.hh"

namespace qcc {

/** Precompiled grouped evaluator for one Hamiltonian. */
class ExpectationEngine
{
  public:
    /**
     * Compile the evaluation plan, partitioning off-diagonal terms
     * with `grouping` (null = the greedy first-fit baseline).
     */
    explicit ExpectationEngine(const PauliSum &h,
                               const GroupingFn &grouping = {});

    /** <psi| H |psi> via the compiled per-family plans. */
    double energy(const Statevector &psi) const;

    /**
     * Energy in a backend's current state: the grouped statevector
     * path when available, the backend's own expectation otherwise
     * (a density matrix has no per-family pure-state sweep).
     */
    double energy(const SimBackend &backend) const;

    /** Evaluation units: swept families plus one per termwise term. */
    size_t numGroups() const;
    /** Families evaluated by a shared (direct or rotated) sweep. */
    size_t numSweptFamilies() const { return plans.size(); }
    size_t numTerms() const { return ham.numTerms(); }
    const PauliSum &hamiltonian() const { return ham; }

  private:
    /** One family evaluated by a single sweep. */
    struct GroupPlan
    {
        /** (qubit, X|Y) rotations mapping the basis to Z-strings
         *  (empty for the diagonal family: sweep psi directly). */
        std::vector<std::pair<unsigned, PauliOp>> rotations;
        std::vector<double> weights;  ///< real term coefficients
        std::vector<uint64_t> zMasks; ///< post-rotation Z supports
    };

    /** A term cheaper to evaluate with the per-term pair kernel. */
    struct TermPlan
    {
        double weight;
        uint64_t x, z;
    };

    PauliSum ham;
    unsigned nQubits;
    std::vector<GroupPlan> plans;
    std::vector<TermPlan> termwise;
};

} // namespace qcc

#endif // QCC_VQE_EXPECTATION_ENGINE_HH
