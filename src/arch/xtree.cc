#include "arch/xtree.hh"

#include <algorithm>

#include "common/logging.hh"

namespace qcc {

unsigned
XTree::maxLevel() const
{
    unsigned m = 0;
    for (unsigned l : level)
        m = std::max(m, l);
    return m;
}

XTree
makeXTree(unsigned n, unsigned root_degree, unsigned child_degree)
{
    if (n == 0)
        fatal("makeXTree: empty tree");

    XTree t;
    t.graph = CouplingGraph(n);
    t.parent.assign(n, -1);
    t.level.assign(n, 0);
    t.children.assign(n, {});

    unsigned next = 1;
    // BFS fill: nodes adopt children in index order until capacity.
    for (unsigned node = 0; node < n && next < n; ++node) {
        unsigned cap = (node == 0) ? root_degree : child_degree;
        while (t.children[node].size() < cap && next < n) {
            t.graph.addEdge(node, next);
            t.parent[next] = int(node);
            t.level[next] = t.level[node] + 1;
            t.children[node].push_back(next);
            ++next;
        }
    }
    if (next < n)
        panic("makeXTree: could not place all qubits");
    return t;
}

} // namespace qcc
