/**
 * @file
 * Baseline grid architectures. Grid17Q is the 17-qubit planar lattice
 * with 24 couplers used as the hardware baseline in Sections VI-E/F
 * (IBM's 17-qubit device: 9 data qubits on a 3x3 grid plus 8 ancilla
 * qubits, 4 interior with degree 4 and 4 boundary with degree 2).
 * A generic rows x cols grid builder supports ablations.
 */

#ifndef QCC_ARCH_GRID_HH
#define QCC_ARCH_GRID_HH

#include "arch/coupling_graph.hh"

namespace qcc {

/** The 17-qubit, 24-coupler baseline lattice. */
CouplingGraph makeGrid17Q();

/** A rows x cols rectangular grid (rows*cols qubits). */
CouplingGraph makeGrid(unsigned rows, unsigned cols);

} // namespace qcc

#endif // QCC_ARCH_GRID_HH
