/**
 * @file
 * Physical coupling graph of a superconducting processor: qubits as
 * nodes, bus resonators as edges. Provides adjacency, BFS distances,
 * and connectivity checks used by both compilers and the yield model.
 */

#ifndef QCC_ARCH_COUPLING_GRAPH_HH
#define QCC_ARCH_COUPLING_GRAPH_HH

#include <string>
#include <utility>
#include <vector>

namespace qcc {

/** Undirected coupling graph. */
class CouplingGraph
{
  public:
    explicit CouplingGraph(unsigned n = 0) : adjList(n) {}

    unsigned numQubits() const { return unsigned(adjList.size()); }
    size_t numEdges() const { return edgeList.size(); }

    const std::vector<std::pair<unsigned, unsigned>> &
    edges() const
    {
        return edgeList;
    }

    const std::vector<unsigned> &
    neighbors(unsigned q) const
    {
        return adjList[q];
    }

    /** Add an undirected edge (no duplicates allowed). */
    void addEdge(unsigned a, unsigned b);

    /** True if a and b are directly coupled. */
    bool hasEdge(unsigned a, unsigned b) const;

    /** Max degree over all qubits. */
    unsigned maxDegree() const;

    /** All-pairs BFS hop distances. */
    std::vector<std::vector<unsigned>> distanceMatrix() const;

    /** True if every qubit is reachable from qubit 0. */
    bool isConnected() const;

    /** Edge list dump. */
    std::string str() const;

  private:
    std::vector<std::vector<unsigned>> adjList;
    std::vector<std::pair<unsigned, unsigned>> edgeList;
};

} // namespace qcc

#endif // QCC_ARCH_COUPLING_GRAPH_HH
