#include "arch/yield.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"

namespace qcc {

namespace {

/** Pairwise (coupled) collision conditions, types 1-4. */
bool
pairCollision(double fj, double fk, const CollisionModel &m)
{
    const double a = m.anharmonicity;
    const double d = fj - fk;
    if (std::fabs(d) < m.t1)
        return true; // type 1
    if (std::fabs(d - a / 2) < m.t2 || std::fabs(d + a / 2) < m.t2)
        return true; // type 2
    if (std::fabs(d - a) < m.t3 || std::fabs(d + a) < m.t3)
        return true; // type 3
    if (m.enforceStraddle) {
        // Type 4: the CR control is the higher-frequency qubit; the
        // detuning must stay inside the straddling regime (0, |alpha|).
        if (std::fabs(d) >= std::fabs(a))
            return true;
    }
    return false;
}

/** Spectator conditions, types 5-7: target t vs spectator s of c. */
bool
spectatorCollision(double fc, double ft, double fs,
                   const CollisionModel &m)
{
    const double a = m.anharmonicity;
    const double d = ft - fs;
    if (std::fabs(d) < m.t5)
        return true; // type 5
    if (std::fabs(d - a / 2) < m.t6 || std::fabs(d + a / 2) < m.t6)
        return true; // type 6
    if (std::fabs(ft + fs - 2 * fc - a) < m.t7)
        return true; // type 7
    return false;
}

/** All collision checks centered on the edge (a, b). */
bool
edgeCollides(const CouplingGraph &g, const std::vector<double> &f,
             unsigned a, unsigned b, const CollisionModel &m)
{
    if (pairCollision(f[a], f[b], m))
        return true;
    unsigned c = f[a] >= f[b] ? a : b;
    unsigned t = c == a ? b : a;
    for (unsigned s : g.neighbors(c)) {
        if (s == t)
            continue;
        if (spectatorCollision(f[c], f[t], f[s], m))
            return true;
    }
    return false;
}

/** Count design-time collisions involving node q (assigned only). */
int
localCollisions(const CouplingGraph &g, const std::vector<double> &f,
                const std::vector<bool> &assigned, unsigned q,
                const CollisionModel &m)
{
    int count = 0;
    for (unsigned nb : g.neighbors(q)) {
        if (!assigned[nb])
            continue;
        if (pairCollision(f[q], f[nb], m))
            ++count;
        // Spectator conditions around the (q, nb) edge, restricted
        // to assigned qubits; check both control orientations to be
        // conservative at allocation time.
        for (unsigned s : g.neighbors(nb)) {
            if (s == q || !assigned[s])
                continue;
            if (spectatorCollision(f[nb], f[q], f[s], m))
                ++count;
        }
        for (unsigned s : g.neighbors(q)) {
            if (s == nb || !assigned[s])
                continue;
            if (spectatorCollision(f[q], f[nb], f[s], m))
                ++count;
        }
    }
    return count;
}

} // namespace

std::vector<double>
defaultFrequencyPalette()
{
    // Five levels whose pairwise differences (0.06 .. 0.26 GHz) keep
    // a healthy margin from every default collision window (type 1
    // below 17 MHz, type 2 near |alpha|/2 = 165 MHz, type 3 near
    // 330 MHz) while staying inside the CR straddling regime.
    return {5.00, 5.06, 5.12, 5.20, 5.26};
}

std::vector<double>
allocateFrequencies(const CouplingGraph &g,
                    const std::vector<double> &palette,
                    const CollisionModel &model)
{
    const unsigned n = g.numQubits();
    if (palette.empty())
        fatal("allocateFrequencies: empty palette");

    // Degree-descending base order: constrained qubits pick first.
    std::vector<unsigned> base(n);
    std::iota(base.begin(), base.end(), 0u);
    std::stable_sort(base.begin(), base.end(),
                     [&](unsigned a, unsigned b) {
                         return g.neighbors(a).size() >
                                g.neighbors(b).size();
                     });

    std::vector<double> best(n, palette[0]);
    int bestCollisions = 1 << 20;

    // Several deterministic greedy attempts with rotated orders and
    // palette offsets; exact predicates drive the cost.
    const int attempts = int(std::max<size_t>(n, palette.size()) * 4);
    for (int attempt = 0; attempt < attempts; ++attempt) {
        std::vector<unsigned> order = base;
        std::rotate(order.begin(),
                    order.begin() + (attempt % n), order.end());

        std::vector<double> f(n, 0.0);
        std::vector<bool> assigned(n, false);
        for (unsigned q : order) {
            double bestF = palette[0];
            double bestCost = 1e18;
            for (size_t pi = 0; pi < palette.size(); ++pi) {
                size_t idx =
                    (pi + size_t(attempt) / n) % palette.size();
                double cand = palette[idx];
                f[q] = cand;
                assigned[q] = true;
                double cost = 1000.0 *
                    localCollisions(g, f, assigned, q, model);
                // Soft preference: keep neighbors well detuned.
                for (unsigned nb : g.neighbors(q))
                    if (assigned[nb])
                        cost += 0.1 /
                            (0.01 + std::fabs(cand - f[nb]));
                assigned[q] = false;
                if (cost < bestCost) {
                    bestCost = cost;
                    bestF = cand;
                }
            }
            f[q] = bestF;
            assigned[q] = true;
        }

        int collisions = 0;
        for (const auto &[a, b] : g.edges())
            collisions += edgeCollides(g, f, a, b, model) ? 1 : 0;
        if (collisions < bestCollisions) {
            bestCollisions = collisions;
            best = f;
            if (collisions == 0)
                break;
        }
    }

    if (bestCollisions > 0)
        warn("allocateFrequencies: design frequencies retain " +
             std::to_string(bestCollisions) + " collisions");
    return best;
}

bool
hasCollision(const CouplingGraph &g, const std::vector<double> &freq,
             const CollisionModel &model)
{
    if (freq.size() != g.numQubits())
        panic("hasCollision: frequency vector size mismatch");
    for (const auto &[a, b] : g.edges())
        if (edgeCollides(g, freq, a, b, model))
            return true;
    return false;
}

double
simulateYield(const CouplingGraph &g,
              const std::vector<double> &design_freq, double sigma,
              int samples, Rng &rng, const CollisionModel &model)
{
    if (samples <= 0)
        fatal("simulateYield: need a positive sample count");
    std::vector<double> f(design_freq.size());
    int good = 0;
    for (int s = 0; s < samples; ++s) {
        for (size_t q = 0; q < f.size(); ++q)
            f[q] = design_freq[q] + rng.gaussian(0.0, sigma);
        if (!hasCollision(g, f, model))
            ++good;
    }
    return double(good) / double(samples);
}

} // namespace qcc
