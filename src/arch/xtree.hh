/**
 * @file
 * X-Tree processor architecture (Section IV): the coupling graph is a
 * tree rooted at a center qubit of degree up to 4, every other qubit
 * connecting to at most 3 children (degree <= 4 overall), giving the
 * minimal N-1 couplers for N qubits. Construction fills level by
 * level, so XTree5Q/8Q/17Q/26Q from Figure 6 fall out of one builder.
 */

#ifndef QCC_ARCH_XTREE_HH
#define QCC_ARCH_XTREE_HH

#include <vector>

#include "arch/coupling_graph.hh"

namespace qcc {

/** A tree-shaped processor with level/parent annotations. */
struct XTree
{
    CouplingGraph graph;
    unsigned root = 0;
    std::vector<int> parent;       ///< -1 for the root
    std::vector<unsigned> level;   ///< hop distance from the root
    std::vector<std::vector<unsigned>> children;

    /** Deepest level present. */
    unsigned maxLevel() const;
};

/**
 * Build an X-Tree with n qubits. The root takes up to root_degree
 * children; every other node up to child_degree. Qubits are numbered
 * in BFS order (level by level).
 */
XTree makeXTree(unsigned n, unsigned root_degree = 4,
                unsigned child_degree = 3);

} // namespace qcc

#endif // QCC_ARCH_XTREE_HH
