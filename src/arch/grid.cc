#include "arch/grid.hh"

#include "common/logging.hh"

namespace qcc {

CouplingGraph
makeGrid17Q()
{
    // Data qubits 0..8 on a 3x3 lattice (d(i,j) = 3i + j), plus
    // ancillas 9..16: four interior ancillas coupling the four data
    // qubits of each plaquette and four boundary ancillas coupling
    // two edge data qubits each -> 16 + 8 = 24 couplers.
    CouplingGraph g(17);
    auto d = [](unsigned i, unsigned j) { return 3 * i + j; };

    unsigned a = 9;
    for (unsigned i = 0; i < 2; ++i) {
        for (unsigned j = 0; j < 2; ++j) {
            g.addEdge(a, d(i, j));
            g.addEdge(a, d(i, j + 1));
            g.addEdge(a, d(i + 1, j));
            g.addEdge(a, d(i + 1, j + 1));
            ++a;
        }
    }
    g.addEdge(13, d(0, 1));
    g.addEdge(13, d(0, 2));
    g.addEdge(14, d(2, 0));
    g.addEdge(14, d(2, 1));
    g.addEdge(15, d(0, 0));
    g.addEdge(15, d(1, 0));
    g.addEdge(16, d(1, 2));
    g.addEdge(16, d(2, 2));

    if (g.numEdges() != 24 || !g.isConnected())
        panic("makeGrid17Q: construction invariant violated");
    return g;
}

CouplingGraph
makeGrid(unsigned rows, unsigned cols)
{
    if (rows == 0 || cols == 0)
        fatal("makeGrid: empty grid");
    CouplingGraph g(rows * cols);
    for (unsigned r = 0; r < rows; ++r) {
        for (unsigned c = 0; c < cols; ++c) {
            unsigned q = r * cols + c;
            if (c + 1 < cols)
                g.addEdge(q, q + 1);
            if (r + 1 < rows)
                g.addEdge(q, q + cols);
        }
    }
    return g;
}

} // namespace qcc
