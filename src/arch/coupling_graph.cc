#include "arch/coupling_graph.hh"

#include <algorithm>
#include <deque>

#include "common/logging.hh"

namespace qcc {

void
CouplingGraph::addEdge(unsigned a, unsigned b)
{
    if (a >= numQubits() || b >= numQubits())
        panic("CouplingGraph::addEdge: qubit out of range");
    if (a == b)
        panic("CouplingGraph::addEdge: self loop");
    if (hasEdge(a, b))
        panic("CouplingGraph::addEdge: duplicate edge");
    adjList[a].push_back(b);
    adjList[b].push_back(a);
    edgeList.emplace_back(std::min(a, b), std::max(a, b));
}

bool
CouplingGraph::hasEdge(unsigned a, unsigned b) const
{
    if (a >= numQubits() || b >= numQubits())
        return false;
    const auto &nb = adjList[a];
    return std::find(nb.begin(), nb.end(), b) != nb.end();
}

unsigned
CouplingGraph::maxDegree() const
{
    size_t d = 0;
    for (const auto &nb : adjList)
        d = std::max(d, nb.size());
    return unsigned(d);
}

std::vector<std::vector<unsigned>>
CouplingGraph::distanceMatrix() const
{
    const unsigned n = numQubits();
    const unsigned inf = ~0u;
    std::vector<std::vector<unsigned>> dist(
        n, std::vector<unsigned>(n, inf));
    for (unsigned s = 0; s < n; ++s) {
        dist[s][s] = 0;
        std::deque<unsigned> q{s};
        while (!q.empty()) {
            unsigned u = q.front();
            q.pop_front();
            for (unsigned v : adjList[u]) {
                if (dist[s][v] == inf) {
                    dist[s][v] = dist[s][u] + 1;
                    q.push_back(v);
                }
            }
        }
    }
    return dist;
}

bool
CouplingGraph::isConnected() const
{
    if (numQubits() == 0)
        return true;
    std::vector<bool> seen(numQubits(), false);
    std::deque<unsigned> q{0};
    seen[0] = true;
    size_t count = 1;
    while (!q.empty()) {
        unsigned u = q.front();
        q.pop_front();
        for (unsigned v : adjList[u]) {
            if (!seen[v]) {
                seen[v] = true;
                ++count;
                q.push_back(v);
            }
        }
    }
    return count == numQubits();
}

std::string
CouplingGraph::str() const
{
    std::string out = std::to_string(numQubits()) + " qubits, " +
                      std::to_string(numEdges()) + " edges:";
    for (const auto &[a, b] : edgeList)
        out += " (" + std::to_string(a) + "," + std::to_string(b) + ")";
    return out;
}

} // namespace qcc
