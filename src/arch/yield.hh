/**
 * @file
 * Fabrication yield model for fixed-frequency transmon processors
 * (Section VI-E). Each qubit gets a design frequency from a small
 * palette via collision-aware graph coloring; fabrication perturbs
 * every frequency by N(0, sigma) with sigma the "fabrication
 * precision"; a device survives if no coupled pair or
 * control/spectator pair triggers any of the seven frequency-collision
 * conditions of Brink et al. (IEDM'18), following the yield-simulation
 * methodology of Li et al. (ASPLOS'20).
 */

#ifndef QCC_ARCH_YIELD_HH
#define QCC_ARCH_YIELD_HH

#include <vector>

#include "arch/coupling_graph.hh"
#include "common/rng.hh"

namespace qcc {

/** Collision-condition thresholds (GHz). */
struct CollisionModel
{
    double anharmonicity = -0.33; ///< transmon anharmonicity alpha

    double t1 = 0.017; ///< type 1: f_j == f_k
    double t2 = 0.004; ///< type 2: f_j == f_k +- alpha/2
    double t3 = 0.025; ///< type 3: f_j == f_k +- alpha
    double t5 = 0.017; ///< type 5: spectator f_t == f_s

    /**
     * Types 6/7 (spectator two-photon windows around alpha/2 and
     * 2f_c + alpha) are disabled by default (width 0): their windows
     * overlap every palette wide enough to survive fabrication
     * noise, which contradicts the paper's observed yields; set
     * positive widths (e.g. 0.025 / 0.017) for the strict-Brink
     * ablation.
     */
    double t6 = 0.0;
    double t7 = 0.0;

    /**
     * Type 4: the CR detuning must stay inside the straddling regime
     * (0, |alpha|). This is what makes yield monotonically decrease
     * with fabrication spread, as in Figure 11.
     */
    bool enforceStraddle = true;
};

/** Default design-frequency palette (GHz). */
std::vector<double> defaultFrequencyPalette();

/**
 * Calibration between the paper's Figure 11 x-axis ("fabrication
 * precision", 0.2-0.6 GHz) and the per-qubit frequency sigma of this
 * model: sigma = precision * paperPrecisionToSigma. The factor is
 * fixed so that the simulated XTree17Q/Grid17Q yield ratio passes
 * through the paper's ~8x in mid-range (see EXPERIMENTS.md).
 */
constexpr double paperPrecisionToSigma = 0.1;

/**
 * Assign design frequencies by greedy distance-2-aware coloring:
 * each qubit takes the palette entry minimizing collision pressure
 * against already-assigned neighbors and neighbors-of-neighbors.
 */
std::vector<double>
allocateFrequencies(const CouplingGraph &g,
                    const std::vector<double> &palette =
                        defaultFrequencyPalette(),
                    const CollisionModel &model = {});

/** True if the fabricated frequencies trigger any collision. */
bool hasCollision(const CouplingGraph &g,
                  const std::vector<double> &freq,
                  const CollisionModel &model = {});

/**
 * Monte-Carlo yield: the fraction of `samples` devices, fabricated
 * with frequency noise N(0, sigma), that are collision-free.
 */
double simulateYield(const CouplingGraph &g,
                     const std::vector<double> &design_freq,
                     double sigma, int samples, Rng &rng,
                     const CollisionModel &model = {});

} // namespace qcc

#endif // QCC_ARCH_YIELD_HH
