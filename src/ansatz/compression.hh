/**
 * @file
 * Hardware-friendly ansatz construction (Section III-B): keep the top
 * ceil(ratio * K) parameters by importance and order their Pauli
 * string simulation circuits by decreasing importance, which improves
 * qubit locality for the compiler. A random-selection baseline
 * reproduces the paper's "Rand. 50%" configuration.
 */

#ifndef QCC_ANSATZ_COMPRESSION_HH
#define QCC_ANSATZ_COMPRESSION_HH

#include <vector>

#include "ansatz/uccsd.hh"
#include "common/rng.hh"
#include "pauli/pauli_sum.hh"

namespace qcc {

/** A compressed ansatz plus selection bookkeeping. */
struct CompressedAnsatz
{
    Ansatz ansatz;
    /** Original parameter indices kept, in new-parameter order. */
    std::vector<unsigned> keptParams;
    /** Importance of every original parameter. */
    std::vector<double> importance;
};

/**
 * Importance-based compression at the given ratio (0 < ratio <= 1).
 * Kept parameters are emitted in importance-decreasing order.
 */
CompressedAnsatz compressAnsatz(const Ansatz &full, const PauliSum &h,
                                double ratio);

/**
 * Same selection size but uniformly random parameters, original
 * program order (the paper's random baseline).
 */
CompressedAnsatz randomCompress(const Ansatz &full, double ratio,
                                Rng &rng);

/**
 * Rebuild an ansatz containing exactly the given original parameters
 * in the given order (helper shared by both strategies, exposed for
 * ablation studies such as unordered selections).
 */
Ansatz selectParameters(const Ansatz &full,
                        const std::vector<unsigned> &params);

} // namespace qcc

#endif // QCC_ANSATZ_COMPRESSION_HH
