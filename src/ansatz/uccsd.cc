#include "ansatz/uccsd.hh"

#include <cstdio>

#include "common/logging.hh"
#include "ferm/fermion_op.hh"
#include "ferm/hamiltonian.hh"
#include "ferm/jordan_wigner.hh"

namespace qcc {

std::string
Excitation::str() const
{
    char buf[96];
    if (kind == Kind::Single) {
        std::snprintf(buf, sizeof(buf), "single %u->%u", so[0], so[1]);
    } else {
        std::snprintf(buf, sizeof(buf), "double (%u,%u)->(%u,%u)",
                      so[0], so[1], so[2], so[3]);
    }
    return buf;
}

std::vector<PauliString>
Ansatz::strings() const
{
    std::vector<PauliString> out;
    out.reserve(rotations.size());
    for (const auto &r : rotations)
        out.push_back(r.string);
    return out;
}

namespace {

/**
 * Append the rotations of one excitation generator. The Hermitian
 * generator is G = -i (T - T+); exp(theta (T - T+)) = exp(i theta G)
 * and the Pauli terms of G mutually commute, so the rotation list
 * implements the excitation exactly.
 */
void
appendGenerator(Ansatz &a, const FermionOp &t, unsigned param)
{
    FermionOp antiHermitian = t;
    FermionOp dag = t.adjoint();
    dag.scale(-1.0);
    antiHermitian.add(dag);

    PauliSum g = jordanWigner(antiHermitian);
    g.scale(std::complex<double>(0.0, -1.0)); // G = -i (T - T+)
    g.simplify();
    if (g.maxImagCoeff() > 1e-9)
        panic("buildUccsd: generator not Hermitian after JW");

    for (const auto &term : g.terms())
        a.rotations.push_back({param, term.coeff.real(), term.string});
}

} // namespace

Ansatz
buildUccsd(unsigned n_spatial, unsigned n_electrons)
{
    if (n_electrons % 2)
        fatal("buildUccsd: open shell not supported");
    const unsigned nOcc = n_electrons / 2;
    const unsigned nVirt = n_spatial - nOcc;
    const unsigned nso = 2 * n_spatial;

    Ansatz a;
    a.nQubits = nso;
    a.hfMask = hartreeFockMask(n_spatial, n_electrons);

    auto so = [&](unsigned spatial, int spin) {
        return spatial + (spin ? n_spatial : 0);
    };

    unsigned param = 0;

    // Singles: occupied -> virtual within each spin block.
    for (int spin = 0; spin < 2; ++spin) {
        for (unsigned i = 0; i < nOcc; ++i) {
            for (unsigned v = 0; v < nVirt; ++v) {
                unsigned iSo = so(i, spin);
                unsigned aSo = so(nOcc + v, spin);
                FermionOp t(nso);
                t.add(1.0, {{aSo, true}, {iSo, false}});
                appendGenerator(a, t, param);
                a.excitations.push_back({Excitation::Kind::Single,
                                         {iSo, aSo, 0, 0}});
                ++param;
            }
        }
    }

    // Same-spin doubles: (i<j) -> (a<b) within one spin block.
    for (int spin = 0; spin < 2; ++spin) {
        for (unsigned i = 0; i < nOcc; ++i) {
        for (unsigned j = i + 1; j < nOcc; ++j) {
            for (unsigned va = 0; va < nVirt; ++va) {
            for (unsigned vb = va + 1; vb < nVirt; ++vb) {
                unsigned iSo = so(i, spin), jSo = so(j, spin);
                unsigned aSo = so(nOcc + va, spin);
                unsigned bSo = so(nOcc + vb, spin);
                FermionOp t(nso);
                t.add(1.0, {{aSo, true},
                            {bSo, true},
                            {jSo, false},
                            {iSo, false}});
                appendGenerator(a, t, param);
                a.excitations.push_back({Excitation::Kind::Double,
                                         {iSo, jSo, aSo, bSo}});
                ++param;
            }
            }
        }
        }
    }

    // Opposite-spin doubles: (i_alpha, j_beta) -> (a_alpha, b_beta).
    for (unsigned i = 0; i < nOcc; ++i) {
    for (unsigned j = 0; j < nOcc; ++j) {
        for (unsigned va = 0; va < nVirt; ++va) {
        for (unsigned vb = 0; vb < nVirt; ++vb) {
            unsigned iSo = so(i, 0), jSo = so(j, 1);
            unsigned aSo = so(nOcc + va, 0);
            unsigned bSo = so(nOcc + vb, 1);
            FermionOp t(nso);
            t.add(1.0, {{aSo, true},
                        {bSo, true},
                        {jSo, false},
                        {iSo, false}});
            appendGenerator(a, t, param);
            a.excitations.push_back({Excitation::Kind::Double,
                                     {iSo, jSo, aSo, bSo}});
            ++param;
        }
        }
    }
    }

    a.nParams = param;
    return a;
}

} // namespace qcc
