#include "ansatz/importance.hh"

#include <cmath>

#include "common/logging.hh"

namespace qcc {

double
stringImportance(const PauliString &pa, const PauliSum &h)
{
    double score = 0.0;
    for (const auto &term : h.terms()) {
        unsigned d = importanceDecay(pa, term.string);
        score += std::ldexp(std::abs(term.coeff), -int(d));
    }
    return score;
}

std::vector<double>
stringScores(const Ansatz &ansatz, const PauliSum &h)
{
    if (h.numQubits() != ansatz.nQubits)
        panic("stringScores: qubit count mismatch");
    std::vector<double> scores;
    scores.reserve(ansatz.rotations.size());
    for (const auto &r : ansatz.rotations)
        scores.push_back(stringImportance(r.string, h));
    return scores;
}

std::vector<double>
parameterImportance(const Ansatz &ansatz, const PauliSum &h)
{
    std::vector<double> scores = stringScores(ansatz, h);
    std::vector<double> imp(ansatz.nParams, 0.0);
    for (size_t j = 0; j < ansatz.rotations.size(); ++j)
        imp[ansatz.rotations[j].param] += scores[j];
    return imp;
}

} // namespace qcc
