/**
 * @file
 * UCCSD ansatz generation (Section II-C). The ansatz is represented
 * in the paper's Pauli-string IR: an ordered list of parameterized
 * Pauli rotations exp(i theta_k c_j P_j), where each parameter k is a
 * spin-orbital excitation amplitude shared by 2 (singles) or 8
 * (doubles) strings.
 */

#ifndef QCC_ANSATZ_UCCSD_HH
#define QCC_ANSATZ_UCCSD_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "pauli/pauli_sum.hh"

namespace qcc {

/** One parameterized rotation exp(i theta_param * coeff * string). */
struct PauliRotation
{
    unsigned param;     ///< parameter index
    double coeff;       ///< fixed Pauli coefficient c_j
    PauliString string; ///< the Pauli string P_j
};

/** Metadata for one excitation (one parameter). */
struct Excitation
{
    enum class Kind { Single, Double };
    Kind kind;
    /** Spin-orbital indices: {i, a, 0, 0} or {i, j, a, b}. */
    std::array<unsigned, 4> so;

    std::string str() const;
};

/** A Pauli-string-IR ansatz program. */
struct Ansatz
{
    unsigned nQubits = 0;
    unsigned nParams = 0;
    uint64_t hfMask = 0; ///< Hartree-Fock occupation bitmask
    std::vector<PauliRotation> rotations;  ///< program order
    std::vector<Excitation> excitations;   ///< one per parameter

    /** Distinct Pauli strings, program order. */
    std::vector<PauliString> strings() const;

    /** Total Pauli string count (the paper's "# of Pauli"). */
    size_t numStrings() const { return rotations.size(); }
};

/**
 * Build the full UCCSD ansatz for an active space with n_spatial
 * orbitals and n_electrons electrons, block-spin Jordan-Wigner
 * encoding. Parameter count is O(n^4): occ*virt singles per spin plus
 * same-spin and opposite-spin doubles, matching Table I exactly.
 */
Ansatz buildUccsd(unsigned n_spatial, unsigned n_electrons);

} // namespace qcc

#endif // QCC_ANSATZ_UCCSD_HH
