/**
 * @file
 * Parameter importance estimation (Algorithm 1): each ansatz Pauli
 * string Pa is compared against every Hamiltonian string PH; the
 * importance decay d counts qubits where the comparison rules of
 * Section III-A make Pa unlikely to move PH's measurement, and the
 * string score is sum_H 2^-d |w_H|. A parameter's importance is the
 * sum of its strings' scores.
 */

#ifndef QCC_ANSATZ_IMPORTANCE_HH
#define QCC_ANSATZ_IMPORTANCE_HH

#include <vector>

#include "ansatz/uccsd.hh"
#include "pauli/pauli_sum.hh"

namespace qcc {

/** Algorithm 1 score of a single ansatz string. */
double stringImportance(const PauliString &pa, const PauliSum &h);

/** Scores for every rotation in program order. */
std::vector<double> stringScores(const Ansatz &ansatz,
                                 const PauliSum &h);

/** Per-parameter importance (sum over the parameter's strings). */
std::vector<double> parameterImportance(const Ansatz &ansatz,
                                        const PauliSum &h);

} // namespace qcc

#endif // QCC_ANSATZ_IMPORTANCE_HH
