#include "ansatz/compression.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ansatz/importance.hh"
#include "common/logging.hh"

namespace qcc {

Ansatz
selectParameters(const Ansatz &full, const std::vector<unsigned> &params)
{
    Ansatz out;
    out.nQubits = full.nQubits;
    out.hfMask = full.hfMask;
    out.nParams = unsigned(params.size());

    std::vector<int> newIndex(full.nParams, -1);
    for (size_t k = 0; k < params.size(); ++k) {
        if (params[k] >= full.nParams)
            panic("selectParameters: parameter out of range");
        newIndex[params[k]] = int(k);
        out.excitations.push_back(full.excitations[params[k]]);
    }

    // Emit rotations grouped by new parameter order, preserving the
    // relative order of strings within one parameter.
    for (unsigned k = 0; k < params.size(); ++k) {
        for (const auto &r : full.rotations) {
            if (r.param == params[k])
                out.rotations.push_back({k, r.coeff, r.string});
        }
    }
    return out;
}

CompressedAnsatz
compressAnsatz(const Ansatz &full, const PauliSum &h, double ratio)
{
    if (ratio <= 0.0 || ratio > 1.0)
        fatal("compressAnsatz: ratio must be in (0, 1]");

    CompressedAnsatz out;
    out.importance = parameterImportance(full, h);

    const unsigned keep =
        unsigned(std::ceil(ratio * double(full.nParams)));

    std::vector<unsigned> order(full.nParams);
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [&](unsigned a, unsigned b) {
                         return out.importance[a] > out.importance[b];
                     });
    order.resize(std::min<size_t>(keep, order.size()));

    out.keptParams = order;
    out.ansatz = selectParameters(full, order);
    return out;
}

CompressedAnsatz
randomCompress(const Ansatz &full, double ratio, Rng &rng)
{
    if (ratio <= 0.0 || ratio > 1.0)
        fatal("randomCompress: ratio must be in (0, 1]");

    const unsigned keep =
        unsigned(std::ceil(ratio * double(full.nParams)));
    std::vector<size_t> pick = rng.choose(full.nParams, keep);
    std::sort(pick.begin(), pick.end()); // original program order

    CompressedAnsatz out;
    out.keptParams.assign(pick.begin(), pick.end());
    out.ansatz = selectParameters(full, out.keptParams);
    return out;
}

} // namespace qcc
