/**
 * @file
 * Frozen-core / active-space reduction of MO integrals. The paper
 * freezes core electrons and simulates only the outermost electrons
 * (Section VI-A); the per-molecule settings that reproduce Table I's
 * qubit counts live in chem/molecules.hh.
 */

#ifndef QCC_FERM_ACTIVE_SPACE_HH
#define QCC_FERM_ACTIVE_SPACE_HH

#include <vector>

#include "chem/mo_integrals.hh"

namespace qcc {

/** Result of an active-space reduction. */
struct ActiveSpaceResult
{
    /** Reduced integrals; coreEnergy includes nuclear repulsion and
     *  the frozen-core mean-field energy. */
    MoIntegrals active;
    unsigned nActiveElectrons = 0;
    std::vector<size_t> frozenMos;  ///< original MO indices
    std::vector<size_t> activeMos;  ///< original MO indices kept
    std::vector<size_t> removedMos; ///< removed virtual MO indices
};

/**
 * Freeze the lowest n_frozen MOs and, if target_spatial >= 0, shrink
 * the active space to that many orbitals by removing virtual MOs from
 * the top: degenerate pairs are removed together when the remaining
 * budget allows (this drops e.g. the LiH pi orbitals, as the standard
 * chemistry setup does), otherwise the highest non-degenerate virtual
 * goes first.
 *
 * @param mo full-space MO integrals (coreEnergy = nuclear repulsion)
 * @param orbital_energies ascending HF orbital energies
 * @param n_electrons total electron count of the molecule
 */
ActiveSpaceResult
applyActiveSpace(const MoIntegrals &mo,
                 const std::vector<double> &orbital_energies,
                 int n_electrons, unsigned n_frozen,
                 int target_spatial = -1);

} // namespace qcc

#endif // QCC_FERM_ACTIVE_SPACE_HH
