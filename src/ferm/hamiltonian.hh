/**
 * @file
 * Qubit Hamiltonian assembly: MO integrals -> second-quantized
 * spin-orbital Hamiltonian -> Jordan-Wigner Pauli sum. Also provides
 * the Hartree-Fock occupation mask and an end-to-end convenience
 * driver (molecule -> qubit Hamiltonian) used by examples and benches.
 */

#ifndef QCC_FERM_HAMILTONIAN_HH
#define QCC_FERM_HAMILTONIAN_HH

#include <cstdint>

#include "chem/mo_integrals.hh"
#include "chem/molecules.hh"
#include "ferm/active_space.hh"
#include "pauli/pauli_sum.hh"

namespace qcc {

/**
 * Build the qubit Hamiltonian for the given active-space integrals
 * with block-spin Jordan-Wigner encoding: spin orbital p_alpha maps
 * to qubit p, p_beta to qubit p + nOrb.
 *
 *   H = E_core + sum_pq h_pq a+_ps a_qs
 *       + 1/2 sum_pqrs (pq|rs) a+_ps a+_rt a_st a_qs
 */
PauliSum buildQubitHamiltonian(const MoIntegrals &act);

/**
 * Hartree-Fock occupation bitmask for n_electrons in 2*n_spatial
 * block-spin qubits: the n_electrons/2 lowest alpha and beta
 * orbitals occupied.
 */
uint64_t hartreeFockMask(unsigned n_spatial, unsigned n_electrons);

/** Everything the VQE stack needs about one molecular problem. */
struct MolecularProblem
{
    PauliSum hamiltonian;          ///< qubit Hamiltonian
    unsigned nSpatial = 0;         ///< active spatial orbitals
    unsigned nElectrons = 0;       ///< active electrons
    unsigned nQubits = 0;          ///< 2 * nSpatial
    double hartreeFockEnergy = 0;  ///< total RHF energy (Hartree)
    ActiveSpaceResult activeSpace; ///< reduction bookkeeping
};

/**
 * Full pipeline for a catalog molecule at a bond length: geometry ->
 * STO-nG basis -> integrals -> RHF -> MO transform -> active space ->
 * Jordan-Wigner.
 */
MolecularProblem buildMolecularProblem(const BenchmarkMolecule &entry,
                                       double bond_angstrom,
                                       int n_gauss = 3);

} // namespace qcc

#endif // QCC_FERM_HAMILTONIAN_HH
