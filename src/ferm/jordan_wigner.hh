/**
 * @file
 * Jordan-Wigner transform: fermionic ladder operators to Pauli sums.
 * Mode p maps to qubit p with a_p = Z_{p-1}...Z_0 (X_p + i Y_p)/2, so
 * qubit |1> means "orbital occupied". The library uses block-spin
 * ordering (all alpha spin orbitals first, then all beta), matching
 * the ansatz structure whose costs Table I reports.
 */

#ifndef QCC_FERM_JORDAN_WIGNER_HH
#define QCC_FERM_JORDAN_WIGNER_HH

#include "ferm/fermion_op.hh"
#include "pauli/pauli_sum.hh"

namespace qcc {

/** JW image of a single ladder operator (two Pauli terms). */
PauliSum jwLadder(unsigned mode, unsigned n_modes, bool creation);

/** JW image of a full fermionic operator (simplified). */
PauliSum jordanWigner(const FermionOp &op);

} // namespace qcc

#endif // QCC_FERM_JORDAN_WIGNER_HH
