#include "ferm/active_space.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace qcc {

ActiveSpaceResult
applyActiveSpace(const MoIntegrals &mo,
                 const std::vector<double> &orbital_energies,
                 int n_electrons, unsigned n_frozen, int target_spatial)
{
    const size_t m = mo.nOrb;
    if (orbital_energies.size() != m)
        panic("applyActiveSpace: orbital energy count mismatch");
    if (n_electrons % 2)
        fatal("applyActiveSpace: open shell not supported");
    const size_t nOccTotal = size_t(n_electrons / 2);
    if (n_frozen > nOccTotal)
        fatal("applyActiveSpace: freezing unoccupied orbitals");

    ActiveSpaceResult res;
    for (size_t i = 0; i < n_frozen; ++i)
        res.frozenMos.push_back(i);

    std::vector<size_t> active;
    for (size_t i = n_frozen; i < m; ++i)
        active.push_back(i);

    const size_t nOccActive = nOccTotal - n_frozen;

    // Shrink to the target by removing virtual orbitals from the top.
    if (target_spatial >= 0) {
        if (size_t(target_spatial) < nOccActive)
            fatal("applyActiveSpace: target below occupied count");
        auto isDegeneratePartner = [&](size_t idxInActive) {
            const double e = orbital_energies[active[idxInActive]];
            for (size_t j = nOccActive; j < active.size(); ++j) {
                if (j == idxInActive)
                    continue;
                if (std::fabs(orbital_energies[active[j]] - e) < 1e-6)
                    return true;
            }
            return false;
        };
        while (active.size() > size_t(target_spatial)) {
            const size_t excess = active.size() - target_spatial;
            size_t top = active.size() - 1; // highest-energy virtual
            if (excess >= 2) {
                // Prefer removing the highest degenerate pair whole.
                bool removedPair = false;
                for (size_t j = active.size(); j-- > nOccActive + 1;) {
                    double ej = orbital_energies[active[j]];
                    double ei = orbital_energies[active[j - 1]];
                    if (std::fabs(ej - ei) < 1e-6) {
                        res.removedMos.push_back(active[j]);
                        res.removedMos.push_back(active[j - 1]);
                        active.erase(active.begin() + j);
                        active.erase(active.begin() + (j - 1));
                        removedPair = true;
                        break;
                    }
                }
                if (removedPair)
                    continue;
            }
            // Remove the highest virtual that is not half of a
            // degenerate pair, if one exists; otherwise the top.
            size_t choice = top;
            for (size_t j = active.size(); j-- > nOccActive;) {
                if (!isDegeneratePartner(j)) {
                    choice = j;
                    break;
                }
            }
            res.removedMos.push_back(active[choice]);
            active.erase(active.begin() + choice);
        }
    }
    res.activeMos = active;
    res.nActiveElectrons = unsigned(2 * nOccActive);

    // Frozen-core energy and effective one-body integrals:
    //   E_fc   = sum_f 2 h_ff + sum_fg [2(ff|gg) - (fg|gf)]
    //   h'_pq  = h_pq + sum_f [2(pq|ff) - (pf|fq)]
    double eFrozen = 0.0;
    for (size_t f : res.frozenMos) {
        eFrozen += 2.0 * mo.h(f, f);
        for (size_t g : res.frozenMos)
            eFrozen += 2.0 * mo.eriAt(f, f, g, g) -
                mo.eriAt(f, g, g, f);
    }

    const size_t na = active.size();
    res.active.nOrb = na;
    res.active.coreEnergy = mo.coreEnergy + eFrozen;
    res.active.h = Matrix(na, na);
    res.active.eri.assign(na * na * na * na, 0.0);

    for (size_t p = 0; p < na; ++p) {
        for (size_t q = 0; q < na; ++q) {
            double h = mo.h(active[p], active[q]);
            for (size_t f : res.frozenMos)
                h += 2.0 * mo.eriAt(active[p], active[q], f, f) -
                    mo.eriAt(active[p], f, f, active[q]);
            res.active.h(p, q) = h;
        }
    }
    for (size_t p = 0; p < na; ++p)
        for (size_t q = 0; q < na; ++q)
            for (size_t r = 0; r < na; ++r)
                for (size_t s = 0; s < na; ++s)
                    res.active.eriRef(p, q, r, s) = mo.eriAt(
                        active[p], active[q], active[r], active[s]);
    return res;
}

} // namespace qcc
