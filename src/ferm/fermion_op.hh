/**
 * @file
 * Second-quantized fermionic operators: sums of ladder-operator
 * products with complex coefficients. These are the inputs to the
 * Jordan-Wigner transform that produces the Pauli-string IR.
 */

#ifndef QCC_FERM_FERMION_OP_HH
#define QCC_FERM_FERMION_OP_HH

#include <complex>
#include <string>
#include <vector>

namespace qcc {

/** One ladder operator: a_mode or a+_mode. */
struct LadderOp
{
    unsigned mode;
    bool creation;
};

/** One term: coeff * product of ladder operators (left to right). */
struct FermionTerm
{
    std::complex<double> coeff;
    std::vector<LadderOp> ops;
};

/** A sum of fermionic terms over a fixed number of modes. */
class FermionOp
{
  public:
    explicit FermionOp(unsigned n_modes = 0) : nModes(n_modes) {}

    unsigned numModes() const { return nModes; }
    const std::vector<FermionTerm> &terms() const { return termList; }

    /** Append coeff * prod(ops). */
    void add(std::complex<double> coeff, std::vector<LadderOp> ops);

    /** Append all terms of another operator. */
    void add(const FermionOp &other);

    /** Hermitian adjoint: reverse each product, conjugate coeffs. */
    FermionOp adjoint() const;

    /** Multiply all coefficients by s. */
    void scale(std::complex<double> s);

    /** Readable dump, e.g. "(0.5) a+_2 a_0". */
    std::string str() const;

  private:
    unsigned nModes;
    std::vector<FermionTerm> termList;
};

} // namespace qcc

#endif // QCC_FERM_FERMION_OP_HH
