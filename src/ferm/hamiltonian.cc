#include "ferm/hamiltonian.hh"

#include <cmath>

#include "chem/basis.hh"
#include "chem/hartree_fock.hh"
#include "chem/integrals.hh"
#include "common/logging.hh"
#include "ferm/fermion_op.hh"
#include "ferm/jordan_wigner.hh"

namespace qcc {

PauliSum
buildQubitHamiltonian(const MoIntegrals &act)
{
    const unsigned no = unsigned(act.nOrb);
    const unsigned nso = 2 * no;

    FermionOp h(nso);
    // Spin orbital index: p_alpha = p, p_beta = p + no.
    auto so = [&](unsigned spatial, int spin) {
        return spatial + (spin ? no : 0);
    };

    for (unsigned p = 0; p < no; ++p) {
        for (unsigned q = 0; q < no; ++q) {
            const double hpq = act.h(p, q);
            if (std::fabs(hpq) < 1e-12)
                continue;
            for (int s = 0; s < 2; ++s)
                h.add(hpq, {{so(p, s), true}, {so(q, s), false}});
        }
    }

    for (unsigned p = 0; p < no; ++p) {
        for (unsigned q = 0; q < no; ++q) {
            for (unsigned r = 0; r < no; ++r) {
                for (unsigned s = 0; s < no; ++s) {
                    const double g = act.eriAt(p, q, r, s);
                    if (std::fabs(g) < 1e-12)
                        continue;
                    // 1/2 (pq|rs) a+_ps1 a+_rs2 a_ss2 a_qs1
                    for (int s1 = 0; s1 < 2; ++s1) {
                        for (int s2 = 0; s2 < 2; ++s2) {
                            h.add(0.5 * g, {{so(p, s1), true},
                                            {so(r, s2), true},
                                            {so(s, s2), false},
                                            {so(q, s1), false}});
                        }
                    }
                }
            }
        }
    }

    PauliSum qubitH = jordanWigner(h);
    qubitH.add(act.coreEnergy, PauliString(nso));
    qubitH.simplify();

    if (qubitH.maxImagCoeff() > 1e-9)
        panic("buildQubitHamiltonian: non-Hermitian result");
    return qubitH;
}

uint64_t
hartreeFockMask(unsigned n_spatial, unsigned n_electrons)
{
    if (n_electrons % 2)
        fatal("hartreeFockMask: open shell not supported");
    const unsigned nOcc = n_electrons / 2;
    if (nOcc > n_spatial)
        fatal("hartreeFockMask: too many electrons");
    uint64_t mask = 0;
    for (unsigned i = 0; i < nOcc; ++i) {
        mask |= uint64_t{1} << i;              // alpha block
        mask |= uint64_t{1} << (i + n_spatial); // beta block
    }
    return mask;
}

MolecularProblem
buildMolecularProblem(const BenchmarkMolecule &entry,
                      double bond_angstrom, int n_gauss)
{
    Molecule mol = entry.build(bond_angstrom);
    BasisSet basis = BasisSet::stoNg(mol, n_gauss);
    IntegralTables ints = computeIntegrals(basis, mol);
    ScfResult scf = runRhf(ints, mol);

    MoIntegrals mo = transformToMo(ints, scf.coeffs,
                                   mol.nuclearRepulsion());
    ActiveSpaceResult as =
        applyActiveSpace(mo, scf.orbitalEnergies, mol.nElectrons(),
                         entry.nFrozen, entry.targetSpatial);

    MolecularProblem prob;
    prob.hamiltonian = buildQubitHamiltonian(as.active);
    prob.nSpatial = unsigned(as.active.nOrb);
    prob.nElectrons = as.nActiveElectrons;
    prob.nQubits = 2 * prob.nSpatial;
    prob.hartreeFockEnergy = scf.energyTotal;
    prob.activeSpace = std::move(as);
    return prob;
}

} // namespace qcc
