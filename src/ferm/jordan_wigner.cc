#include "ferm/jordan_wigner.hh"

#include "common/logging.hh"

namespace qcc {

PauliSum
jwLadder(unsigned mode, unsigned n_modes, bool creation)
{
    if (mode >= n_modes)
        panic("jwLadder: mode out of range");
    const uint64_t chain = (uint64_t{1} << mode) - 1; // Z on 0..mode-1
    const uint64_t here = uint64_t{1} << mode;

    PauliSum out(n_modes);
    // (X_p +- i Y_p)/2, each with the Z chain below.
    out.add(0.5, PauliString(n_modes, here, chain));
    std::complex<double> yCoeff(0.0, creation ? -0.5 : 0.5);
    out.add(yCoeff, PauliString(n_modes, here, chain | here));
    return out;
}

PauliSum
jordanWigner(const FermionOp &op)
{
    const unsigned n = op.numModes();
    PauliSum total(n);
    for (const auto &t : op.terms()) {
        PauliSum prod(n);
        prod.add(t.coeff, PauliString(n)); // coeff * identity
        for (const auto &lop : t.ops)
            prod = prod.product(jwLadder(lop.mode, n, lop.creation));
        total.add(prod);
    }
    total.simplify();
    return total;
}

} // namespace qcc
