#include "ferm/fermion_op.hh"

#include <algorithm>

#include "common/logging.hh"

namespace qcc {

void
FermionOp::add(std::complex<double> coeff, std::vector<LadderOp> ops)
{
    for (const auto &op : ops)
        if (op.mode >= nModes)
            panic("FermionOp::add: mode out of range");
    termList.push_back({coeff, std::move(ops)});
}

void
FermionOp::add(const FermionOp &other)
{
    for (const auto &t : other.termList)
        termList.push_back(t);
}

FermionOp
FermionOp::adjoint() const
{
    FermionOp out(nModes);
    for (const auto &t : termList) {
        std::vector<LadderOp> rev(t.ops.rbegin(), t.ops.rend());
        for (auto &op : rev)
            op.creation = !op.creation;
        out.termList.push_back({std::conj(t.coeff), std::move(rev)});
    }
    return out;
}

void
FermionOp::scale(std::complex<double> s)
{
    for (auto &t : termList)
        t.coeff *= s;
}

std::string
FermionOp::str() const
{
    std::string out;
    char buf[96];
    for (const auto &t : termList) {
        std::snprintf(buf, sizeof(buf), "(%+.6f%+.6fi)",
                      t.coeff.real(), t.coeff.imag());
        out += buf;
        for (const auto &op : t.ops) {
            std::snprintf(buf, sizeof(buf), " a%s_%u",
                          op.creation ? "+" : "", op.mode);
            out += buf;
        }
        out += '\n';
    }
    return out;
}

} // namespace qcc
