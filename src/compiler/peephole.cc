#include "compiler/peephole.hh"

#include <cmath>
#include <optional>
#include <vector>

#include "common/logging.hh"

namespace qcc {

namespace {

/** True if b is the exact inverse of a (same qubits). */
bool
inversePair(const Gate &a, const Gate &b)
{
    if (a.q0 != b.q0)
        return false;
    if (isTwoQubit(a.kind) != isTwoQubit(b.kind))
        return false;
    if (isTwoQubit(a.kind) && a.q1 != b.q1)
        return false;

    switch (a.kind) {
      case GateKind::X:
      case GateKind::Y:
      case GateKind::Z:
      case GateKind::H:
      case GateKind::CNOT:
      case GateKind::SWAP:
        return a.kind == b.kind;
      case GateKind::S:
        return b.kind == GateKind::Sdg;
      case GateKind::Sdg:
        return b.kind == GateKind::S;
      case GateKind::RX:
      case GateKind::RY:
      case GateKind::RZ:
        return a.kind == b.kind &&
               std::fabs(a.angle + b.angle) < 1e-12;
    }
    return false;
}

/** Rotations on the same axis and qubit merge by angle addition. */
bool
mergeableRotations(const Gate &a, const Gate &b)
{
    return hasAngle(a.kind) && a.kind == b.kind && a.q0 == b.q0;
}

bool
actsOn(const Gate &g, unsigned q)
{
    return g.q0 == q || (isTwoQubit(g.kind) && g.q1 == q);
}

/** Gates on disjoint qubit sets commute. */
bool
disjoint(const Gate &a, const Gate &b)
{
    if (actsOn(b, a.q0))
        return false;
    if (isTwoQubit(a.kind) && actsOn(b, a.q1))
        return false;
    return true;
}

} // namespace

Circuit
cancelGates(const Circuit &c, PeepholeStats *stats, double zero_eps)
{
    PeepholeStats local;
    std::vector<Gate> gates = c.gates();

    bool changed = true;
    while (changed) {
        changed = false;
        ++local.passes;

        std::vector<Gate> out;
        out.reserve(gates.size());
        for (const Gate &g : gates) {
            // Drop zero rotations outright.
            if (hasAngle(g.kind) &&
                std::fabs(g.angle) < zero_eps) {
                ++local.removedGates;
                changed = true;
                continue;
            }

            // Look back past commuting (disjoint) gates for a
            // cancellation or merge partner.
            std::optional<size_t> partner;
            for (size_t i = out.size(); i-- > 0;) {
                const Gate &prev = out[i];
                if (inversePair(prev, g) ||
                    mergeableRotations(prev, g)) {
                    partner = i;
                    break;
                }
                if (!disjoint(prev, g))
                    break; // blocked: shares a qubit, no match
            }

            if (!partner) {
                out.push_back(g);
                continue;
            }

            const Gate &prev = out[*partner];
            if (inversePair(prev, g)) {
                out.erase(out.begin() + long(*partner));
                local.removedGates += 2;
                changed = true;
            } else {
                Gate merged = prev;
                merged.angle += g.angle;
                ++local.mergedRotations;
                changed = true;
                if (std::fabs(merged.angle) < zero_eps) {
                    out.erase(out.begin() + long(*partner));
                    ++local.removedGates;
                } else {
                    out[*partner] = merged;
                }
            }
        }
        gates = std::move(out);
    }

    Circuit result(c.numQubits());
    for (const Gate &g : gates)
        result.push(g);
    if (stats)
        *stats = local;
    return result;
}

} // namespace qcc
