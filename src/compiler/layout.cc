#include "compiler/layout.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"

namespace qcc {

Layout
Layout::identity(unsigned n_logical, unsigned n_physical)
{
    if (n_logical > n_physical)
        fatal("Layout: more logical than physical qubits");
    Layout l;
    l.l2p.resize(n_logical);
    l.p2l.assign(n_physical, -1);
    for (unsigned q = 0; q < n_logical; ++q) {
        l.l2p[q] = q;
        l.p2l[q] = int(q);
    }
    return l;
}

Layout
Layout::random(unsigned n_logical, unsigned n_physical, Rng &rng)
{
    if (n_logical > n_physical)
        fatal("Layout: more logical than physical qubits");
    std::vector<unsigned> perm(n_physical);
    std::iota(perm.begin(), perm.end(), 0u);
    rng.shuffle(perm);

    Layout l;
    l.l2p.resize(n_logical);
    l.p2l.assign(n_physical, -1);
    for (unsigned q = 0; q < n_logical; ++q) {
        l.l2p[q] = perm[q];
        l.p2l[perm[q]] = int(q);
    }
    return l;
}

Layout
Layout::fromLogToPhys(const std::vector<unsigned> &l2p_in,
                      unsigned n_physical)
{
    Layout l;
    l.l2p = l2p_in;
    l.p2l.assign(n_physical, -1);
    for (unsigned q = 0; q < l2p_in.size(); ++q) {
        if (l2p_in[q] >= n_physical)
            panic("Layout::fromLogToPhys: physical index out of range");
        if (l.p2l[l2p_in[q]] != -1)
            panic("Layout::fromLogToPhys: duplicate physical home");
        l.p2l[l2p_in[q]] = int(q);
    }
    return l;
}

void
Layout::swapPhysical(unsigned p1, unsigned p2)
{
    if (p1 >= p2l.size() || p2 >= p2l.size())
        panic("Layout::swapPhysical: physical index out of range");
    int a = p2l[p1], b = p2l[p2];
    p2l[p1] = b;
    p2l[p2] = a;
    if (a != -1)
        l2p[a] = p2;
    if (b != -1)
        l2p[b] = p1;
}

void
Layout::validate() const
{
    for (unsigned q = 0; q < l2p.size(); ++q)
        if (p2l[l2p[q]] != int(q))
            panic("Layout::validate: inconsistent maps");
}

std::vector<std::vector<unsigned>>
coOccurrence(const std::vector<PauliString> &strings, unsigned n)
{
    std::vector<std::vector<unsigned>> mat(
        n, std::vector<unsigned>(n, 0));
    for (const auto &p : strings) {
        auto sup = p.support();
        for (unsigned a : sup)
            for (unsigned b : sup)
                ++mat[a][b];
    }
    return mat;
}

Layout
hierarchicalInitialLayout(const std::vector<PauliString> &strings,
                          const XTree &tree)
{
    if (strings.empty())
        fatal("hierarchicalInitialLayout: no strings");
    const unsigned n = strings.front().numQubits();
    const unsigned np = tree.graph.numQubits();
    if (n > np)
        fatal("hierarchicalInitialLayout: program too wide");

    auto mat = coOccurrence(strings, n);

    // Occurrence = row sums (diagonal counts the qubit itself once
    // per string; off-diagonals its partners).
    std::vector<unsigned long long> occ(n, 0);
    for (unsigned j = 0; j < n; ++j)
        for (unsigned k = 0; k < n; ++k)
            occ[j] += mat[j][k];

    std::vector<unsigned> order(n);
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [&](unsigned a, unsigned b) {
                         return occ[a] > occ[b];
                     });

    std::vector<unsigned> l2p(n, 0);
    std::vector<bool> used(np, false);

    for (unsigned idx = 0; idx < n; ++idx) {
        const unsigned lq = order[idx];
        int best = -1;
        unsigned bestLevel = ~0u;
        long long bestShared = -1;
        for (unsigned p = 0; p < np; ++p) {
            if (used[p])
                continue;
            // A spot is available when its parent is occupied (the
            // root is always available).
            int par = tree.parent[p];
            if (par != -1 && !used[unsigned(par)])
                continue;
            long long shared = 0;
            if (par != -1) {
                // Logical occupant of the parent spot.
                for (unsigned prev = 0; prev < idx; ++prev) {
                    if (l2p[order[prev]] == unsigned(par)) {
                        shared = mat[lq][order[prev]];
                        break;
                    }
                }
            }
            if (tree.level[p] < bestLevel ||
                (tree.level[p] == bestLevel && shared > bestShared)) {
                best = int(p);
                bestLevel = tree.level[p];
                bestShared = shared;
            }
        }
        if (best < 0)
            panic("hierarchicalInitialLayout: no available spot");
        l2p[lq] = unsigned(best);
        used[unsigned(best)] = true;
    }
    return Layout::fromLogToPhys(l2p, np);
}

} // namespace qcc
