#include "compiler/verify.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"
#include "sim/statevector.hh"

namespace qcc {

bool
respectsCoupling(const Circuit &c, const CouplingGraph &g)
{
    for (const auto &gate : c.gates())
        if (isTwoQubit(gate.kind) && !g.hasEdge(gate.q0, gate.q1))
            return false;
    return true;
}

namespace {

/** Move logical basis index bits to their physical homes. */
uint64_t
permuteBits(uint64_t logical_basis, const Layout &layout)
{
    uint64_t phys = 0;
    for (unsigned q = 0; q < layout.numLogical(); ++q)
        if ((logical_basis >> q) & 1)
            phys |= uint64_t{1} << layout.phys(q);
    return phys;
}

/** Embed a logical state into the physical register via a layout. */
Statevector
embed(const Statevector &logical, const Layout &layout,
      unsigned n_physical)
{
    Statevector out(n_physical);
    out.amplitudes().assign(out.dim(), cplx(0, 0));
    for (uint64_t b = 0; b < logical.dim(); ++b)
        out.amplitudes()[permuteBits(b, layout)] =
            logical.amplitudes()[b];
    return out;
}

bool
statesMatch(const Statevector &a, const Statevector &b, double tol)
{
    if (a.dim() != b.dim())
        return false;
    double maxDiff = 0.0;
    for (size_t i = 0; i < a.dim(); ++i)
        maxDiff = std::max(maxDiff,
                           std::abs(a.amplitudes()[i] -
                                    b.amplitudes()[i]));
    return maxDiff <= tol;
}

} // namespace

bool
checkCompiledEquivalence(const Circuit &compiled, const Circuit &logical,
                         const Layout &initial,
                         const Layout &final_layout, int trials,
                         double tol, uint64_t seed)
{
    const unsigned nl = logical.numQubits();
    const unsigned np = compiled.numQubits();
    Rng rng(seed);

    auto checkState = [&](Statevector psi) {
        psi.normalize();
        // Left side: run the compiled circuit from the embedded state.
        Statevector lhs = embed(psi, initial, np);
        lhs.applyCircuit(compiled);
        // Right side: run the logical circuit, embed via final map.
        Statevector logicalOut = psi;
        logicalOut.applyCircuit(logical);
        Statevector rhs = embed(logicalOut, final_layout, np);
        return statesMatch(lhs, rhs, tol);
    };

    if (trials == 0 && nl <= 6) {
        for (uint64_t b = 0; b < (uint64_t{1} << nl); ++b)
            if (!checkState(Statevector(nl, b)))
                return false;
        return true;
    }

    for (int t = 0; t < std::max(trials, 1); ++t) {
        Statevector psi(nl);
        for (auto &amp : psi.amplitudes())
            amp = cplx(rng.gaussian(), rng.gaussian());
        if (!checkState(std::move(psi)))
            return false;
    }
    return true;
}

} // namespace qcc
