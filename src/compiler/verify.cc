#include "compiler/verify.hh"

#include <cmath>
#include <limits>
#include <sstream>

#include "common/logging.hh"
#include "common/rng.hh"
#include "sim/statevector.hh"

namespace qcc {

std::optional<VerifyIssue>
findCouplingViolation(const Circuit &c, const CouplingGraph &g)
{
    const auto &gates = c.gates();
    for (size_t i = 0; i < gates.size(); ++i) {
        const Gate &gate = gates[i];
        if (isTwoQubit(gate.kind) && !g.hasEdge(gate.q0, gate.q1))
            return VerifyIssue{
                "gate " + std::to_string(i) + " (" + gate.str() +
                    ") acts on uncoupled qubits " +
                    std::to_string(gate.q0) + "," +
                    std::to_string(gate.q1),
                long(i)};
    }
    return std::nullopt;
}

bool
respectsCoupling(const Circuit &c, const CouplingGraph &g)
{
    return !findCouplingViolation(c, g).has_value();
}

namespace {

/** Move logical basis index bits to their physical homes. */
uint64_t
permuteBits(uint64_t logical_basis, const Layout &layout)
{
    uint64_t phys = 0;
    for (unsigned q = 0; q < layout.numLogical(); ++q)
        if ((logical_basis >> q) & 1)
            phys |= uint64_t{1} << layout.phys(q);
    return phys;
}

/** Embed a logical state into the physical register via a layout. */
Statevector
embed(const Statevector &logical, const Layout &layout,
      unsigned n_physical)
{
    Statevector out(n_physical);
    out.amplitudes().assign(out.dim(), cplx(0, 0));
    for (uint64_t b = 0; b < logical.dim(); ++b)
        out.amplitudes()[permuteBits(b, layout)] =
            logical.amplitudes()[b];
    return out;
}

/** Largest amplitude difference, or infinity on dimension mismatch. */
double
stateMaxDiff(const Statevector &a, const Statevector &b)
{
    if (a.dim() != b.dim())
        return std::numeric_limits<double>::infinity();
    double maxDiff = 0.0;
    for (size_t i = 0; i < a.dim(); ++i)
        maxDiff = std::max(maxDiff,
                           std::abs(a.amplitudes()[i] -
                                    b.amplitudes()[i]));
    return maxDiff;
}

} // namespace

std::optional<VerifyIssue>
findEquivalenceFailure(const Circuit &compiled, const Circuit &logical,
                       const Layout &initial,
                       const Layout &final_layout, int trials,
                       double tol, uint64_t seed)
{
    const unsigned nl = logical.numQubits();
    const unsigned np = compiled.numQubits();
    Rng rng(seed);

    auto stateDiff = [&](Statevector psi) {
        psi.normalize();
        // Left side: run the compiled circuit from the embedded state.
        Statevector lhs = embed(psi, initial, np);
        lhs.applyCircuit(compiled);
        // Right side: run the logical circuit, embed via final map.
        Statevector logicalOut = psi;
        logicalOut.applyCircuit(logical);
        Statevector rhs = embed(logicalOut, final_layout, np);
        return stateMaxDiff(lhs, rhs);
    };

    auto issue = [&](const std::string &which, double diff) {
        std::ostringstream oss;
        oss << "compiled/logical mismatch on " << which
            << ": max amplitude difference " << diff
            << " exceeds tolerance " << tol;
        return VerifyIssue{oss.str(), -1};
    };

    if (trials == 0 && nl <= 6) {
        for (uint64_t b = 0; b < (uint64_t{1} << nl); ++b) {
            double diff = stateDiff(Statevector(nl, b));
            if (!(diff <= tol))
                return issue("basis state " + std::to_string(b),
                             diff);
        }
        return std::nullopt;
    }

    for (int t = 0; t < std::max(trials, 1); ++t) {
        Statevector psi(nl);
        for (auto &amp : psi.amplitudes())
            amp = cplx(rng.gaussian(), rng.gaussian());
        double diff = stateDiff(std::move(psi));
        if (!(diff <= tol))
            return issue("random trial " + std::to_string(t), diff);
    }
    return std::nullopt;
}

bool
checkCompiledEquivalence(const Circuit &compiled, const Circuit &logical,
                         const Layout &initial,
                         const Layout &final_layout, int trials,
                         double tol, uint64_t seed)
{
    return !findEquivalenceFailure(compiled, logical, initial,
                                   final_layout, trials, tol, seed)
                .has_value();
}

} // namespace qcc
