#include "compiler/chain_synthesis.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/parallel.hh"

namespace qcc {

Circuit
pauliRotationChain(const PauliString &p, double theta,
                   unsigned n_qubits)
{
    if (p.numQubits() > n_qubits)
        panic("pauliRotationChain: string wider than circuit");

    Circuit c(n_qubits);
    const auto sup = p.support();
    if (sup.empty())
        return c; // identity: global phase only

    const double halfPi = M_PI / 2.0;

    // Basis change into the Z eigenbasis on every non-trivial qubit.
    for (unsigned q : sup) {
        PauliOp op = p.op(q);
        if (op == PauliOp::X)
            c.h(q);
        else if (op == PauliOp::Y)
            c.rx(q, halfPi);
    }

    // CNOT chain in ascending qubit order (Figure 2(b) plan).
    for (size_t i = 0; i + 1 < sup.size(); ++i)
        c.cnot(sup[i], sup[i + 1]);

    // exp(i theta Z) = RZ(-2 theta) up to no global phase.
    c.rz(sup.back(), -2.0 * theta);

    for (size_t i = sup.size() - 1; i-- > 0;)
        c.cnot(sup[i], sup[i + 1]);

    for (unsigned q : sup) {
        PauliOp op = p.op(q);
        if (op == PauliOp::X)
            c.h(q);
        else if (op == PauliOp::Y)
            c.rx(q, -halfPi);
    }
    return c;
}

Circuit
synthesizeChainCircuit(const Ansatz &ansatz,
                       const std::vector<double> &params,
                       bool include_hf_prep)
{
    if (params.size() != ansatz.nParams)
        fatal("synthesizeChainCircuit: parameter count mismatch");

    Circuit c(ansatz.nQubits);
    if (include_hf_prep) {
        for (unsigned q = 0; q < ansatz.nQubits; ++q)
            if ((ansatz.hfMask >> q) & 1)
                c.x(q);
    }
    for (const auto &r : ansatz.rotations) {
        double theta = params[r.param] * r.coeff;
        c.append(pauliRotationChain(r.string, theta, ansatz.nQubits));
    }
    return c;
}

Circuit
synthesizeChainCircuitParallel(const Ansatz &ansatz,
                               const std::vector<double> &params,
                               bool include_hf_prep)
{
    if (params.size() != ansatz.nParams)
        fatal("synthesizeChainCircuitParallel: parameter count "
              "mismatch");

    const size_t n = ansatz.rotations.size();
    std::vector<Circuit> parts(n);
    parallelFor(
        0, n,
        [&](size_t lo, size_t hi) {
            for (size_t i = lo; i < hi; ++i) {
                const auto &r = ansatz.rotations[i];
                parts[i] = pauliRotationChain(
                    r.string, params[r.param] * r.coeff,
                    ansatz.nQubits);
            }
        },
        /*grain=*/8);

    Circuit c(ansatz.nQubits);
    if (include_hf_prep) {
        for (unsigned q = 0; q < ansatz.nQubits; ++q)
            if ((ansatz.hfMask >> q) & 1)
                c.x(q);
    }
    for (const Circuit &part : parts)
        c.append(part);
    return c;
}

size_t
chainCnotCount(const Ansatz &ansatz)
{
    size_t n = 0;
    for (const auto &r : ansatz.rotations) {
        unsigned w = r.string.weight();
        if (w >= 2)
            n += 2 * (size_t(w) - 1);
    }
    return n;
}

} // namespace qcc
