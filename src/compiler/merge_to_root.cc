#include "compiler/merge_to_root.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace qcc {

namespace {

/** Basis-change layer for one string at current physical homes. */
void
emitBasisLayer(Circuit &c, const PauliString &p, const Layout &layout,
               bool forward)
{
    const double angle = forward ? M_PI / 2.0 : -M_PI / 2.0;
    for (unsigned q : p.support()) {
        PauliOp op = p.op(q);
        if (op == PauliOp::X)
            c.h(layout.phys(q));
        else if (op == PauliOp::Y)
            c.rx(layout.phys(q), angle);
    }
}

} // namespace

MtrResult
mergeToRootCompile(const Ansatz &ansatz,
                   const std::vector<double> &params, const XTree &tree,
                   const Layout &initial, bool include_hf_prep)
{
    if (params.size() != ansatz.nParams)
        fatal("mergeToRootCompile: parameter count mismatch");
    const unsigned np = tree.graph.numQubits();
    if (ansatz.nQubits > np)
        fatal("mergeToRootCompile: program wider than device");

    MtrResult res;
    res.initialLayout = initial;
    res.circuit = Circuit(np);
    Layout layout = initial;

    // Future-occurrence counts per logical qubit, used to decide
    // which active child of an inactive parent should move up.
    std::vector<size_t> future(ansatz.nQubits, 0);
    for (const auto &r : ansatz.rotations)
        for (unsigned q : r.string.support())
            ++future[q];

    if (include_hf_prep) {
        for (unsigned q = 0; q < ansatz.nQubits; ++q)
            if ((ansatz.hfMask >> q) & 1)
                res.circuit.x(layout.phys(q));
    }

    for (const auto &rot : ansatz.rotations) {
        const auto sup = rot.string.support();
        for (unsigned q : sup)
            --future[q]; // counts now reflect *upcoming* strings only
        if (sup.empty())
            continue;
        const double theta = params[rot.param] * rot.coeff;

        // ---- Routing: lift actives until one merge root remains ----
        std::vector<bool> active(np, false);
        auto rebuildActive = [&]() {
            std::fill(active.begin(), active.end(), false);
            for (unsigned q : sup)
                active[layout.phys(q)] = true;
        };
        rebuildActive();

        while (true) {
            // Tops: active nodes whose parent is not active.
            std::vector<unsigned> tops;
            for (unsigned q : sup) {
                unsigned p = layout.phys(q);
                int par = tree.parent[p];
                if (par == -1 || !active[unsigned(par)])
                    tops.push_back(p);
            }
            if (tops.size() <= 1)
                break;

            // Deepest top group (same inactive parent).
            unsigned bestParent = 0, bestLevel = 0;
            bool found = false;
            for (unsigned v : tops) {
                unsigned lvl = tree.level[v];
                if (!found || lvl > bestLevel ||
                    (lvl == bestLevel &&
                     unsigned(tree.parent[v]) < bestParent)) {
                    found = true;
                    bestLevel = lvl;
                    bestParent = unsigned(tree.parent[v]);
                }
            }

            // Members of the chosen group; pick the mover with the
            // most future appearances (Section V-B heuristic).
            unsigned mover = ~0u;
            size_t moverFuture = 0;
            for (unsigned v : tops) {
                if (unsigned(tree.parent[v]) != bestParent ||
                    tree.level[v] != bestLevel)
                    continue;
                int lq = layout.log(v);
                size_t f = future[unsigned(lq)];
                if (mover == ~0u || f > moverFuture ||
                    (f == moverFuture && v < mover)) {
                    mover = v;
                    moverFuture = f;
                }
            }
            if (mover == ~0u)
                panic("mergeToRootCompile: no mover found");

            res.circuit.swap(mover, bestParent);
            ++res.swapCount;
            layout.swapPhysical(mover, bestParent);
            rebuildActive();
        }

        // ---- Synthesis at the settled placement --------------------
        emitBasisLayer(res.circuit, rot.string, layout, true);

        // Active nodes deepest-first; each CNOTs into its parent.
        std::vector<unsigned> nodes;
        for (unsigned q : sup)
            nodes.push_back(layout.phys(q));
        std::sort(nodes.begin(), nodes.end(),
                  [&](unsigned a, unsigned b) {
                      if (tree.level[a] != tree.level[b])
                          return tree.level[a] > tree.level[b];
                      return a < b;
                  });

        unsigned mergeRoot = nodes.back(); // unique shallowest active
        std::vector<std::pair<unsigned, unsigned>> cnots;
        for (unsigned v : nodes) {
            if (v == mergeRoot)
                continue;
            int par = tree.parent[v];
            if (par == -1 || !active[unsigned(par)])
                panic("mergeToRootCompile: merge tree not closed");
            cnots.emplace_back(v, unsigned(par));
        }
        for (const auto &[c, t] : cnots)
            res.circuit.cnot(c, t);

        res.circuit.rz(mergeRoot, -2.0 * theta);

        for (auto it = cnots.rbegin(); it != cnots.rend(); ++it)
            res.circuit.cnot(it->first, it->second);

        emitBasisLayer(res.circuit, rot.string, layout, false);
    }

    res.finalLayout = layout;
    return res;
}

MtrResult
mergeToRootCompile(const Ansatz &ansatz,
                   const std::vector<double> &params, const XTree &tree,
                   bool include_hf_prep)
{
    Layout init = hierarchicalInitialLayout(ansatz.strings(), tree);
    return mergeToRootCompile(ansatz, params, tree, init,
                              include_hf_prep);
}

} // namespace qcc
