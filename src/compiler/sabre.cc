#include "compiler/sabre.hh"

#include <algorithm>
#include <deque>
#include <set>

#include "common/logging.hh"

namespace qcc {

namespace {

/** Dependency DAG over the gate list (per-qubit program order). */
struct GateDag
{
    std::vector<std::vector<size_t>> successors;
    std::vector<int> indegree;

    explicit GateDag(const Circuit &c)
        : successors(c.size()), indegree(c.size(), 0)
    {
        std::vector<int> last(c.numQubits(), -1);
        for (size_t g = 0; g < c.size(); ++g) {
            const Gate &gate = c.gates()[g];
            auto link = [&](unsigned q) {
                if (last[q] >= 0) {
                    successors[size_t(last[q])].push_back(g);
                    ++indegree[g];
                }
                last[q] = int(g);
            };
            link(gate.q0);
            if (isTwoQubit(gate.kind))
                link(gate.q1);
        }
    }
};

} // namespace

SabreResult
sabreCompile(const Circuit &logical, const CouplingGraph &graph,
             const Layout &initial, const SabreOptions &opts)
{
    const unsigned np = graph.numQubits();
    if (logical.numQubits() > np)
        fatal("sabreCompile: circuit wider than device");

    const auto dist = graph.distanceMatrix();
    GateDag dag(logical);

    SabreResult res;
    res.initialLayout = initial;
    res.circuit = Circuit(np);
    Layout layout = initial;

    const size_t stallLimit =
        opts.stallLimit ? opts.stallLimit : size_t(10) * np;

    // Ready set ordered by gate index for determinism.
    std::set<size_t> ready;
    for (size_t g = 0; g < logical.size(); ++g)
        if (dag.indegree[g] == 0)
            ready.insert(g);

    std::vector<double> decay(np, 1.0);
    size_t swapsSinceProgress = 0;

    auto resolve = [&](size_t g) {
        for (size_t s : dag.successors[g])
            if (--dag.indegree[s] == 0)
                ready.insert(s);
    };

    auto emit = [&](const Gate &g) {
        Gate pg = g;
        pg.q0 = layout.phys(g.q0);
        if (isTwoQubit(g.kind))
            pg.q1 = layout.phys(g.q1);
        res.circuit.push(pg);
    };

    while (!ready.empty()) {
        // Execute everything currently executable.
        bool progress = true;
        while (progress) {
            progress = false;
            for (auto it = ready.begin(); it != ready.end();) {
                const Gate &g = logical.gates()[*it];
                bool runnable = !isTwoQubit(g.kind) ||
                    graph.hasEdge(layout.phys(g.q0),
                                  layout.phys(g.q1));
                if (runnable) {
                    emit(g);
                    size_t idx = *it;
                    it = ready.erase(it);
                    resolve(idx);
                    progress = true;
                    swapsSinceProgress = 0;
                    std::fill(decay.begin(), decay.end(), 1.0);
                } else {
                    ++it;
                }
            }
        }
        if (ready.empty())
            break;

        // Front layer = blocked two-qubit gates.
        std::vector<size_t> front(ready.begin(), ready.end());

        // Extended set: upcoming two-qubit gates in BFS order.
        std::vector<size_t> extended;
        {
            std::deque<size_t> bfs(front.begin(), front.end());
            std::set<size_t> seen(front.begin(), front.end());
            while (!bfs.empty() &&
                   extended.size() < opts.extendedSize) {
                size_t g = bfs.front();
                bfs.pop_front();
                for (size_t s : dag.successors[g]) {
                    if (seen.insert(s).second) {
                        if (isTwoQubit(logical.gates()[s].kind))
                            extended.push_back(s);
                        bfs.push_back(s);
                    }
                }
            }
        }

        auto heuristic = [&](const Layout &l) {
            double hf = 0.0;
            for (size_t g : front) {
                const Gate &gate = logical.gates()[g];
                hf += dist[l.phys(gate.q0)][l.phys(gate.q1)];
            }
            hf /= double(front.size());
            double he = 0.0;
            if (!extended.empty()) {
                for (size_t g : extended) {
                    const Gate &gate = logical.gates()[g];
                    he += dist[l.phys(gate.q0)][l.phys(gate.q1)];
                }
                he *= opts.extendedWeight / double(extended.size());
            }
            return hf + he;
        };

        // Candidate SWAPs: edges touching any front-layer qubit.
        std::set<std::pair<unsigned, unsigned>> candidates;
        for (size_t g : front) {
            const Gate &gate = logical.gates()[g];
            for (unsigned lq : {gate.q0, gate.q1}) {
                unsigned p = layout.phys(lq);
                for (unsigned nb : graph.neighbors(p)) {
                    candidates.insert(
                        {std::min(p, nb), std::max(p, nb)});
                }
            }
        }
        if (candidates.empty())
            panic("sabreCompile: no candidate swaps");

        std::pair<unsigned, unsigned> best = *candidates.begin();
        double bestScore = 1e300;
        for (const auto &cand : candidates) {
            Layout trial = layout;
            trial.swapPhysical(cand.first, cand.second);
            double score = std::max(decay[cand.first],
                                    decay[cand.second]) *
                heuristic(trial);
            if (score < bestScore) {
                bestScore = score;
                best = cand;
            }
        }

        ++swapsSinceProgress;
        if (swapsSinceProgress > stallLimit) {
            // Livelock guard: route the first blocked gate greedily
            // along a shortest path.
            const Gate &gate = logical.gates()[front.front()];
            unsigned p0 = layout.phys(gate.q0);
            unsigned p1 = layout.phys(gate.q1);
            while (dist[p0][p1] > 1) {
                for (unsigned nb : graph.neighbors(p0)) {
                    if (dist[nb][p1] < dist[p0][p1]) {
                        res.circuit.swap(p0, nb);
                        ++res.swapCount;
                        layout.swapPhysical(p0, nb);
                        p0 = nb;
                        break;
                    }
                }
            }
            swapsSinceProgress = 0;
            continue;
        }

        res.circuit.swap(best.first, best.second);
        ++res.swapCount;
        layout.swapPhysical(best.first, best.second);
        decay[best.first] += opts.decayDelta;
        decay[best.second] += opts.decayDelta;
    }

    res.finalLayout = layout;
    return res;
}

Layout
sabreReverseTraversalLayout(const Circuit &logical,
                            const CouplingGraph &graph, int passes,
                            const SabreOptions &opts)
{
    Layout layout =
        Layout::identity(logical.numQubits(), graph.numQubits());

    Circuit reversed(logical.numQubits());
    for (auto it = logical.gates().rbegin();
         it != logical.gates().rend(); ++it)
        reversed.push(*it);

    for (int p = 0; p < passes; ++p) {
        SabreResult fwd = sabreCompile(logical, graph, layout, opts);
        SabreResult bwd =
            sabreCompile(reversed, graph, fwd.finalLayout, opts);
        layout = bwd.finalLayout;
    }
    return layout;
}

} // namespace qcc
