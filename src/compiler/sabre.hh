/**
 * @file
 * SABRE qubit router (Li, Ding, Xie, ASPLOS'19) — the paper's
 * general-purpose compiler baseline ("SAB"). Operates on an already
 * synthesized gate-level circuit: maintains the front layer of
 * unresolved two-qubit gates, scores candidate SWAPs by the
 * BFS-distance heuristic with a lookahead extended set and a decay
 * term, and inserts the best SWAP until every gate is executable.
 */

#ifndef QCC_COMPILER_SABRE_HH
#define QCC_COMPILER_SABRE_HH

#include "arch/coupling_graph.hh"
#include "circuit/circuit.hh"
#include "compiler/layout.hh"

namespace qcc {

/** SABRE heuristic options (defaults follow the original paper). */
struct SabreOptions
{
    double extendedWeight = 0.5; ///< lookahead weight W
    size_t extendedSize = 20;    ///< |E|, lookahead window
    double decayDelta = 0.001;   ///< decay increment per SWAP
    size_t stallLimit = 0;       ///< 0 = auto (10 x qubits)
};

/** Routing result. */
struct SabreResult
{
    Circuit circuit;
    Layout initialLayout;
    Layout finalLayout;
    size_t swapCount = 0;

    /** Mapping overhead in CNOTs (3 per SWAP). */
    size_t overheadCnots() const { return 3 * swapCount; }
};

/** Route a logical circuit onto the device from a given layout. */
SabreResult sabreCompile(const Circuit &logical,
                         const CouplingGraph &graph,
                         const Layout &initial,
                         const SabreOptions &opts = {});

/**
 * SABRE's reverse-traversal initial-layout refinement: run forward
 * and backward passes, feeding each pass's final layout into the
 * next, and return the refined initial layout.
 */
Layout sabreReverseTraversalLayout(const Circuit &logical,
                                   const CouplingGraph &graph,
                                   int passes = 1,
                                   const SabreOptions &opts = {});

} // namespace qcc

#endif // QCC_COMPILER_SABRE_HH
