/**
 * @file
 * Compiler verification: coupling-constraint checking for routed
 * circuits and permutation-aware unitary equivalence between a
 * compiled physical circuit and its logical source. A compiled
 * circuit C with initial mapping pi0 and final mapping pi1 is correct
 * iff C * M(pi0) == M(pi1) * U_logical on every state, where M(pi)
 * embeds logical basis states onto their physical homes.
 */

#ifndef QCC_COMPILER_VERIFY_HH
#define QCC_COMPILER_VERIFY_HH

#include <cstdint>
#include <optional>
#include <string>

#include "arch/coupling_graph.hh"
#include "circuit/circuit.hh"
#include "compiler/layout.hh"

namespace qcc {

/**
 * A concrete verification failure: a human-readable description plus
 * the offending gate index when the problem is gate-specific (-1
 * otherwise). The pass-manager pipeline wraps these into
 * CompileError with the detecting pass's name, so a failed compile
 * reports *which pass broke which gate* instead of a bare bool.
 */
struct VerifyIssue
{
    std::string what;
    long gateIndex = -1;
};

/**
 * First coupling violation in `c` against `g`, or nullopt when every
 * two-qubit gate acts on a coupled pair.
 */
std::optional<VerifyIssue>
findCouplingViolation(const Circuit &c, const CouplingGraph &g);

/** True if every two-qubit gate acts on a coupled pair. */
bool respectsCoupling(const Circuit &c, const CouplingGraph &g);

/**
 * Randomized equivalence check (exact up to tol on `trials` random
 * states). Exhaustive over basis states when the logical circuit has
 * <= 6 qubits and trials == 0.
 */
bool checkCompiledEquivalence(const Circuit &compiled,
                              const Circuit &logical,
                              const Layout &initial,
                              const Layout &final_layout,
                              int trials = 4, double tol = 1e-9,
                              uint64_t seed = 99);

/**
 * Diagnostic variant of checkCompiledEquivalence: nullopt on
 * success, otherwise which trial (or basis state) diverged and by
 * how much.
 */
std::optional<VerifyIssue>
findEquivalenceFailure(const Circuit &compiled, const Circuit &logical,
                       const Layout &initial,
                       const Layout &final_layout, int trials = 4,
                       double tol = 1e-9, uint64_t seed = 99);

} // namespace qcc

#endif // QCC_COMPILER_VERIFY_HH
