/**
 * @file
 * Content-hash keyed circuit cache for the compiler pipeline. The
 * synthesis flows (chain and Merge-to-Root) produce a gate structure
 * that depends only on the Pauli strings, the device, and the pass
 * configuration — the rotation angles enter through exactly one RZ
 * per non-identity string. The cache therefore memoizes the compiled
 * structure under a fingerprint of the angle-independent inputs and
 * rebinds the RZ angles on every hit, so repeated compilation of the
 * same program across VQE iterations (new parameters each energy
 * evaluation) and ablation sweeps skips layout and routing entirely.
 *
 * Flows whose gate order may depend on parameter values (SABRE) are
 * not cached: they cannot be angle-rebound, and exact-key entries
 * would only hit on exact parameter repeats while flooding the
 * shared table under parameter sweeps.
 *
 * Disabled globally with QCC_COMPILE_CACHE=0.
 */

#ifndef QCC_COMPILER_CACHE_HH
#define QCC_COMPILER_CACHE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "circuit/circuit.hh"
#include "compiler/layout.hh"

namespace qcc {

/**
 * Fingerprint of a compile request.
 *
 * ## Hashing contract
 *
 * A key is an ordered stream of 64-bit words that must encode every
 * angle-independent input the compile depends on — and nothing else.
 * For the pipeline flows the stream is: a format tag, the flow
 * enum, the HF-prep flag, the device shape (tree parent vector or
 * coupling-graph edge list), then the program (qubit count, HF mask,
 * and the (x, z) masks of every rotation string, in program order).
 * Rotation angles and term coefficients are deliberately absent:
 * they are rebind data, applied to the memoized structure on every
 * hit.
 *
 * hash() condenses the stream into one 64-bit bucket index; it is
 * fast, not collision-free, and nothing may rely on its injectivity.
 * Correctness comes from the probe comparing the full word stream
 * (operator==) before a hit is declared, so a hash collision can
 * never alias two different programs — in memory or on disk, where
 * DiskCircuitStore (src/store) persists the full key words inside
 * each entry and re-compares them on load.
 *
 * Stability: the word stream doubles as the persistent identity of a
 * compiled circuit in the disk store. Any change to how keys are
 * derived (word order, new inputs, encoding of the device) must bump
 * the circuit-store format version (store/circuit_store.cc) so stale
 * entries demote to misses instead of rebinding onto the wrong
 * structure.
 */
struct CacheKey
{
    std::vector<uint64_t> words;

    void add(uint64_t w) { words.push_back(w); }
    uint64_t hash() const;
    bool operator==(const CacheKey &o) const = default;
};

/** One memoized compile. */
struct CachedCompile
{
    Circuit circuit; ///< compiled structure (angles from first compile)
    /**
     * Gate index of the RZ carrying the k-th non-identity rotation;
     * a hit rewrites these against the caller's resolved angles, so
     * entries are shared across parameter bindings (and coefficient
     * values).
     */
    std::vector<size_t> rzIndex;
    Layout initialLayout;
    Layout finalLayout;
    size_t swapCount = 0;
};

/** Hit/miss counters (monotonic over the cache lifetime). */
struct CacheStats
{
    size_t hits = 0;     ///< memory + disk hits
    size_t misses = 0;
    size_t rebinds = 0;  ///< hits that rewrote at least one angle
    size_t entries = 0;  ///< current resident entries
    size_t evictions = 0;
    size_t diskHits = 0;   ///< hits served by the persistent tier
    size_t diskStores = 0; ///< fresh compiles written through to disk
};

/**
 * Thread-safe memo table with an optional persistent second tier.
 * Lookups copy the entry out under the lock; rebinding happens on
 * the caller's copy. When the table exceeds its capacity it is
 * cleared wholesale — the working sets here are a few programs, so
 * anything fancier is wasted machinery.
 *
 * When a DiskTier is attached (setDiskTier), the cache is
 * write-through: a memory miss probes the tier before reporting a
 * miss (a tier hit is promoted into the memory table), and every
 * fresh insert is persisted. The tier sees only (key, entry) pairs;
 * all policy — directory, enablement, serialization, corruption
 * handling — lives behind the interface in src/store.
 */
class CircuitCache
{
  public:
    /**
     * Persistent tier under the in-memory table. Implementations
     * must be thread-safe and must treat any unreadable or invalid
     * entry as a miss — a load() failure of any kind returns false
     * and the caller recompiles.
     */
    class DiskTier
    {
      public:
        virtual ~DiskTier() = default;

        /** Fetch the entry for `key`; false on miss/invalid entry. */
        virtual bool load(const CacheKey &key, CachedCompile &out) = 0;

        /**
         * Persist an entry (best effort); true when the entry was
         * actually written (false when the tier is disabled or the
         * write failed).
         */
        virtual bool save(const CacheKey &key,
                          const CachedCompile &entry) = 0;
    };

    explicit CircuitCache(size_t capacity = 8192) : cap(capacity) {}

    /** Attach (or detach, with nullptr) the persistent tier. */
    void setDiskTier(std::shared_ptr<DiskTier> tier);

    /**
     * Probe for `key`; on a hit, copy the entry into `out`, rewrite
     * the k-th memoized RZ with `angles[k]`, and return true. A hit
     * whose slot count disagrees with `angles` is treated as a miss
     * (the key fingerprints the strings, so this cannot happen
     * unless a caller mixes keys and programs). The copy and rebind
     * run outside the table lock.
     */
    bool lookup(const CacheKey &key, const std::vector<double> &angles,
                CachedCompile &out);

    /** Memoize a compile (no-op if an equal key is already present). */
    void insert(const CacheKey &key, CachedCompile entry);

    /** Drop every entry (stats other than `entries` persist). */
    void clear();

    CacheStats stats() const;

  private:
    // Entries are immutable once inserted and held by shared_ptr, so
    // the lock covers only the probe/bookkeeping: the O(gates)
    // circuit copy and rebind happen on the caller's thread outside
    // the critical section (compileTerms fans many threads through
    // here).
    /** Memory-table insert; true when `sp` was newly added. */
    bool insertMemo(const CacheKey &key,
                    std::shared_ptr<const CachedCompile> sp);

    mutable std::mutex mtx;
    size_t cap;
    std::unordered_map<
        uint64_t,
        std::vector<std::pair<CacheKey,
                              std::shared_ptr<const CachedCompile>>>>
        table;
    CacheStats counters;
    std::shared_ptr<DiskTier> disk;
};

/**
 * Process-wide cache shared by the pipeline convenience paths.
 * Capacity defaults to 8192 entries (a whole-Hamiltonian per-term
 * sweep of the largest catalog molecule fits with room to spare) and
 * can be overridden with QCC_COMPILE_CACHE_CAP. The persistent
 * DiskCircuitStore tier (src/store) is attached on first use; it
 * no-ops unless QCC_STORE_DIR (or qcc::setStoreDir) configures a
 * store root.
 */
CircuitCache &globalCircuitCache();

/** False when QCC_COMPILE_CACHE=0 disables memoization. */
bool circuitCacheEnabled();

/**
 * Factory for the persistent tier attached to globalCircuitCache().
 * Declared here, defined in src/store/circuit_store.cc — the store
 * layer owns serialization and storage policy; the compiler layer
 * only sees the DiskTier interface.
 */
std::shared_ptr<CircuitCache::DiskTier> makeGlobalCircuitDiskTier();

} // namespace qcc

#endif // QCC_COMPILER_CACHE_HH
