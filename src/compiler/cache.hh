/**
 * @file
 * Content-hash keyed circuit cache for the compiler pipeline. The
 * synthesis flows (chain and Merge-to-Root) produce a gate structure
 * that depends only on the Pauli strings, the device, and the pass
 * configuration — the rotation angles enter through exactly one RZ
 * per non-identity string. The cache therefore memoizes the compiled
 * structure under a fingerprint of the angle-independent inputs and
 * rebinds the RZ angles on every hit, so repeated compilation of the
 * same program across VQE iterations (new parameters each energy
 * evaluation) and ablation sweeps skips layout and routing entirely.
 *
 * Flows whose gate order may depend on parameter values (SABRE) are
 * not cached: they cannot be angle-rebound, and exact-key entries
 * would only hit on exact parameter repeats while flooding the
 * shared table under parameter sweeps.
 *
 * Disabled globally with QCC_COMPILE_CACHE=0.
 */

#ifndef QCC_COMPILER_CACHE_HH
#define QCC_COMPILER_CACHE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "circuit/circuit.hh"
#include "compiler/layout.hh"

namespace qcc {

/**
 * Fingerprint of a compile request: a word stream hashed for the
 * bucket and compared in full on probe, so a 64-bit collision can
 * never alias two different programs.
 */
struct CacheKey
{
    std::vector<uint64_t> words;

    void add(uint64_t w) { words.push_back(w); }
    uint64_t hash() const;
    bool operator==(const CacheKey &o) const = default;
};

/** One memoized compile. */
struct CachedCompile
{
    Circuit circuit; ///< compiled structure (angles from first compile)
    /**
     * Gate index of the RZ carrying the k-th non-identity rotation;
     * a hit rewrites these against the caller's resolved angles, so
     * entries are shared across parameter bindings (and coefficient
     * values).
     */
    std::vector<size_t> rzIndex;
    Layout initialLayout;
    Layout finalLayout;
    size_t swapCount = 0;
};

/** Hit/miss counters (monotonic over the cache lifetime). */
struct CacheStats
{
    size_t hits = 0;
    size_t misses = 0;
    size_t rebinds = 0;  ///< hits that rewrote at least one angle
    size_t entries = 0;  ///< current resident entries
    size_t evictions = 0;
};

/**
 * Thread-safe memo table. Lookups copy the entry out under the lock;
 * rebinding happens on the caller's copy. When the table exceeds its
 * capacity it is cleared wholesale — the working sets here are a few
 * programs, so anything fancier is wasted machinery.
 */
class CircuitCache
{
  public:
    explicit CircuitCache(size_t capacity = 8192) : cap(capacity) {}

    /**
     * Probe for `key`; on a hit, copy the entry into `out`, rewrite
     * the k-th memoized RZ with `angles[k]`, and return true. A hit
     * whose slot count disagrees with `angles` is treated as a miss
     * (the key fingerprints the strings, so this cannot happen
     * unless a caller mixes keys and programs). The copy and rebind
     * run outside the table lock.
     */
    bool lookup(const CacheKey &key, const std::vector<double> &angles,
                CachedCompile &out);

    /** Memoize a compile (no-op if an equal key is already present). */
    void insert(const CacheKey &key, CachedCompile entry);

    /** Drop every entry (stats other than `entries` persist). */
    void clear();

    CacheStats stats() const;

  private:
    // Entries are immutable once inserted and held by shared_ptr, so
    // the lock covers only the probe/bookkeeping: the O(gates)
    // circuit copy and rebind happen on the caller's thread outside
    // the critical section (compileTerms fans many threads through
    // here).
    mutable std::mutex mtx;
    size_t cap;
    std::unordered_map<
        uint64_t,
        std::vector<std::pair<CacheKey,
                              std::shared_ptr<const CachedCompile>>>>
        table;
    CacheStats counters;
};

/**
 * Process-wide cache shared by the pipeline convenience paths.
 * Capacity defaults to 8192 entries (a whole-Hamiltonian per-term
 * sweep of the largest catalog molecule fits with room to spare) and
 * can be overridden with QCC_COMPILE_CACHE_CAP.
 */
CircuitCache &globalCircuitCache();

/** False when QCC_COMPILE_CACHE=0 disables memoization. */
bool circuitCacheEnabled();

} // namespace qcc

#endif // QCC_COMPILER_CACHE_HH
