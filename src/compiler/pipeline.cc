#include "compiler/pipeline.hh"

#include <chrono>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "obs/trace.hh"
#include "compiler/chain_synthesis.hh"
#include "compiler/merge_to_root.hh"
#include "compiler/peephole.hh"
#include "compiler/verify.hh"

namespace qcc {

// ------------------------------------------------------ CompileError

namespace {

std::string
formatCompileError(const std::string &pass, long gate_index,
                   const std::string &detail)
{
    std::string msg = "pass '" + pass + "'";
    if (gate_index >= 0)
        msg += " at gate " + std::to_string(gate_index);
    return msg + ": " + detail;
}

} // namespace

CompileError::CompileError(std::string pass, long gate_index,
                           const std::string &detail)
    : std::runtime_error(formatCompileError(pass, gate_index, detail)),
      passName(std::move(pass)), gateIdx(gate_index)
{}

// ---------------------------------------------------- PipelineReport

std::string
PipelineReport::str() const
{
    std::ostringstream oss;
    char line[160];
    std::snprintf(line, sizeof(line), "%-16s %9s %12s %12s %12s\n",
                  "pass", "ms", "gates", "cnots", "depth");
    oss << line;
    for (const PassStats &s : passes) {
        std::snprintf(line, sizeof(line),
                      "%-16s %9.3f %5zu->%-5zu %5zu->%-5zu "
                      "%5zu->%-5zu\n",
                      s.pass.c_str(), s.millis, s.gatesBefore,
                      s.gatesAfter, s.cnotsBefore, s.cnotsAfter,
                      s.depthBefore, s.depthAfter);
        oss << line;
    }
    std::snprintf(line, sizeof(line), "total %.3f ms%s\n", totalMillis,
                  cacheHit ? "  [cache hit]" : "");
    oss << line;
    return oss.str();
}

// ------------------------------------------------------- PassManager

PassManager &
PassManager::add(std::unique_ptr<Pass> pass)
{
    sequence.push_back(std::move(pass));
    return *this;
}

std::vector<std::string>
PassManager::passNames() const
{
    std::vector<std::string> names;
    names.reserve(sequence.size());
    for (const auto &p : sequence)
        names.emplace_back(p->name());
    return names;
}

namespace {

const CouplingGraph *
deviceGraph(const CompileState &state)
{
    if (state.graph)
        return state.graph;
    return state.tree ? &state.tree->graph : nullptr;
}

/** Synthesize the logical reference on demand (routing/verify). */
void
ensureLogical(CompileState &state)
{
    if (state.logical.size() == 0 && state.ansatz)
        state.logical = synthesizeChainCircuit(
            *state.ansatz, state.params, state.includeHfPrep);
}

} // namespace

void
PassManager::run(CompileState &state, PipelineReport &report) const
{
    for (const auto &pass : sequence) {
        PassStats stats;
        stats.pass = pass->name();
        stats.gatesBefore = state.circuit.totalGates();
        stats.cnotsBefore = state.circuit.cnotCount();
        stats.depthBefore = state.circuit.depth();

        // The span's clock doubles as the PassStats wall time, so
        // the tracer replaces the bespoke timing here instead of
        // running next to it; the PipelineReport JSON shape stays
        // exactly as before.
        {
            TraceSpan span("compile.", stats.pass);
            pass->run(state);
            stats.millis = span.elapsedMillis();
            stats.gatesAfter = state.circuit.totalGates();
            stats.cnotsAfter = state.circuit.cnotCount();
            stats.depthAfter = state.circuit.depth();
            span.arg("gates", stats.gatesAfter);
            span.arg("cnots", stats.cnotsAfter);
            span.arg("depth", stats.depthAfter);
        }
        report.totalMillis += stats.millis;
        report.passes.push_back(std::move(stats));

        // Verify-after-mutate invariant: once a circuit is routed,
        // no later mutating pass may break the coupling constraint.
        if (verifyAfterMutate && pass->mutates() && state.routed) {
            const CouplingGraph *g = deviceGraph(state);
            if (g) {
                auto issue = findCouplingViolation(state.circuit, *g);
                if (issue)
                    throw CompileError(pass->name(), issue->gateIndex,
                                       issue->what);
            }
        }
    }
}

// ------------------------------------------------------------ passes

void
ChainSynthesisPass::run(CompileState &state) const
{
    if (!state.ansatz)
        throw CompileError(name(), -1, "no source program bound");
    state.logical = par ? synthesizeChainCircuitParallel(
                              *state.ansatz, state.params,
                              state.includeHfPrep)
                        : synthesizeChainCircuit(*state.ansatz,
                                                 state.params,
                                                 state.includeHfPrep);
    if (!state.routed)
        state.circuit = state.logical;
}

void
HierarchicalLayoutPass::run(CompileState &state) const
{
    if (!state.ansatz)
        throw CompileError(name(), -1, "no source program bound");
    if (!state.tree)
        throw CompileError(name(), -1,
                           "hierarchical layout needs an X-Tree "
                           "target");
    state.initialLayout =
        hierarchicalInitialLayout(state.ansatz->strings(),
                                  *state.tree);
    state.haveInitialLayout = true;
}

void
MergeToRootPass::run(CompileState &state) const
{
    if (!state.ansatz)
        throw CompileError(name(), -1, "no source program bound");
    if (!state.tree)
        throw CompileError(name(), -1,
                           "Merge-to-Root needs an X-Tree target");
    MtrResult res =
        state.haveInitialLayout
            ? mergeToRootCompile(*state.ansatz, state.params,
                                 *state.tree, state.initialLayout,
                                 state.includeHfPrep)
            : mergeToRootCompile(*state.ansatz, state.params,
                                 *state.tree, state.includeHfPrep);
    state.circuit = std::move(res.circuit);
    state.initialLayout = res.initialLayout;
    state.finalLayout = res.finalLayout;
    state.swapCount = res.swapCount;
    state.haveInitialLayout = true;
    state.routed = true;
}

void
SabreRoutePass::run(CompileState &state) const
{
    const CouplingGraph *g = deviceGraph(state);
    if (!g)
        throw CompileError(name(), -1,
                           "SABRE needs a coupling-graph target");
    ensureLogical(state);
    Layout initial =
        state.haveInitialLayout
            ? state.initialLayout
            : Layout::identity(state.logical.numQubits(),
                               g->numQubits());
    SabreResult res = sabreCompile(state.logical, *g, initial, opts);
    state.circuit = std::move(res.circuit);
    state.initialLayout = res.initialLayout;
    state.finalLayout = res.finalLayout;
    state.swapCount = res.swapCount;
    state.haveInitialLayout = true;
    state.routed = true;
}

void
PeepholePass::run(CompileState &state) const
{
    state.circuit = cancelGates(state.circuit);
}

void
VerifyPass::run(CompileState &state) const
{
    if (state.routed) {
        const CouplingGraph *g = deviceGraph(state);
        if (!g)
            throw CompileError(name(), -1,
                               "routed circuit but no device graph "
                               "to check against");
        auto issue = findCouplingViolation(state.circuit, *g);
        if (issue)
            throw CompileError(name(), issue->gateIndex, issue->what);
    }
    if (trials <= 0)
        return;

    ensureLogical(state);
    const unsigned nl = state.logical.numQubits();
    Layout initial = state.routed
                         ? state.initialLayout
                         : Layout::identity(nl, nl);
    Layout final_layout =
        state.routed ? state.finalLayout : Layout::identity(nl, nl);
    auto issue =
        findEquivalenceFailure(state.circuit, state.logical, initial,
                               final_layout, trials);
    if (issue)
        throw CompileError(name(), issue->gateIndex, issue->what);
}

// ------------------------------------------------- CompilerPipeline

CompilerPipeline::CompilerPipeline(const XTree &t, PipelineOptions o)
    : opts(o), tree(&t)
{
    buildManagers();
}

CompilerPipeline::CompilerPipeline(const CouplingGraph &g,
                                   PipelineOptions o)
    : opts(o), graph(&g)
{
    if (opts.flow == PipelineOptions::Flow::MergeToRoot)
        fatal("CompilerPipeline: Merge-to-Root flow needs an X-Tree "
              "target, not a bare coupling graph");
    buildManagers();
}

CompilerPipeline::CompilerPipeline(PipelineOptions o) : opts(o)
{
    if (opts.flow != PipelineOptions::Flow::ChainOnly)
        fatal("CompilerPipeline: routing flows need a device target");
    buildManagers();
}

void
CompilerPipeline::buildManagers()
{
    using Flow = PipelineOptions::Flow;
    switch (opts.flow) {
      case Flow::ChainOnly:
          synth.add(std::make_unique<ChainSynthesisPass>(
              opts.parallelSynthesis));
          break;
      case Flow::MergeToRoot:
          synth.add(std::make_unique<HierarchicalLayoutPass>());
          synth.add(std::make_unique<MergeToRootPass>());
          break;
      case Flow::Sabre:
          synth.add(std::make_unique<ChainSynthesisPass>(
              opts.parallelSynthesis));
          synth.add(std::make_unique<SabreRoutePass>(opts.sabre));
          break;
    }
    if (opts.peephole)
        post.add(std::make_unique<PeepholePass>());
    post.add(std::make_unique<VerifyPass>(opts.verifyTrials));

    // Program-independent key words, computed once: every compile's
    // key starts from a copy of this prefix.
    keyPrefix.add(0x716363u); // format tag
    keyPrefix.add(uint64_t(opts.flow));
    keyPrefix.add(opts.includeHfPrep ? 1 : 0);
    if (tree) {
        keyPrefix.add(0x54u); // 'T'
        keyPrefix.add(tree->graph.numQubits());
        keyPrefix.add(tree->root);
        for (int p : tree->parent)
            keyPrefix.add(uint64_t(int64_t(p)));
    } else if (graph) {
        keyPrefix.add(0x47u); // 'G'
        keyPrefix.add(graph->numQubits());
        for (const auto &[a, b] : graph->edges())
            keyPrefix.add((uint64_t(a) << 32) | b);
    }
}

std::vector<std::string>
CompilerPipeline::passNames() const
{
    std::vector<std::string> names = synth.passNames();
    std::vector<std::string> tail = post.passNames();
    names.insert(names.end(), std::make_move_iterator(tail.begin()),
                 std::make_move_iterator(tail.end()));
    return names;
}

bool
CompilerPipeline::rebindable() const
{
    // SABRE's gate order is not provably independent of the bound
    // angles, so its results cannot be angle-rebound; exact-key
    // memoization would only hit on exact parameter repeats while
    // flooding the shared cache under parameter sweeps, so the Sabre
    // flow is not cached at all.
    return opts.flow != PipelineOptions::Flow::Sabre;
}

CacheKey
CompilerPipeline::makeKey(const Ansatz &ansatz) const
{
    // Structure only: parameters and coefficients are rebind data,
    // not key material, so any binding of the same strings on the
    // same device shares one entry.
    CacheKey key = keyPrefix;
    key.words.reserve(key.words.size() + 2 +
                      2 * ansatz.rotations.size());
    key.add(ansatz.nQubits);
    key.add(ansatz.hfMask);
    for (const auto &r : ansatz.rotations) {
        key.add(r.string.xMask());
        key.add(r.string.zMask());
    }
    return key;
}

namespace {

/**
 * Resolved RZ angles, one per non-identity rotation in program
 * order — the rebind stream for structural cache hits.
 */
std::vector<double>
resolvedAngles(const Ansatz &ansatz, const std::vector<double> &params)
{
    std::vector<double> angles;
    angles.reserve(ansatz.rotations.size());
    // Parenthesized exactly like the synthesis flows compute
    // rz(-2.0 * theta) with theta = params[param] * coeff, so a
    // rebound circuit is bit-identical to a fresh compile.
    for (const auto &r : ansatz.rotations)
        if (!r.string.isIdentity())
            angles.push_back(-2.0 * (params[r.param] * r.coeff));
    return angles;
}

/** Gate indices of every RZ, in circuit order. */
std::vector<size_t>
rzGateIndices(const Circuit &c)
{
    std::vector<size_t> idx;
    const auto &gates = c.gates();
    for (size_t i = 0; i < gates.size(); ++i)
        if (gates[i].kind == GateKind::RZ)
            idx.push_back(i);
    return idx;
}

} // namespace

CompileResult
CompilerPipeline::compile(const Ansatz &ansatz,
                          const std::vector<double> &params) const
{
    TraceSpan span("compile.pipeline");
    span.arg("qubits", ansatz.nQubits);

    // Validate up front: the cached path reads params[r.param]
    // before any pass (and its own check) would run.
    if (params.size() != ansatz.nParams)
        fatal("CompilerPipeline::compile: parameter count mismatch");

    CompileState state;
    state.ansatz = &ansatz;
    state.params = params;
    state.tree = tree;
    state.graph = graph;
    state.includeHfPrep = opts.includeHfPrep;

    PipelineReport report;
    const bool cacheOn =
        opts.useCache && circuitCacheEnabled() && rebindable();
    CacheKey key;
    std::vector<double> angles;
    bool hit = false;

    if (cacheOn) {
        key = makeKey(ansatz);
        angles = resolvedAngles(ansatz, params);
        CachedCompile entry;
        if (globalCircuitCache().lookup(key, angles, entry)) {
            hit = true;
            report.cacheHit = true;
            state.circuit = std::move(entry.circuit);
            state.initialLayout = entry.initialLayout;
            state.finalLayout = entry.finalLayout;
            state.swapCount = entry.swapCount;
            state.routed =
                opts.flow != PipelineOptions::Flow::ChainOnly;
            state.haveInitialLayout = state.routed;
        }
    }

    if (!hit) {
        synth.run(state, report);
        if (cacheOn) {
            CachedCompile entry;
            entry.circuit = state.circuit;
            entry.initialLayout = state.initialLayout;
            entry.finalLayout = state.finalLayout;
            entry.swapCount = state.swapCount;
            entry.rzIndex = rzGateIndices(state.circuit);
            // The synthesis flows emit exactly one RZ per
            // non-identity rotation; anything else means a pass
            // changed the invariant, so skip memoization rather
            // than risk a bad rebind.
            if (entry.rzIndex.size() == angles.size())
                globalCircuitCache().insert(key, std::move(entry));
        }
    }

    post.run(state, report);

    CompileResult res;
    if (!state.routed) {
        const unsigned n = state.circuit.numQubits();
        state.initialLayout = Layout::identity(n, n);
        state.finalLayout = state.initialLayout;
    }
    res.circuit = std::move(state.circuit);
    res.initialLayout = state.initialLayout;
    res.finalLayout = state.finalLayout;
    res.swapCount = state.swapCount;
    res.report = std::move(report);
    span.arg("cache_hit", hit);
    span.arg("gates", res.circuit.totalGates());
    res.report.totalMillis = span.elapsedMillis();
    return res;
}

std::vector<CompileResult>
CompilerPipeline::compileTerms(const PauliSum &h, double theta) const
{
    const auto &terms = h.terms();
    std::vector<CompileResult> out(terms.size());
    auto compileRange = [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
            Ansatz term;
            term.nQubits = h.numQubits();
            term.nParams = 1;
            term.rotations.push_back(
                {0, terms[i].coeff.real(), terms[i].string});
            out[i] = compile(term, {theta});
        }
    };
    if (opts.parallelSynthesis)
        parallelFor(0, terms.size(), compileRange, /*grain=*/1);
    else
        compileRange(0, terms.size());
    return out;
}

Circuit
cachedChainCircuit(const Ansatz &ansatz,
                   const std::vector<double> &params,
                   bool include_hf_prep)
{
    // Function-local pipelines (one per prep flavor) so the per-call
    // cost on the VQE hot path is a cache probe, not pipeline
    // construction. compile() is const and stateless, so sharing
    // across threads is safe.
    auto make = [](bool hf) {
        PipelineOptions o;
        o.flow = PipelineOptions::Flow::ChainOnly;
        o.includeHfPrep = hf;
        return CompilerPipeline(o);
    };
    static const CompilerPipeline withPrep = make(true);
    static const CompilerPipeline withoutPrep = make(false);
    const CompilerPipeline &pipe =
        include_hf_prep ? withPrep : withoutPrep;
    return pipe.compile(ansatz, params).circuit;
}

} // namespace qcc
