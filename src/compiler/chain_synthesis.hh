/**
 * @file
 * Traditional Pauli-string synthesis (Section II-A / Figure 2): a
 * basis-change layer (H for X, RX(pi/2) for Y), a CNOT chain over the
 * non-identity qubits in index order, the RZ rotation on the last
 * qubit, and the mirrored un-compute. This is the uniform plan used
 * by conventional compilers (e.g. Qiskit) and the input circuit for
 * the SABRE baseline; it also defines the paper's "original" gate and
 * CNOT counts (Table I).
 */

#ifndef QCC_COMPILER_CHAIN_SYNTHESIS_HH
#define QCC_COMPILER_CHAIN_SYNTHESIS_HH

#include <vector>

#include "ansatz/uccsd.hh"
#include "circuit/circuit.hh"
#include "pauli/pauli.hh"

namespace qcc {

/**
 * Chain-synthesized circuit for exp(i theta P) on n logical qubits.
 * Identity strings contribute only a global phase and synthesize to
 * an empty circuit.
 */
Circuit pauliRotationChain(const PauliString &p, double theta,
                           unsigned n_qubits);

/**
 * Chain-synthesize a whole ansatz program, optionally prefixed by the
 * Hartree-Fock X-gate preparation layer.
 */
Circuit synthesizeChainCircuit(const Ansatz &ansatz,
                               const std::vector<double> &params,
                               bool include_hf_prep = true);

/**
 * Bit-identical to synthesizeChainCircuit, but the per-term
 * subcircuits are synthesized concurrently on the common/parallel
 * thread pool and stitched in program order (each term's plan is
 * independent of every other's, so only the final concatenation is
 * ordered). Worth it from a few hundred strings up; QCC_THREADS=1
 * makes it exactly the serial path.
 */
Circuit synthesizeChainCircuitParallel(const Ansatz &ansatz,
                                       const std::vector<double> &params,
                                       bool include_hf_prep = true);

/** CNOT count of the chain plan without materializing the circuit. */
size_t chainCnotCount(const Ansatz &ansatz);

} // namespace qcc

#endif // QCC_COMPILER_CHAIN_SYNTHESIS_HH
