/**
 * @file
 * Logical-to-physical qubit layouts and the hierarchical initial
 * layout of Algorithm 2: logical qubits are ranked by how many Pauli
 * strings they participate in and placed level-by-level on the X-Tree
 * (busiest qubits nearest the root), attaching each qubit under the
 * already-placed parent it shares the most Pauli strings with.
 */

#ifndef QCC_COMPILER_LAYOUT_HH
#define QCC_COMPILER_LAYOUT_HH

#include <vector>

#include "arch/xtree.hh"
#include "common/rng.hh"
#include "pauli/pauli.hh"

namespace qcc {

/** Bidirectional logical <-> physical map. */
class Layout
{
  public:
    Layout() = default;

    /** Identity layout: logical q on physical q. */
    static Layout identity(unsigned n_logical, unsigned n_physical);

    /** Random permutation layout. */
    static Layout random(unsigned n_logical, unsigned n_physical,
                         Rng &rng);

    /** Build from an explicit logical -> physical vector. */
    static Layout fromLogToPhys(const std::vector<unsigned> &l2p,
                                unsigned n_physical);

    unsigned numLogical() const { return unsigned(l2p.size()); }
    unsigned numPhysical() const { return unsigned(p2l.size()); }

    /** Physical home of logical q. */
    unsigned phys(unsigned logical) const { return l2p[logical]; }

    /** Logical occupant of physical p, or -1 if free. */
    int log(unsigned physical) const { return p2l[physical]; }

    /** Exchange the occupants of two physical qubits. */
    void swapPhysical(unsigned p1, unsigned p2);

    /** Internal consistency check (panics on violation). */
    void validate() const;

  private:
    std::vector<unsigned> l2p;
    std::vector<int> p2l;
};

/**
 * Algorithm 2: hierarchical initial layout from the ansatz Pauli
 * strings and the X-Tree level structure.
 */
Layout hierarchicalInitialLayout(const std::vector<PauliString> &strings,
                                 const XTree &tree);

/**
 * Co-occurrence matrix Mat(j,k) = number of strings containing both
 * logical qubits j and k (diagonal = occurrence count). Exposed for
 * testing and for the layout ablation bench.
 */
std::vector<std::vector<unsigned>>
coOccurrence(const std::vector<PauliString> &strings, unsigned n);

} // namespace qcc

#endif // QCC_COMPILER_LAYOUT_HH
