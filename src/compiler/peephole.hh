/**
 * @file
 * Peephole gate-cancellation pass — the "deeper compiler
 * optimization" direction Section VII sketches. Consecutive
 * Pauli-string simulation circuits share basis-change and CNOT
 * structure; after Merge-to-Root the mirrored suffix of one string
 * often exactly inverts the prefix of the next. This pass cancels
 * adjacent inverse pairs (H-H, RX(a)-RX(-a), CNOT-CNOT, SWAP-SWAP),
 * merges adjacent rotations on the same axis and qubit, and drops
 * zero-angle rotations, iterating to a fixed point.
 */

#ifndef QCC_COMPILER_PEEPHOLE_HH
#define QCC_COMPILER_PEEPHOLE_HH

#include "circuit/circuit.hh"

namespace qcc {

/** Cancellation statistics. */
struct PeepholeStats
{
    size_t removedGates = 0;
    size_t mergedRotations = 0;
    int passes = 0;
};

/**
 * Apply cancellation until a fixed point. Gates commute past each
 * other only when they act on disjoint qubits, which the scan
 * respects, so the result is exactly unitary-equivalent.
 *
 * @param zero_eps rotations with |angle| below this are dropped
 */
Circuit cancelGates(const Circuit &c, PeepholeStats *stats = nullptr,
                    double zero_eps = 1e-12);

} // namespace qcc

#endif // QCC_COMPILER_PEEPHOLE_HH
