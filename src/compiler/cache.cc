#include "compiler/cache.hh"

#include <cstdlib>

#include "common/rng.hh"
#include "obs/metrics.hh"

namespace qcc {

namespace {

/**
 * Registry mirrors of the hot CacheStats counters, so
 * METRICS_*.json and cross-process sweepd aggregation see compile
 * cache behavior without teaching them about CacheStats. The
 * authoritative per-instance counts stay in CacheStats (bench rows
 * take deltas from it); these only ever increment.
 */
struct CacheMetrics
{
    MetricCounter &hits = metricCounter("compile.cache.hits");
    MetricCounter &misses = metricCounter("compile.cache.misses");
    MetricCounter &diskHits =
        metricCounter("compile.cache.disk_hits");
    MetricCounter &diskStores =
        metricCounter("compile.cache.disk_stores");
};

CacheMetrics &
cacheMetrics()
{
    static CacheMetrics m;
    return m;
}

} // namespace

uint64_t
CacheKey::hash() const
{
    // splitmix64-style word mix; collisions are harmless (the full
    // word stream is compared on probe) so speed wins over strength.
    uint64_t h = 0xcbf29ce484222325ull;
    for (uint64_t w : words) {
        h ^= w + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
        h *= 0xff51afd7ed558ccdull;
        h ^= h >> 33;
    }
    return h;
}

void
CircuitCache::setDiskTier(std::shared_ptr<DiskTier> tier)
{
    std::lock_guard<std::mutex> lock(mtx);
    disk = std::move(tier);
}

bool
CircuitCache::insertMemo(const CacheKey &key,
                         std::shared_ptr<const CachedCompile> sp)
{
    std::lock_guard<std::mutex> lock(mtx);
    if (counters.entries >= cap) {
        table.clear();
        counters.evictions += counters.entries;
        counters.entries = 0;
    }
    auto &bucket = table[key.hash()];
    for (const auto &[k, v] : bucket)
        if (k == key)
            return false;
    bucket.emplace_back(key, std::move(sp));
    ++counters.entries;
    return true;
}

bool
CircuitCache::lookup(const CacheKey &key,
                     const std::vector<double> &angles,
                     CachedCompile &out)
{
    std::shared_ptr<const CachedCompile> found;
    std::shared_ptr<DiskTier> tier;
    {
        std::lock_guard<std::mutex> lock(mtx);
        auto it = table.find(key.hash());
        if (it != table.end())
            for (const auto &[k, v] : it->second)
                if (k == key) {
                    found = v;
                    break;
                }
        if (found && found->rzIndex.size() != angles.size())
            found.reset();
        tier = disk;
    }

    if (!found && tier) {
        // Second-tier probe outside the lock: file IO must never
        // serialize the other workers' memory probes.
        CachedCompile entry;
        if (tier->load(key, entry) &&
            entry.rzIndex.size() == angles.size()) {
            found =
                std::make_shared<const CachedCompile>(std::move(entry));
            // Promote into the memory table (no write-back to disk:
            // the entry just came from there).
            insertMemo(key, found);
            cacheMetrics().diskHits.add();
            std::lock_guard<std::mutex> lock(mtx);
            ++counters.diskHits;
        }
    }

    {
        std::lock_guard<std::mutex> lock(mtx);
        if (!found) {
            ++counters.misses;
            cacheMetrics().misses.add();
            return false;
        }
        ++counters.hits;
        cacheMetrics().hits.add();
        if (!found->rzIndex.empty())
            ++counters.rebinds;
    }

    // Copy and rebind outside the lock: rewrite each memoized RZ
    // with the caller's angles.
    out = *found;
    auto &gates = out.circuit.gates();
    for (size_t k = 0; k < out.rzIndex.size(); ++k)
        gates[out.rzIndex[k]].angle = angles[k];
    return true;
}

void
CircuitCache::insert(const CacheKey &key, CachedCompile entry)
{
    auto sp = std::make_shared<const CachedCompile>(std::move(entry));
    if (!insertMemo(key, sp))
        return; // duplicate: already memoized (and persisted)
    std::shared_ptr<DiskTier> tier;
    {
        std::lock_guard<std::mutex> lock(mtx);
        tier = disk;
    }
    if (tier && tier->save(key, *sp)) {
        // Write-through ran outside the lock; best effort.
        cacheMetrics().diskStores.add();
        std::lock_guard<std::mutex> lock(mtx);
        ++counters.diskStores;
    }
}

void
CircuitCache::clear()
{
    std::lock_guard<std::mutex> lock(mtx);
    counters.evictions += counters.entries;
    counters.entries = 0;
    table.clear();
}

CacheStats
CircuitCache::stats() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return counters;
}

CircuitCache &
globalCircuitCache()
{
    static CircuitCache cache(
        size_t(envUint("QCC_COMPILE_CACHE_CAP", 8192, 1)));
    // The persistent tier is attached exactly once; it consults the
    // store configuration (QCC_STORE_DIR / setStoreDir) on every
    // call, so attaching it while the store is disabled costs one
    // predicate per miss.
    static const bool attached = [] {
        cache.setDiskTier(makeGlobalCircuitDiskTier());
        return true;
    }();
    (void)attached;
    return cache;
}

bool
circuitCacheEnabled()
{
    static const bool enabled = [] {
        const char *env = std::getenv("QCC_COMPILE_CACHE");
        return !(env && std::string(env) == "0");
    }();
    return enabled;
}

} // namespace qcc
