/**
 * @file
 * Pass-manager compiler pipeline. The paper's co-optimized flow —
 * chain synthesis, hierarchical layout, Merge-to-Root routing, SABRE
 * baseline routing, peephole cancellation, and verification — exists
 * in this repo as free functions; this subsystem wraps each one in a
 * `Pass` and executes configurable ordered sequences through a
 * `PassManager` that records per-pass wall time and gate/CNOT/depth
 * deltas into a `PipelineReport` and enforces coupling invariants
 * after every mutating pass.
 *
 * `CompilerPipeline` is the front door: a flow selection (chain-only,
 * Merge-to-Root, or SABRE) plus a content-hash keyed `CircuitCache`
 * so recompiling the same program with new parameters (every VQE
 * energy evaluation) rebinds angles instead of re-routing, and a
 * per-term fan-out over the common/parallel thread pool so
 * whole-Hamiltonian compiles scale across cores.
 */

#ifndef QCC_COMPILER_PIPELINE_HH
#define QCC_COMPILER_PIPELINE_HH

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "ansatz/uccsd.hh"
#include "arch/xtree.hh"
#include "circuit/circuit.hh"
#include "compiler/cache.hh"
#include "compiler/layout.hh"
#include "compiler/sabre.hh"
#include "pauli/pauli_sum.hh"

namespace qcc {

/**
 * Compilation failure with provenance: which pass detected the
 * problem and, when gate-specific, the offending gate index.
 */
class CompileError : public std::runtime_error
{
  public:
    CompileError(std::string pass, long gate_index,
                 const std::string &detail);

    const std::string &pass() const { return passName; }

    /** Offending gate index, or -1 when not gate-specific. */
    long gateIndex() const { return gateIdx; }

  private:
    std::string passName;
    long gateIdx;
};

/** Mutable state threaded through a pass sequence. */
struct CompileState
{
    const Ansatz *ansatz = nullptr; ///< source program (non-owning)
    std::vector<double> params;     ///< rotation-angle bindings
    const XTree *tree = nullptr;    ///< target device, tree flows
    const CouplingGraph *graph = nullptr; ///< target device, routing
    bool includeHfPrep = true;

    Circuit logical;       ///< chain-synthesized logical reference
    Circuit circuit;       ///< current circuit (physical once routed)
    Layout initialLayout;
    Layout finalLayout;
    size_t swapCount = 0;
    bool haveInitialLayout = false;
    bool routed = false;   ///< circuit obeys the device coupling
};

/** Per-pass cost/effect record. */
struct PassStats
{
    std::string pass;
    double millis = 0.0;
    size_t gatesBefore = 0, gatesAfter = 0;
    size_t cnotsBefore = 0, cnotsAfter = 0;
    size_t depthBefore = 0, depthAfter = 0;
};

/** Whole-compile record: ordered pass stats plus cache outcome. */
struct PipelineReport
{
    std::vector<PassStats> passes;
    double totalMillis = 0.0;
    bool cacheHit = false;

    /** Pretty-printed table, one row per pass. */
    std::string str() const;
};

/** One compiler stage. */
class Pass
{
  public:
    virtual ~Pass() = default;

    virtual const char *name() const = 0;

    virtual void run(CompileState &state) const = 0;

    /**
     * True when the pass rewrites the circuit; the manager re-checks
     * the coupling invariant after every such pass.
     */
    virtual bool mutates() const { return true; }
};

/**
 * Ordered pass executor. Owns its passes; `run` times each one,
 * records the gate-count/CNOT/depth deltas, and (when
 * `verifyAfterMutate` is set) throws CompileError naming the pass
 * and gate index if a mutating pass breaks the coupling constraint
 * of an already-routed circuit.
 */
class PassManager
{
  public:
    PassManager &add(std::unique_ptr<Pass> pass);

    size_t numPasses() const { return sequence.size(); }
    std::vector<std::string> passNames() const;

    bool verifyAfterMutate = true;

    /** Execute the sequence, appending stats to `report`. */
    void run(CompileState &state, PipelineReport &report) const;

  private:
    std::vector<std::unique_ptr<Pass>> sequence;
};

/** @{ Pass wrappers over the existing free-function stages. */

/** Chain synthesis of the logical circuit (Figure 2 plan). */
class ChainSynthesisPass : public Pass
{
  public:
    explicit ChainSynthesisPass(bool parallel = true)
        : par(parallel)
    {}
    const char *name() const override { return "chain-synthesis"; }
    void run(CompileState &state) const override;

  private:
    bool par;
};

/** Algorithm 2 hierarchical initial layout. */
class HierarchicalLayoutPass : public Pass
{
  public:
    const char *name() const override { return "hier-layout"; }
    void run(CompileState &state) const override;
    bool mutates() const override { return false; }
};

/** Algorithm 3 Merge-to-Root synthesis + routing. */
class MergeToRootPass : public Pass
{
  public:
    const char *name() const override { return "merge-to-root"; }
    void run(CompileState &state) const override;
};

/** SABRE routing of the chain-synthesized circuit. */
class SabreRoutePass : public Pass
{
  public:
    explicit SabreRoutePass(SabreOptions opts = {}) : opts(opts) {}
    const char *name() const override { return "sabre-route"; }
    void run(CompileState &state) const override;

  private:
    SabreOptions opts;
};

/** Peephole cancellation to a fixed point. */
class PeepholePass : public Pass
{
  public:
    const char *name() const override { return "peephole"; }
    void run(CompileState &state) const override;
};

/**
 * Verification: coupling check on routed circuits, plus randomized
 * permutation-aware equivalence against the logical reference when
 * `trials > 0` (synthesizing the reference on demand). Failures
 * throw CompileError with the offending gate index.
 */
class VerifyPass : public Pass
{
  public:
    explicit VerifyPass(int equivalence_trials = 0)
        : trials(equivalence_trials)
    {}
    const char *name() const override { return "verify"; }
    void run(CompileState &state) const override;
    bool mutates() const override { return false; }

  private:
    int trials;
};

/** @} */

/** Pipeline configuration. */
struct PipelineOptions
{
    enum class Flow
    {
        ChainOnly,   ///< logical chain circuit, no routing
        MergeToRoot, ///< hier-layout + MtR on the X-Tree
        Sabre,       ///< chain + SABRE on the coupling graph
    };
    Flow flow = Flow::MergeToRoot;

    bool includeHfPrep = true;
    bool parallelSynthesis = true; ///< fan chain terms over the pool
    bool peephole = false;         ///< append the cancellation pass
    /**
     * Equivalence-check trials in the trailing verify pass; 0 keeps
     * only the coupling check (equivalence costs a 2^n simulation).
     */
    int verifyTrials = 0;
    /**
     * Memoize compiles in the global CircuitCache (chain and MtR
     * flows only — SABRE output cannot be angle-rebound). ANDed
     * with QCC_COMPILE_CACHE.
     */
    bool useCache = true;
    SabreOptions sabre;
};

/** Result of one pipeline compile. */
struct CompileResult
{
    Circuit circuit;
    Layout initialLayout;
    Layout finalLayout;
    size_t swapCount = 0;
    PipelineReport report;

    /** Mapping overhead in CNOTs (3 per SWAP, paper convention). */
    size_t overheadCnots() const { return 3 * swapCount; }
};

/**
 * Configured compiler front door. The cacheable prefix of the flow
 * (synthesis + layout + routing, whose structure is parameter-
 * independent for the chain and MtR flows) is memoized in the global
 * CircuitCache; angle-dependent passes (peephole) and verification
 * always run per compile.
 */
class CompilerPipeline
{
  public:
    /** Tree target: MergeToRoot and Sabre flows route on the tree. */
    CompilerPipeline(const XTree &tree, PipelineOptions opts = {});

    /** Graph target: Sabre flow only (MtR needs tree structure). */
    CompilerPipeline(const CouplingGraph &graph,
                     PipelineOptions opts = {});

    /** Device-free pipeline: ChainOnly flow only. */
    explicit CompilerPipeline(PipelineOptions opts);

    const PipelineOptions &options() const { return opts; }

    /** Pass names of the full sequence, synthesis then post. */
    std::vector<std::string> passNames() const;

    /** Compile one ansatz program with bound parameters. */
    CompileResult compile(const Ansatz &ansatz,
                          const std::vector<double> &params) const;

    /**
     * Whole-Hamiltonian compile: one exp(i theta w_j P_j) subcircuit
     * per term, fanned out over the thread pool (deterministic: the
     * result order matches the term order and every term compiles
     * independently). Identity terms yield empty circuits.
     */
    std::vector<CompileResult>
    compileTerms(const PauliSum &h, double theta) const;

  private:
    void buildManagers();
    CacheKey makeKey(const Ansatz &ansatz) const;
    bool rebindable() const;

    PipelineOptions opts;
    const XTree *tree = nullptr;
    const CouplingGraph *graph = nullptr;
    PassManager synth; ///< cacheable prefix
    PassManager post;  ///< angle-dependent / checking suffix
    CacheKey keyPrefix; ///< program-independent key words (device, flow)
};

/**
 * Cached chain synthesis for the simulator hot paths: structure
 * memoized in the global cache, angles rebound per call. Exactly
 * equivalent to synthesizeChainCircuit.
 */
Circuit cachedChainCircuit(const Ansatz &ansatz,
                           const std::vector<double> &params,
                           bool include_hf_prep = true);

} // namespace qcc

#endif // QCC_COMPILER_PIPELINE_HH
