/**
 * @file
 * Merge-to-Root circuit synthesis and qubit routing (Algorithm 3).
 * For each Pauli string, the compiler looks at where the string's
 * logical qubits currently live on the X-Tree and synthesizes a CNOT
 * merge tree adapted to that placement: active qubits whose parent is
 * inactive are first lifted by SWAPs (choosing the child that appears
 * most in upcoming strings, Section V-B), after which every active
 * node's parent is active up to a single merge root, where the RZ is
 * applied. SWAPs permanently update the mapping; synthesis of the
 * next string adapts to it.
 */

#ifndef QCC_COMPILER_MERGE_TO_ROOT_HH
#define QCC_COMPILER_MERGE_TO_ROOT_HH

#include <vector>

#include "ansatz/uccsd.hh"
#include "arch/xtree.hh"
#include "circuit/circuit.hh"
#include "compiler/layout.hh"

namespace qcc {

/** Output of a Merge-to-Root compilation. */
struct MtrResult
{
    Circuit circuit;      ///< physical circuit (SWAPs as SWAP gates)
    Layout initialLayout;
    Layout finalLayout;
    size_t swapCount = 0;

    /** Mapping overhead in CNOTs (3 per SWAP, paper convention). */
    size_t overheadCnots() const { return 3 * swapCount; }
};

/**
 * Compile an ansatz program onto an X-Tree. The initial layout is
 * typically produced by hierarchicalInitialLayout; params bind the
 * rotation angles (use zeros when only costs are needed).
 */
MtrResult mergeToRootCompile(const Ansatz &ansatz,
                             const std::vector<double> &params,
                             const XTree &tree, const Layout &initial,
                             bool include_hf_prep = true);

/** Convenience: hierarchical layout + Merge-to-Root in one call. */
MtrResult mergeToRootCompile(const Ansatz &ansatz,
                             const std::vector<double> &params,
                             const XTree &tree,
                             bool include_hf_prep = true);

} // namespace qcc

#endif // QCC_COMPILER_MERGE_TO_ROOT_HH
