/**
 * @file
 * Simulation-free resource estimation — the workload that answers
 * "what would this spec cost on hardware" without ever allocating a
 * 2^n state. The estimator runs a program (UCCSD ansatz or Trotter
 * evolution) through the ordinary compiler pipeline with zero-bound
 * angles (circuit structure is angle-independent, so counts are
 * exact for every binding) and combines the gate/CNOT/depth/SWAP
 * counts with the measurement-side bill: QWC settings from the
 * spec's grouping and the resolved shot budget. An estimate job
 * costs microseconds once the problem and compile caches are warm —
 * that is what lets the sweep service answer Table I-scale queries
 * at interactive latency (ScaffCC's default output is exactly this
 * kind of no-simulation estimate).
 */

#ifndef QCC_ESTIMATE_ESTIMATE_HH
#define QCC_ESTIMATE_ESTIMATE_HH

#include <cstdint>

#include "ansatz/uccsd.hh"
#include "compiler/pipeline.hh"
#include "pauli/grouping.hh"
#include "pauli/pauli_sum.hh"

namespace qcc {

/** Everything estimateResources needs about one job. */
struct EstimateRequest
{
    /** Measured Hamiltonian (settings + term counts). */
    const PauliSum *hamiltonian = nullptr;

    /** The program whose circuit is costed. */
    const Ansatz *program = nullptr;

    /** Measurement grouping; null means greedy first-fit. */
    GroupingFn grouping;

    /**
     * Configured pipeline to compile through; null costs the
     * logical chain plan (no device, no SWAPs).
     */
    const CompilerPipeline *pipeline = nullptr;

    /** Prepend HF X-gates in the costed circuit (chain plan). */
    bool includeHfPrep = true;

    /** Resolved shots per energy estimate (already defaulted). */
    uint64_t shotsPerEstimate = 0;

    /** Iteration budget used to extend the bill to a whole run. */
    int iterations = 0;
};

/** Serialized resource estimate for one job (kind "estimate"). */
struct EstimateResult
{
    bool present = false;

    unsigned qubits = 0;
    unsigned parameters = 0;   ///< program parameters
    size_t pauliStrings = 0;   ///< rotations in the program
    size_t hamiltonianTerms = 0;
    size_t measurementSettings = 0; ///< QWC families

    size_t gates = 0;
    size_t cnots = 0;
    size_t depth = 0;
    size_t swaps = 0;
    size_t overheadCnots = 0; ///< 3 per SWAP (paper convention)

    /** Shots for ONE energy estimate, split across the settings. */
    uint64_t shotsPerEstimate = 0;

    /**
     * Whole-run lower bound: shotsPerEstimate * iterations (one
     * estimate per outer iteration; gradient fan-out multiplies it).
     */
    uint64_t shotBudget = 0;
};

/**
 * Cost one job. Compiles `program` with all-zero angles — through
 * `pipeline` when given (full device counts including SWAPs),
 * otherwise as the cached logical chain plan — and fills every
 * count above. Never constructs a simulator state. Throws whatever
 * the compiler throws on an invalid program/device pairing.
 */
EstimateResult estimateResources(const EstimateRequest &req);

} // namespace qcc

#endif // QCC_ESTIMATE_ESTIMATE_HH
