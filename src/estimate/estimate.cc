#include "estimate/estimate.hh"

#include <stdexcept>
#include <vector>

namespace qcc {

EstimateResult
estimateResources(const EstimateRequest &req)
{
    if (!req.hamiltonian || !req.program)
        throw std::invalid_argument(
            "estimateResources: hamiltonian and program are "
            "required");
    const PauliSum &h = *req.hamiltonian;
    const Ansatz &prog = *req.program;

    EstimateResult out;
    out.present = true;
    out.qubits = prog.nQubits;
    out.parameters = prog.nParams;
    out.pauliStrings = prog.numStrings();
    out.hamiltonianTerms = h.numTerms();
    out.measurementSettings =
        (req.grouping ? req.grouping(h) : groupQubitWise(h)).size();

    // Circuit structure is angle-independent (RZ angles rebind on
    // the memoized plan), so zero-bound angles give exact counts.
    const std::vector<double> zeros(prog.nParams, 0.0);
    if (req.pipeline) {
        const CompileResult compiled =
            req.pipeline->compile(prog, zeros);
        out.gates = compiled.circuit.totalGates();
        out.cnots = compiled.circuit.cnotCount();
        out.depth = compiled.circuit.depth();
        out.swaps = compiled.swapCount;
        out.overheadCnots = compiled.overheadCnots();
    } else {
        const Circuit chain =
            cachedChainCircuit(prog, zeros, req.includeHfPrep);
        out.gates = chain.totalGates();
        out.cnots = chain.cnotCount();
        out.depth = chain.depth();
    }

    out.shotsPerEstimate = req.shotsPerEstimate;
    out.shotBudget =
        req.shotsPerEstimate *
        uint64_t(req.iterations > 0 ? req.iterations : 0);
    return out;
}

} // namespace qcc
