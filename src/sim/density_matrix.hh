/**
 * @file
 * Density-matrix simulator with depolarizing noise channels, used for
 * the paper's noisy VQE case studies on LiH and NaH (Section VI-D).
 * The density matrix is stored in vectorized form: a 2^(2n) vector
 * whose low n index bits are the ket and high n bits the bra, so gates
 * act as U on the ket qubits and conj(U) on the bra qubits.
 */

#ifndef QCC_SIM_DENSITY_MATRIX_HH
#define QCC_SIM_DENSITY_MATRIX_HH

#include <complex>
#include <utility>
#include <vector>

#include "circuit/circuit.hh"
#include "pauli/pauli_sum.hh"
#include "sim/noise_model.hh"

namespace qcc {

/** Mixed-state simulator for up to ~10 qubits. */
class DensityMatrix
{
  public:
    /** |basis><basis| on n qubits. */
    explicit DensityMatrix(unsigned n, uint64_t basis = 0);

    /** Reset to |basis><basis| without reallocating. */
    void reset(uint64_t basis = 0);

    unsigned numQubits() const { return nQubits; }

    /** Matrix element <r| rho |c>. */
    std::complex<double> element(uint64_t r, uint64_t c) const;

    /**
     * Raw vectorized storage (low n index bits = ket, high n = bra).
     * Every channel and gate of this class is a linear map on this
     * vector, so callers may hold differences of density matrices in
     * a DensityMatrix and push them through gates/channels — the
     * batched gradient engine's pair-difference sweep does exactly
     * that. Writers must preserve the vector's length.
     */
    std::vector<std::complex<double>> &vectorized() { return vec; }
    const std::vector<std::complex<double>> &vectorized() const
    {
        return vec;
    }

    /** Apply a unitary gate (rho -> U rho U+). */
    void applyGate(const Gate &g);

    /**
     * One gate plus its noise channel, exactly as applyCircuit
     * inserts them: depolarize2 after a CNOT (three times for a
     * routed SWAP), depolarize1 after 1q gates when configured.
     * Exposed so batched gradient sweeps can replay circuit
     * suffixes gate by gate.
     */
    void applyGateNoisy(const Gate &g, const NoiseModel &noise);

    /**
     * Exact (noise-free) rho -> U rho U+ for U = exp(i theta P),
     * applied directly on the vectorized form: the rotation on the
     * ket index bits and its conjugate on the bra bits.
     */
    void applyPauliRotation(double theta, const PauliString &p);

    /**
     * Apply a circuit, inserting noise channels per the model.
     * Operands are validated once up front (throws SimError with a
     * gate-level diagnostic); on a noiseless model the ket and bra
     * sides are gate-fused and executed cache-blocked like the
     * statevector path (noise channels interleave with gates, so a
     * noisy replay always runs gate by gate).
     */
    void applyCircuit(const Circuit &c, const NoiseModel &noise = {});

    /** Same, with the fusion decision pinned by the caller. */
    void applyCircuit(const Circuit &c, const NoiseModel &noise,
                      bool fuse);

    /** Two-qubit depolarizing channel with probability p on (a, b). */
    void depolarize2(unsigned a, unsigned b, double p);

    /** Single-qubit depolarizing channel with probability p on q. */
    void depolarize1(unsigned q, double p);

    /**
     * Computational-basis outcome probabilities after conjugating a
     * copy of rho by the given single-qubit basis-change rotations
     * (X -> H, Y -> H Sdg): the diagonal of U rho U+, clamped to
     * [0, 1] against roundoff. Feeds the shot-sampling backend path.
     */
    std::vector<double> basisProbabilities(
        const std::vector<std::pair<unsigned, PauliOp>> &rotations)
        const;

    /** Tr(P rho). */
    double expectation(const PauliString &p) const;

    /** Tr(H rho) for a Pauli sum. */
    double expectation(const PauliSum &h) const;

    /** Tr(rho); should stay 1 up to roundoff. */
    double trace() const;

    /** Tr(rho^2), purity diagnostic. */
    double purity() const;

  private:
    /** Apply a 1q unitary on a raw index bit of the vectorized rho. */
    void applyRaw1q(unsigned bit_index, const std::complex<double> u[4]);

    /** Apply CNOT on raw (control, target) index bits. */
    void applyRawCnot(unsigned control_bit, unsigned target_bit);

    /** rho -> P rho P for a Pauli on qubit q (helper for channels). */
    void conjugatePauli1(unsigned q, PauliOp op);

    unsigned nQubits;
    std::vector<std::complex<double>> vec;
};

} // namespace qcc

#endif // QCC_SIM_DENSITY_MATRIX_HH
