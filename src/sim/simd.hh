/**
 * @file
 * Runtime-dispatched SIMD layer under the simulator kernels. The
 * public kernels in sim/kernels.hh split their sweeps into index
 * ranges (via common/parallel) and hand each range to one of the
 * primitives below; every primitive has a portable scalar
 * implementation and, on x86-64 with AVX2+FMA, a vectorized one
 * compiled with per-function target attributes (no special build
 * flags needed). Which one runs is decided once at startup:
 *
 *   - QCC_SIMD=0 forces the scalar fallback (the CI matrix pins one
 *     leg to this so the dispatch seam cannot rot);
 *   - QCC_SIMD=1 / unset uses the vector path when the CPU supports
 *     it (checked with __builtin_cpu_supports);
 *   - setSimdEnabled() overrides the environment at runtime, which
 *     is how the equivalence tests and bench_sim_micro exercise both
 *     paths inside one process.
 *
 * The range primitives are also the building blocks of the fused,
 * cache-blocked executor (sim/fusion.hh): they take explicit index
 * ranges and a global-offset parameter where bit-parity signs depend
 * on the absolute basis index, so the same code runs over a whole
 * 2^n array or over one L2-sized block of it.
 *
 * Index conventions match sim/kernels.hh: `b` ranges are raw basis
 * indices, `k` ranges are compacted pair indices expanded around a
 * pivot bit with expandBit.
 */

#ifndef QCC_SIM_SIMD_HH
#define QCC_SIM_SIMD_HH

#include <complex>
#include <cstddef>
#include <cstdint>

namespace qcc {
namespace kern {

using cplx = std::complex<double>;

/** True when this build carries the AVX2 kernel bodies (x86 only). */
bool simdCompiled();

/** True when the running CPU supports AVX2 + FMA. */
bool simdSupported();

/** True when the vector path is selected (support + QCC_SIMD). */
bool simdActive();

/**
 * Force the vector path on or off at runtime, overriding QCC_SIMD.
 * Enabling on an unsupported CPU is a silent no-op (scalar runs).
 * Used by the equivalence tests and the bench variants.
 */
void setSimdEnabled(bool enabled);

/** "avx2" or "scalar", for bench/report labels. */
const char *simdName();

/**
 * Range primitives. Each `xxx` dispatches to `xxxScalar` or the
 * AVX2 body according to simdActive(); the scalar forms are exposed
 * so tests can pin the oracle path explicitly.
 */
namespace ranges {

/** 2x2 unitary on pair-bit `bit` over compacted k in [k_lo, k_hi). */
void apply1q(cplx *amp, size_t k_lo, size_t k_hi, uint64_t bit,
             const cplx u[4]);
void apply1qScalar(cplx *amp, size_t k_lo, size_t k_hi, uint64_t bit,
                   const cplx u[4]);

/** diag(d0, d1) on `bit` over basis indices [b_lo, b_hi). */
void diag1q(cplx *amp, size_t b_lo, size_t b_hi, uint64_t bit,
            cplx d0, cplx d1);
void diag1qScalar(cplx *amp, size_t b_lo, size_t b_hi, uint64_t bit,
                  cplx d0, cplx d1);

/**
 * amp[b] *= scale * pattern[b & pat_mask] over [b_lo, b_hi).
 * pat_mask + 1 is a power of two (the pattern length); the fused
 * executor uses this to apply a whole run of diagonal gates as one
 * block sweep with the block-constant part folded into `scale`.
 */
void diagMul(cplx *amp, size_t b_lo, size_t b_hi,
             const cplx *pattern, uint64_t pat_mask, cplx scale);
void diagMulScalar(cplx *amp, size_t b_lo, size_t b_hi,
                   const cplx *pattern, uint64_t pat_mask, cplx scale);

/**
 * Pauli-rotation pair update over compacted k in [k_lo, k_hi) with
 * pivot = lowest set bit of x and the folded constants of
 * kern::applyPauliRotation: amp[b] += (c-1)*amp[b] + s_b*(vr+i*vi)*
 * amp[b^x], etc., where s_b = (-1)^{|z&b|}.
 */
void pauliRotPairs(cplx *amp, size_t k_lo, size_t k_hi, uint64_t x,
                   uint64_t z, uint64_t pivot, double c, double ur,
                   double ui, double vr, double vi);
void pauliRotPairsScalar(cplx *amp, size_t k_lo, size_t k_hi,
                         uint64_t x, uint64_t z, uint64_t pivot,
                         double c, double ur, double ui, double vr,
                         double vi);

/** Diagonal rotation (x == 0): amp[b] *= f_even or f_odd by the
 *  parity of |z & b| over [b_lo, b_hi). */
void pauliRotDiag(cplx *amp, size_t b_lo, size_t b_hi, uint64_t z,
                  cplx f_even, cplx f_odd);
void pauliRotDiagScalar(cplx *amp, size_t b_lo, size_t b_hi,
                        uint64_t z, cplx f_even, cplx f_odd);

/** Pair-compacted expectation partial sum (see kern::expectation). */
double expectPairs(const cplx *amp, size_t k_lo, size_t k_hi,
                   uint64_t x, uint64_t z, uint64_t pivot,
                   bool sigma_pos);
double expectPairsScalar(const cplx *amp, size_t k_lo, size_t k_hi,
                         uint64_t x, uint64_t z, uint64_t pivot,
                         bool sigma_pos);

/** sum_b (-1)^{|z&b|} |amp[b]|^2 over [b_lo, b_hi). */
double expectDiag(const cplx *amp, size_t b_lo, size_t b_hi,
                  uint64_t z);
double expectDiagScalar(const cplx *amp, size_t b_lo, size_t b_hi,
                        uint64_t z);

/**
 * Grouped diagonal-family partial sum over local indices
 * [b_lo, b_hi): sum_t w[t] * sum_b (-1)^{|zmask[t] & (b_offset|b)|}
 * * |amp[b]|^2. b_offset is the block base when amp points at one
 * block of a larger state (its set bits must be disjoint from the
 * local index range), 0 for whole-array sweeps.
 */
double groupExpect(const cplx *amp, size_t b_lo, size_t b_hi,
                   uint64_t b_offset, const double *w,
                   const uint64_t *zmask, size_t n_terms);
double groupExpectScalar(const cplx *amp, size_t b_lo, size_t b_hi,
                         uint64_t b_offset, const double *w,
                         const uint64_t *zmask, size_t n_terms);

/**
 * Single-qubit depolarizing sweep over one vectorized density
 * matrix. k in [k_lo, k_hi) compacts away the ket bit `kbit` and the
 * bra bit `bbit` (kbit < bbit required): each k names one 2x2
 * sub-block {base, base|kbit, base|bbit, base|kbit|bbit}, which is
 * scaled by `keep` with `mix * (partial trace)` added back on the
 * two diagonal entries. keep/mix are real, so the AVX2 body is plain
 * mul/fmadd on packed complex doubles.
 */
void depolarize1(cplx *amp, size_t k_lo, size_t k_hi, uint64_t kbit,
                 uint64_t bbit, double keep, double mix);
void depolarize1Scalar(cplx *amp, size_t k_lo, size_t k_hi,
                       uint64_t kbit, uint64_t bbit, double keep,
                       double mix);

/**
 * Two-qubit depolarizing sweep: k compacts away the two ket bits
 * (ka < kb) and two bra bits (ba < bb, both above kb); each k names
 * a 4x4 sub-block scaled by `keep` with `mix * (partial trace over
 * the four diagonal entries)` added on the diagonal.
 */
void depolarize2(cplx *amp, size_t k_lo, size_t k_hi, uint64_t ka,
                 uint64_t kb, uint64_t ba, uint64_t bb, double keep,
                 double mix);
void depolarize2Scalar(cplx *amp, size_t k_lo, size_t k_hi,
                       uint64_t ka, uint64_t kb, uint64_t ba,
                       uint64_t bb, double keep, double mix);

/** @{ Permutation range kernels (scalar; these are pure moves). */
void applyX(cplx *amp, size_t k_lo, size_t k_hi, uint64_t bit);
void applyCx(cplx *amp, size_t k_lo, size_t k_hi, uint64_t cbit,
             uint64_t tbit);
void applySwap(cplx *amp, size_t k_lo, size_t k_hi, uint64_t abit,
               uint64_t bbit);
/** @} */

} // namespace ranges
} // namespace kern
} // namespace qcc

#endif // QCC_SIM_SIMD_HH
