#include "sim/backend.hh"

#include "common/logging.hh"
#include "compiler/pipeline.hh"
#include "sim/fusion.hh"

namespace qcc {

SimOptions::SimOptions() : gateFusion(fusionEnabled())
{
}

void
SimBackend::applyAnsatz(const Ansatz &ansatz,
                        const std::vector<double> &params)
{
    if (params.size() != ansatz.nParams)
        fatal("SimBackend::applyAnsatz: parameter count mismatch");
    if (ansatz.nQubits != numQubits())
        fatal("SimBackend::applyAnsatz: width mismatch");
    prepare(ansatz.hfMask);
    for (const auto &r : ansatz.rotations)
        applyPauliRotation(params[r.param] * r.coeff, r.string);
}

void
DensityMatrixBackend::applyAnsatz(const Ansatz &ansatz,
                                  const std::vector<double> &params)
{
    if (params.size() != ansatz.nParams)
        fatal("DensityMatrixBackend::applyAnsatz: parameter count "
              "mismatch");
    if (ansatz.nQubits != numQubits())
        fatal("DensityMatrixBackend::applyAnsatz: width mismatch");
    // Execute the gate-level circuit (HF preparation included) so the
    // noise model charges every synthesized CNOT. The cached pipeline
    // path memoizes the structure, so the per-iteration work inside a
    // noisy VQE loop is an angle rebind rather than a resynthesis.
    Circuit c = cachedChainCircuit(ansatz, params, true);
    prepare(0);
    applyCircuit(c);
}

} // namespace qcc
