#include "sim/backend.hh"

#include "common/logging.hh"
#include "compiler/chain_synthesis.hh"

namespace qcc {

void
SimBackend::applyAnsatz(const Ansatz &ansatz,
                        const std::vector<double> &params)
{
    if (params.size() != ansatz.nParams)
        fatal("SimBackend::applyAnsatz: parameter count mismatch");
    if (ansatz.nQubits != numQubits())
        fatal("SimBackend::applyAnsatz: width mismatch");
    prepare(ansatz.hfMask);
    for (const auto &r : ansatz.rotations)
        applyPauliRotation(params[r.param] * r.coeff, r.string);
}

void
DensityMatrixBackend::applyAnsatz(const Ansatz &ansatz,
                                  const std::vector<double> &params)
{
    if (params.size() != ansatz.nParams)
        fatal("DensityMatrixBackend::applyAnsatz: parameter count "
              "mismatch");
    if (ansatz.nQubits != numQubits())
        fatal("DensityMatrixBackend::applyAnsatz: width mismatch");
    // Execute the gate-level circuit (HF preparation included) so the
    // noise model charges every synthesized CNOT.
    Circuit c = synthesizeChainCircuit(ansatz, params, true);
    prepare(0);
    applyCircuit(c);
}

} // namespace qcc
