#include "sim/statevector.hh"

#include <bit>
#include <cmath>

#include "common/logging.hh"

namespace qcc {

namespace {

/**
 * Phase picked up when the canonical Pauli (x, z) maps |b> to |b ^ x>:
 * P|b> = i^{|x&z|} (-1)^{|z & b|} |b ^ x>.
 */
inline cplx
pauliPhase(uint64_t x, uint64_t z, uint64_t b)
{
    int e = std::popcount(x & z) + 2 * std::popcount(z & b);
    static const cplx table[4] = {{1, 0}, {0, 1}, {-1, 0}, {0, -1}};
    return table[e & 3];
}

} // namespace

Statevector::Statevector(unsigned n) : Statevector(n, 0)
{
}

Statevector::Statevector(unsigned n, uint64_t basis)
    : nQubits(n), amp(size_t{1} << n, cplx(0, 0))
{
    if (n > 28)
        fatal("Statevector: state too large");
    if (basis >= amp.size())
        panic("Statevector: basis state out of range");
    amp[basis] = 1.0;
}

void
Statevector::apply1q(unsigned q, const cplx u[4])
{
    const uint64_t bit = 1ull << q;
    const size_t n = amp.size();
    for (size_t b = 0; b < n; ++b) {
        if (b & bit)
            continue;
        cplx a0 = amp[b];
        cplx a1 = amp[b | bit];
        amp[b] = u[0] * a0 + u[1] * a1;
        amp[b | bit] = u[2] * a0 + u[3] * a1;
    }
}

void
Statevector::applyGate(const Gate &g)
{
    switch (g.kind) {
      case GateKind::CNOT: {
          const uint64_t cb = 1ull << g.q0, tb = 1ull << g.q1;
          const size_t n = amp.size();
          for (size_t b = 0; b < n; ++b)
              if ((b & cb) && !(b & tb))
                  std::swap(amp[b], amp[b | tb]);
          return;
      }
      case GateKind::SWAP: {
          const uint64_t ab = 1ull << g.q0, bb = 1ull << g.q1;
          const size_t n = amp.size();
          for (size_t b = 0; b < n; ++b)
              if ((b & ab) && !(b & bb))
                  std::swap(amp[b ^ ab ^ bb], amp[b]);
          return;
      }
      default: {
          cplx u[4];
          gateMatrix(g.kind, g.angle, u);
          apply1q(g.q0, u);
          return;
      }
    }
}

void
Statevector::applyCircuit(const Circuit &c)
{
    if (c.numQubits() != nQubits)
        panic("Statevector::applyCircuit: width mismatch");
    for (const auto &g : c.gates())
        applyGate(g);
}

void
Statevector::applyPauliRotation(double theta, const PauliString &p)
{
    if (p.numQubits() != nQubits)
        panic("applyPauliRotation: width mismatch");
    const uint64_t x = p.xMask(), z = p.zMask();
    const cplx c = std::cos(theta);
    const cplx is = cplx(0, std::sin(theta));
    const size_t n = amp.size();

    if (x == 0) {
        // Diagonal string: pure per-amplitude phase.
        for (size_t b = 0; b < n; ++b)
            amp[b] *= c + is * pauliPhase(x, z, b);
        return;
    }
    for (size_t b = 0; b < n; ++b) {
        const size_t b2 = b ^ x;
        if (b2 < b)
            continue;
        cplx a = amp[b], a2 = amp[b2];
        // exp(i t P)|psi>[b] = cos(t) psi[b] + i sin(t) (P psi)[b]
        // and (P psi)[b] = phase(b2) psi[b2] because P|b2> lands on b.
        amp[b] = c * a + is * pauliPhase(x, z, b2) * a2;
        amp[b2] = c * a2 + is * pauliPhase(x, z, b) * a;
    }
}

void
Statevector::applyPauli(const PauliString &p)
{
    if (p.numQubits() != nQubits)
        panic("applyPauli: width mismatch");
    const uint64_t x = p.xMask(), z = p.zMask();
    const size_t n = amp.size();
    if (x == 0) {
        for (size_t b = 0; b < n; ++b)
            amp[b] *= pauliPhase(x, z, b);
        return;
    }
    for (size_t b = 0; b < n; ++b) {
        const size_t b2 = b ^ x;
        if (b2 < b)
            continue;
        cplx a = amp[b], a2 = amp[b2];
        amp[b] = pauliPhase(x, z, b2) * a2;
        amp[b2] = pauliPhase(x, z, b) * a;
    }
}

void
Statevector::accumulatePauli(cplx w, const PauliString &p,
                             std::vector<cplx> &out) const
{
    if (out.size() != amp.size())
        panic("accumulatePauli: dimension mismatch");
    const uint64_t x = p.xMask(), z = p.zMask();
    const size_t n = amp.size();
    for (size_t b = 0; b < n; ++b)
        out[b] += w * pauliPhase(x, z, b ^ x) * amp[b ^ x];
}

double
Statevector::expectation(const PauliString &p) const
{
    const uint64_t x = p.xMask(), z = p.zMask();
    const size_t n = amp.size();
    cplx s = 0.0;
    for (size_t b = 0; b < n; ++b)
        s += std::conj(amp[b]) * pauliPhase(x, z, b ^ x) * amp[b ^ x];
    return s.real();
}

double
Statevector::expectation(const PauliSum &h) const
{
    if (h.numQubits() != nQubits)
        panic("expectation: width mismatch");
    std::vector<cplx> hpsi(amp.size(), cplx(0, 0));
    for (const auto &t : h.terms())
        accumulatePauli(t.coeff, t.string, hpsi);
    cplx s = 0.0;
    for (size_t b = 0; b < amp.size(); ++b)
        s += std::conj(amp[b]) * hpsi[b];
    return s.real();
}

cplx
Statevector::inner(const Statevector &other) const
{
    if (other.amp.size() != amp.size())
        panic("inner: dimension mismatch");
    cplx s = 0.0;
    for (size_t b = 0; b < amp.size(); ++b)
        s += std::conj(amp[b]) * other.amp[b];
    return s;
}

double
Statevector::norm() const
{
    double s = 0.0;
    for (const auto &a : amp)
        s += std::norm(a);
    return std::sqrt(s);
}

void
Statevector::normalize()
{
    double n = norm();
    if (n < 1e-300)
        panic("normalize: zero state");
    for (auto &a : amp)
        a /= n;
}

void
gateMatrix(GateKind k, double angle, cplx out[4])
{
    const cplx i(0, 1);
    const double c = std::cos(angle / 2), s = std::sin(angle / 2);
    switch (k) {
      case GateKind::X:
        out[0] = 0; out[1] = 1; out[2] = 1; out[3] = 0;
        return;
      case GateKind::Y:
        out[0] = 0; out[1] = -i; out[2] = i; out[3] = 0;
        return;
      case GateKind::Z:
        out[0] = 1; out[1] = 0; out[2] = 0; out[3] = -1;
        return;
      case GateKind::H: {
          const double r = 1.0 / std::sqrt(2.0);
          out[0] = r; out[1] = r; out[2] = r; out[3] = -r;
          return;
      }
      case GateKind::S:
        out[0] = 1; out[1] = 0; out[2] = 0; out[3] = i;
        return;
      case GateKind::Sdg:
        out[0] = 1; out[1] = 0; out[2] = 0; out[3] = -i;
        return;
      case GateKind::RX:
        out[0] = c; out[1] = -i * s; out[2] = -i * s; out[3] = c;
        return;
      case GateKind::RY:
        out[0] = c; out[1] = -s; out[2] = s; out[3] = c;
        return;
      case GateKind::RZ:
        out[0] = std::exp(-i * (angle / 2));
        out[1] = 0;
        out[2] = 0;
        out[3] = std::exp(i * (angle / 2));
        return;
      default:
        panic("gateMatrix: not a single-qubit kind");
    }
}

std::vector<std::vector<cplx>>
circuitUnitary(const Circuit &c)
{
    const unsigned n = c.numQubits();
    if (n > 12)
        fatal("circuitUnitary: too many qubits for dense unitary");
    const size_t dim = size_t{1} << n;
    std::vector<std::vector<cplx>> u(dim, std::vector<cplx>(dim));
    for (size_t col = 0; col < dim; ++col) {
        Statevector sv(n, col);
        sv.applyCircuit(c);
        for (size_t row = 0; row < dim; ++row)
            u[row][col] = sv.amplitudes()[row];
    }
    return u;
}

} // namespace qcc
