#include "sim/statevector.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "pauli/grouping.hh"
#include "sim/fusion.hh"
#include "sim/kernels.hh"

namespace qcc {

Statevector::Statevector(unsigned n) : Statevector(n, 0)
{
}

Statevector::Statevector(unsigned n, uint64_t basis)
    : nQubits(n), amp(size_t{1} << n, cplx(0, 0))
{
    if (n > 28)
        fatal("Statevector: state too large");
    if (basis >= amp.size())
        panic("Statevector: basis state out of range");
    amp[basis] = 1.0;
}

Statevector::Statevector(unsigned n, uint64_t basis,
                         std::vector<cplx> &&buffer)
    : nQubits(n), amp(std::move(buffer))
{
    if (n > 28)
        fatal("Statevector: state too large");
    amp.resize(size_t{1} << n);
    if (basis >= amp.size())
        panic("Statevector: basis state out of range");
    reset(basis);
}

void
Statevector::reset(uint64_t basis)
{
    if (basis >= amp.size())
        panic("Statevector::reset: basis state out of range");
    std::fill(amp.begin(), amp.end(), cplx(0, 0));
    amp[basis] = 1.0;
}

void
Statevector::apply1q(unsigned q, const cplx u[4])
{
    kern::apply1q(amp.data(), amp.size(), q, u);
}

void
Statevector::applyGate(const Gate &g)
{
    const size_t dim = amp.size();
    switch (g.kind) {
      case GateKind::X:
        kern::applyX(amp.data(), dim, g.q0);
        return;
      case GateKind::Z:
        kern::applyDiag1q(amp.data(), dim, g.q0, 1.0, -1.0);
        return;
      case GateKind::S:
        kern::applyDiag1q(amp.data(), dim, g.q0, 1.0, cplx(0, 1));
        return;
      case GateKind::Sdg:
        kern::applyDiag1q(amp.data(), dim, g.q0, 1.0, cplx(0, -1));
        return;
      case GateKind::RZ: {
          const cplx i(0, 1);
          kern::applyDiag1q(amp.data(), dim, g.q0,
                            std::exp(-i * (g.angle / 2)),
                            std::exp(i * (g.angle / 2)));
          return;
      }
      case GateKind::CNOT:
        kern::applyCx(amp.data(), dim, g.q0, g.q1);
        return;
      case GateKind::SWAP:
        kern::applySwap(amp.data(), dim, g.q0, g.q1);
        return;
      default: {
          cplx u[4];
          gateMatrix(g.kind, g.angle, u);
          kern::apply1q(amp.data(), dim, g.q0, u);
          return;
      }
    }
}

void
Statevector::applyCircuit(const Circuit &c)
{
    applyCircuit(c, fusionEnabled());
}

void
Statevector::applyCircuit(const Circuit &c, bool fuse)
{
    validateCircuitOrThrow(c, nQubits);
    // Fusion pays off once there is something to merge; trivial
    // circuits replay gate-by-gate.
    if (!fuse || c.size() < 4) {
        for (const auto &g : c.gates())
            applyGate(g);
        return;
    }
    applyFusedProgram(amp.data(), fuseCircuit(c));
}

void
Statevector::applyPauliRotation(double theta, const PauliString &p)
{
    if (p.numQubits() != nQubits)
        panic("applyPauliRotation: width mismatch");
    kern::applyPauliRotation(amp.data(), amp.size(), p.xMask(),
                             p.zMask(), theta);
}

void
Statevector::applyPauli(const PauliString &p)
{
    if (p.numQubits() != nQubits)
        panic("applyPauli: width mismatch");
    kern::applyPauli(amp.data(), amp.size(), p.xMask(), p.zMask());
}

void
Statevector::accumulatePauli(cplx w, const PauliString &p,
                             std::vector<cplx> &out) const
{
    if (out.size() != amp.size())
        panic("accumulatePauli: dimension mismatch");
    kern::accumulatePauli(amp.data(), amp.size(), p.xMask(), p.zMask(),
                          w, out.data());
}

double
Statevector::expectation(const PauliString &p) const
{
    if (p.numQubits() != nQubits)
        panic("expectation: width mismatch");
    return kern::expectation(amp.data(), amp.size(), p.xMask(),
                             p.zMask());
}

std::vector<double>
Statevector::basisProbabilities(
    const std::vector<std::pair<unsigned, PauliOp>> &rotations) const
{
    const size_t dim = amp.size();
    std::vector<cplx> rotated;
    const cplx *state = amp.data();
    if (!rotations.empty()) {
        rotated = amp;
        for (const auto &[q, op] : rotations) {
            if (q >= nQubits)
                panic("basisProbabilities: qubit out of range");
            cplx u[4];
            basisChangeMatrix(op, u);
            kern::apply1q(rotated.data(), dim, q, u);
        }
        state = rotated.data();
    }
    std::vector<double> probs(dim);
    parallelFor(0, dim, [&](size_t lo, size_t hi) {
        for (size_t b = lo; b < hi; ++b)
            probs[b] = std::norm(state[b]);
    });
    return probs;
}

double
Statevector::expectation(const PauliSum &h) const
{
    if (h.numQubits() != nQubits)
        panic("expectation: width mismatch");
    // One read-only kernel pass per term; unlike the historical
    // H|psi>-accumulation this allocates no 2^n scratch vector.
    double e = 0.0;
    for (const auto &t : h.terms())
        e += t.coeff.real() *
             kern::expectation(amp.data(), amp.size(),
                               t.string.xMask(), t.string.zMask());
    return e;
}

cplx
Statevector::inner(const Statevector &other) const
{
    if (other.amp.size() != amp.size())
        panic("inner: dimension mismatch");
    const cplx *a = amp.data(), *b = other.amp.data();
    return parallelReduce(
        0, amp.size(), cplx(0, 0), [=](size_t lo, size_t hi) {
            cplx s = 0.0;
            for (size_t i = lo; i < hi; ++i)
                s += std::conj(a[i]) * b[i];
            return s;
        });
}

double
Statevector::norm() const
{
    const cplx *a = amp.data();
    double s = parallelReduce(
        0, amp.size(), 0.0, [=](size_t lo, size_t hi) {
            double acc = 0.0;
            for (size_t i = lo; i < hi; ++i)
                acc += std::norm(a[i]);
            return acc;
        });
    return std::sqrt(s);
}

void
Statevector::normalize()
{
    double n = norm();
    if (n < 1e-300)
        panic("normalize: zero state");
    for (auto &a : amp)
        a /= n;
}

void
gateMatrix(GateKind k, double angle, cplx out[4])
{
    const cplx i(0, 1);
    const double c = std::cos(angle / 2), s = std::sin(angle / 2);
    switch (k) {
      case GateKind::X:
        out[0] = 0; out[1] = 1; out[2] = 1; out[3] = 0;
        return;
      case GateKind::Y:
        out[0] = 0; out[1] = -i; out[2] = i; out[3] = 0;
        return;
      case GateKind::Z:
        out[0] = 1; out[1] = 0; out[2] = 0; out[3] = -1;
        return;
      case GateKind::H: {
          const double r = 1.0 / std::sqrt(2.0);
          out[0] = r; out[1] = r; out[2] = r; out[3] = -r;
          return;
      }
      case GateKind::S:
        out[0] = 1; out[1] = 0; out[2] = 0; out[3] = i;
        return;
      case GateKind::Sdg:
        out[0] = 1; out[1] = 0; out[2] = 0; out[3] = -i;
        return;
      case GateKind::RX:
        out[0] = c; out[1] = -i * s; out[2] = -i * s; out[3] = c;
        return;
      case GateKind::RY:
        out[0] = c; out[1] = -s; out[2] = s; out[3] = c;
        return;
      case GateKind::RZ:
        out[0] = std::exp(-i * (angle / 2));
        out[1] = 0;
        out[2] = 0;
        out[3] = std::exp(i * (angle / 2));
        return;
      default:
        panic("gateMatrix: not a single-qubit kind");
    }
}

std::vector<std::vector<cplx>>
circuitUnitary(const Circuit &c)
{
    const unsigned n = c.numQubits();
    if (n > 12)
        fatal("circuitUnitary: too many qubits for dense unitary");
    const size_t dim = size_t{1} << n;
    std::vector<std::vector<cplx>> u(dim, std::vector<cplx>(dim));
    for (size_t col = 0; col < dim; ++col) {
        Statevector sv(n, col);
        sv.applyCircuit(c);
        for (size_t row = 0; row < dim; ++row)
            u[row][col] = sv.amplitudes()[row];
    }
    return u;
}

} // namespace qcc
