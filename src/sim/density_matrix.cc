#include "sim/density_matrix.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.hh"
#include "pauli/grouping.hh"
#include "sim/fusion.hh"
#include "sim/kernels.hh"
#include "sim/statevector.hh"

namespace qcc {

using std::complex;

DensityMatrix::DensityMatrix(unsigned n, uint64_t basis)
    : nQubits(n), vec(size_t{1} << (2 * n), complex<double>(0, 0))
{
    if (n > 13)
        fatal("DensityMatrix: state too large");
    if (basis >= (uint64_t{1} << n))
        panic("DensityMatrix: basis state out of range");
    vec[basis | (basis << n)] = 1.0;
}

void
DensityMatrix::reset(uint64_t basis)
{
    if (basis >= (uint64_t{1} << nQubits))
        panic("DensityMatrix::reset: basis state out of range");
    std::fill(vec.begin(), vec.end(), complex<double>(0, 0));
    vec[basis | (basis << nQubits)] = 1.0;
}

complex<double>
DensityMatrix::element(uint64_t r, uint64_t c) const
{
    return vec[r | (c << nQubits)];
}

void
DensityMatrix::applyRaw1q(unsigned bit_index, const complex<double> u[4])
{
    kern::apply1q(vec.data(), vec.size(), bit_index, u);
}

void
DensityMatrix::applyRawCnot(unsigned control_bit, unsigned target_bit)
{
    kern::applyCx(vec.data(), vec.size(), control_bit, target_bit);
}

void
DensityMatrix::applyGate(const Gate &g)
{
    switch (g.kind) {
      case GateKind::CNOT:
        applyRawCnot(g.q0, g.q1);
        applyRawCnot(g.q0 + nQubits, g.q1 + nQubits);
        return;
      case GateKind::SWAP: {
          // SWAP = three alternating CNOTs on both ket and bra sides.
          applyRawCnot(g.q0, g.q1);
          applyRawCnot(g.q1, g.q0);
          applyRawCnot(g.q0, g.q1);
          applyRawCnot(g.q0 + nQubits, g.q1 + nQubits);
          applyRawCnot(g.q1 + nQubits, g.q0 + nQubits);
          applyRawCnot(g.q0 + nQubits, g.q1 + nQubits);
          return;
      }
      default: {
          complex<double> u[4], uc[4];
          gateMatrix(g.kind, g.angle, u);
          for (int i = 0; i < 4; ++i)
              uc[i] = std::conj(u[i]);
          applyRaw1q(g.q0, u);
          applyRaw1q(g.q0 + nQubits, uc);
          return;
      }
    }
}

void
DensityMatrix::applyPauliRotation(double theta, const PauliString &p)
{
    if (p.numQubits() != nQubits)
        panic("DensityMatrix::applyPauliRotation: width mismatch");
    const uint64_t x = p.xMask(), z = p.zMask();
    // Ket side: U = exp(i theta P). Bra side: conj(U) = exp(-i theta
    // conj(P)) with conj(P) = (-1)^{|x&z|} P, acting on the shifted
    // masks.
    kern::applyPauliRotation(vec.data(), vec.size(), x, z, theta);
    const double braTheta =
        (std::popcount(x & z) & 1) ? theta : -theta;
    kern::applyPauliRotation(vec.data(), vec.size(), x << nQubits,
                             z << nQubits, braTheta);
}

void
DensityMatrix::applyGateNoisy(const Gate &g, const NoiseModel &noise)
{
    applyGate(g);
    if (noise.isNoiseless())
        return;
    if (g.kind == GateKind::CNOT) {
        depolarize2(g.q0, g.q1, noise.cnotDepolarizing);
    } else if (g.kind == GateKind::SWAP) {
        // A routed SWAP is three CNOTs on hardware: apply the
        // two-qubit channel three times.
        for (int i = 0; i < 3; ++i)
            depolarize2(g.q0, g.q1, noise.cnotDepolarizing);
    } else if (noise.singleQubitDepolarizing > 0.0) {
        depolarize1(g.q0, noise.singleQubitDepolarizing);
    }
}

void
DensityMatrix::applyCircuit(const Circuit &c, const NoiseModel &noise)
{
    applyCircuit(c, noise, fusionEnabled());
}

void
DensityMatrix::applyCircuit(const Circuit &c, const NoiseModel &noise,
                            bool fuse)
{
    validateCircuitOrThrow(c, nQubits);
    // Channels interleave with gates, so only a noiseless replay can
    // reorder/merge; rho -> U rho U+ doubles every gate onto the bra
    // bits (conjugated matrices, shifted masks) through one builder.
    if (!fuse || !noise.isNoiseless() || c.size() < 4) {
        for (const auto &g : c.gates())
            applyGateNoisy(g, noise);
        return;
    }
    FusionBuilder fb(2 * nQubits);
    const complex<double> i(0, 1);
    for (const Gate &g : c.gates()) {
        switch (g.kind) {
          case GateKind::Z:
            fb.addDiag(g.q0, 1.0, -1.0);
            fb.addDiag(g.q0 + nQubits, 1.0, -1.0);
            break;
          case GateKind::S:
            fb.addDiag(g.q0, 1.0, i);
            fb.addDiag(g.q0 + nQubits, 1.0, -i);
            break;
          case GateKind::Sdg:
            fb.addDiag(g.q0, 1.0, -i);
            fb.addDiag(g.q0 + nQubits, 1.0, i);
            break;
          case GateKind::RZ: {
              const complex<double> d0 = std::exp(-i * (g.angle / 2));
              const complex<double> d1 = std::exp(i * (g.angle / 2));
              fb.addDiag(g.q0, d0, d1);
              fb.addDiag(g.q0 + nQubits, std::conj(d0),
                         std::conj(d1));
              break;
          }
          case GateKind::CNOT:
            fb.addCnot(g.q0, g.q1);
            fb.addCnot(g.q0 + nQubits, g.q1 + nQubits);
            break;
          case GateKind::SWAP:
            fb.addSwap(g.q0, g.q1);
            fb.addSwap(g.q0 + nQubits, g.q1 + nQubits);
            break;
          default: {
              complex<double> u[4], uc[4];
              gateMatrix(g.kind, g.angle, u);
              for (int t = 0; t < 4; ++t)
                  uc[t] = std::conj(u[t]);
              fb.add1q(g.q0, u);
              fb.add1q(g.q0 + nQubits, uc);
              break;
          }
        }
    }
    FusedProgram p = fb.build();
    p.sourceGates = c.size();
    applyFusedProgram(vec.data(), p);
}

void
DensityMatrix::depolarize2(unsigned a, unsigned b, double p)
{
    // Uniform two-qubit depolarizing channel:
    //   D(rho) = (1-p) rho + p/15 sum_{(P,Q) != II} (P@Q) rho (P@Q)
    //          = (1 - 16p/15) rho + (16p/15) (I4/4 @ Tr_ab rho),
    // swept as disjoint 4x4 sub-blocks by the dispatched kernel.
    kern::depolarize2(vec.data(), vec.size(), a, b, nQubits, p);
}

void
DensityMatrix::depolarize1(unsigned q, double p)
{
    // D(rho) = (1 - 4p/3) rho + (4p/3)(I/2 @ Tr_q rho).
    kern::depolarize1(vec.data(), vec.size(), q, nQubits, p);
}

void
DensityMatrix::conjugatePauli1(unsigned q, PauliOp op)
{
    complex<double> u[4], uc[4];
    GateKind k = op == PauliOp::X   ? GateKind::X
                 : op == PauliOp::Y ? GateKind::Y
                                    : GateKind::Z;
    gateMatrix(k, 0.0, u);
    for (int i = 0; i < 4; ++i)
        uc[i] = std::conj(u[i]);
    applyRaw1q(q, u);
    applyRaw1q(q + nQubits, uc);
}

std::vector<double>
DensityMatrix::basisProbabilities(
    const std::vector<std::pair<unsigned, PauliOp>> &rotations) const
{
    std::vector<complex<double>> rho = vec;
    for (const auto &[q, op] : rotations) {
        if (q >= nQubits)
            panic("basisProbabilities: qubit out of range");
        complex<double> u[4], uc[4];
        basisChangeMatrix(op, u);
        for (int i = 0; i < 4; ++i)
            uc[i] = std::conj(u[i]);
        kern::apply1q(rho.data(), rho.size(), q, u);
        kern::apply1q(rho.data(), rho.size(), q + nQubits, uc);
    }
    const uint64_t dim = uint64_t{1} << nQubits;
    std::vector<double> probs(dim);
    for (uint64_t b = 0; b < dim; ++b) {
        // Diagonal entries of a positive-semidefinite rho are real;
        // clamp the tiny negative excursions roundoff produces so
        // sampling never sees a negative weight.
        probs[b] =
            std::max(0.0, rho[b | (b << nQubits)].real());
    }
    return probs;
}

double
DensityMatrix::expectation(const PauliString &p) const
{
    if (p.numQubits() != nQubits)
        panic("DensityMatrix::expectation: width mismatch");
    const uint64_t x = p.xMask(), z = p.zMask();
    const uint64_t dim = uint64_t{1} << nQubits;

    // Tr(P rho) = sum_b <b|P rho|b> = sum_b phase(b^x) rho[b^x, b]
    // with P|c> = i^{|x&z|} (-1)^{|z&c|} |c^x>.
    static const complex<double> table[4] = {
        {1, 0}, {0, 1}, {-1, 0}, {0, -1}
    };
    complex<double> s = 0.0;
    const int yPhase = std::popcount(x & z);
    for (uint64_t b = 0; b < dim; ++b) {
        const uint64_t bx = b ^ x;
        const int e = (yPhase + 2 * std::popcount(z & bx)) & 3;
        s += table[e] * vec[bx | (b << nQubits)];
    }
    return s.real();
}

double
DensityMatrix::expectation(const PauliSum &h) const
{
    double e = 0.0;
    for (const auto &t : h.terms())
        e += t.coeff.real() * expectation(t.string);
    return e;
}

double
DensityMatrix::trace() const
{
    const uint64_t dim = uint64_t{1} << nQubits;
    complex<double> s = 0.0;
    for (uint64_t b = 0; b < dim; ++b)
        s += vec[b | (b << nQubits)];
    return s.real();
}

double
DensityMatrix::purity() const
{
    // Tr(rho^2) = sum_{r,c} |rho[r,c]|^2 for Hermitian rho.
    double s = 0.0;
    for (const auto &v : vec)
        s += std::norm(v);
    return s;
}

} // namespace qcc
