/**
 * @file
 * Gate fusion and cache-blocked execution for circuit replay. The
 * builder rewrites a gate stream into a shorter list of fused ops:
 *
 *  - runs of diagonal gates (Z, S, Sdg, RZ) coalesce into one Diag op
 *    holding per-qubit diag(d0, d1) factors, applied later as a
 *    single sweep no matter how many gates contributed;
 *  - consecutive 1q gates on the same qubit (with only commuting ops
 *    in between) merge into a single 2x2 matrix product, and pending
 *    diagonal factors on that qubit are absorbed into the matrix;
 *  - CNOT/SWAP pass through but participate in the commuting
 *    look-back (a diagonal on the control commutes with a CNOT).
 *
 * The executor then walks the amplitude array in L2-sized blocks:
 * maximal runs of block-local ops (every touched bit below the block
 * width, Diag always, CNOT whose high control only selects blocks)
 * are applied per block while it is cache-hot, so a fused batch costs
 * one memory pass instead of one per gate. Ops that cross blocks run
 * through the global kernels between segments.
 *
 * This is also where circuit validation lives: applyCircuit entry
 * points validate every gate operand against the register width once
 * and throw SimError with a VerifyIssue-style diagnostic (gate index
 * + message) instead of asserting deep inside a kernel.
 *
 * QCC_FUSION=0 disables fusion globally (per-gate replay, as before);
 * setFusionEnabled() overrides at runtime for tests and benches.
 */

#ifndef QCC_SIM_FUSION_HH
#define QCC_SIM_FUSION_HH

#include <array>
#include <complex>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "circuit/circuit.hh"

namespace qcc {

using cplx = std::complex<double>;

/** Diagnostic for a rejected circuit (mirrors compiler VerifyIssue). */
struct SimIssue {
    std::string what;
    long gateIndex = -1;
};

/** Thrown by applyCircuit-style entry points on invalid circuits. */
class SimError : public std::runtime_error {
  public:
    explicit SimError(SimIssue issue);
    const SimIssue &issue() const { return issue_; }

  private:
    SimIssue issue_;
};

/**
 * Validate every gate of `c` against a register of `width` qubits:
 * operands in range, two-qubit operands distinct, and the circuit's
 * own width equal to the register's. Returns the first problem found,
 * or nullopt when the circuit is safe to execute.
 */
std::optional<SimIssue> validateCircuit(const Circuit &c,
                                        unsigned width);

/** validateCircuit + throw SimError on failure. */
void validateCircuitOrThrow(const Circuit &c, unsigned width);

/** One per-qubit diagonal factor of a Diag op. */
struct DiagFactor {
    unsigned bit = 0; // index bit position
    cplx d0{1.0, 0.0}, d1{1.0, 0.0};
};

/** One fused operation over index-bit positions. */
struct FusedOp {
    enum class Kind : uint8_t { OneQ, Diag, Cnot, Swap };
    Kind kind = Kind::OneQ;
    unsigned b0 = 0, b1 = 0; // OneQ: b0; Cnot: (control, target)
    cplx u[4] = {};          // OneQ matrix, row-major
    uint32_t fBegin = 0, fEnd = 0; // Diag: span into factors
};

/** A fused program over an amplitude array of 2^widthBits entries. */
struct FusedProgram {
    unsigned widthBits = 0;
    std::vector<FusedOp> ops;
    std::vector<DiagFactor> factors;
    size_t sourceGates = 0;

    bool empty() const { return ops.empty(); }
};

/**
 * Incremental fusion over index-bit positions. Callers stream gates
 * in program order; build() returns the fused program. The builder
 * works on raw bit positions so the density matrix can feed ket and
 * bra halves through one builder (bra ops on bit + n).
 */
class FusionBuilder {
  public:
    explicit FusionBuilder(unsigned width_bits);

    void add1q(unsigned bit, const cplx u[4]);
    void addDiag(unsigned bit, cplx d0, cplx d1);
    void addCnot(unsigned control, unsigned target);
    void addSwap(unsigned a, unsigned b);

    FusedProgram build();

  private:
    struct Pending {
        FusedOp::Kind kind;
        unsigned b0 = 0, b1 = 0;
        cplx u[4] = {};
        std::vector<DiagFactor> factors; // Diag only
    };

    bool touches(const Pending &op, unsigned bit) const;
    Pending *findMergeable1q(unsigned bit);
    Pending *findMergeableDiag(unsigned bit);

    unsigned width;
    std::vector<Pending> pending;
};

/**
 * Translate a circuit into a fused program over the statevector
 * index bits. The circuit must already be validated.
 */
FusedProgram fuseCircuit(const Circuit &c);

/**
 * Execute a fused program over amp[0 .. 2^p.widthBits), walking the
 * array in cache-sized blocks per segment of block-local ops.
 */
void applyFusedProgram(cplx *amp, const FusedProgram &p);

/** Global fusion toggle: QCC_FUSION env (default on) + override. */
bool fusionEnabled();
void setFusionEnabled(bool enabled);

/**
 * Grouped expectation of a rotated qubit-wise-commuting family:
 * equivalent to copying `amp`, applying the 2x2 basis rotations
 * (bit, matrix) and summing diagonalGroupExpectation over the result,
 * but executed block-at-a-time against a small scratch buffer so the
 * state is read once and never copied in full (when every rotation
 * bit is block-local). Used by ExpectationEngine's family sweep.
 */
double rotatedGroupExpectation(
    const cplx *amp, size_t dim,
    const std::vector<std::pair<unsigned, std::array<cplx, 4>>>
        &rotations,
    const double *w, const uint64_t *zmask, size_t n_terms);

} // namespace qcc

#endif // QCC_SIM_FUSION_HH
