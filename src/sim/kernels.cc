#include "sim/kernels.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <utility>

#include "common/parallel.hh"
#include "sim/simd.hh"

namespace qcc {
namespace kern {

namespace {

/** i^{e mod 4}. */
inline cplx
iPow(int e)
{
    static const cplx table[4] = {{1, 0}, {0, 1}, {-1, 0}, {0, -1}};
    return table[e & 3];
}

/**
 * Seed reference phase: P|b> = i^{|x&z|} (-1)^{|z & b|} |b ^ x| for
 * the canonical Pauli (x, z).
 */
inline cplx
pauliPhase(uint64_t x, uint64_t z, uint64_t b)
{
    return iPow(std::popcount(x & z) + 2 * std::popcount(z & b));
}

/** +1 / -1 according to the parity of |m & b|. */
inline double
paritySign(uint64_t m, uint64_t b)
{
    return (std::popcount(m & b) & 1) ? -1.0 : 1.0;
}

} // namespace

void
apply1q(cplx *amp, size_t dim, unsigned q, const cplx u[4])
{
    const uint64_t bit = 1ull << q;
    const cplx uc[4] = {u[0], u[1], u[2], u[3]};
    parallelFor(0, dim / 2, [=](size_t lo, size_t hi) {
        ranges::apply1q(amp, lo, hi, bit, uc);
    });
}

void
applyDiag1q(cplx *amp, size_t dim, unsigned q, cplx d0, cplx d1)
{
    const uint64_t bit = 1ull << q;
    parallelFor(0, dim, [=](size_t lo, size_t hi) {
        ranges::diag1q(amp, lo, hi, bit, d0, d1);
    });
}

void
applyX(cplx *amp, size_t dim, unsigned q)
{
    const uint64_t bit = 1ull << q;
    parallelFor(0, dim / 2, [=](size_t lo, size_t hi) {
        ranges::applyX(amp, lo, hi, bit);
    });
}

void
applyCx(cplx *amp, size_t dim, unsigned control, unsigned target)
{
    const uint64_t cb = 1ull << control, tb = 1ull << target;
    parallelFor(0, dim / 2, [=](size_t lo, size_t hi) {
        ranges::applyCx(amp, lo, hi, cb, tb);
    });
}

void
applySwap(cplx *amp, size_t dim, unsigned a, unsigned b)
{
    const uint64_t ab = 1ull << a, bb = 1ull << b;
    parallelFor(0, dim / 2, [=](size_t lo, size_t hi) {
        ranges::applySwap(amp, lo, hi, ab, bb);
    });
}

void
applyPauliRotation(cplx *amp, size_t dim, uint64_t x, uint64_t z,
                   double theta)
{
    const double c = std::cos(theta);
    const cplx is(0, std::sin(theta));

    if (x == 0) {
        // Diagonal string (|x&z| = 0): a two-valued per-amplitude
        // phase selected by the parity of |z & b|.
        const cplx fEven = c + is, fOdd = c - is;
        parallelFor(0, dim, [=](size_t lo, size_t hi) {
            ranges::pauliRotDiag(amp, lo, hi, z, fEven, fOdd);
        });
        return;
    }

    // Pair kernel. With u = i sin(t) i^{|x&z|} and the partner-sign
    // relation (-1)^{|z & (b^x)|} = sigma * (-1)^{|z & b|} where
    // sigma = (-1)^{|z & x|}, each pair costs one popcount:
    //   amp[b]   = c a   + u sigma s_b a2
    //   amp[b^x] = c a2  + u       s_b a
    // The update is written in real arithmetic so both the scalar and
    // AVX2 bodies reduce to plain FMAs.
    const cplx u = is * iPow(std::popcount(x & z));
    const double sigma = paritySign(z, x);
    const double ur = u.real(), ui = u.imag();
    const double vr = sigma * ur, vi = sigma * ui;
    const uint64_t pivot = x & (~x + 1); // lowest set bit of x
    parallelFor(0, dim / 2, [=](size_t lo, size_t hi) {
        ranges::pauliRotPairs(amp, lo, hi, x, z, pivot, c, ur, ui,
                              vr, vi);
    });
}

void
applyPauli(cplx *amp, size_t dim, uint64_t x, uint64_t z)
{
    if (x == 0) {
        parallelFor(0, dim, [=](size_t lo, size_t hi) {
            for (size_t b = lo; b < hi; ++b)
                if (std::popcount(z & b) & 1)
                    amp[b] = -amp[b];
        });
        return;
    }
    const cplx eps = iPow(std::popcount(x & z));
    const double sigma = paritySign(z, x);
    const cplx epsSigma = eps * sigma;
    const uint64_t pivot = x & (~x + 1);
    parallelFor(0, dim / 2, [=](size_t lo, size_t hi) {
        for (size_t k = lo; k < hi; ++k) {
            const size_t b = expandBit(k, pivot);
            const size_t b2 = b ^ x;
            const double sb = paritySign(z, b);
            const cplx a = amp[b], a2 = amp[b2];
            amp[b] = (epsSigma * sb) * a2;
            amp[b2] = (eps * sb) * a;
        }
    });
}

void
accumulatePauli(const cplx *amp, size_t dim, uint64_t x, uint64_t z,
                cplx w, cplx *out)
{
    // phase(b^x) = eps * sigma * (-1)^{|z & b|}; fold everything
    // constant into the weight.
    const cplx weps =
        w * iPow(std::popcount(x & z)) * paritySign(z, x);
    parallelFor(0, dim, [=](size_t lo, size_t hi) {
        for (size_t b = lo; b < hi; ++b)
            out[b] += (weps * paritySign(z, b)) * amp[b ^ x];
    });
}

double
expectation(const cplx *amp, size_t dim, uint64_t x, uint64_t z)
{
    if (x == 0) {
        return parallelReduce(
            0, dim, 0.0, [=](size_t lo, size_t hi) {
                return ranges::expectDiag(amp, lo, hi, z);
            });
    }
    // Pair-compacted sweep. The (b, b^x) contributions combine to
    //   s_b (conj(a) a2 + sigma conj(a2) a)
    // which is twice the real part of conj(a) a2 when sigma = +1 and
    // twice i times its imaginary part when sigma = -1 (sigma and
    // i^{|x&z|} always conspire to make <P> real), so each pair is a
    // single real dot product.
    const int e = std::popcount(x & z) & 3;
    const bool sigmaPos = (std::popcount(z & x) & 1) == 0;
    const uint64_t pivot = x & (~x + 1);
    const double t = parallelReduce(
        0, dim / 2, 0.0, [=](size_t lo, size_t hi) {
            return ranges::expectPairs(amp, lo, hi, x, z, pivot,
                                       sigmaPos);
        });
    if (sigmaPos)
        return 2.0 * iPow(e).real() * t;
    // contribution = eps * (-2i) * t with eps = i^e.
    return -2.0 * iPow(e + 1).real() * t;
}

double
diagonalGroupExpectation(const cplx *amp, size_t dim, const double *w,
                         const uint64_t *zmask, size_t n_terms)
{
    return parallelReduce(0, dim, 0.0, [=](size_t lo, size_t hi) {
        return ranges::groupExpect(amp, lo, hi, 0, w, zmask,
                                   n_terms);
    });
}

void
depolarize1(cplx *rho, size_t dim, unsigned q, unsigned n_qubits,
            double p)
{
    if (p <= 0.0)
        return;
    const double keep = 1.0 - 4.0 * p / 3.0;
    const double mix = (4.0 * p / 3.0) / 2.0;
    const uint64_t kbit = 1ull << q;
    const uint64_t bbit = kbit << n_qubits;
    // Each compacted k names one disjoint 2x2 sub-block, so the
    // per-element result is independent of the chunking.
    parallelFor(0, dim / 4, [=](size_t lo, size_t hi) {
        ranges::depolarize1(rho, lo, hi, kbit, bbit, keep, mix);
    });
}

void
depolarize2(cplx *rho, size_t dim, unsigned a, unsigned b,
            unsigned n_qubits, double p)
{
    if (p <= 0.0)
        return;
    const double keep = 1.0 - 16.0 * p / 15.0;
    const double mix = (16.0 * p / 15.0) / 4.0;
    const uint64_t ka = 1ull << std::min(a, b);
    const uint64_t kb = 1ull << std::max(a, b);
    const uint64_t ba = ka << n_qubits;
    const uint64_t bb = kb << n_qubits;
    parallelFor(0, dim / 16, [=](size_t lo, size_t hi) {
        ranges::depolarize2(rho, lo, hi, ka, kb, ba, bb, keep, mix);
    });
}

void
apply1qGeneric(cplx *amp, size_t dim, unsigned q, const cplx u[4])
{
    const uint64_t bit = 1ull << q;
    for (size_t b = 0; b < dim; ++b) {
        if (b & bit)
            continue;
        cplx a0 = amp[b];
        cplx a1 = amp[b | bit];
        amp[b] = u[0] * a0 + u[1] * a1;
        amp[b | bit] = u[2] * a0 + u[3] * a1;
    }
}

void
applyPauliRotationGeneric(cplx *amp, size_t dim, uint64_t x, uint64_t z,
                          double theta)
{
    const cplx c = std::cos(theta);
    const cplx is = cplx(0, std::sin(theta));

    if (x == 0) {
        for (size_t b = 0; b < dim; ++b)
            amp[b] *= c + is * pauliPhase(x, z, b);
        return;
    }
    for (size_t b = 0; b < dim; ++b) {
        const size_t b2 = b ^ x;
        if (b2 < b)
            continue;
        cplx a = amp[b], a2 = amp[b2];
        amp[b] = c * a + is * pauliPhase(x, z, b2) * a2;
        amp[b2] = c * a2 + is * pauliPhase(x, z, b) * a;
    }
}

double
expectationGeneric(const cplx *amp, size_t dim, uint64_t x, uint64_t z)
{
    cplx s = 0.0;
    for (size_t b = 0; b < dim; ++b)
        s += std::conj(amp[b]) * pauliPhase(x, z, b ^ x) * amp[b ^ x];
    return s.real();
}

} // namespace kern
} // namespace qcc
