/**
 * @file
 * Pluggable simulation backend for the VQE driver. SimBackend unifies
 * the ideal statevector simulator and the noisy density-matrix
 * simulator behind one interface (prepare / applyCircuit /
 * applyPauliRotation / expectation), so the energy-evaluation hot
 * path — and everything layered on it (VQE, benches, studies) — runs
 * unmodified against either. applyAnsatz is the policy hook: the
 * statevector backend replays the Pauli-rotation program with the
 * direct kernels, while the density-matrix backend chain-synthesizes
 * a gate circuit and inserts its noise channels, reproducing the
 * paper's Section VI-D noisy execution model.
 */

#ifndef QCC_SIM_BACKEND_HH
#define QCC_SIM_BACKEND_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "ansatz/uccsd.hh"
#include "circuit/circuit.hh"
#include "pauli/pauli_sum.hh"
#include "sim/density_matrix.hh"
#include "sim/noise_model.hh"
#include "sim/statevector.hh"

namespace qcc {

/** Abstract simulator: a resettable n-qubit state plus the VQE ops. */
class SimBackend
{
  public:
    virtual ~SimBackend() = default;

    /** Short identifier ("statevector", "density_matrix"). */
    virtual const char *name() const = 0;

    virtual unsigned numQubits() const = 0;

    /** Reset to the computational basis state |basis>. */
    virtual void prepare(uint64_t basis = 0) = 0;

    /** Execute a gate circuit (noisy backends insert their channels). */
    virtual void applyCircuit(const Circuit &c) = 0;

    /** Apply exp(i theta P) exactly. */
    virtual void applyPauliRotation(double theta,
                                    const PauliString &p) = 0;

    /** Expectation of one Pauli string in the current state. */
    virtual double expectation(const PauliString &p) const = 0;

    /** Expectation of a Pauli-sum Hamiltonian in the current state. */
    virtual double expectation(const PauliSum &h) const = 0;

    /**
     * Shot-sampling hook: computational-basis outcome probabilities
     * of the current state after the given measurement-basis
     * rotations (the basisChangeOps convention: X -> H, Y -> H Sdg).
     * The state is not consumed — SamplingEngine draws all of a
     * family's shots from one distribution, which is exact for the
     * simulator (repeated preparation on hardware is i.i.d.).
     */
    virtual std::vector<double> measurementProbabilities(
        const std::vector<std::pair<unsigned, PauliOp>> &rotations)
        const = 0;

    /**
     * Prepare |psi(theta)| for an ansatz: by default the HF basis
     * state followed by the direct rotation sequence. Backends with a
     * gate-level execution model override this.
     */
    virtual void applyAnsatz(const Ansatz &ansatz,
                             const std::vector<double> &params);

    /**
     * Fast-path hook: the underlying Statevector when this backend is
     * a pure state, nullptr otherwise. Lets grouped expectation
     * engines read amplitudes without a virtual call per term.
     */
    virtual const Statevector *statevector() const { return nullptr; }
};

/**
 * Per-backend simulation options. gateFusion defaults to the global
 * QCC_FUSION toggle (sim/fusion.hh) at construction time; pin it per
 * backend for A/B comparisons.
 */
struct SimOptions {
    bool gateFusion;
    SimOptions();
};

/** Ideal backend over the dense statevector simulator. */
class StatevectorBackend : public SimBackend
{
  public:
    explicit StatevectorBackend(unsigned n, SimOptions o = {})
        : sv(n), opts(o)
    {
    }

    const char *name() const override { return "statevector"; }
    unsigned numQubits() const override { return sv.numQubits(); }
    void prepare(uint64_t basis = 0) override { sv.reset(basis); }

    void
    applyCircuit(const Circuit &c) override
    {
        sv.applyCircuit(c, opts.gateFusion);
    }

    void
    applyPauliRotation(double theta, const PauliString &p) override
    {
        sv.applyPauliRotation(theta, p);
    }

    double
    expectation(const PauliString &p) const override
    {
        return sv.expectation(p);
    }

    double
    expectation(const PauliSum &h) const override
    {
        return sv.expectation(h);
    }

    std::vector<double>
    measurementProbabilities(
        const std::vector<std::pair<unsigned, PauliOp>> &rotations)
        const override
    {
        return sv.basisProbabilities(rotations);
    }

    const Statevector *statevector() const override { return &sv; }

    Statevector &state() { return sv; }
    const Statevector &state() const { return sv; }

    void setGateFusion(bool on) { opts.gateFusion = on; }
    const SimOptions &options() const { return opts; }

  private:
    Statevector sv;
    SimOptions opts;
};

/**
 * Noisy backend over the density-matrix simulator. Circuits are
 * executed with the configured depolarizing noise model; applyAnsatz
 * chain-synthesizes the rotation program to gates first, so ansatz
 * CNOTs pay their noise cost exactly as in the paper's case studies.
 */
class DensityMatrixBackend : public SimBackend
{
  public:
    explicit DensityMatrixBackend(unsigned n, NoiseModel noise = {},
                                  SimOptions o = {})
        : rho(n), noiseModel(noise), opts(o)
    {
    }

    const char *name() const override { return "density_matrix"; }
    unsigned numQubits() const override { return rho.numQubits(); }
    void prepare(uint64_t basis = 0) override { rho.reset(basis); }

    void
    applyCircuit(const Circuit &c) override
    {
        rho.applyCircuit(c, noiseModel, opts.gateFusion);
    }

    void
    applyPauliRotation(double theta, const PauliString &p) override
    {
        rho.applyPauliRotation(theta, p);
    }

    double
    expectation(const PauliString &p) const override
    {
        return rho.expectation(p);
    }

    double
    expectation(const PauliSum &h) const override
    {
        return rho.expectation(h);
    }

    std::vector<double>
    measurementProbabilities(
        const std::vector<std::pair<unsigned, PauliOp>> &rotations)
        const override
    {
        return rho.basisProbabilities(rotations);
    }

    void applyAnsatz(const Ansatz &ansatz,
                     const std::vector<double> &params) override;

    const NoiseModel &noise() const { return noiseModel; }
    DensityMatrix &state() { return rho; }
    const DensityMatrix &state() const { return rho; }

    void setGateFusion(bool on) { opts.gateFusion = on; }
    const SimOptions &options() const { return opts; }

  private:
    DensityMatrix rho;
    NoiseModel noiseModel;
    SimOptions opts;
};

} // namespace qcc

#endif // QCC_SIM_BACKEND_HH
