#include "sim/lanczos.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"
#include "sim/statevector.hh"

namespace qcc {

double
tridiagMinEigen(const std::vector<double> &diag,
                const std::vector<double> &off)
{
    const size_t n = diag.size();
    if (n == 0)
        panic("tridiagMinEigen: empty matrix");
    if (off.size() + 1 != n)
        panic("tridiagMinEigen: off-diagonal size mismatch");
    if (n == 1)
        return diag[0];

    // Gershgorin bounds.
    double lo = diag[0], hi = diag[0];
    for (size_t i = 0; i < n; ++i) {
        double r = 0.0;
        if (i > 0)
            r += std::fabs(off[i - 1]);
        if (i + 1 < n)
            r += std::fabs(off[i]);
        lo = std::min(lo, diag[i] - r);
        hi = std::max(hi, diag[i] + r);
    }

    // Sturm count: number of eigenvalues strictly below x.
    auto countBelow = [&](double x) {
        int count = 0;
        double d = 1.0;
        for (size_t i = 0; i < n; ++i) {
            double offsq = (i > 0) ? off[i - 1] * off[i - 1] : 0.0;
            d = diag[i] - x - (d == 0.0 ? offsq / 1e-300 : offsq / d);
            if (d < 0)
                ++count;
        }
        return count;
    };

    for (int it = 0; it < 200 && hi - lo > 1e-13 * (1 + std::fabs(lo));
         ++it) {
        double mid = 0.5 * (lo + hi);
        if (countBelow(mid) >= 1)
            hi = mid;
        else
            lo = mid;
    }
    return 0.5 * (lo + hi);
}

double
lanczosGroundEnergy(const PauliSum &h, const LanczosOptions &opts)
{
    const unsigned n = h.numQubits();
    const size_t dim = size_t{1} << n;

    Rng rng(opts.seed);
    Statevector v(n);
    for (size_t b = 0; b < dim; ++b)
        v.amplitudes()[b] = cplx(rng.gaussian(), rng.gaussian());
    v.normalize();

    std::vector<cplx> vPrev(dim, cplx(0, 0));
    std::vector<double> alpha, beta;
    double prevRitz = 1e300;
    double betaPrev = 0.0;

    for (int k = 0; k < opts.maxIter; ++k) {
        // w = H v
        std::vector<cplx> w(dim, cplx(0, 0));
        for (const auto &t : h.terms())
            v.accumulatePauli(t.coeff, t.string, w);

        // alpha_k = <v, w>
        cplx a(0, 0);
        for (size_t b = 0; b < dim; ++b)
            a += std::conj(v.amplitudes()[b]) * w[b];
        alpha.push_back(a.real());

        // w -= alpha v + beta_{k-1} v_{k-1}
        for (size_t b = 0; b < dim; ++b)
            w[b] -= a.real() * v.amplitudes()[b] + betaPrev * vPrev[b];

        double nw = 0.0;
        for (const auto &x : w)
            nw += std::norm(x);
        nw = std::sqrt(nw);

        double ritz = tridiagMinEigen(alpha, beta);
        if (std::fabs(ritz - prevRitz) < opts.tol || nw < 1e-12)
            return ritz;
        prevRitz = ritz;

        beta.push_back(nw);
        betaPrev = nw;
        vPrev = v.amplitudes();
        for (size_t b = 0; b < dim; ++b)
            v.amplitudes()[b] = w[b] / nw;
    }
    return prevRitz;
}

} // namespace qcc
