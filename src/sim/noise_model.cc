#include "sim/noise_model.hh"

// NoiseModel is a plain parameter struct; implementation lives in the
// density-matrix simulator. This translation unit anchors the header.
