/**
 * @file
 * Scalar and AVX2 bodies of the range primitives declared in
 * sim/simd.hh, plus the runtime dispatch state. The AVX2 functions
 * are compiled with per-function target("avx2,fma") attributes so the
 * rest of the build keeps the default ISA; they are only ever called
 * after __builtin_cpu_supports says the CPU can run them.
 *
 * Vector layout notes (AVX2, 4 doubles = 2 complex per register):
 *  - cmulBcast multiplies two packed complexes by per-lane-pair
 *    broadcast factors with one fmaddsub (even lanes subtract, odd
 *    lanes add — exactly the complex product split into real parts).
 *  - Parity-sign kernels process even-aligned index pairs: the sign
 *    of b+1 is the sign of b times (-1)^{z&1}, so one popcount per
 *    pair of amplitudes (or per 4, in the grouped sweep) suffices.
 *  - diagonalGroupExpectation uses _mm256_hadd_pd, which interleaves
 *    lanes as (b, b+2, b+1, b+3); the per-term low-bit sign patterns
 *    are stored in that order so the FMA accumulation lines up.
 */

#include "sim/simd.hh"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <utility>

#include "sim/kernels.hh"

#if defined(__x86_64__) || defined(__i386__)
#define QCC_SIMD_X86 1
#include <immintrin.h>
#define QCC_AVX2 __attribute__((target("avx2,fma")))
#endif

namespace qcc {
namespace kern {

namespace {

bool
envSimdEnabled()
{
    const char *e = std::getenv("QCC_SIMD");
    return !(e && e[0] == '0' && e[1] == '\0');
}

std::atomic<bool> &
simdFlag()
{
    static std::atomic<bool> flag(envSimdEnabled());
    return flag;
}

inline double
paritySign(uint64_t m, uint64_t b)
{
    return (std::popcount(m & b) & 1) ? -1.0 : 1.0;
}

/** One Pauli-rotation pair update (shared by scalar loop and tails). */
inline void
rotPairOne(cplx *amp, size_t b, size_t b2, uint64_t z, double c,
           double ur, double ui, double vr, double vi)
{
    const double sb = paritySign(z, b);
    const double wr = sb * ur, wi = sb * ui;
    const double xr = sb * vr, xi = sb * vi;
    const double ar = amp[b].real(), ai = amp[b].imag();
    const double br = amp[b2].real(), bi = amp[b2].imag();
    amp[b] = cplx(c * ar + xr * br - xi * bi,
                  c * ai + xr * bi + xi * br);
    amp[b2] = cplx(c * br + wr * ar - wi * ai,
                   c * bi + wr * ai + wi * ar);
}

/** One expectation pair contribution (partial sum, unscaled). */
inline double
expectPairOne(const cplx *amp, size_t b, size_t b2, uint64_t z,
              bool sigma_pos)
{
    const double sb = paritySign(z, b);
    if (sigma_pos)
        return sb * (amp[b].real() * amp[b2].real() +
                     amp[b].imag() * amp[b2].imag());
    return sb * (amp[b].real() * amp[b2].imag() -
                 amp[b].imag() * amp[b2].real());
}

inline double
groupExpectOne(const cplx *amp, size_t b, uint64_t g, const double *w,
               const uint64_t *zmask, size_t n_terms)
{
    const double p = std::norm(amp[b]);
    double s = 0.0;
    for (size_t t = 0; t < n_terms; ++t)
        s += w[t] * paritySign(zmask[t], g) * p;
    return s;
}

} // namespace

bool
simdCompiled()
{
#ifdef QCC_SIMD_X86
    return true;
#else
    return false;
#endif
}

bool
simdSupported()
{
#ifdef QCC_SIMD_X86
    static const bool ok = __builtin_cpu_supports("avx2") &&
                           __builtin_cpu_supports("fma");
    return ok;
#else
    return false;
#endif
}

bool
simdActive()
{
    return simdSupported() &&
           simdFlag().load(std::memory_order_relaxed);
}

void
setSimdEnabled(bool enabled)
{
    simdFlag().store(enabled, std::memory_order_relaxed);
}

const char *
simdName()
{
    return simdActive() ? "avx2" : "scalar";
}

namespace ranges {

// ---------------------------------------------------------------
// Scalar bodies (the seed's loops, re-expressed over ranges).
// ---------------------------------------------------------------

void
apply1qScalar(cplx *amp, size_t k_lo, size_t k_hi, uint64_t bit,
              const cplx u[4])
{
    const cplx u0 = u[0], u1 = u[1], u2 = u[2], u3 = u[3];
    for (size_t k = k_lo; k < k_hi; ++k) {
        const size_t b = expandBit(k, bit);
        const cplx a0 = amp[b], a1 = amp[b | bit];
        amp[b] = u0 * a0 + u1 * a1;
        amp[b | bit] = u2 * a0 + u3 * a1;
    }
}

void
diag1qScalar(cplx *amp, size_t b_lo, size_t b_hi, uint64_t bit,
             cplx d0, cplx d1)
{
    for (size_t b = b_lo; b < b_hi; ++b)
        amp[b] *= (b & bit) ? d1 : d0;
}

void
diagMulScalar(cplx *amp, size_t b_lo, size_t b_hi,
              const cplx *pattern, uint64_t pat_mask, cplx scale)
{
    for (size_t b = b_lo; b < b_hi; ++b)
        amp[b] *= scale * pattern[b & pat_mask];
}

void
pauliRotPairsScalar(cplx *amp, size_t k_lo, size_t k_hi, uint64_t x,
                    uint64_t z, uint64_t pivot, double c, double ur,
                    double ui, double vr, double vi)
{
    for (size_t k = k_lo; k < k_hi; ++k) {
        const size_t b = expandBit(k, pivot);
        rotPairOne(amp, b, b ^ x, z, c, ur, ui, vr, vi);
    }
}

void
pauliRotDiagScalar(cplx *amp, size_t b_lo, size_t b_hi, uint64_t z,
                   cplx f_even, cplx f_odd)
{
    for (size_t b = b_lo; b < b_hi; ++b)
        amp[b] *= (std::popcount(z & b) & 1) ? f_odd : f_even;
}

double
expectPairsScalar(const cplx *amp, size_t k_lo, size_t k_hi,
                  uint64_t x, uint64_t z, uint64_t pivot,
                  bool sigma_pos)
{
    double s = 0.0;
    for (size_t k = k_lo; k < k_hi; ++k) {
        const size_t b = expandBit(k, pivot);
        s += expectPairOne(amp, b, b ^ x, z, sigma_pos);
    }
    return s;
}

double
expectDiagScalar(const cplx *amp, size_t b_lo, size_t b_hi,
                 uint64_t z)
{
    double s = 0.0;
    for (size_t b = b_lo; b < b_hi; ++b)
        s += paritySign(z, b) * std::norm(amp[b]);
    return s;
}

double
groupExpectScalar(const cplx *amp, size_t b_lo, size_t b_hi,
                  uint64_t b_offset, const double *w,
                  const uint64_t *zmask, size_t n_terms)
{
    double s = 0.0;
    for (size_t b = b_lo; b < b_hi; ++b)
        s += groupExpectOne(amp, b, b_offset | b, w, zmask, n_terms);
    return s;
}

void
depolarize1Scalar(cplx *amp, size_t k_lo, size_t k_hi, uint64_t kbit,
                  uint64_t bbit, double keep, double mix)
{
    for (size_t k = k_lo; k < k_hi; ++k) {
        const size_t base = expandBit(expandBit(k, kbit), bbit);
        const cplx tr = amp[base] + amp[base | kbit | bbit];
        amp[base] = keep * amp[base] + mix * tr;
        amp[base | kbit | bbit] =
            keep * amp[base | kbit | bbit] + mix * tr;
        amp[base | kbit] *= keep;
        amp[base | bbit] *= keep;
    }
}

void
depolarize2Scalar(cplx *amp, size_t k_lo, size_t k_hi, uint64_t ka,
                  uint64_t kb, uint64_t ba, uint64_t bb, double keep,
                  double mix)
{
    const uint64_t sub[4] = {0, ka, kb, ka | kb};
    const uint64_t bsub[4] = {0, ba, bb, ba | bb};
    for (size_t k = k_lo; k < k_hi; ++k) {
        const size_t base = expandBit(
            expandBit(expandBit(expandBit(k, ka), kb), ba), bb);
        cplx tr = 0.0;
        for (int s = 0; s < 4; ++s)
            tr += amp[base | sub[s] | bsub[s]];
        for (int s1 = 0; s1 < 4; ++s1) {
            for (int s2 = 0; s2 < 4; ++s2) {
                const size_t idx = base | sub[s1] | bsub[s2];
                amp[idx] *= keep;
                if (s1 == s2)
                    amp[idx] += mix * tr;
            }
        }
    }
}

void
applyX(cplx *amp, size_t k_lo, size_t k_hi, uint64_t bit)
{
    for (size_t k = k_lo; k < k_hi; ++k) {
        const size_t b = expandBit(k, bit);
        std::swap(amp[b], amp[b | bit]);
    }
}

void
applyCx(cplx *amp, size_t k_lo, size_t k_hi, uint64_t cbit,
        uint64_t tbit)
{
    for (size_t k = k_lo; k < k_hi; ++k) {
        const size_t b = expandBit(k, tbit);
        if (b & cbit)
            std::swap(amp[b], amp[b | tbit]);
    }
}

void
applySwap(cplx *amp, size_t k_lo, size_t k_hi, uint64_t abit,
          uint64_t bbit)
{
    for (size_t k = k_lo; k < k_hi; ++k) {
        // idx has the b-bit clear; the |01> <-> |10> partner is in the
        // other half of the pair loop, so each pair is visited once.
        const size_t idx = expandBit(k, bbit);
        if (idx & abit)
            std::swap(amp[idx], amp[idx ^ (abit | bbit)]);
    }
}

// ---------------------------------------------------------------
// AVX2 bodies.
// ---------------------------------------------------------------

#ifdef QCC_SIMD_X86

namespace {

/** (a0, a1) * (br + i bi) with br/bi broadcast per lane pair. */
QCC_AVX2 inline __m256d
cmulBcast(__m256d a, __m256d br, __m256d bi)
{
    const __m256d as = _mm256_shuffle_pd(a, a, 0x5);
    return _mm256_fmaddsub_pd(a, br, _mm256_mul_pd(as, bi));
}

/** Full complex product of two packed-complex registers. */
QCC_AVX2 inline __m256d
cmulVar(__m256d a, __m256d b)
{
    const __m256d br = _mm256_movedup_pd(b);
    const __m256d bi = _mm256_permute_pd(b, 0xF);
    return cmulBcast(a, br, bi);
}

QCC_AVX2 inline double
hsum(__m256d v)
{
    __m128d lo = _mm256_castpd256_pd128(v);
    const __m128d hi = _mm256_extractf128_pd(v, 1);
    lo = _mm_add_pd(lo, hi);
    return _mm_cvtsd_f64(_mm_add_sd(lo, _mm_unpackhi_pd(lo, lo)));
}

QCC_AVX2 void
apply1qAvx2(cplx *ampc, size_t k_lo, size_t k_hi, uint64_t bit,
            const cplx u[4])
{
    double *amp = reinterpret_cast<double *>(ampc);
    if (bit == 1) {
        // Adjacent pairs: one register holds both amplitudes; the
        // column vectors (u0,u2) and (u1,u3) act on lane-duplicated
        // copies.
        const __m256d uAr = _mm256_setr_pd(u[0].real(), u[0].real(),
                                           u[2].real(), u[2].real());
        const __m256d uAi = _mm256_setr_pd(u[0].imag(), u[0].imag(),
                                           u[2].imag(), u[2].imag());
        const __m256d uBr = _mm256_setr_pd(u[1].real(), u[1].real(),
                                           u[3].real(), u[3].real());
        const __m256d uBi = _mm256_setr_pd(u[1].imag(), u[1].imag(),
                                           u[3].imag(), u[3].imag());
        for (size_t k = k_lo; k < k_hi; ++k) {
            double *p = amp + 4 * k;
            const __m256d v = _mm256_loadu_pd(p);
            const __m256d a0 = _mm256_permute2f128_pd(v, v, 0x00);
            const __m256d a1 = _mm256_permute2f128_pd(v, v, 0x11);
            _mm256_storeu_pd(p,
                             _mm256_add_pd(cmulBcast(a0, uAr, uAi),
                                           cmulBcast(a1, uBr, uBi)));
        }
        return;
    }
    // bit >= 2: k-space runs of `bit` pairs map to two contiguous
    // amplitude streams.
    const __m256d u0r = _mm256_set1_pd(u[0].real());
    const __m256d u0i = _mm256_set1_pd(u[0].imag());
    const __m256d u1r = _mm256_set1_pd(u[1].real());
    const __m256d u1i = _mm256_set1_pd(u[1].imag());
    const __m256d u2r = _mm256_set1_pd(u[2].real());
    const __m256d u2i = _mm256_set1_pd(u[2].imag());
    const __m256d u3r = _mm256_set1_pd(u[3].real());
    const __m256d u3i = _mm256_set1_pd(u[3].imag());
    size_t k = k_lo;
    while (k < k_hi) {
        const size_t runEnd =
            std::min<size_t>(k_hi, (k | (bit - 1)) + 1);
        const size_t b = expandBit(k, bit);
        double *p0 = amp + 2 * b;
        double *p1 = amp + 2 * (b | bit);
        const size_t len = runEnd - k;
        size_t i = 0;
        for (; i + 2 <= len; i += 2) {
            const __m256d a0 = _mm256_loadu_pd(p0 + 2 * i);
            const __m256d a1 = _mm256_loadu_pd(p1 + 2 * i);
            _mm256_storeu_pd(p0 + 2 * i,
                             _mm256_add_pd(cmulBcast(a0, u0r, u0i),
                                           cmulBcast(a1, u1r, u1i)));
            _mm256_storeu_pd(p1 + 2 * i,
                             _mm256_add_pd(cmulBcast(a0, u2r, u2i),
                                           cmulBcast(a1, u3r, u3i)));
        }
        for (; i < len; ++i) {
            const cplx a0 = ampc[b + i], a1 = ampc[(b + i) | bit];
            ampc[b + i] = u[0] * a0 + u[1] * a1;
            ampc[(b + i) | bit] = u[2] * a0 + u[3] * a1;
        }
        k = runEnd;
    }
}

QCC_AVX2 void
diag1qAvx2(cplx *ampc, size_t b_lo, size_t b_hi, uint64_t bit,
           cplx d0, cplx d1)
{
    double *amp = reinterpret_cast<double *>(ampc);
    if (bit == 1) {
        // Alternating (d0, d1) pattern: align to even b so the fixed
        // register pattern lines up.
        size_t b = b_lo;
        if ((b & 1) && b < b_hi) {
            ampc[b] *= d1;
            ++b;
        }
        const __m256d dr = _mm256_setr_pd(d0.real(), d0.real(),
                                          d1.real(), d1.real());
        const __m256d di = _mm256_setr_pd(d0.imag(), d0.imag(),
                                          d1.imag(), d1.imag());
        for (; b + 2 <= b_hi; b += 2) {
            const __m256d v = _mm256_loadu_pd(amp + 2 * b);
            _mm256_storeu_pd(amp + 2 * b, cmulBcast(v, dr, di));
        }
        if (b < b_hi)
            ampc[b] *= d0;
        return;
    }
    const __m256d d0r = _mm256_set1_pd(d0.real());
    const __m256d d0i = _mm256_set1_pd(d0.imag());
    const __m256d d1r = _mm256_set1_pd(d1.real());
    const __m256d d1i = _mm256_set1_pd(d1.imag());
    size_t b = b_lo;
    while (b < b_hi) {
        // The factor is constant over each run of `bit` indices.
        const size_t runEnd =
            std::min<size_t>(b_hi, (b | (bit - 1)) + 1);
        const bool one = (b & bit) != 0;
        const __m256d fr = one ? d1r : d0r;
        const __m256d fi = one ? d1i : d0i;
        const cplx f = one ? d1 : d0;
        size_t i = b;
        for (; i + 2 <= runEnd; i += 2) {
            const __m256d v = _mm256_loadu_pd(amp + 2 * i);
            _mm256_storeu_pd(amp + 2 * i, cmulBcast(v, fr, fi));
        }
        for (; i < runEnd; ++i)
            ampc[i] *= f;
        b = runEnd;
    }
}

QCC_AVX2 void
diagMulAvx2(cplx *ampc, size_t b_lo, size_t b_hi,
            const cplx *patternc, uint64_t pat_mask, cplx scale)
{
    double *amp = reinterpret_cast<double *>(ampc);
    const double *pat = reinterpret_cast<const double *>(patternc);
    if (pat_mask == 0) {
        const cplx f = scale * patternc[0];
        const __m256d fr = _mm256_set1_pd(f.real());
        const __m256d fi = _mm256_set1_pd(f.imag());
        size_t b = b_lo;
        for (; b + 2 <= b_hi; b += 2) {
            const __m256d v = _mm256_loadu_pd(amp + 2 * b);
            _mm256_storeu_pd(amp + 2 * b, cmulBcast(v, fr, fi));
        }
        if (b < b_hi)
            ampc[b] *= f;
        return;
    }
    // pat_mask is odd (power-of-two length), so even-aligned index
    // pairs never straddle the pattern wrap.
    const __m256d sr = _mm256_set1_pd(scale.real());
    const __m256d si = _mm256_set1_pd(scale.imag());
    size_t b = b_lo;
    if ((b & 1) && b < b_hi) {
        ampc[b] *= scale * patternc[b & pat_mask];
        ++b;
    }
    for (; b + 2 <= b_hi; b += 2) {
        const __m256d a = _mm256_loadu_pd(amp + 2 * b);
        const __m256d p =
            _mm256_loadu_pd(pat + 2 * (b & pat_mask));
        _mm256_storeu_pd(amp + 2 * b,
                         cmulVar(a, cmulBcast(p, sr, si)));
    }
    if (b < b_hi)
        ampc[b] *= scale * patternc[b & pat_mask];
}

QCC_AVX2 void
pauliRotPairsAvx2(cplx *ampc, size_t k_lo, size_t k_hi, uint64_t x,
                  uint64_t z, uint64_t pivot, double c, double ur,
                  double ui, double vr, double vi)
{
    if (pivot < 2) {
        // x touches bit 0: pairs are interleaved, not worth shuffling.
        pauliRotPairsScalar(ampc, k_lo, k_hi, x, z, pivot, c, ur, ui,
                            vr, vi);
        return;
    }
    double *amp = reinterpret_cast<double *>(ampc);
    const double e0 = (z & 1) ? -1.0 : 1.0;
    const __m256d evec = _mm256_setr_pd(1.0, 1.0, e0, e0);
    const __m256d cv = _mm256_set1_pd(c);
    const __m256d urv = _mm256_set1_pd(ur);
    const __m256d uiv = _mm256_set1_pd(ui);
    const __m256d vrv = _mm256_set1_pd(vr);
    const __m256d viv = _mm256_set1_pd(vi);
    size_t k = k_lo;
    while (k < k_hi) {
        const size_t runStart = k & ~size_t(pivot - 1);
        const size_t runEnd =
            std::min<size_t>(k_hi, runStart + pivot);
        const size_t b0 = expandBit(runStart, pivot); // even
        const size_t len = runEnd - runStart;
        size_t j = k - runStart;
        if ((j & 1) && j < len) {
            rotPairOne(ampc, b0 + j, (b0 + j) ^ x, z, c, ur, ui, vr,
                       vi);
            ++j;
        }
        for (; j + 2 <= len; j += 2) {
            const size_t b = b0 + j;
            const size_t b2 = b ^ x; // x bit0 clear: b2+1 = (b+1)^x
            const double s0 = paritySign(z, b);
            const __m256d sv =
                _mm256_mul_pd(_mm256_set1_pd(s0), evec);
            const __m256d a = _mm256_loadu_pd(amp + 2 * b);
            const __m256d a2 = _mm256_loadu_pd(amp + 2 * b2);
            const __m256d xr = _mm256_mul_pd(sv, vrv);
            const __m256d xi = _mm256_mul_pd(sv, viv);
            const __m256d wr = _mm256_mul_pd(sv, urv);
            const __m256d wi = _mm256_mul_pd(sv, uiv);
            _mm256_storeu_pd(
                amp + 2 * b,
                _mm256_fmadd_pd(a, cv, cmulBcast(a2, xr, xi)));
            _mm256_storeu_pd(
                amp + 2 * b2,
                _mm256_fmadd_pd(a2, cv, cmulBcast(a, wr, wi)));
        }
        for (; j < len; ++j)
            rotPairOne(ampc, b0 + j, (b0 + j) ^ x, z, c, ur, ui, vr,
                       vi);
        k = runEnd;
    }
}

QCC_AVX2 void
pauliRotDiagAvx2(cplx *ampc, size_t b_lo, size_t b_hi, uint64_t z,
                 cplx f_even, cplx f_odd)
{
    double *amp = reinterpret_cast<double *>(ampc);
    // factor(b) = h + s_b * d with s_b = (-1)^{|z & b|}.
    const cplx h = 0.5 * (f_even + f_odd);
    const cplx d = 0.5 * (f_even - f_odd);
    const double e0 = (z & 1) ? -1.0 : 1.0;
    const __m256d evec = _mm256_setr_pd(1.0, 1.0, e0, e0);
    const __m256d hr = _mm256_set1_pd(h.real());
    const __m256d hi = _mm256_set1_pd(h.imag());
    const __m256d dr = _mm256_set1_pd(d.real());
    const __m256d di = _mm256_set1_pd(d.imag());
    size_t b = b_lo;
    if ((b & 1) && b < b_hi) {
        ampc[b] *= (std::popcount(z & b) & 1) ? f_odd : f_even;
        ++b;
    }
    for (; b + 2 <= b_hi; b += 2) {
        const double s0 = paritySign(z, b);
        const __m256d sv = _mm256_mul_pd(_mm256_set1_pd(s0), evec);
        const __m256d fr = _mm256_fmadd_pd(sv, dr, hr);
        const __m256d fi = _mm256_fmadd_pd(sv, di, hi);
        const __m256d v = _mm256_loadu_pd(amp + 2 * b);
        _mm256_storeu_pd(amp + 2 * b, cmulBcast(v, fr, fi));
    }
    for (; b < b_hi; ++b)
        ampc[b] *= (std::popcount(z & b) & 1) ? f_odd : f_even;
}

QCC_AVX2 double
expectPairsAvx2(const cplx *ampc, size_t k_lo, size_t k_hi,
                uint64_t x, uint64_t z, uint64_t pivot,
                bool sigma_pos)
{
    if (pivot < 2)
        return expectPairsScalar(ampc, k_lo, k_hi, x, z, pivot,
                                 sigma_pos);
    const double *amp = reinterpret_cast<const double *>(ampc);
    const double e0 = (z & 1) ? -1.0 : 1.0;
    const __m256d evec = _mm256_setr_pd(1.0, 1.0, e0, e0);
    const __m256d evenMask = _mm256_castsi256_pd(
        _mm256_setr_epi64x(-1, 0, -1, 0));
    __m256d acc = _mm256_setzero_pd();
    double tail = 0.0;
    size_t k = k_lo;
    while (k < k_hi) {
        const size_t runStart = k & ~size_t(pivot - 1);
        const size_t runEnd =
            std::min<size_t>(k_hi, runStart + pivot);
        const size_t b0 = expandBit(runStart, pivot);
        const size_t len = runEnd - runStart;
        size_t j = k - runStart;
        if ((j & 1) && j < len) {
            tail += expectPairOne(ampc, b0 + j, (b0 + j) ^ x, z,
                                  sigma_pos);
            ++j;
        }
        for (; j + 2 <= len; j += 2) {
            const size_t b = b0 + j;
            const size_t b2 = b ^ x;
            const double s0 = paritySign(z, b);
            const __m256d sv =
                _mm256_mul_pd(_mm256_set1_pd(s0), evec);
            const __m256d a = _mm256_loadu_pd(amp + 2 * b);
            const __m256d a2 = _mm256_loadu_pd(amp + 2 * b2);
            __m256d t;
            if (sigma_pos) {
                const __m256d m = _mm256_mul_pd(a, a2);
                t = _mm256_add_pd(m, _mm256_shuffle_pd(m, m, 0x5));
            } else {
                const __m256d as = _mm256_shuffle_pd(a, a, 0x5);
                const __m256d m = _mm256_mul_pd(as, a2);
                t = _mm256_sub_pd(_mm256_shuffle_pd(m, m, 0x5), m);
            }
            t = _mm256_and_pd(t, evenMask);
            acc = _mm256_fmadd_pd(t, sv, acc);
        }
        for (; j < len; ++j)
            tail += expectPairOne(ampc, b0 + j, (b0 + j) ^ x, z,
                                  sigma_pos);
        k = runEnd;
    }
    return hsum(acc) + tail;
}

QCC_AVX2 double
expectDiagAvx2(const cplx *ampc, size_t b_lo, size_t b_hi, uint64_t z)
{
    const double *amp = reinterpret_cast<const double *>(ampc);
    const double e0 = (z & 1) ? -1.0 : 1.0;
    const __m256d evec = _mm256_setr_pd(1.0, 1.0, e0, e0);
    const __m256d evenMask = _mm256_castsi256_pd(
        _mm256_setr_epi64x(-1, 0, -1, 0));
    __m256d acc = _mm256_setzero_pd();
    double tail = 0.0;
    size_t b = b_lo;
    if ((b & 1) && b < b_hi) {
        tail += paritySign(z, b) * std::norm(ampc[b]);
        ++b;
    }
    for (; b + 2 <= b_hi; b += 2) {
        const double s0 = paritySign(z, b);
        const __m256d sv = _mm256_mul_pd(_mm256_set1_pd(s0), evec);
        const __m256d a = _mm256_loadu_pd(amp + 2 * b);
        const __m256d m = _mm256_mul_pd(a, a);
        __m256d t = _mm256_add_pd(m, _mm256_shuffle_pd(m, m, 0x5));
        t = _mm256_and_pd(t, evenMask);
        acc = _mm256_fmadd_pd(t, sv, acc);
    }
    for (; b < b_hi; ++b)
        tail += paritySign(z, b) * std::norm(ampc[b]);
    return hsum(acc) + tail;
}

QCC_AVX2 double
groupExpectAvx2(const cplx *ampc, size_t b_lo, size_t b_hi,
                uint64_t b_offset, const double *w,
                const uint64_t *zmask, size_t n_terms)
{
    const double *amp = reinterpret_cast<const double *>(ampc);
    // Per-term sign patterns over the low two index bits, in the
    // (b, b+2, b+1, b+3) lane order produced by hadd below.
    static const double patTable[4][4] = {
        {1.0, 1.0, 1.0, 1.0},
        {1.0, 1.0, -1.0, -1.0},
        {1.0, -1.0, 1.0, -1.0},
        {1.0, -1.0, -1.0, 1.0},
    };
    const __m256d pats[4] = {
        _mm256_loadu_pd(patTable[0]),
        _mm256_loadu_pd(patTable[1]),
        _mm256_loadu_pd(patTable[2]),
        _mm256_loadu_pd(patTable[3]),
    };
    __m256d acc = _mm256_setzero_pd();
    double tail = 0.0;
    size_t b = b_lo;
    for (; b < b_hi && ((b_offset | b) & 3); ++b)
        tail += groupExpectOne(ampc, b, b_offset | b, w, zmask,
                               n_terms);
    for (; b + 4 <= b_hi; b += 4) {
        const uint64_t g = b_offset | b;
        const __m256d v0 = _mm256_loadu_pd(amp + 2 * b);
        const __m256d v1 = _mm256_loadu_pd(amp + 2 * b + 4);
        const __m256d p = _mm256_hadd_pd(_mm256_mul_pd(v0, v0),
                                         _mm256_mul_pd(v1, v1));
        for (size_t t = 0; t < n_terms; ++t) {
            const uint64_t zm = zmask[t];
            const double ws = w[t] * paritySign(zm & ~3ull, g);
            acc = _mm256_fmadd_pd(_mm256_mul_pd(p, pats[zm & 3]),
                                  _mm256_set1_pd(ws), acc);
        }
    }
    for (; b < b_hi; ++b)
        tail += groupExpectOne(ampc, b, b_offset | b, w, zmask,
                               n_terms);
    return hsum(acc) + tail;
}

QCC_AVX2 void
depolarize1Avx2(cplx *ampc, size_t k_lo, size_t k_hi, uint64_t kbit,
                uint64_t bbit, double keep, double mix)
{
    if (kbit < 2) {
        // Runs shorter than one register: the scalar sweep wins.
        depolarize1Scalar(ampc, k_lo, k_hi, kbit, bbit, keep, mix);
        return;
    }
    double *amp = reinterpret_cast<double *>(ampc);
    const __m256d keepv = _mm256_set1_pd(keep);
    const __m256d mixv = _mm256_set1_pd(mix);
    size_t k = k_lo;
    while (k < k_hi) {
        // Low k bits below kbit map 1:1 onto base, so each k-run is
        // four contiguous amplitude streams (one per block entry).
        const size_t runEnd =
            std::min<size_t>(k_hi, (k | (kbit - 1)) + 1);
        const size_t base = expandBit(expandBit(k, kbit), bbit);
        double *p00 = amp + 2 * base;
        double *p01 = amp + 2 * (base | kbit);
        double *p10 = amp + 2 * (base | bbit);
        double *p11 = amp + 2 * (base | kbit | bbit);
        const size_t len = runEnd - k;
        size_t i = 0;
        for (; i + 2 <= len; i += 2) {
            const __m256d a00 = _mm256_loadu_pd(p00 + 2 * i);
            const __m256d a11 = _mm256_loadu_pd(p11 + 2 * i);
            // keep/mix are real, so packed complex scales are plain
            // element-wise mul/fmadd.
            const __m256d tr = _mm256_add_pd(a00, a11);
            _mm256_storeu_pd(p00 + 2 * i,
                             _mm256_fmadd_pd(
                                 mixv, tr,
                                 _mm256_mul_pd(keepv, a00)));
            _mm256_storeu_pd(p11 + 2 * i,
                             _mm256_fmadd_pd(
                                 mixv, tr,
                                 _mm256_mul_pd(keepv, a11)));
            _mm256_storeu_pd(
                p01 + 2 * i,
                _mm256_mul_pd(keepv,
                              _mm256_loadu_pd(p01 + 2 * i)));
            _mm256_storeu_pd(
                p10 + 2 * i,
                _mm256_mul_pd(keepv,
                              _mm256_loadu_pd(p10 + 2 * i)));
        }
        if (i < len)
            depolarize1Scalar(ampc, k + i, runEnd, kbit, bbit, keep,
                              mix);
        k = runEnd;
    }
}

QCC_AVX2 void
depolarize2Avx2(cplx *ampc, size_t k_lo, size_t k_hi, uint64_t ka,
                uint64_t kb, uint64_t ba, uint64_t bb, double keep,
                double mix)
{
    if (ka < 2) {
        depolarize2Scalar(ampc, k_lo, k_hi, ka, kb, ba, bb, keep,
                          mix);
        return;
    }
    double *amp = reinterpret_cast<double *>(ampc);
    const __m256d keepv = _mm256_set1_pd(keep);
    const __m256d mixv = _mm256_set1_pd(mix);
    const uint64_t sub[4] = {0, ka, kb, ka | kb};
    const uint64_t bsub[4] = {0, ba, bb, ba | bb};
    size_t k = k_lo;
    while (k < k_hi) {
        const size_t runEnd =
            std::min<size_t>(k_hi, (k | (ka - 1)) + 1);
        const size_t base = expandBit(
            expandBit(expandBit(expandBit(k, ka), kb), ba), bb);
        // 16 contiguous streams, one per 4x4 block entry.
        double *p[4][4];
        for (int s1 = 0; s1 < 4; ++s1)
            for (int s2 = 0; s2 < 4; ++s2)
                p[s1][s2] = amp + 2 * (base | sub[s1] | bsub[s2]);
        const size_t len = runEnd - k;
        size_t i = 0;
        for (; i + 2 <= len; i += 2) {
            __m256d tr = _mm256_loadu_pd(p[0][0] + 2 * i);
            for (int s = 1; s < 4; ++s)
                tr = _mm256_add_pd(tr,
                                   _mm256_loadu_pd(p[s][s] + 2 * i));
            for (int s1 = 0; s1 < 4; ++s1) {
                for (int s2 = 0; s2 < 4; ++s2) {
                    __m256d v = _mm256_mul_pd(
                        keepv, _mm256_loadu_pd(p[s1][s2] + 2 * i));
                    if (s1 == s2)
                        v = _mm256_fmadd_pd(mixv, tr, v);
                    _mm256_storeu_pd(p[s1][s2] + 2 * i, v);
                }
            }
        }
        if (i < len)
            depolarize2Scalar(ampc, k + i, runEnd, ka, kb, ba, bb,
                              keep, mix);
        k = runEnd;
    }
}

} // namespace

#endif // QCC_SIMD_X86

// ---------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------

void
apply1q(cplx *amp, size_t k_lo, size_t k_hi, uint64_t bit,
        const cplx u[4])
{
#ifdef QCC_SIMD_X86
    if (simdActive()) {
        apply1qAvx2(amp, k_lo, k_hi, bit, u);
        return;
    }
#endif
    apply1qScalar(amp, k_lo, k_hi, bit, u);
}

void
diag1q(cplx *amp, size_t b_lo, size_t b_hi, uint64_t bit, cplx d0,
       cplx d1)
{
#ifdef QCC_SIMD_X86
    if (simdActive()) {
        diag1qAvx2(amp, b_lo, b_hi, bit, d0, d1);
        return;
    }
#endif
    diag1qScalar(amp, b_lo, b_hi, bit, d0, d1);
}

void
diagMul(cplx *amp, size_t b_lo, size_t b_hi, const cplx *pattern,
        uint64_t pat_mask, cplx scale)
{
#ifdef QCC_SIMD_X86
    if (simdActive()) {
        diagMulAvx2(amp, b_lo, b_hi, pattern, pat_mask, scale);
        return;
    }
#endif
    diagMulScalar(amp, b_lo, b_hi, pattern, pat_mask, scale);
}

void
pauliRotPairs(cplx *amp, size_t k_lo, size_t k_hi, uint64_t x,
              uint64_t z, uint64_t pivot, double c, double ur,
              double ui, double vr, double vi)
{
#ifdef QCC_SIMD_X86
    if (simdActive()) {
        pauliRotPairsAvx2(amp, k_lo, k_hi, x, z, pivot, c, ur, ui,
                          vr, vi);
        return;
    }
#endif
    pauliRotPairsScalar(amp, k_lo, k_hi, x, z, pivot, c, ur, ui, vr,
                        vi);
}

void
pauliRotDiag(cplx *amp, size_t b_lo, size_t b_hi, uint64_t z,
             cplx f_even, cplx f_odd)
{
#ifdef QCC_SIMD_X86
    if (simdActive()) {
        pauliRotDiagAvx2(amp, b_lo, b_hi, z, f_even, f_odd);
        return;
    }
#endif
    pauliRotDiagScalar(amp, b_lo, b_hi, z, f_even, f_odd);
}

double
expectPairs(const cplx *amp, size_t k_lo, size_t k_hi, uint64_t x,
            uint64_t z, uint64_t pivot, bool sigma_pos)
{
#ifdef QCC_SIMD_X86
    if (simdActive())
        return expectPairsAvx2(amp, k_lo, k_hi, x, z, pivot,
                               sigma_pos);
#endif
    return expectPairsScalar(amp, k_lo, k_hi, x, z, pivot, sigma_pos);
}

double
expectDiag(const cplx *amp, size_t b_lo, size_t b_hi, uint64_t z)
{
#ifdef QCC_SIMD_X86
    if (simdActive())
        return expectDiagAvx2(amp, b_lo, b_hi, z);
#endif
    return expectDiagScalar(amp, b_lo, b_hi, z);
}

double
groupExpect(const cplx *amp, size_t b_lo, size_t b_hi,
            uint64_t b_offset, const double *w, const uint64_t *zmask,
            size_t n_terms)
{
#ifdef QCC_SIMD_X86
    if (simdActive())
        return groupExpectAvx2(amp, b_lo, b_hi, b_offset, w, zmask,
                               n_terms);
#endif
    return groupExpectScalar(amp, b_lo, b_hi, b_offset, w, zmask,
                             n_terms);
}

void
depolarize1(cplx *amp, size_t k_lo, size_t k_hi, uint64_t kbit,
            uint64_t bbit, double keep, double mix)
{
#ifdef QCC_SIMD_X86
    if (simdActive()) {
        depolarize1Avx2(amp, k_lo, k_hi, kbit, bbit, keep, mix);
        return;
    }
#endif
    depolarize1Scalar(amp, k_lo, k_hi, kbit, bbit, keep, mix);
}

void
depolarize2(cplx *amp, size_t k_lo, size_t k_hi, uint64_t ka,
            uint64_t kb, uint64_t ba, uint64_t bb, double keep,
            double mix)
{
#ifdef QCC_SIMD_X86
    if (simdActive()) {
        depolarize2Avx2(amp, k_lo, k_hi, ka, kb, ba, bb, keep, mix);
        return;
    }
#endif
    depolarize2Scalar(amp, k_lo, k_hi, ka, kb, ba, bb, keep, mix);
}

} // namespace ranges
} // namespace kern
} // namespace qcc
