/**
 * @file
 * Statevector simulator. Provides gate-by-gate execution of compiled
 * circuits (used to verify the compiler) and direct O(2^n) kernels for
 * Pauli-string rotations exp(i theta P) and Pauli expectation values
 * (used by the VQE driver, mirroring the paper's use of the Aer
 * statevector simulator). All sweeps dispatch to the specialized
 * block-parallel bit-mask kernels in sim/kernels.hh; see
 * sim/backend.hh for the backend interface the VQE layer consumes.
 */

#ifndef QCC_SIM_STATEVECTOR_HH
#define QCC_SIM_STATEVECTOR_HH

#include <complex>
#include <utility>
#include <vector>

#include "circuit/circuit.hh"
#include "pauli/pauli_sum.hh"

namespace qcc {

using cplx = std::complex<double>;

/**
 * Dense 2^n-amplitude quantum state. Basis index bit q corresponds to
 * qubit q (qubit 0 is the least-significant bit).
 */
class Statevector
{
  public:
    /** |0...0> on n qubits. */
    explicit Statevector(unsigned n);

    /** Computational basis state |basis>. */
    Statevector(unsigned n, uint64_t basis);

    /**
     * |basis> on n qubits adopting `buffer` as amplitude storage
     * (resized to 2^n; no allocation when the buffer already has
     * the capacity). Pairs with common/parallel's BufferPool so
     * batched per-task states recycle heap blocks: move the storage
     * back out through amplitudes() when done.
     */
    Statevector(unsigned n, uint64_t basis,
                std::vector<cplx> &&buffer);

    /** Reset to |basis> without reallocating. */
    void reset(uint64_t basis = 0);

    unsigned numQubits() const { return nQubits; }
    size_t dim() const { return amp.size(); }
    const std::vector<cplx> &amplitudes() const { return amp; }
    std::vector<cplx> &amplitudes() { return amp; }

    /** Apply an arbitrary single-qubit unitary (row-major 2x2). */
    void apply1q(unsigned q, const cplx u[4]);

    /** Apply one gate of the circuit IR. */
    void applyGate(const Gate &g);

    /**
     * Apply every gate of a circuit. Operands are validated against
     * the register width up front (throws SimError with a gate-level
     * diagnostic, see sim/fusion.hh); when gate fusion is enabled
     * (QCC_FUSION / setFusionEnabled) the circuit is rewritten into
     * fused ops and executed cache-block by cache-block instead of
     * one full state pass per gate.
     */
    void applyCircuit(const Circuit &c);

    /** Same, with the fusion decision pinned by the caller. */
    void applyCircuit(const Circuit &c, bool fuse);

    /**
     * Apply exp(i theta P) directly (one pass over the state). This is
     * the mathematical definition of the Pauli-string simulation
     * circuit of Section II-A, bypassing synthesis.
     */
    void applyPauliRotation(double theta, const PauliString &p);

    /** Apply the (non-unitary unless |w|=1) operator P in place. */
    void applyPauli(const PauliString &p);

    /** out += w * (P applied to this state); out must match dims. */
    void accumulatePauli(cplx w, const PauliString &p,
                         std::vector<cplx> &out) const;

    /** <psi| P |psi> (real part; P is Hermitian). */
    double expectation(const PauliString &p) const;

    /**
     * Computational-basis outcome probabilities after applying the
     * given single-qubit basis-change rotations (X -> H, Y -> H Sdg,
     * the basisChangeOps convention) to a copy of the state. With no
     * rotations this is simply |amp|^2. Feeds the shot-sampling
     * backend path; the state itself is left untouched.
     */
    std::vector<double> basisProbabilities(
        const std::vector<std::pair<unsigned, PauliOp>> &rotations)
        const;

    /**
     * <psi| H |psi> for a Pauli sum: one read-only kernel pass per
     * term, with no per-call O(2^n) allocation. For grouped
     * (one-pass-per-commuting-family) evaluation in the VQE hot loop
     * see vqe/expectation_engine.hh.
     */
    double expectation(const PauliSum &h) const;

    /** <this|other>. */
    cplx inner(const Statevector &other) const;

    /** L2 norm. */
    double norm() const;

    /** Scale so the norm is one. */
    void normalize();

  private:
    unsigned nQubits;
    std::vector<cplx> amp;
};

/** 2x2 matrix for a single-qubit gate kind (angle for RX/RY/RZ). */
void gateMatrix(GateKind k, double angle, cplx out[4]);

/**
 * Full 2^n x 2^n unitary of a circuit, built by applying the circuit
 * to every basis state. Column-major in the returned row-major matrix:
 * result[r][c] = <r|U|c>. Only sensible for small n (verification).
 */
std::vector<std::vector<cplx>> circuitUnitary(const Circuit &c);

} // namespace qcc

#endif // QCC_SIM_STATEVECTOR_HH
