/**
 * @file
 * Noise model for the density-matrix simulator. The paper's noisy
 * case studies (Section VI-D) use a depolarizing error model with a
 * realistic CNOT error rate; we reproduce that and additionally allow
 * single-qubit depolarizing noise.
 */

#ifndef QCC_SIM_NOISE_MODEL_HH
#define QCC_SIM_NOISE_MODEL_HH

namespace qcc {

/** Depolarizing-noise parameters applied after each gate. */
struct NoiseModel
{
    /** Two-qubit depolarizing probability after each CNOT/SWAP-CNOT.
     *  Zero by default: a default NoiseModel is the identity. */
    double cnotDepolarizing = 0.0;

    /** Single-qubit depolarizing probability after 1q gates. */
    double singleQubitDepolarizing = 0.0;

    /** The paper's Section VI-D configuration: CNOT error 1e-4. */
    static NoiseModel
    paperDefault()
    {
        NoiseModel m;
        m.cnotDepolarizing = 1e-4;
        return m;
    }

    /** True if every channel is the identity. */
    bool
    isNoiseless() const
    {
        return cnotDepolarizing == 0.0 &&
               singleQubitDepolarizing == 0.0;
    }
};

} // namespace qcc

#endif // QCC_SIM_NOISE_MODEL_HH
