#include "sim/fusion.hh"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <utility>

#include "common/parallel.hh"
#include "sim/kernels.hh"
#include "sim/simd.hh"
#include "sim/statevector.hh"

namespace qcc {

namespace {

/** 2^12 complexes = 64 KiB per block: comfortably inside L2 with
 *  room for the scratch pattern/buffer the executor keeps hot. */
constexpr unsigned kBlockBits = 12;

/** How far the builder scans backward for a merge partner. */
constexpr size_t kLookback = 16;

bool
envFusionEnabled()
{
    const char *e = std::getenv("QCC_FUSION");
    return !(e && e[0] == '0' && e[1] == '\0');
}

std::atomic<bool> &
fusionFlag()
{
    static std::atomic<bool> flag(envFusionEnabled());
    return flag;
}

std::string
describeIssue(const SimIssue &issue)
{
    if (issue.gateIndex < 0)
        return issue.what;
    return "gate " + std::to_string(issue.gateIndex) + ": " +
           issue.what;
}

} // namespace

bool
fusionEnabled()
{
    return fusionFlag().load(std::memory_order_relaxed);
}

void
setFusionEnabled(bool enabled)
{
    fusionFlag().store(enabled, std::memory_order_relaxed);
}

SimError::SimError(SimIssue issue)
    : std::runtime_error(describeIssue(issue)), issue_(std::move(issue))
{
}

std::optional<SimIssue>
validateCircuit(const Circuit &c, unsigned width)
{
    if (c.numQubits() != width)
        return SimIssue{"circuit width " +
                            std::to_string(c.numQubits()) +
                            " does not match register width " +
                            std::to_string(width),
                        -1};
    const auto &gates = c.gates();
    for (size_t g = 0; g < gates.size(); ++g) {
        const Gate &gate = gates[g];
        if (gate.q0 >= width)
            return SimIssue{gateName(gate.kind) + " operand q" +
                                std::to_string(gate.q0) +
                                " out of range for width " +
                                std::to_string(width),
                            long(g)};
        if (!isTwoQubit(gate.kind))
            continue;
        if (gate.q1 >= width)
            return SimIssue{gateName(gate.kind) + " operand q" +
                                std::to_string(gate.q1) +
                                " out of range for width " +
                                std::to_string(width),
                            long(g)};
        if (gate.q0 == gate.q1)
            return SimIssue{gateName(gate.kind) +
                                " operands are identical (q" +
                                std::to_string(gate.q0) + ")",
                            long(g)};
    }
    return std::nullopt;
}

void
validateCircuitOrThrow(const Circuit &c, unsigned width)
{
    if (auto issue = validateCircuit(c, width))
        throw SimError(std::move(*issue));
}

// ---------------------------------------------------------------
// FusionBuilder
// ---------------------------------------------------------------

FusionBuilder::FusionBuilder(unsigned width_bits) : width(width_bits)
{
}

bool
FusionBuilder::touches(const Pending &op, unsigned bit) const
{
    switch (op.kind) {
      case FusedOp::Kind::OneQ:
        return op.b0 == bit;
      case FusedOp::Kind::Cnot:
      case FusedOp::Kind::Swap:
        return op.b0 == bit || op.b1 == bit;
      case FusedOp::Kind::Diag:
        for (const auto &f : op.factors)
            if (f.bit == bit)
                return true;
        return false;
    }
    return true;
}

void
FusionBuilder::addDiag(unsigned bit, cplx d0, cplx d1)
{
    // Scan backward past ops a diagonal on `bit` commutes with: any
    // op not touching the bit, and CNOTs whose *control* is the bit
    // (a diagonal commutes through the control).
    size_t steps = 0;
    for (size_t i = pending.size(); i-- > 0 && steps < kLookback;
         ++steps) {
        Pending &op = pending[i];
        switch (op.kind) {
          case FusedOp::Kind::Diag:
            // Diagonals commute with diagonals: merge here.
            for (auto &f : op.factors) {
                if (f.bit == bit) {
                    f.d0 *= d0;
                    f.d1 *= d1;
                    return;
                }
            }
            op.factors.push_back({bit, d0, d1});
            return;
          case FusedOp::Kind::OneQ:
            if (op.b0 == bit) {
                // diag applied after the matrix: scale its rows.
                op.u[0] *= d0;
                op.u[1] *= d0;
                op.u[2] *= d1;
                op.u[3] *= d1;
                return;
            }
            continue;
          case FusedOp::Kind::Cnot:
            if (op.b1 == bit)
                break; // target flips the bit: blocked
            continue;  // control or disjoint: commutes
          case FusedOp::Kind::Swap:
            if (touches(op, bit))
                break;
            continue;
        }
        break;
    }
    Pending p;
    p.kind = FusedOp::Kind::Diag;
    p.factors.push_back({bit, d0, d1});
    pending.push_back(std::move(p));
}

void
FusionBuilder::add1q(unsigned bit, const cplx u[4])
{
    // Accumulate the incoming matrix while walking backward past ops
    // that do not touch the bit; pending diagonal factors on the bit
    // are absorbed as column scales (they execute first), and an
    // earlier 1q on the same bit takes the whole product.
    cplx acc[4] = {u[0], u[1], u[2], u[3]};
    size_t steps = 0;
    for (size_t i = pending.size(); i-- > 0 && steps < kLookback;
         ++steps) {
        Pending &op = pending[i];
        switch (op.kind) {
          case FusedOp::Kind::OneQ:
            if (op.b0 == bit) {
                const cplx m0 = acc[0] * op.u[0] + acc[1] * op.u[2];
                const cplx m1 = acc[0] * op.u[1] + acc[1] * op.u[3];
                const cplx m2 = acc[2] * op.u[0] + acc[3] * op.u[2];
                const cplx m3 = acc[2] * op.u[1] + acc[3] * op.u[3];
                op.u[0] = m0;
                op.u[1] = m1;
                op.u[2] = m2;
                op.u[3] = m3;
                return;
            }
            continue;
          case FusedOp::Kind::Diag: {
              bool absorbed = false;
              for (size_t f = 0; f < op.factors.size(); ++f) {
                  if (op.factors[f].bit != bit)
                      continue;
                  // diag executes before acc: scale its columns.
                  const DiagFactor d = op.factors[f];
                  acc[0] *= d.d0;
                  acc[2] *= d.d0;
                  acc[1] *= d.d1;
                  acc[3] *= d.d1;
                  op.factors.erase(op.factors.begin() + long(f));
                  absorbed = true;
                  break;
              }
              (void)absorbed;
              continue; // an emptied Diag is skipped at build()
          }
          case FusedOp::Kind::Cnot:
          case FusedOp::Kind::Swap:
            if (touches(op, bit))
                break;
            continue;
        }
        break;
    }
    Pending p;
    p.kind = FusedOp::Kind::OneQ;
    p.b0 = bit;
    p.u[0] = acc[0];
    p.u[1] = acc[1];
    p.u[2] = acc[2];
    p.u[3] = acc[3];
    pending.push_back(std::move(p));
}

void
FusionBuilder::addCnot(unsigned control, unsigned target)
{
    Pending p;
    p.kind = FusedOp::Kind::Cnot;
    p.b0 = control;
    p.b1 = target;
    pending.push_back(std::move(p));
}

void
FusionBuilder::addSwap(unsigned a, unsigned b)
{
    Pending p;
    p.kind = FusedOp::Kind::Swap;
    p.b0 = a;
    p.b1 = b;
    pending.push_back(std::move(p));
}

FusedProgram
FusionBuilder::build()
{
    FusedProgram prog;
    prog.widthBits = width;
    for (auto &p : pending) {
        if (p.kind == FusedOp::Kind::Diag && p.factors.empty())
            continue; // fully absorbed into later matrices
        FusedOp op;
        op.kind = p.kind;
        op.b0 = p.b0;
        op.b1 = p.b1;
        op.u[0] = p.u[0];
        op.u[1] = p.u[1];
        op.u[2] = p.u[2];
        op.u[3] = p.u[3];
        if (p.kind == FusedOp::Kind::Diag) {
            op.fBegin = uint32_t(prog.factors.size());
            for (const auto &f : p.factors)
                prog.factors.push_back(f);
            op.fEnd = uint32_t(prog.factors.size());
        }
        prog.ops.push_back(op);
    }
    pending.clear();
    return prog;
}

FusedProgram
fuseCircuit(const Circuit &c)
{
    FusionBuilder fb(c.numQubits());
    const cplx i(0, 1);
    for (const Gate &g : c.gates()) {
        switch (g.kind) {
          case GateKind::Z:
            fb.addDiag(g.q0, 1.0, -1.0);
            break;
          case GateKind::S:
            fb.addDiag(g.q0, 1.0, i);
            break;
          case GateKind::Sdg:
            fb.addDiag(g.q0, 1.0, -i);
            break;
          case GateKind::RZ:
            fb.addDiag(g.q0, std::exp(-i * (g.angle / 2)),
                       std::exp(i * (g.angle / 2)));
            break;
          case GateKind::CNOT:
            fb.addCnot(g.q0, g.q1);
            break;
          case GateKind::SWAP:
            fb.addSwap(g.q0, g.q1);
            break;
          default: {
              cplx u[4];
              gateMatrix(g.kind, g.angle, u);
              fb.add1q(g.q0, u);
              break;
          }
        }
    }
    FusedProgram p = fb.build();
    p.sourceGates = c.size();
    return p;
}

// ---------------------------------------------------------------
// Cache-blocked executor
// ---------------------------------------------------------------

namespace {

/** Per-Diag execution plan: the low-bit factors collapse into one
 *  pattern shared by every block; high-bit factors pick a per-block
 *  constant from the block base. */
struct DiagExec {
    std::vector<cplx> pattern; // length = power of two (>= 1)
    std::vector<DiagFactor> high;
};

DiagExec
buildDiagExec(const FusedProgram &p, const FusedOp &op,
              unsigned block_bits)
{
    DiagExec dx;
    unsigned patBits = 0;
    for (uint32_t f = op.fBegin; f < op.fEnd; ++f) {
        const DiagFactor &fac = p.factors[f];
        if (fac.bit < block_bits)
            patBits = std::max(patBits, fac.bit + 1);
        else
            dx.high.push_back(fac);
    }
    dx.pattern.assign(size_t{1} << patBits, cplx(1.0, 0.0));
    for (uint32_t f = op.fBegin; f < op.fEnd; ++f) {
        const DiagFactor &fac = p.factors[f];
        if (fac.bit < block_bits)
            kern::ranges::diag1q(dx.pattern.data(), 0,
                                 dx.pattern.size(),
                                 uint64_t{1} << fac.bit, fac.d0,
                                 fac.d1);
    }
    return dx;
}

bool
blockLocal(const FusedOp &op, unsigned block_bits)
{
    switch (op.kind) {
      case FusedOp::Kind::OneQ:
        return op.b0 < block_bits;
      case FusedOp::Kind::Diag:
        return true; // high factors fold into a block constant
      case FusedOp::Kind::Cnot:
        // A high control only selects which blocks get the X.
        return op.b1 < block_bits;
      case FusedOp::Kind::Swap:
        return op.b0 < block_bits && op.b1 < block_bits;
    }
    return false;
}

void
applyOpInBlock(cplx *base, size_t block_len, uint64_t block_base,
               const FusedOp &op, const DiagExec *dx)
{
    using namespace kern;
    switch (op.kind) {
      case FusedOp::Kind::OneQ:
        ranges::apply1q(base, 0, block_len / 2, uint64_t{1} << op.b0,
                        op.u);
        return;
      case FusedOp::Kind::Diag: {
          cplx scale(1.0, 0.0);
          for (const auto &f : dx->high)
              scale *= (block_base & (uint64_t{1} << f.bit)) ? f.d1
                                                             : f.d0;
          ranges::diagMul(base, 0, block_len, dx->pattern.data(),
                          dx->pattern.size() - 1, scale);
          return;
      }
      case FusedOp::Kind::Cnot:
        if (op.b0 < unsigned(std::countr_zero(block_len))) {
            ranges::applyCx(base, 0, block_len / 2,
                            uint64_t{1} << op.b0,
                            uint64_t{1} << op.b1);
        } else if (block_base & (uint64_t{1} << op.b0)) {
            // High control: the block base decides; the whole block
            // gets the X on the target (or nothing).
            ranges::applyX(base, 0, block_len / 2,
                           uint64_t{1} << op.b1);
        }
        return;
      case FusedOp::Kind::Swap:
        ranges::applySwap(base, 0, block_len / 2,
                          uint64_t{1} << op.b0,
                          uint64_t{1} << op.b1);
        return;
    }
}

void
applyOpGlobal(cplx *amp, size_t dim, const FusedOp &op)
{
    switch (op.kind) {
      case FusedOp::Kind::OneQ:
        kern::apply1q(amp, dim, op.b0, op.u);
        return;
      case FusedOp::Kind::Cnot:
        kern::applyCx(amp, dim, op.b0, op.b1);
        return;
      case FusedOp::Kind::Swap:
        kern::applySwap(amp, dim, op.b0, op.b1);
        return;
      case FusedOp::Kind::Diag:
        return; // Diag is always block-local
    }
}

} // namespace

void
applyFusedProgram(cplx *amp, const FusedProgram &p)
{
    const size_t dim = size_t{1} << p.widthBits;
    const unsigned blockBits =
        std::min<unsigned>(kBlockBits, p.widthBits);
    const size_t blockLen = size_t{1} << blockBits;
    const size_t nBlocks = dim >> blockBits;

    std::vector<int> diagIndex(p.ops.size(), -1);
    std::vector<DiagExec> diags;
    for (size_t o = 0; o < p.ops.size(); ++o) {
        if (p.ops[o].kind != FusedOp::Kind::Diag)
            continue;
        diagIndex[o] = int(diags.size());
        diags.push_back(buildDiagExec(p, p.ops[o], blockBits));
    }

    const size_t grain =
        std::max<size_t>(1, kParallelGrain >> blockBits);
    size_t i = 0;
    while (i < p.ops.size()) {
        if (!blockLocal(p.ops[i], blockBits)) {
            applyOpGlobal(amp, dim, p.ops[i]);
            ++i;
            continue;
        }
        size_t j = i + 1;
        while (j < p.ops.size() && blockLocal(p.ops[j], blockBits))
            ++j;
        parallelFor(
            0, nBlocks,
            [&](size_t lo, size_t hi) {
                for (size_t blk = lo; blk < hi; ++blk) {
                    cplx *base = amp + (blk << blockBits);
                    const uint64_t blockBase = uint64_t(blk)
                                               << blockBits;
                    for (size_t o = i; o < j; ++o)
                        applyOpInBlock(base, blockLen, blockBase,
                                       p.ops[o],
                                       diagIndex[o] >= 0
                                           ? &diags[size_t(
                                                 diagIndex[o])]
                                           : nullptr);
                }
            },
            grain);
        i = j;
    }
}

// ---------------------------------------------------------------
// Block-at-a-time rotated family expectation
// ---------------------------------------------------------------

double
rotatedGroupExpectation(
    const cplx *amp, size_t dim,
    const std::vector<std::pair<unsigned, std::array<cplx, 4>>>
        &rotations,
    const double *w, const uint64_t *zmask, size_t n_terms)
{
    const unsigned dimBits = unsigned(std::countr_zero(dim));
    const unsigned blockBits = std::min<unsigned>(kBlockBits, dimBits);
    const size_t blockLen = size_t{1} << blockBits;
    const size_t nBlocks = dim >> blockBits;
    const size_t grain =
        std::max<size_t>(1, kParallelGrain >> blockBits);

    bool allLow = true;
    for (const auto &r : rotations)
        allLow = allLow && r.first < blockBits;

    if (allLow) {
        // Zero-copy sweep: rotate one cached block at a time into a
        // small thread-local buffer and accumulate while it is hot.
        return parallelReduce(
            0, nBlocks, 0.0,
            [&](size_t lo, size_t hi) {
                static thread_local std::vector<cplx> buf;
                buf.resize(blockLen);
                double s = 0.0;
                for (size_t blk = lo; blk < hi; ++blk) {
                    const cplx *src = amp + (blk << blockBits);
                    std::copy(src, src + blockLen, buf.begin());
                    for (const auto &[q, u] : rotations)
                        kern::ranges::apply1q(buf.data(), 0,
                                              blockLen / 2,
                                              uint64_t{1} << q,
                                              u.data());
                    s += kern::ranges::groupExpect(
                        buf.data(), 0, blockLen,
                        uint64_t(blk) << blockBits, w, zmask,
                        n_terms);
                }
                return s;
            },
            grain);
    }

    // Some rotation crosses blocks: one full scratch copy, high
    // rotations applied globally, then the blocked low+sweep pass.
    static thread_local std::vector<cplx> scratch;
    scratch.resize(dim);
    parallelFor(0, dim, [&](size_t lo, size_t hi) {
        std::copy(amp + lo, amp + hi, scratch.begin() + long(lo));
    });
    for (const auto &[q, u] : rotations)
        if (q >= blockBits)
            kern::apply1q(scratch.data(), dim, q, u.data());
    return parallelReduce(
        0, nBlocks, 0.0,
        [&](size_t lo, size_t hi) {
            double s = 0.0;
            for (size_t blk = lo; blk < hi; ++blk) {
                cplx *base = scratch.data() + (blk << blockBits);
                for (const auto &[q, u] : rotations)
                    if (q < blockBits)
                        kern::ranges::apply1q(base, 0, blockLen / 2,
                                              uint64_t{1} << q,
                                              u.data());
                s += kern::ranges::groupExpect(
                    base, 0, blockLen, uint64_t(blk) << blockBits, w,
                    zmask, n_terms);
            }
            return s;
        },
        grain);
}

} // namespace qcc
