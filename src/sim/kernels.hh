/**
 * @file
 * Specialized amplitude-array kernels shared by the statevector and
 * density-matrix simulators. Every kernel operates on a raw
 * std::complex<double> array addressed by basis-index bit masks, so
 * the density matrix can reuse them on its vectorized form (ket masks
 * as-is, bra masks shifted by n).
 *
 * The fast paths follow the standard bit-mask simulation recipe
 * (cf. arXiv:2509.04955): pair loops enumerate 2^(n-1) compacted
 * indices and expand them around a pivot bit instead of scanning all
 * 2^n indices with a skip branch; diagonal and permutation gates get
 * dedicated single-pass kernels; the Pauli-rotation kernel folds the
 * i^{|x&z|} prefactor and the (-1)^{|z&x|} partner-sign relation into
 * constants so each amplitude pair costs one popcount. All sweeps are
 * block-parallel via parallelFor/parallelReduce, and each chunk runs
 * through the runtime-dispatched scalar/AVX2 range primitives of
 * sim/simd.hh (QCC_SIMD selects the path; see that header).
 *
 * The *Generic functions preserve the original full-scan reference
 * implementations; tests check kernel/generic equivalence and
 * bench_sim_micro measures the speedup.
 */

#ifndef QCC_SIM_KERNELS_HH
#define QCC_SIM_KERNELS_HH

#include <complex>
#include <cstddef>
#include <cstdint>

namespace qcc {
namespace kern {

using cplx = std::complex<double>;

/**
 * Expand a compacted index k in [0, dim/2) to the full index with a
 * zero at the pivot bit position: bits of k below the pivot stay put,
 * bits at or above it shift up by one.
 */
inline size_t
expandBit(size_t k, uint64_t pivot)
{
    const uint64_t low = pivot - 1;
    return ((k & ~low) << 1) | (k & low);
}

/** Apply an arbitrary 2x2 unitary (row-major) on index bit q. */
void apply1q(cplx *amp, size_t dim, unsigned q, const cplx u[4]);

/** Diagonal 1q gate diag(d0, d1) on index bit q (Z, S, Sdg, RZ). */
void applyDiag1q(cplx *amp, size_t dim, unsigned q, cplx d0, cplx d1);

/** X permutation kernel: swap amplitudes across index bit q. */
void applyX(cplx *amp, size_t dim, unsigned q);

/** CX permutation kernel on (control, target) index bits. */
void applyCx(cplx *amp, size_t dim, unsigned control, unsigned target);

/** SWAP permutation kernel on index bits (a, b). */
void applySwap(cplx *amp, size_t dim, unsigned a, unsigned b);

/**
 * exp(i theta P) for the canonical Pauli P = i^{|x&z|} X^x Z^z given
 * by raw index-bit masks. Stride-based pair kernel; a pure phase pass
 * when x == 0.
 */
void applyPauliRotation(cplx *amp, size_t dim, uint64_t x, uint64_t z,
                        double theta);

/** Apply P in place (same mask convention). */
void applyPauli(cplx *amp, size_t dim, uint64_t x, uint64_t z);

/** out[b] += w * (P amp)[b] for all b. */
void accumulatePauli(const cplx *amp, size_t dim, uint64_t x, uint64_t z,
                     cplx w, cplx *out);

/** Re <amp| P |amp> (amp need not be normalized). */
double expectation(const cplx *amp, size_t dim, uint64_t x, uint64_t z);

/**
 * One grouped sweep for a qubit-wise-commuting family already rotated
 * to its diagonal basis: returns sum_t w[t] * sum_b |amp[b]|^2 *
 * (-1)^{|zmask[t] & b|}. The per-amplitude probability is computed
 * once and shared by every term of the family.
 */
double diagonalGroupExpectation(const cplx *amp, size_t dim,
                                const double *w, const uint64_t *zmask,
                                size_t n_terms);

/**
 * Uniform single-qubit depolarizing channel on a vectorized density
 * matrix (rho over `dim` = 4^n entries, bra index bits above the n
 * ket bits): D(rho) = (1 - 4p/3) rho + (4p/3)(I/2 (x) Tr_q rho).
 * No-op for p <= 0.
 */
void depolarize1(cplx *rho, size_t dim, unsigned q, unsigned n_qubits,
                 double p);

/**
 * Uniform two-qubit depolarizing channel on a vectorized density
 * matrix: D(rho) = (1 - 16p/15) rho + (16p/15)(I4/4 (x) Tr_ab rho).
 * No-op for p <= 0.
 */
void depolarize2(cplx *rho, size_t dim, unsigned a, unsigned b,
                 unsigned n_qubits, double p);

/** @{ Reference full-scan implementations (the seed's algorithms). */
void apply1qGeneric(cplx *amp, size_t dim, unsigned q, const cplx u[4]);
void applyPauliRotationGeneric(cplx *amp, size_t dim, uint64_t x,
                               uint64_t z, double theta);
double expectationGeneric(const cplx *amp, size_t dim, uint64_t x,
                          uint64_t z);
/** @} */

} // namespace kern
} // namespace qcc

#endif // QCC_SIM_KERNELS_HH
