/**
 * @file
 * Matrix-free Lanczos ground-state solver. The paper's "Ground State"
 * reference curves are the exact minimum eigenvalues of the qubit
 * Hamiltonians; this solver computes them without materializing the
 * 2^n x 2^n matrix, using the Pauli-sum apply kernel.
 */

#ifndef QCC_SIM_LANCZOS_HH
#define QCC_SIM_LANCZOS_HH

#include <cstdint>

#include "pauli/pauli_sum.hh"

namespace qcc {

/** Options for the Lanczos iteration. */
struct LanczosOptions
{
    int maxIter = 300;        ///< Krylov dimension cap
    double tol = 1e-10;       ///< Ritz-value convergence tolerance
    uint64_t seed = 12345;    ///< random start vector seed
};

/**
 * Minimum eigenvalue of a Hermitian Pauli sum via plain three-term
 * Lanczos with a random start vector. Loss of orthogonality can clone
 * converged Ritz values but cannot produce a spurious value below the
 * true minimum, so the returned ground energy is reliable.
 */
double lanczosGroundEnergy(const PauliSum &h,
                           const LanczosOptions &opts = {});

/**
 * Minimum eigenvalue of the symmetric tridiagonal matrix with the
 * given diagonal and off-diagonal entries (bisection on the Sturm
 * sequence). Exposed for testing.
 */
double tridiagMinEigen(const std::vector<double> &diag,
                       const std::vector<double> &off);

} // namespace qcc

#endif // QCC_SIM_LANCZOS_HH
