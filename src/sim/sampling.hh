/**
 * @file
 * Shot-based Hamiltonian estimation — the NISQ measurement model the
 * ideal expectation path bypasses. Construction partitions the Pauli
 * sum into qubit-wise-commuting measurement families (pauli/grouping)
 * and fixes a per-family shot allocation proportional to the family's
 * total |coefficient| weight (the shot-frugal heuristic: families
 * that move the energy most get measured most; cf. the grouped
 * measurement-cost analyses of arXiv:2503.02778). Identity terms are
 * an exact constant and consume no shots.
 *
 * measure() then samples each family's outcome distribution through
 * SimBackend::measurementProbabilities with a caller-supplied seeded
 * Rng, estimates every member term from the family's shared shot
 * record, and returns the energy with its statistical variance and
 * the shots actually spent. The draw order is fixed (family by
 * family, shot by shot), so a given (state, seed, options) triple
 * reproduces bit-for-bit.
 */

#ifndef QCC_SIM_SAMPLING_HH
#define QCC_SIM_SAMPLING_HH

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "pauli/grouping.hh"
#include "pauli/pauli_sum.hh"
#include "sim/backend.hh"
#include "sim/statevector.hh"

namespace qcc {

/** Shot budget and allocation policy for one energy estimate. */
struct SamplingOptions
{
    /**
     * Total shots per energy estimate, split across the measurement
     * families. Defaults to QCC_SHOTS when the environment sets it,
     * otherwise 8192.
     */
    uint64_t shots = defaultShots();

    /**
     * Floor per family: even a tiny-coefficient family keeps enough
     * shots for a meaningful mean (and a nonzero variance estimate).
     */
    uint64_t minShotsPerGroup = 16;

    /**
     * Weighted allocation (shots_g proportional to sum_t |w_t| over
     * the family) when true; uniform across families when false.
     */
    bool proportionalAllocation = true;

    /**
     * Measurement-family partition strategy (null = greedy
     * first-fit). The api-layer GroupingRegistry resolves strategy
     * names ("greedy", "sorted-insertion") onto this hook.
     */
    GroupingFn grouping;

    /** QCC_SHOTS when set (parsed as unsigned), otherwise 8192. */
    static uint64_t defaultShots();
};

/** One sampled energy estimate. */
struct SampledEnergy
{
    double energy = 0.0;   ///< shot-estimated <H>
    /**
     * Variance of the energy estimator: the sum over families of the
     * sample variance of the family observable divided by its shots.
     * Zero only when every sampled family is deterministic.
     */
    double variance = 0.0;
    uint64_t shots = 0;    ///< shots actually spent
};

/**
 * Precompiled shot-sampling estimator for one Hamiltonian. Immutable
 * after construction and safe to share across threads; each measure()
 * call works entirely in locals plus the caller's Rng.
 */
class SamplingEngine
{
  public:
    explicit SamplingEngine(const PauliSum &h,
                            SamplingOptions opts = {});

    /**
     * Estimate <H> in the backend's current (already prepared)
     * state. Draws every family's shots from the backend's outcome
     * distribution using `rng`; consumes exactly the same rng stream
     * for the same engine regardless of threading.
     */
    SampledEnergy measure(SimBackend &backend, Rng &rng) const;

    /**
     * Same estimate directly from a bare statevector (the gradient
     * engine's prefix-shared states never live in a backend).
     */
    SampledEnergy measure(const Statevector &psi, Rng &rng) const;

    /** Measurement families holding at least one sampled term. */
    size_t numGroups() const { return groups.size(); }

    /** Shots assigned to each family (allocation, not spend). */
    const std::vector<uint64_t> &shotAllocation() const
    {
        return allocation;
    }

    /** Exact contribution of identity terms (never sampled). */
    double constantOffset() const { return offset; }

    const SamplingOptions &options() const { return opts; }
    const PauliSum &hamiltonian() const { return ham; }

  private:
    using ProbabilityFn = std::function<std::vector<double>(
        const std::vector<std::pair<unsigned, PauliOp>> &)>;

    SampledEnergy measureFrom(const ProbabilityFn &probabilities,
                              Rng &rng) const;

    /** One QWC family compiled for sampling. */
    struct SampledGroup
    {
        /** Measurement-basis rotations shared by every member. */
        std::vector<std::pair<unsigned, PauliOp>> rotations;
        std::vector<double> weights;  ///< real term coefficients
        std::vector<uint64_t> zMasks; ///< post-rotation Z supports
        double absWeight = 0.0;       ///< sum of |weights|
    };

    PauliSum ham;
    SamplingOptions opts;
    unsigned nQubits;
    double offset = 0.0;
    std::vector<SampledGroup> groups;
    std::vector<uint64_t> allocation;
};

} // namespace qcc

#endif // QCC_SIM_SAMPLING_HH
