#include "sim/sampling.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>

#include "common/logging.hh"
#include "obs/trace.hh"
#include "pauli/grouping.hh"

namespace qcc {

uint64_t
SamplingOptions::defaultShots()
{
    static const uint64_t shots = envUint("QCC_SHOTS", 8192, 1);
    return shots;
}

SamplingEngine::SamplingEngine(const PauliSum &h, SamplingOptions o)
    : ham(h), opts(o), nQubits(h.numQubits())
{
    if (ham.maxImagCoeff() > 1e-9)
        warn("SamplingEngine: dropping imaginary coefficient parts "
             "(Hamiltonian should be Hermitian)");
    if (opts.shots == 0)
        panic("SamplingEngine: shot budget must be positive");

    // Identity terms are an exact constant: sampling them would spend
    // shots on an observable with zero variance.
    PauliSum sampled(nQubits);
    for (const auto &t : h.terms()) {
        if (t.string.isIdentity())
            offset += t.coeff.real();
        else
            sampled.add(t.coeff, t.string);
    }

    const std::vector<MeasurementGroup> families =
        opts.grouping ? opts.grouping(sampled)
                      : groupQubitWise(sampled);
    for (const auto &group : families) {
        SampledGroup g;
        g.rotations = basisChangeOps(group.basis);
        for (size_t idx : group.termIndices) {
            const PauliTerm &t = sampled.terms()[idx];
            g.weights.push_back(t.coeff.real());
            // After the basis rotations every member is Z on exactly
            // its own support.
            g.zMasks.push_back(t.string.supportMask());
            g.absWeight += std::fabs(t.coeff.real());
        }
        groups.push_back(std::move(g));
    }

    // Shot allocation: proportional to family |coefficient| weight
    // with a per-family floor, or uniform. Computed once — the
    // allocation is a property of the Hamiltonian, not the state.
    allocation.assign(groups.size(), 0);
    if (groups.empty())
        return;
    double totalWeight = 0.0;
    for (const auto &g : groups)
        totalWeight += g.absWeight;
    const uint64_t floor_shots =
        std::min(opts.minShotsPerGroup,
                 std::max<uint64_t>(1, opts.shots / groups.size()));
    size_t heaviest = 0;
    uint64_t assigned = 0;
    for (size_t i = 0; i < groups.size(); ++i) {
        uint64_t s;
        if (!opts.proportionalAllocation || totalWeight <= 0.0) {
            s = opts.shots / groups.size();
        } else {
            s = uint64_t(std::llround(
                double(opts.shots) * groups[i].absWeight /
                totalWeight));
        }
        allocation[i] = std::max(floor_shots, s);
        assigned += allocation[i];
        if (groups[i].absWeight > groups[heaviest].absWeight)
            heaviest = i;
    }
    // Rounding may leave the budget short; the heaviest family (the
    // one whose variance dominates) absorbs the remainder.
    if (assigned < opts.shots)
        allocation[heaviest] += opts.shots - assigned;
}

SampledEnergy
SamplingEngine::measure(SimBackend &backend, Rng &rng) const
{
    if (backend.numQubits() != nQubits)
        panic("SamplingEngine::measure: backend/Hamiltonian width "
              "mismatch");
    return measureFrom(
        [&](const std::vector<std::pair<unsigned, PauliOp>> &rot) {
            return backend.measurementProbabilities(rot);
        },
        rng);
}

SampledEnergy
SamplingEngine::measure(const Statevector &psi, Rng &rng) const
{
    if (psi.numQubits() != nQubits)
        panic("SamplingEngine::measure: state/Hamiltonian width "
              "mismatch");
    return measureFrom(
        [&](const std::vector<std::pair<unsigned, PauliOp>> &rot) {
            return psi.basisProbabilities(rot);
        },
        rng);
}

SampledEnergy
SamplingEngine::measureFrom(const ProbabilityFn &probabilities,
                            Rng &rng) const
{
    TraceSpan span("sample.measure");
    span.arg("groups", groups.size());
    span.arg("shots", opts.shots);

    SampledEnergy out;
    out.energy = offset;

    for (size_t gi = 0; gi < groups.size(); ++gi) {
        const SampledGroup &g = groups[gi];
        const uint64_t shots = allocation[gi];

        std::vector<double> probs = probabilities(g.rotations);

        // Inverse-CDF sampling: one cumulative pass, then one binary
        // search per shot. Outcomes are tallied so each distinct
        // bitstring's term values are evaluated once.
        std::vector<double> cdf(probs.size());
        double acc = 0.0;
        for (size_t b = 0; b < probs.size(); ++b) {
            acc += probs[b];
            cdf[b] = acc;
        }
        if (acc <= 0.0)
            panic("SamplingEngine::measure: backend returned an "
                  "empty outcome distribution");

        std::vector<uint32_t> counts(probs.size(), 0);
        for (uint64_t s = 0; s < shots; ++s) {
            const double u = rng.uniform() * acc;
            const size_t b =
                std::upper_bound(cdf.begin(), cdf.end(), u) -
                cdf.begin();
            ++counts[std::min(b, cdf.size() - 1)];
        }

        // Family observable per outcome: sum_t w_t (-1)^{|b & m_t|}.
        // Mean estimates the family energy; the sample variance of
        // the observable over the shot record gives the estimator
        // variance contribution var/shots.
        double sum = 0.0, sumSq = 0.0;
        for (size_t b = 0; b < counts.size(); ++b) {
            if (!counts[b])
                continue;
            double v = 0.0;
            for (size_t t = 0; t < g.weights.size(); ++t) {
                const int sign =
                    (std::popcount(uint64_t(b) & g.zMasks[t]) & 1)
                        ? -1
                        : 1;
                v += g.weights[t] * sign;
            }
            sum += double(counts[b]) * v;
            sumSq += double(counts[b]) * v * v;
        }
        const double mean = sum / double(shots);
        out.energy += mean;
        if (shots > 1) {
            const double var =
                std::max(0.0, (sumSq - double(shots) * mean * mean) /
                                  double(shots - 1));
            out.variance += var / double(shots);
        }
        out.shots += shots;
    }
    return out;
}

} // namespace qcc
