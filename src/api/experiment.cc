#include "api/experiment.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "ansatz/compression.hh"
#include "common/logging.hh"
#include "obs/trace.hh"
#include "sim/lanczos.hh"
#include "sim/sampling.hh"
#include "store/problem_store.hh"
#include "vqe/estimation.hh"
#include "vqe/vqe.hh"

namespace qcc {

namespace {

using clock_type = std::chrono::steady_clock;

double
millisSince(clock_type::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               clock_type::now() - t0)
        .count();
}

const BenchmarkMolecule &
catalogEntry(const std::string &name)
{
    for (const auto &entry : benchmarkMolecules())
        if (entry.name == name)
            return entry;
    std::string known;
    for (const auto &entry : benchmarkMolecules())
        known += (known.empty() ? "" : ", ") + entry.name;
    throw SpecError("molecule",
                    "unknown molecule '" + name +
                        "'; catalog: " + known);
}

/** Largest device size any architecture key may name. */
constexpr long kMaxDeviceQubits = 4096;

/**
 * Parse the digits of `s` after `prefix`; -1 when not that shape or
 * outside (0, kMaxDeviceQubits] — a wrapped-around size must reject
 * the key, not build a different device.
 */
long
suffixNumber(const std::string &s, const std::string &prefix)
{
    if (s.size() <= prefix.size() ||
        s.compare(0, prefix.size(), prefix) != 0)
        return -1;
    char *end = nullptr;
    const char *digits = s.c_str() + prefix.size();
    const long v = std::strtol(digits, &end, 10);
    if (end == digits || *end != '\0' || v <= 0 ||
        v > kMaxDeviceQubits)
        return -1;
    return v;
}

} // namespace

Device
makeDevice(const std::string &architecture)
{
    Device dev;
    dev.name = architecture;
    if (long n = suffixNumber(architecture, "xtree"); n > 0) {
        dev.tree = makeXTree(unsigned(n));
        dev.graph = dev.tree->graph;
        return dev;
    }
    if (architecture == "grid17") {
        dev.graph = makeGrid17Q();
        return dev;
    }
    if (architecture.compare(0, 4, "grid") == 0) {
        const size_t x = architecture.find('x', 4);
        if (x != std::string::npos) {
            const long rows =
                suffixNumber(architecture.substr(0, x), "grid");
            const long cols =
                suffixNumber(architecture.substr(x), "x");
            // The cap is on the device, not each dimension.
            if (rows > 0 && cols > 0 &&
                rows * cols <= kMaxDeviceQubits) {
                dev.graph = makeGrid(unsigned(rows), unsigned(cols));
                return dev;
            }
        }
    }
    throw SpecError("architecture",
                    "unknown device '" + architecture +
                        "'; expected xtree<N>, grid17, or "
                        "grid<R>x<C>");
}

Experiment::Experiment(ExperimentSpec s) : resolved(std::move(s))
{
    // Resolve every key now so a bad spec fails at construction with
    // the valid choices, not mid-run.
    experimentKindRegistry().get(resolved.kind);
    catalogEntry(resolved.molecule);
    estimationRegistry().get(resolved.mode);
    optimizerRegistry().get(resolved.optimizer);
    groupingRegistry().get(resolved.grouping);
    if (resolved.compression <= 0.0)
        throw SpecError("compression", "ratio must be positive");
    if (resolved.basisNg < 1)
        throw SpecError("basis_ng", "contraction count must be >= 1");
    if (!resolved.pipeline.empty()) {
        const PipelineOptions po =
            pipelinePresetRegistry().get(resolved.pipeline)();
        const bool routed =
            po.flow != PipelineOptions::Flow::ChainOnly;
        if (resolved.architecture.empty()) {
            if (routed)
                throw SpecError("architecture",
                                "pipeline preset '" +
                                    resolved.pipeline +
                                    "' routes onto a device; name "
                                    "one (xtree<N>, grid17, "
                                    "grid<R>x<C>)");
        } else {
            Device dev = makeDevice(resolved.architecture);
            if (po.flow == PipelineOptions::Flow::MergeToRoot &&
                !dev.tree)
                throw SpecError("architecture",
                                "Merge-to-Root needs a tree device "
                                "(xtree<N>), got '" +
                                    resolved.architecture + "'");
        }
    } else if (!resolved.architecture.empty()) {
        makeDevice(resolved.architecture); // validate anyway
    }
    if (resolved.evolveOrder != 1 && resolved.evolveOrder != 2)
        throw SpecError("evolve_order",
                        "product-formula order must be 1 or 2");
    if (resolved.evolveSteps < 0)
        throw SpecError("evolve_steps",
                        "step count cannot be negative");
    if (resolved.evolveTime < 0.0)
        throw SpecError("evolve_time",
                        "evolution time cannot be negative");
    if (resolved.kind == "evolve") {
        if (resolved.evolveSteps < 1)
            throw SpecError("evolve_steps",
                            "kind \"evolve\" needs at least one "
                            "Trotter step");
        if (!(resolved.evolveTime > 0.0))
            throw SpecError("evolve_time",
                            "kind \"evolve\" needs a positive "
                            "evolution time");
        if (resolved.mode != "ideal")
            throw SpecError("mode",
                            "time evolution runs on the ideal "
                            "statevector; use mode \"ideal\"");
    } else if (resolved.kind == "vqe") {
        // A typo'd kind must not silently drop the evolve fields.
        if (resolved.evolveSteps != 0 || resolved.evolveTime != 0.0)
            throw SpecError("evolve_steps",
                            "evolve_* fields apply to kinds "
                            "\"evolve\" and \"estimate\" only");
    }
}

ExperimentBuilder
Experiment::builder()
{
    return ExperimentBuilder();
}

namespace {

/**
 * Optional compile phase shared by every kind: when the spec names
 * a pipeline preset, compile `program` with `params` bound and fill
 * the CompiledStats block.
 */
void
compilePhase(const ExperimentSpec &resolved, const Ansatz &program,
             const std::vector<double> &params,
             ExperimentResult &out)
{
    if (resolved.pipeline.empty())
        return;
    const auto tCompile = clock_type::now();
    const PipelineOptions po =
        pipelinePresetRegistry().get(resolved.pipeline)();
    CompileResult compiled;
    if (po.flow == PipelineOptions::Flow::ChainOnly) {
        compiled = CompilerPipeline(po).compile(program, params);
    } else {
        Device dev = makeDevice(resolved.architecture);
        if (dev.tree)
            compiled = CompilerPipeline(*dev.tree, po)
                           .compile(program, params);
        else
            compiled = CompilerPipeline(*dev.graph, po)
                           .compile(program, params);
    }
    out.compiled.present = true;
    out.compiled.pipeline = resolved.pipeline;
    out.compiled.device = resolved.architecture;
    out.compiled.gates = compiled.circuit.totalGates();
    out.compiled.cnots = compiled.circuit.cnotCount();
    out.compiled.depth = compiled.circuit.depth();
    out.compiled.swaps = compiled.swapCount;
    out.compiled.overheadCnots = compiled.overheadCnots();
    out.compiled.millis = compiled.report.totalMillis;
    out.compiled.cacheHit = compiled.report.cacheHit;
    out.compileMillis = millisSince(tCompile);
}

/** Kind "vqe": the original ground-state flow. */
ExperimentResult
runVqeExperiment(const ExperimentSpec &resolved)
{
    const auto t0 = clock_type::now();
    ExperimentResult out;
    out.spec = resolved;

    // ---- chemistry + ansatz -------------------------------------
    const BenchmarkMolecule &entry = catalogEntry(resolved.molecule);
    const double bond =
        resolved.bond > 0.0 ? resolved.bond : entry.equilibriumBond;
    out.spec.bond = bond; // resolved for exact replay
    MolecularProblem prob =
        globalProblemStore().get(entry, bond, resolved.basisNg);
    Ansatz full = buildUccsd(prob.nSpatial, prob.nElectrons);
    out.fullParams = full.nParams;
    Ansatz ansatz;
    if (resolved.compression < 1.0)
        ansatz = compressAnsatz(full, prob.hamiltonian,
                                resolved.compression)
                     .ansatz;
    else
        ansatz = std::move(full);

    out.nQubits = prob.nQubits;
    out.nParams = ansatz.nParams;
    out.hamiltonianTerms = prob.hamiltonian.numTerms();
    out.hartreeFock = prob.hartreeFockEnergy;
    const GroupingFn &grouping =
        groupingRegistry().get(resolved.grouping);
    out.measurementSettings = grouping(prob.hamiltonian).size();
    if (resolved.reference) {
        out.fci = lanczosGroundEnergy(prob.hamiltonian);
        out.haveFci = true;
    }
    out.buildMillis = millisSince(t0);

    // ---- VQE through the estimation-strategy seam ---------------
    const auto tVqe = clock_type::now();
    VqeDriverOptions opts;
    opts.optimizer = optimizerRegistry().get(resolved.optimizer)();
    opts.noise.cnotDepolarizing = resolved.cnotError;
    opts.noise.singleQubitDepolarizing = resolved.singleQubitError;
    if (resolved.shots > 0)
        opts.sampling.shots = resolved.shots;
    opts.sampling.grouping = grouping;
    opts.maxIter = resolved.maxIter;
    opts.spsaIter = resolved.spsaIter;
    if (resolved.seed != 0)
        opts.seed = resolved.seed;
    out.spec.shots = opts.sampling.shots;
    out.spec.seed = opts.seed;

    VqeDriver driver(
        prob.hamiltonian, ansatz, opts,
        makeEstimationStrategy(
            resolved.mode, EstimationConfig{&prob.hamiltonian,
                                            opts.noise, opts.sampling,
                                            grouping}));
    out.vqe = driver.run();
    out.trace = driver.trace();
    out.shots = driver.shotsSpent();
    out.vqeMillis = millisSince(tVqe);

    compilePhase(resolved, ansatz, out.vqe.params, out);

    out.hamiltonian = std::move(prob.hamiltonian);
    out.ansatz = std::move(ansatz);
    out.totalMillis = millisSince(t0);
    return out;
}

/** Kind "evolve": Trotterized exp(-iHt) from the HF state. */
ExperimentResult
runEvolveExperiment(const ExperimentSpec &resolved)
{
    const auto t0 = clock_type::now();
    ExperimentResult out;
    out.spec = resolved;

    // ---- chemistry + Trotter program ----------------------------
    const BenchmarkMolecule &entry = catalogEntry(resolved.molecule);
    const double bond =
        resolved.bond > 0.0 ? resolved.bond : entry.equilibriumBond;
    out.spec.bond = bond;
    MolecularProblem prob =
        globalProblemStore().get(entry, bond, resolved.basisNg);
    const GroupingFn &grouping =
        groupingRegistry().get(resolved.grouping);
    const uint64_t hfMask =
        hartreeFockMask(prob.nSpatial, prob.nElectrons);
    TrotterBuild tb = buildTrotterAnsatz(
        prob.hamiltonian, hfMask, resolved.evolveSteps,
        resolved.evolveOrder, grouping);

    out.nQubits = prob.nQubits;
    out.nParams = 1; // dt
    out.fullParams = 1;
    out.hamiltonianTerms = prob.hamiltonian.numTerms();
    out.measurementSettings = grouping(prob.hamiltonian).size();
    out.hartreeFock = prob.hartreeFockEnergy;
    out.buildMillis = millisSince(t0);

    // ---- evolve on the ideal statevector ------------------------
    const auto tRun = clock_type::now();
    const double dt = resolved.evolveTime / resolved.evolveSteps;
    const Statevector psi = prepareAnsatzState(tb.ansatz, {dt});

    TimeEvolutionResult &ev = out.evolution;
    ev.present = true;
    ev.time = resolved.evolveTime;
    ev.steps = tb.steps;
    ev.order = tb.order;
    ev.termsPerStep = tb.termsPerStep;
    ev.identityTerms = tb.identityTerms;
    ev.initialEnergy = Statevector(prob.nQubits, hfMask)
                           .expectation(prob.hamiltonian);
    ev.finalEnergy = psi.expectation(prob.hamiltonian);
    out.vqe.energy = ev.finalEnergy; // the headline number
    out.vqe.params = {dt};
    if (resolved.reference &&
        prob.nQubits <= kMaxExactEvolveQubits) {
        const Statevector exact = exactEvolvedState(
            prob.hamiltonian, prob.nQubits, hfMask,
            resolved.evolveTime);
        ev.fidelity = stateFidelity(exact, psi);
        ev.haveFidelity = true;
    }
    // Per-step chain-plan cost: one step, no HF prep, shared
    // structure cache.
    {
        const TrotterBuild one = buildTrotterAnsatz(
            prob.hamiltonian, hfMask, 1, resolved.evolveOrder,
            grouping);
        const Circuit step =
            cachedChainCircuit(one.ansatz, {dt}, false);
        ev.stepGates = step.totalGates();
        ev.stepCnots = step.cnotCount();
        ev.stepDepth = step.depth();
    }
    out.vqeMillis = millisSince(tRun);

    compilePhase(resolved, tb.ansatz, {dt}, out);

    out.hamiltonian = std::move(prob.hamiltonian);
    out.ansatz = std::move(tb.ansatz);
    out.totalMillis = millisSince(t0);
    return out;
}

/** Kind "estimate": resource counts only, no simulator state. */
ExperimentResult
runEstimateExperiment(const ExperimentSpec &resolved)
{
    const auto t0 = clock_type::now();
    ExperimentResult out;
    out.spec = resolved;

    // ---- chemistry + program selection --------------------------
    const BenchmarkMolecule &entry = catalogEntry(resolved.molecule);
    const double bond =
        resolved.bond > 0.0 ? resolved.bond : entry.equilibriumBond;
    out.spec.bond = bond;
    MolecularProblem prob =
        globalProblemStore().get(entry, bond, resolved.basisNg);
    const GroupingFn &grouping =
        groupingRegistry().get(resolved.grouping);

    // evolve_steps >= 1 costs the Trotter program, otherwise the
    // (compressed) UCCSD ansatz.
    Ansatz program;
    if (resolved.evolveSteps >= 1) {
        program = buildTrotterAnsatz(
                      prob.hamiltonian,
                      hartreeFockMask(prob.nSpatial,
                                      prob.nElectrons),
                      resolved.evolveSteps, resolved.evolveOrder,
                      grouping)
                      .ansatz;
        out.fullParams = 1;
    } else {
        Ansatz full = buildUccsd(prob.nSpatial, prob.nElectrons);
        out.fullParams = full.nParams;
        if (resolved.compression < 1.0)
            program = compressAnsatz(full, prob.hamiltonian,
                                     resolved.compression)
                          .ansatz;
        else
            program = std::move(full);
    }

    out.nQubits = prob.nQubits;
    out.nParams = program.nParams;
    out.hamiltonianTerms = prob.hamiltonian.numTerms();
    out.hartreeFock = prob.hartreeFockEnergy;
    // Simulation-free by contract: no Lanczos reference, no VQE —
    // the headline energy is the HF mean field.
    out.vqe.energy = prob.hartreeFockEnergy;
    out.buildMillis = millisSince(t0);

    // ---- count, never simulate ----------------------------------
    const auto tEst = clock_type::now();
    EstimateRequest req;
    req.hamiltonian = &prob.hamiltonian;
    req.program = &program;
    req.grouping = grouping;
    req.shotsPerEstimate =
        resolved.shots > 0 ? resolved.shots : SamplingOptions{}.shots;
    req.iterations = resolved.maxIter;
    if (!resolved.pipeline.empty()) {
        const PipelineOptions po =
            pipelinePresetRegistry().get(resolved.pipeline)();
        if (po.flow == PipelineOptions::Flow::ChainOnly) {
            const CompilerPipeline pipe(po);
            req.pipeline = &pipe;
            out.estimate = estimateResources(req);
        } else {
            // The pipeline borrows the device views: keep `dev`
            // alive across the compile.
            const Device dev = makeDevice(resolved.architecture);
            if (dev.tree) {
                const CompilerPipeline pipe(*dev.tree, po);
                req.pipeline = &pipe;
                out.estimate = estimateResources(req);
            } else {
                const CompilerPipeline pipe(*dev.graph, po);
                req.pipeline = &pipe;
                out.estimate = estimateResources(req);
            }
        }
    } else {
        out.estimate = estimateResources(req);
    }
    out.measurementSettings = out.estimate.measurementSettings;
    out.spec.shots = req.shotsPerEstimate; // resolved for replay
    out.compileMillis = millisSince(tEst);

    out.hamiltonian = std::move(prob.hamiltonian);
    out.ansatz = std::move(program);
    out.totalMillis = millisSince(t0);
    return out;
}

} // namespace

ExperimentKindRegistry &
experimentKindRegistry()
{
    static ExperimentKindRegistry reg = [] {
        ExperimentKindRegistry r("experiment kind");
        r.add("vqe", runVqeExperiment);
        r.add("evolve", runEvolveExperiment);
        r.add("estimate", runEstimateExperiment);
        return r;
    }();
    return reg;
}

ExperimentResult
Experiment::run() const
{
    TraceSpan span("experiment.run");
    span.arg("kind", resolved.kind);
    span.arg("molecule", resolved.molecule);
    return experimentKindRegistry().get(resolved.kind)(resolved);
}

std::string
ExperimentResult::json(const JsonOptions &options) const
{
    std::string specDoc = spec.json();
    while (!specDoc.empty() && specDoc.back() == '\n')
        specDoc.pop_back();

    std::string out = "{\n\"spec\": " + specDoc + ",\n";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "\"n_qubits\": %u,\n\"n_params\": %u,\n"
                  "\"full_params\": %u,\n"
                  "\"hamiltonian_terms\": %zu,\n"
                  "\"measurement_settings\": %zu,\n",
                  nQubits, nParams, fullParams, hamiltonianTerms,
                  measurementSettings);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "\"hartree_fock\": %.17g,\n\"fci\": %.17g,\n"
                  "\"have_fci\": %s,\n\"energy\": %.17g,\n"
                  "\"iterations\": %d,\n\"evals\": %d,\n"
                  "\"converged\": %s,\n\"shots\": %llu,\n",
                  hartreeFock, fci, haveFci ? "true" : "false",
                  vqe.energy, vqe.iterations, vqe.evals,
                  vqe.converged ? "true" : "false",
                  (unsigned long long)shots);
    out += buf;
    if (compiled.present) {
        std::snprintf(
            buf, sizeof(buf),
            "\"compiled\": {\"pipeline\": \"%s\", "
            "\"device\": \"%s\", \"gates\": %zu, \"cnots\": %zu, "
            "\"depth\": %zu, \"swaps\": %zu, "
            "\"overhead_cnots\": %zu",
            compiled.pipeline.c_str(), compiled.device.c_str(),
            compiled.gates, compiled.cnots, compiled.depth,
            compiled.swaps, compiled.overheadCnots);
        out += buf;
        if (options.timings) {
            std::snprintf(buf, sizeof(buf),
                          ", \"millis\": %.6g, \"cache_hit\": %s",
                          compiled.millis,
                          compiled.cacheHit ? "true" : "false");
            out += buf;
        }
        out += "},\n";
    }
    if (evolution.present) {
        char ebuf[512];
        std::snprintf(
            ebuf, sizeof(ebuf),
            "\"evolution\": {\"time\": %.17g, \"steps\": %d, "
            "\"order\": %d, \"terms_per_step\": %zu, "
            "\"identity_terms\": %zu, \"initial_energy\": %.17g, "
            "\"final_energy\": %.17g, \"fidelity\": %.17g, "
            "\"have_fidelity\": %s, \"step_gates\": %zu, "
            "\"step_cnots\": %zu, \"step_depth\": %zu},\n",
            evolution.time, evolution.steps, evolution.order,
            evolution.termsPerStep, evolution.identityTerms,
            evolution.initialEnergy, evolution.finalEnergy,
            evolution.fidelity,
            evolution.haveFidelity ? "true" : "false",
            evolution.stepGates, evolution.stepCnots,
            evolution.stepDepth);
        out += ebuf;
    }
    if (estimate.present) {
        char ebuf[512];
        std::snprintf(
            ebuf, sizeof(ebuf),
            "\"estimate\": {\"qubits\": %u, \"parameters\": %u, "
            "\"pauli_strings\": %zu, \"hamiltonian_terms\": %zu, "
            "\"settings\": %zu, \"gates\": %zu, \"cnots\": %zu, "
            "\"depth\": %zu, \"swaps\": %zu, "
            "\"overhead_cnots\": %zu, "
            "\"shots_per_estimate\": %llu, \"shot_budget\": %llu},\n",
            estimate.qubits, estimate.parameters,
            estimate.pauliStrings, estimate.hamiltonianTerms,
            estimate.measurementSettings, estimate.gates,
            estimate.cnots, estimate.depth, estimate.swaps,
            estimate.overheadCnots,
            (unsigned long long)estimate.shotsPerEstimate,
            (unsigned long long)estimate.shotBudget);
        out += ebuf;
    }
    if (options.timings) {
        std::snprintf(
            buf, sizeof(buf),
            "\"timing_ms\": {\"build\": %.6g, \"vqe\": %.6g, "
            "\"compile\": %.6g, \"total\": %.6g},\n",
            buildMillis, vqeMillis, compileMillis, totalMillis);
        out += buf;
    }
    if (options.trace) {
        std::string traceDoc = trace.json();
        while (!traceDoc.empty() && traceDoc.back() == '\n')
            traceDoc.pop_back();
        out += "\"trace\": " + traceDoc + "\n}\n";
    } else {
        // Close after the last emitted block (strip the trailing
        // comma-newline).
        if (out.size() >= 2 && out[out.size() - 2] == ',')
            out.erase(out.size() - 2, 1);
        out += "}\n";
    }
    return out;
}

namespace {

bool
readUnsigned(const JsonValue &v, uint64_t &out)
{
    return v.asUint64(out);
}

bool
readDouble(const JsonValue &v, double &out)
{
    if (!v.isNumber())
        return false;
    out = v.number;
    return true;
}

bool
readBool(const JsonValue &v, bool &out)
{
    if (!v.isBool())
        return false;
    out = v.boolean;
    return true;
}

bool
readCompiled(const JsonValue &v, CompiledStats &out)
{
    if (!v.isObject())
        return false;
    out.present = true;
    uint64_t u = 0;
    for (const auto &[key, m] : v.members) {
        if (key == "pipeline" && m.isString()) {
            out.pipeline = m.text;
        } else if (key == "device" && m.isString()) {
            out.device = m.text;
        } else if (key == "gates" && readUnsigned(m, u)) {
            out.gates = size_t(u);
        } else if (key == "cnots" && readUnsigned(m, u)) {
            out.cnots = size_t(u);
        } else if (key == "depth" && readUnsigned(m, u)) {
            out.depth = size_t(u);
        } else if (key == "swaps" && readUnsigned(m, u)) {
            out.swaps = size_t(u);
        } else if (key == "overhead_cnots" && readUnsigned(m, u)) {
            out.overheadCnots = size_t(u);
        } else if (key == "millis" && readDouble(m, out.millis)) {
        } else if (key == "cache_hit" && readBool(m, out.cacheHit)) {
        } else {
            return false;
        }
    }
    return true;
}

bool
readEvolution(const JsonValue &v, TimeEvolutionResult &out)
{
    if (!v.isObject())
        return false;
    out.present = true;
    uint64_t u = 0;
    for (const auto &[key, m] : v.members) {
        if (key == "time" && readDouble(m, out.time)) {
        } else if (key == "steps" && readUnsigned(m, u)) {
            out.steps = int(u);
        } else if (key == "order" && readUnsigned(m, u)) {
            out.order = int(u);
        } else if (key == "terms_per_step" && readUnsigned(m, u)) {
            out.termsPerStep = size_t(u);
        } else if (key == "identity_terms" && readUnsigned(m, u)) {
            out.identityTerms = size_t(u);
        } else if (key == "initial_energy" &&
                   readDouble(m, out.initialEnergy)) {
        } else if (key == "final_energy" &&
                   readDouble(m, out.finalEnergy)) {
        } else if (key == "fidelity" &&
                   readDouble(m, out.fidelity)) {
        } else if (key == "have_fidelity" &&
                   readBool(m, out.haveFidelity)) {
        } else if (key == "step_gates" && readUnsigned(m, u)) {
            out.stepGates = size_t(u);
        } else if (key == "step_cnots" && readUnsigned(m, u)) {
            out.stepCnots = size_t(u);
        } else if (key == "step_depth" && readUnsigned(m, u)) {
            out.stepDepth = size_t(u);
        } else {
            return false;
        }
    }
    return true;
}

bool
readEstimate(const JsonValue &v, EstimateResult &out)
{
    if (!v.isObject())
        return false;
    out.present = true;
    uint64_t u = 0;
    for (const auto &[key, m] : v.members) {
        if (key == "qubits" && readUnsigned(m, u)) {
            out.qubits = unsigned(u);
        } else if (key == "parameters" && readUnsigned(m, u)) {
            out.parameters = unsigned(u);
        } else if (key == "pauli_strings" && readUnsigned(m, u)) {
            out.pauliStrings = size_t(u);
        } else if (key == "hamiltonian_terms" &&
                   readUnsigned(m, u)) {
            out.hamiltonianTerms = size_t(u);
        } else if (key == "settings" && readUnsigned(m, u)) {
            out.measurementSettings = size_t(u);
        } else if (key == "gates" && readUnsigned(m, u)) {
            out.gates = size_t(u);
        } else if (key == "cnots" && readUnsigned(m, u)) {
            out.cnots = size_t(u);
        } else if (key == "depth" && readUnsigned(m, u)) {
            out.depth = size_t(u);
        } else if (key == "swaps" && readUnsigned(m, u)) {
            out.swaps = size_t(u);
        } else if (key == "overhead_cnots" && readUnsigned(m, u)) {
            out.overheadCnots = size_t(u);
        } else if (key == "shots_per_estimate" &&
                   readUnsigned(m, u)) {
            out.shotsPerEstimate = u;
        } else if (key == "shot_budget" && readUnsigned(m, u)) {
            out.shotBudget = u;
        } else {
            return false;
        }
    }
    return true;
}

} // namespace

bool
ExperimentResult::fromJsonDom(const JsonValue &doc,
                              ExperimentResult &out)
{
    if (!doc.isObject())
        return false;
    ExperimentResult r;
    bool haveSpec = false, haveEnergy = false;
    uint64_t u = 0;
    try {
        for (const auto &[key, v] : doc.members) {
            if (key == "spec") {
                if (!v.isObject())
                    return false;
                for (const auto &[field, fv] : v.members)
                    applySpecField(r.spec, field, fv);
                haveSpec = true;
            } else if (key == "n_qubits" && readUnsigned(v, u)) {
                r.nQubits = unsigned(u);
            } else if (key == "n_params" && readUnsigned(v, u)) {
                r.nParams = unsigned(u);
            } else if (key == "full_params" && readUnsigned(v, u)) {
                r.fullParams = unsigned(u);
            } else if (key == "hamiltonian_terms" &&
                       readUnsigned(v, u)) {
                r.hamiltonianTerms = size_t(u);
            } else if (key == "measurement_settings" &&
                       readUnsigned(v, u)) {
                r.measurementSettings = size_t(u);
            } else if (key == "hartree_fock" &&
                       readDouble(v, r.hartreeFock)) {
            } else if (key == "fci" && readDouble(v, r.fci)) {
            } else if (key == "have_fci" && readBool(v, r.haveFci)) {
            } else if (key == "energy" &&
                       readDouble(v, r.vqe.energy)) {
                haveEnergy = true;
            } else if (key == "iterations" && readUnsigned(v, u)) {
                r.vqe.iterations = int(u);
            } else if (key == "evals" && readUnsigned(v, u)) {
                r.vqe.evals = int(u);
            } else if (key == "converged" &&
                       readBool(v, r.vqe.converged)) {
            } else if (key == "shots" && readUnsigned(v, u)) {
                r.shots = u;
            } else if (key == "compiled") {
                if (!readCompiled(v, r.compiled))
                    return false;
            } else if (key == "evolution") {
                if (!readEvolution(v, r.evolution))
                    return false;
            } else if (key == "estimate") {
                if (!readEstimate(v, r.estimate))
                    return false;
            } else if (key == "timing_ms") {
                if (!v.isObject())
                    return false;
                for (const auto &[tk, tv] : v.members) {
                    double *slot =
                        tk == "build"     ? &r.buildMillis
                        : tk == "vqe"     ? &r.vqeMillis
                        : tk == "compile" ? &r.compileMillis
                        : tk == "total"   ? &r.totalMillis
                                          : nullptr;
                    if (!slot || !readDouble(tv, *slot))
                        return false;
                }
            } else if (key == "trace") {
                // A full RESULT document carries the VQE trace; the
                // rehydrated result does not (documented partial).
            } else {
                return false;
            }
        }
    } catch (const std::exception &) {
        return false; // applySpecField rejected a spec member
    }
    if (!haveSpec || !haveEnergy)
        return false;
    out = std::move(r);
    return true;
}

std::string
ExperimentResult::write(const std::string &name) const
{
    const std::string path = qccJsonPath("RESULT_" + name + ".json");
    if (path.empty())
        return {};
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("ExperimentResult::write: cannot write " + path);
        return {};
    }
    const std::string doc = json();
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    return path;
}

// ------------------------------------------------------- builder

ExperimentBuilder &
ExperimentBuilder::kind(const std::string &key)
{
    draft.kind = key;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::molecule(const std::string &name)
{
    draft.molecule = name;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::bond(double angstrom)
{
    draft.bond = angstrom;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::basisNg(int n)
{
    draft.basisNg = n;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::compression(double ratio)
{
    draft.compression = ratio;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::grouping(const std::string &key)
{
    draft.grouping = key;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::mode(const std::string &key)
{
    draft.mode = key;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::optimizer(const std::string &key)
{
    draft.optimizer = key;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::pipeline(const std::string &preset)
{
    draft.pipeline = preset;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::architecture(const std::string &key)
{
    draft.architecture = key;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::noise(double cnot_error, double single_qubit_error)
{
    draft.cnotError = cnot_error;
    draft.singleQubitError = single_qubit_error;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::shots(uint64_t n)
{
    draft.shots = n;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::seed(uint64_t s)
{
    draft.seed = s;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::maxIter(int n)
{
    draft.maxIter = n;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::spsaIter(int n)
{
    draft.spsaIter = n;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::evolveTime(double t)
{
    draft.evolveTime = t;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::evolveSteps(int r)
{
    draft.evolveSteps = r;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::evolveOrder(int order)
{
    draft.evolveOrder = order;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::reference(bool compute)
{
    draft.reference = compute;
    return *this;
}

Experiment
ExperimentBuilder::build() const
{
    return Experiment(draft);
}

} // namespace qcc
