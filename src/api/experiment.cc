#include "api/experiment.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "ansatz/compression.hh"
#include "common/logging.hh"
#include "sim/lanczos.hh"
#include "store/problem_store.hh"
#include "vqe/estimation.hh"

namespace qcc {

namespace {

using clock_type = std::chrono::steady_clock;

double
millisSince(clock_type::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               clock_type::now() - t0)
        .count();
}

const BenchmarkMolecule &
catalogEntry(const std::string &name)
{
    for (const auto &entry : benchmarkMolecules())
        if (entry.name == name)
            return entry;
    std::string known;
    for (const auto &entry : benchmarkMolecules())
        known += (known.empty() ? "" : ", ") + entry.name;
    throw SpecError("molecule",
                    "unknown molecule '" + name +
                        "'; catalog: " + known);
}

/** Largest device size any architecture key may name. */
constexpr long kMaxDeviceQubits = 4096;

/**
 * Parse the digits of `s` after `prefix`; -1 when not that shape or
 * outside (0, kMaxDeviceQubits] — a wrapped-around size must reject
 * the key, not build a different device.
 */
long
suffixNumber(const std::string &s, const std::string &prefix)
{
    if (s.size() <= prefix.size() ||
        s.compare(0, prefix.size(), prefix) != 0)
        return -1;
    char *end = nullptr;
    const char *digits = s.c_str() + prefix.size();
    const long v = std::strtol(digits, &end, 10);
    if (end == digits || *end != '\0' || v <= 0 ||
        v > kMaxDeviceQubits)
        return -1;
    return v;
}

} // namespace

Device
makeDevice(const std::string &architecture)
{
    Device dev;
    dev.name = architecture;
    if (long n = suffixNumber(architecture, "xtree"); n > 0) {
        dev.tree = makeXTree(unsigned(n));
        dev.graph = dev.tree->graph;
        return dev;
    }
    if (architecture == "grid17") {
        dev.graph = makeGrid17Q();
        return dev;
    }
    if (architecture.compare(0, 4, "grid") == 0) {
        const size_t x = architecture.find('x', 4);
        if (x != std::string::npos) {
            const long rows =
                suffixNumber(architecture.substr(0, x), "grid");
            const long cols =
                suffixNumber(architecture.substr(x), "x");
            // The cap is on the device, not each dimension.
            if (rows > 0 && cols > 0 &&
                rows * cols <= kMaxDeviceQubits) {
                dev.graph = makeGrid(unsigned(rows), unsigned(cols));
                return dev;
            }
        }
    }
    throw SpecError("architecture",
                    "unknown device '" + architecture +
                        "'; expected xtree<N>, grid17, or "
                        "grid<R>x<C>");
}

Experiment::Experiment(ExperimentSpec s) : resolved(std::move(s))
{
    // Resolve every key now so a bad spec fails at construction with
    // the valid choices, not mid-run.
    catalogEntry(resolved.molecule);
    estimationRegistry().get(resolved.mode);
    optimizerRegistry().get(resolved.optimizer);
    groupingRegistry().get(resolved.grouping);
    if (resolved.compression <= 0.0)
        throw SpecError("compression", "ratio must be positive");
    if (resolved.basisNg < 1)
        throw SpecError("basis_ng", "contraction count must be >= 1");
    if (!resolved.pipeline.empty()) {
        const PipelineOptions po =
            pipelinePresetRegistry().get(resolved.pipeline)();
        const bool routed =
            po.flow != PipelineOptions::Flow::ChainOnly;
        if (resolved.architecture.empty()) {
            if (routed)
                throw SpecError("architecture",
                                "pipeline preset '" +
                                    resolved.pipeline +
                                    "' routes onto a device; name "
                                    "one (xtree<N>, grid17, "
                                    "grid<R>x<C>)");
        } else {
            Device dev = makeDevice(resolved.architecture);
            if (po.flow == PipelineOptions::Flow::MergeToRoot &&
                !dev.tree)
                throw SpecError("architecture",
                                "Merge-to-Root needs a tree device "
                                "(xtree<N>), got '" +
                                    resolved.architecture + "'");
        }
    } else if (!resolved.architecture.empty()) {
        makeDevice(resolved.architecture); // validate anyway
    }
}

ExperimentBuilder
Experiment::builder()
{
    return ExperimentBuilder();
}

ExperimentResult
Experiment::run() const
{
    const auto t0 = clock_type::now();
    ExperimentResult out;
    out.spec = resolved;

    // ---- chemistry + ansatz -------------------------------------
    const BenchmarkMolecule &entry = catalogEntry(resolved.molecule);
    const double bond =
        resolved.bond > 0.0 ? resolved.bond : entry.equilibriumBond;
    out.spec.bond = bond; // resolved for exact replay
    MolecularProblem prob =
        globalProblemStore().get(entry, bond, resolved.basisNg);
    Ansatz full = buildUccsd(prob.nSpatial, prob.nElectrons);
    out.fullParams = full.nParams;
    Ansatz ansatz;
    if (resolved.compression < 1.0)
        ansatz = compressAnsatz(full, prob.hamiltonian,
                                resolved.compression)
                     .ansatz;
    else
        ansatz = std::move(full);

    out.nQubits = prob.nQubits;
    out.nParams = ansatz.nParams;
    out.hamiltonianTerms = prob.hamiltonian.numTerms();
    out.hartreeFock = prob.hartreeFockEnergy;
    const GroupingFn &grouping =
        groupingRegistry().get(resolved.grouping);
    out.measurementSettings = grouping(prob.hamiltonian).size();
    if (resolved.reference) {
        out.fci = lanczosGroundEnergy(prob.hamiltonian);
        out.haveFci = true;
    }
    out.buildMillis = millisSince(t0);

    // ---- VQE through the estimation-strategy seam ---------------
    const auto tVqe = clock_type::now();
    VqeDriverOptions opts;
    opts.optimizer = optimizerRegistry().get(resolved.optimizer)();
    opts.noise.cnotDepolarizing = resolved.cnotError;
    opts.noise.singleQubitDepolarizing = resolved.singleQubitError;
    if (resolved.shots > 0)
        opts.sampling.shots = resolved.shots;
    opts.sampling.grouping = grouping;
    opts.maxIter = resolved.maxIter;
    opts.spsaIter = resolved.spsaIter;
    if (resolved.seed != 0)
        opts.seed = resolved.seed;
    out.spec.shots = opts.sampling.shots;
    out.spec.seed = opts.seed;

    VqeDriver driver(
        prob.hamiltonian, ansatz, opts,
        makeEstimationStrategy(
            resolved.mode, EstimationConfig{&prob.hamiltonian,
                                            opts.noise, opts.sampling,
                                            grouping}));
    out.vqe = driver.run();
    out.trace = driver.trace();
    out.shots = driver.shotsSpent();
    out.vqeMillis = millisSince(tVqe);

    // ---- optional compile phase ---------------------------------
    if (!resolved.pipeline.empty()) {
        const auto tCompile = clock_type::now();
        const PipelineOptions po =
            pipelinePresetRegistry().get(resolved.pipeline)();
        CompileResult compiled;
        if (po.flow == PipelineOptions::Flow::ChainOnly) {
            compiled = CompilerPipeline(po).compile(ansatz,
                                                    out.vqe.params);
        } else {
            Device dev = makeDevice(resolved.architecture);
            if (dev.tree)
                compiled = CompilerPipeline(*dev.tree, po)
                               .compile(ansatz, out.vqe.params);
            else
                compiled = CompilerPipeline(*dev.graph, po)
                               .compile(ansatz, out.vqe.params);
        }
        out.compiled.present = true;
        out.compiled.pipeline = resolved.pipeline;
        out.compiled.device = resolved.architecture;
        out.compiled.gates = compiled.circuit.totalGates();
        out.compiled.cnots = compiled.circuit.cnotCount();
        out.compiled.depth = compiled.circuit.depth();
        out.compiled.swaps = compiled.swapCount;
        out.compiled.overheadCnots = compiled.overheadCnots();
        out.compiled.millis = compiled.report.totalMillis;
        out.compiled.cacheHit = compiled.report.cacheHit;
        out.compileMillis = millisSince(tCompile);
    }

    out.hamiltonian = std::move(prob.hamiltonian);
    out.ansatz = std::move(ansatz);
    out.totalMillis = millisSince(t0);
    return out;
}

std::string
ExperimentResult::json(const JsonOptions &options) const
{
    std::string specDoc = spec.json();
    while (!specDoc.empty() && specDoc.back() == '\n')
        specDoc.pop_back();

    std::string out = "{\n\"spec\": " + specDoc + ",\n";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "\"n_qubits\": %u,\n\"n_params\": %u,\n"
                  "\"full_params\": %u,\n"
                  "\"hamiltonian_terms\": %zu,\n"
                  "\"measurement_settings\": %zu,\n",
                  nQubits, nParams, fullParams, hamiltonianTerms,
                  measurementSettings);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "\"hartree_fock\": %.17g,\n\"fci\": %.17g,\n"
                  "\"have_fci\": %s,\n\"energy\": %.17g,\n"
                  "\"iterations\": %d,\n\"evals\": %d,\n"
                  "\"converged\": %s,\n\"shots\": %llu,\n",
                  hartreeFock, fci, haveFci ? "true" : "false",
                  vqe.energy, vqe.iterations, vqe.evals,
                  vqe.converged ? "true" : "false",
                  (unsigned long long)shots);
    out += buf;
    if (compiled.present) {
        std::snprintf(
            buf, sizeof(buf),
            "\"compiled\": {\"pipeline\": \"%s\", "
            "\"device\": \"%s\", \"gates\": %zu, \"cnots\": %zu, "
            "\"depth\": %zu, \"swaps\": %zu, "
            "\"overhead_cnots\": %zu",
            compiled.pipeline.c_str(), compiled.device.c_str(),
            compiled.gates, compiled.cnots, compiled.depth,
            compiled.swaps, compiled.overheadCnots);
        out += buf;
        if (options.timings) {
            std::snprintf(buf, sizeof(buf),
                          ", \"millis\": %.6g, \"cache_hit\": %s",
                          compiled.millis,
                          compiled.cacheHit ? "true" : "false");
            out += buf;
        }
        out += "},\n";
    }
    if (options.timings) {
        std::snprintf(
            buf, sizeof(buf),
            "\"timing_ms\": {\"build\": %.6g, \"vqe\": %.6g, "
            "\"compile\": %.6g, \"total\": %.6g},\n",
            buildMillis, vqeMillis, compileMillis, totalMillis);
        out += buf;
    }
    if (options.trace) {
        std::string traceDoc = trace.json();
        while (!traceDoc.empty() && traceDoc.back() == '\n')
            traceDoc.pop_back();
        out += "\"trace\": " + traceDoc + "\n}\n";
    } else {
        // Close after the last emitted block (strip the trailing
        // comma-newline).
        if (out.size() >= 2 && out[out.size() - 2] == ',')
            out.erase(out.size() - 2, 1);
        out += "}\n";
    }
    return out;
}

namespace {

bool
readUnsigned(const JsonValue &v, uint64_t &out)
{
    return v.asUint64(out);
}

bool
readDouble(const JsonValue &v, double &out)
{
    if (!v.isNumber())
        return false;
    out = v.number;
    return true;
}

bool
readBool(const JsonValue &v, bool &out)
{
    if (!v.isBool())
        return false;
    out = v.boolean;
    return true;
}

bool
readCompiled(const JsonValue &v, CompiledStats &out)
{
    if (!v.isObject())
        return false;
    out.present = true;
    uint64_t u = 0;
    for (const auto &[key, m] : v.members) {
        if (key == "pipeline" && m.isString()) {
            out.pipeline = m.text;
        } else if (key == "device" && m.isString()) {
            out.device = m.text;
        } else if (key == "gates" && readUnsigned(m, u)) {
            out.gates = size_t(u);
        } else if (key == "cnots" && readUnsigned(m, u)) {
            out.cnots = size_t(u);
        } else if (key == "depth" && readUnsigned(m, u)) {
            out.depth = size_t(u);
        } else if (key == "swaps" && readUnsigned(m, u)) {
            out.swaps = size_t(u);
        } else if (key == "overhead_cnots" && readUnsigned(m, u)) {
            out.overheadCnots = size_t(u);
        } else if (key == "millis" && readDouble(m, out.millis)) {
        } else if (key == "cache_hit" && readBool(m, out.cacheHit)) {
        } else {
            return false;
        }
    }
    return true;
}

} // namespace

bool
ExperimentResult::fromJsonDom(const JsonValue &doc,
                              ExperimentResult &out)
{
    if (!doc.isObject())
        return false;
    ExperimentResult r;
    bool haveSpec = false, haveEnergy = false;
    uint64_t u = 0;
    try {
        for (const auto &[key, v] : doc.members) {
            if (key == "spec") {
                if (!v.isObject())
                    return false;
                for (const auto &[field, fv] : v.members)
                    applySpecField(r.spec, field, fv);
                haveSpec = true;
            } else if (key == "n_qubits" && readUnsigned(v, u)) {
                r.nQubits = unsigned(u);
            } else if (key == "n_params" && readUnsigned(v, u)) {
                r.nParams = unsigned(u);
            } else if (key == "full_params" && readUnsigned(v, u)) {
                r.fullParams = unsigned(u);
            } else if (key == "hamiltonian_terms" &&
                       readUnsigned(v, u)) {
                r.hamiltonianTerms = size_t(u);
            } else if (key == "measurement_settings" &&
                       readUnsigned(v, u)) {
                r.measurementSettings = size_t(u);
            } else if (key == "hartree_fock" &&
                       readDouble(v, r.hartreeFock)) {
            } else if (key == "fci" && readDouble(v, r.fci)) {
            } else if (key == "have_fci" && readBool(v, r.haveFci)) {
            } else if (key == "energy" &&
                       readDouble(v, r.vqe.energy)) {
                haveEnergy = true;
            } else if (key == "iterations" && readUnsigned(v, u)) {
                r.vqe.iterations = int(u);
            } else if (key == "evals" && readUnsigned(v, u)) {
                r.vqe.evals = int(u);
            } else if (key == "converged" &&
                       readBool(v, r.vqe.converged)) {
            } else if (key == "shots" && readUnsigned(v, u)) {
                r.shots = u;
            } else if (key == "compiled") {
                if (!readCompiled(v, r.compiled))
                    return false;
            } else if (key == "timing_ms") {
                if (!v.isObject())
                    return false;
                for (const auto &[tk, tv] : v.members) {
                    double *slot =
                        tk == "build"     ? &r.buildMillis
                        : tk == "vqe"     ? &r.vqeMillis
                        : tk == "compile" ? &r.compileMillis
                        : tk == "total"   ? &r.totalMillis
                                          : nullptr;
                    if (!slot || !readDouble(tv, *slot))
                        return false;
                }
            } else if (key == "trace") {
                // A full RESULT document carries the VQE trace; the
                // rehydrated result does not (documented partial).
            } else {
                return false;
            }
        }
    } catch (const std::exception &) {
        return false; // applySpecField rejected a spec member
    }
    if (!haveSpec || !haveEnergy)
        return false;
    out = std::move(r);
    return true;
}

std::string
ExperimentResult::write(const std::string &name) const
{
    const std::string path = qccJsonPath("RESULT_" + name + ".json");
    if (path.empty())
        return {};
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("ExperimentResult::write: cannot write " + path);
        return {};
    }
    const std::string doc = json();
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    return path;
}

// ------------------------------------------------------- builder

ExperimentBuilder &
ExperimentBuilder::molecule(const std::string &name)
{
    draft.molecule = name;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::bond(double angstrom)
{
    draft.bond = angstrom;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::basisNg(int n)
{
    draft.basisNg = n;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::compression(double ratio)
{
    draft.compression = ratio;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::grouping(const std::string &key)
{
    draft.grouping = key;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::mode(const std::string &key)
{
    draft.mode = key;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::optimizer(const std::string &key)
{
    draft.optimizer = key;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::pipeline(const std::string &preset)
{
    draft.pipeline = preset;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::architecture(const std::string &key)
{
    draft.architecture = key;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::noise(double cnot_error, double single_qubit_error)
{
    draft.cnotError = cnot_error;
    draft.singleQubitError = single_qubit_error;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::shots(uint64_t n)
{
    draft.shots = n;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::seed(uint64_t s)
{
    draft.seed = s;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::maxIter(int n)
{
    draft.maxIter = n;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::spsaIter(int n)
{
    draft.spsaIter = n;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::reference(bool compute)
{
    draft.reference = compute;
    return *this;
}

Experiment
ExperimentBuilder::build() const
{
    return Experiment(draft);
}

} // namespace qcc
