#include "api/spec.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace qcc {

namespace {

void
appendString(std::string &out, const char *key,
             const std::string &value, bool last = false)
{
    out += "  \"";
    out += key;
    out += "\": \"";
    // Spec strings are registry keys / catalog names; escape the two
    // characters that could break the document anyway.
    for (char c : value) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += last ? "\"\n" : "\",\n";
}

void
appendDouble(std::string &out, const char *key, double value)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "  \"%s\": %.17g,\n", key,
                  value);
    out += buf;
}

void
appendUint(std::string &out, const char *key, uint64_t value)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "  \"%s\": %llu,\n", key,
                  (unsigned long long)value);
    out += buf;
}

void
appendInt(std::string &out, const char *key, int value)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "  \"%s\": %d,\n", key, value);
    out += buf;
}

/**
 * Minimal parser for the flat spec document: one object of
 * string/number/bool fields. Tracks position only (the document is
 * short); all diagnostics carry the field name being parsed.
 */
class FlatJsonParser
{
  public:
    explicit FlatJsonParser(const std::string &doc) : s(doc) {}

    void
    expect(char c, const char *where)
    {
        skipWs();
        if (pos >= s.size() || s[pos] != c)
            throw SpecError(where, std::string("expected '") + c +
                                       "' in spec JSON");
        ++pos;
    }

    bool
    atEnd()
    {
        skipWs();
        return pos >= s.size();
    }

    bool
    peek(char c)
    {
        skipWs();
        return pos < s.size() && s[pos] == c;
    }

    std::string
    parseString(const char *where)
    {
        expect('"', where);
        std::string out;
        while (pos < s.size() && s[pos] != '"') {
            char c = s[pos++];
            if (c == '\\' && pos < s.size())
                c = s[pos++];
            out += c;
        }
        if (pos >= s.size())
            throw SpecError(where, "unterminated string");
        ++pos;
        return out;
    }

    double
    parseNumber(const char *where)
    {
        skipWs();
        const char *start = s.c_str() + pos;
        char *end = nullptr;
        const double v = std::strtod(start, &end);
        if (end == start)
            throw SpecError(where, "expected a number");
        pos += size_t(end - start);
        return v;
    }

    uint64_t
    parseUint(const char *where)
    {
        skipWs();
        // strtoull silently wraps negatives; reject them up front.
        if (pos >= s.size() ||
            !std::isdigit(static_cast<unsigned char>(s[pos])))
            throw SpecError(where, "expected an unsigned integer");
        const char *start = s.c_str() + pos;
        char *end = nullptr;
        const unsigned long long v = std::strtoull(start, &end, 10);
        if (end == start)
            throw SpecError(where, "expected an unsigned integer");
        pos += size_t(end - start);
        return v;
    }

    int
    parseInt(const char *where)
    {
        // Double-to-int conversion outside int's range is UB; gate
        // the cast so a wild document throws instead.
        const double v = parseNumber(where);
        if (!(v >= -2147483648.0 && v <= 2147483647.0))
            throw SpecError(where, "integer out of range");
        return int(v);
    }

    bool
    parseBool(const char *where)
    {
        skipWs();
        if (s.compare(pos, 4, "true") == 0) {
            pos += 4;
            return true;
        }
        if (s.compare(pos, 5, "false") == 0) {
            pos += 5;
            return false;
        }
        throw SpecError(where, "expected true or false");
    }

  private:
    void
    skipWs()
    {
        while (pos < s.size() &&
               std::isspace(static_cast<unsigned char>(s[pos])))
            ++pos;
    }

    const std::string &s;
    size_t pos = 0;
};

} // namespace

std::string
ExperimentSpec::json() const
{
    std::string out = "{\n";
    appendString(out, "molecule", molecule);
    appendDouble(out, "bond", bond);
    appendInt(out, "basis_ng", basisNg);
    appendDouble(out, "compression", compression);
    appendString(out, "grouping", grouping);
    appendString(out, "mode", mode);
    appendString(out, "optimizer", optimizer);
    appendString(out, "pipeline", pipeline);
    appendString(out, "architecture", architecture);
    appendDouble(out, "cnot_error", cnotError);
    appendDouble(out, "single_qubit_error", singleQubitError);
    appendUint(out, "shots", shots);
    appendUint(out, "seed", seed);
    appendInt(out, "max_iter", maxIter);
    appendInt(out, "spsa_iter", spsaIter);
    out += std::string("  \"reference\": ") +
           (reference ? "true" : "false") + "\n";
    out += "}\n";
    return out;
}

ExperimentSpec
ExperimentSpec::fromJson(const std::string &doc)
{
    ExperimentSpec spec;
    FlatJsonParser p(doc);
    p.expect('{', "(document)");
    bool first = true;
    while (!p.peek('}')) {
        if (!first)
            p.expect(',', "(document)");
        first = false;
        const std::string key = p.parseString("(field name)");
        p.expect(':', key.c_str());
        if (key == "molecule")
            spec.molecule = p.parseString(key.c_str());
        else if (key == "bond")
            spec.bond = p.parseNumber(key.c_str());
        else if (key == "basis_ng")
            spec.basisNg = p.parseInt(key.c_str());
        else if (key == "compression")
            spec.compression = p.parseNumber(key.c_str());
        else if (key == "grouping")
            spec.grouping = p.parseString(key.c_str());
        else if (key == "mode")
            spec.mode = p.parseString(key.c_str());
        else if (key == "optimizer")
            spec.optimizer = p.parseString(key.c_str());
        else if (key == "pipeline")
            spec.pipeline = p.parseString(key.c_str());
        else if (key == "architecture")
            spec.architecture = p.parseString(key.c_str());
        else if (key == "cnot_error")
            spec.cnotError = p.parseNumber(key.c_str());
        else if (key == "single_qubit_error")
            spec.singleQubitError = p.parseNumber(key.c_str());
        else if (key == "shots")
            spec.shots = p.parseUint(key.c_str());
        else if (key == "seed")
            spec.seed = p.parseUint(key.c_str());
        else if (key == "max_iter")
            spec.maxIter = p.parseInt(key.c_str());
        else if (key == "spsa_iter")
            spec.spsaIter = p.parseInt(key.c_str());
        else if (key == "reference")
            spec.reference = p.parseBool(key.c_str());
        else
            throw SpecError(key, "unknown spec field");
    }
    p.expect('}', "(document)");
    if (!p.atEnd())
        throw SpecError("(document)",
                        "trailing content after spec object");
    return spec;
}

} // namespace qcc
