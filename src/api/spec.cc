#include "api/spec.hh"

#include <cstdio>

namespace qcc {

namespace {

void
appendString(std::string &out, const char *key,
             const std::string &value, bool last = false)
{
    out += "  \"";
    out += key;
    out += "\": \"";
    out += jsonEscape(value);
    out += last ? "\"\n" : "\",\n";
}

void
appendDouble(std::string &out, const char *key, double value)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "  \"%s\": %.17g,\n", key,
                  value);
    out += buf;
}

void
appendUint(std::string &out, const char *key, uint64_t value)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "  \"%s\": %llu,\n", key,
                  (unsigned long long)value);
    out += buf;
}

void
appendInt(std::string &out, const char *key, int value)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "  \"%s\": %d,\n", key, value);
    out += buf;
}

// ---- typed field extraction (shared diagnostics) ----------------

std::string
asString(const std::string &key, const JsonValue &v)
{
    if (!v.isString())
        throw SpecError(key, "expected a string");
    return v.text;
}

double
asNumber(const std::string &key, const JsonValue &v)
{
    if (!v.isNumber())
        throw SpecError(key, "expected a number");
    return v.number;
}

uint64_t
asUint(const std::string &key, const JsonValue &v)
{
    uint64_t out = 0;
    if (!v.isNumber() || !v.asUint64(out))
        throw SpecError(key, "expected an unsigned integer");
    return out;
}

int
asInt(const std::string &key, const JsonValue &v)
{
    // Double-to-int conversion outside int's range is UB; gate the
    // cast so a wild document throws instead.
    const double d = asNumber(key, v);
    if (!(d >= -2147483648.0 && d <= 2147483647.0))
        throw SpecError(key, "integer out of range");
    return int(d);
}

bool
asBool(const std::string &key, const JsonValue &v)
{
    if (!v.isBool())
        throw SpecError(key, "expected true or false");
    return v.boolean;
}

} // namespace

std::string
ExperimentSpec::json() const
{
    std::string out = "{\n";
    appendString(out, "kind", kind);
    appendString(out, "molecule", molecule);
    appendDouble(out, "bond", bond);
    appendInt(out, "basis_ng", basisNg);
    appendDouble(out, "compression", compression);
    appendString(out, "grouping", grouping);
    appendString(out, "mode", mode);
    appendString(out, "optimizer", optimizer);
    appendString(out, "pipeline", pipeline);
    appendString(out, "architecture", architecture);
    appendDouble(out, "cnot_error", cnotError);
    appendDouble(out, "single_qubit_error", singleQubitError);
    appendUint(out, "shots", shots);
    appendUint(out, "seed", seed);
    appendInt(out, "max_iter", maxIter);
    appendInt(out, "spsa_iter", spsaIter);
    appendDouble(out, "evolve_time", evolveTime);
    appendInt(out, "evolve_steps", evolveSteps);
    appendInt(out, "evolve_order", evolveOrder);
    out += std::string("  \"reference\": ") +
           (reference ? "true" : "false") + "\n";
    out += "}\n";
    return out;
}

void
applySpecField(ExperimentSpec &spec, const std::string &key,
               const JsonValue &v)
{
    if (key == "kind")
        spec.kind = asString(key, v);
    else if (key == "molecule")
        spec.molecule = asString(key, v);
    else if (key == "bond")
        spec.bond = asNumber(key, v);
    else if (key == "basis_ng")
        spec.basisNg = asInt(key, v);
    else if (key == "compression")
        spec.compression = asNumber(key, v);
    else if (key == "grouping")
        spec.grouping = asString(key, v);
    else if (key == "mode")
        spec.mode = asString(key, v);
    else if (key == "optimizer")
        spec.optimizer = asString(key, v);
    else if (key == "pipeline")
        spec.pipeline = asString(key, v);
    else if (key == "architecture")
        spec.architecture = asString(key, v);
    else if (key == "cnot_error")
        spec.cnotError = asNumber(key, v);
    else if (key == "single_qubit_error")
        spec.singleQubitError = asNumber(key, v);
    else if (key == "shots")
        spec.shots = asUint(key, v);
    else if (key == "seed")
        spec.seed = asUint(key, v);
    else if (key == "max_iter")
        spec.maxIter = asInt(key, v);
    else if (key == "spsa_iter")
        spec.spsaIter = asInt(key, v);
    else if (key == "evolve_time")
        spec.evolveTime = asNumber(key, v);
    else if (key == "evolve_steps")
        spec.evolveSteps = asInt(key, v);
    else if (key == "evolve_order")
        spec.evolveOrder = asInt(key, v);
    else if (key == "reference")
        spec.reference = asBool(key, v);
    else
        throw SpecError(key, "unknown spec field");
}

ExperimentSpec
ExperimentSpec::fromJson(const std::string &doc)
{
    JsonValue root;
    try {
        root = JsonValue::parse(doc);
    } catch (const JsonError &e) {
        throw SpecError("(document)", e.what());
    }
    if (!root.isObject())
        throw SpecError("(document)", "spec must be a JSON object");
    ExperimentSpec spec;
    // The ordered DOM preserves duplicate members; silently letting
    // the last one win would mask an editing mistake in a
    // hand-authored spec, so reject them with field provenance.
    std::vector<std::string> seen;
    for (const auto &[key, value] : root.members) {
        for (const auto &prior : seen)
            if (prior == key)
                throw SpecError(key, "duplicate spec field");
        seen.push_back(key);
        applySpecField(spec, key, value);
    }
    return spec;
}

} // namespace qcc
