/**
 * @file
 * qcc::Experiment — the spec-driven facade over the whole
 * co-optimized flow. One ExperimentSpec (api/spec.hh) names every
 * choice by registry key, including the workload kind itself:
 * Experiment::run() dispatches through the ExperimentKindRegistry
 * to "vqe" (molecule -> active space -> Jordan-Wigner -> grouped
 * Pauli Hamiltonian -> (compressed) UCCSD -> VQE through an
 * estimation strategy -> optional X-tree/grid compilation),
 * "evolve" (Trotterized exp(-iHt) on the same stack, with an exact
 * Taylor fidelity reference at small n), or "estimate" (the
 * simulation-free resource estimator — compiler counts plus the
 * measurement bill, never a 2^n state). Every kind returns the same
 * structured ExperimentResult (energies, trace, pipeline summary,
 * evolution/estimate blocks, phase timings) with JSON serialization
 * under the same QCC_JSON convention as the TRACE and BENCH outputs
 * (RESULT_<name>.json).
 *
 * ExperimentBuilder is the fluent front end:
 *
 *   ExperimentResult r = Experiment::builder()
 *       .molecule("H2").bond(0.74)
 *       .mode("noisy_sampled").optimizer("spsa").shots(65536)
 *       .build().run();
 *
 * Spec validation resolves every registry key up front; unknown keys
 * throw RegistryError listing the registered names, unknown
 * molecules/architectures throw SpecError naming the valid choices.
 */

#ifndef QCC_API_EXPERIMENT_HH
#define QCC_API_EXPERIMENT_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ansatz/uccsd.hh"
#include "api/registries.hh"
#include "api/spec.hh"
#include "arch/grid.hh"
#include "arch/xtree.hh"
#include "estimate/estimate.hh"
#include "evolve/trotter.hh"
#include "ferm/hamiltonian.hh"
#include "vqe/driver.hh"

namespace qcc {

/**
 * A named target device parsed from a spec architecture key:
 * "xtree<N>" (X-Tree on N qubits), "grid17" (the paper's 17-qubit
 * grid), or "grid<R>x<C>". Tree devices carry both views; grids
 * carry only the coupling graph.
 */
struct Device
{
    std::string name;
    std::optional<XTree> tree;
    std::optional<CouplingGraph> graph;
};

/** Parse an architecture key; throws SpecError when malformed. */
Device makeDevice(const std::string &architecture);

/** Compile-phase summary (present when the spec names a pipeline). */
struct CompiledStats
{
    bool present = false;
    std::string pipeline; ///< preset key
    std::string device;   ///< architecture key ("" for chain-only)
    size_t gates = 0;
    size_t cnots = 0;
    size_t depth = 0;
    size_t swaps = 0;
    size_t overheadCnots = 0; ///< 3 per SWAP (paper convention)
    double millis = 0.0;
    bool cacheHit = false;
};

/** Structured record of one Experiment::run(). */
struct ExperimentResult
{
    ExperimentSpec spec; ///< the resolved spec that produced this

    unsigned nQubits = 0;
    unsigned nParams = 0;        ///< ansatz parameters actually run
    unsigned fullParams = 0;     ///< uncompressed UCCSD parameters
    size_t hamiltonianTerms = 0;
    size_t measurementSettings = 0; ///< grouped family count

    double hartreeFock = 0.0;
    double fci = 0.0;       ///< Lanczos reference (when computed)
    bool haveFci = false;

    VqeResult vqe;          ///< converged energy and parameters
    VqeTrace trace;         ///< full per-point run record
    uint64_t shots = 0;     ///< total measurement bill

    CompiledStats compiled;

    /** Kind "evolve": Trotter run summary (present flag inside). */
    TimeEvolutionResult evolution;

    /** Kind "estimate": resource counts (present flag inside). */
    EstimateResult estimate;

    double buildMillis = 0.0;   ///< chemistry + ansatz phase
    double vqeMillis = 0.0;
    double compileMillis = 0.0;
    double totalMillis = 0.0;

    /**
     * In-memory handles for composition (noisy re-evaluation,
     * recompilation, ...); not serialized.
     */
    PauliSum hamiltonian;
    Ansatz ansatz;

    /** Converged energy (the headline number). */
    double energy() const { return vqe.energy; }

    /**
     * Serialization selection for json(). The volatile fields —
     * wall-clock timings and the compile-cache outcome — change
     * between otherwise identical runs, so aggregators that promise
     * byte-stable output (the sweep ResultStore) drop them; the
     * trace can dominate a document and is skippable for compact
     * per-job records.
     */
    struct JsonOptions
    {
        bool timings = true; ///< timing_ms block + compiled millis/cache_hit
        bool trace = true;   ///< full per-point VQE trace
    };

    /** Full JSON document: spec, metrics, timings, and the trace. */
    std::string json() const { return json(JsonOptions{}); }

    /** JSON document with the selected sections. */
    std::string json(const JsonOptions &options) const;

    /**
     * Rehydrate a result from a parsed json() document — the resume
     * path: the sweep layer reads completed job records back out of
     * an existing SWEEP_*.json and re-serializes them, and because
     * every number round-trips exactly (%.17g / %.6g both survive a
     * parse-and-reprint), the rehydrated record's json() is
     * byte-identical to the original. Restores the serialized subset
     * only: the in-memory handles (hamiltonian, ansatz), the VQE
     * trace, and the parameter vector stay empty. False when `doc`
     * is not a result document (missing/ill-typed members); `out`
     * is untouched on failure.
     */
    static bool fromJsonDom(const JsonValue &doc,
                            ExperimentResult &out);

    /**
     * Write json() as RESULT_<name>.json under the QCC_JSON
     * convention; returns the path written ("" when disabled).
     */
    std::string write(const std::string &name) const;
};

/**
 * A workload-kind runner: a validated, resolved spec in, a full
 * result out. The registry below maps spec `kind` keys onto these.
 */
using ExperimentKindFn =
    std::function<ExperimentResult(const ExperimentSpec &)>;
using ExperimentKindRegistry = Registry<ExperimentKindFn>;

/**
 * Workload kinds by name — built-ins "vqe", "evolve", "estimate";
 * downstream code can add() new kinds and select them from specs
 * with no core changes.
 */
ExperimentKindRegistry &experimentKindRegistry();

class ExperimentBuilder;

/** A validated, runnable experiment. */
class Experiment
{
  public:
    /**
     * Validate `spec` and resolve every registry key; throws
     * RegistryError/SpecError with the valid choices on any unknown
     * name.
     */
    explicit Experiment(ExperimentSpec spec);

    /** Fluent spec construction. */
    static ExperimentBuilder builder();

    const ExperimentSpec &spec() const { return resolved; }

    /** Execute the full flow described by the spec. */
    ExperimentResult run() const;

  private:
    ExperimentSpec resolved;
};

/** Fluent ExperimentSpec assembly; build() validates. */
class ExperimentBuilder
{
  public:
    ExperimentBuilder &kind(const std::string &key);
    ExperimentBuilder &molecule(const std::string &name);
    ExperimentBuilder &bond(double angstrom);
    ExperimentBuilder &basisNg(int n);
    ExperimentBuilder &compression(double ratio);
    ExperimentBuilder &grouping(const std::string &key);
    ExperimentBuilder &mode(const std::string &key);
    ExperimentBuilder &optimizer(const std::string &key);
    ExperimentBuilder &pipeline(const std::string &preset);
    ExperimentBuilder &architecture(const std::string &key);
    ExperimentBuilder &noise(double cnot_error,
                             double single_qubit_error = 0.0);
    ExperimentBuilder &shots(uint64_t n);
    ExperimentBuilder &seed(uint64_t s);
    ExperimentBuilder &maxIter(int n);
    ExperimentBuilder &spsaIter(int n);
    ExperimentBuilder &evolveTime(double t);
    ExperimentBuilder &evolveSteps(int r);
    ExperimentBuilder &evolveOrder(int order);
    ExperimentBuilder &reference(bool compute);

    const ExperimentSpec &spec() const { return draft; }

    /** Validate and freeze into a runnable Experiment. */
    Experiment build() const;

  private:
    ExperimentSpec draft;
};

} // namespace qcc

#endif // QCC_API_EXPERIMENT_HH
