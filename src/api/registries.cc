#include "api/registries.hh"

#include "vqe/estimation.hh"

namespace qcc {

BackendRegistry &
backendRegistry()
{
    // Factories delegate to the estimation layer's StateModel
    // builders, so each backend has exactly one construction site.
    static BackendRegistry reg = [] {
        BackendRegistry r("backend");
        r.add("statevector", [](const BackendConfig &c) {
            return statevectorModel(c.nQubits).make();
        });
        r.add("density_matrix", [](const BackendConfig &c) {
            return densityMatrixModel(c.nQubits, c.noise).make();
        });
        return r;
    }();
    return reg;
}

OptimizerRegistry &
optimizerRegistry()
{
    static OptimizerRegistry reg = [] {
        OptimizerRegistry r("optimizer");
        r.add("lbfgs",
              [] { return std::make_unique<LbfgsVqeOptimizer>(); });
        r.add("gd", [] {
            return std::make_unique<GradientDescentVqeOptimizer>();
        });
        r.add("spsa",
              [] { return std::make_unique<SpsaVqeOptimizer>(); });
        r.add("nelder-mead", [] {
            return std::make_unique<NelderMeadVqeOptimizer>();
        });
        return r;
    }();
    return reg;
}

GroupingRegistry &
groupingRegistry()
{
    static GroupingRegistry reg = [] {
        GroupingRegistry r("grouping strategy");
        r.add("greedy", groupQubitWise);
        r.add("sorted-insertion", groupQubitWiseSorted);
        r.add("graph-coloring", groupQubitWiseColoring);
        return r;
    }();
    return reg;
}

PipelinePresetRegistry &
pipelinePresetRegistry()
{
    static PipelinePresetRegistry reg = [] {
        PipelinePresetRegistry r("pipeline preset");
        r.add("chain", [] {
            PipelineOptions o;
            o.flow = PipelineOptions::Flow::ChainOnly;
            return o;
        });
        r.add("mtr", [] { return PipelineOptions{}; });
        r.add("mtr-peephole", [] {
            PipelineOptions o;
            o.peephole = true;
            return o;
        });
        r.add("mtr-verify", [] {
            PipelineOptions o;
            o.verifyTrials = 2;
            return o;
        });
        r.add("sabre", [] {
            PipelineOptions o;
            o.flow = PipelineOptions::Flow::Sabre;
            return o;
        });
        return r;
    }();
    return reg;
}

} // namespace qcc
