/**
 * @file
 * Declarative experiment description. An ExperimentSpec is the full
 * recipe for one end-to-end run of the co-optimized flow — molecule,
 * basis, active space (via the Table I catalog), measurement
 * grouping, ansatz compression, compiler pipeline + target
 * architecture, evaluation mode, optimizer, shot budget, and seed —
 * as a flat, JSON-round-trippable value: json() and fromJson()
 * are exact inverses (stable field order, %.17g numbers), so a spec
 * can be archived next to its RESULT_*.json and replayed
 * bit-for-bit. String fields are registry keys, resolved (and
 * diagnosed with the registered-name list) when qcc::Experiment
 * validates the spec; fromJson() itself only checks shape, throwing
 * SpecError with field provenance on malformed documents.
 */

#ifndef QCC_API_SPEC_HH
#define QCC_API_SPEC_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/json.hh"

namespace qcc {

/** Malformed-spec failure naming the offending field. */
class SpecError : public std::runtime_error
{
  public:
    SpecError(std::string field_name, const std::string &detail)
        : std::runtime_error("ExperimentSpec." + field_name + ": " +
                             detail),
          fieldName(std::move(field_name))
    {
    }

    const std::string &field() const { return fieldName; }

  private:
    std::string fieldName;
};

/** One experiment, declaratively. */
struct ExperimentSpec
{
    /**
     * Workload kind (ExperimentKindRegistry key): "vqe" (ground
     * state), "evolve" (Trotterized time evolution), or "estimate"
     * (simulation-free resource estimate).
     */
    std::string kind = "vqe";

    /** Table I catalog molecule ("H2", "LiH", ..., "CH4"). */
    std::string molecule = "H2";

    /** Bond length in Angstrom; <= 0 uses the catalog equilibrium. */
    double bond = 0.0;

    /** STO-nG contraction count (3 = the paper's STO-3G). */
    int basisNg = 3;

    /** Kept-parameter ratio; >= 1 keeps the full UCCSD ansatz. */
    double compression = 1.0;

    /** GroupingRegistry key ("greedy", "sorted-insertion"). */
    std::string grouping = "greedy";

    /** Evaluation mode ("ideal", "noisy", "sampled",
     *  "noisy_sampled"). */
    std::string mode = "ideal";

    /** OptimizerRegistry key ("lbfgs", "gd", "spsa",
     *  "nelder-mead"). */
    std::string optimizer = "lbfgs";

    /** PipelinePresetRegistry key; empty skips the compile phase. */
    std::string pipeline;

    /** Target device ("xtree<N>", "grid17", "grid<R>x<C>");
     *  required by routed pipeline presets. */
    std::string architecture;

    /** CNOT depolarizing probability (noisy modes; the paper's
     *  Section VI-D default). */
    double cnotError = 1e-4;

    /** Single-qubit depolarizing probability (noisy modes). */
    double singleQubitError = 0.0;

    /** Shots per energy estimate; 0 uses the QCC_SHOTS-backed
     *  default. */
    uint64_t shots = 0;

    /** Master seed; 0 uses the QCC_SEED-backed global seed. */
    uint64_t seed = 0;

    /** Outer-loop iteration budget (gradient optimizers). */
    int maxIter = 200;

    /** SPSA iteration budget. */
    int spsaIter = 250;

    /** Total evolution time t of exp(-iHt), in Hartree^-1 (kind
     *  "evolve"; > 0 required there, must stay 0 for "vqe"). */
    double evolveTime = 0.0;

    /** Trotter step count r (kind "evolve": >= 1 required; kind
     *  "estimate": >= 1 selects the Trotter program instead of the
     *  UCCSD ansatz; must stay 0 for "vqe"). */
    int evolveSteps = 0;

    /** Product-formula order: 1 (Lie-Trotter) or 2 (Strang). */
    int evolveOrder = 1;

    /** Compute the Lanczos FCI reference energy in the result; for
     *  kind "evolve" it gates the exact exp(-iHt) fidelity
     *  reference instead. Ignored by "estimate". */
    bool reference = true;

    /**
     * Flat JSON document, stable field order. fromJson(json()) is
     * the identity.
     */
    std::string json() const;

    /** Parse a spec document; throws SpecError on malformed input,
     *  unknown fields, or duplicate top-level fields (each
     *  diagnostic names the field). */
    static ExperimentSpec fromJson(const std::string &doc);
};

/**
 * Apply one parsed JSON value onto a spec field named by its JSON
 * key ("molecule", "bond", "max_iter", ...). This is the expansion
 * hook the sweep layer fans a SweepSpec's axes through — one setter
 * shared with fromJson(), so axis values obey exactly the spec
 * document's typing rules (exact uint64 seeds, int range checks).
 * Throws SpecError naming the field on an unknown key or a
 * wrong-typed value.
 */
void applySpecField(ExperimentSpec &spec, const std::string &key,
                    const JsonValue &value);

} // namespace qcc

#endif // QCC_API_SPEC_HH
