/**
 * @file
 * The facade's component registries. Each pluggable choice an
 * ExperimentSpec names by string — simulation backend, classical
 * optimizer, measurement-grouping strategy, compiler-pipeline preset
 * — is a string-keyed Registry (common/registry.hh) seeded with the
 * built-in components in its accessor's bootstrap, so static-library
 * dead-stripping can never drop one. Unknown keys throw
 * RegistryError listing the registered names. Downstream code can
 * add() new components at startup and select them from specs with no
 * core changes — the ScaffCC-style pass-registry pattern applied to
 * the whole stack.
 *
 * Built-ins:
 *  - backends:  "statevector", "density_matrix"
 *  - optimizers: "lbfgs", "gd", "spsa", "nelder-mead"
 *  - groupings: "greedy", "sorted-insertion", "graph-coloring"
 *  - pipeline presets: "chain", "mtr", "mtr-peephole",
 *    "mtr-verify", "sabre"
 * (Evaluation modes have their own registry in vqe/estimation.hh.)
 */

#ifndef QCC_API_REGISTRIES_HH
#define QCC_API_REGISTRIES_HH

#include <functional>
#include <memory>

#include "common/registry.hh"
#include "compiler/pipeline.hh"
#include "pauli/grouping.hh"
#include "sim/backend.hh"
#include "sim/noise_model.hh"
#include "vqe/optimizers.hh"

namespace qcc {

/** Everything a backend factory needs. */
struct BackendConfig
{
    unsigned nQubits = 0;
    NoiseModel noise; ///< ignored by noiseless backends
};

using BackendFactoryFn =
    std::function<std::unique_ptr<SimBackend>(const BackendConfig &)>;
using OptimizerFactoryFn =
    std::function<std::unique_ptr<VqeOptimizer>()>;
using PipelinePresetFn = std::function<PipelineOptions()>;

using BackendRegistry = Registry<BackendFactoryFn>;
using OptimizerRegistry = Registry<OptimizerFactoryFn>;
using GroupingRegistry = Registry<GroupingFn>;
using PipelinePresetRegistry = Registry<PipelinePresetFn>;

/** Simulation backends by name. */
BackendRegistry &backendRegistry();

/** Classical optimizers by name. */
OptimizerRegistry &optimizerRegistry();

/** Measurement-grouping strategies by name. */
GroupingRegistry &groupingRegistry();

/** Compiler-pipeline presets by name. */
PipelinePresetRegistry &pipelinePresetRegistry();

} // namespace qcc

#endif // QCC_API_REGISTRIES_HH
