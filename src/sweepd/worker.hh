/**
 * @file
 * sweepd worker entry point — the `--worker` mode of the qcc_sweepd
 * binary (and of test binaries that self-exec). A worker is one
 * job's whole process: it reads a single framed JobRequest from
 * stdin, runs it through the ordinary qcc::Experiment facade, writes
 * a single framed reply to (the original) stdout, and exits. Crash
 * isolation and the hard timeout both fall out of the process
 * boundary: a SIGSEGV/abort or a kill-at-deadline takes down only
 * this process, and the parent reads the outcome off waitpid.
 *
 * The worker re-points fd 1 at fd 2 immediately after saving the
 * real stdout, so any stray print inside the experiment stack lands
 * on stderr instead of corrupting the frame stream.
 *
 * Test hooks (hermetic fault injection, active only when set):
 *   QCC_SWEEPD_TEST_CRASH_SEED=<n>  abort() when a job's seed == n
 *   QCC_SWEEPD_TEST_SLEEP_SEED=<n>  sleep ~30 s when a job's seed == n
 */

#ifndef QCC_SWEEPD_WORKER_HH
#define QCC_SWEEPD_WORKER_HH

namespace qcc {
namespace sweepd {

/** Argv flag selecting worker mode ("--worker"). */
extern const char *const kWorkerFlag;

/**
 * Run one job from stdin to stdout (framed; see protocol.hh).
 * Returns the process exit code: 0 when a reply was delivered
 * (including a failed-job reply), nonzero when the protocol itself
 * broke down (unreadable request, dead pipe).
 */
int workerMain();

} // namespace sweepd
} // namespace qcc

#endif // QCC_SWEEPD_WORKER_HH
