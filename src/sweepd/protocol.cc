#include "sweepd/protocol.hh"

#include <cstdio>

#include "common/json.hh"

namespace qcc {
namespace sweepd {

namespace {

/** Append `doc` (multi-line) with its trailing newlines trimmed. */
void
appendTrimmed(std::string &out, std::string doc)
{
    while (!doc.empty() && doc.back() == '\n')
        doc.pop_back();
    out += doc;
}

} // namespace

std::string
encodeJobRequest(const JobRequest &request)
{
    std::string out = "{\"spec\": ";
    appendTrimmed(out, request.spec.json());
    out += "}\n";
    return out;
}

JobRequest
decodeJobRequest(const std::string &payload)
{
    const JsonValue doc = JsonValue::parse(payload);
    if (!doc.isObject())
        throw SpecError("(request)", "expected a request object");
    JobRequest request;
    bool haveSpec = false;
    for (const auto &[key, v] : doc.members) {
        if (key == "spec") {
            if (!v.isObject())
                throw SpecError("(request)",
                                "spec must be an object");
            for (const auto &[field, fv] : v.members)
                applySpecField(request.spec, field, fv);
            haveSpec = true;
        } else {
            throw SpecError("(request)",
                            "unknown request member: " + key);
        }
    }
    if (!haveSpec)
        throw SpecError("(request)", "request carries no spec");
    return request;
}

std::string
encodeDoneReply(const ExperimentResult &result,
                const WorkerStoreStats &store,
                const std::string &trace_events,
                const std::string &metrics)
{
    char buf[256];
    std::string out = "{\"status\": \"done\",\n\"store\": ";
    std::snprintf(buf, sizeof(buf),
                  "{\"compile_hits\": %llu, "
                  "\"compile_misses\": %llu, "
                  "\"circuit_disk_hits\": %llu, "
                  "\"problem_builds\": %llu, "
                  "\"problem_disk_hits\": %llu, "
                  "\"problem_mem_hits\": %llu},\n",
                  (unsigned long long)store.compileHits,
                  (unsigned long long)store.compileMisses,
                  (unsigned long long)store.circuitDiskHits,
                  (unsigned long long)store.problemBuilds,
                  (unsigned long long)store.problemDiskHits,
                  (unsigned long long)store.problemMemHits);
    out += buf;
    out += "\"result\": ";
    ExperimentResult::JsonOptions jo;
    jo.timings = true; // the store drops them when configured to
    jo.trace = false;
    appendTrimmed(out, result.json(jo));
    if (!trace_events.empty()) {
        out += ",\n\"trace\": ";
        out += trace_events;
    }
    if (!metrics.empty()) {
        out += ",\n\"metrics\": ";
        appendTrimmed(out, metrics);
    }
    out += "}\n";
    return out;
}

std::string
encodeFailedReply(const std::string &error, bool fast_fail)
{
    std::string out = "{\"status\": \"failed\", \"fast_fail\": ";
    out += fast_fail ? "true" : "false";
    out += ", \"error\": \"" + jsonEscape(error) + "\"}\n";
    return out;
}

bool
decodeReply(const std::string &payload, WorkerReply &out)
{
    JsonValue doc;
    try {
        doc = JsonValue::parse(payload);
    } catch (const JsonError &) {
        return false;
    }
    if (!doc.isObject())
        return false;
    const JsonValue *status = doc.find("status");
    if (!status || !status->isString())
        return false;

    WorkerReply reply;
    if (status->text == "done") {
        reply.done = true;
        const JsonValue *result = doc.find("result");
        if (!result ||
            !ExperimentResult::fromJsonDom(*result, reply.result))
            return false;
        if (const JsonValue *trace = doc.find("trace"))
            if (trace->isArray())
                reply.trace = *trace;
        if (const JsonValue *metrics = doc.find("metrics"))
            if (metrics->isObject())
                reply.metrics = *metrics;
        if (const JsonValue *store = doc.find("store")) {
            if (!store->isObject())
                return false;
            uint64_t u = 0;
            for (const auto &[key, v] : store->members) {
                if (!v.asUint64(u))
                    return false;
                if (key == "compile_hits")
                    reply.store.compileHits = u;
                else if (key == "compile_misses")
                    reply.store.compileMisses = u;
                else if (key == "circuit_disk_hits")
                    reply.store.circuitDiskHits = u;
                else if (key == "problem_builds")
                    reply.store.problemBuilds = u;
                else if (key == "problem_disk_hits")
                    reply.store.problemDiskHits = u;
                else if (key == "problem_mem_hits")
                    reply.store.problemMemHits = u;
                else
                    return false;
            }
        }
    } else if (status->text == "failed") {
        const JsonValue *error = doc.find("error");
        if (!error || !error->isString())
            return false;
        reply.error = error->text;
        if (const JsonValue *ff = doc.find("fast_fail")) {
            if (!ff->isBool())
                return false;
            reply.fastFail = ff->boolean;
        }
    } else {
        return false;
    }
    out = std::move(reply);
    return true;
}

} // namespace sweepd
} // namespace qcc
