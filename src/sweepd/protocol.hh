/**
 * @file
 * sweepd wire protocol — the JSON messages framed over the
 * parent/worker pipes (common/subprocess supplies the framing:
 * magic + length + payload + FNV-1a checksum). One exchange per
 * worker process:
 *
 *   parent -> worker (stdin):  {"spec": { ...ExperimentSpec... }}
 *   worker -> parent (stdout): {"status": "done",
 *                               "store": { ...cache counters... },
 *                               "result": { ...ExperimentResult... }}
 *                         or:  {"status": "failed",
 *                               "fast_fail": true|false,
 *                               "error": "..."}
 *
 * The result document is ExperimentResult::json() with the trace
 * dropped and timings kept; the parent rehydrates it with
 * ExperimentResult::fromJsonDom, so a record that travelled through
 * a worker re-serializes byte-for-byte identically to one computed
 * in-process (the concurrency-1-vs-N identity the ResultStore
 * promises). `fast_fail` marks spec/registry errors — failures a
 * retry cannot fix. `store` carries the worker's compile-cache
 * counters so cross-process disk-tier sharing is observable (tests
 * assert a warm-store worker reports zero compile misses).
 */

#ifndef QCC_SWEEPD_PROTOCOL_HH
#define QCC_SWEEPD_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "api/experiment.hh"
#include "api/spec.hh"
#include "common/json.hh"

namespace qcc {
namespace sweepd {

/** One job, parent -> worker. */
struct JobRequest
{
    ExperimentSpec spec;
};

/**
 * Worker-side cache counters reported with a done reply. A worker
 * starts with cold in-process caches, so these directly measure the
 * persistent tier's cross-process value: a worker running against a
 * store another process already warmed reports zero compileMisses
 * and zero problemBuilds — everything came off disk.
 */
struct WorkerStoreStats
{
    uint64_t compileHits = 0;     ///< circuit-cache hits (mem+disk)
    uint64_t compileMisses = 0;   ///< fresh compiles
    uint64_t circuitDiskHits = 0; ///< served by the persistent tier
    uint64_t problemBuilds = 0;   ///< full integrals/HF builds
    uint64_t problemDiskHits = 0; ///< problems read back from disk
    uint64_t problemMemHits = 0;  ///< in-process memo hits
};

/** Decoded worker -> parent reply. */
struct WorkerReply
{
    bool done = false;     ///< status == "done"
    bool fastFail = false; ///< failed: spec/registry error, no retry
    std::string error;     ///< failed: diagnostic
    WorkerStoreStats store;
    ExperimentResult result; ///< valid when done
    /**
     * Optional telemetry riders: `trace` is the worker's Chrome
     * trace-event array (obs/trace traceEventsArrayJson, present
     * only when the worker ran with QCC_TRACE on), `metrics` its
     * metrics-registry snapshot (obs/metrics metricsJson). The
     * service adopts the first into its own trace buffers and
     * merges the second into its registry, which is what turns a
     * process-per-job sweep into one coherent timeline.
     */
    JsonValue trace;
    JsonValue metrics;
};

/** Serialize a job request payload. */
std::string encodeJobRequest(const JobRequest &request);

/**
 * Parse a job request payload; throws JsonError/SpecError (which
 * the worker reports back as a fast-fail).
 */
JobRequest decodeJobRequest(const std::string &payload);

/**
 * Serialize a done reply (result without its optimizer trace).
 * `trace_events` is a Chrome trace-event array document ("" = omit
 * the member) and `metrics` a metricsJson() document ("" = omit).
 */
std::string encodeDoneReply(const ExperimentResult &result,
                            const WorkerStoreStats &store,
                            const std::string &trace_events = "",
                            const std::string &metrics = "");

/** Serialize a failed reply. */
std::string encodeFailedReply(const std::string &error,
                              bool fast_fail);

/**
 * Parse a worker reply; false when the payload is not a
 * well-formed reply document (the parent records a failed job
 * naming the corruption rather than crashing).
 */
bool decodeReply(const std::string &payload, WorkerReply &out);

} // namespace sweepd
} // namespace qcc

#endif // QCC_SWEEPD_PROTOCOL_HH
