/**
 * @file
 * SweepdService — the process-per-job sweep runner behind the
 * qcc_sweepd binary. Same contract as the in-process SweepEngine
 * (expand a SweepSpec, land one record per job in a ResultStore,
 * byte-stable aggregates), different execution substrate: every job
 * runs in a forked worker process (worker.hh) over a framed pipe
 * protocol (protocol.hh), which upgrades two soft guarantees to
 * hard ones —
 *
 *  - the per-job timeout is a real deadline: a worker past its
 *    budget is SIGKILLed and reaped, and the job is recorded
 *    TimedOut with timeout_kind "hard" (the in-process engine can
 *    only record "soft" after the fact; docs/sweepd.md has the
 *    comparison table);
 *  - a crashing job (SIGSEGV, abort) costs exactly one Failed
 *    record — the service reaps the corpse and moves on.
 *
 * Workers inherit the parent environment, so QCC_STORE_DIR makes
 * the src/store disk tier a shared cross-process cache: the first
 * worker to compile a circuit or build a molecular problem writes
 * it through, every later worker (and every later service run)
 * reads it back. Each worker also gets QCC_JOB_WIDTH =
 * parallelThreads() / concurrency so N concurrent jobs split the
 * machine instead of oversubscribing it (see common/parallel).
 *
 * Resume: when a SWEEP_<name>.json from an earlier (killed) run
 * exists, submit() adopts every recorded done job whose spec_hash
 * still matches (ResultStore::adoptCompleted) and re-runs only the
 * rest; the aggregate is written through after every job, so the
 * resume document always reflects everything completed so far, and
 * the final document is byte-identical to an uninterrupted run.
 */

#ifndef QCC_SWEEPD_SERVICE_HH
#define QCC_SWEEPD_SERVICE_HH

#include <string>

#include "sweep/sweep_engine.hh"
#include "sweep/sweep_spec.hh"
#include "sweepd/protocol.hh"

namespace qcc {
namespace sweepd {

/** Service knobs (overrides of the spec's own hints). */
struct SweepdOptions
{
    /**
     * Binary to exec for workers (invoked as `<path> --worker`);
     * usually the service's own executable (selfExecutablePath).
     */
    std::string workerPath;

    /** Worker-pool width; 0 defers to the spec, then QCC_THREADS. */
    unsigned concurrency = 0;

    /**
     * Hard per-job wall-clock budget in ms; a worker past it is
     * killed and reaped. < 0 defers to the spec's jobTimeoutMs
     * (which the in-process engine could only honor softly); 0
     * disables.
     */
    double jobTimeoutMs = -1.0;

    /** Extra attempts after retryable failures; < 0 defers. */
    int retries = -1;

    /** Give each worker QCC_JOB_WIDTH = threads / concurrency. */
    bool capJobWidth = true;

    /**
     * Adopt completed jobs from an existing SWEEP_<name>.json
     * before running (resume). The document is looked up under the
     * QCC_JSON convention unless resumeDoc names a path explicitly.
     */
    bool resume = true;
    std::string resumeDoc;

    /**
     * Rewrite SWEEP_<name>.json after every job record, so a killed
     * service leaves a resumable aggregate behind. (Final state is
     * always written once more on completion.)
     */
    bool writeThrough = true;

    SweepProgressFn progress;
};

/** Outcome counters for one submit(). */
struct SweepdRunStats
{
    size_t jobs = 0;    ///< expanded job count
    size_t resumed = 0; ///< adopted from the prior document
    size_t ran = 0;     ///< executed in a worker this run
    std::string writtenPath; ///< final aggregate path ("" if disabled)
    /**
     * Sum of the cache counters every done worker reported in its
     * reply — the ground truth the merged metrics registry (and the
     * trace-smoke CI cross-check) must agree with.
     */
    WorkerStoreStats workers;
};

/** Process-per-job sweep runner (see file comment). */
class SweepdService
{
  public:
    explicit SweepdService(SweepdOptions options);

    /**
     * Run one sweep to completion; blocks. Throws
     * SweepError/SpecError on a malformed spec (before any job
     * runs); per-job failures/crashes/timeouts are recorded, never
     * thrown. `stats` (optional) receives the outcome counters.
     */
    ResultStore submit(const SweepSpec &spec,
                       SweepdRunStats *stats = nullptr);

    /** Resolved worker-pool width for `spec`. */
    unsigned concurrency(const SweepSpec &spec) const;

  private:
    void runJob(size_t index, ResultStore &store,
                double timeout_ms, int max_attempts,
                unsigned job_width);
    void landRecord(SweepJobRecord rec, ResultStore &store);

    SweepdOptions opts;
    std::mutex progressMutex;
    size_t completedJobs = 0;
    WorkerStoreStats workerTotals; ///< under progressMutex
};

/**
 * Absolute path of the running executable (/proc/self/exe), falling
 * back to `argv0` when the proc link is unavailable.
 */
std::string selfExecutablePath(const char *argv0);

} // namespace sweepd
} // namespace qcc

#endif // QCC_SWEEPD_SERVICE_HH
