#include "sweepd/service.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/subprocess.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sweepd/protocol.hh"
#include "sweepd/worker.hh"

namespace qcc {
namespace sweepd {

namespace {

using clock_type = std::chrono::steady_clock;

double
millisSince(clock_type::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               clock_type::now() - t0)
        .count();
}

/** Whole-file read; false when unreadable. */
bool
slurp(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    out = buf.str();
    return true;
}

} // namespace

SweepdService::SweepdService(SweepdOptions options)
    : opts(std::move(options))
{
    // A worker killed mid-write must not take the service with it.
    ignoreSigpipe();
}

unsigned
SweepdService::concurrency(const SweepSpec &spec) const
{
    if (opts.concurrency)
        return opts.concurrency;
    if (spec.concurrency)
        return spec.concurrency;
    return parallelThreads();
}

ResultStore
SweepdService::submit(const SweepSpec &spec, SweepdRunStats *stats)
{
    // Expansion throws on malformed axes — before any worker forks.
    const std::vector<ExperimentSpec> jobs = spec.expand();
    ResultStore store(spec.name, spec.emitTimings);
    store.reset(jobs);

    SweepdRunStats st;
    st.jobs = jobs.size();
    {
        std::lock_guard<std::mutex> lock(progressMutex);
        workerTotals = WorkerStoreStats{};
    }

    if (opts.resume) {
        const std::string priorPath =
            !opts.resumeDoc.empty()
                ? opts.resumeDoc
                : qccJsonPath("SWEEP_" + spec.name + ".json");
        std::string prior;
        if (!priorPath.empty() && slurp(priorPath, prior)) {
            try {
                st.resumed = store.adoptCompleted(prior);
            } catch (const JsonError &e) {
                // A truncated aggregate (service killed mid-write)
                // resumes nothing; the sweep just runs in full.
                warn("sweepd: ignoring unparseable resume document " +
                     priorPath + ": " + e.what());
            }
            if (st.resumed)
                inform("sweepd: resumed " +
                       std::to_string(st.resumed) + " of " +
                       std::to_string(jobs.size()) +
                       " jobs from " + priorPath);
        }
    }
    completedJobs = st.resumed;

    const unsigned width =
        std::max(1u, std::min<unsigned>(concurrency(spec),
                                        unsigned(std::max<size_t>(
                                            jobs.size(), 1))));
    const double timeoutMs = opts.jobTimeoutMs >= 0.0
                                 ? opts.jobTimeoutMs
                                 : spec.jobTimeoutMs;
    const int retries =
        opts.retries >= 0 ? opts.retries : spec.retries;
    const int maxAttempts = 1 + std::max(0, retries);
    // Split the machine across concurrent workers: each gets
    // threads/width pool lanes via QCC_JOB_WIDTH (chunking — and so
    // results — never depends on it; see common/parallel).
    const unsigned jobWidth =
        opts.capJobWidth
            ? std::max(1u, parallelThreads() / width)
            : 0;

    {
        TraceSpan span("sweepd.submit");
        span.arg("jobs", jobs.size());
        span.arg("width", width);
        BoundedExecutor executor(width);
        executor.run(jobs.size(), [&](size_t i) {
            runJob(i, store, timeoutMs, maxAttempts, jobWidth);
        });
    }

    st.ran = st.jobs - st.resumed;
    st.writtenPath = store.write();
    {
        std::lock_guard<std::mutex> lock(progressMutex);
        st.workers = workerTotals;
    }
    if (stats)
        *stats = st;
    return store;
}

void
SweepdService::runJob(size_t index, ResultStore &store,
                      double timeout_ms, int max_attempts,
                      unsigned job_width)
{
    // Adopted from the resume document — never re-run.
    if (store.jobs()[index].status != JobStatus::Pending)
        return;

    SweepJobRecord rec;
    rec.index = index;
    rec.spec = store.jobs()[index].spec;
    rec.specHash = store.jobs()[index].specHash;
    store.markRunning(index);

    TraceSpan span("sweepd.job");
    span.arg("job", index);

    std::vector<std::pair<std::string, std::string>> env;
    if (job_width > 0)
        env.emplace_back("QCC_JOB_WIDTH",
                         std::to_string(job_width));
    // Tracing state is explicit rather than inherited: a bench (or
    // test) that flipped setTraceEnabled() programmatically still
    // gets worker spans, and a traced parent can run an untraced
    // sweep.
    env.emplace_back("QCC_TRACE", traceEnabled() ? "1" : "0");

    const std::string request =
        encodeJobRequest(JobRequest{rec.spec});

    const auto t0 = clock_type::now();
    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
        rec.attempts = attempt;

        ChildProcess child = spawnChildProcess(
            {opts.workerPath, std::string(kWorkerFlag)}, env);
        if (child.pid < 0) {
            rec.status = JobStatus::Failed;
            rec.error = "cannot spawn worker: " + opts.workerPath;
            break; // fork/pipe failure is not per-job retryable
        }

        const bool wrote = writeFrame(child.stdinFd, request);
        closeFd(child.stdinFd);
        if (!wrote) {
            killProcess(child.pid);
            const ExitStatus es = reapProcess(child.pid);
            closeFd(child.stdoutFd);
            rec.status = JobStatus::Failed;
            rec.error = "worker rejected the job request (" +
                        es.describe() + ")";
            continue; // the worker died at startup; retry
        }

        std::string payload;
        const FrameStatus fs =
            readFrame(child.stdoutFd, payload, timeout_ms);

        if (fs == FrameStatus::Timeout) {
            // The hard deadline: kill the worker and reap the
            // corpse. No retry — a job over its budget once is
            // over it again.
            killProcess(child.pid);
            const ExitStatus es = reapProcess(child.pid);
            closeFd(child.stdoutFd);
            char buf[128];
            std::snprintf(buf, sizeof(buf),
                          "hard timeout after %.6g ms; worker "
                          "killed (%s)",
                          timeout_ms, es.describe().c_str());
            rec.status = JobStatus::TimedOut;
            rec.timeoutKind = TimeoutKind::Hard;
            rec.error = buf;
            break;
        }

        closeFd(child.stdoutFd);
        const ExitStatus es = reapProcess(child.pid);

        if (fs == FrameStatus::Ok) {
            WorkerReply reply;
            if (!decodeReply(payload, reply)) {
                rec.status = JobStatus::Failed;
                rec.error = "unparseable worker reply (" +
                            es.describe() + ")";
                continue;
            }
            if (reply.done) {
                rec.status = JobStatus::Done;
                rec.timeoutKind = TimeoutKind::None;
                rec.result = std::move(reply.result);
                rec.error.clear();
                // Fold the worker telemetry into the service: its
                // span buffer joins this process's timeline (the
                // events carry the worker pid), its metrics merge
                // into the registry, and its cache counters land in
                // the ground-truth totals the registry must match.
                if (reply.trace.isArray())
                    adoptTraceEventsDom(reply.trace);
                if (reply.metrics.isObject())
                    mergeMetricsDom(reply.metrics);
                {
                    std::lock_guard<std::mutex> lock(progressMutex);
                    workerTotals.compileHits +=
                        reply.store.compileHits;
                    workerTotals.compileMisses +=
                        reply.store.compileMisses;
                    workerTotals.circuitDiskHits +=
                        reply.store.circuitDiskHits;
                    workerTotals.problemBuilds +=
                        reply.store.problemBuilds;
                    workerTotals.problemDiskHits +=
                        reply.store.problemDiskHits;
                    workerTotals.problemMemHits +=
                        reply.store.problemMemHits;
                }
                break;
            }
            rec.status = JobStatus::Failed;
            rec.error = reply.error;
            if (reply.fastFail)
                break; // a typo'd key cannot succeed on retry
            continue;
        }

        // Eof/Corrupt/IoError: the worker died before delivering a
        // reply — the crash-isolation path. Record (or retry) and
        // keep the service alive.
        rec.status = JobStatus::Failed;
        rec.error = std::string("worker died before replying (") +
                    frameStatusName(fs) + ", " + es.describe() +
                    ")";
    }
    rec.wallMillis = millisSince(t0);
    span.arg("status", jobStatusName(rec.status));
    span.arg("attempts", rec.attempts);

    landRecord(std::move(rec), store);
}

void
SweepdService::landRecord(SweepJobRecord rec, ResultStore &store)
{
    const size_t index = rec.index;
    // Record + write-through + progress under one lock: callbacks
    // never interleave, and the on-disk aggregate always reflects a
    // consistent prefix of completed work (the resume source).
    std::lock_guard<std::mutex> lock(progressMutex);
    store.record(std::move(rec));
    ++completedJobs;
    if (opts.writeThrough)
        store.write();
    if (opts.progress) {
        SweepProgress p;
        p.completed = completedJobs;
        p.total = store.size();
        p.last = &store.jobs()[index];
        opts.progress(p);
    }
}

std::string
selfExecutablePath(const char *argv0)
{
    char buf[4096];
    const ssize_t n =
        ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0 ? argv0 : "";
}

} // namespace sweepd
} // namespace qcc
