#include "sweepd/worker.hh"

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

#include <unistd.h>

#include "api/registries.hh"
#include "common/subprocess.hh"
#include "compiler/cache.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "store/store.hh"
#include "sweepd/protocol.hh"

namespace qcc {
namespace sweepd {

const char *const kWorkerFlag = "--worker";

namespace {

/** True when `name` is set and parses to exactly `seed`. */
bool
seedHookMatches(const char *name, uint64_t seed)
{
    const char *env = std::getenv(name);
    if (!env || !*env)
        return false;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    return end && *end == '\0' && v == seed;
}

} // namespace

int
workerMain()
{
    ignoreSigpipe();

    // Keep the frame channel private: save the real stdout, then
    // point fd 1 at stderr so stray prints can't corrupt frames.
    const int replyFd = ::dup(STDOUT_FILENO);
    if (replyFd < 0)
        return 3;
    ::dup2(STDERR_FILENO, STDOUT_FILENO);

    std::string payload;
    if (readFrame(STDIN_FILENO, payload, /*timeout_ms=*/0.0) !=
        FrameStatus::Ok)
        return 3;

    std::string reply;
    try {
        const JobRequest request = decodeJobRequest(payload);

        // Fault-injection hooks for the crash/timeout tests: keyed
        // on the job's seed so one spec in a sweep misbehaves while
        // its siblings run normally.
        if (seedHookMatches("QCC_SWEEPD_TEST_CRASH_SEED",
                            request.spec.seed))
            std::abort();
        if (seedHookMatches("QCC_SWEEPD_TEST_SLEEP_SEED",
                            request.spec.seed))
            std::this_thread::sleep_for(std::chrono::seconds(30));

        Experiment experiment(request.spec);
        const ExperimentResult result = experiment.run();

        WorkerStoreStats stats;
        const CacheStats cs = globalCircuitCache().stats();
        const StoreStats ss = storeStats();
        stats.compileHits = cs.hits;
        stats.compileMisses = cs.misses;
        stats.circuitDiskHits = ss.circuitDiskHits;
        stats.problemBuilds = ss.problemBuilds;
        stats.problemDiskHits = ss.problemDiskHits;
        stats.problemMemHits = ss.problemMemHits;

        // Telemetry riders: the worker's span buffer (only when
        // tracing is on — the events carry this process's pid, so
        // the service's merged timeline separates workers) and its
        // metrics snapshot (always; counters are how the service
        // cross-checks worker totals without tracing).
        std::string traceDoc;
        if (traceEnabled() && traceEventCount())
            traceDoc = traceEventsArrayJson();
        reply = encodeDoneReply(result, stats, traceDoc,
                                metricsJson());
    } catch (const SpecError &e) {
        reply = encodeFailedReply(e.what(), /*fast_fail=*/true);
    } catch (const RegistryError &e) {
        reply = encodeFailedReply(e.what(), /*fast_fail=*/true);
    } catch (const JsonError &e) {
        reply = encodeFailedReply(e.what(), /*fast_fail=*/true);
    } catch (const std::exception &e) {
        reply = encodeFailedReply(e.what(), /*fast_fail=*/false);
    }

    return writeFrame(replyFd, reply) ? 0 : 3;
}

} // namespace sweepd
} // namespace qcc
