#include "sweep/sweep_engine.hh"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>

#include "compiler/cache.hh"
#include "obs/trace.hh"
#include "store/problem_store.hh"

namespace qcc {

namespace {

using clock_type = std::chrono::steady_clock;

double
millisSince(clock_type::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               clock_type::now() - t0)
        .count();
}

} // namespace

SweepEngine::SweepEngine(SweepSpec spec, SweepEngineOptions options)
    : sweepSpec(std::move(spec)), opts(std::move(options))
{
    if (opts.concurrency == 0)
        opts.concurrency = sweepSpec.concurrency;
    if (opts.jobTimeoutMs < 0.0)
        opts.jobTimeoutMs = sweepSpec.jobTimeoutMs;
    if (opts.retries < 0)
        opts.retries = sweepSpec.retries;
}

unsigned
SweepEngine::concurrency() const
{
    return opts.concurrency ? opts.concurrency : parallelThreads();
}

ResultStore
SweepEngine::run()
{
    // Expansion throws on malformed axes — before any job runs.
    const std::vector<ExperimentSpec> jobs = sweepSpec.expand();
    ResultStore store(sweepSpec.name, sweepSpec.emitTimings);
    store.reset(jobs);

    if (!opts.resumeFrom.empty()) {
        std::ifstream in(opts.resumeFrom, std::ios::binary);
        if (!in)
            throw SweepError("(resume)",
                             "cannot read " + opts.resumeFrom);
        std::ostringstream buf;
        buf << in.rdbuf();
        adoptedJobs = store.adoptCompleted(buf.str());
        completedJobs = adoptedJobs;
    }

    BoundedExecutor executor(concurrency());
    executor.run(jobs.size(),
                 [&](size_t i) { runJob(i, store); });
    return store;
}

void
SweepEngine::runJob(size_t index, ResultStore &store)
{
    // A non-Pending slot was adopted from a resume document — the
    // whole point is to never re-run it.
    if (store.jobs()[index].status != JobStatus::Pending)
        return;

    SweepJobRecord rec;
    rec.index = index;
    rec.spec = store.jobs()[index].spec;
    rec.specHash = store.jobs()[index].specHash;

    TraceSpan span("sweep.job");
    span.arg("job", index);
    span.arg("molecule", rec.spec.molecule);

    if (cancelToken.cancelled()) {
        rec.status = JobStatus::Skipped;
    } else {
        store.markRunning(index);
        if (opts.coldCompileCache)
            globalCircuitCache().clear();
        if (opts.coldProblemCache)
            globalProblemStore().clearMemory();

        // The oversubscription fix: at concurrency N, each job's
        // data-parallel sweeps get parallelThreads()/N pool lanes
        // instead of all of them. Lane capping never changes chunk
        // structure, so capped results stay bit-identical.
        const unsigned width = concurrency();
        const unsigned cap =
            (opts.capJobWidth && width > 1)
                ? std::max(1u, parallelThreads() / width)
                : 0;
        ParallelWidthCap laneCap(cap);

        const auto t0 = clock_type::now();
        const int maxAttempts = 1 + std::max(0, opts.retries);
        for (int attempt = 1; attempt <= maxAttempts; ++attempt) {
            rec.attempts = attempt;
            try {
                Experiment experiment(rec.spec);
                rec.result = experiment.run();
                rec.status = JobStatus::Done;
                rec.error.clear();
                break;
            } catch (const SpecError &e) {
                // A malformed spec cannot succeed on retry.
                rec.status = JobStatus::Failed;
                rec.error = e.what();
                break;
            } catch (const RegistryError &e) {
                rec.status = JobStatus::Failed;
                rec.error = e.what();
                break;
            } catch (const std::exception &e) {
                rec.status = JobStatus::Failed;
                rec.error = e.what();
            }
        }
        rec.wallMillis = millisSince(t0);
        if (rec.status == JobStatus::Done &&
            opts.jobTimeoutMs > 0.0 &&
            rec.wallMillis > opts.jobTimeoutMs) {
            // Soft budget: the run finished, but past its allotment
            // — keep the result for inspection, drop it from the
            // summaries. (The hard, kill-at-deadline variant lives
            // in the sweepd process-per-job service.)
            rec.status = JobStatus::TimedOut;
            rec.timeoutKind = TimeoutKind::Soft;
        }
    }

    span.arg("status", jobStatusName(rec.status));
    span.arg("attempts", rec.attempts);

    // Record + progress under one lock so callbacks see a
    // consistent, monotonically growing completed count and never
    // interleave.
    std::lock_guard<std::mutex> lock(progressMutex);
    store.record(std::move(rec));
    ++completedJobs;
    if (opts.progress) {
        SweepProgress p;
        p.completed = completedJobs;
        p.total = store.size();
        p.last = &store.jobs()[index];
        opts.progress(p);
    }
}

} // namespace qcc
