#include "sweep/result_store.hh"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace qcc {

const char *
jobStatusName(JobStatus status)
{
    switch (status) {
      case JobStatus::Pending: return "pending";
      case JobStatus::Running: return "running";
      case JobStatus::Done: return "done";
      case JobStatus::Failed: return "failed";
      case JobStatus::TimedOut: return "timed_out";
      case JobStatus::Skipped: return "skipped";
    }
    return "?";
}

const char *
timeoutKindName(TimeoutKind kind)
{
    switch (kind) {
      case TimeoutKind::None: return "";
      case TimeoutKind::Soft: return "soft";
      case TimeoutKind::Hard: return "hard";
    }
    return "";
}

ResultStore::ResultStore(std::string sweep_name, bool emit_timings)
    : sweepName(std::move(sweep_name)), emitTimings(emit_timings),
      mutex(std::make_unique<std::mutex>())
{
}

void
ResultStore::reset(const std::vector<ExperimentSpec> &jobs)
{
    std::lock_guard<std::mutex> lock(*mutex);
    records.clear();
    records.resize(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        records[i].index = i;
        records[i].spec = jobs[i];
        records[i].specHash = sweepJobHash(jobs[i]);
    }
}

size_t
ResultStore::adoptCompleted(const std::string &prior_doc)
{
    const JsonValue doc = JsonValue::parse(prior_doc);
    const JsonValue *jobs = doc.find("jobs");
    if (!jobs || !jobs->isArray())
        return 0;

    std::lock_guard<std::mutex> lock(*mutex);
    size_t adopted = 0;
    for (const JsonValue &entry : jobs->items) {
        if (!entry.isObject())
            continue;
        const JsonValue *idx = entry.find("index");
        const JsonValue *hash = entry.find("spec_hash");
        const JsonValue *status = entry.find("status");
        const JsonValue *result = entry.find("result");
        uint64_t i = 0;
        if (!idx || !idx->asUint64(i) || i >= records.size())
            continue;
        if (!hash || !hash->isString() ||
            hash->text != records[i].specHash)
            continue; // spec changed since the prior run
        if (!status || !status->isString() || status->text != "done")
            continue; // failures get a second chance on resume
        if (!result)
            continue;
        ExperimentResult rehydrated;
        if (!ExperimentResult::fromJsonDom(*result, rehydrated))
            continue;
        SweepJobRecord &rec = records[i];
        rec.status = JobStatus::Done;
        rec.timeoutKind = TimeoutKind::None;
        rec.result = std::move(rehydrated);
        rec.error.clear();
        rec.attempts = 1;
        if (const JsonValue *attempts = entry.find("attempts")) {
            uint64_t a = 0;
            if (attempts->asUint64(a))
                rec.attempts = int(a);
        }
        rec.wallMillis = 0.0;
        if (const JsonValue *wall = entry.find("wall_ms"))
            if (wall->isNumber())
                rec.wallMillis = wall->number;
        ++adopted;
    }
    return adopted;
}

void
ResultStore::record(SweepJobRecord r)
{
    metricCounter(std::string("sweep.jobs.") +
                  jobStatusName(r.status))
        .add();
    std::lock_guard<std::mutex> lock(*mutex);
    const size_t i = r.index;
    if (i < records.size())
        records[i] = std::move(r);
}

void
ResultStore::markRunning(size_t index)
{
    std::lock_guard<std::mutex> lock(*mutex);
    if (index < records.size() &&
        records[index].status == JobStatus::Pending)
        records[index].status = JobStatus::Running;
}

size_t
ResultStore::countWithStatus(JobStatus status) const
{
    std::lock_guard<std::mutex> lock(*mutex);
    size_t n = 0;
    for (const auto &r : records)
        n += r.status == status ? 1 : 0;
    return n;
}

std::string
ResultStore::json() const
{
    std::lock_guard<std::mutex> lock(*mutex);
    char buf[256];

    size_t done = 0, failed = 0, timedOut = 0, skipped = 0,
           pending = 0;
    uint64_t totalShots = 0;
    for (const auto &r : records) {
        switch (r.status) {
          case JobStatus::Done: ++done; break;
          case JobStatus::Failed: ++failed; break;
          case JobStatus::TimedOut: ++timedOut; break;
          case JobStatus::Skipped: ++skipped; break;
          default: ++pending; break;
        }
        if (r.finished())
            totalShots += r.result.shots;
    }

    std::string out = "{\n";
    out += "\"sweep\": \"" + jsonEscape(sweepName) + "\",\n";
    std::snprintf(buf, sizeof(buf),
                  "\"summary\": {\"jobs\": %zu, \"done\": %zu, "
                  "\"failed\": %zu, \"timed_out\": %zu, "
                  "\"skipped\": %zu, \"pending\": %zu, "
                  "\"total_shots\": %llu},\n",
                  records.size(), done, failed, timedOut, skipped,
                  pending, (unsigned long long)totalShots);
    out += buf;

    // ---- best energy per molecule (Done jobs, job order) --------
    // Ground-state aggregates are a VQE notion: estimate jobs carry
    // only the HF placeholder energy and evolve jobs report
    // <psi(t)|H|psi(t)>, so both would pollute "best".
    std::vector<std::string> moleculeOrder;
    std::map<std::string, const SweepJobRecord *> best;
    for (const auto &r : records) {
        if (r.status != JobStatus::Done ||
            r.effectiveSpec().kind != "vqe")
            continue;
        auto it = best.find(r.spec.molecule);
        if (it == best.end()) {
            moleculeOrder.push_back(r.spec.molecule);
            best[r.spec.molecule] = &r;
        } else if (r.result.energy() < it->second->result.energy()) {
            it->second = &r;
        }
    }
    out += "\"best_energy\": [";
    for (size_t m = 0; m < moleculeOrder.size(); ++m) {
        const SweepJobRecord *r = best[moleculeOrder[m]];
        std::snprintf(buf, sizeof(buf),
                      "%s\n  {\"molecule\": \"%s\", \"job\": %zu, "
                      "\"bond\": %.17g, \"energy\": %.17g}",
                      m ? "," : "", moleculeOrder[m].c_str(),
                      r->index, r->effectiveSpec().bond,
                      r->result.energy());
        out += buf;
    }
    out += moleculeOrder.empty() ? "],\n" : "\n],\n";

    // ---- dissociation curves (>= 2 distinct bonds) --------------
    out += "\"curves\": [";
    bool anyCurve = false;
    for (const auto &mol : moleculeOrder) {
        std::vector<const SweepJobRecord *> points;
        for (const auto &r : records)
            if (r.status == JobStatus::Done &&
                r.effectiveSpec().kind == "vqe" &&
                r.spec.molecule == mol)
                points.push_back(&r);
        std::stable_sort(points.begin(), points.end(),
                         [](const SweepJobRecord *a,
                            const SweepJobRecord *b) {
                             return a->effectiveSpec().bond <
                                    b->effectiveSpec().bond;
                         });
        bool distinct = false;
        for (size_t i = 1; i < points.size(); ++i)
            distinct |= points[i]->effectiveSpec().bond !=
                        points[0]->effectiveSpec().bond;
        if (!distinct)
            continue;
        out += anyCurve ? "," : "";
        anyCurve = true;
        out += "\n  {\"molecule\": \"" + jsonEscape(mol) +
               "\", \"points\": [";
        for (size_t i = 0; i < points.size(); ++i) {
            const SweepJobRecord *r = points[i];
            std::snprintf(buf, sizeof(buf),
                          "%s\n    {\"job\": %zu, \"bond\": %.17g, "
                          "\"energy\": %.17g, "
                          "\"hartree_fock\": %.17g",
                          i ? "," : "", r->index,
                          r->effectiveSpec().bond,
                          r->result.energy(),
                          r->result.hartreeFock);
            out += buf;
            if (r->result.haveFci) {
                std::snprintf(buf, sizeof(buf), ", \"fci\": %.17g",
                              r->result.fci);
                out += buf;
            }
            out += "}";
        }
        out += "\n  ]}";
    }
    out += anyCurve ? "\n],\n" : "],\n";

    // ---- measurement settings per Hamiltonian x grouping --------
    // The Hamiltonian (and so the settings count) depends on the
    // molecule, geometry, and basis, not just the molecule: key on
    // all of them so a bond-swept comparison reports every distinct
    // problem rather than silently keeping the first.
    out += "\"grouping_settings\": [";
    std::vector<std::string> seen;
    bool anyGrouping = false;
    for (const auto &r : records) {
        if (r.status != JobStatus::Done)
            continue;
        const ExperimentSpec &spec = r.effectiveSpec();
        char keyBuf[160];
        std::snprintf(keyBuf, sizeof(keyBuf), "%s|%.17g|%d|%s",
                      spec.molecule.c_str(), spec.bond, spec.basisNg,
                      spec.grouping.c_str());
        if (std::find(seen.begin(), seen.end(),
                      std::string(keyBuf)) != seen.end())
            continue;
        seen.push_back(keyBuf);
        std::snprintf(buf, sizeof(buf),
                      "%s\n  {\"molecule\": \"%s\", "
                      "\"bond\": %.17g, "
                      "\"grouping\": \"%s\", \"settings\": %zu, "
                      "\"terms\": %zu}",
                      anyGrouping ? "," : "",
                      spec.molecule.c_str(), spec.bond,
                      spec.grouping.c_str(),
                      r.result.measurementSettings,
                      r.result.hamiltonianTerms);
        out += buf;
        anyGrouping = true;
    }
    out += anyGrouping ? "\n],\n" : "],\n";

    // ---- per-job records, job order -----------------------------
    out += "\"jobs\": [";
    for (size_t i = 0; i < records.size(); ++i) {
        const SweepJobRecord &r = records[i];
        std::snprintf(buf, sizeof(buf),
                      "%s\n  {\"index\": %zu, \"status\": \"%s\", "
                      "\"attempts\": %d",
                      i ? "," : "", r.index,
                      jobStatusName(r.status), r.attempts);
        out += buf;
        if (!r.specHash.empty())
            out += ", \"spec_hash\": \"" + r.specHash + "\"";
        if (r.status == JobStatus::TimedOut &&
            r.timeoutKind != TimeoutKind::None)
            out += std::string(", \"timeout_kind\": \"") +
                   timeoutKindName(r.timeoutKind) + "\"";
        if (!r.error.empty())
            out += ", \"error\": \"" + jsonEscape(r.error) + "\"";
        if (emitTimings) {
            std::snprintf(buf, sizeof(buf), ", \"wall_ms\": %.6g",
                          r.wallMillis);
            out += buf;
        }
        if (r.finished()) {
            out += ",\n   \"result\": ";
            ExperimentResult::JsonOptions jo;
            jo.timings = emitTimings;
            jo.trace = false;
            std::string doc = r.result.json(jo);
            while (!doc.empty() && doc.back() == '\n')
                doc.pop_back();
            jsonIndentInto(out, doc, 3);
        } else {
            out += ",\n   \"spec\": ";
            std::string doc = r.spec.json();
            while (!doc.empty() && doc.back() == '\n')
                doc.pop_back();
            jsonIndentInto(out, doc, 3);
        }
        out += "}";
    }
    out += records.empty() ? "]\n" : "\n]\n";
    out += "}\n";
    return out;
}

std::string
ResultStore::write() const
{
    const std::string path =
        qccJsonPath("SWEEP_" + sweepName + ".json");
    if (path.empty())
        return {};
    return writeTo(path);
}

std::string
ResultStore::writeTo(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("ResultStore::writeTo: cannot write " + path);
        return {};
    }
    const std::string doc = json();
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    return path;
}

} // namespace qcc
