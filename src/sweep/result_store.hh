/**
 * @file
 * Aggregated result store for one sweep: per-job records land in
 * index-addressed slots as workers finish (thread-safe,
 * completion-order independent) and serialize as one SWEEP_<name>
 * .json document in job order — per-job status/energy/metrics plus
 * the sweep-level summaries a study reads off directly: best energy
 * per molecule, dissociation-curve tables (bond-sorted energy/HF/
 * FCI rows per molecule), and measurement-settings counts per
 * (molecule, grouping) pair for grouping-strategy comparisons.
 * With timings disabled (SweepSpec.emitTimings = false) and no
 * per-job timeout armed, the document is a pure function of the
 * spec and the seed: identical bytes at concurrency 1 and N. (A
 * soft timeout is inherently wall-clock: whether a borderline job
 * lands done or timed_out depends on machine load, so a spec that
 * arms one gives up byte-stability at the done/timed_out margin.)
 */

#ifndef QCC_SWEEP_RESULT_STORE_HH
#define QCC_SWEEP_RESULT_STORE_HH

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/experiment.hh"
#include "sweep/sweep_spec.hh"

namespace qcc {

/** Lifecycle of one sweep job. */
enum class JobStatus
{
    Pending,  ///< not yet claimed by a worker
    Running,  ///< claimed, in flight
    Done,     ///< completed; result is valid
    Failed,   ///< threw (spec/registry error or repeated failure)
    TimedOut, ///< completed past the soft per-job budget
    Skipped,  ///< never ran (sweep cancelled first)
};

/** JSON/status-table name ("done", "failed", ...). */
const char *jobStatusName(JobStatus status);

/**
 * How a TimedOut record timed out. Soft is the in-process engine's
 * semantics — the job ran to completion past its budget, so a result
 * exists; Hard is the sweepd process-per-job semantics — the worker
 * was killed at the deadline, so no result exists. None for every
 * other status.
 */
enum class TimeoutKind
{
    None,
    Soft,
    Hard,
};

/** JSON name ("soft"/"hard"; "" for None). */
const char *timeoutKindName(TimeoutKind kind);

/** One job's record. */
struct SweepJobRecord
{
    size_t index = 0;        ///< position in the expanded job list
    ExperimentSpec spec;     ///< the job as expanded (pre-run)
    /** Content hash of `spec` (sweepJobHash): the resume key. */
    std::string specHash;
    JobStatus status = JobStatus::Pending;
    TimeoutKind timeoutKind = TimeoutKind::None;
    int attempts = 0;
    std::string error;       ///< failure diagnostic (Failed)
    double wallMillis = 0.0;
    /** Valid when finished() (the run produced a result). */
    ExperimentResult result;

    /**
     * True when the run produced a valid `result`: Done, or a soft
     * timeout (the job completed, just late). A hard timeout killed
     * the worker mid-run — there is nothing to read.
     */
    bool finished() const
    {
        return status == JobStatus::Done ||
               (status == JobStatus::TimedOut &&
                timeoutKind == TimeoutKind::Soft);
    }

    /**
     * The spec to report: the result's resolved copy once the run
     * finished (bond/shots/seed defaults filled in), the expanded
     * job spec otherwise.
     */
    const ExperimentSpec &effectiveSpec() const
    {
        return finished() ? result.spec : spec;
    }
};

/** Thread-safe, deterministically ordered sweep aggregate. */
class ResultStore
{
  public:
    ResultStore(std::string sweep_name, bool emit_timings);

    /** Install the expanded job list as Pending records. */
    void reset(const std::vector<ExperimentSpec> &jobs);

    /**
     * Resume support: adopt completed jobs from a previously written
     * json() document. A prior "jobs" entry is adopted when its
     * index is in range, its recorded spec_hash matches the current
     * record's (same expanded spec), and its status is "done" — the
     * record becomes Done with the rehydrated result
     * (ExperimentResult::fromJsonDom), original attempts, and
     * original wall_ms, so re-serialization reproduces the adopted
     * record byte for byte. Failed/timed-out/skipped entries are NOT
     * adopted (a resume is the second chance). Returns the number of
     * jobs adopted; throws JsonError when `prior_doc` is not JSON,
     * and silently adopts nothing from a document without a usable
     * jobs array.
     */
    size_t adoptCompleted(const std::string &prior_doc);

    /** Record one finished/failed/skipped job (thread-safe). */
    void record(SweepJobRecord record);

    /** Mark a job Running (thread-safe; progress display). */
    void markRunning(size_t index);

    const std::string &name() const { return sweepName; }
    size_t size() const { return records.size(); }

    /** Job records in index order (engine finished; no locking). */
    const std::vector<SweepJobRecord> &jobs() const
    {
        return records;
    }

    size_t countWithStatus(JobStatus status) const;

    /**
     * The aggregate document: summary counters, best energy per
     * molecule, dissociation curves, grouping settings-counts, and
     * the per-job records in job order.
     */
    std::string json() const;

    /**
     * Write json() as SWEEP_<name>.json under the QCC_JSON
     * convention; returns the path written ("" when disabled).
     */
    std::string write() const;

    /** Write json() to an explicit path ("" on IO failure). */
    std::string writeTo(const std::string &path) const;

  private:
    std::string sweepName;
    bool emitTimings;
    // Behind a pointer so the store itself stays movable (the
    // engine returns it by value once the workers have joined).
    mutable std::unique_ptr<std::mutex> mutex;
    std::vector<SweepJobRecord> records;
};

} // namespace qcc

#endif // QCC_SWEEP_RESULT_STORE_HH
