/**
 * @file
 * Declarative batch description: a SweepSpec is to a whole study
 * what an ExperimentSpec is to one run. The paper's evaluation is
 * itself a sweep — Table I/II molecules x compression thresholds x
 * architectures, the Figure 10/11 dissociation curves — and a
 * SweepSpec captures one such study as a JSON document:
 *
 *   {
 *     "name": "lih_curve",
 *     "base": { "molecule": "LiH", "compression": 0.5 },
 *     "axes": {
 *       "bond": {"from": 1.0, "to": 2.6, "step": 0.2},
 *       "seed": [1, 2, 3]
 *     },
 *     "jobs": [ { "molecule": "H2" } ],
 *     "concurrency": 4
 *   }
 *
 * `base` is a partial ExperimentSpec giving every job's defaults;
 * `axes` maps spec field names to value lists (or numeric
 * from/to/step ranges) whose cartesian product — first axis
 * slowest, document order preserved — becomes the job list; `jobs`
 * appends explicit one-off specs after the product. Every axis
 * value flows through applySpecField (api/spec.hh), so axis typing
 * is exactly spec typing. Expansion is pure and deterministic: the
 * same document always yields the same ordered job list, which is
 * what lets the ResultStore promise stable job indices regardless
 * of execution order.
 */

#ifndef QCC_SWEEP_SWEEP_SPEC_HH
#define QCC_SWEEP_SWEEP_SPEC_HH

#include <stdexcept>
#include <string>
#include <vector>

#include "api/spec.hh"
#include "common/json.hh"

namespace qcc {

/** Malformed-sweep failure naming the offending element. */
class SweepError : public std::runtime_error
{
  public:
    SweepError(std::string element, const std::string &detail)
        : std::runtime_error("SweepSpec." + element + ": " + detail),
          elementName(std::move(element))
    {
    }

    const std::string &element() const { return elementName; }

  private:
    std::string elementName;
};

/** One sweep axis: a spec field and its value list. */
struct SweepAxis
{
    std::string field;            ///< ExperimentSpec JSON field name
    std::vector<JsonValue> values; ///< expanded value list, in order
};

/** One batch of experiments, declaratively. */
struct SweepSpec
{
    /** Study name; the aggregate lands in SWEEP_<name>.json. */
    std::string name = "sweep";

    /** Defaults applied to every job before axis values. */
    ExperimentSpec base;

    /** Cartesian-product axes, document order (first = slowest). */
    std::vector<SweepAxis> axes;

    /** Explicit one-off jobs appended after the product. */
    std::vector<ExperimentSpec> explicitJobs;

    /** Worker width; 0 uses the QCC_THREADS-backed default. */
    unsigned concurrency = 0;

    /** Soft per-job wall-clock budget in ms; 0 disables. */
    double jobTimeoutMs = 0.0;

    /** Extra attempts after a non-spec job failure. */
    int retries = 0;

    /**
     * Emit wall-clock timings (and the compile-cache outcome) in the
     * aggregate document. Off — and with no jobTimeoutMs armed,
     * since the done/timed_out margin is itself wall-clock — the
     * SWEEP_*.json bytes depend only on the spec and QCC_SEED: the
     * reproducibility contract the determinism suite pins at
     * concurrency 1 vs N.
     */
    bool emitTimings = true;

    /**
     * The ordered job list: cartesian product of the axes over
     * `base` (first axis slowest), then the explicit jobs. Throws
     * SweepError/SpecError on unknown axis fields or ill-typed
     * values; registry keys are validated later, per job, by the
     * engine (one bad job must not sink the sweep).
     */
    std::vector<ExperimentSpec> expand() const;

    /** Total job count without materializing the list. */
    size_t jobCount() const;

    /** Stable JSON document; fromJson(json()) reproduces the spec. */
    std::string json() const;

    /** Parse a sweep document; throws SweepError/SpecError. */
    static SweepSpec fromJson(const std::string &doc);

    /** Load and parse a spec file; throws SweepError on IO failure. */
    static SweepSpec fromFile(const std::string &path);
};

/**
 * Content hash of one expanded job spec (32 hex chars): a double
 * FNV-1a over the spec's canonical JSON document. This is the resume
 * key — when a sweep is re-submitted, a recorded job is adopted only
 * if the hash stored next to it still matches the re-expanded spec
 * at the same index, so editing an axis invalidates exactly the jobs
 * it changes.
 */
std::string sweepJobHash(const ExperimentSpec &spec);

} // namespace qcc

#endif // QCC_SWEEP_SWEEP_SPEC_HH
