#include "sweep/sweep_spec.hh"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/binio.hh"

namespace qcc {

namespace {

/** %.17g literal as a JSON number value. */
JsonValue
numberValue(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    JsonValue out;
    out.kind = JsonValue::Kind::Number;
    out.number = v;
    out.text = buf;
    return out;
}

/**
 * Expand one axis entry: an array is taken verbatim; an object is a
 * numeric {"from", "to", "step"} range, endpoint-inclusive when the
 * span is a whole number of steps (so 1.0..2.6 step 0.2 lands on
 * 2.6) and never emitting a point past `to` otherwise.
 */
std::vector<JsonValue>
axisValues(const std::string &field, const JsonValue &v)
{
    if (v.isArray()) {
        if (v.items.empty())
            throw SweepError("axes." + field, "axis list is empty");
        return v.items;
    }
    if (!v.isObject())
        throw SweepError("axes." + field,
                         "expected a value list or a "
                         "{from, to, step} range");
    const JsonValue *from = v.find("from");
    const JsonValue *to = v.find("to");
    const JsonValue *step = v.find("step");
    if (!from || !to || !step || !from->isNumber() ||
        !to->isNumber() || !step->isNumber())
        throw SweepError("axes." + field,
                         "range needs numeric from, to, and step");
    if (v.members.size() != 3)
        throw SweepError("axes." + field,
                         "range takes exactly from, to, and step");
    const double lo = from->number, hi = to->number,
                 d = step->number;
    if (d <= 0.0 || hi < lo)
        throw SweepError("axes." + field,
                         "range needs step > 0 and to >= from");
    // A double-to-size_t cast of a wild quotient is UB (and a huge
    // one is an OOM, not a sweep): gate the point count before the
    // cast, like api/spec gates its int casts.
    constexpr double kMaxAxisPoints = 1e6;
    const double quotient = (hi - lo) / d;
    if (!std::isfinite(quotient) || quotient >= kMaxAxisPoints)
        throw SweepError("axes." + field,
                         "range expands to too many points");
    std::vector<JsonValue> out;
    // Index-based stepping avoids accumulating rounding error; the
    // step-relative tolerance only absorbs FP noise at the
    // endpoint, so a range whose span is not a multiple of the
    // step never emits a point past `to`.
    const size_t n = size_t(quotient + 1e-6) + 1;
    for (size_t i = 0; i < n; ++i)
        out.push_back(numberValue(lo + double(i) * d));
    return out;
}

} // namespace

std::vector<ExperimentSpec>
SweepSpec::expand() const
{
    // Axis fields/values are validated here too: applySpecField
    // throws SpecError (naming the field) from the first product
    // job, so programmatically built specs fail exactly like parsed
    // ones — fromJson() just surfaces the same errors earlier.
    std::vector<ExperimentSpec> jobs;
    if (!axes.empty()) {
        size_t product = 1;
        for (const auto &axis : axes)
            product *= axis.values.size();
        jobs.reserve(product + explicitJobs.size());

        // Odometer over the axes: first axis slowest, like nested
        // loops written in document order.
        std::vector<size_t> digit(axes.size(), 0);
        for (size_t j = 0; j < product; ++j) {
            ExperimentSpec spec = base;
            for (size_t a = 0; a < axes.size(); ++a)
                applySpecField(spec, axes[a].field,
                               axes[a].values[digit[a]]);
            jobs.push_back(std::move(spec));
            for (size_t a = axes.size(); a-- > 0;) {
                if (++digit[a] < axes[a].values.size())
                    break;
                digit[a] = 0;
            }
        }
    } else if (explicitJobs.empty()) {
        jobs.push_back(base); // a bare base is a one-job sweep
    }

    for (const auto &job : explicitJobs)
        jobs.push_back(job);
    return jobs;
}

size_t
SweepSpec::jobCount() const
{
    if (axes.empty())
        return explicitJobs.empty() ? 1 : explicitJobs.size();
    size_t product = 1;
    for (const auto &axis : axes)
        product *= axis.values.size();
    return product + explicitJobs.size();
}

std::string
SweepSpec::json() const
{
    std::string out = "{\n";
    out += "  \"name\": \"" + jsonEscape(name) + "\",\n";
    out += "  \"base\": ";
    jsonIndentInto(out, base.json(), 2);
    out += ",\n  \"axes\": {";
    for (size_t a = 0; a < axes.size(); ++a) {
        out += (a ? "," : "");
        out += "\n    \"" + jsonEscape(axes[a].field) + "\": [";
        for (size_t i = 0; i < axes[a].values.size(); ++i)
            out += (i ? ", " : "") + axes[a].values[i].dump();
        out += "]";
    }
    out += axes.empty() ? "},\n" : "\n  },\n";
    out += "  \"jobs\": [";
    for (size_t j = 0; j < explicitJobs.size(); ++j) {
        out += (j ? "," : "");
        out += "\n    ";
        jsonIndentInto(out, explicitJobs[j].json(), 4);
    }
    out += explicitJobs.empty() ? "],\n" : "\n  ],\n";
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "  \"concurrency\": %u,\n"
                  "  \"timeout_ms\": %.17g,\n"
                  "  \"retries\": %d,\n"
                  "  \"emit_timings\": %s\n}\n",
                  concurrency, jobTimeoutMs, retries,
                  emitTimings ? "true" : "false");
    out += buf;
    return out;
}

SweepSpec
SweepSpec::fromJson(const std::string &doc)
{
    JsonValue root;
    try {
        root = JsonValue::parse(doc);
    } catch (const JsonError &e) {
        throw SweepError("(document)", e.what());
    }
    if (!root.isObject())
        throw SweepError("(document)",
                         "sweep spec must be a JSON object");

    SweepSpec spec;
    // Jobs are expanded after the whole document is parsed, so an
    // explicit job inherits the base defaults no matter where the
    // "base" member appears relative to "jobs".
    const JsonValue *rawJobs = nullptr;
    for (const auto &[key, value] : root.members) {
        if (key == "name") {
            if (!value.isString())
                throw SweepError("name", "expected a string");
            spec.name = value.text;
        } else if (key == "base") {
            if (!value.isObject())
                throw SweepError("base",
                                 "expected a spec object");
            for (const auto &[field, fv] : value.members)
                applySpecField(spec.base, field, fv);
        } else if (key == "axes") {
            if (!value.isObject())
                throw SweepError("axes",
                                 "expected an object of field -> "
                                 "values");
            for (const auto &[field, av] : value.members)
                spec.axes.push_back(
                    {field, axisValues(field, av)});
        } else if (key == "jobs") {
            if (!value.isArray())
                throw SweepError("jobs",
                                 "expected a list of spec objects");
            rawJobs = &value;
        } else if (key == "concurrency") {
            uint64_t n = 0;
            if (!value.asUint64(n))
                throw SweepError("concurrency",
                                 "expected an unsigned integer");
            spec.concurrency = unsigned(n);
        } else if (key == "timeout_ms") {
            if (!value.isNumber() || value.number < 0.0)
                throw SweepError("timeout_ms",
                                 "expected a non-negative number");
            spec.jobTimeoutMs = value.number;
        } else if (key == "retries") {
            uint64_t n = 0;
            if (!value.asUint64(n) || n > 100)
                throw SweepError("retries",
                                 "expected an integer in [0, 100]");
            spec.retries = int(n);
        } else if (key == "emit_timings") {
            if (!value.isBool())
                throw SweepError("emit_timings",
                                 "expected true or false");
            spec.emitTimings = value.boolean;
        } else {
            throw SweepError(key, "unknown sweep field");
        }
    }

    if (rawJobs) {
        for (size_t j = 0; j < rawJobs->items.size(); ++j) {
            const JsonValue &jv = rawJobs->items[j];
            if (!jv.isObject())
                throw SweepError("jobs[" + std::to_string(j) + "]",
                                 "expected a spec object");
            ExperimentSpec job = spec.base;
            for (const auto &[field, fv] : jv.members)
                applySpecField(job, field, fv);
            spec.explicitJobs.push_back(std::move(job));
        }
    }

    // Surface unknown axis fields / ill-typed values at parse time
    // rather than on the first run() — but keep jobs unvalidated
    // against the registries (that is per-job work for the engine).
    for (const auto &axis : spec.axes) {
        ExperimentSpec scratch = spec.base;
        for (const auto &v : axis.values)
            applySpecField(scratch, axis.field, v);
    }
    return spec;
}

SweepSpec
SweepSpec::fromFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw SweepError("(file)", "cannot read " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return fromJson(buf.str());
}

std::string
sweepJobHash(const ExperimentSpec &spec)
{
    const std::string doc = spec.json();
    // Two independently seeded FNV-1a passes: 128 bits of key, so a
    // hash match really does mean "same spec" for resume purposes.
    const uint64_t lo = fnv1a(doc.data(), doc.size());
    const uint64_t hi =
        fnv1a(doc.data(), doc.size(), 0x84222325cbf29ce4ull);
    char buf[33];
    std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                  (unsigned long long)hi, (unsigned long long)lo);
    return buf;
}

} // namespace qcc
