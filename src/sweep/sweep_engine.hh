/**
 * @file
 * SweepEngine — the concurrent batch-execution service over
 * qcc::Experiment. One engine takes a SweepSpec, expands it to an
 * ordered job list, and drives the jobs over a bounded-concurrency
 * executor (common/parallel): workers claim jobs from a shared
 * counter, run each through the ordinary Experiment facade, and
 * land records in the ResultStore's index-addressed slots, so
 * completion order never leaks into the aggregate. Jobs share the
 * process-wide CircuitCache, MolecularProblemStore, and gradient
 * BufferPool (all mutex-guarded), which is the engine's throughput
 * lever: repeated compilations of the same program across jobs —
 * same molecule, different shots/seeds/bonds — rebind angles on the
 * memoized structure instead of re-routing, and workers racing on
 * the same chemistry share a single integrals/HF build instead of
 * duplicating it (bench_sweep measures the cold-vs-shared gap).
 * When a persistent store is configured (QCC_STORE_DIR, see
 * src/store), all workers additionally share the warm on-disk tier,
 * so a re-run of a sweep skips compilation and chemistry entirely.
 *
 * Failure policy: spec/registry errors fail a job immediately (a
 * retry cannot fix a typo'd key), other exceptions retry up to the
 * configured budget, and every failure is recorded — one bad job
 * never sinks the sweep. The per-job timeout is soft: C++ threads
 * cannot be killed safely, so an over-budget job runs to completion
 * and is then recorded as TimedOut (excluded from the summaries).
 * Cancellation is cooperative: requestCancel() (from a progress
 * callback or another thread) lets in-flight jobs finish and marks
 * every unclaimed job Skipped.
 */

#ifndef QCC_SWEEP_SWEEP_ENGINE_HH
#define QCC_SWEEP_SWEEP_ENGINE_HH

#include <functional>

#include "common/parallel.hh"
#include "sweep/result_store.hh"
#include "sweep/sweep_spec.hh"

namespace qcc {

/** Snapshot handed to the progress callback after each job. */
struct SweepProgress
{
    size_t completed = 0; ///< jobs no longer pending/running
    size_t total = 0;
    /** The record that just landed (valid during the callback). */
    const SweepJobRecord *last = nullptr;
};

/**
 * Called after every job record lands, serialized under one lock
 * (callbacks never interleave). The callback may call
 * SweepEngine::requestCancel() to stop the sweep.
 */
using SweepProgressFn = std::function<void(const SweepProgress &)>;

/** Engine execution knobs (overrides of the spec's own hints). */
struct SweepEngineOptions
{
    /** Worker width; 0 defers to the spec, then QCC_THREADS. */
    unsigned concurrency = 0;

    /** Soft per-job budget in ms; < 0 defers to the spec. */
    double jobTimeoutMs = -1.0;

    /** Extra attempts after non-spec failures; < 0 defers. */
    int retries = -1;

    /**
     * Clear the global CircuitCache before every job: the
     * cold-cache baseline the sweep bench compares against. Only
     * meaningful at concurrency 1 (a concurrent clear just thrashes
     * the other workers).
     */
    bool coldCompileCache = false;

    /**
     * Clear the global MolecularProblemStore memo before every job
     * (same baseline role and concurrency-1 caveat as
     * coldCompileCache). Neither flag touches the persistent disk
     * tier — benches point QCC_STORE_DIR elsewhere (or disable it)
     * to get a truly cold run.
     */
    bool coldProblemCache = false;

    /**
     * Cap each job's data-parallel width to parallelThreads() /
     * concurrency lanes (at least 1) while it runs, so N concurrent
     * jobs split the machine instead of each sizing its sweeps to
     * all of it (nested-parallelism oversubscription). Implemented
     * as a ParallelWidthCap, so results are bit-identical either
     * way; QCC_JOB_WIDTH overrides the derived cap per process.
     */
    bool capJobWidth = true;

    /**
     * Path of a previously written SWEEP_*.json to resume from:
     * completed jobs whose recorded spec_hash still matches are
     * adopted (never re-run), everything else runs normally. ""
     * disables; a missing/unreadable file throws SweepError.
     */
    std::string resumeFrom;

    SweepProgressFn progress;
};

/** A validated, runnable sweep. */
class SweepEngine
{
  public:
    explicit SweepEngine(SweepSpec spec,
                         SweepEngineOptions options = {});

    const SweepSpec &spec() const { return sweepSpec; }

    /** Resolved worker width for this engine. */
    unsigned concurrency() const;

    /**
     * Run every job; blocks until the sweep finishes (or every
     * remaining job is skipped after a cancel). The returned store
     * holds one record per job in job order.
     */
    ResultStore run();

    /** Cooperative cancel: unclaimed jobs become Skipped. */
    void requestCancel() { cancelToken.requestCancel(); }

    bool cancelled() const { return cancelToken.cancelled(); }

    /** Jobs adopted from resumeFrom by the last run() (never re-run). */
    size_t adopted() const { return adoptedJobs; }

  private:
    void runJob(size_t index, ResultStore &store);

    SweepSpec sweepSpec;
    SweepEngineOptions opts;
    CancellationToken cancelToken;
    std::mutex progressMutex;
    size_t completedJobs = 0;
    size_t adoptedJobs = 0;
};

} // namespace qcc

#endif // QCC_SWEEP_SWEEP_ENGINE_HH
