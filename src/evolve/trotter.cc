#include "evolve/trotter.hh"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "sim/kernels.hh"

namespace qcc {

TrotterBuild
buildTrotterAnsatz(const PauliSum &h, uint64_t hf_mask, int steps,
                   int order, const GroupingFn &grouping)
{
    if (steps < 1)
        throw std::invalid_argument(
            "buildTrotterAnsatz: steps must be >= 1");
    if (order != 1 && order != 2)
        throw std::invalid_argument(
            "buildTrotterAnsatz: product-formula order must be 1 "
            "or 2");

    TrotterBuild out;
    out.steps = steps;
    out.order = order;
    out.ansatz.nQubits = h.numQubits();
    out.ansatz.nParams = 1;
    out.ansatz.hfMask = hf_mask;
    // One synthetic "excitation" so the one-per-parameter invariant
    // of the Ansatz IR holds for dt.
    out.ansatz.excitations.push_back(
        {Excitation::Kind::Single, {0, 0, 0, 0}});

    // Family-ordered term sequence: rotations from one QWC family
    // are adjacent, so their basis sandwiches cancel in peephole.
    const auto &terms = h.terms();
    const auto groups = grouping ? grouping(h) : groupQubitWise(h);
    std::vector<size_t> ordered;
    ordered.reserve(terms.size());
    for (const auto &g : groups)
        for (size_t idx : g.termIndices)
            ordered.push_back(idx);

    // One step as (coeff, string) rotations; exp(i theta coeff P)
    // with theta = dt, so coeff = -w_j gives exp(-i w_j dt P_j).
    std::vector<PauliRotation> step;
    for (size_t idx : ordered) {
        const PauliTerm &t = terms[idx];
        if (t.string.isIdentity()) {
            ++out.identityTerms; // global phase only
            continue;
        }
        const double w = t.coeff.real();
        step.push_back(
            {0, order == 2 ? -w / 2.0 : -w, t.string});
    }
    if (order == 2) {
        // Strang: forward half-steps then the same list reversed.
        const size_t half = step.size();
        for (size_t j = half; j-- > 0;)
            step.push_back(step[j]);
    }
    out.termsPerStep = step.size();

    out.ansatz.rotations.reserve(step.size() * size_t(steps));
    for (int r = 0; r < steps; ++r)
        for (const auto &rot : step)
            out.ansatz.rotations.push_back(rot);
    return out;
}

Statevector
exactEvolvedState(const PauliSum &h, unsigned n_qubits,
                  uint64_t basis, double time)
{
    if (n_qubits > kMaxExactEvolveQubits)
        throw std::invalid_argument(
            "exactEvolvedState: width exceeds the exact-reference "
            "cap");
    if (h.numQubits() != n_qubits)
        throw std::invalid_argument(
            "exactEvolvedState: Hamiltonian width mismatch");

    // Shift out the identity coefficient: exp(-iHt) =
    // e^{-i c0 t} exp(-i (H - c0) t). The traceless part has a much
    // smaller L1 norm, so the series needs fewer slices; the scalar
    // phase is restored at the end to keep the state exact.
    struct MaskTerm
    {
        uint64_t x, z;
        cplx w;
    };
    std::vector<MaskTerm> terms;
    cplx c0 = 0.0;
    double l1 = 0.0;
    for (const auto &t : h.terms()) {
        if (t.string.isIdentity()) {
            c0 += t.coeff;
            continue;
        }
        terms.push_back({t.string.xMask(), t.string.zMask(), t.coeff});
        l1 += std::abs(t.coeff);
    }

    const size_t dim = size_t{1} << n_qubits;
    Statevector psi(n_qubits, basis);
    std::vector<cplx> cur = psi.amplitudes();
    std::vector<cplx> result(dim), term(dim), tmp(dim);

    // Slice so each factor has ||(H - c0) dt||_1 <= 1: the Taylor
    // series then converges to machine precision in ~20 orders.
    const int slices =
        std::max(1, int(std::ceil(std::abs(time) * l1)));
    const double dt = time / slices;
    const cplx midt(0.0, -dt);

    for (int s = 0; s < slices; ++s) {
        result = cur;
        term = cur;
        for (int k = 1; k <= 200; ++k) {
            std::fill(tmp.begin(), tmp.end(), cplx(0.0, 0.0));
            for (const MaskTerm &mt : terms)
                kern::accumulatePauli(term.data(), dim, mt.x, mt.z,
                                      mt.w, tmp.data());
            const cplx f = midt / double(k);
            double termNorm2 = 0.0;
            for (size_t b = 0; b < dim; ++b) {
                term[b] = f * tmp[b];
                result[b] += term[b];
                termNorm2 += std::norm(term[b]);
            }
            // The evolution is unitary and cur starts normalized,
            // so ||result|| stays ~1: an absolute cut suffices.
            if (termNorm2 <= 1e-32)
                break;
        }
        cur = result;
    }

    // Restore the identity phase e^{-i c0 t} (c0 is real for a
    // Hermitian H; any stray imaginary part is applied faithfully).
    const cplx phase =
        std::exp(cplx(0.0, -1.0) * c0 * cplx(time, 0.0));
    for (cplx &v : cur)
        v *= phase;

    psi.amplitudes() = std::move(cur);
    psi.normalize(); // scrub 1e-16-level Taylor truncation drift
    return psi;
}

double
stateFidelity(const Statevector &a, const Statevector &b)
{
    return std::norm(a.inner(b));
}

} // namespace qcc
