/**
 * @file
 * Trotterized Hamiltonian time evolution — the second workload class
 * next to ground-state VQE. A product-formula approximation of
 * exp(-iHt) for H = sum_j w_j P_j is just an ordered sequence of
 * Pauli rotations, which is exactly the Ansatz IR the whole stack
 * already compiles, caches, routes, and simulates: one Trotter
 * program is an Ansatz with a single parameter theta_0 = dt = t/r
 * and per-rotation coefficients -w_j (our convention applies
 * exp(i theta coeff P), so coeff = -w_j yields exp(-i w_j dt P)).
 * Changing t rebinds angles on the memoized circuit structure;
 * changing r or the order changes the structure (and the cache key).
 *
 * Term order within a step follows the spec's measurement grouping:
 * rotations from one qubit-wise-commuting family share measurement
 * bases, so adjacent terms hand the peephole pass cancellable basis
 * sandwiches — the same co-optimization the paper applies to VQE
 * ansatz circuits, reused verbatim on dynamics.
 *
 * The exact reference exp(-iHt)|basis> for fidelity checks is a
 * scaled Taylor expm-multiply over the existing accumulatePauli
 * matvec (no dense matrix is ever formed), capped at
 * kMaxExactEvolveQubits.
 */

#ifndef QCC_EVOLVE_TROTTER_HH
#define QCC_EVOLVE_TROTTER_HH

#include <cstdint>

#include "ansatz/uccsd.hh"
#include "pauli/grouping.hh"
#include "pauli/pauli_sum.hh"
#include "sim/statevector.hh"

namespace qcc {

/** Largest width the exact Taylor reference will attempt (LiH=12). */
constexpr unsigned kMaxExactEvolveQubits = 12;

/** A Trotter program plus its construction bookkeeping. */
struct TrotterBuild
{
    /** The program: nParams == 1, theta_0 = dt = t / steps. */
    Ansatz ansatz;

    size_t termsPerStep = 0;  ///< non-identity rotations per step
    size_t identityTerms = 0; ///< dropped (global phase only)
    int steps = 1;
    int order = 1;
};

/**
 * Build the order-1 (Lie-Trotter) or order-2 (Strang) product
 * formula for exp(-iHt) as a one-parameter Ansatz: `steps`
 * repetitions of the per-step term sequence, rotation coefficients
 * -w_j (order 1) or -w_j/2 forward then reversed (order 2), with
 * theta_0 = t/steps to be bound at evaluation time. `hf_mask` seeds
 * the initial state exactly as in the VQE programs. Identity terms
 * contribute only a global phase and are dropped (counted in the
 * result). `grouping` fixes the within-step term order (family by
 * family); null means greedy first-fit. Throws std::invalid_argument
 * on steps < 1 or an order other than 1/2.
 */
TrotterBuild buildTrotterAnsatz(const PauliSum &h, uint64_t hf_mask,
                                int steps, int order,
                                const GroupingFn &grouping = nullptr);

/**
 * Exact exp(-iHt)|basis> by scaled-and-squared Taylor expm-multiply:
 * t is sliced so each slice has ||H dt|| <= 1 in the L1 coefficient
 * norm, and each slice sums the Taylor series with one
 * accumulatePauli matvec per order until the term norm vanishes at
 * double precision. Deterministic, simulation-grade accurate
 * (~1e-14), O(2^n) memory. Throws std::invalid_argument above
 * kMaxExactEvolveQubits.
 */
Statevector exactEvolvedState(const PauliSum &h, unsigned n_qubits,
                              uint64_t basis, double time);

/** |<a|b>|^2 (states assumed normalized). */
double stateFidelity(const Statevector &a, const Statevector &b);

/** Serialized summary of one time-evolution run (kind "evolve"). */
struct TimeEvolutionResult
{
    bool present = false;

    double time = 0.0; ///< total evolution time t
    int steps = 0;     ///< Trotter step count r
    int order = 1;     ///< product-formula order (1 or 2)

    size_t termsPerStep = 0;  ///< rotations per step
    size_t identityTerms = 0; ///< identity terms dropped

    double initialEnergy = 0.0; ///< <HF| H |HF>
    double finalEnergy = 0.0;   ///< <psi(t)| H |psi(t)>

    /** |<exact|trotter>|^2 vs the Taylor reference (small n). */
    double fidelity = 0.0;
    bool haveFidelity = false;

    /** Chain-plan cost of ONE Trotter step (no HF prep). */
    size_t stepGates = 0;
    size_t stepCnots = 0;
    size_t stepDepth = 0;
};

} // namespace qcc

#endif // QCC_EVOLVE_TROTTER_HH
