#include "obs/trace.hh"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"

namespace qcc {

namespace {

using clock_type = std::chrono::steady_clock;

/** Per-thread buffer cap; beyond it events are counted as dropped. */
constexpr size_t kMaxEventsPerThread = size_t(1) << 16;

struct TraceEvent
{
    std::string name;
    char phase = 'B';
    uint64_t tsNs = 0;    ///< native timestamp (sort key)
    std::string tsText;   ///< foreign raw literal; "" = format tsNs
    long long pid = 0;
    long long tid = 0;
    std::string args;     ///< full "{...}" object text; "" = none
};

/**
 * One buffer per thread. Only the owning thread appends; the mutex
 * exists for the rare flush/clear from another thread, so the
 * append-path lock is effectively uncontended.
 */
struct ThreadBuf
{
    std::mutex mtx;
    std::vector<TraceEvent> events;
    uint64_t dropped = 0;
    long long tid = 0;
};

struct TraceRegistry
{
    std::mutex mtx;
    std::vector<std::unique_ptr<ThreadBuf>> bufs;
    long long nextTid = 0;
};

TraceRegistry &
traceRegistry()
{
    // Deliberately immortal: pool worker threads may still emit
    // during static destruction, and destruction order against the
    // thread-pool singleton is unspecified.
    static TraceRegistry *r = new TraceRegistry();
    return *r;
}

long long
tracePid()
{
    static const long long pid = (long long)::getpid();
    return pid;
}

ThreadBuf &
localBuf()
{
    thread_local ThreadBuf *buf = [] {
        TraceRegistry &r = traceRegistry();
        std::lock_guard<std::mutex> lock(r.mtx);
        r.bufs.push_back(std::make_unique<ThreadBuf>());
        r.bufs.back()->tid = r.nextTid++;
        return r.bufs.back().get();
    }();
    return *buf;
}

void
appendEvent(TraceEvent &&e)
{
    ThreadBuf &b = localBuf();
    std::lock_guard<std::mutex> lock(b.mtx);
    if (b.events.size() >= kMaxEventsPerThread) {
        ++b.dropped;
        return;
    }
    b.events.push_back(std::move(e));
}

uint64_t
toNs(clock_type::time_point tp)
{
    return uint64_t(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            tp.time_since_epoch())
            .count());
}

std::atomic<bool> &
traceFlag()
{
    static std::atomic<bool> flag{[] {
        const char *env = std::getenv("QCC_TRACE");
        return env && *env && std::strcmp(env, "0") != 0;
    }()};
    return flag;
}

void
eventInto(std::string &out, const TraceEvent &e)
{
    char buf[96];
    out += "{\"name\": \"" + jsonEscape(e.name) + "\", \"ph\": \"";
    out += e.phase;
    out += "\", \"ts\": ";
    if (!e.tsText.empty()) {
        out += e.tsText;
    } else {
        std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                      (unsigned long long)(e.tsNs / 1000),
                      (unsigned long long)(e.tsNs % 1000));
        out += buf;
    }
    std::snprintf(buf, sizeof(buf), ", \"pid\": %lld, \"tid\": %lld",
                  e.pid, e.tid);
    out += buf;
    if (!e.args.empty()) {
        out += ", \"args\": ";
        out += e.args;
    }
    out += "}";
}

} // namespace

bool
traceEnabled()
{
    return traceFlag().load(std::memory_order_relaxed);
}

void
setTraceEnabled(bool on)
{
    traceFlag().store(on, std::memory_order_relaxed);
}

TraceSpan::TraceSpan(const char *span_name)
    : t0(clock_type::now()), live(traceEnabled())
{
    if (!live)
        return;
    name = span_name;
    TraceEvent e;
    e.name = name;
    e.phase = 'B';
    e.tsNs = toNs(t0);
    e.pid = tracePid();
    e.tid = localBuf().tid;
    appendEvent(std::move(e));
}

TraceSpan::TraceSpan(const char *prefix,
                     const std::string &span_name)
    : t0(clock_type::now()), live(traceEnabled())
{
    if (!live)
        return;
    name = prefix;
    name += span_name;
    TraceEvent e;
    e.name = name;
    e.phase = 'B';
    e.tsNs = toNs(t0);
    e.pid = tracePid();
    e.tid = localBuf().tid;
    appendEvent(std::move(e));
}

TraceSpan::~TraceSpan()
{
    if (!live)
        return;
    TraceEvent e;
    e.name = std::move(name);
    e.phase = 'E';
    e.tsNs = toNs(clock_type::now());
    e.pid = tracePid();
    e.tid = localBuf().tid;
    if (!argsJson.empty())
        e.args = "{" + argsJson + "}";
    appendEvent(std::move(e));
}

void
TraceSpan::appendKey(const char *key)
{
    argsJson += argsJson.empty() ? "\"" : ", \"";
    argsJson += key;
    argsJson += "\": ";
}

void
TraceSpan::arg(const char *key, const char *v)
{
    if (!live)
        return;
    appendKey(key);
    argsJson += "\"" + jsonEscape(v) + "\"";
}

void
TraceSpan::arg(const char *key, const std::string &v)
{
    if (!live)
        return;
    appendKey(key);
    argsJson += "\"" + jsonEscape(v) + "\"";
}

void
TraceSpan::arg(const char *key, bool v)
{
    if (!live)
        return;
    appendKey(key);
    argsJson += v ? "true" : "false";
}

void
TraceSpan::arg(const char *key, double v)
{
    if (!live)
        return;
    appendKey(key);
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    argsJson += buf;
}

void
TraceSpan::argSigned(const char *key, long long v)
{
    appendKey(key);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", v);
    argsJson += buf;
}

void
TraceSpan::argUnsigned(const char *key, unsigned long long v)
{
    appendKey(key);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu", v);
    argsJson += buf;
}

double
TraceSpan::elapsedMillis() const
{
    return std::chrono::duration<double, std::milli>(
               clock_type::now() - t0)
        .count();
}

size_t
traceEventCount()
{
    TraceRegistry &r = traceRegistry();
    std::lock_guard<std::mutex> lock(r.mtx);
    size_t n = 0;
    for (const auto &b : r.bufs) {
        std::lock_guard<std::mutex> bl(b->mtx);
        n += b->events.size();
    }
    return n;
}

uint64_t
traceDroppedCount()
{
    TraceRegistry &r = traceRegistry();
    std::lock_guard<std::mutex> lock(r.mtx);
    uint64_t n = 0;
    for (const auto &b : r.bufs) {
        std::lock_guard<std::mutex> bl(b->mtx);
        n += b->dropped;
    }
    return n;
}

void
clearTrace()
{
    TraceRegistry &r = traceRegistry();
    std::lock_guard<std::mutex> lock(r.mtx);
    for (const auto &b : r.bufs) {
        std::lock_guard<std::mutex> bl(b->mtx);
        b->events.clear();
        b->dropped = 0;
    }
}

std::string
traceEventsArrayJson()
{
    std::vector<TraceEvent> all;
    {
        TraceRegistry &r = traceRegistry();
        std::lock_guard<std::mutex> lock(r.mtx);
        for (const auto &b : r.bufs) {
            std::lock_guard<std::mutex> bl(b->mtx);
            all.insert(all.end(), b->events.begin(),
                       b->events.end());
        }
    }
    // Stable sort: each buffer is chronological, so equal-timestamp
    // runs keep per-thread order and B/E pairs stay matched.
    std::stable_sort(all.begin(), all.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.tsNs < b.tsNs;
                     });
    std::string out = "[";
    for (size_t i = 0; i < all.size(); ++i) {
        out += i ? ",\n " : "\n ";
        eventInto(out, all[i]);
    }
    out += all.empty() ? "]" : "\n]";
    return out;
}

std::string
traceEventsJson()
{
    return "{\"traceEvents\": " + traceEventsArrayJson() + "}\n";
}

std::string
writeTraceJson(const std::string &name)
{
    if (!traceEventCount())
        return {};
    const std::string path =
        qccJsonPath("TRACE_EVENTS_" + name + ".json");
    if (path.empty())
        return {};
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("writeTraceJson: cannot write " + path);
        return {};
    }
    const std::string doc = traceEventsJson();
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    return path;
}

size_t
adoptTraceEventsDom(const JsonValue &events)
{
    if (!events.isArray())
        return 0;
    size_t adopted = 0;
    for (const JsonValue &item : events.items) {
        if (!item.isObject())
            continue;
        const JsonValue *name = item.find("name");
        const JsonValue *ph = item.find("ph");
        const JsonValue *ts = item.find("ts");
        const JsonValue *pid = item.find("pid");
        const JsonValue *tid = item.find("tid");
        if (!name || !name->isString() || !ph || !ph->isString() ||
            ph->text.empty() || !ts || !ts->isNumber())
            continue;
        TraceEvent e;
        e.name = name->text;
        e.phase = ph->text[0];
        e.tsText = ts->text.empty() ? std::to_string(ts->number)
                                    : ts->text;
        e.tsNs = ts->number > 0
                     ? uint64_t(ts->number * 1000.0)
                     : 0; // sort key only; serialization uses tsText
        if (pid && pid->isNumber())
            e.pid = (long long)pid->number;
        if (tid && tid->isNumber())
            e.tid = (long long)tid->number;
        if (const JsonValue *args = item.find("args"))
            if (args->isObject())
                e.args = args->dump();
        appendEvent(std::move(e));
        ++adopted;
    }
    return adopted;
}

} // namespace qcc
