/**
 * @file
 * Process-wide metrics registry: named counters, gauges, and
 * fixed-bucket latency histograms with lock-free hot paths. The
 * registry is the one home for operational counts that used to be
 * scattered across StoreStats, CacheStats mirrors, and ad-hoc bench
 * plumbing; everything here snapshots into METRICS_<name>.json under
 * the QCC_JSON convention and merges across processes (sweepd
 * workers ship their snapshot back in the reply frame and the
 * service folds it into its own registry).
 *
 * Hot-path contract: add()/record() are a single relaxed fetch_add
 * (plus one for the histogram sum), no locks, no allocation. The
 * registry lookup itself takes a mutex, so call sites cache the
 * reference in a function-local static:
 *
 *     static MetricCounter &hits = metricCounter("x.hits");
 *     hits.add();
 *
 * Cross-counter consistency: callers that maintain invariants
 * between counters (e.g. "writes never exceed misses") publish the
 * dependent counter with addRelease() and read snapshots in reverse
 * dependency order through value()'s acquire load; see
 * store/store.cc for the worked example.
 */

#ifndef QCC_OBS_METRICS_HH
#define QCC_OBS_METRICS_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace qcc {

struct JsonValue;

/** Monotonic event count. */
class MetricCounter
{
  public:
    /** Hot-path increment: one relaxed fetch_add. */
    void add(uint64_t n = 1)
    {
        val.fetch_add(n, std::memory_order_relaxed);
    }

    /**
     * Increment that publishes every prior write in this thread.
     * Use for the dependent counter of a cross-counter invariant:
     * a reader that observes this increment through value() also
     * observes the cause counters incremented before it.
     */
    void addRelease(uint64_t n = 1)
    {
        val.fetch_add(n, std::memory_order_release);
    }

    uint64_t value() const
    {
        return val.load(std::memory_order_acquire);
    }

    void reset() { val.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> val{0};
};

/** Last-write-wins instantaneous value. */
class MetricGauge
{
  public:
    void set(int64_t v) { val.store(v, std::memory_order_relaxed); }
    void max(int64_t v)
    {
        int64_t cur = val.load(std::memory_order_relaxed);
        while (v > cur &&
               !val.compare_exchange_weak(cur, v,
                                          std::memory_order_relaxed))
            ;
    }
    int64_t value() const
    {
        return val.load(std::memory_order_relaxed);
    }
    void reset() { val.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> val{0};
};

/**
 * Latency histogram over fixed power-of-two microsecond buckets:
 * bucket i counts samples whose bit width is i (bucket 0 holds the
 * zeros, the last bucket is open-ended). Coarse by design — it
 * answers "is queue wait micro- or milliseconds" without a single
 * lock on the record path.
 */
class MetricHistogram
{
  public:
    static constexpr size_t kBuckets = 24;

    /** Hot-path record: two relaxed fetch_adds, no locks. */
    void record(uint64_t micros)
    {
        size_t b = bucketOf(micros);
        buckets[b].fetch_add(1, std::memory_order_relaxed);
        sumUs.fetch_add(micros, std::memory_order_relaxed);
    }

    /** Merge a foreign (e.g. worker-process) histogram in. */
    void merge(uint64_t sum_us, const uint64_t *counts, size_t n);

    struct Snapshot
    {
        uint64_t count = 0;
        uint64_t sumUs = 0;
        uint64_t buckets[kBuckets] = {};

        double mean() const
        {
            return count ? double(sumUs) / double(count) : 0.0;
        }
        /** Bucket-upper-bound estimate of the q-quantile (µs). */
        double quantile(double q) const;
    };

    Snapshot snapshot() const;
    void reset();

    static size_t bucketOf(uint64_t micros)
    {
        size_t b = 0;
        while (micros) {
            ++b;
            micros >>= 1;
        }
        return b < kBuckets ? b : kBuckets - 1;
    }

  private:
    std::atomic<uint64_t> buckets[kBuckets] = {};
    std::atomic<uint64_t> sumUs{0};
};

/**
 * Registry lookup by name; creates on first use. References are
 * stable for the process lifetime — cache them in a function-local
 * static at hot call sites. Naming scheme: subsystem.object.event,
 * lower_snake leaf (e.g. "store.circuit.disk_hits",
 * "parallel.queue_wait_us").
 */
MetricCounter &metricCounter(const std::string &name);
MetricGauge &metricGauge(const std::string &name);
MetricHistogram &metricHistogram(const std::string &name);

/** QCC_METRICS env gate for file output (default on; "0" off). */
bool metricsEnabled();

/**
 * Snapshot every registered metric as one JSON document:
 * {"counters": {...}, "gauges": {...}, "histograms": {...}} with
 * names in sorted order (the registry is a std::map).
 */
std::string metricsJson();

/**
 * Fold a metricsJson() document from another process into this
 * registry: counters and histogram buckets are summed, gauges take
 * the foreign value only via max (a merged gauge is a high-water
 * mark). Returns false when the document does not look like a
 * metrics snapshot.
 */
bool mergeMetricsDom(const JsonValue &doc);

/**
 * Write metricsJson() to METRICS_<name>.json under the QCC_JSON
 * convention; returns the path, or "" when QCC_JSON or QCC_METRICS
 * disables output.
 */
std::string writeMetricsJson(const std::string &name);

/** Zero every registered metric (tests and per-run resets). */
void resetMetrics();

} // namespace qcc

#endif // QCC_OBS_METRICS_HH
