#include "obs/metrics.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

#include "common/json.hh"
#include "common/logging.hh"

namespace qcc {

namespace {

struct Registry
{
    std::mutex mtx;
    // Node-based maps: references stay valid across inserts, and
    // iteration comes out name-sorted for free.
    std::map<std::string, std::unique_ptr<MetricCounter>> counters;
    std::map<std::string, std::unique_ptr<MetricGauge>> gauges;
    std::map<std::string, std::unique_ptr<MetricHistogram>>
        histograms;
};

Registry &
registry()
{
    // Deliberately immortal: pool worker threads can record metrics
    // during static destruction, and destruction order against the
    // thread-pool singleton is unspecified.
    static Registry *r = new Registry();
    return *r;
}

} // namespace

void
MetricHistogram::merge(uint64_t sum_us, const uint64_t *counts,
                       size_t n)
{
    sumUs.fetch_add(sum_us, std::memory_order_relaxed);
    if (n > kBuckets)
        n = kBuckets;
    for (size_t i = 0; i < n; ++i)
        if (counts[i])
            buckets[i].fetch_add(counts[i],
                                 std::memory_order_relaxed);
}

MetricHistogram::Snapshot
MetricHistogram::snapshot() const
{
    Snapshot s;
    s.sumUs = sumUs.load(std::memory_order_relaxed);
    for (size_t i = 0; i < kBuckets; ++i) {
        s.buckets[i] = buckets[i].load(std::memory_order_relaxed);
        s.count += s.buckets[i];
    }
    return s;
}

void
MetricHistogram::reset()
{
    sumUs.store(0, std::memory_order_relaxed);
    for (auto &b : buckets)
        b.store(0, std::memory_order_relaxed);
}

double
MetricHistogram::Snapshot::quantile(double q) const
{
    if (!count)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    uint64_t rank = uint64_t(q * double(count - 1)) + 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
        seen += buckets[i];
        if (seen >= rank)
            // Upper edge of bucket i: 2^i - 1 is the largest value
            // with bit width i (bucket 0 holds exact zeros).
            return i ? double((uint64_t(1) << i) - 1) : 0.0;
    }
    return double((uint64_t(1) << (kBuckets - 1)));
}

MetricCounter &
metricCounter(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mtx);
    auto &slot = r.counters[name];
    if (!slot)
        slot = std::make_unique<MetricCounter>();
    return *slot;
}

MetricGauge &
metricGauge(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mtx);
    auto &slot = r.gauges[name];
    if (!slot)
        slot = std::make_unique<MetricGauge>();
    return *slot;
}

MetricHistogram &
metricHistogram(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mtx);
    auto &slot = r.histograms[name];
    if (!slot)
        slot = std::make_unique<MetricHistogram>();
    return *slot;
}

bool
metricsEnabled()
{
    static const bool enabled = [] {
        const char *env = std::getenv("QCC_METRICS");
        return !(env && std::strcmp(env, "0") == 0);
    }();
    return enabled;
}

std::string
metricsJson()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mtx);
    char buf[64];
    std::string out = "{\n\"counters\": {";
    bool first = true;
    for (const auto &[name, c] : r.counters) {
        std::snprintf(buf, sizeof(buf), "%llu",
                      (unsigned long long)c->value());
        out += (first ? "\n  \"" : ",\n  \"") + jsonEscape(name) +
               "\": " + buf;
        first = false;
    }
    out += first ? "},\n" : "\n},\n";

    out += "\"gauges\": {";
    first = true;
    for (const auto &[name, g] : r.gauges) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      (long long)g->value());
        out += (first ? "\n  \"" : ",\n  \"") + jsonEscape(name) +
               "\": " + buf;
        first = false;
    }
    out += first ? "},\n" : "\n},\n";

    out += "\"histograms\": {";
    first = true;
    for (const auto &[name, h] : r.histograms) {
        const MetricHistogram::Snapshot s = h->snapshot();
        out += (first ? "\n  \"" : ",\n  \"") + jsonEscape(name) +
               "\": {";
        std::snprintf(buf, sizeof(buf),
                      "\"count\": %llu, \"sum_us\": %llu, ",
                      (unsigned long long)s.count,
                      (unsigned long long)s.sumUs);
        out += buf;
        out += "\"buckets\": [";
        for (size_t i = 0; i < MetricHistogram::kBuckets; ++i) {
            std::snprintf(buf, sizeof(buf), "%s%llu", i ? ", " : "",
                          (unsigned long long)s.buckets[i]);
            out += buf;
        }
        out += "]}";
        first = false;
    }
    out += first ? "}\n" : "\n}\n";
    out += "}\n";
    return out;
}

bool
mergeMetricsDom(const JsonValue &doc)
{
    if (!doc.isObject())
        return false;
    const JsonValue *counters = doc.find("counters");
    const JsonValue *gauges = doc.find("gauges");
    const JsonValue *histograms = doc.find("histograms");
    if (!counters && !gauges && !histograms)
        return false;

    if (counters && counters->isObject())
        for (const auto &[name, v] : counters->members) {
            uint64_t n = 0;
            if (v.asUint64(n) && n)
                metricCounter(name).add(n);
        }

    if (gauges && gauges->isObject())
        for (const auto &[name, v] : gauges->members)
            if (v.isNumber())
                metricGauge(name).max(int64_t(v.number));

    if (histograms && histograms->isObject())
        for (const auto &[name, v] : histograms->members) {
            if (!v.isObject())
                continue;
            const JsonValue *sum = v.find("sum_us");
            const JsonValue *bkts = v.find("buckets");
            uint64_t sumUs = 0;
            if (sum)
                sum->asUint64(sumUs);
            uint64_t counts[MetricHistogram::kBuckets] = {};
            size_t n = 0;
            if (bkts && bkts->isArray())
                for (const JsonValue &b : bkts->items) {
                    if (n >= MetricHistogram::kBuckets)
                        break;
                    uint64_t c = 0;
                    b.asUint64(c);
                    counts[n++] = c;
                }
            metricHistogram(name).merge(sumUs, counts, n);
        }
    return true;
}

std::string
writeMetricsJson(const std::string &name)
{
    if (!metricsEnabled())
        return {};
    const std::string path =
        qccJsonPath("METRICS_" + name + ".json");
    if (path.empty())
        return {};
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("writeMetricsJson: cannot write " + path);
        return {};
    }
    const std::string doc = metricsJson();
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    return path;
}

void
resetMetrics()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mtx);
    for (auto &[name, c] : r.counters)
        c->reset();
    for (auto &[name, g] : r.gauges)
        g->reset();
    for (auto &[name, h] : r.histograms)
        h->reset();
}

} // namespace qcc
