/**
 * @file
 * Scoped span tracer emitting Chrome trace-event JSON. Spans are
 * RAII: construction appends a "B" (begin) event into a per-thread
 * buffer, destruction appends the matching "E" with any args
 * attached in between; TRACE_EVENTS_<name>.json (written under the
 * QCC_JSON convention) loads directly into Perfetto or
 * chrome://tracing.
 *
 * Cost model: tracing is off by default (QCC_TRACE unset/0) and a
 * disabled span is one relaxed load, one branch, and one
 * steady_clock read — no allocation, no locking, no buffer traffic.
 * The clock read stays so elapsedMillis() works either way, which
 * is what lets spans replace bespoke wall-time plumbing (the
 * compiler's per-pass timing) instead of duplicating it.
 *
 * Timestamps are steady_clock microseconds. On Linux that is
 * CLOCK_MONOTONIC, whose timebase is shared by every process on the
 * machine, so events recorded in forked sweepd workers land on the
 * same timeline as the service without an epoch handshake; the
 * service adopts worker events verbatim (their pid/tid preserved)
 * via adoptTraceEventsDom().
 */

#ifndef QCC_OBS_TRACE_HH
#define QCC_OBS_TRACE_HH

#include <chrono>
#include <cstdint>
#include <string>
#include <type_traits>

namespace qcc {

struct JsonValue;

/** Cached QCC_TRACE flag (default off; any value but "0" enables). */
bool traceEnabled();

/** Flip the cached flag (tests and bench harnesses). */
void setTraceEnabled(bool on);

/**
 * One RAII span. Name spans by layer taxonomy
 * ("subsystem.operation", e.g. "compile.sabre-route",
 * "sweepd.job"); attach dimensions with arg() — they serialize into
 * the Chrome "args" object on the end event.
 */
class TraceSpan
{
  public:
    explicit TraceSpan(const char *span_name);
    /** Concatenating form for dynamic names ("compile." + pass). */
    TraceSpan(const char *prefix, const std::string &span_name);
    ~TraceSpan();

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    void arg(const char *key, const char *v);
    void arg(const char *key, const std::string &v);
    void arg(const char *key, bool v);
    void arg(const char *key, double v);

    template <typename T,
              typename = std::enable_if_t<std::is_integral_v<T> &&
                                          !std::is_same_v<T, bool>>>
    void
    arg(const char *key, T v)
    {
        if (!live)
            return;
        if constexpr (std::is_signed_v<T>)
            argSigned(key, (long long)v);
        else
            argUnsigned(key, (unsigned long long)v);
    }

    /** Wall time since construction, traced or not. */
    double elapsedMillis() const;

    bool active() const { return live; }

  private:
    void argSigned(const char *key, long long v);
    void argUnsigned(const char *key, unsigned long long v);
    void appendKey(const char *key);

    std::chrono::steady_clock::time_point t0;
    bool live = false;
    std::string name;     // filled only when live
    std::string argsJson; // object interior, no braces
};

#define QCC_SPAN_CAT2(a, b) a##b
#define QCC_SPAN_CAT(a, b) QCC_SPAN_CAT2(a, b)
/** Anonymous span covering the rest of the enclosing scope. */
#define QCC_SPAN(...) \
    ::qcc::TraceSpan QCC_SPAN_CAT(qccSpan_, __LINE__)(__VA_ARGS__)

/** Total buffered events across all threads (native + adopted). */
size_t traceEventCount();

/** Events dropped after a thread hit its buffer cap. */
uint64_t traceDroppedCount();

/** Discard every buffered event (per-run resets and tests). */
void clearTrace();

/**
 * All buffered events as a Chrome trace-event array, stable-sorted
 * by timestamp (per-thread chronological order is preserved, so
 * B/E pairs stay matched and nested).
 */
std::string traceEventsArrayJson();

/** The array wrapped as {"traceEvents": [...]} for Perfetto. */
std::string traceEventsJson();

/**
 * Write traceEventsJson() to TRACE_EVENTS_<name>.json under the
 * QCC_JSON convention; returns the path, or "" when output is
 * disabled or no events are buffered.
 */
std::string writeTraceJson(const std::string &name);

/**
 * Adopt events recorded by another process (a parsed
 * traceEventsArrayJson() document, e.g. from a sweepd worker
 * reply). Foreign pid/tid/ts/args are preserved verbatim — adopted
 * events re-serialize byte-identically. Returns the number of
 * events adopted.
 */
size_t adoptTraceEventsDom(const JsonValue &events);

} // namespace qcc

#endif // QCC_OBS_TRACE_HH
