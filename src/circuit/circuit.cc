#include "circuit/circuit.hh"

#include <algorithm>

#include "common/logging.hh"

namespace qcc {

void
Circuit::push(const Gate &g)
{
    if (g.q0 >= nQubits || (isTwoQubit(g.kind) && g.q1 >= nQubits))
        panic("Circuit::push: qubit out of range");
    if (isTwoQubit(g.kind) && g.q0 == g.q1)
        panic("Circuit::push: two-qubit gate on identical qubits");
    gateList.push_back(g);
}

void
Circuit::append(const Circuit &other)
{
    if (other.nQubits != nQubits)
        panic("Circuit::append: width mismatch");
    gateList.insert(gateList.end(), other.gateList.begin(),
                    other.gateList.end());
}

size_t
Circuit::cnotCount(bool swap_as_three) const
{
    size_t n = 0;
    for (const auto &g : gateList) {
        if (g.kind == GateKind::CNOT)
            ++n;
        else if (g.kind == GateKind::SWAP)
            n += swap_as_three ? 3 : 0;
    }
    return n;
}

size_t
Circuit::swapCount() const
{
    size_t n = 0;
    for (const auto &g : gateList)
        if (g.kind == GateKind::SWAP)
            ++n;
    return n;
}

size_t
Circuit::depth() const
{
    std::vector<size_t> level(nQubits, 0);
    size_t d = 0;
    for (const auto &g : gateList) {
        size_t l = level[g.q0];
        if (isTwoQubit(g.kind))
            l = std::max(l, level[g.q1]);
        ++l;
        level[g.q0] = l;
        if (isTwoQubit(g.kind))
            level[g.q1] = l;
        d = std::max(d, l);
    }
    return d;
}

Circuit
Circuit::inverse() const
{
    Circuit inv(nQubits);
    for (auto it = gateList.rbegin(); it != gateList.rend(); ++it) {
        Gate g = *it;
        switch (g.kind) {
          case GateKind::S:
            g.kind = GateKind::Sdg;
            break;
          case GateKind::Sdg:
            g.kind = GateKind::S;
            break;
          case GateKind::RX:
          case GateKind::RY:
          case GateKind::RZ:
            g.angle = -g.angle;
            break;
          default:
            break; // self-inverse
        }
        inv.gateList.push_back(g);
    }
    return inv;
}

std::string
Circuit::toQasm() const
{
    std::string out = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";
    out += "qreg q[" + std::to_string(nQubits) + "];\n";
    char buf[96];
    for (const auto &g : gateList) {
        if (g.kind == GateKind::SWAP) {
            std::snprintf(buf, sizeof(buf),
                          "cx q[%u],q[%u];\ncx q[%u],q[%u];\n"
                          "cx q[%u],q[%u];\n",
                          g.q0, g.q1, g.q1, g.q0, g.q0, g.q1);
        } else if (g.kind == GateKind::CNOT) {
            std::snprintf(buf, sizeof(buf), "cx q[%u],q[%u];\n",
                          g.q0, g.q1);
        } else if (hasAngle(g.kind)) {
            std::snprintf(buf, sizeof(buf), "%s(%.17g) q[%u];\n",
                          gateName(g.kind).c_str(), g.angle, g.q0);
        } else {
            std::snprintf(buf, sizeof(buf), "%s q[%u];\n",
                          gateName(g.kind).c_str(), g.q0);
        }
        out += buf;
    }
    return out;
}

std::string
Circuit::str() const
{
    std::string out;
    for (const auto &g : gateList) {
        out += g.str();
        out += '\n';
    }
    return out;
}

} // namespace qcc
