/**
 * @file
 * Gate-level IR. The library compiles Pauli-string programs down to
 * this representation: single-qubit basis-change gates, RZ rotations,
 * CNOTs, and SWAPs inserted by routing. Gate counting follows the
 * paper's conventions (CNOT count is the headline cost metric; a SWAP
 * decomposes into three CNOTs).
 */

#ifndef QCC_CIRCUIT_GATE_HH
#define QCC_CIRCUIT_GATE_HH

#include <cstdint>
#include <string>

namespace qcc {

/** Supported gate kinds. */
enum class GateKind : uint8_t
{
    X, Y, Z, H, S, Sdg, RX, RY, RZ, CNOT, SWAP
};

/** True for two-qubit kinds (CNOT, SWAP). */
bool isTwoQubit(GateKind k);

/** True for kinds carrying a rotation angle (RX, RY, RZ). */
bool hasAngle(GateKind k);

/** Lower-case mnemonic, e.g. "cx" for CNOT (OpenQASM names). */
std::string gateName(GateKind k);

/**
 * One gate application. For two-qubit gates, q0 is the control (CNOT)
 * or first operand (SWAP) and q1 the target/second operand; for
 * single-qubit gates q1 is unused.
 */
struct Gate
{
    GateKind kind;
    unsigned q0;
    unsigned q1 = 0;
    double angle = 0.0;

    /** Printable form, e.g. "cx q2, q5" or "rz(0.42) q1". */
    std::string str() const;
};

} // namespace qcc

#endif // QCC_CIRCUIT_GATE_HH
