/**
 * @file
 * A quantum circuit: an ordered gate list over a fixed qubit count,
 * with the cost accounting used throughout the evaluation (total gate
 * count, CNOT count with SWAP = 3 CNOTs, depth) and an OpenQASM 2.0
 * exporter for interoperability.
 */

#ifndef QCC_CIRCUIT_CIRCUIT_HH
#define QCC_CIRCUIT_CIRCUIT_HH

#include <string>
#include <vector>

#include "circuit/gate.hh"

namespace qcc {

/** Ordered list of gates on n qubits. */
class Circuit
{
  public:
    explicit Circuit(unsigned n = 0) : nQubits(n) {}

    unsigned numQubits() const { return nQubits; }
    const std::vector<Gate> &gates() const { return gateList; }

    /**
     * Mutable gate access for in-place rewrites (the compile cache
     * rebinds RZ angles on memoized circuits). Kinds and operands of
     * existing gates were validated by push; callers must keep any
     * edits within the same invariants.
     */
    std::vector<Gate> &gates() { return gateList; }
    size_t size() const { return gateList.size(); }

    /** @{ Gate-append helpers. */
    void x(unsigned q) { push({GateKind::X, q}); }
    void y(unsigned q) { push({GateKind::Y, q}); }
    void z(unsigned q) { push({GateKind::Z, q}); }
    void h(unsigned q) { push({GateKind::H, q}); }
    void s(unsigned q) { push({GateKind::S, q}); }
    void sdg(unsigned q) { push({GateKind::Sdg, q}); }
    void rx(unsigned q, double a) { push({GateKind::RX, q, 0, a}); }
    void ry(unsigned q, double a) { push({GateKind::RY, q, 0, a}); }
    void rz(unsigned q, double a) { push({GateKind::RZ, q, 0, a}); }
    void cnot(unsigned c, unsigned t) { push({GateKind::CNOT, c, t}); }
    void swap(unsigned a, unsigned b) { push({GateKind::SWAP, a, b}); }
    /** @} */

    /** Append a raw gate with bounds checking. */
    void push(const Gate &g);

    /** Append all gates of another circuit (same width required). */
    void append(const Circuit &other);

    /** Total gates, counting each SWAP as one gate. */
    size_t totalGates() const { return gateList.size(); }

    /**
     * CNOT count; when swap_as_three is set each SWAP contributes
     * three CNOTs (the standard decomposition and the convention in
     * the paper's overhead tables).
     */
    size_t cnotCount(bool swap_as_three = true) const;

    /** Number of SWAP gates. */
    size_t swapCount() const;

    /** Circuit depth (greedy ASAP scheduling). */
    size_t depth() const;

    /** Adjoint circuit: reversed gate order, inverted gates. */
    Circuit inverse() const;

    /** OpenQASM 2.0 text (swap emitted as three cx). */
    std::string toQasm() const;

    /** One gate per line, for debugging. */
    std::string str() const;

  private:
    unsigned nQubits;
    std::vector<Gate> gateList;
};

} // namespace qcc

#endif // QCC_CIRCUIT_CIRCUIT_HH
