#include "circuit/gate.hh"

#include <cstdio>

namespace qcc {

bool
isTwoQubit(GateKind k)
{
    return k == GateKind::CNOT || k == GateKind::SWAP;
}

bool
hasAngle(GateKind k)
{
    return k == GateKind::RX || k == GateKind::RY || k == GateKind::RZ;
}

std::string
gateName(GateKind k)
{
    switch (k) {
      case GateKind::X: return "x";
      case GateKind::Y: return "y";
      case GateKind::Z: return "z";
      case GateKind::H: return "h";
      case GateKind::S: return "s";
      case GateKind::Sdg: return "sdg";
      case GateKind::RX: return "rx";
      case GateKind::RY: return "ry";
      case GateKind::RZ: return "rz";
      case GateKind::CNOT: return "cx";
      case GateKind::SWAP: return "swap";
    }
    return "?";
}

std::string
Gate::str() const
{
    char buf[96];
    if (isTwoQubit(kind)) {
        std::snprintf(buf, sizeof(buf), "%s q%u, q%u",
                      gateName(kind).c_str(), q0, q1);
    } else if (hasAngle(kind)) {
        std::snprintf(buf, sizeof(buf), "%s(%.8g) q%u",
                      gateName(kind).c_str(), angle, q0);
    } else {
        std::snprintf(buf, sizeof(buf), "%s q%u",
                      gateName(kind).c_str(), q0);
    }
    return buf;
}

} // namespace qcc
