#include "chem/integrals.hh"

#include <array>
#include <cmath>

#include "chem/boys.hh"
#include "common/logging.hh"

namespace qcc {

namespace {

/** Everything needed about one basis function for integral loops. */
struct BfData
{
    std::array<double, 3> center;
    int l[3]; ///< lx, ly, lz
    std::vector<double> alpha;
    std::vector<double> coeff; ///< contraction coeff x primitive norm
};

std::vector<BfData>
flattenBasis(const BasisSet &basis)
{
    std::vector<BfData> out;
    for (const auto &bf : basis.functions()) {
        const Shell &sh = basis.shells()[bf.shell];
        BfData d;
        d.center = sh.center;
        d.l[0] = bf.lx;
        d.l[1] = bf.ly;
        d.l[2] = bf.lz;
        d.alpha = sh.alpha;
        d.coeff.resize(sh.alpha.size());
        for (size_t i = 0; i < sh.alpha.size(); ++i)
            d.coeff[i] = sh.coeff[i] *
                primitiveNorm(sh.alpha[i], bf.lx, bf.ly, bf.lz);
        out.push_back(std::move(d));
    }
    return out;
}

/** 1D overlap S_ij = E_0^{ij} sqrt(pi/p). */
double
overlap1d(int i, int j, double a, double b, double ab)
{
    return hermiteE(i, j, a, b, ab)[0] * std::sqrt(M_PI / (a + b));
}

/** 1D kinetic-energy block acting on the right function. */
double
kinetic1d(int i, int j, double a, double b, double ab)
{
    double term = -2.0 * b * b * overlap1d(i, j + 2, a, b, ab) +
                  b * (2.0 * j + 1.0) * overlap1d(i, j, a, b, ab);
    if (j >= 2)
        term -= 0.5 * j * (j - 1.0) * overlap1d(i, j - 2, a, b, ab);
    return term;
}

/**
 * Hermite Coulomb tensor R_{tuv} = R^0_{tuv}(p, PC). Built by the
 * standard downward recursion over the auxiliary index n.
 */
struct HermiteR
{
    int tmax, umax, vmax;
    std::vector<double> data;

    HermiteR(int tm, int um, int vm, double p,
             const std::array<double, 3> &pc)
        : tmax(tm), umax(um), vmax(vm),
          data(size_t(tm + 1) * (um + 1) * (vm + 1))
    {
        const int nmax = tm + um + vm;
        const double r2 =
            pc[0] * pc[0] + pc[1] * pc[1] + pc[2] * pc[2];
        std::vector<double> f = boys(nmax, p * r2);

        // work[n][t][u][v], filled for t+u+v <= nmax - n.
        auto sz = size_t(tm + 1) * (um + 1) * (vm + 1);
        std::vector<std::vector<double>> work(nmax + 1,
                                              std::vector<double>(sz));
        auto at = [&](std::vector<double> &w, int t, int u,
                      int v) -> double & {
            return w[(size_t(t) * (umax + 1) + u) * (vmax + 1) + v];
        };

        for (int n = nmax; n >= 0; --n) {
            at(work[n], 0, 0, 0) =
                std::pow(-2.0 * p, n) * f[n];
            if (n == nmax)
                continue;
            for (int t = 0; t <= tmax; ++t) {
                for (int u = 0; u <= umax; ++u) {
                    for (int v = 0; v <= vmax; ++v) {
                        if (t + u + v == 0 || t + u + v > nmax - n)
                            continue;
                        double val = 0.0;
                        if (t > 0) {
                            if (t > 1)
                                val += (t - 1) *
                                    at(work[n + 1], t - 2, u, v);
                            val += pc[0] *
                                at(work[n + 1], t - 1, u, v);
                        } else if (u > 0) {
                            if (u > 1)
                                val += (u - 1) *
                                    at(work[n + 1], t, u - 2, v);
                            val += pc[1] *
                                at(work[n + 1], t, u - 1, v);
                        } else {
                            if (v > 1)
                                val += (v - 1) *
                                    at(work[n + 1], t, u, v - 2);
                            val += pc[2] *
                                at(work[n + 1], t, u, v - 1);
                        }
                        at(work[n], t, u, v) = val;
                    }
                }
            }
        }
        data = work[0];
    }

    double
    operator()(int t, int u, int v) const
    {
        return data[(size_t(t) * (umax + 1) + u) * (vmax + 1) + v];
    }
};

} // namespace

std::vector<double>
hermiteE(int i, int j, double a, double b, double ab)
{
    const double p = a + b;
    const double q = a * b / p;
    const double pa = -b * ab / p; // P - A
    const double pb = a * ab / p;  // P - B

    // e[ii][jj] is the vector over t = 0..ii+jj.
    std::vector<std::vector<std::vector<double>>> e(
        i + 1, std::vector<std::vector<double>>(j + 1));
    e[0][0] = {std::exp(-q * ab * ab)};

    auto get = [](const std::vector<double> &v, int t) {
        return (t < 0 || t >= int(v.size())) ? 0.0 : v[t];
    };

    for (int ii = 0; ii <= i; ++ii) {
        for (int jj = 0; jj <= j; ++jj) {
            if (ii == 0 && jj == 0)
                continue;
            std::vector<double> cur(ii + jj + 1, 0.0);
            if (ii > 0) {
                const auto &prev = e[ii - 1][jj];
                for (int t = 0; t <= ii + jj; ++t) {
                    cur[t] = get(prev, t - 1) / (2.0 * p) +
                             pa * get(prev, t) +
                             (t + 1) * get(prev, t + 1);
                }
            } else {
                const auto &prev = e[ii][jj - 1];
                for (int t = 0; t <= ii + jj; ++t) {
                    cur[t] = get(prev, t - 1) / (2.0 * p) +
                             pb * get(prev, t) +
                             (t + 1) * get(prev, t + 1);
                }
            }
            e[ii][jj] = std::move(cur);
        }
    }
    return e[i][j];
}

IntegralTables
computeIntegrals(const BasisSet &basis, const Molecule &mol)
{
    const std::vector<BfData> bf = flattenBasis(basis);
    const size_t n = bf.size();

    IntegralTables out;
    out.nbf = n;
    out.s = Matrix(n, n);
    out.t = Matrix(n, n);
    out.v = Matrix(n, n);
    out.eri.assign(n * n * n * n, 0.0);

    // --- One-electron integrals -------------------------------------
    for (size_t mu = 0; mu < n; ++mu) {
        for (size_t nu = mu; nu < n; ++nu) {
            const BfData &A = bf[mu], &B = bf[nu];
            std::array<double, 3> abv{A.center[0] - B.center[0],
                                      A.center[1] - B.center[1],
                                      A.center[2] - B.center[2]};
            double sSum = 0.0, tSum = 0.0, vSum = 0.0;

            for (size_t ip = 0; ip < A.alpha.size(); ++ip) {
                for (size_t jp = 0; jp < B.alpha.size(); ++jp) {
                    const double a = A.alpha[ip], b = B.alpha[jp];
                    const double cc = A.coeff[ip] * B.coeff[jp];
                    const double p = a + b;

                    double s1[3], k1[3];
                    for (int d = 0; d < 3; ++d) {
                        s1[d] = overlap1d(A.l[d], B.l[d], a, b,
                                          abv[d]);
                        k1[d] = kinetic1d(A.l[d], B.l[d], a, b,
                                          abv[d]);
                    }
                    sSum += cc * s1[0] * s1[1] * s1[2];
                    tSum += cc * (k1[0] * s1[1] * s1[2] +
                                  s1[0] * k1[1] * s1[2] +
                                  s1[0] * s1[1] * k1[2]);

                    // Nuclear attraction.
                    std::array<double, 3> pCtr;
                    for (int d = 0; d < 3; ++d)
                        pCtr[d] = (a * A.center[d] + b * B.center[d])
                            / p;
                    std::vector<double> ex =
                        hermiteE(A.l[0], B.l[0], a, b, abv[0]);
                    std::vector<double> ey =
                        hermiteE(A.l[1], B.l[1], a, b, abv[1]);
                    std::vector<double> ez =
                        hermiteE(A.l[2], B.l[2], a, b, abv[2]);

                    for (const auto &atom : mol.atoms) {
                        std::array<double, 3> pc{
                            pCtr[0] - atom.pos[0],
                            pCtr[1] - atom.pos[1],
                            pCtr[2] - atom.pos[2]};
                        HermiteR r(int(ex.size()) - 1,
                                   int(ey.size()) - 1,
                                   int(ez.size()) - 1, p, pc);
                        double acc = 0.0;
                        for (size_t tt = 0; tt < ex.size(); ++tt)
                            for (size_t uu = 0; uu < ey.size(); ++uu)
                                for (size_t vv = 0; vv < ez.size();
                                     ++vv)
                                    acc += ex[tt] * ey[uu] * ez[vv] *
                                        r(int(tt), int(uu), int(vv));
                        vSum -= atom.z * cc * 2.0 * M_PI / p * acc;
                    }
                }
            }
            out.s(mu, nu) = out.s(nu, mu) = sSum;
            out.t(mu, nu) = out.t(nu, mu) = tSum;
            out.v(mu, nu) = out.v(nu, mu) = vSum;
        }
    }

    // --- Two-electron integrals (8-fold symmetry) --------------------
    auto setEri = [&](size_t i, size_t j, size_t k, size_t l,
                      double val) {
        auto idx = [&](size_t a, size_t b, size_t c, size_t d) {
            return ((a * n + b) * n + c) * n + d;
        };
        out.eri[idx(i, j, k, l)] = val;
        out.eri[idx(j, i, k, l)] = val;
        out.eri[idx(i, j, l, k)] = val;
        out.eri[idx(j, i, l, k)] = val;
        out.eri[idx(k, l, i, j)] = val;
        out.eri[idx(l, k, i, j)] = val;
        out.eri[idx(k, l, j, i)] = val;
        out.eri[idx(l, k, j, i)] = val;
    };

    for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
    for (size_t k = 0; k < n; ++k) {
    for (size_t l = k; l < n; ++l) {
        if (i * n + j > k * n + l)
            continue;
        const BfData &A = bf[i], &B = bf[j], &C = bf[k], &D = bf[l];
        std::array<double, 3> abv{A.center[0] - B.center[0],
                                  A.center[1] - B.center[1],
                                  A.center[2] - B.center[2]};
        std::array<double, 3> cdv{C.center[0] - D.center[0],
                                  C.center[1] - D.center[1],
                                  C.center[2] - D.center[2]};
        double total = 0.0;

        for (size_t ip = 0; ip < A.alpha.size(); ++ip) {
        for (size_t jp = 0; jp < B.alpha.size(); ++jp) {
            const double a = A.alpha[ip], b = B.alpha[jp];
            const double p = a + b;
            std::array<double, 3> pCtr;
            for (int d = 0; d < 3; ++d)
                pCtr[d] = (a * A.center[d] + b * B.center[d]) / p;
            std::vector<double> e1x =
                hermiteE(A.l[0], B.l[0], a, b, abv[0]);
            std::vector<double> e1y =
                hermiteE(A.l[1], B.l[1], a, b, abv[1]);
            std::vector<double> e1z =
                hermiteE(A.l[2], B.l[2], a, b, abv[2]);
            const double cAB = A.coeff[ip] * B.coeff[jp];

            for (size_t kp = 0; kp < C.alpha.size(); ++kp) {
            for (size_t lp = 0; lp < D.alpha.size(); ++lp) {
                const double c = C.alpha[kp], d = D.alpha[lp];
                const double q = c + d;
                std::array<double, 3> qCtr;
                for (int dd = 0; dd < 3; ++dd)
                    qCtr[dd] =
                        (c * C.center[dd] + d * D.center[dd]) / q;
                std::vector<double> e2x =
                    hermiteE(C.l[0], D.l[0], c, d, cdv[0]);
                std::vector<double> e2y =
                    hermiteE(C.l[1], D.l[1], c, d, cdv[1]);
                std::vector<double> e2z =
                    hermiteE(C.l[2], D.l[2], c, d, cdv[2]);

                const double alpha = p * q / (p + q);
                std::array<double, 3> pq{pCtr[0] - qCtr[0],
                                         pCtr[1] - qCtr[1],
                                         pCtr[2] - qCtr[2]};
                HermiteR r(int(e1x.size() + e2x.size()) - 2,
                           int(e1y.size() + e2y.size()) - 2,
                           int(e1z.size() + e2z.size()) - 2, alpha,
                           pq);

                double acc = 0.0;
                for (size_t t1 = 0; t1 < e1x.size(); ++t1)
                for (size_t u1 = 0; u1 < e1y.size(); ++u1)
                for (size_t v1 = 0; v1 < e1z.size(); ++v1) {
                    const double eabc =
                        e1x[t1] * e1y[u1] * e1z[v1];
                    if (eabc == 0.0)
                        continue;
                    for (size_t t2 = 0; t2 < e2x.size(); ++t2)
                    for (size_t u2 = 0; u2 < e2y.size(); ++u2)
                    for (size_t v2 = 0; v2 < e2z.size(); ++v2) {
                        double sign =
                            ((t2 + u2 + v2) % 2) ? -1.0 : 1.0;
                        acc += eabc * sign * e2x[t2] * e2y[u2] *
                            e2z[v2] *
                            r(int(t1 + t2), int(u1 + u2),
                              int(v1 + v2));
                    }
                }
                total += cAB * C.coeff[kp] * D.coeff[lp] *
                    2.0 * std::pow(M_PI, 2.5) /
                    (p * q * std::sqrt(p + q)) * acc;
            }
            }
        }
        }
        setEri(i, j, k, l, total);
    }
    }
    }
    }
    return out;
}

} // namespace qcc
