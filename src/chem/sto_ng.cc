#include "chem/sto_ng.hh"

#include <cmath>
#include <map>
#include <mutex>

#include "common/linalg.hh"
#include "common/logging.hh"
#include "common/optimize.hh"

namespace qcc {

namespace {

/** Radial quadrature grid: composite Simpson on [0, rmax]. */
struct RadialGrid
{
    std::vector<double> r;
    std::vector<double> w; ///< weights including the r^2 measure

    RadialGrid(double rmax, int n)
    {
        // n must be even for Simpson.
        if (n % 2)
            ++n;
        const double h = rmax / n;
        r.resize(n + 1);
        w.resize(n + 1);
        for (int i = 0; i <= n; ++i) {
            r[i] = i * h;
            double simpson =
                (i == 0 || i == n) ? 1.0 : (i % 2 ? 4.0 : 2.0);
            w[i] = simpson * h / 3.0 * r[i] * r[i];
        }
    }
};

/** <u, v> = int u(r) v(r) r^2 dr on the grid. */
double
radialInner(const RadialGrid &g, const std::vector<double> &u,
            const std::vector<double> &v)
{
    double s = 0.0;
    for (size_t i = 0; i < g.r.size(); ++i)
        s += g.w[i] * u[i] * v[i];
    return s;
}

std::vector<double>
slaterRadial(const RadialGrid &g, int n)
{
    std::vector<double> f(g.r.size());
    for (size_t i = 0; i < g.r.size(); ++i)
        f[i] = std::pow(g.r[i], n - 1) * std::exp(-g.r[i]);
    return f;
}

std::vector<double>
gaussRadial(const RadialGrid &g, int l, double alpha)
{
    std::vector<double> f(g.r.size());
    for (size_t i = 0; i < g.r.size(); ++i)
        f[i] = std::pow(g.r[i], l) * std::exp(-alpha * g.r[i] * g.r[i]);
    return f;
}

/**
 * For fixed exponents, the best coefficients maximize
 * (c.b)^2 / (c.A.c) with A the Gram matrix of the Gaussians and b
 * their overlaps with the Slater target; the solution is c = A^{-1} b.
 * Returns the achieved normalized overlap and fills coeffs.
 */
double
bestCoefficients(const RadialGrid &g, int n, int l,
                 const std::vector<double> &alphas,
                 std::vector<double> &coeffs)
{
    const size_t ng = alphas.size();
    std::vector<std::vector<double>> gr(ng);
    for (size_t i = 0; i < ng; ++i)
        gr[i] = gaussRadial(g, l, alphas[i]);
    std::vector<double> target = slaterRadial(g, n);

    Matrix a(ng, ng);
    std::vector<double> b(ng);
    for (size_t i = 0; i < ng; ++i) {
        b[i] = radialInner(g, gr[i], target);
        for (size_t j = 0; j < ng; ++j)
            a(i, j) = radialInner(g, gr[i], gr[j]);
    }

    std::vector<double> c = solveLinear(a, b);
    double num = 0.0, den = 0.0;
    for (size_t i = 0; i < ng; ++i) {
        num += c[i] * b[i];
        for (size_t j = 0; j < ng; ++j)
            den += c[i] * a(i, j) * c[j];
    }
    double tt = radialInner(g, target, target);
    coeffs = std::move(c);
    if (den <= 0 || tt <= 0)
        return 0.0;
    return num / std::sqrt(den * tt);
}

StoFit
fitShell(int n, int l, int n_gauss)
{
    if (n_gauss < 1 || n_gauss > 6)
        fatal("stoNgFit: n_gauss out of range");
    RadialGrid grid(45.0, 4000);

    // Geometric starting guesses bracketing the Slater decay scale.
    std::vector<double> x0(n_gauss);
    double hi = (n == 1) ? 2.5 : (n == 2 ? 1.0 : 0.5);
    for (int i = 0; i < n_gauss; ++i)
        x0[i] = std::log(hi / std::pow(4.5, i));

    auto objective = [&](const std::vector<double> &logAlpha) {
        std::vector<double> alphas(logAlpha.size());
        for (size_t i = 0; i < alphas.size(); ++i) {
            alphas[i] = std::exp(logAlpha[i]);
            if (alphas[i] > 1e6 || alphas[i] < 1e-6)
                return 1.0; // out of sensible range
        }
        // Penalize near-coincident exponents (ill-conditioned Gram).
        for (size_t i = 0; i < alphas.size(); ++i)
            for (size_t j = i + 1; j < alphas.size(); ++j)
                if (std::fabs(std::log(alphas[i] / alphas[j])) < 0.05)
                    return 1.0;
        std::vector<double> c;
        return 1.0 - bestCoefficients(grid, n, l, alphas, c);
    };

    NelderMeadOptions nm;
    nm.maxIter = 4000;
    nm.initStep = 0.4;
    nm.xatol = 1e-9;
    nm.fatol = 1e-13;
    OptimizeResult res = nelderMead(objective, x0, nm);

    StoFit fit;
    fit.exponents.resize(n_gauss);
    for (int i = 0; i < n_gauss; ++i)
        fit.exponents[i] = std::exp(res.x[i]);

    std::vector<double> cRaw;
    fit.overlap =
        bestCoefficients(grid, n, l, fit.exponents, cRaw);

    // Express coefficients over radially normalized primitives and
    // normalize the contraction itself.
    fit.coeffs.resize(n_gauss);
    std::vector<std::vector<double>> gr(n_gauss);
    for (int i = 0; i < n_gauss; ++i)
        gr[i] = gaussRadial(grid, l, fit.exponents[i]);
    for (int i = 0; i < n_gauss; ++i) {
        double nrm = std::sqrt(radialInner(grid, gr[i], gr[i]));
        fit.coeffs[i] = cRaw[i] * nrm;
    }
    double self = 0.0;
    for (int i = 0; i < n_gauss; ++i) {
        for (int j = 0; j < n_gauss; ++j) {
            double sij = radialInner(grid, gr[i], gr[j]) /
                std::sqrt(radialInner(grid, gr[i], gr[i]) *
                          radialInner(grid, gr[j], gr[j]));
            self += fit.coeffs[i] * fit.coeffs[j] * sij;
        }
    }
    for (auto &c : fit.coeffs)
        c /= std::sqrt(self);

    // Sort exponents descending, carrying coefficients along.
    for (int i = 0; i < n_gauss; ++i) {
        for (int j = i + 1; j < n_gauss; ++j) {
            if (fit.exponents[j] > fit.exponents[i]) {
                std::swap(fit.exponents[i], fit.exponents[j]);
                std::swap(fit.coeffs[i], fit.coeffs[j]);
            }
        }
    }
    return fit;
}

} // namespace

const StoFit &
stoNgFit(int n, int l, int n_gauss)
{
    static std::map<std::tuple<int, int, int>, StoFit> cache;
    static std::mutex mtx;
    std::lock_guard<std::mutex> lock(mtx);
    auto key = std::make_tuple(n, l, n_gauss);
    auto it = cache.find(key);
    if (it == cache.end())
        it = cache.emplace(key, fitShell(n, l, n_gauss)).first;
    return it->second;
}

} // namespace qcc
