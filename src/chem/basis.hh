/**
 * @file
 * Contracted Gaussian basis sets built from the STO-nG fitter and the
 * element zeta table. A shell is a contraction of primitives sharing a
 * center and angular momentum; basis functions are its Cartesian
 * components (1 for s, 3 for p).
 */

#ifndef QCC_CHEM_BASIS_HH
#define QCC_CHEM_BASIS_HH

#include <array>
#include <vector>

#include "chem/molecule.hh"

namespace qcc {

/** Contracted Gaussian shell. */
struct Shell
{
    int l;                        ///< angular momentum (0 or 1)
    std::array<double, 3> center; ///< position (Bohr)
    std::vector<double> alpha;    ///< primitive exponents
    std::vector<double> coeff;    ///< contraction coefficients over
                                  ///< 3D-normalized primitives
    int atomIndex;                ///< owning atom
};

/** One Cartesian basis function: a shell plus (lx, ly, lz). */
struct BasisFunction
{
    int shell;  ///< index into BasisSet::shells
    int lx, ly, lz;
};

/** The full basis for a molecule. */
class BasisSet
{
  public:
    /**
     * Build the STO-nG basis for a molecule (default n_gauss = 3,
     * i.e. STO-3G as used in the paper's evaluation).
     */
    static BasisSet stoNg(const Molecule &mol, int n_gauss = 3);

    size_t size() const { return funcs.size(); }
    const std::vector<Shell> &shells() const { return shellList; }
    const std::vector<BasisFunction> &functions() const { return funcs; }

  private:
    std::vector<Shell> shellList;
    std::vector<BasisFunction> funcs;
};

/**
 * 3D normalization constant of a primitive Cartesian Gaussian
 * x^lx y^ly z^lz exp(-a r^2).
 */
double primitiveNorm(double a, int lx, int ly, int lz);

} // namespace qcc

#endif // QCC_CHEM_BASIS_HH
