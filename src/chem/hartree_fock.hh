/**
 * @file
 * Restricted Hartree-Fock with DIIS convergence acceleration. The HF
 * solution supplies the molecular orbitals, the reference determinant
 * for the UCCSD ansatz, and the orbital energies used to pick frozen
 * cores and active spaces.
 */

#ifndef QCC_CHEM_HARTREE_FOCK_HH
#define QCC_CHEM_HARTREE_FOCK_HH

#include <vector>

#include "chem/integrals.hh"
#include "chem/molecule.hh"
#include "common/matrix.hh"

namespace qcc {

/** SCF options. */
struct ScfOptions
{
    int maxIter = 200;
    double convDensity = 1e-9;  ///< max |Delta D|
    double convEnergy = 1e-10;  ///< |Delta E|
    int diisSize = 8;           ///< DIIS history length
    int diisStart = 2;          ///< first iteration to apply DIIS
    double mixing = 0.0;        ///< density damping (0 = none)
};

/** SCF result. */
struct ScfResult
{
    bool converged = false;
    int iterations = 0;
    double energyElectronic = 0.0;
    double energyTotal = 0.0;             ///< includes nuclear repulsion
    std::vector<double> orbitalEnergies;  ///< ascending
    Matrix coeffs;   ///< column i = MO i over AOs
    Matrix density;  ///< D = C_occ C_occ^T (no factor 2)
};

/** Run restricted Hartree-Fock. Closed shell (even electrons) only. */
ScfResult runRhf(const IntegralTables &ints, const Molecule &mol,
                 const ScfOptions &opts = {});

} // namespace qcc

#endif // QCC_CHEM_HARTREE_FOCK_HH
