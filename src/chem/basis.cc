#include "chem/basis.hh"

#include <cmath>

#include "chem/elements.hh"
#include "chem/sto_ng.hh"
#include "common/logging.hh"

namespace qcc {

namespace {

double
doubleFactorial(int n)
{
    double r = 1.0;
    for (int k = n; k > 1; k -= 2)
        r *= k;
    return r;
}

/** Same-center overlap of two primitives with common (lx,ly,lz). */
double
sameCenterOverlap(double a, double b, int lx, int ly, int lz)
{
    const double p = a + b;
    const int lsum = lx + ly + lz;
    return std::pow(M_PI / p, 1.5) * doubleFactorial(2 * lx - 1) *
           doubleFactorial(2 * ly - 1) * doubleFactorial(2 * lz - 1) /
           std::pow(2.0 * p, lsum);
}

} // namespace

double
primitiveNorm(double a, int lx, int ly, int lz)
{
    return 1.0 / std::sqrt(sameCenterOverlap(a, a, lx, ly, lz));
}

BasisSet
BasisSet::stoNg(const Molecule &mol, int n_gauss)
{
    BasisSet bs;
    for (size_t ai = 0; ai < mol.atoms.size(); ++ai) {
        const Atom &atom = mol.atoms[ai];
        const Element &el = elementByZ(atom.z);
        for (const auto &sh : el.shells) {
            const StoFit &fit = stoNgFit(sh.n, sh.l, n_gauss);

            Shell shell;
            shell.l = sh.l;
            shell.center = atom.pos;
            shell.atomIndex = int(ai);
            shell.alpha.resize(fit.exponents.size());
            shell.coeff = fit.coeffs;
            for (size_t i = 0; i < fit.exponents.size(); ++i)
                shell.alpha[i] = fit.exponents[i] * sh.zeta * sh.zeta;

            // Renormalize the contraction over 3D primitives (the
            // fitter normalized the radial contraction; the 3D
            // measure differs only by a shared angular factor, so
            // this is a safety renormalization against quadrature
            // error).
            {
                int lx = (shell.l == 1) ? 1 : 0;
                double self = 0.0;
                for (size_t i = 0; i < shell.alpha.size(); ++i) {
                    for (size_t j = 0; j < shell.alpha.size(); ++j) {
                        double s =
                            sameCenterOverlap(shell.alpha[i],
                                              shell.alpha[j], lx, 0, 0);
                        self += shell.coeff[i] * shell.coeff[j] * s *
                            primitiveNorm(shell.alpha[i], lx, 0, 0) *
                            primitiveNorm(shell.alpha[j], lx, 0, 0);
                    }
                }
                for (auto &c : shell.coeff)
                    c /= std::sqrt(self);
            }

            int shellIdx = int(bs.shellList.size());
            bs.shellList.push_back(shell);
            if (shell.l == 0) {
                bs.funcs.push_back({shellIdx, 0, 0, 0});
            } else if (shell.l == 1) {
                bs.funcs.push_back({shellIdx, 1, 0, 0});
                bs.funcs.push_back({shellIdx, 0, 1, 0});
                bs.funcs.push_back({shellIdx, 0, 0, 1});
            } else {
                fatal("BasisSet: unsupported angular momentum");
            }
        }
    }
    return bs;
}

} // namespace qcc
