/**
 * @file
 * Benchmark molecule catalog: the nine molecules of the paper's
 * Table I, each with a geometry builder parameterized by a bond
 * length (symmetric stretch for polyatomics) and the active-space
 * settings that reproduce the paper's qubit counts.
 */

#ifndef QCC_CHEM_MOLECULES_HH
#define QCC_CHEM_MOLECULES_HH

#include <functional>
#include <string>
#include <vector>

#include "chem/molecule.hh"

namespace qcc {

/** One catalog entry. */
struct BenchmarkMolecule
{
    std::string name;
    /** Geometry builder; bond is the (symmetric) X-H distance in
     *  Angstrom. */
    std::function<Molecule(double bond)> build;
    unsigned nFrozen;        ///< frozen lowest MOs
    int targetSpatial;       ///< active spatial orbitals (-1 = all)
    double equilibriumBond;  ///< approximate equilibrium (Angstrom)
    double sweepLo;          ///< default sweep start
    double sweepHi;          ///< default sweep end
    unsigned expectQubits;   ///< paper's Table I qubit count
    unsigned expectParams;   ///< paper's Table I parameter count
};

/** All nine Table I molecules, smallest first. */
const std::vector<BenchmarkMolecule> &benchmarkMolecules();

/** Look up a catalog entry by name (H2, LiH, ...). */
const BenchmarkMolecule &benchmarkMolecule(const std::string &name);

} // namespace qcc

#endif // QCC_CHEM_MOLECULES_HH
