/**
 * @file
 * One- and two-electron Gaussian integrals over a contracted basis,
 * via the McMurchie-Davidson scheme (Hermite expansion coefficients
 * plus Hermite Coulomb tensors with the Boys function). Produces the
 * AO-basis overlap, kinetic, nuclear-attraction matrices and the full
 * (ij|kl) electron-repulsion tensor with 8-fold symmetry.
 */

#ifndef QCC_CHEM_INTEGRALS_HH
#define QCC_CHEM_INTEGRALS_HH

#include <vector>

#include "chem/basis.hh"
#include "chem/molecule.hh"
#include "common/matrix.hh"

namespace qcc {

/** AO-basis integral tables. */
struct IntegralTables
{
    size_t nbf = 0;
    Matrix s;  ///< overlap
    Matrix t;  ///< kinetic energy
    Matrix v;  ///< nuclear attraction (includes -Z factors)
    std::vector<double> eri; ///< chemist-notation (ij|kl), dense

    double
    eriAt(size_t i, size_t j, size_t k, size_t l) const
    {
        return eri[((i * nbf + j) * nbf + k) * nbf + l];
    }
};

/** Compute all AO integrals for the basis/molecule pair. */
IntegralTables computeIntegrals(const BasisSet &basis,
                                const Molecule &mol);

/**
 * Hermite expansion coefficients E_t^{ij} (t = 0..i+j) for the 1D
 * product of Gaussians with exponents a, b separated by ab = Ax - Bx.
 * Exposed for unit testing.
 */
std::vector<double> hermiteE(int i, int j, double a, double b,
                             double ab);

} // namespace qcc

#endif // QCC_CHEM_INTEGRALS_HH
