#include "chem/boys.hh"

#include <cmath>

#include "common/logging.hh"

namespace qcc {

namespace {

/**
 * Series evaluation of F_m(T) = exp(-T)/2 * sum_k (2T)^k *
 * Gamma(m+1/2) / Gamma(m+k+3/2); converges quickly for T < ~35.
 */
double
boysSeries(int m, double t)
{
    double term = 1.0 / (2.0 * m + 1.0);
    double sum = term;
    for (int k = 1; k < 400; ++k) {
        term *= 2.0 * t / (2.0 * m + 2.0 * k + 1.0);
        sum += term;
        if (term < 1e-17 * sum)
            break;
    }
    return std::exp(-t) * sum;
}

} // namespace

std::vector<double>
boys(int mmax, double t)
{
    if (t < 0)
        panic("boys: negative argument");
    std::vector<double> f(mmax + 1);

    if (t < 1e-13) {
        for (int m = 0; m <= mmax; ++m)
            f[m] = 1.0 / (2.0 * m + 1.0);
        return f;
    }

    if (t < 35.0) {
        // Series at the top order, stable downward recursion below:
        // F_m(T) = (2T F_{m+1}(T) + exp(-T)) / (2m + 1).
        f[mmax] = boysSeries(mmax, t);
        const double et = std::exp(-t);
        for (int m = mmax - 1; m >= 0; --m)
            f[m] = (2.0 * t * f[m + 1] + et) / (2.0 * m + 1.0);
        return f;
    }

    // Large T: F_0 = sqrt(pi/T)/2 to machine precision, upward
    // recursion is stable when 2T dominates (T >= 35 >> m here).
    f[0] = 0.5 * std::sqrt(M_PI / t);
    const double et = std::exp(-t);
    for (int m = 1; m <= mmax; ++m)
        f[m] = ((2.0 * m - 1.0) * f[m - 1] - et) / (2.0 * t);
    return f;
}

} // namespace qcc
