#include "chem/molecules.hh"

#include <cmath>

#include "common/logging.hh"

namespace qcc {

namespace {

Molecule
diatomic(const std::string &a, const std::string &b, double bond)
{
    Molecule m;
    m.addAtomAngstrom(a, 0, 0, 0);
    m.addAtomAngstrom(b, 0, 0, bond);
    return m;
}

Molecule
buildBeH2(double bond)
{
    Molecule m;
    m.addAtomAngstrom("Be", 0, 0, 0);
    m.addAtomAngstrom("H", 0, 0, bond);
    m.addAtomAngstrom("H", 0, 0, -bond);
    return m;
}

Molecule
buildH2O(double bond)
{
    // Fixed HOH angle of 104.45 degrees, symmetric stretch.
    const double half = 104.45 / 2.0 * M_PI / 180.0;
    Molecule m;
    m.addAtomAngstrom("O", 0, 0, 0);
    m.addAtomAngstrom("H", bond * std::sin(half), 0,
                      bond * std::cos(half));
    m.addAtomAngstrom("H", -bond * std::sin(half), 0,
                      bond * std::cos(half));
    return m;
}

Molecule
buildBH3(double bond)
{
    // Trigonal planar.
    Molecule m;
    m.addAtomAngstrom("B", 0, 0, 0);
    for (int k = 0; k < 3; ++k) {
        double phi = 2.0 * M_PI * k / 3.0;
        m.addAtomAngstrom("H", bond * std::cos(phi),
                          bond * std::sin(phi), 0);
    }
    return m;
}

Molecule
buildNH3(double bond)
{
    // Pyramidal with fixed HNH angle 106.8 degrees: hydrogens on a
    // cone around z at polar angle theta with
    // cos(HNH) = cos^2(theta) - sin^2(theta)/2.
    const double cosHnh = std::cos(106.8 * M_PI / 180.0);
    const double cosTheta = std::sqrt((cosHnh + 0.5) / 1.5);
    const double sinTheta = std::sqrt(1.0 - cosTheta * cosTheta);
    Molecule m;
    m.addAtomAngstrom("N", 0, 0, 0);
    for (int k = 0; k < 3; ++k) {
        double phi = 2.0 * M_PI * k / 3.0;
        m.addAtomAngstrom("H", bond * sinTheta * std::cos(phi),
                          bond * sinTheta * std::sin(phi),
                          bond * cosTheta);
    }
    return m;
}

Molecule
buildCH4(double bond)
{
    const double r = bond / std::sqrt(3.0);
    Molecule m;
    m.addAtomAngstrom("C", 0, 0, 0);
    m.addAtomAngstrom("H", r, r, r);
    m.addAtomAngstrom("H", r, -r, -r);
    m.addAtomAngstrom("H", -r, r, -r);
    m.addAtomAngstrom("H", -r, -r, r);
    return m;
}

const std::vector<BenchmarkMolecule> catalog = {
    {"H2", [](double b) { return diatomic("H", "H", b); },
     0, -1, 0.74, 0.3, 2.1, 4, 3},
    {"LiH", [](double b) { return diatomic("Li", "H", b); },
     1, 3, 1.60, 0.9, 2.7, 6, 8},
    {"NaH", [](double b) { return diatomic("Na", "H", b); },
     5, 4, 1.90, 1.2, 3.0, 8, 15},
    {"HF", [](double b) { return diatomic("F", "H", b); },
     1, -1, 0.92, 0.5, 2.0, 10, 24},
    {"BeH2", buildBeH2, 1, -1, 1.33, 0.8, 2.4, 12, 92},
    {"H2O", buildH2O, 1, -1, 0.96, 0.6, 2.0, 12, 92},
    {"BH3", buildBH3, 1, -1, 1.19, 0.8, 2.2, 14, 204},
    {"NH3", buildNH3, 1, -1, 1.01, 0.7, 2.0, 14, 204},
    {"CH4", buildCH4, 1, -1, 1.09, 0.7, 2.0, 16, 360},
};

} // namespace

const std::vector<BenchmarkMolecule> &
benchmarkMolecules()
{
    return catalog;
}

const BenchmarkMolecule &
benchmarkMolecule(const std::string &name)
{
    for (const auto &m : catalog)
        if (m.name == name)
            return m;
    fatal("benchmarkMolecule: unknown molecule " + name);
}

} // namespace qcc
