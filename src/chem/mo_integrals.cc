#include "chem/mo_integrals.hh"

#include "common/logging.hh"

namespace qcc {

MoIntegrals
transformToMo(const IntegralTables &ints, const Matrix &c,
              double nuclear_repulsion)
{
    const size_t n = ints.nbf;
    if (c.rows() != n)
        panic("transformToMo: coefficient shape mismatch");
    const size_t m = c.cols();

    MoIntegrals out;
    out.nOrb = m;
    out.coreEnergy = nuclear_repulsion;

    // One-electron part.
    Matrix hAo = ints.t + ints.v;
    out.h = c.t() * hAo * c;

    // Two-electron part: transform one index at a time.
    auto idx = [](size_t a, size_t b, size_t cc, size_t d, size_t dim) {
        return ((a * dim + b) * dim + cc) * dim + d;
    };

    // Step 1: (uv|ls) -> (pv|ls)
    std::vector<double> t1(m * n * n * n, 0.0);
    for (size_t p = 0; p < m; ++p)
        for (size_t u = 0; u < n; ++u) {
            const double cpu = c(u, p);
            if (cpu == 0.0)
                continue;
            for (size_t v = 0; v < n; ++v)
                for (size_t l = 0; l < n; ++l)
                    for (size_t s = 0; s < n; ++s)
                        t1[((p * n + v) * n + l) * n + s] +=
                            cpu * ints.eri[idx(u, v, l, s, n)];
        }

    // Step 2: (pv|ls) -> (pq|ls)
    std::vector<double> t2(m * m * n * n, 0.0);
    for (size_t q = 0; q < m; ++q)
        for (size_t v = 0; v < n; ++v) {
            const double cqv = c(v, q);
            if (cqv == 0.0)
                continue;
            for (size_t p = 0; p < m; ++p)
                for (size_t l = 0; l < n; ++l)
                    for (size_t s = 0; s < n; ++s)
                        t2[((p * m + q) * n + l) * n + s] +=
                            cqv * t1[((p * n + v) * n + l) * n + s];
        }
    t1.clear();
    t1.shrink_to_fit();

    // Step 3: (pq|ls) -> (pq|rs)
    std::vector<double> t3(m * m * m * n, 0.0);
    for (size_t r = 0; r < m; ++r)
        for (size_t l = 0; l < n; ++l) {
            const double crl = c(l, r);
            if (crl == 0.0)
                continue;
            for (size_t p = 0; p < m; ++p)
                for (size_t q = 0; q < m; ++q)
                    for (size_t s = 0; s < n; ++s)
                        t3[((p * m + q) * m + r) * n + s] +=
                            crl * t2[((p * m + q) * n + l) * n + s];
        }
    t2.clear();
    t2.shrink_to_fit();

    // Step 4: (pq|rs_AO) -> (pq|rs)
    out.eri.assign(m * m * m * m, 0.0);
    for (size_t s2 = 0; s2 < m; ++s2)
        for (size_t s = 0; s < n; ++s) {
            const double css = c(s, s2);
            if (css == 0.0)
                continue;
            for (size_t p = 0; p < m; ++p)
                for (size_t q = 0; q < m; ++q)
                    for (size_t r = 0; r < m; ++r)
                        out.eri[idx(p, q, r, s2, m)] +=
                            css * t3[((p * m + q) * m + r) * n + s];
        }
    return out;
}

} // namespace qcc
