#include "chem/hartree_fock.hh"

#include <cmath>
#include <deque>

#include "common/linalg.hh"
#include "common/logging.hh"

namespace qcc {

namespace {

/** Two-electron part of the Fock matrix: G = 2J - K contracted with D. */
Matrix
buildG(const IntegralTables &ints, const Matrix &d)
{
    const size_t n = ints.nbf;
    Matrix g(n, n);
    for (size_t mu = 0; mu < n; ++mu) {
        for (size_t nu = 0; nu < n; ++nu) {
            double acc = 0.0;
            for (size_t la = 0; la < n; ++la) {
                for (size_t si = 0; si < n; ++si) {
                    acc += d(la, si) *
                        (2.0 * ints.eriAt(mu, nu, si, la) -
                         ints.eriAt(mu, la, si, nu));
                }
            }
            g(mu, nu) = acc;
        }
    }
    return g;
}

} // namespace

ScfResult
runRhf(const IntegralTables &ints, const Molecule &mol,
       const ScfOptions &opts)
{
    const size_t n = ints.nbf;
    const int nElec = mol.nElectrons();
    if (nElec % 2)
        fatal("runRhf: open-shell molecule (odd electron count)");
    const size_t nOcc = size_t(nElec / 2);
    if (nOcc > n)
        fatal("runRhf: more electron pairs than basis functions");

    const Matrix hCore = ints.t + ints.v;
    const Matrix x = invSqrtSym(ints.s);

    ScfResult res;

    // Core-Hamiltonian guess.
    auto diagonalizeFock = [&](const Matrix &f) {
        Matrix fPrime = x.t() * f * x;
        EigenSym eig = eigenSym(fPrime);
        res.orbitalEnergies = eig.values;
        res.coeffs = x * eig.vectors;
        Matrix d(n, n);
        for (size_t mu = 0; mu < n; ++mu)
            for (size_t nu = 0; nu < n; ++nu)
                for (size_t i = 0; i < nOcc; ++i)
                    d(mu, nu) +=
                        res.coeffs(mu, i) * res.coeffs(nu, i);
        return d;
    };

    Matrix d = diagonalizeFock(hCore);
    double ePrev = 0.0;

    std::deque<Matrix> diisFocks, diisErrs;

    for (int iter = 1; iter <= opts.maxIter; ++iter) {
        Matrix f = hCore + buildG(ints, d);
        const double eElec = d.dot(hCore + f);

        // DIIS error e = X^T (FDS - SDF) X.
        Matrix fds = f * d * ints.s;
        Matrix err = x.t() * (fds - fds.t()) * x;

        if (iter >= opts.diisStart) {
            diisFocks.push_back(f);
            diisErrs.push_back(err);
            if (int(diisFocks.size()) > opts.diisSize) {
                diisFocks.pop_front();
                diisErrs.pop_front();
            }
            const size_t m = diisFocks.size();
            if (m >= 2) {
                // Solve the Pulay equations.
                Matrix b(m + 1, m + 1);
                std::vector<double> rhs(m + 1, 0.0);
                for (size_t a = 0; a < m; ++a) {
                    for (size_t c = 0; c < m; ++c)
                        b(a, c) = diisErrs[a].dot(diisErrs[c]);
                    b(a, m) = b(m, a) = -1.0;
                }
                rhs[m] = -1.0;
                // A singular B matrix occurs with stale or converged
                // history; fall back to the plain Fock matrix then.
                std::vector<double> w;
                bool ok = trySolveLinear(b, rhs, w);
                if (ok) {
                    Matrix fMix(n, n);
                    for (size_t a = 0; a < m; ++a)
                        fMix += diisFocks[a] * w[a];
                    f = fMix;
                }
            }
        }

        Matrix dNew = diagonalizeFock(f);

        if (opts.mixing > 0.0)
            dNew = dNew * (1.0 - opts.mixing) + d * opts.mixing;

        double dDiff = (dNew - d).maxAbs();
        double eDiff = std::fabs(eElec - ePrev);
        d = dNew;
        ePrev = eElec;
        res.iterations = iter;

        if (dDiff < opts.convDensity && eDiff < opts.convEnergy) {
            res.converged = true;
            break;
        }
    }

    // Final energy with the converged density.
    Matrix f = hCore + buildG(ints, d);
    res.energyElectronic = d.dot(hCore + f);
    res.energyTotal = res.energyElectronic + mol.nuclearRepulsion();
    res.density = d;
    if (!res.converged)
        warn("runRhf: SCF did not converge");
    return res;
}

} // namespace qcc
