/**
 * @file
 * STO-nG expansion fitter. Instead of copying tabulated STO-3G
 * contraction data, the library re-derives it: the unit-zeta Slater
 * radial function r^{n-1} exp(-r) is least-squares fit by n_gauss
 * Gaussian primitives r^l exp(-alpha r^2) (overlap-maximizing fit,
 * Nelder-Mead over log-exponents, linear solve for coefficients).
 * Scaling to an element's zeta multiplies exponents by zeta^2; the
 * coefficients, expressed over radially normalized primitives, are
 * invariant under that scaling.
 */

#ifndef QCC_CHEM_STO_NG_HH
#define QCC_CHEM_STO_NG_HH

#include <vector>

namespace qcc {

/** Result of fitting one Slater shell with Gaussians at zeta = 1. */
struct StoFit
{
    /** Gaussian exponents, descending. */
    std::vector<double> exponents;
    /** Coefficients over radially normalized primitives. */
    std::vector<double> coeffs;
    /** Achieved normalized overlap with the Slater target (<= 1). */
    double overlap;
};

/**
 * Fit the (n, l) Slater shell at zeta = 1 with n_gauss primitives.
 * Results are cached: repeated calls are free. Supported: 1s, 2s, 2p,
 * 3s, 3p with 1 <= n_gauss <= 6.
 */
const StoFit &stoNgFit(int n, int l, int n_gauss = 3);

} // namespace qcc

#endif // QCC_CHEM_STO_NG_HH
