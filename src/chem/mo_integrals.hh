/**
 * @file
 * AO-to-MO integral transformation. Produces the one-electron matrix
 * and the chemist-notation (pq|rs) tensor over molecular orbitals,
 * the inputs to second quantization.
 */

#ifndef QCC_CHEM_MO_INTEGRALS_HH
#define QCC_CHEM_MO_INTEGRALS_HH

#include <vector>

#include "chem/integrals.hh"
#include "common/matrix.hh"

namespace qcc {

/** MO-basis integrals plus the constant (nuclear) energy offset. */
struct MoIntegrals
{
    size_t nOrb = 0;
    Matrix h;                 ///< one-electron integrals h_pq
    std::vector<double> eri;  ///< chemist (pq|rs), dense
    double coreEnergy = 0.0;  ///< nuclear repulsion (+ frozen core)

    double
    eriAt(size_t p, size_t q, size_t r, size_t s) const
    {
        return eri[((p * nOrb + q) * nOrb + r) * nOrb + s];
    }

    double &
    eriRef(size_t p, size_t q, size_t r, size_t s)
    {
        return eri[((p * nOrb + q) * nOrb + r) * nOrb + s];
    }
};

/**
 * Transform AO integrals into the MO basis defined by coefficient
 * matrix c (columns = MOs). The O(N^5) stepwise algorithm.
 */
MoIntegrals transformToMo(const IntegralTables &ints, const Matrix &c,
                          double nuclear_repulsion);

} // namespace qcc

#endif // QCC_CHEM_MO_INTEGRALS_HH
