/**
 * @file
 * Boys function F_m(T) = int_0^1 t^{2m} exp(-T t^2) dt, the special
 * function at the heart of Gaussian Coulomb integrals.
 */

#ifndef QCC_CHEM_BOYS_HH
#define QCC_CHEM_BOYS_HH

#include <vector>

namespace qcc {

/**
 * Evaluate F_0..F_mmax at T. Uses the Taylor series at small T and
 * the asymptotic form plus stable downward recursion at large T.
 *
 * @param mmax highest order required
 * @param t    argument (>= 0)
 * @return vector of mmax+1 values
 */
std::vector<double> boys(int mmax, double t);

} // namespace qcc

#endif // QCC_CHEM_BOYS_HH
