#include "chem/molecule.hh"

#include <cmath>

#include "chem/elements.hh"

namespace qcc {

int
Molecule::nElectrons() const
{
    int n = -charge;
    for (const auto &a : atoms)
        n += a.z;
    return n;
}

double
Molecule::nuclearRepulsion() const
{
    double e = 0.0;
    for (size_t i = 0; i < atoms.size(); ++i) {
        for (size_t j = i + 1; j < atoms.size(); ++j) {
            double d2 = 0.0;
            for (int k = 0; k < 3; ++k) {
                double d = atoms[i].pos[k] - atoms[j].pos[k];
                d2 += d * d;
            }
            e += atoms[i].z * atoms[j].z / std::sqrt(d2);
        }
    }
    return e;
}

void
Molecule::addAtomAngstrom(const std::string &symbol, double x, double y,
                          double z)
{
    const Element &el = elementBySymbol(symbol);
    atoms.push_back({el.z,
                     {x * angstromToBohr, y * angstromToBohr,
                      z * angstromToBohr}});
}

} // namespace qcc
