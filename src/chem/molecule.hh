/**
 * @file
 * Molecular geometry: atoms with positions in Bohr, electron count,
 * and nuclear repulsion energy.
 */

#ifndef QCC_CHEM_MOLECULE_HH
#define QCC_CHEM_MOLECULE_HH

#include <array>
#include <string>
#include <vector>

namespace qcc {

/** Conversion factor: 1 Angstrom in Bohr. */
constexpr double angstromToBohr = 1.8897259886;

/** One atom: atomic number and Cartesian position (Bohr). */
struct Atom
{
    int z;
    std::array<double, 3> pos;
};

/** A molecule: atoms plus total charge. */
struct Molecule
{
    std::vector<Atom> atoms;
    int charge = 0;

    /** Number of electrons (sum of Z minus charge). */
    int nElectrons() const;

    /** Nuclear-nuclear repulsion energy in Hartree. */
    double nuclearRepulsion() const;

    /** Append an atom given a symbol and Angstrom coordinates. */
    void addAtomAngstrom(const std::string &symbol, double x, double y,
                         double z);
};

} // namespace qcc

#endif // QCC_CHEM_MOLECULE_HH
