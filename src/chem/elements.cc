#include "chem/elements.hh"

#include "common/logging.hh"

namespace qcc {

namespace {

/**
 * Slater zetas: H-F values are the standard STO-3G "best atom"
 * exponents (Hehre, Stewart, Pople 1969); the Na valence zeta follows
 * Clementi-Raimondi since the original third-row fit tables are not
 * reproduced here (see DESIGN.md substitution notes).
 */
const std::vector<Element> table = {
    {1, "H", {{1, 0, 1.24}}},
    {2, "He", {{1, 0, 1.69}}},
    {3, "Li", {{1, 0, 2.69}, {2, 0, 0.80}, {2, 1, 0.80}}},
    {4, "Be", {{1, 0, 3.68}, {2, 0, 1.15}, {2, 1, 1.15}}},
    {5, "B", {{1, 0, 4.68}, {2, 0, 1.50}, {2, 1, 1.50}}},
    {6, "C", {{1, 0, 5.67}, {2, 0, 1.72}, {2, 1, 1.72}}},
    {7, "N", {{1, 0, 6.67}, {2, 0, 1.95}, {2, 1, 1.95}}},
    {8, "O", {{1, 0, 7.66}, {2, 0, 2.25}, {2, 1, 2.25}}},
    {9, "F", {{1, 0, 8.65}, {2, 0, 2.55}, {2, 1, 2.55}}},
    {11, "Na",
     {{1, 0, 10.61},
      {2, 0, 3.48},
      {2, 1, 3.48},
      {3, 0, 0.836},
      {3, 1, 0.836}}},
};

} // namespace

const Element &
elementByZ(int z)
{
    for (const auto &e : table)
        if (e.z == z)
            return e;
    fatal("elementByZ: unsupported atomic number " + std::to_string(z));
}

const Element &
elementBySymbol(const std::string &symbol)
{
    for (const auto &e : table)
        if (e.symbol == symbol)
            return e;
    fatal("elementBySymbol: unknown symbol " + symbol);
}

} // namespace qcc
