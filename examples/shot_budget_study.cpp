/**
 * @file
 * Measurement-cost study: how many shots does a sampled VQE need?
 * Runs the H2 ground-state problem through the Experiment facade in
 * sampled mode across a sweep of per-evaluation shot budgets,
 * comparing each converged energy against the analytic
 * (infinite-shot) optimum and printing the total measurement bill.
 * With QCC_JSON set, each run's structured record (spec, energies,
 * full per-iteration trace) lands in RESULT_shot_budget_<shots>.json.
 *
 * Reproducible end to end from QCC_SEED; QCC_SHOTS overrides the
 * default budget of the final column.
 */

#include <cmath>
#include <cstdio>
#include <string>

#include "api/experiment.hh"
#include "common/logging.hh"

int
main()
{
    using namespace qcc;
    setVerbose(false);

    std::printf("== Shot-budget study: sampled VQE on H2 ==\n");
    std::printf("(seed %llu; chemical accuracy is 1.6 mHa)\n\n",
                (unsigned long long)globalSeed());

    ExperimentResult analytic = Experiment::builder()
                                    .molecule("H2")
                                    .bond(0.74)
                                    .build()
                                    .run();
    std::printf("analytic VQE: %.6f Ha (FCI %.6f)\n\n",
                analytic.energy(), analytic.fci);

    ExperimentBuilder sampled = Experiment::builder();
    sampled.molecule("H2").bond(0.74).reference(false);
    sampled.mode("sampled").optimizer("spsa").spsaIter(200);

    std::printf("%-10s %12s %12s %12s %10s\n", "shots/eval",
                "energy", "err (mHa)", "total shots", "sigma");
    for (uint64_t shots :
         {uint64_t{1024}, uint64_t{8192}, uint64_t{65536},
          SamplingOptions::defaultShots() * 16}) {
        ExperimentResult res =
            sampled.shots(shots).build().run();
        const auto &last = res.trace.points.back();
        std::printf("%-10llu %12.6f %12.3f %12llu %10.2e\n",
                    (unsigned long long)shots, res.energy(),
                    1e3 * (res.energy() - analytic.energy()),
                    (unsigned long long)res.shots,
                    std::sqrt(last.variance));
        res.write("shot_budget_" + std::to_string(shots));
    }

    std::printf("\nshot noise shrinks as 1/sqrt(shots); past the "
                "crossover the optimizer, not the\nmeasurement "
                "budget, limits accuracy — the shot-frugal grouped "
                "allocation is what\nmoves that crossover left.\n");
    return 0;
}
