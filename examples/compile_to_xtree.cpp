/**
 * @file
 * Compiler-pipeline walkthrough: take the NH3 UCCSD program at
 * several compression ratios and compile it through three registry
 * presets — "mtr" (hierarchical layout + Merge-to-Root) on XTree17Q,
 * "sabre" on the same tree, and "sabre" on the Grid17Q baseline — a
 * single-molecule slice of the paper's Table II. Devices come from
 * the api makeDevice parser and pipeline configurations from the
 * PipelinePresetRegistry; the per-pass PipelineReport of one compile
 * is printed, the circuit cache is demonstrated by recompiling with
 * fresh parameters, and the compiled circuit is exported to
 * OpenQASM.
 */

#include <cstdio>
#include <fstream>

#include "ansatz/compression.hh"
#include "ansatz/uccsd.hh"
#include "api/experiment.hh"
#include "common/logging.hh"
#include "ferm/hamiltonian.hh"

int
main()
{
    using namespace qcc;
    setVerbose(false);

    std::printf("== Compiling NH3 (14 qubits) onto XTree17Q ==\n\n");
    const auto &entry = benchmarkMolecule("NH3");
    MolecularProblem prob =
        buildMolecularProblem(entry, entry.equilibriumBond);
    Ansatz full = buildUccsd(prob.nSpatial, prob.nElectrons);
    std::printf("full UCCSD: %u params, %zu Pauli strings\n\n",
                full.nParams, full.numStrings());

    Device tree = makeDevice("xtree17");
    Device grid = makeDevice("grid17");

    // One pipeline per registry preset; every compile below routes
    // through a PassManager that times each pass and re-checks the
    // coupling invariant after every mutating stage.
    const auto &presets = pipelinePresetRegistry();
    CompilerPipeline chainPipe(presets.get("chain")());
    CompilerPipeline mtrPipe(*tree.tree, presets.get("mtr")());
    CompilerPipeline sabTreePipe(*tree.tree, presets.get("sabre")());
    CompilerPipeline sabGridPipe(*grid.graph,
                                 presets.get("sabre")());

    std::printf("pipeline passes:");
    for (const std::string &name : mtrPipe.passNames())
        std::printf(" %s", name.c_str());
    std::printf("\n\n");

    std::printf("%-7s %10s %12s %14s %14s\n", "ratio", "CNOTs",
                "MtR ovh", "SAB/XTree ovh", "SAB/Grid ovh");
    for (double ratio : {0.1, 0.3, 0.5}) {
        CompressedAnsatz comp =
            compressAnsatz(full, prob.hamiltonian, ratio);
        std::vector<double> zeros(comp.ansatz.nParams, 0.0);

        CompileResult chain = chainPipe.compile(comp.ansatz, zeros);
        CompileResult mtr = mtrPipe.compile(comp.ansatz, zeros);
        CompileResult st = sabTreePipe.compile(comp.ansatz, zeros);
        CompileResult sg = sabGridPipe.compile(comp.ansatz, zeros);

        std::printf("%-6.0f%% %10zu %12zu %14zu %14zu\n",
                    100 * ratio, chain.circuit.cnotCount(),
                    mtr.overheadCnots(), st.overheadCnots(),
                    sg.overheadCnots());
    }

    // Per-pass accounting for the 10% program (through an uncached
    // pipeline so the full pass sequence actually runs), then a
    // cached recompile with fresh parameters to show the cache
    // rebinding angles instead of re-running layout + routing.
    CompressedAnsatz comp =
        compressAnsatz(full, prob.hamiltonian, 0.1);
    std::vector<double> zeros(comp.ansatz.nParams, 0.0);
    PipelineOptions reportOpts = presets.get("mtr")();
    reportOpts.useCache = false;
    CompilerPipeline reportPipe(*tree.tree, reportOpts);
    CompileResult mtr = reportPipe.compile(comp.ansatz, zeros);
    std::printf("\nPipelineReport for NH3@10%% (MtR flow):\n%s",
                mtr.report.str().c_str());

    std::vector<double> bumped(comp.ansatz.nParams, 0.05);
    CompileResult again = mtrPipe.compile(comp.ansatz, bumped);
    std::printf("\nrecompile with new parameters: %.3f ms%s\n",
                again.report.totalMillis,
                again.report.cacheHit ? "  [cache hit]" : "");

    // Export the 10% program as OpenQASM for external toolchains.
    std::ofstream out("nh3_xtree17q.qasm");
    out << mtr.circuit.toQasm();
    std::printf("\nwrote nh3_xtree17q.qasm (%zu gates, depth %zu)\n",
                mtr.circuit.totalGates(), mtr.circuit.depth());
    return 0;
}
