/**
 * @file
 * Compiler walkthrough: take the NH3 UCCSD program at several
 * compression ratios, place it with the hierarchical initial layout
 * and compile with Merge-to-Root onto XTree17Q, and compare the
 * mapping overhead against chain-synthesis + SABRE on the same tree
 * and on the Grid17Q baseline — a single-molecule slice of the
 * paper's Table II, with the compiled circuit exported to OpenQASM.
 */

#include <cstdio>
#include <fstream>

#include "ansatz/compression.hh"
#include "ansatz/uccsd.hh"
#include "arch/grid.hh"
#include "chem/molecules.hh"
#include "common/logging.hh"
#include "compiler/chain_synthesis.hh"
#include "compiler/merge_to_root.hh"
#include "compiler/sabre.hh"
#include "compiler/verify.hh"
#include "ferm/hamiltonian.hh"

int
main()
{
    using namespace qcc;
    setVerbose(false);

    std::printf("== Compiling NH3 (14 qubits) onto XTree17Q ==\n\n");
    const auto &entry = benchmarkMolecule("NH3");
    MolecularProblem prob =
        buildMolecularProblem(entry, entry.equilibriumBond);
    Ansatz full = buildUccsd(prob.nSpatial, prob.nElectrons);
    std::printf("full UCCSD: %u params, %zu Pauli strings\n\n",
                full.nParams, full.numStrings());

    XTree tree = makeXTree(17);
    CouplingGraph grid = makeGrid17Q();

    std::printf("%-7s %10s %12s %14s %14s\n", "ratio", "CNOTs",
                "MtR ovh", "SAB/XTree ovh", "SAB/Grid ovh");
    for (double ratio : {0.1, 0.3, 0.5}) {
        CompressedAnsatz comp =
            compressAnsatz(full, prob.hamiltonian, ratio);
        std::vector<double> zeros(comp.ansatz.nParams, 0.0);

        Circuit chain =
            synthesizeChainCircuit(comp.ansatz, zeros, true);
        MtrResult mtr = mergeToRootCompile(comp.ansatz, zeros, tree);
        SabreResult st = sabreCompile(
            chain, tree.graph,
            Layout::identity(chain.numQubits(), 17));
        SabreResult sg = sabreCompile(
            chain, grid, Layout::identity(chain.numQubits(), 17));

        if (!respectsCoupling(mtr.circuit, tree.graph))
            fatal("compiled circuit violates coupling");

        std::printf("%-6.0f%% %10zu %12zu %14zu %14zu\n",
                    100 * ratio, chain.cnotCount(),
                    mtr.overheadCnots(), st.overheadCnots(),
                    sg.overheadCnots());
    }

    // Export the 10% program as OpenQASM for external toolchains.
    CompressedAnsatz comp =
        compressAnsatz(full, prob.hamiltonian, 0.1);
    std::vector<double> zeros(comp.ansatz.nParams, 0.0);
    MtrResult mtr = mergeToRootCompile(comp.ansatz, zeros, tree);
    std::ofstream out("nh3_xtree17q.qasm");
    out << mtr.circuit.toQasm();
    std::printf("\nwrote nh3_xtree17q.qasm (%zu gates, depth %zu)\n",
                mtr.circuit.totalGates(), mtr.circuit.depth());
    return 0;
}
