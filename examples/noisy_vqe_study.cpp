/**
 * @file
 * Noise trade-off study (the Section VI-D experiment in miniature):
 * for LiH at equilibrium, sweep compression ratio and CNOT error
 * rate, evaluating the converged noise-free parameters on the noisy
 * density-matrix simulator. More parameters help accuracy until the
 * extra CNOT noise masks them — the paper's "sweet spot" effect.
 */

#include <cstdio>

#include "ansatz/compression.hh"
#include "ansatz/uccsd.hh"
#include "chem/molecules.hh"
#include "common/logging.hh"
#include "ferm/hamiltonian.hh"
#include "sim/lanczos.hh"
#include "vqe/vqe.hh"

int
main()
{
    using namespace qcc;
    setVerbose(false);

    std::printf("== LiH noise trade-off: compression ratio vs CNOT "
                "error ==\n\n");
    const auto &entry = benchmarkMolecule("LiH");
    MolecularProblem prob = buildMolecularProblem(entry, 1.6);
    double exact = lanczosGroundEnergy(prob.hamiltonian);
    Ansatz full = buildUccsd(prob.nSpatial, prob.nElectrons);
    std::printf("exact ground state: %.6f Ha\n\n", exact);

    std::printf("%-7s", "ratio");
    const std::vector<double> errorRates = {0.0, 1e-4, 1e-3, 5e-3};
    for (double p : errorRates)
        std::printf("   err p=%-7.0e", p);
    std::printf("\n");

    for (double ratio : {0.1, 0.3, 0.5, 0.7, 0.9}) {
        CompressedAnsatz comp =
            compressAnsatz(full, prob.hamiltonian, ratio);
        VqeResult clean = runVqe(prob.hamiltonian, comp.ansatz);

        std::printf("%-6.0f%%", 100 * ratio);
        for (double p : errorRates) {
            NoiseModel nm;
            nm.cnotDepolarizing = p;
            double e = p == 0.0
                ? clean.energy
                : ansatzEnergyNoisy(prob.hamiltonian, comp.ansatz,
                                    clean.params, nm);
            std::printf("   %12.5f", e - exact);
        }
        std::printf("\n");
    }

    std::printf("\ncolumns show energy error vs exact (Ha). At "
                "higher error rates the larger ansatzes'\n"
                "extra CNOTs cost more than their parameters "
                "recover - the sweet spot moves left.\n");
    return 0;
}
