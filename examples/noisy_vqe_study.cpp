/**
 * @file
 * Noise trade-off study (the Section VI-D experiment in miniature):
 * for LiH at equilibrium, sweep compression ratio and CNOT error
 * rate, evaluating the converged noise-free parameters on the noisy
 * density-matrix simulator. More parameters help accuracy until the
 * extra CNOT noise masks them — the paper's "sweet spot" effect.
 *
 * The clean optimizations run through the Experiment facade (which
 * hands back the Hamiltonian, ansatz, and converged parameters for
 * composition); the noisy re-evaluations run on backends created
 * from the BackendRegistry — no hand-wired simulator construction.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "api/experiment.hh"
#include "common/logging.hh"
#include "vqe/vqe.hh"

int
main()
{
    using namespace qcc;
    setVerbose(false);

    std::printf("== LiH noise trade-off: compression ratio vs CNOT "
                "error ==\n\n");

    ExperimentBuilder clean = Experiment::builder();
    clean.molecule("LiH").bond(1.6);
    const std::vector<double> ratios = {0.1, 0.3, 0.5, 0.7, 0.9};
    const std::vector<double> errorRates = {0.0, 1e-4, 1e-3, 5e-3};

    // One clean optimization per ratio through the facade.
    std::vector<ExperimentResult> results;
    for (double ratio : ratios)
        results.push_back(clean.compression(ratio).build().run());
    const double exact = results.front().fci;
    std::printf("exact ground state: %.6f Ha\n\n", exact);

    // One reusable registry-built backend per error rate (p = 0
    // reuses the clean statevector energy, so no density matrix is
    // allocated for it).
    const BackendFactoryFn &makeDm =
        backendRegistry().get("density_matrix");
    std::vector<std::unique_ptr<SimBackend>> noisy(
        errorRates.size());
    for (size_t pi = 0; pi < errorRates.size(); ++pi) {
        if (errorRates[pi] == 0.0)
            continue;
        NoiseModel nm;
        nm.cnotDepolarizing = errorRates[pi];
        noisy[pi] = makeDm({results.front().nQubits, nm});
    }

    std::printf("%-7s", "ratio");
    for (double p : errorRates)
        std::printf("   err p=%-7.0e", p);
    std::printf("\n");

    for (size_t ri = 0; ri < ratios.size(); ++ri) {
        const ExperimentResult &res = results[ri];
        std::printf("%-6.0f%%", 100 * ratios[ri]);
        for (size_t pi = 0; pi < errorRates.size(); ++pi) {
            double e = errorRates[pi] == 0.0
                ? res.energy()
                : ansatzEnergy(*noisy[pi], res.hamiltonian,
                               res.ansatz, res.vqe.params);
            std::printf("   %12.5f", e - exact);
        }
        std::printf("\n");
    }

    std::printf("\ncolumns show energy error vs exact (Ha). At "
                "higher error rates the larger ansatzes'\n"
                "extra CNOTs cost more than their parameters "
                "recover - the sweet spot moves left.\n");
    return 0;
}
