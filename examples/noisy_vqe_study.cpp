/**
 * @file
 * Noise trade-off study (the Section VI-D experiment in miniature):
 * for LiH at equilibrium, sweep compression ratio and CNOT error
 * rate, evaluating the converged noise-free parameters on the noisy
 * density-matrix simulator. More parameters help accuracy until the
 * extra CNOT noise masks them — the paper's "sweet spot" effect.
 *
 * Both phases run through the pluggable SimBackend interface: the
 * clean optimization on a StatevectorBackend, the noisy re-evaluation
 * on one DensityMatrixBackend per error rate.
 */

#include <cstdio>
#include <memory>

#include "ansatz/compression.hh"
#include "ansatz/uccsd.hh"
#include "chem/molecules.hh"
#include "common/logging.hh"
#include "ferm/hamiltonian.hh"
#include "sim/backend.hh"
#include "sim/lanczos.hh"
#include "vqe/vqe.hh"

int
main()
{
    using namespace qcc;
    setVerbose(false);

    std::printf("== LiH noise trade-off: compression ratio vs CNOT "
                "error ==\n\n");
    const auto &entry = benchmarkMolecule("LiH");
    MolecularProblem prob = buildMolecularProblem(entry, 1.6);
    double exact = lanczosGroundEnergy(prob.hamiltonian);
    Ansatz full = buildUccsd(prob.nSpatial, prob.nElectrons);
    std::printf("exact ground state: %.6f Ha\n\n", exact);

    std::printf("%-7s", "ratio");
    const std::vector<double> errorRates = {0.0, 1e-4, 1e-3, 5e-3};
    for (double p : errorRates)
        std::printf("   err p=%-7.0e", p);
    std::printf("\n");

    // One backend per execution model, reused across the whole sweep
    // (p = 0 reuses the clean statevector energy, so no density
    // matrix is allocated for it).
    StatevectorBackend ideal(prob.nQubits);
    std::vector<std::unique_ptr<DensityMatrixBackend>> noisy(
        errorRates.size());
    for (size_t pi = 0; pi < errorRates.size(); ++pi) {
        if (errorRates[pi] == 0.0)
            continue;
        NoiseModel nm;
        nm.cnotDepolarizing = errorRates[pi];
        noisy[pi] =
            std::make_unique<DensityMatrixBackend>(prob.nQubits, nm);
    }

    for (double ratio : {0.1, 0.3, 0.5, 0.7, 0.9}) {
        CompressedAnsatz comp =
            compressAnsatz(full, prob.hamiltonian, ratio);
        VqeResult clean = runVqe(ideal, prob.hamiltonian, comp.ansatz);

        std::printf("%-6.0f%%", 100 * ratio);
        for (size_t pi = 0; pi < errorRates.size(); ++pi) {
            double e = errorRates[pi] == 0.0
                ? clean.energy
                : ansatzEnergy(*noisy[pi], prob.hamiltonian,
                               comp.ansatz, clean.params);
            std::printf("   %12.5f", e - exact);
        }
        std::printf("\n");
    }

    std::printf("\ncolumns show energy error vs exact (Ha). At "
                "higher error rates the larger ansatzes'\n"
                "extra CNOTs cost more than their parameters "
                "recover - the sweet spot moves left.\n");
    return 0;
}
