/**
 * @file
 * qcc_sweep — run a SweepSpec file end to end. The declarative
 * counterpart of the per-point examples: one JSON document names a
 * whole study (axes over molecules, bond ranges, compression
 * thresholds, groupings, seeds, ...), the engine fans the expanded
 * jobs over a bounded worker pool with the shared compile cache,
 * and the aggregate lands in SWEEP_<name>.json — per-job records
 * plus best-energy/curve/settings summaries. Shipped spec files
 * under examples/specs/ reproduce the Figure 10 LiH dissociation
 * curve and a Table I slice.
 *
 *   qcc_sweep specs/lih_curve.json
 *   qcc_sweep specs/table1_slice.json --concurrency 4
 *   qcc_sweep specs/table1_full.json --estimate
 *
 * --estimate re-runs any spec in resource-estimation mode (kind
 * "estimate" forced onto every job): no simulator state is ever
 * allocated, so a whole Table I costing finishes in milliseconds.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "store/store.hh"
#include "sweep/sweep_engine.hh"

using namespace qcc;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s <spec.json> [options]\n"
        "  --concurrency N   worker width (default: spec, then "
        "QCC_THREADS)\n"
        "  --cold-cache      clear the compile cache before every "
        "job\n"
        "  --store-dir DIR   persistent store root (overrides "
        "QCC_STORE_DIR)\n"
        "  --no-store        disable the persistent store\n"
        "  --estimate        force kind \"estimate\" onto every job "
        "(simulation-free costing)\n"
        "  --list            print the expanded job list and exit\n"
        "  --quiet           suppress per-job progress lines\n"
        "\nThe aggregate is written as SWEEP_<name>.json under the\n"
        "QCC_JSON convention, falling back to the current "
        "directory.\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    if (argc < 2)
        return usage(argv[0]);

    std::string specPath;
    unsigned concurrency = 0;
    bool coldCache = false, listOnly = false, quiet = false;
    bool forceEstimate = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--concurrency" && i + 1 < argc) {
            concurrency = unsigned(std::atoi(argv[++i]));
        } else if (arg == "--cold-cache") {
            coldCache = true;
        } else if (arg == "--store-dir" && i + 1 < argc) {
            setStoreDir(argv[++i]);
        } else if (arg == "--no-store") {
            setStoreEnabled(false);
        } else if (arg == "--estimate") {
            forceEstimate = true;
        } else if (arg == "--list") {
            listOnly = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else {
            specPath = arg;
        }
    }
    if (specPath.empty())
        return usage(argv[0]);

    SweepSpec spec;
    try {
        spec = SweepSpec::fromFile(specPath);
    } catch (const std::exception &e) {
        error(std::string("qcc_sweep: ") + e.what());
        return 1;
    }
    if (forceEstimate) {
        // Re-cost the same study without touching the spec file; the
        // suffixed name keeps the aggregate from clobbering a real
        // run's SWEEP_<name>.json.
        spec.name += "_estimate";
        spec.base.kind = "estimate";
        for (ExperimentSpec &job : spec.explicitJobs)
            job.kind = "estimate";
    }

    std::vector<ExperimentSpec> jobs;
    try {
        jobs = spec.expand();
    } catch (const std::exception &e) {
        error(std::string("qcc_sweep: ") + e.what());
        return 1;
    }

    std::printf("sweep '%s': %zu jobs", spec.name.c_str(),
                jobs.size());
    if (!spec.axes.empty()) {
        std::printf(" (");
        for (size_t a = 0; a < spec.axes.size(); ++a)
            std::printf("%s%s x %zu", a ? ", " : "",
                        spec.axes[a].field.c_str(),
                        spec.axes[a].values.size());
        std::printf(")");
    }
    std::printf("\n");

    if (listOnly) {
        for (size_t i = 0; i < jobs.size(); ++i)
            std::printf("  #%-3zu %-5s bond %-5.2f comp %-4.2f "
                        "%s/%s\n",
                        i, jobs[i].molecule.c_str(), jobs[i].bond,
                        jobs[i].compression, jobs[i].mode.c_str(),
                        jobs[i].optimizer.c_str());
        return 0;
    }

    SweepEngineOptions opts;
    opts.concurrency = concurrency;
    opts.coldCompileCache = coldCache;
    if (!quiet) {
        opts.progress = [](const SweepProgress &p) {
            const SweepJobRecord &r = *p.last;
            std::printf("[%zu/%zu] #%-3zu %-5s bond %-5.2f  %-9s",
                        p.completed, p.total, r.index,
                        r.spec.molecule.c_str(),
                        r.effectiveSpec().bond,
                        jobStatusName(r.status));
            if (r.finished())
                std::printf("  E = %+.6f Ha", r.result.energy());
            if (!r.error.empty())
                std::printf("  (%s)", r.error.c_str());
            std::printf("\n");
            std::fflush(stdout);
        };
    }

    SweepEngine engine(spec, opts);
    std::printf("running at concurrency %u%s...\n\n",
                engine.concurrency(),
                coldCache ? ", cold compile cache" : "");
    ResultStore store = engine.run();

    // ---- console summary ----------------------------------------
    std::printf("\n%zu done, %zu failed, %zu timed out, %zu "
                "skipped\n",
                store.countWithStatus(JobStatus::Done),
                store.countWithStatus(JobStatus::Failed),
                store.countWithStatus(JobStatus::TimedOut),
                store.countWithStatus(JobStatus::Skipped));

    // One table per kind, each with the columns that matter for it.
    bool header = false;
    for (const auto &rec : store.jobs()) {
        if (rec.status != JobStatus::Done ||
            rec.effectiveSpec().kind != "vqe")
            continue;
        if (!header) {
            std::printf("\n%-4s %-5s %-8s %14s %14s %14s\n", "job",
                        "mol", "bond(A)", "HF", "VQE", "FCI");
            header = true;
        }
        std::printf("%-4zu %-5s %-8.2f %14.6f %14.6f ",
                    rec.index, rec.spec.molecule.c_str(),
                    rec.effectiveSpec().bond,
                    rec.result.hartreeFock, rec.result.energy());
        if (rec.result.haveFci)
            std::printf("%14.6f\n", rec.result.fci);
        else
            std::printf("%14s\n", "-");
    }

    header = false;
    for (const auto &rec : store.jobs()) {
        if (rec.status != JobStatus::Done ||
            rec.effectiveSpec().kind != "evolve")
            continue;
        const TimeEvolutionResult &ev = rec.result.evolution;
        if (!header) {
            std::printf("\n%-4s %-5s %8s %6s %6s %14s %12s\n",
                        "job", "mol", "t(Ha^-1)", "steps", "order",
                        "<H>(t)", "fidelity");
            header = true;
        }
        std::printf("%-4zu %-5s %8.3f %6d %6d %14.6f ", rec.index,
                    rec.spec.molecule.c_str(), ev.time, ev.steps,
                    ev.order, ev.finalEnergy);
        if (ev.haveFidelity)
            std::printf("%12.9f\n", ev.fidelity);
        else
            std::printf("%12s\n", "-");
    }

    header = false;
    for (const auto &rec : store.jobs()) {
        if (rec.status != JobStatus::Done ||
            rec.effectiveSpec().kind != "estimate")
            continue;
        const EstimateResult &es = rec.result.estimate;
        if (!header) {
            std::printf("\n%-4s %-5s %-9s %6s %8s %8s %8s %7s "
                        "%12s\n",
                        "job", "mol", "grouping", "qubits",
                        "settings", "gates", "cnots", "depth",
                        "shot budget");
            header = true;
        }
        std::printf("%-4zu %-5s %-9s %6u %8zu %8zu %8zu %7zu "
                    "%12llu\n",
                    rec.index, rec.spec.molecule.c_str(),
                    rec.effectiveSpec().grouping.c_str(), es.qubits,
                    es.measurementSettings, es.gates, es.cnots,
                    es.depth,
                    (unsigned long long)es.shotBudget);
    }

    std::string path = store.write();
    if (path.empty()) // QCC_JSON unset: the CLI still delivers
        path = store.writeTo("SWEEP_" + store.name() + ".json");
    if (!path.empty())
        std::printf("\nwrote %s\n", path.c_str());

    if (storeEnabled()) {
        const StoreStats ss = storeStats();
        std::printf("\npersistent store (%s): circuits %zu hit / "
                    "%zu written / %zu bad; problems %zu memo + "
                    "%zu disk hit / %zu built / %zu written\n",
                    storeDir().c_str(), ss.circuitDiskHits,
                    ss.circuitDiskWrites, ss.circuitBadEntries,
                    ss.problemMemHits, ss.problemDiskHits,
                    ss.problemBuilds, ss.problemDiskWrites);
        std::string statsPath =
            qccJsonPath("STORE_" + store.name() + ".json");
        if (statsPath.empty())
            statsPath = "STORE_" + store.name() + ".json";
        if (FILE *f = std::fopen(statsPath.c_str(), "w")) {
            std::fputs(storeStatsJson().c_str(), f);
            std::fclose(f);
            std::printf("wrote %s\n", statsPath.c_str());
        }
    }

    // Telemetry documents under the same QCC_JSON convention as the
    // aggregate: a trace only when QCC_TRACE is on, metrics whenever
    // the registry is enabled.
    const std::string tracePath = writeTraceJson(store.name());
    if (!tracePath.empty())
        std::printf("wrote %s\n", tracePath.c_str());
    const std::string metricsPath = writeMetricsJson(store.name());
    if (!metricsPath.empty())
        std::printf("wrote %s\n", metricsPath.c_str());

    return store.countWithStatus(JobStatus::Failed) == 0 ? 0 : 1;
}
