/**
 * @file
 * Quickstart: end-to-end H2 ground-state estimation through the
 * qcc::Experiment facade — one spec names the molecule, the ansatz
 * compression, the evaluation mode, and the compilation target, and
 * run() assembles the whole co-optimized stack (STO-3G -> RHF ->
 * Jordan-Wigner -> UCCSD -> VQE -> Merge-to-Root on an X-Tree).
 * With QCC_JSON set, the structured records land in
 * RESULT_quickstart*.json.
 */

#include <cstdio>

#include "api/experiment.hh"
#include "common/logging.hh"

int
main()
{
    using namespace qcc;
    setVerbose(false);

    std::printf("== qcc quickstart: H2 at 0.74 Angstrom ==\n\n");

    // Full UCCSD ansatz, ideal evaluation, compiled onto XTree5Q.
    ExperimentResult res = Experiment::builder()
                               .molecule("H2")
                               .bond(0.74)
                               .pipeline("mtr")
                               .architecture("xtree5")
                               .build()
                               .run();
    std::printf("qubits: %u   Hamiltonian terms: %zu   "
                "measurement settings: %zu\n",
                res.nQubits, res.hamiltonianTerms,
                res.measurementSettings);
    std::printf("Hartree-Fock energy: %+.6f Ha\n", res.hartreeFock);
    std::printf("exact ground state:  %+.6f Ha\n", res.fci);
    std::printf("\nUCCSD: %u parameters\n", res.nParams);
    std::printf("VQE energy:          %+.6f Ha  (%d iterations)\n",
                res.energy(), res.vqe.iterations);
    std::printf("error vs exact:      %.2e Ha\n",
                res.energy() - res.fci);
    res.write("quickstart");

    // Compress the ansatz with the Hamiltonian-guided importance
    // estimate and re-run the same spec.
    ExperimentResult cres = Experiment::builder()
                                .molecule("H2")
                                .bond(0.74)
                                .compression(0.67)
                                .pipeline("mtr")
                                .architecture("xtree5")
                                .build()
                                .run();
    std::printf("\ncompressed to %u params: %+.6f Ha "
                "(%d iterations)\n",
                cres.nParams, cres.energy(), cres.vqe.iterations);
    std::printf("\ncompiled to XTree5Q: %zu gates, %zu CNOTs "
                "(mapping overhead %zu CNOTs)\n",
                cres.compiled.gates, cres.compiled.cnots,
                cres.compiled.overheadCnots);
    cres.write("quickstart_compressed");
    return 0;
}
