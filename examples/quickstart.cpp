/**
 * @file
 * Quickstart: end-to-end H2 ground-state estimation with the full
 * co-optimized stack — build the molecular Hamiltonian from scratch,
 * generate and compress the UCCSD ansatz, run VQE, and compile the
 * program onto an X-Tree processor with Merge-to-Root.
 */

#include <cstdio>

#include "ansatz/compression.hh"
#include "ansatz/uccsd.hh"
#include "common/logging.hh"
#include "chem/molecules.hh"
#include "compiler/chain_synthesis.hh"
#include "compiler/merge_to_root.hh"
#include "ferm/hamiltonian.hh"
#include "sim/lanczos.hh"
#include "vqe/vqe.hh"

int
main()
{
    using namespace qcc;
    setVerbose(false);

    std::printf("== qcc quickstart: H2 at 0.74 Angstrom ==\n\n");

    // 1. Chemistry front end: geometry -> STO-3G -> RHF -> qubit H.
    const auto &entry = benchmarkMolecule("H2");
    MolecularProblem prob = buildMolecularProblem(entry, 0.74);
    std::printf("qubits: %u   Hamiltonian terms: %zu\n", prob.nQubits,
                prob.hamiltonian.numTerms());
    std::printf("Hartree-Fock energy: %+.6f Ha\n",
                prob.hartreeFockEnergy);

    // 2. Exact ground state for reference.
    double exact = lanczosGroundEnergy(prob.hamiltonian);
    std::printf("exact ground state:  %+.6f Ha\n", exact);

    // 3. Full UCCSD ansatz and VQE.
    Ansatz full = buildUccsd(prob.nSpatial, prob.nElectrons);
    std::printf("\nUCCSD: %u parameters, %zu Pauli strings\n",
                full.nParams, full.numStrings());
    VqeResult res = runVqe(prob.hamiltonian, full);
    std::printf("VQE energy:          %+.6f Ha  (%d iterations)\n",
                res.energy, res.iterations);
    std::printf("error vs exact:      %.2e Ha\n",
                res.energy - exact);

    // 4. Compress the ansatz with the Hamiltonian-guided importance
    //    estimate and re-run.
    CompressedAnsatz comp =
        compressAnsatz(full, prob.hamiltonian, 0.67);
    VqeResult cres = runVqe(prob.hamiltonian, comp.ansatz);
    std::printf("\ncompressed to %u params: %+.6f Ha "
                "(%d iterations)\n",
                comp.ansatz.nParams, cres.energy, cres.iterations);

    // 5. Compile onto a 5-qubit X-Tree with Merge-to-Root.
    XTree tree = makeXTree(5);
    MtrResult mtr = mergeToRootCompile(comp.ansatz, cres.params, tree);
    Circuit chain = synthesizeChainCircuit(comp.ansatz, cres.params);
    std::printf("\ncompiled to XTree5Q: %zu gates, %zu CNOTs "
                "(chain plan: %zu CNOTs, overhead %zu)\n",
                mtr.circuit.totalGates(), mtr.circuit.cnotCount(),
                chain.cnotCount(), mtr.overheadCnots());
    return 0;
}
