/**
 * @file
 * Architecture design-space exploration: for tree and grid devices
 * of increasing size, allocate frequencies, simulate fabrication
 * yield, and print coupler counts — the Section IV argument that
 * N-1-coupler trees scale to larger processors at usable yield
 * while grids collapse. Devices are named with the same
 * architecture keys ExperimentSpecs use ("xtree<N>", "grid17",
 * "grid<R>x<C>") and built through the api makeDevice parser.
 */

#include <cstdio>
#include <string>

#include "api/experiment.hh"
#include "arch/yield.hh"
#include "common/logging.hh"
#include "common/rng.hh"

int
main()
{
    using namespace qcc;
    setVerbose(false);

    std::printf("== Yield exploration: X-Trees vs grids ==\n");
    std::printf("(fabrication precision 0.4 GHz, paper calibration)"
                "\n\n");
    const double sigma = 0.4 * paperPrecisionToSigma;
    const int samples = 20000;

    std::printf("%-14s %8s %9s %10s\n", "device", "qubits",
                "couplers", "yield");
    for (const char *key :
         {"xtree5", "xtree8", "xtree17", "xtree26", "grid17",
          "grid3x6", "grid4x5"}) {
        Device dev = makeDevice(key);
        const CouplingGraph &g = *dev.graph;
        auto f = allocateFrequencies(g);
        Rng rng(deriveSeed(1)); // QCC_SEED reproducible
        double y = simulateYield(g, f, sigma, samples, rng);
        std::printf("%-14s %8u %9zu %10.4f\n", dev.name.c_str(),
                    g.numQubits(), g.numEdges(), y);
    }

    std::printf("\ntrees keep the minimum N-1 couplers, so yield "
                "degrades far more slowly with size.\n");
    return 0;
}
