/**
 * @file
 * Architecture design-space exploration: for tree and grid devices
 * of increasing size, allocate frequencies, simulate fabrication
 * yield, and print coupler counts — the Section IV argument that
 * N-1-coupler trees scale to larger processors at usable yield
 * while grids collapse.
 */

#include <cstdio>

#include "arch/grid.hh"
#include "arch/xtree.hh"
#include "arch/yield.hh"
#include "common/logging.hh"
#include "common/rng.hh"

int
main()
{
    using namespace qcc;
    setVerbose(false);

    std::printf("== Yield exploration: X-Trees vs grids ==\n");
    std::printf("(fabrication precision 0.4 GHz, paper calibration)"
                "\n\n");
    const double sigma = 0.4 * paperPrecisionToSigma;
    const int samples = 20000;

    std::printf("%-14s %8s %9s %10s\n", "device", "qubits",
                "couplers", "yield");
    for (unsigned n : {5u, 8u, 17u, 26u}) {
        XTree t = makeXTree(n);
        auto f = allocateFrequencies(t.graph);
        Rng rng(deriveSeed(1)); // QCC_SEED reproducible
        double y = simulateYield(t.graph, f, sigma, samples, rng);
        std::printf("XTree%-9u %8u %9zu %10.4f\n", n, n,
                    t.graph.numEdges(), y);
    }
    {
        CouplingGraph g = makeGrid17Q();
        auto f = allocateFrequencies(g);
        Rng rng(deriveSeed(1)); // QCC_SEED reproducible
        double y = simulateYield(g, f, sigma, samples, rng);
        std::printf("%-14s %8u %9zu %10.4f\n", "Grid17Q", 17,
                    g.numEdges(), y);
    }
    for (unsigned rows : {3u, 4u}) {
        unsigned cols = rows == 3 ? 6 : 5;
        CouplingGraph g = makeGrid(rows, cols);
        auto f = allocateFrequencies(g);
        Rng rng(deriveSeed(1)); // QCC_SEED reproducible
        double y = simulateYield(g, f, sigma, samples, rng);
        std::printf("Grid%ux%-9u %8u %9zu %10.4f\n", rows, cols,
                    rows * cols, g.numEdges(), y);
    }

    std::printf("\ntrees keep the minimum N-1 couplers, so yield "
                "degrades far more slowly with size.\n");
    return 0;
}
