/**
 * @file
 * Dissociation-curve study (the Figure 3 workflow): sweep the LiH
 * bond length, at each point build the Hamiltonian, run VQE with the
 * 50%-compressed ansatz, and print the energy landscape next to the
 * exact ground state and the Hartree-Fock reference. The minimum of
 * the printed curve is the predicted equilibrium bond length.
 */

#include <cstdio>

#include "ansatz/compression.hh"
#include "ansatz/uccsd.hh"
#include "chem/molecules.hh"
#include "common/logging.hh"
#include "ferm/hamiltonian.hh"
#include "sim/lanczos.hh"
#include "vqe/vqe.hh"

int
main()
{
    using namespace qcc;
    setVerbose(false);

    std::printf("== LiH dissociation curve, 50%% compressed UCCSD "
                "==\n\n");
    std::printf("%-8s %14s %14s %14s %10s\n", "bond(A)", "HF",
                "VQE(50%)", "exact", "iters");

    double bestBond = 0, bestEnergy = 1e9;
    const auto &entry = benchmarkMolecule("LiH");
    for (double bond = 1.0; bond <= 2.6 + 1e-9; bond += 0.2) {
        MolecularProblem prob = buildMolecularProblem(entry, bond);
        double exact = lanczosGroundEnergy(prob.hamiltonian);

        Ansatz full = buildUccsd(prob.nSpatial, prob.nElectrons);
        CompressedAnsatz comp =
            compressAnsatz(full, prob.hamiltonian, 0.5);
        VqeResult res = runVqe(prob.hamiltonian, comp.ansatz);

        std::printf("%-8.2f %14.6f %14.6f %14.6f %10d\n", bond,
                    prob.hartreeFockEnergy, res.energy, exact,
                    res.iterations);
        if (res.energy < bestEnergy) {
            bestEnergy = res.energy;
            bestBond = bond;
        }
    }
    std::printf("\npredicted equilibrium bond length: %.2f A "
                "(experiment: ~1.60 A)\n",
                bestBond);
    return 0;
}
