/**
 * @file
 * Dissociation-curve study (the Figure 3 workflow): sweep the LiH
 * bond length through the Experiment facade — one spec per point,
 * 50%-compressed UCCSD — and print the energy landscape next to the
 * exact ground state and the Hartree-Fock reference. The minimum of
 * the printed curve is the predicted equilibrium bond length.
 */

#include <cstdio>

#include "api/experiment.hh"
#include "common/logging.hh"

int
main()
{
    using namespace qcc;
    setVerbose(false);

    std::printf("== LiH dissociation curve, 50%% compressed UCCSD "
                "==\n\n");
    std::printf("%-8s %14s %14s %14s %10s\n", "bond(A)", "HF",
                "VQE(50%)", "exact", "iters");

    ExperimentBuilder point = Experiment::builder();
    point.molecule("LiH").compression(0.5);

    double bestBond = 0, bestEnergy = 1e9;
    for (double bond = 1.0; bond <= 2.6 + 1e-9; bond += 0.2) {
        ExperimentResult res = point.bond(bond).build().run();
        std::printf("%-8.2f %14.6f %14.6f %14.6f %10d\n", bond,
                    res.hartreeFock, res.energy(), res.fci,
                    res.vqe.iterations);
        if (res.energy() < bestEnergy) {
            bestEnergy = res.energy();
            bestBond = bond;
        }
    }
    std::printf("\npredicted equilibrium bond length: %.2f A "
                "(experiment: ~1.60 A)\n",
                bestBond);
    return 0;
}
