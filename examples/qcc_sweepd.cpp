/**
 * @file
 * qcc_sweepd — the process-per-job sweep service. Accepts SweepSpec
 * JSON jobs (spec-file paths on the command line, then — in server
 * mode — one path per line on stdin), expands each with the shared
 * sweep machinery, and runs every job in a forked worker process
 * (`qcc_sweepd --worker`, the same binary): a hard per-job timeout
 * kills and reaps over-budget workers, a crashing job records one
 * failed entry instead of killing the service, and workers share
 * the QCC_STORE_DIR persistent cache across processes. The
 * aggregate SWEEP_<name>.json is rewritten after every job, so a
 * killed service resumes where it left off: resubmitting the same
 * spec adopts every completed job whose spec_hash still matches and
 * re-runs only the rest (see docs/sweepd.md).
 *
 *   qcc_sweepd specs/ci_smoke.json                 # one-shot
 *   qcc_sweepd --serve < job_paths.txt             # long-running
 *   qcc_sweepd specs/big.json --timeout-ms 60000 --concurrency 4
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "store/store.hh"
#include "sweepd/service.hh"
#include "sweepd/worker.hh"

using namespace qcc;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [<spec.json> ...] [options]\n"
        "       %s --serve [options]     read spec paths from "
        "stdin, one per line\n"
        "       %s --worker              (internal) run one job "
        "from stdin\n"
        "  --concurrency N   worker-pool width (default: spec, "
        "then QCC_THREADS)\n"
        "  --timeout-ms X    hard per-job budget; over-budget "
        "workers are killed\n"
        "                    (default: the spec's job_timeout_ms)\n"
        "  --retries N       extra attempts after retryable "
        "failures\n"
        "  --no-resume       ignore an existing SWEEP_<name>.json\n"
        "  --no-width-cap    don't split QCC_THREADS across "
        "workers\n"
        "  --store-dir DIR   persistent store root (overrides "
        "QCC_STORE_DIR)\n"
        "  --no-store        disable the persistent store\n"
        "  --quiet           suppress per-job progress lines\n"
        "\nThe aggregate is rewritten as SWEEP_<name>.json (QCC_JSON"
        "\nconvention, falling back to the current directory) after"
        "\nevery job, so a killed service can be resumed by simply"
        "\nresubmitting the same spec.\n",
        argv0, argv0, argv0);
    return 2;
}

/** Run one spec file through the service; 0/1 like qcc_sweep. */
int
runSpec(sweepd::SweepdService &service, const std::string &path)
{
    SweepSpec spec;
    try {
        spec = SweepSpec::fromFile(path);
    } catch (const std::exception &e) {
        error(std::string("qcc_sweepd: ") + e.what());
        return 1;
    }

    // Telemetry is per-submission: each spec (including each line
    // in serve mode) gets its own TRACE_EVENTS/METRICS documents,
    // and the registry counters line up with exactly this run's
    // worker-reported totals.
    clearTrace();
    resetMetrics();

    std::printf("sweep '%s': %zu jobs at concurrency %u\n",
                spec.name.c_str(), spec.jobCount(),
                service.concurrency(spec));
    std::fflush(stdout);

    sweepd::SweepdRunStats stats;
    try {
        ResultStore store = service.submit(spec, &stats);
        std::printf("'%s': %zu done (%zu resumed), %zu failed, "
                    "%zu timed out\n",
                    spec.name.c_str(),
                    store.countWithStatus(JobStatus::Done),
                    stats.resumed,
                    store.countWithStatus(JobStatus::Failed),
                    store.countWithStatus(JobStatus::TimedOut));
        std::string written = stats.writtenPath;
        if (written.empty()) // QCC_JSON unset: still deliver
            written =
                store.writeTo("SWEEP_" + store.name() + ".json");
        if (!written.empty())
            std::printf("wrote %s\n", written.c_str());

        // Ground truth for the merged telemetry: the sum of what
        // every done worker reported in its reply. The trace-smoke
        // CI job parses this line and asserts the METRICS document
        // agrees with it.
        const sweepd::WorkerStoreStats &w = stats.workers;
        std::printf("workers: compile_hits=%llu "
                    "compile_misses=%llu circuit_disk_hits=%llu "
                    "problem_builds=%llu problem_disk_hits=%llu "
                    "problem_mem_hits=%llu\n",
                    (unsigned long long)w.compileHits,
                    (unsigned long long)w.compileMisses,
                    (unsigned long long)w.circuitDiskHits,
                    (unsigned long long)w.problemBuilds,
                    (unsigned long long)w.problemDiskHits,
                    (unsigned long long)w.problemMemHits);

        const std::string tracePath = writeTraceJson(store.name());
        if (!tracePath.empty())
            std::printf("wrote %s\n", tracePath.c_str());
        const std::string metricsPath =
            writeMetricsJson(store.name());
        if (!metricsPath.empty())
            std::printf("wrote %s\n", metricsPath.c_str());
        std::fflush(stdout);
        return store.countWithStatus(JobStatus::Failed) == 0 ? 0
                                                             : 1;
    } catch (const std::exception &e) {
        error(std::string("qcc_sweepd: ") + e.what());
        return 1;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    // Worker mode first: nothing else (flag parsing, store setup)
    // may touch the frame channel before the handoff.
    if (argc > 1 &&
        std::strcmp(argv[1], sweepd::kWorkerFlag) == 0)
        return sweepd::workerMain();

    setVerbose(true);

    sweepd::SweepdOptions opts;
    opts.workerPath = sweepd::selfExecutablePath(argv[0]);

    std::vector<std::string> specPaths;
    bool serve = false, quiet = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--concurrency" && i + 1 < argc) {
            opts.concurrency = unsigned(std::atoi(argv[++i]));
        } else if (arg == "--timeout-ms" && i + 1 < argc) {
            opts.jobTimeoutMs = std::atof(argv[++i]);
        } else if (arg == "--retries" && i + 1 < argc) {
            opts.retries = std::atoi(argv[++i]);
        } else if (arg == "--no-resume") {
            opts.resume = false;
        } else if (arg == "--no-width-cap") {
            opts.capJobWidth = false;
        } else if (arg == "--store-dir" && i + 1 < argc) {
            setStoreDir(argv[++i]);
        } else if (arg == "--no-store") {
            setStoreEnabled(false);
        } else if (arg == "--serve") {
            serve = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else {
            specPaths.push_back(arg);
        }
    }
    if (specPaths.empty() && !serve)
        return usage(argv[0]);

    if (!quiet) {
        opts.progress = [](const SweepProgress &p) {
            const SweepJobRecord &r = *p.last;
            std::printf("[%zu/%zu] #%-3zu %-5s  %-9s", p.completed,
                        p.total, r.index, r.spec.molecule.c_str(),
                        jobStatusName(r.status));
            if (r.finished())
                std::printf("  E = %+.6f Ha", r.result.energy());
            if (!r.error.empty())
                std::printf("  (%s)", r.error.c_str());
            std::printf("\n");
            std::fflush(stdout);
        };
    }

    sweepd::SweepdService service(opts);

    int rc = 0;
    for (const auto &path : specPaths)
        rc |= runSpec(service, path);

    if (serve) {
        // Server loop: one spec path per line until EOF. Each
        // submission runs to completion before the next is read —
        // concurrency lives inside a sweep, not across sweeps.
        std::printf("qcc_sweepd: serving (one spec path per "
                    "line; EOF stops)\n");
        std::fflush(stdout);
        char line[4096];
        while (std::fgets(line, sizeof(line), stdin)) {
            std::string path = line;
            while (!path.empty() && (path.back() == '\n' ||
                                     path.back() == '\r' ||
                                     path.back() == ' '))
                path.pop_back();
            if (path.empty() || path[0] == '#')
                continue;
            rc |= runSpec(service, path);
        }
    }
    return rc;
}
