/**
 * @file
 * Unit tests for weighted Pauli sums: accumulation, simplification,
 * products with phase tracking, and Hermiticity diagnostics.
 */

#include <gtest/gtest.h>

#include "pauli/pauli_sum.hh"

using namespace qcc;

TEST(PauliSum, AddAndSimplifyMerges)
{
    PauliSum s(2);
    s.add(0.5, PauliString::fromString("XY"));
    s.add(0.25, PauliString::fromString("XY"));
    s.add(1.0, PauliString::fromString("ZZ"));
    EXPECT_EQ(s.numTerms(), 3u);
    s.simplify();
    EXPECT_EQ(s.numTerms(), 2u);
}

TEST(PauliSum, SimplifyDropsCancellations)
{
    PauliSum s(2);
    s.add(0.7, PauliString::fromString("XX"));
    s.add(-0.7, PauliString::fromString("XX"));
    s.simplify();
    EXPECT_EQ(s.numTerms(), 0u);
}

TEST(PauliSum, ProductTracksPhases)
{
    // (X)(Y) = iZ as a sum product.
    PauliSum a(1), b(1);
    a.add(1.0, PauliString::fromString("X"));
    b.add(1.0, PauliString::fromString("Y"));
    PauliSum ab = a.product(b);
    ASSERT_EQ(ab.numTerms(), 1u);
    EXPECT_EQ(ab.terms()[0].string.str(), "Z");
    EXPECT_NEAR(std::abs(ab.terms()[0].coeff -
                         std::complex<double>(0, 1)),
                0.0, 1e-14);
}

TEST(PauliSum, ProductDistributes)
{
    PauliSum a(1);
    a.add(1.0, PauliString::fromString("X"));
    a.add(1.0, PauliString::fromString("Z"));
    PauliSum sq = a.product(a);
    // (X+Z)^2 = 2I + XZ + ZX = 2I + (-iY) + (iY) = 2I.
    ASSERT_EQ(sq.numTerms(), 1u);
    EXPECT_TRUE(sq.terms()[0].string.isIdentity());
    EXPECT_NEAR(sq.terms()[0].coeff.real(), 2.0, 1e-14);
}

TEST(PauliSum, IdentityCoeffAndNorm)
{
    PauliSum s(3);
    s.add(-1.5, PauliString(3));
    s.add(0.5, PauliString::fromString("XXZ"));
    EXPECT_NEAR(s.identityCoeff().real(), -1.5, 1e-14);
    EXPECT_NEAR(s.normL1(), 2.0, 1e-14);
}

TEST(PauliSum, MaxImagCoeff)
{
    PauliSum s(1);
    s.add({1.0, 0.25}, PauliString::fromString("X"));
    EXPECT_NEAR(s.maxImagCoeff(), 0.25, 1e-14);
}

TEST(PauliSum, ScaleMultipliesEveryCoeff)
{
    PauliSum s(1);
    s.add(2.0, PauliString::fromString("X"));
    s.add(3.0, PauliString::fromString("Z"));
    s.scale({0.0, 1.0});
    for (const auto &t : s.terms())
        EXPECT_NEAR(t.coeff.real(), 0.0, 1e-14);
    EXPECT_NEAR(s.normL1(), 5.0, 1e-14);
}
