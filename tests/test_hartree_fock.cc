/**
 * @file
 * Unit tests for the RHF solver: known STO-3G energies, the virial
 * ratio, convergence across the benchmark set, and orbital-energy
 * ordering sanity (aufbau).
 */

#include <cmath>
#include <gtest/gtest.h>

#include "chem/hartree_fock.hh"
#include "chem/molecules.hh"

using namespace qcc;

namespace {

ScfResult
solve(const std::string &name, double bond)
{
    const auto &entry = benchmarkMolecule(name);
    Molecule mol = entry.build(bond);
    BasisSet basis = BasisSet::stoNg(mol);
    IntegralTables ints = computeIntegrals(basis, mol);
    return runRhf(ints, mol);
}

} // namespace

TEST(HartreeFock, H2KnownEnergy)
{
    // STO-3G H2 at 0.74 A: E_RHF ~ -1.1167 Ha.
    ScfResult r = solve("H2", 0.74);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.energyTotal, -1.1167, 0.003);
}

TEST(HartreeFock, H2OKnownEnergy)
{
    // STO-3G H2O near equilibrium: E_RHF ~ -74.96 Ha.
    ScfResult r = solve("H2O", 0.96);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.energyTotal, -74.96, 0.15);
}

TEST(HartreeFock, LiHKnownEnergy)
{
    // STO-3G LiH near equilibrium: E_RHF ~ -7.86 Ha.
    ScfResult r = solve("LiH", 1.60);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.energyTotal, -7.86, 0.05);
}

TEST(HartreeFock, AllBenchmarksConverge)
{
    for (const auto &entry : benchmarkMolecules()) {
        ScfResult r = solve(entry.name, entry.equilibriumBond);
        EXPECT_TRUE(r.converged) << entry.name;
        EXPECT_LT(r.energyTotal, 0.0) << entry.name;
        // Occupied orbital energies below virtual ones (aufbau gap).
        size_t nOcc =
            size_t(entry.build(entry.equilibriumBond).nElectrons() / 2);
        ASSERT_LE(nOcc, r.orbitalEnergies.size()) << entry.name;
        if (nOcc < r.orbitalEnergies.size()) {
            EXPECT_LT(r.orbitalEnergies[nOcc - 1],
                      r.orbitalEnergies[nOcc])
                << entry.name;
        }
    }
}

TEST(HartreeFock, H2DissociationCurveShape)
{
    // RHF H2 has a minimum near 0.71 A in STO-3G.
    double e05 = solve("H2", 0.5).energyTotal;
    double e07 = solve("H2", 0.72).energyTotal;
    double e12 = solve("H2", 1.2).energyTotal;
    EXPECT_LT(e07, e05);
    EXPECT_LT(e07, e12);
}

TEST(HartreeFock, DensityIdempotent)
{
    // D S D = D for a converged RHF density (projector property).
    const auto &entry = benchmarkMolecule("LiH");
    Molecule mol = entry.build(1.6);
    BasisSet basis = BasisSet::stoNg(mol);
    IntegralTables ints = computeIntegrals(basis, mol);
    ScfResult r = runRhf(ints, mol);

    Matrix dsd = r.density * ints.s * r.density;
    EXPECT_NEAR((dsd - r.density).maxAbs(), 0.0, 1e-6);
}

TEST(HartreeFock, ElectronCountFromDensity)
{
    // Tr(D S) = number of electron pairs.
    const auto &entry = benchmarkMolecule("H2O");
    Molecule mol = entry.build(0.96);
    BasisSet basis = BasisSet::stoNg(mol);
    IntegralTables ints = computeIntegrals(basis, mol);
    ScfResult r = runRhf(ints, mol);
    EXPECT_NEAR((r.density * ints.s).trace(), 5.0, 1e-8);
}

TEST(HartreeFock, VirialRatioNearTwo)
{
    // At equilibrium, -V/T ~ 2 (loosely, for a minimal basis).
    const auto &entry = benchmarkMolecule("H2");
    Molecule mol = entry.build(0.74);
    BasisSet basis = BasisSet::stoNg(mol);
    IntegralTables ints = computeIntegrals(basis, mol);
    ScfResult r = runRhf(ints, mol);

    double t = 2.0 * (r.density * ints.t).trace();
    double vTotal = r.energyTotal - t;
    EXPECT_NEAR(-vTotal / t, 2.0, 0.15);
}
