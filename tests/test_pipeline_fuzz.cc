/**
 * @file
 * Fuzz-style property test for the compiler pipeline: random Pauli
 * programs (random strings, widths, parameter bindings, HF masks)
 * are pushed through every flow — chain synthesis, hierarchical
 * layout + Merge-to-Root, and chain + SABRE — and each compile must
 * (a) pass the pipeline's own verify pass and (b) be exhaustively
 * unitary-equivalent to its logical reference on <= 6 qubits, where
 * equivalence can be checked over every basis state.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "ansatz/uccsd.hh"
#include "arch/xtree.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "compiler/chain_synthesis.hh"
#include "compiler/pipeline.hh"
#include "compiler/verify.hh"
#include "evolve/trotter.hh"
#include "sim/fusion.hh"
#include "sim/simd.hh"
#include "sim/statevector.hh"

using namespace qcc;

namespace {

/** Random ansatz program: widths 2..6, up to 8 random strings. */
Ansatz
randomProgram(Rng &rng)
{
    Ansatz a;
    a.nQubits = 2 + unsigned(rng.index(5)); // 2..6
    const uint64_t full = (uint64_t{1} << a.nQubits) - 1;
    const size_t nRot = 1 + rng.index(8);
    a.nParams = unsigned(nRot);
    a.hfMask = rng.index(full + 1);
    for (size_t j = 0; j < nRot; ++j) {
        // Random (x, z) masks cover all operators, identity rows
        // included (they synthesize to empty subcircuits).
        PauliString p(a.nQubits, rng.index(full + 1),
                      rng.index(full + 1));
        a.rotations.push_back(
            {unsigned(j), rng.uniform(0.2, 1.5), p});
    }
    return a;
}

std::vector<double>
randomParams(const Ansatz &a, Rng &rng)
{
    std::vector<double> p(a.nParams);
    for (double &v : p)
        v = rng.uniform(-0.8, 0.8);
    return p;
}

/** Compile under `opts` and check exhaustive unitary equivalence. */
void
checkFlow(const Ansatz &a, const std::vector<double> &params,
          const CompilerPipeline &pipe, const char *what,
          uint64_t trial)
{
    CompileResult res;
    ASSERT_NO_THROW(res = pipe.compile(a, params))
        << what << " trial " << trial;

    const Circuit logical = synthesizeChainCircuit(a, params, true);
    const unsigned nl = logical.numQubits();
    const bool routed =
        pipe.options().flow != PipelineOptions::Flow::ChainOnly;
    Layout initial =
        routed ? res.initialLayout : Layout::identity(nl, nl);
    Layout final_layout =
        routed ? res.finalLayout : Layout::identity(nl, nl);
    // trials = 0 on <= 6 qubits: every basis state is checked.
    EXPECT_TRUE(checkCompiledEquivalence(res.circuit, logical,
                                         initial, final_layout, 0))
        << what << " trial " << trial << " (" << a.nQubits
        << " qubits, " << a.rotations.size() << " rotations)";
}

} // namespace

TEST(PipelineFuzz, RandomProgramsCompileAndStayEquivalent)
{
    setVerbose(false);
    XTree tree = makeXTree(7);

    PipelineOptions chainOpts;
    chainOpts.flow = PipelineOptions::Flow::ChainOnly;
    chainOpts.verifyTrials = 2;
    chainOpts.useCache = false;
    CompilerPipeline chain(chainOpts);

    PipelineOptions mtrOpts;
    mtrOpts.verifyTrials = 2;
    mtrOpts.useCache = false;
    CompilerPipeline mtr(tree, mtrOpts);

    PipelineOptions sabreOpts;
    sabreOpts.flow = PipelineOptions::Flow::Sabre;
    sabreOpts.verifyTrials = 2;
    sabreOpts.useCache = false;
    CompilerPipeline sabre(tree, sabreOpts);

    const int trials = 12;
    for (uint64_t t = 0; t < trials; ++t) {
        Rng rng(deriveStream(0xF022 + t, 0));
        Ansatz a = randomProgram(rng);
        auto params = randomParams(a, rng);
        checkFlow(a, params, chain, "chain", t);
        checkFlow(a, params, mtr, "merge-to-root", t);
        checkFlow(a, params, sabre, "sabre", t);
    }
}

TEST(PipelineFuzz, CompiledCircuitsExecuteIdenticallyFusedAndSimd)
{
    // The simulator's execution tiers (per-gate scalar, per-gate
    // SIMD, fused scalar, fused SIMD) must agree on real compiler
    // output — routed circuits full of CNOT/SWAP runs and basis
    // sandwiches, not just synthetic gate streams.
    setVerbose(false);
    XTree tree = makeXTree(7);
    PipelineOptions opts;
    opts.verifyTrials = 0;
    opts.useCache = false;
    CompilerPipeline mtr(tree, opts);

    const bool simdWas = kern::simdActive();
    for (uint64_t t = 0; t < 6; ++t) {
        Rng rng(deriveStream(0x51D0 + t, 2));
        Ansatz a = randomProgram(rng);
        auto params = randomParams(a, rng);
        CompileResult res = mtr.compile(a, params);
        const unsigned n = res.circuit.numQubits();

        // Random dense initial state shared by all four tiers.
        Statevector ref(n);
        {
            double norm2 = 0.0;
            for (auto &v : ref.amplitudes()) {
                v = cplx(rng.gaussian(), rng.gaussian());
                norm2 += std::norm(v);
            }
            for (auto &v : ref.amplitudes())
                v /= std::sqrt(norm2);
        }
        Statevector simd(n), fusedS(n), fusedV(n);
        simd.amplitudes() = ref.amplitudes();
        fusedS.amplitudes() = ref.amplitudes();
        fusedV.amplitudes() = ref.amplitudes();

        kern::setSimdEnabled(false);
        ref.applyCircuit(res.circuit, false);
        fusedS.applyCircuit(res.circuit, true);
        kern::setSimdEnabled(true);
        simd.applyCircuit(res.circuit, false);
        fusedV.applyCircuit(res.circuit, true);

        for (size_t i = 0; i < ref.dim(); ++i) {
            ASSERT_NEAR(std::abs(simd.amplitudes()[i] -
                                 ref.amplitudes()[i]),
                        0.0, 1e-12)
                << "simd trial " << t << " index " << i;
            ASSERT_NEAR(std::abs(fusedS.amplitudes()[i] -
                                 ref.amplitudes()[i]),
                        0.0, 1e-12)
                << "fused-scalar trial " << t << " index " << i;
            ASSERT_NEAR(std::abs(fusedV.amplitudes()[i] -
                                 ref.amplitudes()[i]),
                        0.0, 1e-12)
                << "fused-simd trial " << t << " index " << i;
        }
    }
    kern::setSimdEnabled(simdWas);
}

TEST(PipelineFuzz, TrotterProgramsCompileAndExecuteIdentically)
{
    // Trotter circuits are a different gate population from random
    // UCCSD-style programs — long family-ordered rotation streams,
    // one shared dt parameter — so push them through the same three
    // flows and the four execution tiers.
    setVerbose(false);
    XTree tree = makeXTree(7);

    PipelineOptions chainOpts;
    chainOpts.flow = PipelineOptions::Flow::ChainOnly;
    chainOpts.verifyTrials = 2;
    chainOpts.useCache = false;
    CompilerPipeline chain(chainOpts);

    PipelineOptions mtrOpts;
    mtrOpts.verifyTrials = 2;
    mtrOpts.useCache = false;
    CompilerPipeline mtr(tree, mtrOpts);

    PipelineOptions sabreOpts;
    sabreOpts.flow = PipelineOptions::Flow::Sabre;
    sabreOpts.verifyTrials = 2;
    sabreOpts.useCache = false;
    CompilerPipeline sabre(tree, sabreOpts);

    const bool simdWas = kern::simdActive();
    for (uint64_t t = 0; t < 6; ++t) {
        Rng rng(deriveStream(0x7407 + t, 3));
        // Random Hermitian PauliSum -> Trotter program.
        const unsigned n = 2 + unsigned(rng.index(4)); // 2..5
        const uint64_t full = (uint64_t{1} << n) - 1;
        PauliSum h(n);
        const size_t nTerms = 2 + rng.index(5);
        for (size_t j = 0; j < nTerms; ++j)
            h.add(rng.uniform(-0.9, 0.9),
                  PauliString(n, rng.index(full + 1),
                              rng.index(full + 1)));
        const int steps = 1 + int(rng.index(3));
        const int order = 1 + int(rng.index(2));
        const TrotterBuild tb = buildTrotterAnsatz(
            h, rng.index(full + 1), steps, order);
        if (tb.ansatz.rotations.empty())
            continue; // all-identity draw: nothing to compile
        const std::vector<double> params = {rng.uniform(0.05, 0.4)};

        checkFlow(tb.ansatz, params, chain, "trotter-chain", t);
        checkFlow(tb.ansatz, params, mtr, "trotter-mtr", t);
        checkFlow(tb.ansatz, params, sabre, "trotter-sabre", t);

        // Four-tier execution agreement on the routed circuit.
        CompileResult res = mtr.compile(tb.ansatz, params);
        const unsigned nc = res.circuit.numQubits();
        Statevector ref(nc);
        {
            double norm2 = 0.0;
            for (auto &v : ref.amplitudes()) {
                v = cplx(rng.gaussian(), rng.gaussian());
                norm2 += std::norm(v);
            }
            for (auto &v : ref.amplitudes())
                v /= std::sqrt(norm2);
        }
        Statevector simd(nc), fusedS(nc), fusedV(nc);
        simd.amplitudes() = ref.amplitudes();
        fusedS.amplitudes() = ref.amplitudes();
        fusedV.amplitudes() = ref.amplitudes();
        kern::setSimdEnabled(false);
        ref.applyCircuit(res.circuit, false);
        fusedS.applyCircuit(res.circuit, true);
        kern::setSimdEnabled(true);
        simd.applyCircuit(res.circuit, false);
        fusedV.applyCircuit(res.circuit, true);
        for (size_t i = 0; i < ref.dim(); ++i) {
            ASSERT_NEAR(std::abs(simd.amplitudes()[i] -
                                 ref.amplitudes()[i]),
                        0.0, 1e-12)
                << "trotter simd trial " << t << " index " << i;
            ASSERT_NEAR(std::abs(fusedS.amplitudes()[i] -
                                 ref.amplitudes()[i]),
                        0.0, 1e-12)
                << "trotter fused trial " << t << " index " << i;
            ASSERT_NEAR(std::abs(fusedV.amplitudes()[i] -
                                 ref.amplitudes()[i]),
                        0.0, 1e-12)
                << "trotter fused-simd trial " << t << " index "
                << i;
        }
    }
    kern::setSimdEnabled(simdWas);
}

TEST(PipelineFuzz, CachedRecompileOfRandomProgramsIsExact)
{
    if (!circuitCacheEnabled())
        GTEST_SKIP() << "QCC_COMPILE_CACHE=0 in the environment";
    setVerbose(false);
    XTree tree = makeXTree(7);
    CompilerPipeline cached(tree, PipelineOptions{});

    for (uint64_t t = 0; t < 6; ++t) {
        Rng rng(deriveStream(0xCA0 + t, 1));
        Ansatz a = randomProgram(rng);
        auto p1 = randomParams(a, rng);
        auto p2 = randomParams(a, rng);
        CompileResult first = cached.compile(a, p1);
        CompileResult rebound = cached.compile(a, p2);

        // The rebound compile must equal a from-scratch one.
        PipelineOptions fresh;
        fresh.useCache = false;
        CompilerPipeline uncached(tree, fresh);
        CompileResult want = uncached.compile(a, p2);
        ASSERT_EQ(rebound.circuit.size(), want.circuit.size());
        for (size_t g = 0; g < want.circuit.size(); ++g) {
            const Gate &x = rebound.circuit.gates()[g];
            const Gate &y = want.circuit.gates()[g];
            EXPECT_TRUE(x.kind == y.kind && x.q0 == y.q0 &&
                        x.q1 == y.q1 && x.angle == y.angle)
                << "gate " << g << " trial " << t;
        }
        const Circuit logical =
            synthesizeChainCircuit(a, p2, true);
        EXPECT_TRUE(checkCompiledEquivalence(
            rebound.circuit, logical, rebound.initialLayout,
            rebound.finalLayout, 0))
            << "trial " << t;
    }
}
