/**
 * @file
 * Equivalence tests for the specialized simulator kernels: randomized
 * circuits and Pauli rotations checked against the generic dense
 * reference path, plus grouped-vs-termwise Hamiltonian expectation
 * agreement and the expectation width-check regression.
 */

#include <array>
#include <cmath>
#include <gtest/gtest.h>

#include "circuit/circuit.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "pauli/grouping.hh"
#include "sim/density_matrix.hh"
#include "sim/fusion.hh"
#include "sim/kernels.hh"
#include "sim/simd.hh"
#include "sim/statevector.hh"
#include "vqe/expectation_engine.hh"

using namespace qcc;

namespace {

std::vector<cplx>
randomAmplitudes(unsigned n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<cplx> amp(size_t{1} << n);
    double norm2 = 0.0;
    for (auto &a : amp) {
        a = cplx(rng.gaussian(), rng.gaussian());
        norm2 += std::norm(a);
    }
    for (auto &a : amp)
        a /= std::sqrt(norm2);
    return amp;
}

Statevector
randomState(unsigned n, uint64_t seed)
{
    Statevector sv(n);
    sv.amplitudes() = randomAmplitudes(n, seed);
    return sv;
}

PauliString
randomString(unsigned n, Rng &rng, bool allow_identity = true)
{
    for (;;) {
        uint64_t mask = (n == 64) ? ~0ull : ((1ull << n) - 1);
        PauliString p(n, rng.index(1ull << n) & mask,
                      rng.index(1ull << n) & mask);
        if (allow_identity || !p.isIdentity())
            return p;
    }
}

void
expectClose(const std::vector<cplx> &a, const std::vector<cplx> &b,
            const std::string &what, double tol = 1e-12)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (size_t i = 0; i < a.size(); ++i)
        ASSERT_NEAR(std::abs(a[i] - b[i]), 0.0, tol)
            << what << " at index " << i;
}

/** Pin the SIMD dispatch for one scope, restoring it on exit. */
struct SimdGuard {
    bool was;
    explicit SimdGuard(bool on) : was(kern::simdActive())
    {
        kern::setSimdEnabled(on);
    }
    ~SimdGuard() { kern::setSimdEnabled(was); }
};

/** Random circuit over all gate kinds (same mix as the dense test). */
Circuit
randomCircuit(unsigned n, int n_gates, Rng &rng)
{
    Circuit c(n);
    const GateKind oneQ[] = {GateKind::X,  GateKind::Y,  GateKind::Z,
                             GateKind::H,  GateKind::S,  GateKind::Sdg,
                             GateKind::RX, GateKind::RY, GateKind::RZ};
    for (int g = 0; g < n_gates; ++g) {
        if (n >= 2 && rng.uniform() < 0.3) {
            unsigned a = unsigned(rng.index(n));
            unsigned b = unsigned(rng.index(n - 1));
            if (b >= a)
                ++b;
            if (rng.coin())
                c.cnot(a, b);
            else
                c.swap(a, b);
        } else {
            GateKind k = oneQ[rng.index(std::size(oneQ))];
            c.push({k, unsigned(rng.index(n)), 0,
                    rng.uniform(-3.0, 3.0)});
        }
    }
    return c;
}

} // namespace

TEST(Kernels, Apply1qMatchesGeneric)
{
    Rng rng(7);
    for (unsigned n : {1u, 3u, 6u}) {
        for (int rep = 0; rep < 8; ++rep) {
            cplx u[4];
            for (auto &v : u)
                v = cplx(rng.gaussian(), rng.gaussian());
            const unsigned q = unsigned(rng.index(n));
            auto fast = randomAmplitudes(n, 100 + rep);
            auto ref = fast;
            kern::apply1q(fast.data(), fast.size(), q, u);
            kern::apply1qGeneric(ref.data(), ref.size(), q, u);
            expectClose(fast, ref, "apply1q n=" + std::to_string(n));
        }
    }
}

TEST(Kernels, PauliRotationMatchesGeneric)
{
    Rng rng(11);
    for (unsigned n : {1u, 2u, 5u, 9u}) {
        for (int rep = 0; rep < 20; ++rep) {
            PauliString p = randomString(n, rng);
            const double theta = rng.uniform(-3.0, 3.0);
            auto fast = randomAmplitudes(n, 1000 * n + rep);
            auto ref = fast;
            kern::applyPauliRotation(fast.data(), fast.size(),
                                     p.xMask(), p.zMask(), theta);
            kern::applyPauliRotationGeneric(ref.data(), ref.size(),
                                            p.xMask(), p.zMask(),
                                            theta);
            expectClose(fast, ref, "rotation " + p.str());
        }
    }
}

TEST(Kernels, ExpectationMatchesGeneric)
{
    Rng rng(13);
    for (unsigned n : {1u, 4u, 8u}) {
        auto amp = randomAmplitudes(n, 55 + n);
        for (int rep = 0; rep < 20; ++rep) {
            PauliString p = randomString(n, rng);
            double fast = kern::expectation(amp.data(), amp.size(),
                                            p.xMask(), p.zMask());
            double ref = kern::expectationGeneric(
                amp.data(), amp.size(), p.xMask(), p.zMask());
            EXPECT_NEAR(fast, ref, 1e-12) << p.str();
        }
    }
}

TEST(Kernels, RandomCircuitMatchesDenseApply)
{
    // Every specialized gate kernel (diagonal, X, CX, SWAP) against
    // the generic dense 2x2 path / explicit permutation reference.
    Rng rng(17);
    const unsigned n = 6;
    for (int rep = 0; rep < 6; ++rep) {
        Statevector fast = randomState(n, 900 + rep);
        std::vector<cplx> ref = fast.amplitudes();

        std::vector<Gate> gates;
        const GateKind oneQ[] = {GateKind::X,   GateKind::Y,
                                 GateKind::Z,   GateKind::H,
                                 GateKind::S,   GateKind::Sdg,
                                 GateKind::RX,  GateKind::RY,
                                 GateKind::RZ};
        for (int g = 0; g < 40; ++g) {
            if (rng.uniform() < 0.3) {
                unsigned a = unsigned(rng.index(n));
                unsigned b = unsigned(rng.index(n - 1));
                if (b >= a)
                    ++b;
                gates.push_back({rng.coin() ? GateKind::CNOT
                                            : GateKind::SWAP,
                                 a, b});
            } else {
                GateKind k = oneQ[rng.index(std::size(oneQ))];
                gates.push_back({k, unsigned(rng.index(n)), 0,
                                 rng.uniform(-3.0, 3.0)});
            }
        }

        for (const auto &g : gates) {
            fast.applyGate(g);
            // Reference path: dense 2x2 for 1q kinds, explicit
            // full-scan permutations for CNOT/SWAP (the seed's
            // loops).
            if (g.kind == GateKind::CNOT) {
                const uint64_t cb = 1ull << g.q0, tb = 1ull << g.q1;
                for (size_t b = 0; b < ref.size(); ++b)
                    if ((b & cb) && !(b & tb))
                        std::swap(ref[b], ref[b | tb]);
            } else if (g.kind == GateKind::SWAP) {
                const uint64_t ab = 1ull << g.q0, bb = 1ull << g.q1;
                for (size_t b = 0; b < ref.size(); ++b)
                    if ((b & ab) && !(b & bb))
                        std::swap(ref[b ^ ab ^ bb], ref[b]);
            } else {
                cplx u[4];
                gateMatrix(g.kind, g.angle, u);
                kern::apply1qGeneric(ref.data(), ref.size(), g.q0, u);
            }
        }
        expectClose(fast.amplitudes(), ref, "random circuit");
    }
}

TEST(Kernels, ParallelSweepMatchesSerial)
{
    // Force chunked execution by shrinking the grain far below the
    // state size; results must be bit-compatible with the serial
    // sweep up to floating-point associativity of the chunk combine.
    const unsigned n = 12;
    auto amp = randomAmplitudes(n, 77);
    auto ref = amp;
    Rng rng(19);
    PauliString p = randomString(n, rng, false);

    kern::applyPauliRotation(amp.data(), amp.size(), p.xMask(),
                             p.zMask(), 0.37);
    kern::applyPauliRotationGeneric(ref.data(), ref.size(), p.xMask(),
                                    p.zMask(), 0.37);
    expectClose(amp, ref, "parallel rotation");

    double e = 0.0;
    e = parallelReduce(0, amp.size(), 0.0,
                       [&](size_t lo, size_t hi) {
                           double s = 0;
                           for (size_t i = lo; i < hi; ++i)
                               s += std::norm(amp[i]);
                           return s;
                       },
                       /*grain=*/64);
    EXPECT_NEAR(e, 1.0, 1e-10);
}

TEST(Kernels, GroupedExpectationMatchesTermwise)
{
    Rng rng(23);
    for (unsigned n : {3u, 6u}) {
        PauliSum h(n);
        for (int t = 0; t < 25; ++t)
            h.add(rng.gaussian(), randomString(n, rng));
        h.simplify();

        Statevector psi = randomState(n, 40 + n);
        ExpectationEngine engine(h);
        EXPECT_GT(engine.numGroups(), 0u);
        EXPECT_LE(engine.numGroups(), h.numTerms());
        EXPECT_NEAR(engine.energy(psi), psi.expectation(h), 1e-10)
            << "n=" << n;
    }
}

TEST(Kernels, GroupedExpectationDiagonalFamilyFastPath)
{
    // An all-diagonal Hamiltonian needs no scratch rotation at all.
    PauliSum h(4);
    h.add(0.5, PauliString::fromString("ZZII"));
    h.add(-0.25, PauliString::fromString("IZZI"));
    h.add(1.5, PauliString(4));
    Statevector psi = randomState(4, 3);
    ExpectationEngine engine(h);
    EXPECT_EQ(engine.numGroups(), 1u);
    EXPECT_NEAR(engine.energy(psi), psi.expectation(h), 1e-12);
}

TEST(Kernels, ExpectationWidthMismatchPanics)
{
    // Regression: the PauliString overload used to silently accept a
    // width-mismatched string (reading out of range).
    // Pool workers may be alive from earlier tests; fork+exec style
    // keeps the death test safe with threads running.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Statevector sv(3);
    PauliString wide = PauliString::fromString("ZZZZZ");
    EXPECT_DEATH(sv.expectation(wide), "width mismatch");
}

// ---------------------------------------------------------------------
// SIMD dispatch: vector path vs forced-scalar path vs generic oracle.
// On machines without AVX2 both dispatches run the scalar bodies and
// the checks degenerate to (still valid) scalar-vs-generic tests.
// ---------------------------------------------------------------------

TEST(Simd, Apply1qMatchesScalarAndGeneric)
{
    Rng rng(31);
    for (unsigned n : {1u, 2u, 3u, 5u, 11u}) {
        for (int rep = 0; rep < 6; ++rep) {
            cplx u[4];
            for (auto &v : u)
                v = cplx(rng.gaussian(), rng.gaussian());
            for (unsigned q = 0; q < n; ++q) {
                auto ref = randomAmplitudes(n, 7000 + 64 * n + rep);
                auto vec = ref;
                auto sca = ref;
                kern::apply1qGeneric(ref.data(), ref.size(), q, u);
                {
                    SimdGuard g(true);
                    kern::apply1q(vec.data(), vec.size(), q, u);
                }
                {
                    SimdGuard g(false);
                    kern::apply1q(sca.data(), sca.size(), q, u);
                }
                const std::string what = "apply1q n=" +
                    std::to_string(n) + " q=" + std::to_string(q);
                expectClose(vec, ref, "simd " + what);
                expectClose(sca, ref, "scalar " + what);
            }
        }
    }
}

TEST(Simd, PauliRotationMatchesScalarAndGeneric)
{
    Rng rng(37);
    // Odd widths and n=1 stress the vector head/tail handling; the
    // random strings cover diagonal (x=0), pivot=1, and pivot>=2.
    for (unsigned n : {1u, 2u, 3u, 7u, 13u}) {
        for (int rep = 0; rep < 16; ++rep) {
            PauliString p = randomString(n, rng);
            const double theta = rng.uniform(-3.0, 3.0);
            auto ref = randomAmplitudes(n, 8000 + 64 * n + rep);
            auto vec = ref;
            auto sca = ref;
            kern::applyPauliRotationGeneric(ref.data(), ref.size(),
                                            p.xMask(), p.zMask(),
                                            theta);
            {
                SimdGuard g(true);
                kern::applyPauliRotation(vec.data(), vec.size(),
                                         p.xMask(), p.zMask(), theta);
            }
            {
                SimdGuard g(false);
                kern::applyPauliRotation(sca.data(), sca.size(),
                                         p.xMask(), p.zMask(), theta);
            }
            expectClose(vec, ref, "simd rotation " + p.str());
            expectClose(sca, ref, "scalar rotation " + p.str());
        }
    }
}

TEST(Simd, ExpectationMatchesScalarAndGeneric)
{
    Rng rng(41);
    for (unsigned n : {1u, 3u, 5u, 13u}) {
        auto amp = randomAmplitudes(n, 90 + n);
        for (int rep = 0; rep < 16; ++rep) {
            PauliString p = randomString(n, rng);
            const double ref = kern::expectationGeneric(
                amp.data(), amp.size(), p.xMask(), p.zMask());
            double vec, sca;
            {
                SimdGuard g(true);
                vec = kern::expectation(amp.data(), amp.size(),
                                        p.xMask(), p.zMask());
            }
            {
                SimdGuard g(false);
                sca = kern::expectation(amp.data(), amp.size(),
                                        p.xMask(), p.zMask());
            }
            EXPECT_NEAR(vec, ref, 1e-12) << "simd " << p.str();
            EXPECT_NEAR(sca, ref, 1e-12) << "scalar " << p.str();
        }
    }
}

TEST(Simd, DiagonalGroupExpectationMatchesScalar)
{
    Rng rng(43);
    for (unsigned n : {1u, 3u, 6u, 13u}) {
        auto amp = randomAmplitudes(n, 300 + n);
        const uint64_t mask = (1ull << n) - 1;
        // Term counts around the AVX2 4-probability quad boundary.
        for (size_t terms : {1u, 3u, 24u}) {
            std::vector<double> w;
            std::vector<uint64_t> z;
            for (size_t t = 0; t < terms; ++t) {
                w.push_back(rng.gaussian());
                z.push_back(rng.index(1ull << n) & mask);
            }
            // Scalar oracle straight from the definition.
            double ref = 0.0;
            for (size_t b = 0; b < amp.size(); ++b) {
                const double n2 = std::norm(amp[b]);
                for (size_t t = 0; t < terms; ++t)
                    ref += (std::popcount(z[t] & b) & 1 ? -w[t]
                                                        : w[t]) *
                           n2;
            }
            double vec, sca;
            {
                SimdGuard g(true);
                vec = kern::diagonalGroupExpectation(
                    amp.data(), amp.size(), w.data(), z.data(),
                    terms);
            }
            {
                SimdGuard g(false);
                sca = kern::diagonalGroupExpectation(
                    amp.data(), amp.size(), w.data(), z.data(),
                    terms);
            }
            EXPECT_NEAR(vec, ref, 1e-12)
                << "simd n=" << n << " terms=" << terms;
            EXPECT_NEAR(sca, ref, 1e-12)
                << "scalar n=" << n << " terms=" << terms;
        }
    }
}

// ---------------------------------------------------------------------
// Gate fusion + cache-blocked execution vs plain per-gate replay.
// ---------------------------------------------------------------------

TEST(Fusion, FusedCircuitMatchesPerGate)
{
    Rng rng(47);
    // n=14 exceeds the execution block width, so high-bit 1q gates,
    // block-selecting CNOT controls, and the segment machinery all
    // run; n=1 and odd widths cover the degenerate ends.
    for (unsigned n : {1u, 2u, 5u, 14u}) {
        const int reps = n >= 14 ? 2 : 5;
        for (int rep = 0; rep < reps; ++rep) {
            Circuit c = randomCircuit(n, n >= 14 ? 120 : 60, rng);
            Statevector ref = randomState(n, 500 + 16 * n + rep);
            Statevector fusedV(n), fusedS(n);
            fusedV.amplitudes() = ref.amplitudes();
            fusedS.amplitudes() = ref.amplitudes();
            {
                SimdGuard g(false);
                ref.applyCircuit(c, false);
                fusedS.applyCircuit(c, true);
            }
            {
                SimdGuard g(true);
                fusedV.applyCircuit(c, true);
            }
            expectClose(fusedS.amplitudes(), ref.amplitudes(),
                        "fused scalar n=" + std::to_string(n));
            expectClose(fusedV.amplitudes(), ref.amplitudes(),
                        "fused simd n=" + std::to_string(n));
        }
    }
}

TEST(Fusion, DiagonalRunsCoalesce)
{
    // A long run of commuting diagonal gates (with CNOTs whose
    // controls sit on the diagonal qubits interleaved) must fuse into
    // far fewer ops and still match per-gate replay.
    Circuit c(5);
    for (int pass = 0; pass < 3; ++pass) {
        for (unsigned q = 0; q < 5; ++q) {
            c.z(q);
            c.s(q);
            c.rz(q, 0.2 + 0.1 * q);
        }
        c.cnot(0, 4); // diag on control 0 commutes through
    }
    FusedProgram p = fuseCircuit(c);
    EXPECT_LT(p.ops.size(), c.size() / 3);

    Statevector a = randomState(5, 77), b(5);
    b.amplitudes() = a.amplitudes();
    a.applyCircuit(c, false);
    b.applyCircuit(c, true);
    expectClose(b.amplitudes(), a.amplitudes(), "diag coalesce");
}

TEST(Fusion, OneQubitRunsMerge)
{
    // RZ-RY-RZ Euler blocks per qubit collapse to one matrix each.
    Circuit c(4);
    for (unsigned q = 0; q < 4; ++q) {
        c.rz(q, 0.3);
        c.ry(q, 0.5);
        c.rz(q, -0.2);
        c.h(q);
    }
    FusedProgram p = fuseCircuit(c);
    EXPECT_EQ(p.ops.size(), 4u);

    Statevector a = randomState(4, 88), b(4);
    b.amplitudes() = a.amplitudes();
    a.applyCircuit(c, false);
    b.applyCircuit(c, true);
    expectClose(b.amplitudes(), a.amplitudes(), "1q merge");
}

TEST(Fusion, DensityMatrixFusedMatchesPerGate)
{
    Rng rng(53);
    const NoiseModel noiseless;
    for (int rep = 0; rep < 3; ++rep) {
        Circuit c = randomCircuit(4, 40, rng);
        DensityMatrix a(4), b(4);
        // Evolve both away from the basis state first so the check
        // sees a dense matrix.
        Circuit warm = randomCircuit(4, 10, rng);
        a.applyCircuit(warm, noiseless, false);
        b.vectorized() = a.vectorized();
        a.applyCircuit(c, noiseless, false);
        b.applyCircuit(c, noiseless, true);
        expectClose(b.vectorized(), a.vectorized(), "dm fused");
        EXPECT_NEAR(b.trace(), 1.0, 1e-10);
    }
}

TEST(Fusion, RotatedGroupExpectationMatchesCopyPath)
{
    Rng rng(59);
    // n=14 with low rotations exercises the zero-copy blocked sweep;
    // adding a rotation above the block width forces the scratch-copy
    // path. n=5 runs the single-block case.
    for (unsigned n : {5u, 14u}) {
        auto amp = randomAmplitudes(n, 600 + n);
        const uint64_t mask = (1ull << n) - 1;
        for (bool highRotation : {false, true}) {
            if (highRotation && n < 14)
                continue;
            std::vector<std::pair<unsigned, std::array<cplx, 4>>>
                rots;
            std::vector<unsigned> qs = {0, 2, unsigned(n - 1)};
            if (!highRotation && n >= 14)
                qs = {0, 2, 7};
            for (unsigned q : qs) {
                std::array<cplx, 4> u;
                basisChangeMatrix(rng.coin() ? PauliOp::X
                                             : PauliOp::Y,
                                  u.data());
                rots.emplace_back(q, u);
            }
            std::vector<double> w;
            std::vector<uint64_t> z;
            for (int t = 0; t < 12; ++t) {
                w.push_back(rng.gaussian());
                z.push_back(rng.index(1ull << n) & mask);
            }
            // Oracle: rotate a full copy, then the plain group sweep.
            auto copy = amp;
            for (const auto &[q, u] : rots)
                kern::apply1q(copy.data(), copy.size(), q, u.data());
            const double ref = kern::diagonalGroupExpectation(
                copy.data(), copy.size(), w.data(), z.data(),
                z.size());
            const double got = rotatedGroupExpectation(
                amp.data(), amp.size(), rots, w.data(), z.data(),
                z.size());
            EXPECT_NEAR(got, ref, 1e-11)
                << "n=" << n << " high=" << highRotation;
        }
    }
}

TEST(Fusion, EngineEnergyAgreesWithFusionOff)
{
    // The ExpectationEngine's fused rotated-family sweep against the
    // scratch-copy path on the same random Hamiltonian and state.
    Rng rng(61);
    PauliSum h(6);
    for (int t = 0; t < 40; ++t)
        h.add(rng.gaussian(), randomString(6, rng));
    h.simplify();
    Statevector psi = randomState(6, 99);
    ExpectationEngine engine(h);
    const bool was = fusionEnabled();
    setFusionEnabled(true);
    const double fused = engine.energy(psi);
    setFusionEnabled(false);
    const double plain = engine.energy(psi);
    setFusionEnabled(was);
    EXPECT_NEAR(fused, plain, 1e-11);
    EXPECT_NEAR(fused, psi.expectation(h), 1e-10);
}

// ---------------------------------------------------------------------
// Operand validation at the applyCircuit boundary.
// ---------------------------------------------------------------------

TEST(Validation, WidthMismatchThrowsSimError)
{
    Statevector sv(3);
    Circuit c(4);
    c.h(0);
    try {
        sv.applyCircuit(c);
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what()).find("width"),
                  std::string::npos)
            << e.what();
        EXPECT_EQ(e.issue().gateIndex, -1);
    }
}

TEST(Validation, OutOfRangeOperandThrowsWithGateIndex)
{
    Statevector sv(3);
    Circuit c(3);
    c.h(0);
    c.cnot(0, 1);
    c.gates()[1].q1 = 9; // corrupt the CNOT target past the register
    try {
        sv.applyCircuit(c);
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_EQ(e.issue().gateIndex, 1);
        EXPECT_NE(std::string(e.what()).find("gate 1"),
                  std::string::npos)
            << e.what();
    }
    // The state must be untouched: validation precedes execution.
    EXPECT_NEAR(std::abs(sv.amplitudes()[0]), 1.0, 1e-15);
}

TEST(Validation, IdenticalTwoQubitOperandsThrow)
{
    Statevector sv(3);
    Circuit c(3);
    c.cnot(0, 1);
    c.gates()[0].q1 = 0;
    EXPECT_THROW(sv.applyCircuit(c), SimError);
}

TEST(Validation, DensityMatrixValidatesToo)
{
    DensityMatrix rho(3);
    Circuit wide(5);
    wide.h(0);
    EXPECT_THROW(rho.applyCircuit(wide), SimError);

    Circuit c(3);
    c.swap(0, 2);
    c.gates()[0].q0 = 7;
    EXPECT_THROW(rho.applyCircuit(c), SimError);

    std::optional<SimIssue> issue = validateCircuit(c, 3);
    ASSERT_TRUE(issue.has_value());
    EXPECT_EQ(issue->gateIndex, 0);
}
