/**
 * @file
 * Equivalence tests for the specialized simulator kernels: randomized
 * circuits and Pauli rotations checked against the generic dense
 * reference path, plus grouped-vs-termwise Hamiltonian expectation
 * agreement and the expectation width-check regression.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "circuit/circuit.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "pauli/grouping.hh"
#include "sim/kernels.hh"
#include "sim/statevector.hh"
#include "vqe/expectation_engine.hh"

using namespace qcc;

namespace {

std::vector<cplx>
randomAmplitudes(unsigned n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<cplx> amp(size_t{1} << n);
    double norm2 = 0.0;
    for (auto &a : amp) {
        a = cplx(rng.gaussian(), rng.gaussian());
        norm2 += std::norm(a);
    }
    for (auto &a : amp)
        a /= std::sqrt(norm2);
    return amp;
}

Statevector
randomState(unsigned n, uint64_t seed)
{
    Statevector sv(n);
    sv.amplitudes() = randomAmplitudes(n, seed);
    return sv;
}

PauliString
randomString(unsigned n, Rng &rng, bool allow_identity = true)
{
    for (;;) {
        uint64_t mask = (n == 64) ? ~0ull : ((1ull << n) - 1);
        PauliString p(n, rng.index(1ull << n) & mask,
                      rng.index(1ull << n) & mask);
        if (allow_identity || !p.isIdentity())
            return p;
    }
}

void
expectClose(const std::vector<cplx> &a, const std::vector<cplx> &b,
            const std::string &what, double tol = 1e-12)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (size_t i = 0; i < a.size(); ++i)
        ASSERT_NEAR(std::abs(a[i] - b[i]), 0.0, tol)
            << what << " at index " << i;
}

} // namespace

TEST(Kernels, Apply1qMatchesGeneric)
{
    Rng rng(7);
    for (unsigned n : {1u, 3u, 6u}) {
        for (int rep = 0; rep < 8; ++rep) {
            cplx u[4];
            for (auto &v : u)
                v = cplx(rng.gaussian(), rng.gaussian());
            const unsigned q = unsigned(rng.index(n));
            auto fast = randomAmplitudes(n, 100 + rep);
            auto ref = fast;
            kern::apply1q(fast.data(), fast.size(), q, u);
            kern::apply1qGeneric(ref.data(), ref.size(), q, u);
            expectClose(fast, ref, "apply1q n=" + std::to_string(n));
        }
    }
}

TEST(Kernels, PauliRotationMatchesGeneric)
{
    Rng rng(11);
    for (unsigned n : {1u, 2u, 5u, 9u}) {
        for (int rep = 0; rep < 20; ++rep) {
            PauliString p = randomString(n, rng);
            const double theta = rng.uniform(-3.0, 3.0);
            auto fast = randomAmplitudes(n, 1000 * n + rep);
            auto ref = fast;
            kern::applyPauliRotation(fast.data(), fast.size(),
                                     p.xMask(), p.zMask(), theta);
            kern::applyPauliRotationGeneric(ref.data(), ref.size(),
                                            p.xMask(), p.zMask(),
                                            theta);
            expectClose(fast, ref, "rotation " + p.str());
        }
    }
}

TEST(Kernels, ExpectationMatchesGeneric)
{
    Rng rng(13);
    for (unsigned n : {1u, 4u, 8u}) {
        auto amp = randomAmplitudes(n, 55 + n);
        for (int rep = 0; rep < 20; ++rep) {
            PauliString p = randomString(n, rng);
            double fast = kern::expectation(amp.data(), amp.size(),
                                            p.xMask(), p.zMask());
            double ref = kern::expectationGeneric(
                amp.data(), amp.size(), p.xMask(), p.zMask());
            EXPECT_NEAR(fast, ref, 1e-12) << p.str();
        }
    }
}

TEST(Kernels, RandomCircuitMatchesDenseApply)
{
    // Every specialized gate kernel (diagonal, X, CX, SWAP) against
    // the generic dense 2x2 path / explicit permutation reference.
    Rng rng(17);
    const unsigned n = 6;
    for (int rep = 0; rep < 6; ++rep) {
        Statevector fast = randomState(n, 900 + rep);
        std::vector<cplx> ref = fast.amplitudes();

        std::vector<Gate> gates;
        const GateKind oneQ[] = {GateKind::X,   GateKind::Y,
                                 GateKind::Z,   GateKind::H,
                                 GateKind::S,   GateKind::Sdg,
                                 GateKind::RX,  GateKind::RY,
                                 GateKind::RZ};
        for (int g = 0; g < 40; ++g) {
            if (rng.uniform() < 0.3) {
                unsigned a = unsigned(rng.index(n));
                unsigned b = unsigned(rng.index(n - 1));
                if (b >= a)
                    ++b;
                gates.push_back({rng.coin() ? GateKind::CNOT
                                            : GateKind::SWAP,
                                 a, b});
            } else {
                GateKind k = oneQ[rng.index(std::size(oneQ))];
                gates.push_back({k, unsigned(rng.index(n)), 0,
                                 rng.uniform(-3.0, 3.0)});
            }
        }

        for (const auto &g : gates) {
            fast.applyGate(g);
            // Reference path: dense 2x2 for 1q kinds, explicit
            // full-scan permutations for CNOT/SWAP (the seed's
            // loops).
            if (g.kind == GateKind::CNOT) {
                const uint64_t cb = 1ull << g.q0, tb = 1ull << g.q1;
                for (size_t b = 0; b < ref.size(); ++b)
                    if ((b & cb) && !(b & tb))
                        std::swap(ref[b], ref[b | tb]);
            } else if (g.kind == GateKind::SWAP) {
                const uint64_t ab = 1ull << g.q0, bb = 1ull << g.q1;
                for (size_t b = 0; b < ref.size(); ++b)
                    if ((b & ab) && !(b & bb))
                        std::swap(ref[b ^ ab ^ bb], ref[b]);
            } else {
                cplx u[4];
                gateMatrix(g.kind, g.angle, u);
                kern::apply1qGeneric(ref.data(), ref.size(), g.q0, u);
            }
        }
        expectClose(fast.amplitudes(), ref, "random circuit");
    }
}

TEST(Kernels, ParallelSweepMatchesSerial)
{
    // Force chunked execution by shrinking the grain far below the
    // state size; results must be bit-compatible with the serial
    // sweep up to floating-point associativity of the chunk combine.
    const unsigned n = 12;
    auto amp = randomAmplitudes(n, 77);
    auto ref = amp;
    Rng rng(19);
    PauliString p = randomString(n, rng, false);

    kern::applyPauliRotation(amp.data(), amp.size(), p.xMask(),
                             p.zMask(), 0.37);
    kern::applyPauliRotationGeneric(ref.data(), ref.size(), p.xMask(),
                                    p.zMask(), 0.37);
    expectClose(amp, ref, "parallel rotation");

    double e = 0.0;
    e = parallelReduce(0, amp.size(), 0.0,
                       [&](size_t lo, size_t hi) {
                           double s = 0;
                           for (size_t i = lo; i < hi; ++i)
                               s += std::norm(amp[i]);
                           return s;
                       },
                       /*grain=*/64);
    EXPECT_NEAR(e, 1.0, 1e-10);
}

TEST(Kernels, GroupedExpectationMatchesTermwise)
{
    Rng rng(23);
    for (unsigned n : {3u, 6u}) {
        PauliSum h(n);
        for (int t = 0; t < 25; ++t)
            h.add(rng.gaussian(), randomString(n, rng));
        h.simplify();

        Statevector psi = randomState(n, 40 + n);
        ExpectationEngine engine(h);
        EXPECT_GT(engine.numGroups(), 0u);
        EXPECT_LE(engine.numGroups(), h.numTerms());
        EXPECT_NEAR(engine.energy(psi), psi.expectation(h), 1e-10)
            << "n=" << n;
    }
}

TEST(Kernels, GroupedExpectationDiagonalFamilyFastPath)
{
    // An all-diagonal Hamiltonian needs no scratch rotation at all.
    PauliSum h(4);
    h.add(0.5, PauliString::fromString("ZZII"));
    h.add(-0.25, PauliString::fromString("IZZI"));
    h.add(1.5, PauliString(4));
    Statevector psi = randomState(4, 3);
    ExpectationEngine engine(h);
    EXPECT_EQ(engine.numGroups(), 1u);
    EXPECT_NEAR(engine.energy(psi), psi.expectation(h), 1e-12);
}

TEST(Kernels, ExpectationWidthMismatchPanics)
{
    // Regression: the PauliString overload used to silently accept a
    // width-mismatched string (reading out of range).
    // Pool workers may be alive from earlier tests; fork+exec style
    // keeps the death test safe with threads running.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Statevector sv(3);
    PauliString wide = PauliString::fromString("ZZZZZ");
    EXPECT_DEATH(sv.expectation(wide), "width mismatch");
}
