/**
 * @file
 * Unit tests for the Pauli-string IR: construction, parsing, algebra
 * (products with phases, commutation), support queries, and the
 * Algorithm 1 importance decay factor.
 */

#include <gtest/gtest.h>

#include "pauli/pauli.hh"

using namespace qcc;

TEST(PauliString, IdentityByDefault)
{
    PauliString p(4);
    EXPECT_TRUE(p.isIdentity());
    EXPECT_EQ(p.weight(), 0u);
    EXPECT_EQ(p.str(), "IIII");
}

TEST(PauliString, SetAndGetOps)
{
    PauliString p(4);
    p.setOp(0, PauliOp::Z);
    p.setOp(1, PauliOp::Y);
    p.setOp(3, PauliOp::X);
    EXPECT_EQ(p.op(0), PauliOp::Z);
    EXPECT_EQ(p.op(1), PauliOp::Y);
    EXPECT_EQ(p.op(2), PauliOp::I);
    EXPECT_EQ(p.op(3), PauliOp::X);
    EXPECT_EQ(p.str(), "XIYZ"); // qubit 3 leftmost, paper notation
    EXPECT_EQ(p.weight(), 3u);
}

TEST(PauliString, FromStringRoundTrip)
{
    for (const char *s : {"IIII", "XIYZ", "ZZZZ", "XYZI", "YYXX"}) {
        EXPECT_EQ(PauliString::fromString(s).str(), s);
    }
}

TEST(PauliString, FromStringMatchesPaperExample)
{
    // exp(i theta X3 I2 Y1 Z0) from Figure 2(a).
    PauliString p = PauliString::fromString("XIYZ");
    EXPECT_EQ(p.op(3), PauliOp::X);
    EXPECT_EQ(p.op(2), PauliOp::I);
    EXPECT_EQ(p.op(1), PauliOp::Y);
    EXPECT_EQ(p.op(0), PauliOp::Z);
}

TEST(PauliString, Support)
{
    PauliString p = PauliString::fromString("XIYZ");
    std::vector<unsigned> expected{0, 1, 3};
    EXPECT_EQ(p.support(), expected);
    EXPECT_EQ(p.supportMask(), 0b1011u);
}

TEST(PauliString, SingleQubitProductTable)
{
    // X*Y = iZ, Y*X = -iZ, Y*Z = iX, Z*Y = -iX, Z*X = iY, X*Z = -iY.
    struct Case
    {
        PauliOp a, b, r;
        std::complex<double> phase;
    };
    const std::complex<double> i(0, 1);
    std::vector<Case> cases = {
        {PauliOp::X, PauliOp::Y, PauliOp::Z, i},
        {PauliOp::Y, PauliOp::X, PauliOp::Z, -i},
        {PauliOp::Y, PauliOp::Z, PauliOp::X, i},
        {PauliOp::Z, PauliOp::Y, PauliOp::X, -i},
        {PauliOp::Z, PauliOp::X, PauliOp::Y, i},
        {PauliOp::X, PauliOp::Z, PauliOp::Y, -i},
        {PauliOp::X, PauliOp::X, PauliOp::I, 1.0},
        {PauliOp::Y, PauliOp::Y, PauliOp::I, 1.0},
        {PauliOp::Z, PauliOp::Z, PauliOp::I, 1.0},
        {PauliOp::I, PauliOp::Y, PauliOp::Y, 1.0},
    };
    for (const auto &c : cases) {
        PauliString a = PauliString::single(1, 0, c.a);
        PauliString b = PauliString::single(1, 0, c.b);
        auto [phase, r] = a.product(b);
        EXPECT_EQ(r.op(0), c.r) << pauliChar(c.a) << pauliChar(c.b);
        EXPECT_NEAR(std::abs(phase - c.phase), 0.0, 1e-14)
            << pauliChar(c.a) << pauliChar(c.b);
    }
}

TEST(PauliString, MultiQubitProductPhasesCompose)
{
    PauliString a = PauliString::fromString("XY");
    PauliString b = PauliString::fromString("YX");
    // (X@Y)(Y@X) = (XY)@(YX) = (iZ)@(-iZ) = Z@Z.
    auto [phase, r] = a.product(b);
    EXPECT_EQ(r.str(), "ZZ");
    EXPECT_NEAR(std::abs(phase - std::complex<double>(1, 0)), 0.0,
                1e-14);
}

TEST(PauliString, ProductIsAssociative)
{
    PauliString a = PauliString::fromString("XYZI");
    PauliString b = PauliString::fromString("ZZXY");
    PauliString c = PauliString::fromString("IYXZ");
    auto [p1, ab] = a.product(b);
    auto [p2, ab_c] = ab.product(c);
    auto [p3, bc] = b.product(c);
    auto [p4, a_bc] = a.product(bc);
    EXPECT_EQ(ab_c, a_bc);
    EXPECT_NEAR(std::abs(p1 * p2 - p3 * p4), 0.0, 1e-14);
}

TEST(PauliString, Commutation)
{
    auto commutes = [](const char *a, const char *b) {
        return PauliString::fromString(a).commutesWith(
            PauliString::fromString(b));
    };
    EXPECT_FALSE(commutes("X", "Y"));
    EXPECT_TRUE(commutes("X", "X"));
    EXPECT_TRUE(commutes("I", "Y"));
    EXPECT_TRUE(commutes("XX", "YY")); // two anticommuting positions
    EXPECT_FALSE(commutes("XI", "YY"));
    EXPECT_TRUE(commutes("ZZZZ", "XXXX"));
    EXPECT_FALSE(commutes("ZZZ", "XXX"));
}

TEST(PauliString, CommutationMatchesProductOrder)
{
    // P, Q commute iff PQ and QP give the same phase.
    std::vector<std::string> samples = {"XYZ", "ZIX", "YYI", "IZZ",
                                        "XXX", "IIY"};
    for (const auto &sa : samples) {
        for (const auto &sb : samples) {
            PauliString a = PauliString::fromString(sa);
            PauliString b = PauliString::fromString(sb);
            auto [pab, rab] = a.product(b);
            auto [pba, rba] = b.product(a);
            EXPECT_EQ(rab, rba);
            bool same = std::abs(pab - pba) < 1e-14;
            EXPECT_EQ(a.commutesWith(b), same) << sa << " vs " << sb;
        }
    }
}

TEST(PauliString, ImportanceDecayPaperExample)
{
    // Figure 4: Pa = IXYI..., PH = YXXZ... qubit-by-qubit example.
    // Using the 4-qubit prefix: q3: Pa=I (case 1), q2: PH=I would be
    // case 2, q1 equal ops (case 3), q0 differing ops (effective).
    PauliString pa = PauliString::fromString("IXYX");
    PauliString ph = PauliString::fromString("YXIZ");
    // q3: Pa=I -> decay; q2: equal X -> decay; q1: PH=I -> decay;
    // q0: X vs Z differ, both non-I -> effective.
    EXPECT_EQ(importanceDecay(pa, ph), 3u);
}

TEST(PauliString, ImportanceDecayBounds)
{
    PauliString a = PauliString::fromString("XXXX");
    PauliString b = PauliString::fromString("ZZZZ");
    EXPECT_EQ(importanceDecay(a, b), 0u); // all differ
    EXPECT_EQ(importanceDecay(a, a), 4u); // all equal
    PauliString id(4);
    EXPECT_EQ(importanceDecay(a, id), 4u);
    EXPECT_EQ(importanceDecay(id, b), 4u);
}

TEST(PauliString, HashDistinguishes)
{
    PauliStringHash h;
    EXPECT_NE(h(PauliString::fromString("XI")),
              h(PauliString::fromString("IX")));
    EXPECT_EQ(h(PauliString::fromString("XYZ")),
              h(PauliString::fromString("XYZ")));
}
