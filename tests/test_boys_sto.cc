/**
 * @file
 * Unit tests for the Boys function and the STO-nG fitter. The fitter
 * is validated against the canonical STO-3G 1s expansion (Hehre,
 * Stewart, Pople 1969): exponents (2.227660, 0.405771, 0.109818) and
 * coefficients (0.154329, 0.535328, 0.444635) at zeta = 1.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "chem/boys.hh"
#include "chem/sto_ng.hh"

using namespace qcc;

TEST(Boys, ZeroArgument)
{
    auto f = boys(3, 0.0);
    for (int m = 0; m <= 3; ++m)
        EXPECT_NEAR(f[m], 1.0 / (2 * m + 1), 1e-14);
}

TEST(Boys, F0ClosedForm)
{
    // F_0(T) = sqrt(pi/T)/2 erf(sqrt(T)).
    for (double t : {0.1, 0.5, 1.0, 5.0, 20.0, 40.0, 80.0}) {
        double expected =
            0.5 * std::sqrt(M_PI / t) * std::erf(std::sqrt(t));
        EXPECT_NEAR(boys(0, t)[0], expected, 1e-12) << "T = " << t;
    }
}

TEST(Boys, RecursionConsistency)
{
    // F_{m+1} = ((2m+1) F_m - exp(-T)) / (2T).
    for (double t : {0.3, 2.0, 10.0, 34.0, 36.0, 60.0}) {
        auto f = boys(5, t);
        for (int m = 0; m < 5; ++m) {
            double rhs =
                ((2 * m + 1) * f[m] - std::exp(-t)) / (2 * t);
            EXPECT_NEAR(f[m + 1], rhs, 1e-11)
                << "T = " << t << " m = " << m;
        }
    }
}

TEST(Boys, MonotoneDecreasingInOrder)
{
    auto f = boys(6, 3.0);
    for (int m = 0; m < 6; ++m)
        EXPECT_GT(f[m], f[m + 1]);
}

TEST(Boys, DerivativeIdentityAcrossSeriesAsymptoticSwitch)
{
    // dF_m/dT = -F_{m+1}; check it with a central difference that
    // straddles the series/asymptotic switch at T = 35, which also
    // verifies the two evaluation branches are mutually consistent.
    const double eps = 1e-3;
    auto lo = boys(5, 35.0 - eps);  // series branch
    auto hi = boys(5, 35.0 + eps);  // asymptotic branch
    auto mid = boys(5, 35.0 + 1e-9);
    for (int m = 0; m <= 4; ++m) {
        double numDeriv = (hi[m] - lo[m]) / (2 * eps);
        EXPECT_NEAR(numDeriv, -mid[m + 1], 1e-9) << "m = " << m;
    }
}

TEST(StoNg, Reproduces1sSto3gExpansion)
{
    const StoFit &fit = stoNgFit(1, 0, 3);
    ASSERT_EQ(fit.exponents.size(), 3u);
    // Canonical values, exponents descending.
    EXPECT_NEAR(fit.exponents[0], 2.227660, 0.05);
    EXPECT_NEAR(fit.exponents[1], 0.405771, 0.01);
    EXPECT_NEAR(fit.exponents[2], 0.109818, 0.003);
    EXPECT_NEAR(fit.coeffs[0], 0.154329, 0.01);
    EXPECT_NEAR(fit.coeffs[1], 0.535328, 0.01);
    EXPECT_NEAR(fit.coeffs[2], 0.444635, 0.01);
    EXPECT_GT(fit.overlap, 0.9984);
}

TEST(StoNg, FitQualityImprovesWithMoreGaussians)
{
    double prev = 0.0;
    for (int ng = 1; ng <= 4; ++ng) {
        const StoFit &fit = stoNgFit(1, 0, ng);
        EXPECT_GT(fit.overlap, prev) << "n_gauss = " << ng;
        prev = fit.overlap;
    }
    EXPECT_GT(stoNgFit(1, 0, 1).overlap, 0.97);
    EXPECT_GT(stoNgFit(1, 0, 4).overlap, 0.9996);
}

TEST(StoNg, HigherShellsFitWell)
{
    EXPECT_GT(stoNgFit(2, 0, 3).overlap, 0.995); // 2s (node-less fit)
    EXPECT_GT(stoNgFit(2, 1, 3).overlap, 0.998); // 2p
    EXPECT_GT(stoNgFit(3, 0, 3).overlap, 0.99);  // 3s
    EXPECT_GT(stoNgFit(3, 1, 3).overlap, 0.99);  // 3p
}

TEST(StoNg, CoefficientsNormalized)
{
    // Coefficients over normalized primitives with the Gram matrix
    // should give unit self-overlap; spot check by refitting overlap
    // magnitude bound |c| <= something sane and 2s tightest-primitive
    // coefficient negative (the well-known STO-3G sign pattern).
    const StoFit &fit2s = stoNgFit(2, 0, 3);
    EXPECT_LT(fit2s.coeffs[0], 0.0);
    const StoFit &fit1s = stoNgFit(1, 0, 3);
    for (double c : fit1s.coeffs)
        EXPECT_GT(c, 0.0);
}

TEST(StoNg, CachedFitsAreStable)
{
    const StoFit &a = stoNgFit(2, 1, 3);
    const StoFit &b = stoNgFit(2, 1, 3);
    EXPECT_EQ(&a, &b);
}
