/**
 * @file
 * Unit tests for the classical optimizers (Nelder-Mead, L-BFGS, SPSA)
 * on standard minimization problems.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "common/optimize.hh"

using namespace qcc;

namespace {

double
quadratic(const std::vector<double> &x)
{
    double s = 0.0;
    for (size_t i = 0; i < x.size(); ++i)
        s += (i + 1) * (x[i] - 1.0) * (x[i] - 1.0);
    return s;
}

double
rosenbrock(const std::vector<double> &x)
{
    double s = 0.0;
    for (size_t i = 0; i + 1 < x.size(); ++i) {
        double a = x[i + 1] - x[i] * x[i];
        double b = 1.0 - x[i];
        s += 100.0 * a * a + b * b;
    }
    return s;
}

} // namespace

TEST(NelderMead, QuadraticBowl)
{
    OptimizeResult r = nelderMead(quadratic, {0.0, 0.0, 0.0});
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.fun, 0.0, 1e-10);
    for (double xi : r.x)
        EXPECT_NEAR(xi, 1.0, 1e-4);
}

TEST(NelderMead, Rosenbrock2d)
{
    NelderMeadOptions o;
    o.maxIter = 5000;
    OptimizeResult r = nelderMead(rosenbrock, {-1.2, 1.0}, o);
    EXPECT_NEAR(r.x[0], 1.0, 1e-3);
    EXPECT_NEAR(r.x[1], 1.0, 1e-3);
}

TEST(NelderMead, ZeroDimensional)
{
    OptimizeResult r = nelderMead(quadratic, {});
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.funEvals, 1);
}

TEST(Lbfgs, QuadraticConvergesFast)
{
    OptimizeResult r = lbfgsMinimize(quadratic, {5.0, -3.0, 2.0});
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.fun, 0.0, 1e-9);
    EXPECT_LT(r.iterations, 50);
}

TEST(Lbfgs, RosenbrockWithNumericalGradient)
{
    // The banana valley with finite-difference gradients: expect the
    // basin to be reached (looser tolerance than the analytic case,
    // as the ftol stop triggers in the flat valley floor).
    LbfgsOptions o;
    o.maxIter = 2000;
    o.ftol = 1e-14;
    OptimizeResult r = lbfgsMinimize(rosenbrock, {-1.2, 1.0}, o);
    EXPECT_LT(r.fun, 1e-5);
    EXPECT_NEAR(r.x[0], 1.0, 5e-3);
    EXPECT_NEAR(r.x[1], 1.0, 1e-2);
}

TEST(Lbfgs, AnalyticGradientMatchesNumerical)
{
    GradientFn grad = [](const std::vector<double> &x) {
        std::vector<double> g(x.size());
        for (size_t i = 0; i < x.size(); ++i)
            g[i] = 2.0 * (i + 1) * (x[i] - 1.0);
        return g;
    };
    OptimizeResult r =
        lbfgsMinimize(quadratic, {4.0, 4.0, 4.0}, {}, grad);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.fun, 0.0, 1e-10);
}

TEST(Lbfgs, FewerIterationsForFewerParameters)
{
    // The paper's convergence claim in miniature: a 2-parameter
    // quadratic needs no more iterations than a 12-parameter one.
    OptimizeResult small =
        lbfgsMinimize(quadratic, std::vector<double>(2, 5.0));
    OptimizeResult large =
        lbfgsMinimize(quadratic, std::vector<double>(12, 5.0));
    EXPECT_LE(small.iterations, large.iterations + 1);
    EXPECT_LT(small.funEvals, large.funEvals);
}

TEST(NumericalGradient, MatchesAnalytic)
{
    std::vector<double> x{0.3, -0.7};
    auto g = numericalGradient(quadratic, x, 1e-6);
    EXPECT_NEAR(g[0], 2.0 * (x[0] - 1.0), 1e-6);
    EXPECT_NEAR(g[1], 4.0 * (x[1] - 1.0), 1e-6);
}

TEST(Spsa, NoisyQuadratic)
{
    // SPSA should find the basin even with evaluation noise.
    uint64_t state = 12345;
    auto noisy = [&state](const std::vector<double> &x) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        double noise = double(int64_t(state >> 33)) / double(1ll << 31);
        return quadratic(x) + 1e-3 * noise;
    };
    SpsaOptions o;
    o.maxIter = 800;
    OptimizeResult r = spsa(noisy, {2.0, -1.0}, o);
    EXPECT_LT(std::fabs(r.x[0] - 1.0), 0.15);
    EXPECT_LT(std::fabs(r.x[1] - 1.0), 0.15);
}
