/**
 * @file
 * Unit tests for the VQE layer: exactness on H2, variational
 * bounds, convergence-iteration behaviour under compression, and
 * the noisy (density-matrix) energy path — all through the
 * strategy-injected VqeDriver (the legacy runVqe wrappers are
 * gone).
 */

#include <cmath>
#include <gtest/gtest.h>

#include "ansatz/compression.hh"
#include "chem/molecules.hh"
#include "ferm/hamiltonian.hh"
#include "sim/lanczos.hh"
#include "vqe_test_util.hh"

using namespace qcc;

namespace {

const MolecularProblem &
h2Problem()
{
    static MolecularProblem prob =
        buildMolecularProblem(benchmarkMolecule("H2"), 0.74);
    return prob;
}

using qcc_test::minimizeMode;

} // namespace

TEST(Vqe, ZeroParametersGiveHartreeFock)
{
    const auto &prob = h2Problem();
    Ansatz a = buildUccsd(prob.nSpatial, prob.nElectrons);
    std::vector<double> zeros(a.nParams, 0.0);
    EXPECT_NEAR(ansatzEnergy(prob.hamiltonian, a, zeros),
                prob.hartreeFockEnergy, 1e-8);
}

TEST(Vqe, H2ReachesFciEnergy)
{
    const auto &prob = h2Problem();
    Ansatz a = buildUccsd(prob.nSpatial, prob.nElectrons);
    VqeResult res = minimizeMode("ideal", prob.hamiltonian, a);
    double exact = lanczosGroundEnergy(prob.hamiltonian);
    EXPECT_NEAR(res.energy, exact, 1e-6);
    EXPECT_TRUE(res.converged);
}

TEST(Vqe, VariationalLowerBound)
{
    // VQE can never dip below the exact ground energy.
    const auto &prob = h2Problem();
    Ansatz a = buildUccsd(prob.nSpatial, prob.nElectrons);
    double exact = lanczosGroundEnergy(prob.hamiltonian);
    for (double ratio : {0.34, 0.67, 1.0}) {
        CompressedAnsatz c =
            compressAnsatz(a, prob.hamiltonian, ratio);
        VqeResult res =
            minimizeMode("ideal", prob.hamiltonian, c.ansatz);
        EXPECT_GE(res.energy, exact - 1e-9) << ratio;
    }
}

TEST(Vqe, CompressionSpeedsConvergence)
{
    // Section VI-C's qualitative claim: fewer parameters, fewer
    // energy evaluations to converge (LiH, 30% vs full).
    const auto &entry = benchmarkMolecule("LiH");
    MolecularProblem prob = buildMolecularProblem(entry, 1.6);
    Ansatz full = buildUccsd(prob.nSpatial, prob.nElectrons);
    CompressedAnsatz small =
        compressAnsatz(full, prob.hamiltonian, 0.3);

    VqeResult rFull = minimizeMode("ideal", prob.hamiltonian, full);
    VqeResult rSmall =
        minimizeMode("ideal", prob.hamiltonian, small.ansatz);
    EXPECT_LT(rSmall.evals, rFull.evals);
}

TEST(Vqe, NelderMeadAgreesWithLbfgsOnH2)
{
    const auto &prob = h2Problem();
    Ansatz a = buildUccsd(prob.nSpatial, prob.nElectrons);
    VqeDriverOptions nm;
    nm.method = VqeDriverOptions::Method::NelderMead;
    nm.maxIter = 2000;
    VqeResult r1 = minimizeMode("ideal", prob.hamiltonian, a, nm);
    VqeResult r2 = minimizeMode("ideal", prob.hamiltonian, a);
    EXPECT_NEAR(r1.energy, r2.energy, 1e-5);
}

TEST(Vqe, NoisyEnergyAboveNoiseless)
{
    // Depolarizing noise mixes toward I/2^n, raising the energy of
    // a converged state above the noiseless optimum.
    const auto &prob = h2Problem();
    Ansatz a = buildUccsd(prob.nSpatial, prob.nElectrons);
    VqeResult clean = minimizeMode("ideal", prob.hamiltonian, a);

    NoiseModel paper = NoiseModel::paperDefault();
    double noisy = ansatzEnergyNoisy(prob.hamiltonian, a,
                                     clean.params, paper);
    EXPECT_GT(noisy, clean.energy);
    // At CNOT error 1e-4 and ~56 CNOTs the shift is small.
    EXPECT_LT(noisy - clean.energy, 0.05);
}

TEST(Vqe, NoisyEnergyGrowsWithErrorRate)
{
    const auto &prob = h2Problem();
    Ansatz a = buildUccsd(prob.nSpatial, prob.nElectrons);
    VqeResult clean = minimizeMode("ideal", prob.hamiltonian, a);

    double prev = clean.energy;
    for (double p : {1e-4, 1e-3, 1e-2}) {
        NoiseModel nm;
        nm.cnotDepolarizing = p;
        double e = ansatzEnergyNoisy(prob.hamiltonian, a,
                                     clean.params, nm);
        EXPECT_GT(e, prev) << p;
        prev = e;
    }
}

TEST(Vqe, NoisyVqeRecoversLandscape)
{
    // SPSA on the noisy H2 objective still lands near the true
    // minimum (Section VI-D's qualitative claim).
    const auto &prob = h2Problem();
    Ansatz a = buildUccsd(prob.nSpatial, prob.nElectrons);
    VqeDriverOptions o;
    o.method = VqeDriverOptions::Method::Spsa;
    o.spsaIter = 150;
    o.noise = NoiseModel::paperDefault();
    VqeResult res = minimizeMode("noisy", prob.hamiltonian, a, o);
    double exact = lanczosGroundEnergy(prob.hamiltonian);
    EXPECT_NEAR(res.energy, exact, 0.02);
}

TEST(Vqe, MismatchedWidthsFatal)
{
    PauliSum h(2);
    h.add(1.0, PauliString::fromString("ZZ"));
    Ansatz a = buildUccsd(2, 2); // 4 qubits
    EXPECT_DEATH(minimizeMode("ideal", h, a), "width mismatch");
}
