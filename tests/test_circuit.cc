/**
 * @file
 * Unit tests for the circuit IR: gate accounting conventions (SWAP =
 * 3 CNOTs), depth, inversion, and the OpenQASM exporter.
 */

#include <gtest/gtest.h>

#include "circuit/circuit.hh"
#include "sim/statevector.hh"

using namespace qcc;

TEST(Circuit, GateCounts)
{
    Circuit c(3);
    c.h(0);
    c.cnot(0, 1);
    c.cnot(1, 2);
    c.swap(0, 2);
    c.rz(2, 0.5);
    EXPECT_EQ(c.totalGates(), 5u);
    EXPECT_EQ(c.cnotCount(true), 5u);  // 2 CNOT + 3 for the SWAP
    EXPECT_EQ(c.cnotCount(false), 2u);
    EXPECT_EQ(c.swapCount(), 1u);
}

TEST(Circuit, DepthAsapSchedule)
{
    Circuit c(3);
    c.h(0);        // depth 1 on q0
    c.h(1);        // depth 1 on q1 (parallel)
    c.cnot(0, 1);  // depth 2
    c.x(2);        // depth 1 on q2
    c.cnot(1, 2);  // depth 3
    EXPECT_EQ(c.depth(), 3u);
}

TEST(Circuit, InverseComposesToIdentity)
{
    Circuit c(2);
    c.h(0);
    c.s(1);
    c.rx(0, 0.37);
    c.cnot(0, 1);
    c.rz(1, -1.2);

    Circuit full(2);
    full.append(c);
    full.append(c.inverse());

    Statevector sv(2, 0b01);
    sv.applyCircuit(full);
    EXPECT_NEAR(std::abs(sv.amplitudes()[0b01]), 1.0, 1e-12);
}

TEST(Circuit, PushValidatesQubits)
{
    Circuit c(2);
    EXPECT_DEATH(c.x(5), "out of range");
    EXPECT_DEATH(c.cnot(1, 1), "identical");
}

TEST(Circuit, QasmExport)
{
    Circuit c(2);
    c.h(0);
    c.cnot(0, 1);
    c.swap(0, 1);
    std::string q = c.toQasm();
    EXPECT_NE(q.find("OPENQASM 2.0"), std::string::npos);
    EXPECT_NE(q.find("h q[0];"), std::string::npos);
    EXPECT_NE(q.find("cx q[0],q[1];"), std::string::npos);
    // SWAP lowered to three cx.
    size_t count = 0, pos = 0;
    while ((pos = q.find("cx", pos)) != std::string::npos) {
        ++count;
        pos += 2;
    }
    EXPECT_EQ(count, 4u);
}

TEST(Gate, StrFormat)
{
    Gate g{GateKind::CNOT, 2, 5};
    EXPECT_EQ(g.str(), "cx q2, q5");
    Gate r{GateKind::RZ, 1, 0, 0.25};
    EXPECT_EQ(r.str(), "rz(0.25) q1");
}
