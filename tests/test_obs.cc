/**
 * @file
 * Observability-layer tests: metric counter/gauge/histogram
 * semantics and the cross-process metrics merge; span nesting across
 * the thread pool (balanced per-thread B/E stacks in the emitted
 * Chrome trace); the disabled-mode cost contract (zero events, zero
 * heap allocations); byte-identical adoption round trips (the sweepd
 * worker-reply path); torn-snapshot freedom for the StoreStats
 * cross-counter invariants under concurrent writers; and sweep
 * byte-identity with tracing on vs off.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <new>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "store/store.hh"
#include "sweep/sweep_engine.hh"

using namespace qcc;

// ---- allocation counter -------------------------------------------
// Global new/delete replacements that count and forward. This test
// binary is its own executable (one per tests/test_*.cc), so the
// override is isolated; it exists to pin the disabled-span contract:
// no heap traffic on the hot path when QCC_TRACE is off.

static std::atomic<uint64_t> gAllocs{0};

// The replacements forward new -> malloc and delete -> free by
// design; GCC's allocator-pair matching can't see that and flags
// the free() as mismatched.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void *
operator new(size_t n)
{
    gAllocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](size_t n)
{
    return ::operator new(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, size_t) noexcept
{
    std::free(p);
}

namespace {

struct VerboseSilencer
{
    VerboseSilencer() { setVerbose(false); }
} silencer;

/** One parsed trace event, as much as the tests care about. */
struct Ev
{
    std::string name, ph;
    double ts = 0.0;
    long long pid = 0, tid = 0;
};

std::vector<Ev>
parseEvents(const std::string &array_json)
{
    const JsonValue doc = JsonValue::parse(array_json);
    EXPECT_TRUE(doc.isArray());
    std::vector<Ev> out;
    for (const JsonValue &e : doc.items) {
        Ev ev;
        const JsonValue *v = e.find("name");
        if (v)
            ev.name = v->text;
        if ((v = e.find("ph")))
            ev.ph = v->text;
        if ((v = e.find("ts")))
            ev.ts = v->number;
        if ((v = e.find("pid")))
            ev.pid = (long long)v->number;
        if ((v = e.find("tid")))
            ev.tid = (long long)v->number;
        out.push_back(ev);
    }
    return out;
}

} // namespace

// ---- metrics ------------------------------------------------------

TEST(Metrics, CounterGaugeHistogramBasics)
{
    MetricCounter &c = metricCounter("test.obs.counter");
    c.reset();
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);

    MetricGauge &g = metricGauge("test.obs.gauge");
    g.reset();
    g.set(7);
    EXPECT_EQ(g.value(), 7);
    g.max(3); // below: no change
    EXPECT_EQ(g.value(), 7);
    g.max(11);
    EXPECT_EQ(g.value(), 11);

    MetricHistogram &h = metricHistogram("test.obs.hist");
    h.reset();
    h.record(0);
    h.record(1);
    h.record(1000);
    const MetricHistogram::Snapshot s = h.snapshot();
    EXPECT_EQ(s.count, 3u);
    EXPECT_EQ(s.sumUs, 1001u);
    EXPECT_NEAR(s.mean(), 1001.0 / 3.0, 1e-9);
    // Quantiles are bucket upper bounds: the p100 sample (1000 us)
    // lands in bucket 10 whose upper edge is 2^10 - 1.
    EXPECT_GE(s.quantile(1.0), 1000.0);
    EXPECT_LE(s.quantile(0.0), 1.0);
}

TEST(Metrics, BucketOfIsBitWidthClippedToRange)
{
    EXPECT_EQ(MetricHistogram::bucketOf(0), 0u);
    EXPECT_EQ(MetricHistogram::bucketOf(1), 1u);
    EXPECT_EQ(MetricHistogram::bucketOf(2), 2u);
    EXPECT_EQ(MetricHistogram::bucketOf(3), 2u);
    EXPECT_EQ(MetricHistogram::bucketOf(4), 3u);
    EXPECT_EQ(MetricHistogram::bucketOf(~uint64_t(0)),
              MetricHistogram::kBuckets - 1);
}

TEST(Metrics, JsonSnapshotRoundTripsThroughMerge)
{
    // Unique names so parallel registry users can't interfere.
    MetricCounter &c = metricCounter("test.merge.counter");
    MetricGauge &g = metricGauge("test.merge.gauge");
    MetricHistogram &h = metricHistogram("test.merge.hist");
    c.reset();
    g.reset();
    h.reset();
    c.add(5);
    g.set(9);
    h.record(100);
    h.record(3);

    const std::string doc = metricsJson();
    const JsonValue parsed = JsonValue::parse(doc);
    ASSERT_TRUE(parsed.isObject());

    // Merging a snapshot of ourselves doubles counters and
    // histograms; the gauge merges by max, so it stays put.
    ASSERT_TRUE(mergeMetricsDom(parsed));
    EXPECT_EQ(c.value(), 10u);
    EXPECT_EQ(g.value(), 9);
    const MetricHistogram::Snapshot s = h.snapshot();
    EXPECT_EQ(s.count, 4u);
    EXPECT_EQ(s.sumUs, 206u);

    EXPECT_FALSE(mergeMetricsDom(JsonValue::parse("[1, 2]")));
}

// ---- tracing ------------------------------------------------------

TEST(Trace, SpansNestAcrossPoolThreads)
{
    setTraceEnabled(true);
    clearTrace();
    {
        TraceSpan outer("test.outer");
        outer.arg("items", 64);
        parallelFor(0, 4096, [](size_t lo, size_t hi) {
            TraceSpan inner("test.chunk");
            inner.arg("lo", lo);
            TraceSpan leaf("test.leaf"); // nested within the chunk
            (void)hi;
        },
                    /*grain=*/64);
    }
    const std::string json = traceEventsArrayJson();
    setTraceEnabled(false);
    clearTrace();

    const std::vector<Ev> evs = parseEvents(json);
    ASSERT_GE(evs.size(), 6u); // outer pair + >= 1 chunk/leaf pair

    // Global order is sorted by timestamp...
    for (size_t i = 1; i < evs.size(); ++i)
        EXPECT_LE(evs[i - 1].ts, evs[i].ts);

    // ...and per (pid, tid) the B/E events form balanced,
    // properly-nested stacks with matching names — Perfetto's
    // well-formedness requirement.
    std::map<std::pair<long long, long long>,
             std::vector<std::string>>
        stacks;
    size_t pairs = 0;
    for (const Ev &e : evs) {
        auto &stack = stacks[{e.pid, e.tid}];
        if (e.ph == "B") {
            stack.push_back(e.name);
        } else {
            ASSERT_EQ(e.ph, "E");
            ASSERT_FALSE(stack.empty());
            EXPECT_EQ(stack.back(), e.name);
            stack.pop_back();
            ++pairs;
        }
    }
    for (const auto &[key, stack] : stacks)
        EXPECT_TRUE(stack.empty());
    EXPECT_EQ(pairs * 2, evs.size());
    EXPECT_GE(pairs, 3u);
}

TEST(Trace, DisabledSpansCostNoEventsAndNoAllocations)
{
    setTraceEnabled(false);
    clearTrace();

    const uint64_t before =
        gAllocs.load(std::memory_order_relaxed);
    for (int i = 0; i < 1000; ++i) {
        TraceSpan span("test.disabled");
        span.arg("i", i);
        span.arg("flag", true);
        span.arg("x", 1.5);
        EXPECT_FALSE(span.active());
        EXPECT_GE(span.elapsedMillis(), 0.0); // clock still works
    }
    const uint64_t after = gAllocs.load(std::memory_order_relaxed);

    EXPECT_EQ(after - before, 0u);
    EXPECT_EQ(traceEventCount(), 0u);
    EXPECT_EQ(writeTraceJson("disabled"), "");
}

TEST(Trace, AdoptedEventsReserializeByteIdentically)
{
    setTraceEnabled(true);
    clearTrace();
    {
        TraceSpan span("test.roundtrip");
        span.arg("kind", "adopted");
        span.arg("jobs", 12);
        span.arg("delta", -3);
        span.arg("ok", true);
        span.arg("ratio", 0.25);
        TraceSpan bare("test.noargs");
    }
    const std::string original = traceEventsArrayJson();
    ASSERT_NE(original, "[]");

    // The sweepd service path: parse a worker's array, adopt it into
    // a clean buffer, re-serialize. Timestamps, pids, tids, and args
    // must survive verbatim.
    const JsonValue doc = JsonValue::parse(original);
    clearTrace();
    const size_t adopted = adoptTraceEventsDom(doc);
    EXPECT_EQ(adopted, 4u);
    const std::string replayed = traceEventsArrayJson();
    setTraceEnabled(false);
    clearTrace();

    EXPECT_EQ(original, replayed);
}

TEST(Trace, WrapperDocumentParsesAndNamesTraceEvents)
{
    setTraceEnabled(true);
    clearTrace();
    { TraceSpan span("test.wrapper"); }
    const std::string doc = traceEventsJson();
    setTraceEnabled(false);
    clearTrace();

    const JsonValue parsed = JsonValue::parse(doc);
    ASSERT_TRUE(parsed.isObject());
    const JsonValue *events = parsed.find("traceEvents");
    ASSERT_NE(events, nullptr);
    EXPECT_TRUE(events->isArray());
    EXPECT_EQ(events->items.size(), 2u);
}

// ---- StoreStats snapshot consistency ------------------------------

TEST(StoreStatsConsistency, SnapshotsNeverTearCrossCounterInvariants)
{
    resetStoreStats();

    // Writers maintain the real stores' causal pairs: a disk write
    // only ever follows the miss (or build) that caused it. The
    // reader asserts the invariant "writes <= causes" on every
    // snapshot — a relaxed-only implementation shows transient
    // violations here (write visible before its miss).
    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    for (int t = 0; t < 4; ++t) {
        writers.emplace_back([&stop] {
            while (!stop.load(std::memory_order_relaxed)) {
                countCircuitDiskMiss();
                countCircuitDiskWrite();
                countProblemBuild();
                countProblemDiskWrite();
            }
        });
    }

    for (int i = 0; i < 20000; ++i) {
        const StoreStats ss = storeStats();
        ASSERT_LE(ss.circuitDiskWrites,
                  ss.circuitDiskMisses + ss.circuitBadEntries);
        ASSERT_LE(ss.problemDiskWrites, ss.problemBuilds);
    }

    stop.store(true, std::memory_order_relaxed);
    for (std::thread &w : writers)
        w.join();
    resetStoreStats();
}

// ---- tracing does not perturb results -----------------------------

TEST(Trace, SweepResultsAreByteIdenticalTracedVsUntraced)
{
    // emit_timings: false keeps wall clocks out of the document, so
    // the two runs must serialize byte-identically; any divergence
    // means instrumentation leaked into computation.
    const char *specJson = R"({
      "name": "obs_identity",
      "base": {
        "molecule": "H2", "bond": 0.74, "mode": "sampled",
        "optimizer": "spsa", "spsa_iter": 6, "shots": 512,
        "reference": false, "seed": 2021
      },
      "axes": {"grouping": ["greedy", "graph-coloring"]},
      "emit_timings": false
    })";

    const bool storeWasEnabled = storeEnabled();
    setStoreEnabled(false);

    SweepEngineOptions opts;
    opts.concurrency = 2;

    setTraceEnabled(false);
    SweepEngine plain(SweepSpec::fromJson(specJson), opts);
    const std::string untraced = plain.run().json();

    setTraceEnabled(true);
    clearTrace();
    SweepEngine instrumented(SweepSpec::fromJson(specJson), opts);
    const std::string traced = instrumented.run().json();
    const size_t events = traceEventCount();
    setTraceEnabled(false);
    clearTrace();
    setStoreEnabled(storeWasEnabled);

    EXPECT_GT(events, 0u); // the traced run really did record spans
    EXPECT_EQ(untraced, traced);
}
