/**
 * @file
 * Unit tests for second quantization and the Jordan-Wigner transform:
 * canonical anticommutation relations, number operators, Hermiticity,
 * and the known H2 qubit Hamiltonian structure.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "chem/molecules.hh"
#include "ferm/fermion_op.hh"
#include "ferm/hamiltonian.hh"
#include "ferm/jordan_wigner.hh"
#include "sim/lanczos.hh"
#include "sim/statevector.hh"

using namespace qcc;

TEST(JordanWigner, LadderShape)
{
    PauliSum a2 = jwLadder(2, 4, false);
    ASSERT_EQ(a2.numTerms(), 2u);
    // Z chain on qubits 0,1; X or Y on qubit 2.
    for (const auto &t : a2.terms()) {
        EXPECT_EQ(t.string.op(0), PauliOp::Z);
        EXPECT_EQ(t.string.op(1), PauliOp::Z);
        EXPECT_EQ(t.string.op(3), PauliOp::I);
        EXPECT_TRUE(t.string.op(2) == PauliOp::X ||
                    t.string.op(2) == PauliOp::Y);
    }
}

TEST(JordanWigner, AnnihilatesVacuumAndLowersOccupied)
{
    // a_1 |q1=1, q0=0> = |00> (up to JW sign), a_1 |00> = 0.
    PauliSum a1 = jwLadder(1, 2, false);
    {
        Statevector sv(2, 0b10);
        std::vector<cplx> out(4, 0.0);
        for (const auto &t : a1.terms())
            sv.accumulatePauli(t.coeff, t.string, out);
        EXPECT_NEAR(std::abs(out[0b00]), 1.0, 1e-12);
        EXPECT_NEAR(std::abs(out[0b10]), 0.0, 1e-12);
    }
    {
        Statevector sv(2, 0b00);
        std::vector<cplx> out(4, 0.0);
        for (const auto &t : a1.terms())
            sv.accumulatePauli(t.coeff, t.string, out);
        for (const auto &amp : out)
            EXPECT_NEAR(std::abs(amp), 0.0, 1e-12);
    }
}

TEST(JordanWigner, CanonicalAnticommutation)
{
    // {a_p, a+_q} = delta_pq, {a_p, a_q} = 0, over 3 modes.
    const unsigned n = 3;
    for (unsigned p = 0; p < n; ++p) {
        for (unsigned q = 0; q < n; ++q) {
            PauliSum ap = jwLadder(p, n, false);
            PauliSum aqd = jwLadder(q, n, true);
            PauliSum anti = ap.product(aqd);
            anti.add(aqd.product(ap));
            anti.simplify();
            if (p == q) {
                ASSERT_EQ(anti.numTerms(), 1u);
                EXPECT_TRUE(anti.terms()[0].string.isIdentity());
                EXPECT_NEAR(std::abs(anti.terms()[0].coeff - 1.0),
                            0.0, 1e-12);
            } else {
                EXPECT_EQ(anti.numTerms(), 0u) << p << "," << q;
            }

            PauliSum aq = jwLadder(q, n, false);
            PauliSum anti2 = ap.product(aq);
            anti2.add(aq.product(ap));
            anti2.simplify();
            EXPECT_EQ(anti2.numTerms(), 0u);
        }
    }
}

TEST(JordanWigner, NumberOperator)
{
    // a+_p a_p = (I - Z_p)/2.
    PauliSum num = jwLadder(1, 3, true).product(jwLadder(1, 3, false));
    num.simplify();
    ASSERT_EQ(num.numTerms(), 2u);
    for (const auto &t : num.terms()) {
        if (t.string.isIdentity()) {
            EXPECT_NEAR(std::abs(t.coeff - 0.5), 0.0, 1e-12);
        } else {
            EXPECT_EQ(t.string.op(1), PauliOp::Z);
            EXPECT_NEAR(std::abs(t.coeff + 0.5), 0.0, 1e-12);
        }
    }
}

TEST(JordanWigner, FermionOpAdjointRoundTrip)
{
    FermionOp t(4);
    t.add({0.5, 0.25}, {{2, true}, {0, false}});
    FermionOp tdd = t.adjoint().adjoint();
    ASSERT_EQ(tdd.terms().size(), 1u);
    EXPECT_NEAR(std::abs(tdd.terms()[0].coeff -
                         std::complex<double>(0.5, 0.25)),
                0.0, 1e-14);
    EXPECT_EQ(tdd.terms()[0].ops[0].mode, 2u);
    EXPECT_TRUE(tdd.terms()[0].ops[0].creation);
}

TEST(Hamiltonian, HfMaskBlockSpin)
{
    // 3 spatial orbitals, 4 electrons: alpha {0,1}, beta {3,4}.
    EXPECT_EQ(hartreeFockMask(3, 4), 0b011011u);
    EXPECT_EQ(hartreeFockMask(2, 2), 0b0101u);
}

TEST(Hamiltonian, H2QubitHamiltonianStructure)
{
    MolecularProblem prob =
        buildMolecularProblem(benchmarkMolecule("H2"), 0.74);
    // The canonical JW H2 Hamiltonian has 15 terms on 4 qubits.
    EXPECT_EQ(prob.nQubits, 4u);
    EXPECT_EQ(prob.hamiltonian.numTerms(), 15u);
    EXPECT_LT(prob.hamiltonian.maxImagCoeff(), 1e-10);
}

TEST(Hamiltonian, HfExpectationMatchesScf)
{
    // <HF| H_qubit |HF> must equal the RHF total energy.
    for (const char *name : {"H2", "LiH", "HF"}) {
        const auto &entry = benchmarkMolecule(name);
        MolecularProblem prob =
            buildMolecularProblem(entry, entry.equilibriumBond);
        Statevector hf(prob.nQubits,
                       hartreeFockMask(prob.nSpatial,
                                       prob.nElectrons));
        double e = hf.expectation(prob.hamiltonian);
        // Frozen-core/removed-virtual spaces shift the HF reference
        // by construction only when orbitals are dropped; for H2/HF
        // nothing is removed, LiH removes two virtuals (HF value
        // unchanged: virtuals don't enter the HF energy).
        EXPECT_NEAR(e, prob.hartreeFockEnergy, 1e-6) << name;
    }
}

TEST(Hamiltonian, H2GroundStateMatchesFci)
{
    // STO-3G H2 FCI at 0.74 A: about -1.137 Ha.
    MolecularProblem prob =
        buildMolecularProblem(benchmarkMolecule("H2"), 0.74);
    double e = lanczosGroundEnergy(prob.hamiltonian);
    EXPECT_NEAR(e, -1.137, 0.004);
}
