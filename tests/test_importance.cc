/**
 * @file
 * Unit tests for Algorithm 1 (parameter importance estimation):
 * score arithmetic, weighting by Hamiltonian coefficients, and the
 * semantic property that importance predicts energy sensitivity.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "ansatz/importance.hh"
#include "chem/molecules.hh"
#include "ferm/hamiltonian.hh"
#include "vqe/vqe.hh"

using namespace qcc;

TEST(Importance, StringScoreArithmetic)
{
    // H = 0.5 * ZZ + 0.25 * XI on 2 qubits; Pa = XY.
    // d(XY, ZZ): both non-I, both differ -> d = 0 -> 2^0 * 0.5.
    // d(XY, XI): q1 equal (X) -> decay, q0 PH = I -> decay -> d = 2
    //            -> 2^-2 * 0.25.
    PauliSum h(2);
    h.add(0.5, PauliString::fromString("ZZ"));
    h.add(0.25, PauliString::fromString("XI"));
    double s = stringImportance(PauliString::fromString("XY"), h);
    EXPECT_NEAR(s, 0.5 + 0.0625, 1e-12);
}

TEST(Importance, NegativeWeightsUseAbsoluteValue)
{
    PauliSum h(1);
    h.add(-2.0, PauliString::fromString("Z"));
    double s = stringImportance(PauliString::fromString("X"), h);
    EXPECT_NEAR(s, 2.0, 1e-12);
}

TEST(Importance, IdentityAnsatzStringScoresLowest)
{
    PauliSum h(3);
    h.add(1.0, PauliString::fromString("XYZ"));
    double sId = stringImportance(PauliString(3), h);
    double sOrth = stringImportance(PauliString::fromString("ZXY"), h);
    EXPECT_LT(sId, sOrth);
    EXPECT_NEAR(sId, std::ldexp(1.0, -3), 1e-12);
    EXPECT_NEAR(sOrth, 1.0, 1e-12);
}

TEST(Importance, ParameterScoreSumsItsStrings)
{
    const auto &entry = benchmarkMolecule("H2");
    MolecularProblem prob = buildMolecularProblem(entry, 0.74);
    Ansatz a = buildUccsd(prob.nSpatial, prob.nElectrons);

    auto perString = stringScores(a, prob.hamiltonian);
    auto perParam = parameterImportance(a, prob.hamiltonian);

    std::vector<double> manual(a.nParams, 0.0);
    for (size_t j = 0; j < a.rotations.size(); ++j)
        manual[a.rotations[j].param] += perString[j];
    for (unsigned k = 0; k < a.nParams; ++k)
        EXPECT_NEAR(perParam[k], manual[k], 1e-12);
}

TEST(Importance, DoubleExcitationDominatesInH2)
{
    // For H2 the doubles amplitude carries the correlation energy;
    // Algorithm 1 must rank it above the singles.
    const auto &entry = benchmarkMolecule("H2");
    MolecularProblem prob = buildMolecularProblem(entry, 0.74);
    Ansatz a = buildUccsd(prob.nSpatial, prob.nElectrons);
    auto imp = parameterImportance(a, prob.hamiltonian);

    unsigned doubleIdx = ~0u;
    for (unsigned k = 0; k < a.nParams; ++k)
        if (a.excitations[k].kind == Excitation::Kind::Double)
            doubleIdx = k;
    ASSERT_NE(doubleIdx, ~0u);
    for (unsigned k = 0; k < a.nParams; ++k) {
        if (k != doubleIdx) {
            EXPECT_GE(imp[doubleIdx], imp[k]);
        }
    }
}

TEST(Importance, PredictsEnergySensitivity)
{
    // Semantic check on LiH: the gradient magnitude |dE/dtheta_k| at
    // a small random point should correlate positively with the
    // importance ranking (Spearman-like sign test on averages).
    const auto &entry = benchmarkMolecule("LiH");
    MolecularProblem prob = buildMolecularProblem(entry, 1.6);
    Ansatz a = buildUccsd(prob.nSpatial, prob.nElectrons);
    auto imp = parameterImportance(a, prob.hamiltonian);

    std::vector<double> x(a.nParams, 0.02);
    const double eps = 1e-4;
    std::vector<double> grad(a.nParams);
    for (unsigned k = 0; k < a.nParams; ++k) {
        auto xp = x, xm = x;
        xp[k] += eps;
        xm[k] -= eps;
        grad[k] = std::fabs(
            (ansatzEnergy(prob.hamiltonian, a, xp) -
             ansatzEnergy(prob.hamiltonian, a, xm)) /
            (2 * eps));
    }

    // Mean gradient of the top half (by importance) should exceed
    // the mean gradient of the bottom half.
    std::vector<unsigned> order(a.nParams);
    for (unsigned k = 0; k < a.nParams; ++k)
        order[k] = k;
    std::sort(order.begin(), order.end(), [&](unsigned p, unsigned q) {
        return imp[p] > imp[q];
    });
    double top = 0, bottom = 0;
    unsigned half = a.nParams / 2;
    for (unsigned i = 0; i < half; ++i)
        top += grad[order[i]];
    for (unsigned i = half; i < a.nParams; ++i)
        bottom += grad[order[i]];
    EXPECT_GT(top / half, bottom / (a.nParams - half));
}
