/**
 * @file
 * Unit tests for traditional chain synthesis: unitary equivalence
 * with the direct Pauli-rotation kernel, Figure 2 gate structure,
 * and cost accounting.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "ansatz/uccsd.hh"
#include "common/rng.hh"
#include "compiler/chain_synthesis.hh"
#include "sim/statevector.hh"

using namespace qcc;

namespace {

Statevector
randomState(unsigned n, uint64_t seed)
{
    Rng rng(seed);
    Statevector sv(n);
    for (auto &a : sv.amplitudes())
        a = cplx(rng.gaussian(), rng.gaussian());
    sv.normalize();
    return sv;
}

} // namespace

class ChainStrings : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ChainStrings, MatchesDirectRotation)
{
    PauliString p = PauliString::fromString(GetParam());
    const unsigned n = p.numQubits();
    const double theta = 0.413;

    Statevector direct = randomState(n, 31 + n);
    Statevector viaCircuit = direct;
    direct.applyPauliRotation(theta, p);
    viaCircuit.applyCircuit(pauliRotationChain(p, theta, n));

    for (size_t i = 0; i < direct.dim(); ++i)
        EXPECT_NEAR(std::abs(direct.amplitudes()[i] -
                             viaCircuit.amplitudes()[i]),
                    0.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Strings, ChainStrings,
                         ::testing::Values("XIYZ", "ZZZZ", "XYXY",
                                           "IZIZ", "YIIX", "Z", "XY",
                                           "ZIIIZ"));

TEST(ChainSynthesis, Figure2aStructure)
{
    // exp(i t X3 I2 Y1 Z0): H on q3, RX on q1, CNOTs q0->q1->q3.
    PauliString p = PauliString::fromString("XIYZ");
    Circuit c = pauliRotationChain(p, 0.5, 4);

    // 2 basis + 2 CNOT + 1 RZ + 2 CNOT + 2 basis = 9 gates.
    EXPECT_EQ(c.totalGates(), 9u);
    EXPECT_EQ(c.cnotCount(), 4u);
    const auto &g = c.gates();
    // Basis layer in ascending qubit order: RX on q1 (Y), H on q3.
    EXPECT_EQ(g[0].kind, GateKind::RX);
    EXPECT_EQ(g[0].q0, 1u);
    EXPECT_EQ(g[1].kind, GateKind::H);
    EXPECT_EQ(g[1].q0, 3u);
    EXPECT_EQ(g[2].kind, GateKind::CNOT);
    EXPECT_EQ(g[2].q0, 0u);
    EXPECT_EQ(g[2].q1, 1u);
    EXPECT_EQ(g[3].kind, GateKind::CNOT);
    EXPECT_EQ(g[3].q0, 1u);
    EXPECT_EQ(g[3].q1, 3u);
    EXPECT_EQ(g[4].kind, GateKind::RZ);
    EXPECT_EQ(g[4].q0, 3u);
}

TEST(ChainSynthesis, IdentityStringEmptyCircuit)
{
    Circuit c = pauliRotationChain(PauliString(4), 0.7, 4);
    EXPECT_EQ(c.totalGates(), 0u);
}

TEST(ChainSynthesis, WeightOneNoCnots)
{
    Circuit c = pauliRotationChain(PauliString::fromString("IXII"),
                                   0.7, 4);
    EXPECT_EQ(c.cnotCount(), 0u);
    EXPECT_EQ(c.totalGates(), 3u); // H, RZ, H
}

TEST(ChainSynthesis, AnsatzCircuitMatchesRotationSequence)
{
    // Whole-ansatz equivalence on H2-sized UCCSD with random params.
    Ansatz a = buildUccsd(2, 2);
    std::vector<double> params{0.11, -0.23, 0.31};

    Statevector direct(a.nQubits, a.hfMask);
    for (const auto &r : a.rotations)
        direct.applyPauliRotation(params[r.param] * r.coeff, r.string);

    Statevector viaCircuit(a.nQubits);
    viaCircuit.applyCircuit(synthesizeChainCircuit(a, params, true));

    for (size_t i = 0; i < direct.dim(); ++i)
        EXPECT_NEAR(std::abs(direct.amplitudes()[i] -
                             viaCircuit.amplitudes()[i]),
                    0.0, 1e-12);
}

TEST(ChainSynthesis, CnotCountFormula)
{
    Ansatz a = buildUccsd(3, 2);
    std::vector<double> zeros(a.nParams, 0.0);
    Circuit c = synthesizeChainCircuit(a, zeros, false);
    EXPECT_EQ(c.cnotCount(), chainCnotCount(a));
}
