/**
 * @file
 * sweepd (process-per-job sweep runner) tests: pipe framing round
 * trips, one-job worker exchanges, crash isolation (an abort()ing
 * worker records one failed job and the service survives), the hard
 * timeout (a sleeping worker is killed and reaped within
 * tolerance), resume (re-submitting after a partial run re-runs
 * only the missing jobs and reproduces the uninterrupted document
 * byte for byte), and cross-process persistent-store sharing (a
 * second worker process serves chemistry and compilation from the
 * disk tier with zero rebuilds).
 *
 * The test binary doubles as the worker executable: when invoked
 * with --worker it behaves exactly like `qcc_sweepd --worker`
 * (fault-injection hooks included), so every test is hermetic.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include <unistd.h>

#include "common/logging.hh"
#include "common/subprocess.hh"
#include "store/store.hh"
#include "sweepd/protocol.hh"
#include "sweepd/service.hh"
#include "sweepd/worker.hh"

using namespace qcc;

namespace {

struct VerboseSilencer
{
    VerboseSilencer() { setVerbose(false); }
} silencer;

/** Scoped scratch directory, deleted on exit. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
    {
        static std::atomic<int> seq{0};
        path_ = (std::filesystem::temp_directory_path() /
                 ("qcc_sweepd_" + tag + "_" +
                  std::to_string(::getpid()) + "_" +
                  std::to_string(seq++)))
                    .string();
        std::filesystem::create_directories(path_);
    }

    ~TempDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path_, ec);
    }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** Scoped environment variable (restores the prior value). */
class EnvGuard
{
  public:
    EnvGuard(std::string name, const std::string &value)
        : name_(std::move(name))
    {
        if (const char *old = std::getenv(name_.c_str())) {
            had_ = true;
            old_ = old;
        }
        ::setenv(name_.c_str(), value.c_str(), 1);
    }

    ~EnvGuard()
    {
        if (had_)
            ::setenv(name_.c_str(), old_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::string old_;
    bool had_ = false;
};

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(bool(in)) << "cannot read " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** This test binary, invokable as `<self> --worker`. */
std::string
selfPath()
{
    return sweepd::selfExecutablePath(nullptr);
}

/** Cheap stochastic H2 sweep over 4 seeds, deterministic bytes. */
SweepSpec
smallSweep()
{
    return SweepSpec::fromJson(R"({
      "name": "sweepd_unit",
      "base": {
        "molecule": "H2", "bond": 0.74, "mode": "sampled",
        "optimizer": "spsa", "spsa_iter": 8, "shots": 1024,
        "reference": false
      },
      "axes": { "seed": [11, 12, 13, 14] },
      "concurrency": 2,
      "emit_timings": false
    })");
}

sweepd::SweepdOptions
serviceOptions()
{
    sweepd::SweepdOptions opts;
    opts.workerPath = selfPath();
    return opts;
}

/** Run one spec through a worker process directly (no service). */
sweepd::WorkerReply
runWorkerJob(const ExperimentSpec &spec)
{
    sweepd::WorkerReply reply;
    ChildProcess child = spawnChildProcess(
        {selfPath(), std::string(sweepd::kWorkerFlag)}, {});
    EXPECT_GT(child.pid, 0);
    if (child.pid <= 0)
        return reply;
    EXPECT_TRUE(writeFrame(
        child.stdinFd,
        sweepd::encodeJobRequest(sweepd::JobRequest{spec})));
    closeFd(child.stdinFd);
    std::string payload;
    const FrameStatus fs =
        readFrame(child.stdoutFd, payload, 120000.0);
    closeFd(child.stdoutFd);
    const ExitStatus es = reapProcess(child.pid);
    EXPECT_EQ(fs, FrameStatus::Ok) << frameStatusName(fs);
    EXPECT_TRUE(es.ok()) << es.describe();
    if (fs == FrameStatus::Ok)
        EXPECT_TRUE(sweepd::decodeReply(payload, reply));
    return reply;
}

} // namespace

// ---------------------------------------------------------------
// framing

TEST(SweepdFraming, RoundTripsPayloadsThroughAPipe)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    const std::string payload = "{\"hello\": \"world\"}";
    ASSERT_TRUE(writeFrame(fds[1], payload));
    std::string back;
    EXPECT_EQ(readFrame(fds[0], back, 1000.0), FrameStatus::Ok);
    EXPECT_EQ(back, payload);

    // An empty payload frames fine too.
    ASSERT_TRUE(writeFrame(fds[1], ""));
    EXPECT_EQ(readFrame(fds[0], back, 1000.0), FrameStatus::Ok);
    EXPECT_EQ(back, "");

    ::close(fds[1]);
    // Writer gone: the reader sees a clean EOF, not a hang.
    EXPECT_EQ(readFrame(fds[0], back, 1000.0), FrameStatus::Eof);
    ::close(fds[0]);
}

TEST(SweepdFraming, RejectsCorruptStreams)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    // Stray text where a frame header should be.
    const char junk[] = "this is not a frame header at all";
    ASSERT_EQ(::write(fds[1], junk, sizeof(junk) - 1),
              ssize_t(sizeof(junk) - 1));
    ::close(fds[1]);
    std::string back;
    EXPECT_EQ(readFrame(fds[0], back, 1000.0),
              FrameStatus::Corrupt);
    ::close(fds[0]);
}

TEST(SweepdFraming, TimesOutOnASilentPeer)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    std::string back;
    EXPECT_EQ(readFrame(fds[0], back, 50.0), FrameStatus::Timeout);
    ::close(fds[0]);
    ::close(fds[1]);
}

// ---------------------------------------------------------------
// one worker process

TEST(SweepdWorker, RunsOneJobAndReturnsItsResult)
{
    ExperimentSpec spec;
    spec.molecule = "H2";
    spec.bond = 0.74;
    spec.mode = "sampled";
    spec.optimizer = "spsa";
    spec.spsaIter = 8;
    spec.shots = 1024;
    spec.seed = 7;
    spec.reference = false;

    const sweepd::WorkerReply reply = runWorkerJob(spec);
    ASSERT_TRUE(reply.done) << reply.error;
    EXPECT_EQ(reply.result.spec.molecule, "H2");
    EXPECT_LT(reply.result.energy(), 0.0); // bound H2
    EXPECT_GT(reply.result.shots, 0u);
}

TEST(SweepdWorker, ReportsASpecErrorAsFastFail)
{
    ExperimentSpec spec;
    spec.molecule = "unobtainium";
    const sweepd::WorkerReply reply = runWorkerJob(spec);
    EXPECT_FALSE(reply.done);
    EXPECT_TRUE(reply.fastFail);
    EXPECT_NE(reply.error.find("unobtainium"), std::string::npos);
}

// ---------------------------------------------------------------
// crash isolation

TEST(SweepdService, AWorkerCrashRecordsOneFailedJobAndTheSweepFinishes)
{
    TempDir json("crash");
    EnvGuard jsonEnv("QCC_JSON", json.path());
    // Seed 13 calls abort() inside the worker.
    EnvGuard crash("QCC_SWEEPD_TEST_CRASH_SEED", "13");

    sweepd::SweepdService service(serviceOptions());
    sweepd::SweepdRunStats stats;
    ResultStore store = service.submit(smallSweep(), &stats);

    EXPECT_EQ(store.countWithStatus(JobStatus::Done), 3u);
    ASSERT_EQ(store.countWithStatus(JobStatus::Failed), 1u);
    const SweepJobRecord &failed = store.jobs()[2]; // seed 13
    EXPECT_EQ(failed.status, JobStatus::Failed);
    EXPECT_NE(failed.error.find("signal 6"), std::string::npos)
        << failed.error;
}

// ---------------------------------------------------------------
// hard timeout

TEST(SweepdService, HardTimeoutKillsAndReapsTheWorker)
{
    TempDir json("timeout");
    EnvGuard jsonEnv("QCC_JSON", json.path());
    // Seed 12 sleeps ~30 s in the worker; the budget is 500 ms.
    EnvGuard sleeper("QCC_SWEEPD_TEST_SLEEP_SEED", "12");

    SweepSpec spec = SweepSpec::fromJson(R"({
      "name": "sweepd_timeout",
      "base": {
        "molecule": "H2", "bond": 0.74, "mode": "sampled",
        "optimizer": "spsa", "spsa_iter": 8, "shots": 1024,
        "reference": false
      },
      "axes": { "seed": [11, 12] },
      "emit_timings": false
    })");

    sweepd::SweepdOptions opts = serviceOptions();
    opts.jobTimeoutMs = 500.0;

    sweepd::SweepdService service(opts);
    ResultStore store = service.submit(spec);

    EXPECT_EQ(store.countWithStatus(JobStatus::Done), 1u);
    ASSERT_EQ(store.countWithStatus(JobStatus::TimedOut), 1u);
    const SweepJobRecord &killed = store.jobs()[1]; // seed 12
    EXPECT_EQ(killed.status, JobStatus::TimedOut);
    EXPECT_EQ(killed.timeoutKind, TimeoutKind::Hard);
    EXPECT_FALSE(killed.finished()); // no result to read
    // Killed and reaped at the deadline, not after the 30 s sleep.
    EXPECT_LT(killed.wallMillis, 10000.0);
    EXPECT_NE(killed.error.find("hard timeout"), std::string::npos)
        << killed.error;
    // The aggregate names the kind, distinguishing it from the
    // in-process engine's soft variant.
    EXPECT_NE(store.json().find("\"timeout_kind\": \"hard\""),
              std::string::npos);
}

// ---------------------------------------------------------------
// resume

TEST(SweepdService, ResumeReRunsOnlyMissingJobsAndReproducesBytes)
{
    // Uninterrupted baseline.
    TempDir cleanDir("resume_clean");
    std::string cleanDoc;
    {
        EnvGuard jsonEnv("QCC_JSON", cleanDir.path());
        sweepd::SweepdService service(serviceOptions());
        sweepd::SweepdRunStats stats;
        service.submit(smallSweep(), &stats);
        EXPECT_EQ(stats.resumed, 0u);
        EXPECT_EQ(stats.ran, 4u);
        cleanDoc = slurp(cleanDir.path() +
                         "/SWEEP_sweepd_unit.json");
    }

    // Interrupted run: one job crashes, three complete; the
    // write-through aggregate is left behind as the resume source.
    TempDir dir("resume");
    EnvGuard jsonEnv("QCC_JSON", dir.path());
    {
        EnvGuard crash("QCC_SWEEPD_TEST_CRASH_SEED", "13");
        sweepd::SweepdService service(serviceOptions());
        ResultStore store = service.submit(smallSweep());
        EXPECT_EQ(store.countWithStatus(JobStatus::Done), 3u);
    }

    // Resubmit: the three completed jobs are adopted (zero
    // re-runs), only the crashed one executes, and the final
    // document is byte-identical to the uninterrupted run.
    sweepd::SweepdService service(serviceOptions());
    sweepd::SweepdRunStats stats;
    ResultStore store = service.submit(smallSweep(), &stats);
    EXPECT_EQ(stats.resumed, 3u);
    EXPECT_EQ(stats.ran, 1u);
    EXPECT_EQ(store.countWithStatus(JobStatus::Done), 4u);
    EXPECT_EQ(slurp(dir.path() + "/SWEEP_sweepd_unit.json"),
              cleanDoc);
}

TEST(SweepdService, ResumeIgnoresRecordsWhoseSpecChanged)
{
    TempDir dir("resume_hash");
    EnvGuard jsonEnv("QCC_JSON", dir.path());
    {
        sweepd::SweepdService service(serviceOptions());
        service.submit(smallSweep());
    }

    // Same name, different axis values: every spec_hash changes, so
    // nothing may be adopted.
    SweepSpec changed = smallSweep();
    changed.axes[0].values.clear();
    for (uint64_t s : {21, 22, 23, 24}) {
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.number = double(s);
        v.text = std::to_string(s);
        changed.axes[0].values.push_back(v);
    }

    sweepd::SweepdService service(serviceOptions());
    sweepd::SweepdRunStats stats;
    service.submit(changed, &stats);
    EXPECT_EQ(stats.resumed, 0u);
    EXPECT_EQ(stats.ran, 4u);
}

// ---------------------------------------------------------------
// cross-process store sharing

TEST(SweepdWorker, SecondWorkerServesEverythingFromTheSharedStore)
{
    TempDir storeRoot("store");
    EnvGuard storeEnv("QCC_STORE_DIR",
                      storeRoot.path() + "/tier");
    EnvGuard storeOn("QCC_STORE", "1");

    ExperimentSpec spec;
    spec.molecule = "H2";
    spec.bond = 0.74;
    spec.mode = "sampled";
    spec.optimizer = "spsa";
    spec.spsaIter = 8;
    spec.shots = 1024;
    spec.seed = 7;
    spec.reference = false;
    spec.pipeline = "mtr";
    spec.architecture = "xtree5";

    // Cold store: the first worker builds the chemistry and
    // compiles fresh.
    const sweepd::WorkerReply first = runWorkerJob(spec);
    ASSERT_TRUE(first.done) << first.error;
    EXPECT_EQ(first.store.problemBuilds, 1u);
    EXPECT_EQ(first.store.problemDiskHits, 0u);
    EXPECT_GT(first.store.compileMisses, 0u);

    // Warm store, brand-new process: chemistry comes off disk and
    // every compile is a hit — zero rebuilds anywhere.
    const sweepd::WorkerReply second = runWorkerJob(spec);
    ASSERT_TRUE(second.done) << second.error;
    EXPECT_EQ(second.store.problemBuilds, 0u);
    EXPECT_GT(second.store.problemDiskHits, 0u);
    EXPECT_EQ(second.store.compileMisses, 0u);
    EXPECT_GT(second.store.circuitDiskHits, 0u);

    // Same inputs, same bytes: process isolation and the shared
    // tier change wall time, never results.
    ExperimentResult::JsonOptions jo;
    jo.timings = false;
    jo.trace = false;
    EXPECT_EQ(first.result.json(jo), second.result.json(jo));
}

// ---------------------------------------------------------------

int
main(int argc, char **argv)
{
    // Worker mode: this binary is its own worker executable, so the
    // process tests are hermetic (no dependency on build layout).
    if (argc > 1 &&
        std::strcmp(argv[1], sweepd::kWorkerFlag) == 0)
        return sweepd::workerMain();
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
