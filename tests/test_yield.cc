/**
 * @file
 * Unit tests for the frequency-collision yield model: collision
 * predicates, frequency allocation quality, Monte-Carlo behaviour
 * (monotone in precision), and the X-Tree vs grid yield advantage.
 */

#include <gtest/gtest.h>

#include "arch/grid.hh"
#include "arch/xtree.hh"
#include "arch/yield.hh"

using namespace qcc;

namespace {

CouplingGraph
pairGraph()
{
    CouplingGraph g(2);
    g.addEdge(0, 1);
    return g;
}

} // namespace

TEST(Yield, DegenerateNeighborsCollide)
{
    CouplingGraph g = pairGraph();
    EXPECT_TRUE(hasCollision(g, {5.0, 5.0}, {}));
    EXPECT_TRUE(hasCollision(g, {5.0, 5.01}, {}));  // type 1 window
    EXPECT_FALSE(hasCollision(g, {5.0, 5.06}, {})); // clean detuning
}

TEST(Yield, HalfAnharmonicityCollision)
{
    CouplingGraph g = pairGraph();
    // alpha = -0.33: f_j - f_k = 0.165 is the two-photon collision.
    EXPECT_TRUE(hasCollision(g, {5.165, 5.0}, {}));
    EXPECT_FALSE(hasCollision(g, {5.12, 5.0}, {}));
}

TEST(Yield, StraddleViolation)
{
    CouplingGraph g = pairGraph();
    // Detuning beyond |alpha| leaves the straddling regime (type 4
    // in our model; also a type-3 window at exactly alpha).
    EXPECT_TRUE(hasCollision(g, {5.5, 5.0}, {}));
    CollisionModel noStraddle;
    noStraddle.enforceStraddle = false;
    EXPECT_FALSE(hasCollision(g, {5.5, 5.0}, noStraddle));
}

TEST(Yield, SpectatorCollision)
{
    // Path 1-0-2: qubit 0 is the CR control of both gates when it
    // has the highest frequency; degenerate spectators collide.
    CouplingGraph g(3);
    g.addEdge(0, 1);
    g.addEdge(0, 2);
    EXPECT_TRUE(hasCollision(g, {5.2, 5.1, 5.1}, {}));
    EXPECT_FALSE(hasCollision(g, {5.2, 5.1, 5.04}, {}));
}

TEST(Yield, AllocationIsCollisionFreeAtDesign)
{
    for (unsigned n : {5u, 8u, 17u}) {
        XTree t = makeXTree(n);
        auto f = allocateFrequencies(t.graph);
        EXPECT_FALSE(hasCollision(t.graph, f, {}))
            << "XTree" << n << "Q design frequencies collide";
    }
    CouplingGraph g = makeGrid17Q();
    auto f = allocateFrequencies(g);
    EXPECT_FALSE(hasCollision(g, f, {})) << "Grid17Q design collides";
}

TEST(Yield, PerfectFabricationYieldsOne)
{
    XTree t = makeXTree(17);
    auto f = allocateFrequencies(t.graph);
    Rng rng(3);
    EXPECT_NEAR(simulateYield(t.graph, f, 1e-6, 200, rng), 1.0,
                1e-12);
}

TEST(Yield, MonotoneInPrecision)
{
    // Figure 11's x-axis (precision 0.2-0.6 GHz) maps to sigma =
    // 0.02-0.06 via paperPrecisionToSigma; yield must fall.
    XTree t = makeXTree(17);
    auto f = allocateFrequencies(t.graph);
    Rng rng(11);
    double prev = 1.1;
    for (double sigma : {0.02, 0.03, 0.05, 0.08}) {
        double y = simulateYield(t.graph, f, sigma, 6000, rng);
        EXPECT_LT(y, prev) << "sigma = " << sigma;
        prev = y;
    }
}

TEST(Yield, TreeBeatsGrid)
{
    // Section VI-E's claim: fewer couplers -> higher yield; around
    // mid-range precision the gap approaches the paper's ~8x.
    XTree t = makeXTree(17);
    CouplingGraph g = makeGrid17Q();
    auto ft = allocateFrequencies(t.graph);
    auto fg = allocateFrequencies(g);
    Rng r1(5), r2(5);
    double yt = simulateYield(t.graph, ft, 0.05, 20000, r1);
    double yg = simulateYield(g, fg, 0.05, 20000, r2);
    EXPECT_GT(yt, yg);
    EXPECT_GT(yt, 3.0 * yg); // clear separation, not noise
}

TEST(Yield, DeterministicUnderSeed)
{
    XTree t = makeXTree(8);
    auto f = allocateFrequencies(t.graph);
    Rng a(42), b(42);
    EXPECT_EQ(simulateYield(t.graph, f, 0.08, 1000, a),
              simulateYield(t.graph, f, 0.08, 1000, b));
}
