/**
 * @file
 * Unit tests for ansatz compression (Section III-B): selection sizes
 * at every paper ratio, importance-decreasing ordering, random
 * baseline behaviour, and accuracy monotonicity on H2.
 */

#include <gtest/gtest.h>

#include "ansatz/compression.hh"
#include "ansatz/importance.hh"
#include "chem/molecules.hh"
#include "ferm/hamiltonian.hh"
#include "sim/lanczos.hh"
#include "vqe_test_util.hh"
#include "vqe/vqe.hh"

using namespace qcc;

class CompressionRatios : public ::testing::TestWithParam<double>
{
};

TEST_P(CompressionRatios, KeepsCeilRatioK)
{
    const double ratio = GetParam();
    const auto &entry = benchmarkMolecule("LiH");
    MolecularProblem prob = buildMolecularProblem(entry, 1.6);
    Ansatz full = buildUccsd(prob.nSpatial, prob.nElectrons);

    CompressedAnsatz c = compressAnsatz(full, prob.hamiltonian, ratio);
    unsigned expected =
        unsigned(std::ceil(ratio * double(full.nParams)));
    EXPECT_EQ(c.ansatz.nParams, expected);
    EXPECT_EQ(c.keptParams.size(), expected);
}

INSTANTIATE_TEST_SUITE_P(PaperRatios, CompressionRatios,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9,
                                           1.0));

TEST(Compression, KeptParamsAreTopImportance)
{
    const auto &entry = benchmarkMolecule("LiH");
    MolecularProblem prob = buildMolecularProblem(entry, 1.6);
    Ansatz full = buildUccsd(prob.nSpatial, prob.nElectrons);
    CompressedAnsatz c = compressAnsatz(full, prob.hamiltonian, 0.5);

    auto imp = parameterImportance(full, prob.hamiltonian);
    double minKept = 1e300;
    for (unsigned k : c.keptParams)
        minKept = std::min(minKept, imp[k]);
    for (unsigned k = 0; k < full.nParams; ++k) {
        bool kept = std::find(c.keptParams.begin(), c.keptParams.end(),
                              k) != c.keptParams.end();
        if (!kept) {
            EXPECT_LE(imp[k], minKept + 1e-12);
        }
    }
}

TEST(Compression, OrderedByDecreasingImportance)
{
    const auto &entry = benchmarkMolecule("LiH");
    MolecularProblem prob = buildMolecularProblem(entry, 1.6);
    Ansatz full = buildUccsd(prob.nSpatial, prob.nElectrons);
    CompressedAnsatz c = compressAnsatz(full, prob.hamiltonian, 0.7);

    for (size_t i = 1; i < c.keptParams.size(); ++i)
        EXPECT_GE(c.importance[c.keptParams[i - 1]],
                  c.importance[c.keptParams[i]] - 1e-12);

    // Rotations appear grouped by new parameter index in order.
    unsigned maxSeen = 0;
    for (const auto &r : c.ansatz.rotations) {
        EXPECT_GE(r.param + 1, maxSeen);
        maxSeen = std::max(maxSeen, r.param + 1);
    }
}

TEST(Compression, FullRatioKeepsEverythingReordered)
{
    const auto &entry = benchmarkMolecule("H2");
    MolecularProblem prob = buildMolecularProblem(entry, 0.74);
    Ansatz full = buildUccsd(prob.nSpatial, prob.nElectrons);
    CompressedAnsatz c = compressAnsatz(full, prob.hamiltonian, 1.0);
    EXPECT_EQ(c.ansatz.nParams, full.nParams);
    EXPECT_EQ(c.ansatz.numStrings(), full.numStrings());
}

TEST(Compression, RandomBaselineRespectsSizeAndOrder)
{
    const auto &entry = benchmarkMolecule("LiH");
    MolecularProblem prob = buildMolecularProblem(entry, 1.6);
    Ansatz full = buildUccsd(prob.nSpatial, prob.nElectrons);

    Rng rng(7);
    CompressedAnsatz c = randomCompress(full, 0.5, rng);
    EXPECT_EQ(c.ansatz.nParams, 4u);
    // Original program order is preserved for the random baseline.
    for (size_t i = 1; i < c.keptParams.size(); ++i)
        EXPECT_LT(c.keptParams[i - 1], c.keptParams[i]);
}

TEST(Compression, RandomSelectionsDifferAcrossSeeds)
{
    const auto &entry = benchmarkMolecule("LiH");
    MolecularProblem prob = buildMolecularProblem(entry, 1.6);
    Ansatz full = buildUccsd(prob.nSpatial, prob.nElectrons);

    Rng r1(1), r2(2);
    auto c1 = randomCompress(full, 0.5, r1);
    auto c2 = randomCompress(full, 0.5, r2);
    EXPECT_NE(c1.keptParams, c2.keptParams);
}

TEST(Compression, MoreParametersMoreAccuracy)
{
    // Fig. 9 property in miniature: VQE energy error vs the exact
    // ground state shrinks (weakly) as the ratio grows on H2.
    const auto &entry = benchmarkMolecule("H2");
    MolecularProblem prob = buildMolecularProblem(entry, 0.74);
    Ansatz full = buildUccsd(prob.nSpatial, prob.nElectrons);
    double exact = lanczosGroundEnergy(prob.hamiltonian);

    double prevErr = 1e300;
    for (double ratio : {0.4, 0.7, 1.0}) {
        CompressedAnsatz c =
            compressAnsatz(full, prob.hamiltonian, ratio);
        VqeResult r = qcc_test::minimizeIdeal(prob.hamiltonian, c.ansatz);
        double err = r.energy - exact;
        EXPECT_GE(err, -1e-9); // variational
        EXPECT_LE(err, prevErr + 1e-9);
        prevErr = err;
    }
}

TEST(Compression, SelectParametersRejectsOutOfRange)
{
    Ansatz full = buildUccsd(2, 2);
    EXPECT_DEATH(selectParameters(full, {99}), "out of range");
}
