/**
 * @file
 * Unit tests for layouts and Algorithm 2 (hierarchical initial
 * layout), including the paper's Figure 7 worked example.
 */

#include <gtest/gtest.h>

#include "compiler/layout.hh"

using namespace qcc;

TEST(Layout, IdentityConsistency)
{
    Layout l = Layout::identity(3, 5);
    l.validate();
    EXPECT_EQ(l.phys(2), 2u);
    EXPECT_EQ(l.log(4), -1);
}

TEST(Layout, SwapPhysicalUpdatesBothMaps)
{
    Layout l = Layout::identity(2, 4);
    l.swapPhysical(0, 3); // logical 0 moves to free physical 3
    l.validate();
    EXPECT_EQ(l.phys(0), 3u);
    EXPECT_EQ(l.log(0), -1);
    l.swapPhysical(3, 1); // logical 0 and logical 1 swap homes
    l.validate();
    EXPECT_EQ(l.phys(0), 1u);
    EXPECT_EQ(l.phys(1), 3u);
}

TEST(Layout, RandomIsValidPermutation)
{
    Rng rng(9);
    Layout l = Layout::random(5, 9, rng);
    l.validate();
}

TEST(CoOccurrence, CountsPairsPerString)
{
    std::vector<PauliString> strings = {
        PauliString::fromString("XXI"), // qubits 1,2
        PauliString::fromString("XIX"), // qubits 0,2
    };
    auto mat = coOccurrence(strings, 3);
    EXPECT_EQ(mat[2][1], 1u);
    EXPECT_EQ(mat[2][0], 1u);
    EXPECT_EQ(mat[1][0], 0u);
    EXPECT_EQ(mat[2][2], 2u); // qubit 2 in both strings
}

TEST(HierarchicalLayout, BusiestQubitTakesRoot)
{
    // Figure 7-style program: q0 appears in every string, q5 in one.
    std::vector<PauliString> strings = {
        PauliString::fromString("IIIXYX"), // q0,q1,q2
        PauliString::fromString("IIXIXZ"), // q0,q1,q3
        PauliString::fromString("IYIZIY"), // q0,q2,q4
        PauliString::fromString("XIIIIX"), // q0,q5
    };
    XTree tree = makeXTree(8);
    Layout l = hierarchicalInitialLayout(strings, tree);
    l.validate();
    // q0 is the most-connected logical qubit: level 0 (the root).
    EXPECT_EQ(l.phys(0), tree.root);
    // Everything else lands on the lowest available levels: q1..q4
    // at level 1, q5 pushed to level 2.
    unsigned level1 = 0;
    for (unsigned q = 1; q <= 4; ++q)
        level1 += (tree.level[l.phys(q)] == 1) ? 1 : 0;
    EXPECT_EQ(level1, 4u);
    EXPECT_EQ(tree.level[l.phys(5)], 2u);
}

TEST(HierarchicalLayout, ParentSharesMostStrings)
{
    // Figure 7's situation: q5 participates in a single Pauli
    // string; of the level-1 qubits it shares that string with, q3
    // is already placed one level up, so q5 attaches under q3.
    std::vector<PauliString> strings = {
        PauliString::fromString("IIIXYX"),  // {0,1,2}
        PauliString::fromString("IIXIXZ"),  // {0,1,3}
        PauliString::fromString("IYIZIY"),  // {0,2,4}
        PauliString::fromString("IZXIIZ"),  // {0,3,4}
        PauliString::fromString("IZZYXX"),  // {0,1,2,3,4}
        PauliString::fromString("XXIIIZ"),  // {0,4,5}
    };
    // Occurrences: q0 highest (all strings), then q4 (4 strings);
    // q5 lowest (one string) and lands at level 2, choosing the
    // level-1 parent it co-occurs with (q4).
    XTree tree = makeXTree(17);
    Layout l = hierarchicalInitialLayout(strings, tree);
    l.validate();
    EXPECT_EQ(l.phys(0), tree.root);
    EXPECT_EQ(tree.level[l.phys(5)], 2u);
    unsigned p5 = l.phys(5);
    int parent = tree.parent[p5];
    ASSERT_GE(parent, 0);
    EXPECT_EQ(l.log(unsigned(parent)), 4);
}

TEST(HierarchicalLayout, HandlesFullOccupancy)
{
    // 17 logical qubits on XTree17Q: every spot fills exactly once.
    std::vector<PauliString> strings;
    PauliString all(17);
    for (unsigned q = 0; q < 17; ++q)
        all.setOp(q, PauliOp::Z);
    strings.push_back(all);
    XTree tree = makeXTree(17);
    Layout l = hierarchicalInitialLayout(strings, tree);
    l.validate();
    for (unsigned p = 0; p < 17; ++p)
        EXPECT_NE(l.log(p), -1);
}

TEST(HierarchicalLayout, RejectsOversizedPrograms)
{
    std::vector<PauliString> strings = {PauliString(20)};
    XTree tree = makeXTree(17);
    EXPECT_DEATH(hierarchicalInitialLayout(strings, tree),
                 "too wide");
}
