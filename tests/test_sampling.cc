/**
 * @file
 * Shot-sampling backend tests: statistical convergence of sampled
 * <H> to the analytic expectation, seeded reproducibility, shot
 * allocation policy, exactness on deterministic distributions, the
 * measurement-basis rotation helpers, and the density-matrix
 * sampling path.
 */

#include <bit>
#include <cmath>
#include <numeric>
#include <gtest/gtest.h>

#include "ansatz/uccsd.hh"
#include "chem/molecules.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "ferm/hamiltonian.hh"
#include "pauli/grouping.hh"
#include "sim/sampling.hh"
#include "vqe_test_util.hh"
#include "vqe/vqe.hh"

using namespace qcc;

namespace {

struct H2Fixture
{
    MolecularProblem prob;
    Ansatz ansatz;
    VqeResult converged;
};

const H2Fixture &
h2()
{
    static const H2Fixture fix = [] {
        setVerbose(false);
        MolecularProblem prob =
            buildMolecularProblem(benchmarkMolecule("H2"), 0.74);
        Ansatz a = buildUccsd(prob.nSpatial, prob.nElectrons);
        VqeResult res = qcc_test::minimizeIdeal(prob.hamiltonian, a);
        return H2Fixture{std::move(prob), std::move(a), res};
    }();
    return fix;
}

StatevectorBackend
preparedH2()
{
    StatevectorBackend b(h2().ansatz.nQubits);
    b.applyAnsatz(h2().ansatz, h2().converged.params);
    return b;
}

} // namespace

TEST(Sampling, ConvergesToAnalyticAsShotsGrow)
{
    StatevectorBackend b = preparedH2();
    const double analytic =
        b.expectation(h2().prob.hamiltonian);

    double lastErr = 0.0;
    for (uint64_t shots : {uint64_t{256}, uint64_t{65536}}) {
        SamplingOptions so;
        so.shots = shots;
        SamplingEngine engine(h2().prob.hamiltonian, so);
        Rng rng(deriveSeed(101));
        SampledEnergy s = engine.measure(b, rng);
        const double err = std::fabs(s.energy - analytic);
        // Statistical tolerance: a 6-sigma band from the engine's
        // own variance estimate (false-failure odds ~1e-9).
        EXPECT_LE(err, 6.0 * std::sqrt(s.variance) + 1e-12)
            << shots << " shots";
        EXPECT_GE(s.shots, shots);
        lastErr = err;
    }
    // At 64k+ shots the estimate is tight in absolute terms too.
    EXPECT_LT(lastErr, 5e-3);
}

TEST(Sampling, VarianceShrinksWithBudget)
{
    StatevectorBackend b = preparedH2();
    auto varianceAt = [&](uint64_t shots) {
        SamplingOptions so;
        so.shots = shots;
        SamplingEngine engine(h2().prob.hamiltonian, so);
        Rng rng(deriveSeed(7));
        return engine.measure(b, rng).variance;
    };
    // 64x the shots -> roughly 64x less estimator variance; allow a
    // wide statistical band around the exact 1/N law.
    const double v1 = varianceAt(1024);
    const double v2 = varianceAt(65536);
    EXPECT_GT(v1, 10.0 * v2);
}

TEST(Sampling, DeterministicGivenSeed)
{
    StatevectorBackend b = preparedH2();
    SamplingEngine engine(h2().prob.hamiltonian, {});
    Rng r1(42), r2(42), r3(43);
    SampledEnergy a = engine.measure(b, r1);
    SampledEnergy c = engine.measure(b, r2);
    SampledEnergy d = engine.measure(b, r3);
    EXPECT_EQ(a.energy, c.energy);
    EXPECT_EQ(a.variance, c.variance);
    EXPECT_EQ(a.shots, c.shots);
    EXPECT_NE(a.energy, d.energy);
}

TEST(Sampling, IdentityTermsAreExactAndFree)
{
    PauliSum h(2);
    h.add(1.25, PauliString(2)); // identity only
    SamplingEngine engine(h, {});
    StatevectorBackend b(2);
    b.prepare(0);
    Rng rng(1);
    SampledEnergy s = engine.measure(b, rng);
    EXPECT_EQ(s.energy, 1.25);
    EXPECT_EQ(s.variance, 0.0);
    EXPECT_EQ(s.shots, uint64_t{0});
    EXPECT_EQ(engine.numGroups(), size_t{0});
    EXPECT_EQ(engine.constantOffset(), 1.25);
}

TEST(Sampling, DiagonalOnBasisStateIsExact)
{
    // |10>: <Z1 Z0> = -1 with zero variance — the distribution is a
    // point mass, so sampling is exact at any budget.
    PauliSum h(2);
    h.add(0.7, PauliString::fromString("ZZ"));
    SamplingOptions so;
    so.shots = 64;
    SamplingEngine engine(h, so);
    StatevectorBackend b(2);
    b.prepare(0b10);
    Rng rng(5);
    SampledEnergy s = engine.measure(b, rng);
    EXPECT_DOUBLE_EQ(s.energy, -0.7);
    EXPECT_EQ(s.variance, 0.0);
}

TEST(Sampling, ProportionalAllocationFollowsWeight)
{
    // Two QWC families with very different weights: the XX family
    // (weight 9) must receive far more shots than the ZI family
    // (weight 1), and every family keeps the floor.
    PauliSum h(2);
    h.add(9.0, PauliString::fromString("XX"));
    h.add(1.0, PauliString::fromString("ZI"));
    SamplingOptions so;
    so.shots = 1000;
    so.minShotsPerGroup = 10;
    SamplingEngine engine(h, so);
    ASSERT_EQ(engine.numGroups(), size_t{2});
    const auto &alloc = engine.shotAllocation();
    const uint64_t total =
        std::accumulate(alloc.begin(), alloc.end(), uint64_t{0});
    EXPECT_GE(total, so.shots);
    const uint64_t hi = std::max(alloc[0], alloc[1]);
    const uint64_t lo = std::min(alloc[0], alloc[1]);
    EXPECT_GE(lo, so.minShotsPerGroup);
    EXPECT_GE(hi, 5 * lo);

    SamplingOptions uniform = so;
    uniform.proportionalAllocation = false;
    SamplingEngine flat(h, uniform);
    EXPECT_EQ(flat.shotAllocation()[0], flat.shotAllocation()[1]);
}

TEST(Sampling, GroupedFamiliesCoverEveryTerm)
{
    SamplingEngine engine(h2().prob.hamiltonian, {});
    // H2 groups into a handful of QWC families — far fewer
    // measurement settings than terms (the Section VIII-A economy).
    EXPECT_GT(engine.numGroups(), size_t{1});
    EXPECT_LT(engine.numGroups(),
              h2().prob.hamiltonian.numTerms());
}

TEST(Sampling, BasisProbabilitiesAreADistribution)
{
    StatevectorBackend b = preparedH2();
    SamplingEngine engine(h2().prob.hamiltonian, {});
    PauliString basis = PauliString::fromString("XYZI");
    auto probs =
        b.statevector()->basisProbabilities(basisChangeOps(basis));
    ASSERT_EQ(probs.size(), size_t{16});
    double sum = 0.0;
    for (double p : probs) {
        EXPECT_GE(p, 0.0);
        sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Sampling, RotatedProbabilitiesReproduceExpectation)
{
    // For any QWC family basis B, <B> must equal the Z-string
    // expectation sum_b probs[b] * (-1)^{|b & support(B)|} of the
    // rotated distribution — the identity the whole sampling path
    // rests on, checked for X and Y rotations.
    StatevectorBackend b = preparedH2();
    for (const char *s : {"IIXX", "IYYI", "ZZII", "XYXY"}) {
        PauliString basis = PauliString::fromString(s);
        const double analytic = b.expectation(basis);
        auto probs = b.statevector()->basisProbabilities(
            basisChangeOps(basis));
        double viaProbs = 0.0;
        const uint64_t support = basis.supportMask();
        for (size_t i = 0; i < probs.size(); ++i)
            viaProbs += (std::popcount(uint64_t(i) & support) & 1)
                            ? -probs[i]
                            : probs[i];
        EXPECT_NEAR(viaProbs, analytic, 1e-10) << s;
    }
}

TEST(Sampling, BasisChangeCircuitMatchesMatrixRotations)
{
    // The gate-level measurement circuit (Sdg/H) and the fused
    // matrix rotations must produce the same outcome distribution.
    StatevectorBackend b = preparedH2();
    PauliString basis = PauliString::fromString("XYYX");
    auto viaMatrix = b.statevector()->basisProbabilities(
        basisChangeOps(basis));

    Statevector sv = *b.statevector();
    sv.applyCircuit(basisChangeCircuit(basis));
    auto viaCircuit = sv.basisProbabilities({});
    ASSERT_EQ(viaMatrix.size(), viaCircuit.size());
    for (size_t i = 0; i < viaMatrix.size(); ++i)
        EXPECT_NEAR(viaMatrix[i], viaCircuit[i], 1e-12) << i;
}

TEST(Sampling, DensityMatrixBackendMatchesAnalytic)
{
    // Noisy backend: the sampled estimate must track the density
    // matrix's own expectation, not the noiseless one.
    NoiseModel noise;
    noise.cnotDepolarizing = 1e-2;
    DensityMatrixBackend b(h2().ansatz.nQubits, noise);
    b.applyAnsatz(h2().ansatz, h2().converged.params);
    const double analytic = b.expectation(h2().prob.hamiltonian);

    SamplingOptions so;
    so.shots = 65536;
    SamplingEngine engine(h2().prob.hamiltonian, so);
    Rng rng(deriveSeed(23));
    SampledEnergy s = engine.measure(b, rng);
    EXPECT_LE(std::fabs(s.energy - analytic),
              6.0 * std::sqrt(s.variance) + 1e-12);
}

TEST(Sampling, WidthMismatchFatal)
{
    PauliSum h(2);
    h.add(1.0, PauliString::fromString("ZZ"));
    SamplingEngine engine(h, {});
    StatevectorBackend b(3);
    Rng rng(1);
    EXPECT_DEATH(engine.measure(b, rng), "width");
}
