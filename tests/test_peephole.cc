/**
 * @file
 * Unit tests for the gate-cancellation peephole pass: inverse-pair
 * removal, rotation merging, commuting-scan safety, and unitary
 * preservation on compiled ansatz circuits.
 */

#include <gtest/gtest.h>

#include "ansatz/uccsd.hh"
#include "common/rng.hh"
#include "compiler/chain_synthesis.hh"
#include "compiler/merge_to_root.hh"
#include "compiler/peephole.hh"
#include "sim/statevector.hh"

using namespace qcc;

namespace {

bool
sameUnitary(const Circuit &a, const Circuit &b, uint64_t seed = 3)
{
    Rng rng(seed);
    Statevector sa(a.numQubits()), sb(b.numQubits());
    for (auto &amp : sa.amplitudes())
        amp = cplx(rng.gaussian(), rng.gaussian());
    sa.normalize();
    sb.amplitudes() = sa.amplitudes();
    sa.applyCircuit(a);
    sb.applyCircuit(b);
    for (size_t i = 0; i < sa.dim(); ++i)
        if (std::abs(sa.amplitudes()[i] - sb.amplitudes()[i]) > 1e-10)
            return false;
    return true;
}

} // namespace

TEST(Peephole, CancelsAdjacentInverses)
{
    Circuit c(2);
    c.h(0);
    c.h(0);
    c.cnot(0, 1);
    c.cnot(0, 1);
    c.s(1);
    c.sdg(1);
    Circuit opt = cancelGates(c);
    EXPECT_EQ(opt.totalGates(), 0u);
}

TEST(Peephole, MergesRotations)
{
    Circuit c(1);
    c.rz(0, 0.3);
    c.rz(0, 0.4);
    PeepholeStats stats;
    Circuit opt = cancelGates(c, &stats);
    ASSERT_EQ(opt.totalGates(), 1u);
    EXPECT_NEAR(opt.gates()[0].angle, 0.7, 1e-12);
    EXPECT_EQ(stats.mergedRotations, 1u);
}

TEST(Peephole, MergedRotationsCancelToZero)
{
    Circuit c(1);
    c.rx(0, 0.5);
    c.rx(0, -0.5);
    EXPECT_EQ(cancelGates(c).totalGates(), 0u);
}

TEST(Peephole, ScansPastDisjointGates)
{
    // H(0) X(1) H(0): the H pair cancels across the disjoint X.
    Circuit c(2);
    c.h(0);
    c.x(1);
    c.h(0);
    Circuit opt = cancelGates(c);
    EXPECT_EQ(opt.totalGates(), 1u);
    EXPECT_EQ(opt.gates()[0].kind, GateKind::X);
}

TEST(Peephole, BlockedByInterveningGateOnSameQubit)
{
    // H(0) Z(0) H(0) = X(0): must NOT cancel the H pair.
    Circuit c(1);
    c.h(0);
    c.z(0);
    c.h(0);
    Circuit opt = cancelGates(c);
    EXPECT_EQ(opt.totalGates(), 3u);
    EXPECT_TRUE(sameUnitary(c, opt));
}

TEST(Peephole, CnotSharingOneQubitBlocks)
{
    // CNOT(0,1) X(1) CNOT(0,1) shares the target: no cancellation.
    Circuit c(2);
    c.cnot(0, 1);
    c.x(1);
    c.cnot(0, 1);
    Circuit opt = cancelGates(c);
    EXPECT_EQ(opt.totalGates(), 3u);
    EXPECT_TRUE(sameUnitary(c, opt));
}

TEST(Peephole, ReducesChainSynthesizedAnsatz)
{
    // Consecutive strings of one double excitation share basis and
    // CNOT structure; cancellation should remove a sizable fraction
    // while preserving the unitary.
    Ansatz a = buildUccsd(2, 2);
    std::vector<double> params{0.13, -0.27, 0.31};
    Circuit chain = synthesizeChainCircuit(a, params, true);
    PeepholeStats stats;
    Circuit opt = cancelGates(chain, &stats);
    EXPECT_LT(opt.totalGates(), chain.totalGates());
    EXPECT_GT(stats.removedGates + stats.mergedRotations, 10u);
    EXPECT_TRUE(sameUnitary(chain, opt));
}

TEST(Peephole, PreservesCompiledMtrCircuit)
{
    Ansatz a = buildUccsd(2, 2);
    std::vector<double> params{0.13, -0.27, 0.31};
    XTree tree = makeXTree(5);
    MtrResult mtr = mergeToRootCompile(a, params, tree, true);
    Circuit opt = cancelGates(mtr.circuit);
    EXPECT_LE(opt.totalGates(), mtr.circuit.totalGates());
    EXPECT_TRUE(sameUnitary(mtr.circuit, opt));
}

TEST(Peephole, IdempotentAtFixedPoint)
{
    Ansatz a = buildUccsd(2, 2);
    std::vector<double> params{0.13, -0.27, 0.31};
    Circuit chain = synthesizeChainCircuit(a, params, true);
    Circuit once = cancelGates(chain);
    Circuit twice = cancelGates(once);
    EXPECT_EQ(once.totalGates(), twice.totalGates());
}
