/**
 * @file
 * Unit tests for the architecture module: X-Tree construction
 * invariants for the paper's Figure 6 sizes, Grid17Q counts, and
 * coupling-graph utilities.
 */

#include <gtest/gtest.h>

#include "arch/grid.hh"
#include "arch/xtree.hh"

using namespace qcc;

class XTreeSizes : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(XTreeSizes, TreeInvariants)
{
    const unsigned n = GetParam();
    XTree t = makeXTree(n);
    EXPECT_EQ(t.graph.numQubits(), n);
    // A tree has exactly N-1 edges (the paper's minimal-coupler
    // argument) and is connected.
    EXPECT_EQ(t.graph.numEdges(), size_t(n) - 1);
    EXPECT_TRUE(t.graph.isConnected());
    // Degree cap: 4 everywhere.
    EXPECT_LE(t.graph.maxDegree(), 4u);
    // Parent/level consistency.
    EXPECT_EQ(t.parent[t.root], -1);
    for (unsigned q = 0; q < n; ++q) {
        if (int(q) == int(t.root))
            continue;
        ASSERT_GE(t.parent[q], 0);
        EXPECT_EQ(t.level[q], t.level[unsigned(t.parent[q])] + 1);
        EXPECT_TRUE(t.graph.hasEdge(q, unsigned(t.parent[q])));
    }
}

INSTANTIATE_TEST_SUITE_P(Figure6, XTreeSizes,
                         ::testing::Values(5u, 8u, 17u, 26u));

TEST(XTree, XTree5QIsRootPlusFour)
{
    XTree t = makeXTree(5);
    EXPECT_EQ(t.children[0].size(), 4u);
    for (unsigned q = 1; q < 5; ++q)
        EXPECT_EQ(t.level[q], 1u);
}

TEST(XTree, XTree17QLevels)
{
    // Figure 6: root at level 0, 4 qubits at level 1, 12 at level 2.
    XTree t = makeXTree(17);
    unsigned counts[3] = {0, 0, 0};
    for (unsigned q = 0; q < 17; ++q)
        ++counts[t.level[q]];
    EXPECT_EQ(counts[0], 1u);
    EXPECT_EQ(counts[1], 4u);
    EXPECT_EQ(counts[2], 12u);
    EXPECT_EQ(t.maxLevel(), 2u);
    EXPECT_EQ(t.graph.numEdges(), 16u); // paper: 16 connections
}

TEST(XTree, DegreeParametersRespected)
{
    XTree t = makeXTree(10, 2, 1); // a path-heavy tree
    EXPECT_EQ(t.children[0].size(), 2u);
    for (unsigned q = 1; q < 10; ++q)
        EXPECT_LE(t.children[q].size(), 1u);
}

TEST(Grid17Q, CountsMatchPaper)
{
    CouplingGraph g = makeGrid17Q();
    EXPECT_EQ(g.numQubits(), 17u);
    EXPECT_EQ(g.numEdges(), 24u); // paper: 24 connections
    EXPECT_TRUE(g.isConnected());
    EXPECT_LE(g.maxDegree(), 4u); // same fabrication cap as X-Tree
}

TEST(Grid, RectangularGridEdgeCount)
{
    CouplingGraph g = makeGrid(3, 4);
    EXPECT_EQ(g.numQubits(), 12u);
    // rows*(cols-1) + cols*(rows-1) = 3*3 + 4*2 = 17.
    EXPECT_EQ(g.numEdges(), 17u);
    EXPECT_TRUE(g.isConnected());
}

TEST(CouplingGraph, DistanceMatrixBfs)
{
    XTree t = makeXTree(8);
    auto d = t.graph.distanceMatrix();
    for (unsigned q = 0; q < 8; ++q)
        EXPECT_EQ(d[q][q], 0u);
    // Distance to parent is 1; siblings are 2 apart via the parent.
    EXPECT_EQ(d[1][0], 1u);
    EXPECT_EQ(d[1][2], 2u);
    // Symmetry.
    for (unsigned a = 0; a < 8; ++a)
        for (unsigned b = 0; b < 8; ++b)
            EXPECT_EQ(d[a][b], d[b][a]);
}

TEST(CouplingGraph, EdgeValidation)
{
    CouplingGraph g(3);
    g.addEdge(0, 1);
    EXPECT_TRUE(g.hasEdge(1, 0));
    EXPECT_FALSE(g.hasEdge(0, 2));
    EXPECT_DEATH(g.addEdge(0, 0), "self loop");
    EXPECT_DEATH(g.addEdge(0, 1), "duplicate");
}

TEST(CouplingGraph, TreeVsGridCouplerRatio)
{
    // The architectural headline: XTree17Q uses 16 couplers vs 24 on
    // Grid17Q, a 1.5x reduction driving the yield gap.
    XTree t = makeXTree(17);
    CouplingGraph g = makeGrid17Q();
    EXPECT_EQ(g.numEdges() - t.graph.numEdges(), 8u);
}
