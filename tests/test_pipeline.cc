/**
 * @file
 * Pass-manager pipeline tests: pass ordering and reporting, the
 * verify-after-mutate invariant, equivalence between the pipeline
 * flows and the legacy free-function compile paths on real
 * molecules (LiH, H2O), cache hit/miss determinism under parameter
 * rebinding, and parallel vs serial compile equivalence.
 */

#include <gtest/gtest.h>

#include "ansatz/compression.hh"
#include "ansatz/uccsd.hh"
#include "arch/grid.hh"
#include "chem/molecules.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "compiler/chain_synthesis.hh"
#include "compiler/merge_to_root.hh"
#include "compiler/pipeline.hh"
#include "compiler/sabre.hh"
#include "compiler/verify.hh"
#include "ferm/hamiltonian.hh"

using namespace qcc;

namespace {

/** Gate-for-gate equality, angles compared exactly. */
::testing::AssertionResult
circuitsIdentical(const Circuit &a, const Circuit &b)
{
    if (a.numQubits() != b.numQubits())
        return ::testing::AssertionFailure()
               << "width " << a.numQubits() << " vs "
               << b.numQubits();
    if (a.size() != b.size())
        return ::testing::AssertionFailure()
               << "size " << a.size() << " vs " << b.size();
    for (size_t i = 0; i < a.size(); ++i) {
        const Gate &ga = a.gates()[i], &gb = b.gates()[i];
        if (ga.kind != gb.kind || ga.q0 != gb.q0 ||
            ga.q1 != gb.q1 || ga.angle != gb.angle)
            return ::testing::AssertionFailure()
                   << "gate " << i << ": " << ga.str() << " vs "
                   << gb.str();
    }
    return ::testing::AssertionSuccess();
}

::testing::AssertionResult
layoutsIdentical(const Layout &a, const Layout &b)
{
    if (a.numLogical() != b.numLogical() ||
        a.numPhysical() != b.numPhysical())
        return ::testing::AssertionFailure() << "shape mismatch";
    for (unsigned q = 0; q < a.numLogical(); ++q)
        if (a.phys(q) != b.phys(q))
            return ::testing::AssertionFailure()
                   << "logical " << q << " on " << a.phys(q)
                   << " vs " << b.phys(q);
    return ::testing::AssertionSuccess();
}

struct Problem
{
    MolecularProblem prob;
    Ansatz ansatz;
};

const Problem &
lih()
{
    static const Problem p = [] {
        setVerbose(false);
        const auto &entry = benchmarkMolecule("LiH");
        MolecularProblem prob =
            buildMolecularProblem(entry, entry.equilibriumBond);
        Ansatz a = buildUccsd(prob.nSpatial, prob.nElectrons);
        return Problem{std::move(prob), std::move(a)};
    }();
    return p;
}

/** H2O at 30% compression (168 qubit-strings is plenty for tests). */
const Problem &
h2o()
{
    static const Problem p = [] {
        setVerbose(false);
        const auto &entry = benchmarkMolecule("H2O");
        MolecularProblem prob =
            buildMolecularProblem(entry, entry.equilibriumBond);
        Ansatz full = buildUccsd(prob.nSpatial, prob.nElectrons);
        CompressedAnsatz comp =
            compressAnsatz(full, prob.hamiltonian, 0.3);
        return Problem{std::move(prob), std::move(comp.ansatz)};
    }();
    return p;
}

std::vector<double>
randomParams(unsigned n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> params(n);
    for (double &p : params)
        p = rng.uniform(-0.3, 0.3);
    return params;
}

} // namespace

TEST(Pipeline, PassOrderingMatchesFlow)
{
    XTree tree = makeXTree(17);
    CompilerPipeline mtr(tree, PipelineOptions{});
    EXPECT_EQ(mtr.passNames(),
              (std::vector<std::string>{"hier-layout",
                                        "merge-to-root", "verify"}));

    PipelineOptions sab;
    sab.flow = PipelineOptions::Flow::Sabre;
    sab.peephole = true;
    CompilerPipeline sabre(tree, sab);
    EXPECT_EQ(sabre.passNames(),
              (std::vector<std::string>{"chain-synthesis",
                                        "sabre-route", "peephole",
                                        "verify"}));

    PipelineOptions chain;
    chain.flow = PipelineOptions::Flow::ChainOnly;
    CompilerPipeline chainPipe(chain);
    EXPECT_EQ(chainPipe.passNames(),
              (std::vector<std::string>{"chain-synthesis",
                                        "verify"}));
}

TEST(Pipeline, ReportRecordsEveryPassInOrder)
{
    XTree tree = makeXTree(17);
    PipelineOptions o;
    o.useCache = false; // force the full sequence to run
    CompilerPipeline pipe(tree, o);
    std::vector<double> zeros(lih().ansatz.nParams, 0.0);
    CompileResult r = pipe.compile(lih().ansatz, zeros);

    ASSERT_EQ(r.report.passes.size(), 3u);
    EXPECT_EQ(r.report.passes[0].pass, "hier-layout");
    EXPECT_EQ(r.report.passes[1].pass, "merge-to-root");
    EXPECT_EQ(r.report.passes[2].pass, "verify");
    EXPECT_FALSE(r.report.cacheHit);
    // Merge-to-root materializes the circuit; verify leaves it alone.
    EXPECT_EQ(r.report.passes[1].gatesBefore, 0u);
    EXPECT_GT(r.report.passes[1].gatesAfter, 0u);
    EXPECT_EQ(r.report.passes[2].gatesAfter,
              r.report.passes[2].gatesBefore);
    EXPECT_GE(r.report.totalMillis, 0.0);
    EXPECT_FALSE(r.report.str().empty());
}

TEST(Pipeline, MtrFlowMatchesLegacyFreeFunctions_LiH)
{
    XTree tree = makeXTree(17);
    PipelineOptions o;
    o.useCache = false;
    CompilerPipeline pipe(tree, o);
    auto params = randomParams(lih().ansatz.nParams, 7);

    CompileResult got = pipe.compile(lih().ansatz, params);
    MtrResult want =
        mergeToRootCompile(lih().ansatz, params, tree, true);

    EXPECT_TRUE(circuitsIdentical(got.circuit, want.circuit));
    EXPECT_EQ(got.swapCount, want.swapCount);
    EXPECT_TRUE(
        layoutsIdentical(got.initialLayout, want.initialLayout));
    EXPECT_TRUE(layoutsIdentical(got.finalLayout, want.finalLayout));
}

TEST(Pipeline, MtrFlowMatchesLegacyFreeFunctions_H2O)
{
    XTree tree = makeXTree(17);
    PipelineOptions o;
    o.useCache = false;
    CompilerPipeline pipe(tree, o);
    auto params = randomParams(h2o().ansatz.nParams, 11);

    CompileResult got = pipe.compile(h2o().ansatz, params);
    MtrResult want =
        mergeToRootCompile(h2o().ansatz, params, tree, true);

    EXPECT_TRUE(circuitsIdentical(got.circuit, want.circuit));
    EXPECT_EQ(got.swapCount, want.swapCount);
    EXPECT_TRUE(respectsCoupling(got.circuit, tree.graph));
}

TEST(Pipeline, SabreFlowMatchesLegacyFreeFunctions)
{
    CouplingGraph grid = makeGrid17Q();
    PipelineOptions o;
    o.flow = PipelineOptions::Flow::Sabre;
    o.useCache = false;
    CompilerPipeline pipe(grid, o);
    auto params = randomParams(lih().ansatz.nParams, 13);

    CompileResult got = pipe.compile(lih().ansatz, params);

    Circuit chain =
        synthesizeChainCircuit(lih().ansatz, params, true);
    SabreResult want = sabreCompile(
        chain, grid, Layout::identity(chain.numQubits(), 17));

    EXPECT_TRUE(circuitsIdentical(got.circuit, want.circuit));
    EXPECT_EQ(got.swapCount, want.swapCount);
}

TEST(Pipeline, CompiledCircuitIsEquivalentToLogical)
{
    // Full-blown unitary equivalence through the pipeline's own
    // verify pass (trials > 0) on a tree small enough to simulate.
    XTree tree = makeXTree(7);
    PipelineOptions o;
    o.useCache = false;
    o.verifyTrials = 3;
    CompilerPipeline pipe(tree, o);
    auto params = randomParams(lih().ansatz.nParams, 17);
    EXPECT_NO_THROW(pipe.compile(lih().ansatz, params));
}

TEST(Pipeline, CacheHitReproducesUncachedCompileExactly)
{
    if (!circuitCacheEnabled())
        GTEST_SKIP() << "QCC_COMPILE_CACHE=0 in the environment";

    XTree tree = makeXTree(17);
    CompilerPipeline cached(tree, PipelineOptions{});
    PipelineOptions u;
    u.useCache = false;
    CompilerPipeline uncached(tree, u);

    // Prime the cache, then recompile with two different bindings:
    // both must be cache hits and bit-identical to a fresh compile.
    auto p0 = randomParams(lih().ansatz.nParams, 19);
    cached.compile(lih().ansatz, p0);

    for (uint64_t seed : {23u, 29u}) {
        auto params = randomParams(lih().ansatz.nParams, seed);
        CompileResult hit = cached.compile(lih().ansatz, params);
        EXPECT_TRUE(hit.report.cacheHit);
        CompileResult fresh =
            uncached.compile(lih().ansatz, params);
        EXPECT_TRUE(circuitsIdentical(hit.circuit, fresh.circuit));
        EXPECT_EQ(hit.swapCount, fresh.swapCount);
        EXPECT_TRUE(layoutsIdentical(hit.finalLayout,
                                     fresh.finalLayout));
    }

    // Same circuit hash + same params twice -> identical output.
    auto params = randomParams(lih().ansatz.nParams, 31);
    CompileResult a = cached.compile(lih().ansatz, params);
    CompileResult b = cached.compile(lih().ansatz, params);
    EXPECT_TRUE(b.report.cacheHit);
    EXPECT_TRUE(circuitsIdentical(a.circuit, b.circuit));
}

TEST(Pipeline, ParallelAndSerialCompilesAgree_LiH)
{
    auto params = randomParams(lih().ansatz.nParams, 37);
    Circuit serial =
        synthesizeChainCircuit(lih().ansatz, params, true);
    Circuit parallel =
        synthesizeChainCircuitParallel(lih().ansatz, params, true);
    EXPECT_TRUE(circuitsIdentical(serial, parallel));

    // Whole-Hamiltonian per-term fan-out vs the serial loop.
    XTree tree = makeXTree(17);
    PipelineOptions ser;
    ser.parallelSynthesis = false;
    ser.useCache = false;
    CompilerPipeline serialPipe(tree, ser);
    PipelineOptions par;
    par.useCache = false;
    CompilerPipeline parallelPipe(tree, par);

    auto a = serialPipe.compileTerms(lih().prob.hamiltonian, 0.17);
    auto b = parallelPipe.compileTerms(lih().prob.hamiltonian, 0.17);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.size(), lih().prob.hamiltonian.numTerms());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_TRUE(circuitsIdentical(a[i].circuit, b[i].circuit));
        EXPECT_TRUE(respectsCoupling(a[i].circuit, tree.graph));
    }
}

TEST(Pipeline, CachedChainCircuitMatchesDirectSynthesis)
{
    if (!circuitCacheEnabled())
        GTEST_SKIP() << "QCC_COMPILE_CACHE=0 in the environment";
    for (uint64_t seed : {41u, 43u}) {
        auto params = randomParams(lih().ansatz.nParams, seed);
        Circuit direct =
            synthesizeChainCircuit(lih().ansatz, params, true);
        Circuit cached =
            cachedChainCircuit(lih().ansatz, params, true);
        EXPECT_TRUE(circuitsIdentical(direct, cached));
    }
}

namespace {

/** A buggy pass: appends a CNOT between two uncoupled qubits. */
class EvilPass : public Pass
{
  public:
    const char *name() const override { return "evil"; }
    void
    run(CompileState &state) const override
    {
        // Leaves of different XTree branches are never coupled.
        state.circuit.cnot(state.circuit.numQubits() - 1,
                           state.circuit.numQubits() - 2);
    }
};

} // namespace

TEST(Pipeline, VerifyAfterMutateNamesOffendingPassAndGate)
{
    XTree tree = makeXTree(17);
    CompileState state;
    auto params = randomParams(lih().ansatz.nParams, 47);
    state.ansatz = &lih().ansatz;
    state.params = params;
    state.tree = &tree;

    PassManager manager;
    manager.add(std::make_unique<MergeToRootPass>());
    manager.add(std::make_unique<EvilPass>());
    PipelineReport report;
    try {
        manager.run(state, report);
        FAIL() << "expected CompileError from the evil pass";
    } catch (const CompileError &err) {
        EXPECT_EQ(err.pass(), "evil");
        EXPECT_EQ(err.gateIndex(),
                  long(state.circuit.size()) - 1);
        EXPECT_NE(std::string(err.what()).find("evil"),
                  std::string::npos);
        EXPECT_NE(std::string(err.what()).find("uncoupled"),
                  std::string::npos);
    }
    // The clean prefix ran and was recorded before the failure.
    ASSERT_EQ(report.passes.size(), 2u);
    EXPECT_EQ(report.passes[0].pass, "merge-to-root");
}

TEST(Pipeline, VerifyIssueCarriesGateIndex)
{
    CouplingGraph g(3);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    Circuit c(3);
    c.h(0);
    c.cnot(0, 1);
    c.cnot(0, 2); // violation at index 2
    auto issue = findCouplingViolation(c, g);
    ASSERT_TRUE(issue.has_value());
    EXPECT_EQ(issue->gateIndex, 2);
    EXPECT_NE(issue->what.find("gate 2"), std::string::npos);
    EXPECT_FALSE(findCouplingViolation(Circuit(3), g).has_value());
}
